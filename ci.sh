#!/bin/sh
# CI entry point: build, test, (optionally) check formatting, then smoke
# the profiling path with tracing enabled and validate its trace output.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt check =="
  dune build @fmt
else
  echo "== fmt check skipped (ocamlformat not installed) =="
fi

echo "== profile smoke (tracing on) =="
TRACE=$(mktemp -t ci-trace-XXXXXX.json)
MICRO_JSON=$(mktemp -t ci-micro-XXXXXX.json)
trap 'rm -f "$TRACE" "$MICRO_JSON"' EXIT
dune exec bench/main.exe -- profile --smoke --trace "$TRACE"

test -s "$TRACE" || { echo "ci: trace file is empty" >&2; exit 1; }
grep -q '"traceEvents"' "$TRACE" || { echo "ci: trace file has no traceEvents" >&2; exit 1; }
echo "trace OK: $(wc -c < "$TRACE") bytes"

echo "== micro smoke (block + fusion fast paths, JSON output) =="
# Run once with operator fusion on (the default) and once with it off:
# both paths must complete, produce valid JSON and carry the v3 schema.
dune exec bench/main.exe -- micro --smoke --fuse on --json "$MICRO_JSON"
test -s "$MICRO_JSON" || { echo "ci: micro JSON (fuse on) is empty" >&2; exit 1; }
# check-json re-parses with the strict Obs.Json parser and fails on
# malformed output, a missing schema marker, or a schema mismatch.
dune exec bench/main.exe -- check-json "$MICRO_JSON" --schema cgsim-bench-micro/3
dune exec bench/main.exe -- micro --smoke --fuse off --json "$MICRO_JSON"
test -s "$MICRO_JSON" || { echo "ci: micro JSON (fuse off) is empty" >&2; exit 1; }
dune exec bench/main.exe -- check-json "$MICRO_JSON" --schema cgsim-bench-micro/3

echo "== graph lint (examples/cgc, JSON output) =="
LINT_JSON=$(mktemp -t ci-lint-XXXXXX.json)
trap 'rm -f "$TRACE" "$MICRO_JSON" "$LINT_JSON"' EXIT
for f in examples/cgc/*.cgc; do
  # Exit status: 0 clean/info, 1 warnings (tolerated), 2 errors (fail).
  rc=0
  dune exec bin/cgx.exe -- lint --json "$f" > "$LINT_JSON" || rc=$?
  if [ "$rc" -ge 2 ]; then
    echo "ci: $f has lint errors" >&2
    cat "$LINT_JSON" >&2
    exit 1
  fi
  dune exec bench/main.exe -- check-json "$LINT_JSON" --schema cgsim-lint/2
  echo "lint OK: $f (rc=$rc)"
done

echo "== fuzz smoke (lint-vs-runtime differential oracle, JSON output) =="
FUZZ_JSON=$(mktemp -t ci-fuzz-XXXXXX.json)
trap 'rm -f "$TRACE" "$MICRO_JSON" "$LINT_JSON" "$FUZZ_JSON"' EXIT
# ~50 seeded SDF graphs (clean + labelled defects): the linter's verdict
# must agree with actual cgsim/x86sim behaviour on every one; the bench
# exits nonzero on any disagreement.  Schema cgsim-bench-fuzz/1.
dune exec bench/main.exe -- fuzz --smoke --json "$FUZZ_JSON"
test -s "$FUZZ_JSON" || { echo "ci: fuzz JSON is empty" >&2; exit 1; }
dune exec bench/main.exe -- check-json "$FUZZ_JSON" --schema cgsim-bench-fuzz/1

echo "== serve smoke (parallel pool on 2 domains, warm off / warm on, JSON output) =="
SERVE_COLD_JSON=$(mktemp -t ci-serve-cold-XXXXXX.json)
SERVE_WARM_JSON=$(mktemp -t ci-serve-warm-XXXXXX.json)
trap 'rm -f "$TRACE" "$MICRO_JSON" "$LINT_JSON" "$FUZZ_JSON" "$SERVE_COLD_JSON" "$SERVE_WARM_JSON"' EXIT
# Every request's output is verified inside the bench; nonzero exit on
# any wrong result.  Both paths run separately so the cold fallback
# (fresh instance per attempt) can never silently rot behind the warm
# cache.  Run_config defaults keep operator fusion and the unboxed data
# plane ON here, so these smokes also assert warm-vs-cold equivalence
# with fusion enabled.  Schema cgsim-bench-serve/3.
dune exec bench/main.exe -- serve --smoke --domains 1,2 --warm off --json "$SERVE_COLD_JSON"
test -s "$SERVE_COLD_JSON" || { echo "ci: cold serve JSON is empty" >&2; exit 1; }
dune exec bench/main.exe -- check-json "$SERVE_COLD_JSON"
dune exec bench/main.exe -- serve --smoke --domains 1,2 --warm on --json "$SERVE_WARM_JSON"
test -s "$SERVE_WARM_JSON" || { echo "ci: warm serve JSON is empty" >&2; exit 1; }
dune exec bench/main.exe -- check-json "$SERVE_WARM_JSON"

echo "== chaos smoke (fault injection + retry supervision, JSON output) =="
CHAOS_JSON=$(mktemp -t ci-chaos-XXXXXX.json)
trap 'rm -f "$TRACE" "$MICRO_JSON" "$LINT_JSON" "$FUZZ_JSON" "$SERVE_COLD_JSON" "$SERVE_WARM_JSON" "$CHAOS_JSON"' EXIT
# Serves under a seeded fault plan (kernel raises + a busy-stall) with a
# per-request deadline and retries; exits nonzero unless every injected
# fault was absorbed and at least one request recovered by retry.
# Schema cgsim-bench-chaos/1.
dune exec bench/main.exe -- serve --chaos --smoke --json "$CHAOS_JSON"
test -s "$CHAOS_JSON" || { echo "ci: chaos JSON is empty" >&2; exit 1; }
dune exec bench/main.exe -- check-json "$CHAOS_JSON"

echo "== loadtest smoke (open-loop Poisson arrivals + chaos, JSON + Prometheus output) =="
LOAD_JSON=$(mktemp -t ci-load-XXXXXX.json)
LOAD_PROM=$(mktemp -t ci-load-XXXXXX.prom)
trap 'rm -f "$TRACE" "$MICRO_JSON" "$LINT_JSON" "$FUZZ_JSON" "$SERVE_COLD_JSON" "$SERVE_WARM_JSON" "$CHAOS_JSON" "$LOAD_JSON" "$LOAD_PROM"' EXIT
# Open-loop arrivals against the pool under a transient-fault plan with
# retries; exits nonzero if nothing completed or chaos never forced a
# retry.  Schema cgsim-bench-load/2.
dune exec bench/main.exe -- loadtest --smoke --chaos --json "$LOAD_JSON" --metrics "$LOAD_PROM"
test -s "$LOAD_JSON" || { echo "ci: loadtest JSON is empty" >&2; exit 1; }
dune exec bench/main.exe -- check-json "$LOAD_JSON"
# check-prom validates the Prometheus text exposition with the strict
# Obs.Prom parser (TYPE lines, label syntax, bucket monotonicity).
test -s "$LOAD_PROM" || { echo "ci: loadtest exposition is empty" >&2; exit 1; }
dune exec bench/main.exe -- check-prom "$LOAD_PROM"

echo "== serve daemon smoke (cgx serve over a Unix socket, wire protocol cgx-serve/1) =="
SERVE_SOCK=$(mktemp -u -t ci-serve-XXXXXX.sock)
DAEMON_PROM=$(mktemp -t ci-daemon-XXXXXX.prom)
REMOTE_JSON=$(mktemp -t ci-remote-XXXXXX.json)
SERVE_PID=""
trap 'rm -f "$TRACE" "$MICRO_JSON" "$LINT_JSON" "$FUZZ_JSON" "$SERVE_COLD_JSON" "$SERVE_WARM_JSON" "$CHAOS_JSON" "$LOAD_JSON" "$LOAD_PROM" "$DAEMON_PROM" "$REMOTE_JSON" "$SERVE_SOCK"; [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT
# Launch the daemon binary directly — not through dune exec — so the
# SIGTERM at the end reaches cgx itself and the drain path is what is
# actually tested.  Every built-in app round-trips through `cgx
# request`, which checks the served output against the golden reference
# and exits nonzero on any mismatch; the daemon's /metrics dump must
# validate with the strict Obs.Prom parser; the open-loop loadtest runs
# the same Poisson sweep remotely through the socket.
dune build bin/cgx.exe bench/main.exe
./_build/default/bin/cgx.exe serve --listen "unix:$SERVE_SOCK" --domains 2 &
SERVE_PID=$!
for app in bitonic farrow iir bilinear; do
  ./_build/default/bin/cgx.exe request --connect "unix:$SERVE_SOCK" --app "$app"
done
./_build/default/bin/cgx.exe request --connect "unix:$SERVE_SOCK" --metrics "$DAEMON_PROM"
test -s "$DAEMON_PROM" || { echo "ci: daemon exposition is empty" >&2; exit 1; }
dune exec bench/main.exe -- check-prom "$DAEMON_PROM"
./_build/default/bench/main.exe loadtest --smoke --remote "unix:$SERVE_SOCK" --json "$REMOTE_JSON"
dune exec bench/main.exe -- check-json "$REMOTE_JSON" --schema cgsim-bench-load/2
# Graceful drain: SIGTERM must complete in-flight work and exit 0.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "ci: serve daemon did not drain cleanly on SIGTERM" >&2; exit 1; }
SERVE_PID=""
echo "serve daemon OK: clean SIGTERM drain"

echo "== cgx --metrics smoke (Prometheus exposition from the extractor CLI) =="
CGX_PROM=$(mktemp -t ci-cgx-XXXXXX.prom)
trap 'rm -f "$TRACE" "$MICRO_JSON" "$LINT_JSON" "$FUZZ_JSON" "$SERVE_COLD_JSON" "$SERVE_WARM_JSON" "$CHAOS_JSON" "$LOAD_JSON" "$LOAD_PROM" "$DAEMON_PROM" "$REMOTE_JSON" "$SERVE_SOCK" "$CGX_PROM"' EXIT
dune exec bin/cgx.exe -- simulate examples/cgc/bitonic.cgc --reps 4 --metrics "$CGX_PROM"
test -s "$CGX_PROM" || { echo "ci: cgx exposition is empty" >&2; exit 1; }
dune exec bench/main.exe -- check-prom "$CGX_PROM"

echo "== deprecated-shim gate =="
# The optional-argument bridges (instantiate_opts/run_opts/execute_opts)
# were removed; Run_config is the only entry point.  The grep stays as a
# regression gate so the names cannot creep back in.
if grep -rnE '(Runtime|Pool|Sim)\.(instantiate|execute|run)_opts' lib bin bench examples; then
  echo "ci: caller references a removed _opts shim (use Run_config)" >&2
  exit 1
fi
echo "no shim references"

echo "== ci passed =="

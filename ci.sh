#!/bin/sh
# CI entry point: build, test, (optionally) check formatting, then smoke
# the profiling path with tracing enabled and validate its trace output.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt check =="
  dune build @fmt
else
  echo "== fmt check skipped (ocamlformat not installed) =="
fi

echo "== profile smoke (tracing on) =="
TRACE=$(mktemp -t ci-trace-XXXXXX.json)
trap 'rm -f "$TRACE"' EXIT
dune exec bench/main.exe -- profile --smoke --trace "$TRACE"

test -s "$TRACE" || { echo "ci: trace file is empty" >&2; exit 1; }
grep -q '"traceEvents"' "$TRACE" || { echo "ci: trace file has no traceEvents" >&2; exit 1; }
echo "trace OK: $(wc -c < "$TRACE") bytes"

echo "== ci passed =="

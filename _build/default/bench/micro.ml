(* Bechamel micro-benchmarks of the framework's moving parts: queue
   transfer, context switch, vector intrinsics, graph construction and
   instantiation.  These back the design claims in DESIGN.md (cooperative
   switching is cheap; construction cost is front-loaded). *)

open Bechamel
open Toolkit

let queue_transfer =
  Test.make ~name:"bqueue: 1k elements producer->consumer"
    (Staged.stage (fun () ->
         let q = Cgsim.Bqueue.create ~name:"bench" ~dtype:Cgsim.Dtype.I32 ~capacity:16 () in
         let p = Cgsim.Bqueue.add_producer q in
         let c = Cgsim.Bqueue.add_consumer q in
         let s = Cgsim.Sched.create () in
         Cgsim.Sched.spawn s ~name:"producer" (fun () ->
             for i = 1 to 1000 do
               Cgsim.Bqueue.put p (Cgsim.Value.Int i)
             done;
             Cgsim.Bqueue.producer_done p);
         Cgsim.Sched.spawn s ~name:"consumer" (fun () ->
             let rec loop () =
               ignore (Cgsim.Bqueue.get c);
               loop ()
             in
             loop ());
         ignore (Cgsim.Sched.run s)))

let context_switch =
  Test.make ~name:"sched: 1k yields across 2 fibers"
    (Staged.stage (fun () ->
         let s = Cgsim.Sched.create () in
         let fiber () =
           for _ = 1 to 500 do
             Cgsim.Sched.yield ()
           done
         in
         Cgsim.Sched.spawn s ~name:"a" fiber;
         Cgsim.Sched.spawn s ~name:"b" fiber;
         ignore (Cgsim.Sched.run s)))

let fpmac_bench =
  let a = Array.make 8 1.5 and b = Array.make 8 0.25 and acc = Array.make 8 0.0 in
  Test.make ~name:"intrinsics: fpmac 8-lane"
    (Staged.stage (fun () -> ignore (Aie.Intrinsics.fpmac acc a b)))

let sort16_bench =
  let v = Workloads.Signals.random_f32 ~seed:1 16 in
  Test.make ~name:"bitonic: sort one 16-vector"
    (Staged.stage (fun () -> ignore (Apps.Bitonic.sort_vector v)))

let graph_construction =
  Test.make ~name:"builder: freeze bitonic graph"
    (Staged.stage (fun () -> ignore (Apps.Bitonic.graph ())))

let runtime_instantiation =
  let g = Apps.Bitonic.graph () in
  Test.make ~name:"runtime: instantiate bitonic graph"
    (Staged.stage (fun () -> ignore (Cgsim.Runtime.instantiate g)))

let tests =
  [
    queue_transfer;
    context_switch;
    fpmac_bench;
    sort16_bench;
    graph_construction;
    runtime_instantiation;
  ]

let run () =
  Printf.printf "\n== Micro-benchmarks (bechamel) ==\n%!";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-45s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-45s (no estimate)\n%!" name)
        analyzed)
    tests

(* Table 1 reproduction: processing time per input block on the
   cycle-approximate AIE simulator, hand-written (Direct) deploys vs.
   extractor-generated (Thunk) deploys, plus relative throughput. *)

type row = {
  app : string;
  block_bytes : int;
  paper_amd_ns : float;
  paper_this_ns : float;
  paper_rel_pct : float;
  baseline_ns : float;
  extracted_ns : float;
  rel_pct : float;
  blocks : int;
}

let paper_numbers = function
  | "bitonic" -> 3556.8, 4168.8, 85.32
  | "farrow" -> 912.8, 1019.0, 89.58
  | "iir" -> 5410.0, 5385.0, 100.46
  | "bilinear" -> 484.0, 567.2, 85.33
  | app -> invalid_arg ("no paper numbers for " ^ app)

(* Enough repetitions to measure a steady-state inter-iteration time past
   the pipeline-fill transient. *)
let reps_for_timing = 8

(* The "This work" column comes from the real extraction pipeline: the
   app's CGC prototype source goes through the front-end, consteval,
   partitioning and code generation, and the resulting deploy carries the
   generated adapter thunks' cost model. *)
let cgc_dir =
  let rec find dir =
    let candidate = Filename.concat dir "examples/cgc" in
    if Sys.file_exists candidate then Some candidate
    else begin
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else find parent
    end
  in
  find (Sys.getcwd ())

let extracted_deploy (h : Apps.Harness.t) =
  match cgc_dir with
  | None -> Aiesim.Deploy.extracted (h.graph ())
  | Some dir -> begin
    let path = Filename.concat dir (h.name ^ ".cgc") in
    match Extractor.Project.extract_file path with
    | [ p ] -> Extractor.Project.deploy p
    | _ | (exception _) -> Aiesim.Deploy.extracted (h.graph ())
  end

let run_one (h : Apps.Harness.t) =
  let measure label deploy =
    let sinks, contents = h.make_sinks () in
    let report = Aiesim.Sim.run deploy ~sources:(h.sources ~reps:reps_for_timing) ~sinks in
    (match h.check ~reps:reps_for_timing (contents ()) with
     | Ok () -> ()
     | Error e ->
       failwith (Printf.sprintf "%s (%s) functional check failed: %s" h.name label e));
    report
  in
  let baseline = measure "baseline" (Aiesim.Deploy.baseline (h.graph ())) in
  let extracted = measure "extracted" (extracted_deploy h) in
  let paper_amd_ns, paper_this_ns, paper_rel_pct = paper_numbers h.name in
  {
    app = h.name;
    block_bytes = h.block_bytes;
    paper_amd_ns;
    paper_this_ns;
    paper_rel_pct;
    baseline_ns = baseline.Aiesim.Sim.ns_per_block;
    extracted_ns = extracted.Aiesim.Sim.ns_per_block;
    rel_pct = Aiesim.Sim.relative_throughput_percent ~baseline ~extracted;
    blocks = baseline.Aiesim.Sim.blocks;
  }

let rows () = List.map run_one Apps.Harness.all

let print_rows rows =
  Printf.printf "\n== Table 1: processing time per input block (aiesim, %g MHz) ==\n"
    Aie.Cfg.clock_mhz;
  Printf.printf "%-9s %8s | %10s %10s %8s | %10s %10s %8s\n" "graph" "block(B)" "paper-AMD"
    "paper-this" "paper-%" "base(ns)" "extr(ns)" "rel-%";
  List.iter
    (fun r ->
      Printf.printf "%-9s %8d | %10.1f %10.1f %8.2f | %10.1f %10.1f %8.2f\n" r.app r.block_bytes
        r.paper_amd_ns r.paper_this_ns r.paper_rel_pct r.baseline_ns r.extracted_ns r.rel_pct)
    rows;
  Printf.printf
    "(absolute ns are from our VLIW/stream model, not AMD's testbed; the shape to compare\n\
    \ is the rel-%% column: >=85%% everywhere, ~100%% for the window-based IIR)\n%!"

let run () = print_rows (rows ())

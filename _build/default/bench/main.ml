(* Benchmark harness entry point.

   Reproduces every quantitative result of the paper's evaluation:
     table1   - Table 1, processing time per input block on aiesim
     table2   - Table 2, wall-clock time of cgsim vs x86sim vs aiesim
     profile  - Section 5.2 kernel-time fraction
     micro    - bechamel micro-benchmarks of framework primitives
     ablation - design-choice sweeps (thunk cost, buffering, placement)

   With no arguments all five run in order. *)

let usage () =
  print_endline "usage: main.exe [table1|table2|table2-quick|profile|micro|ablation]...";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let run = function
    | "table1" -> Table1.run ()
    | "table2" -> Table2.run ()
    | "table2-quick" -> Table2.run ~scale:0.5 ()
    | "profile" -> Profile.run ()
    | "micro" -> Micro.run ()
    | "ablation" -> Ablation.run ()
    | other ->
      Printf.eprintf "unknown bench: %s\n" other;
      usage ()
  in
  match args with
  | [] ->
    Table1.run ();
    Table2.run ();
    Profile.run ();
    Micro.run ();
    Ablation.run ()
  | args -> List.iter run args

(* Section 5.2 profile reproduction: the paper measures with perf that
   cgsim spends 99.94 % of the bitonic run inside the kernel and 0.06 %
   in synchronisation/data transfer.  Our scheduler keeps the same
   accounting natively: time inside fiber slices (kernel + queue calls
   made by the kernel) vs. time in the scheduling loop. *)

let run_one (h : Apps.Harness.t) ~reps =
  let sinks, _ = h.make_sinks () in
  let stats = Cgsim.Runtime.execute (h.graph ()) ~sources:(h.sources ~reps) ~sinks in
  h.name, stats

let run () =
  Printf.printf "\n== Profile (Section 5.2): cgsim kernel-time fraction ==\n";
  Printf.printf "%-9s %9s %10s %12s %12s %10s\n" "graph" "reps" "slices" "kernel(ms)" "total(ms)"
    "fraction";
  List.iter
    (fun ((h : Apps.Harness.t), reps) ->
      let name, stats = run_one h ~reps in
      Printf.printf "%-9s %9d %10d %12.2f %12.2f %9.4f%%\n" name reps stats.Cgsim.Sched.slices
        (stats.Cgsim.Sched.kernel_ns /. 1e6)
        (stats.Cgsim.Sched.total_ns /. 1e6)
        (100.0 *. Cgsim.Sched.kernel_fraction stats))
    [
      Apps.Harness.bitonic, 8192;
      Apps.Harness.farrow, 64;
      Apps.Harness.iir, 32;
      Apps.Harness.bilinear, 512;
    ];
  Printf.printf
    "(paper, via perf: bitonic spends 99.94%% in the kernel, 0.06%% in sync/transfer;\n\
    \ the fraction here separates fiber execution from scheduler bookkeeping)\n%!"

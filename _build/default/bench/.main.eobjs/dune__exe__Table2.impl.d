bench/table2.ml: Aiesim Apps Cgsim Domain List Option Printf Unix X86sim

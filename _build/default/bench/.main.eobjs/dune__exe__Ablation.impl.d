bench/ablation.ml: Aie Aiesim Apps Cgsim List Printf String Unix X86sim

bench/main.mli:

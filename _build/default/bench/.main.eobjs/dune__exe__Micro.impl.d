bench/micro.ml: Aie Analyze Apps Array Bechamel Benchmark Cgsim Hashtbl Instance List Measure Printf Staged Test Time Toolkit Workloads

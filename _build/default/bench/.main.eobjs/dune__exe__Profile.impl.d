bench/profile.ml: Apps Cgsim List Printf

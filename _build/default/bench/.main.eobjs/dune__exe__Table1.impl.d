bench/table1.ml: Aie Aiesim Apps Extractor Filename List Printf String Sys

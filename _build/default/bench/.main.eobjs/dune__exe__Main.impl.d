bench/main.ml: Ablation Array List Micro Printf Profile Sys Table1 Table2

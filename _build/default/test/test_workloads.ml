(* Tests for the workload generators and golden references. *)

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Workloads.Prng.create ~seed:123 in
  let b = Workloads.Prng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Workloads.Prng.next a) (Workloads.Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Workloads.Prng.create ~seed:1 in
  let b = Workloads.Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Workloads.Prng.next a <> Workloads.Prng.next b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let prop_prng_nonnegative =
  QCheck.Test.make ~name:"prng values are non-negative" ~count:200 QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Workloads.Prng.create ~seed in
      List.for_all (fun _ -> Workloads.Prng.next rng >= 0) (List.init 50 Fun.id))

let prop_prng_int_range =
  QCheck.Test.make ~name:"int_range stays in range" ~count:200
    QCheck.(triple (int_range 0 1000) (int_range (-500) 0) (int_range 1 500))
    (fun (seed, lo, hi) ->
      let rng = Workloads.Prng.create ~seed in
      List.for_all
        (fun _ ->
          let v = Workloads.Prng.int_range rng ~lo ~hi in
          v >= lo && v <= hi)
        (List.init 50 Fun.id))

let prop_prng_float_unit =
  QCheck.Test.make ~name:"float_unit in [0,1)" ~count:100 QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Workloads.Prng.create ~seed in
      List.for_all
        (fun _ ->
          let f = Workloads.Prng.float_unit rng in
          f >= 0.0 && f < 1.0)
        (List.init 50 Fun.id))

(* ------------------------------------------------------------------ *)
(* Signals                                                            *)
(* ------------------------------------------------------------------ *)

let test_signals_ranges () =
  let f = Workloads.Signals.random_f32 ~seed:1 1000 in
  Array.iter (fun v -> Alcotest.(check bool) "f32 range" true (v >= -1.0 && v < 1.0)) f;
  let c = Workloads.Signals.chirp_i16 ~seed:1 ~amplitude:12000 1000 in
  Array.iter
    (fun v -> Alcotest.(check bool) "chirp range" true (v >= -32768 && v <= 32767))
    c;
  let s = Workloads.Signals.step_noise_f32 ~seed:1 1000 in
  Alcotest.(check bool) "step starts low" true (Float.abs s.(0) < 0.1);
  Alcotest.(check bool) "step ends high" true (Float.abs (s.(999) -. 1.0) < 0.1)

let test_signals_deterministic () =
  Alcotest.(check bool) "same seed same data" true
    (Workloads.Signals.random_f32 ~seed:5 64 = Workloads.Signals.random_f32 ~seed:5 64)

(* ------------------------------------------------------------------ *)
(* Images                                                             *)
(* ------------------------------------------------------------------ *)

let test_images_bounds () =
  let img = Workloads.Images.synthetic ~width:32 ~height:16 in
  Alcotest.(check int) "pixel count" (32 * 16) (Array.length img.Workloads.Images.pixels);
  Array.iter
    (fun p -> Alcotest.(check bool) "u8 pixel" true (p >= 0 && p <= 255))
    img.Workloads.Images.pixels;
  match Workloads.Images.get img ~x:32 ~y:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-bounds get must be rejected"

let prop_quads_valid =
  QCheck.Test.make ~name:"sampled quads are valid requests" ~count:50 QCheck.(int_range 0 10000)
    (fun seed ->
      let img = Workloads.Images.synthetic ~width:64 ~height:64 in
      let quads = Workloads.Images.sample_quads ~seed img 100 in
      Array.for_all
        (fun (q : Workloads.Images.quad) ->
          q.p00 >= 0 && q.p00 <= 255 && q.p01 >= 0 && q.p01 <= 255 && q.p10 >= 0 && q.p10 <= 255
          && q.p11 >= 0 && q.p11 <= 255 && q.xf >= 0 && q.xf <= 32767 && q.yf >= 0
          && q.yf <= 32767)
        quads)

(* ------------------------------------------------------------------ *)
(* References                                                         *)
(* ------------------------------------------------------------------ *)

let prop_sort_reference =
  QCheck.Test.make ~name:"sort_f32 sorts and is a permutation" ~count:100
    QCheck.(array_of_size (QCheck.Gen.int_range 0 64) (float_range (-100.0) 100.0))
    (fun a ->
      let s = Workloads.Reference.sort_f32 a in
      let sorted = Array.for_all2 (fun _ _ -> true) s s
                   &&
                   (let ok = ref true in
                    for i = 0 to Array.length s - 2 do
                      if s.(i) > s.(i + 1) then ok := false
                    done;
                    !ok)
      in
      sorted && List.sort compare (Array.to_list a) = List.sort compare (Array.to_list s))

let test_srs15_rounding () =
  Alcotest.(check int) "positive round" 1 (Workloads.Reference.srs15 32768);
  Alcotest.(check int) "round to nearest" 1 (Workloads.Reference.srs15 16384);
  Alcotest.(check int) "below half floors" 0 (Workloads.Reference.srs15 16383);
  Alcotest.(check int) "negative" (-1) (Workloads.Reference.srs15 (-32768));
  Alcotest.(check int) "saturates high" 32767 (Workloads.Reference.srs15 (32768 * 40000));
  Alcotest.(check int) "saturates low" (-32768) (Workloads.Reference.srs15 (-32768 * 40000))

let test_farrow_coefficients () =
  (* Rows sum to 0 for m >= 1 (delay polynomials vanish at d=0 except the
     unit row), and the m=0 row is the unit tap in Q15. *)
  let c = Workloads.Reference.farrow_coeffs_q15 in
  Alcotest.(check int) "unit tap" 32767 c.(0).(1);
  Alcotest.(check int) "other taps zero" 0 (c.(0).(0) + c.(0).(2) + c.(0).(3))

let test_farrow_interpolates_linear_ramp () =
  (* On a linear ramp, fractional delay by d produces (approximately) the
     ramp shifted by 2 - d samples... i.e. between the two integer-delay
     outputs.  Check midpoint behaviour at d = 0.5. *)
  let n = 64 in
  let x = Array.init n (fun i -> i * 100) in
  let y = Workloads.Reference.farrow_scalar ~d_q15:16384 x in
  (* steady state after the 4-tap warmup *)
  for i = 8 to n - 2 do
    let expected_lo = x.(i - 2) and expected_hi = x.(i - 1) in
    Alcotest.(check bool)
      (Printf.sprintf "y[%d]=%d between x[i-2]=%d and x[i-1]=%d" i y.(i) expected_lo expected_hi)
      true
      (y.(i) >= expected_lo - 2 && y.(i) <= expected_hi + 2)
  done

let test_iir_step_response_settles () =
  (* A low-pass cascade driven by a unit step must settle to ~1. *)
  let n = 2048 in
  let x = Array.make n 1.0 in
  let y = Workloads.Reference.iir_scalar Workloads.Reference.iir_sections x in
  Alcotest.(check bool) "settles to unity" true (Float.abs (y.(n - 1) -. 1.0) < 1e-3)

let test_iir_attenuates_high_frequency () =
  let n = 2048 in
  let nyquist = Array.init n (fun i -> if i mod 2 = 0 then 1.0 else -1.0) in
  let y = Workloads.Reference.iir_scalar Workloads.Reference.iir_sections nyquist in
  let tail_energy = ref 0.0 in
  for i = n - 256 to n - 1 do
    tail_energy := !tail_energy +. (y.(i) *. y.(i))
  done;
  Alcotest.(check bool) "nyquist killed" true (!tail_energy < 1e-3)

let test_bilinear_reference_corners () =
  let v = Workloads.Reference.bilinear_scalar ~p00:10 ~p01:20 ~p10:30 ~p11:40 ~xf:0 ~yf:0 in
  Alcotest.(check int) "q8 of p00" (10 * 256) v;
  let mid =
    Workloads.Reference.bilinear_scalar ~p00:0 ~p01:0 ~p10:255 ~p11:255 ~xf:16384 ~yf:16384
  in
  (* Halfway vertically between 0 and 255 in Q8: ~127.5*256 *)
  Alcotest.(check bool) "midpoint" true (abs (mid - 32640) < 64)

let prop_bilinear_monotone_in_yf =
  QCheck.Test.make ~name:"bilinear monotone in yf when bottom >= top" ~count:200
    QCheck.(pair (int_bound 255) (int_bound 32767))
    (fun (p, yf) ->
      let lo = Workloads.Reference.bilinear_scalar ~p00:p ~p01:p ~p10:255 ~p11:255 ~xf:0 ~yf in
      let hi =
        Workloads.Reference.bilinear_scalar ~p00:p ~p01:p ~p10:255 ~p11:255 ~xf:0
          ~yf:(min 32767 (yf + 100))
      in
      hi >= lo - 1)

let test_design_lowpass_validations () =
  match Workloads.Reference.design_lowpass ~cutoff:0.6 ~q:0.7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cutoff >= 0.5 must be rejected"

let () =
  Alcotest.run "workloads"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_prng_nonnegative; prop_prng_int_range; prop_prng_float_unit ] );
      ( "signals",
        [
          Alcotest.test_case "ranges" `Quick test_signals_ranges;
          Alcotest.test_case "deterministic" `Quick test_signals_deterministic;
        ] );
      ( "images",
        [ Alcotest.test_case "bounds" `Quick test_images_bounds ]
        @ [ QCheck_alcotest.to_alcotest prop_quads_valid ] );
      ( "references",
        [
          Alcotest.test_case "srs15 rounding" `Quick test_srs15_rounding;
          Alcotest.test_case "farrow coefficients" `Quick test_farrow_coefficients;
          Alcotest.test_case "farrow on a ramp" `Quick test_farrow_interpolates_linear_ramp;
          Alcotest.test_case "iir step response" `Quick test_iir_step_response_settles;
          Alcotest.test_case "iir high-frequency rejection" `Quick
            test_iir_attenuates_high_frequency;
          Alcotest.test_case "bilinear corners" `Quick test_bilinear_reference_corners;
          Alcotest.test_case "lowpass design validation" `Quick test_design_lowpass_validations;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_sort_reference; prop_bilinear_monotone_in_yf ]
      );
    ]

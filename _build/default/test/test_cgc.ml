(* Tests for the CGC front-end: lexer, parser, sema, consteval and
   rewriter. *)

let adder_source =
  {|#include "cgsim.hpp"
#include <cstdint>

// doubles a float
static float scale(float x) { return x * 2.0f; }

COMPUTE_KERNEL(
    aie,
    adder_kernel,
    KernelReadPort<float> in1,
    KernelReadPort<float> in2,
    KernelWritePort<float> out
) {
    while (true) {
        const float val = (co_await in1.get())
                        + (co_await in2.get());
        co_await out.put(scale(val));
    }
};

[[extract_compute_graph]]
constexpr auto adder_graph = make_compute_graph_v<[](
    IoConnector<float> a,
    IoConnector<float> b
) {
    IoConnector<float> c;
    adder_kernel(a, b, c);
    attach_attributes(c, {{"plio_name", "sum_out"}, {"plio_width", 64}});
    return std::make_tuple(c);
}>;
|}

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let test_lexer_basic () =
  let toks = Cgc.Lexer.tokenize ~file:"t.cgc" "int x = 42; // comment\nfloat y = 1.5f;" in
  let kinds = List.map (fun t -> t.Cgc.Token.kind) toks in
  match kinds with
  | [ Cgc.Token.Kw "int"; Ident "x"; Punct "="; Int_lit (42, _); Punct ";"; Kw "float";
      Ident "y"; Punct "="; Float_lit (v, _); Punct ";"; Eof ] ->
    Alcotest.(check (float 1e-9)) "float lit" 1.5 v
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_directives () =
  let toks = Cgc.Lexer.tokenize ~file:"t.cgc" "#include \"a.hpp\"\n#include <vector>\n#define N 16\n" in
  match List.map (fun t -> t.Cgc.Token.kind) toks with
  | [ Cgc.Token.Directive_include { path = "a.hpp"; system = false };
      Directive_include { path = "vector"; system = true };
      Directive_define { name = "N"; body = "16" }; Eof ] ->
    ()
  | _ -> Alcotest.fail "directives not recognized"

let test_lexer_positions () =
  let toks = Cgc.Lexer.tokenize ~file:"t.cgc" "ab\ncd" in
  match toks with
  | [ a; b; _eof ] ->
    Alcotest.(check int) "a line" 1 a.Cgc.Token.range.Cgc.Srcloc.start.Cgc.Srcloc.line;
    Alcotest.(check int) "b line" 2 b.Cgc.Token.range.Cgc.Srcloc.start.Cgc.Srcloc.line;
    Alcotest.(check int) "b offset" 3 b.Cgc.Token.range.Cgc.Srcloc.start.Cgc.Srcloc.offset
  | _ -> Alcotest.fail "expected two tokens"

let test_lexer_unterminated_comment () =
  match Cgc.Lexer.tokenize ~file:"t.cgc" "/* nope" with
  | exception Cgc.Diag.Error _ -> ()
  | _ -> Alcotest.fail "unterminated comment must be diagnosed"

let test_lexer_string_escapes () =
  match Cgc.Lexer.tokenize ~file:"t.cgc" {|"a\nb"|} with
  | [ { Cgc.Token.kind = Cgc.Token.Str_lit "a\nb"; _ }; _ ] -> ()
  | _ -> Alcotest.fail "string escape not decoded"

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

let parse_tu src = Cgc.Parser.parse ~file:"t.cgc" src

let test_parse_adder () =
  let tu = parse_tu adder_source in
  let kinds =
    List.map
      (function
        | Cgc.Ast.T_include _ -> "include"
        | Cgc.Ast.T_define _ -> "define"
        | Cgc.Ast.T_pragma _ -> "pragma"
        | Cgc.Ast.T_struct _ -> "struct"
        | Cgc.Ast.T_global _ -> "global"
        | Cgc.Ast.T_func _ -> "func"
        | Cgc.Ast.T_kernel _ -> "kernel"
        | Cgc.Ast.T_graph _ -> "graph")
      tu.Cgc.Ast.tu_items
  in
  Alcotest.(check (list string)) "item kinds" [ "include"; "include"; "func"; "kernel"; "graph" ]
    kinds

let test_parse_kernel_detail () =
  let tu = parse_tu adder_source in
  let k =
    List.find_map (function Cgc.Ast.T_kernel k -> Some k | _ -> None) tu.Cgc.Ast.tu_items
    |> Option.get
  in
  Alcotest.(check string) "realm" "aie" k.Cgc.Ast.k_realm;
  Alcotest.(check string) "name" "adder_kernel" k.Cgc.Ast.k_name;
  Alcotest.(check int) "ports" 3 (List.length k.Cgc.Ast.k_params);
  (* The expansion range must span the whole COMPUTE_KERNEL(...){...} *)
  let text = Cgc.Rewriter.slice_range ~source:tu.Cgc.Ast.tu_source k.Cgc.Ast.k_range in
  Alcotest.(check bool) "starts at macro" true
    (String.length text > 14 && String.sub text 0 14 = "COMPUTE_KERNEL");
  Alcotest.(check bool) "contains body" true
    (let rec contains i =
       i + 8 <= String.length text && (String.sub text i 8 = "co_await" || contains (i + 1))
     in
     contains 0)

let test_parse_graph_detail () =
  let tu = parse_tu adder_source in
  let g =
    List.find_map (function Cgc.Ast.T_graph g -> Some g | _ -> None) tu.Cgc.Ast.tu_items
    |> Option.get
  in
  Alcotest.(check string) "name" "adder_graph" g.Cgc.Ast.g_name;
  Alcotest.(check (list string)) "attrs" [ "extract_compute_graph" ] g.Cgc.Ast.g_attrs;
  Alcotest.(check int) "lambda params" 2 (List.length g.Cgc.Ast.g_lambda.Cgc.Ast.l_params)

let test_parse_template_shift_split () =
  (* >> closing two template levels must split. *)
  let tu = parse_tu "static KernelReadPort<IoConnector<float>> weird() { return x; }" in
  match tu.Cgc.Ast.tu_items with
  | [ Cgc.Ast.T_func { name = "weird"; _ } ] -> ()
  | _ -> Alcotest.fail "nested template closed by >> should parse"

let test_parse_for_loop () =
  let tu = parse_tu "static int f() { int acc = 0; for (int i = 0; i < 4; ++i) { acc += i; } return acc; }" in
  match tu.Cgc.Ast.tu_items with
  | [ Cgc.Ast.T_func { body; _ } ] ->
    Alcotest.(check int) "three statements" 3 (List.length body)
  | _ -> Alcotest.fail "for loop should parse"

let test_parse_error_located () =
  match parse_tu "static float f( { }" with
  | exception Cgc.Diag.Error (range, _) ->
    Alcotest.(check int) "error on line 1" 1 range.Cgc.Srcloc.start.Cgc.Srcloc.line
  | _ -> Alcotest.fail "malformed input must be diagnosed"

let test_parse_struct_with_arrays () =
  let tu = parse_tu "struct q { uint8_t pix[4]; uint16_t xf; uint16_t yf; };" in
  match tu.Cgc.Ast.tu_items with
  | [ Cgc.Ast.T_struct { name = "q"; fields; _ } ] ->
    Alcotest.(check int) "fields" 3 (List.length fields)
  | _ -> Alcotest.fail "struct should parse"

(* ------------------------------------------------------------------ *)
(* Sema                                                               *)
(* ------------------------------------------------------------------ *)

let analyze src = Cgc.Driver.analyze_string ~file:"t.cgc" src

let test_sema_adder () =
  let env = analyze adder_source in
  Alcotest.(check int) "kernels" 1 (List.length (Cgc.Sema.kernels env));
  Alcotest.(check int) "graphs" 1 (List.length (Cgc.Sema.graphs env));
  let k = List.hd (Cgc.Sema.kernels env) in
  let ports = Cgc.Sema.ports_of_kernel env k in
  Alcotest.(check int) "port count" 3 (List.length ports);
  match ports with
  | [ p1; _; p3 ] ->
    Alcotest.(check bool) "in dtype" true (Cgsim.Dtype.equal p1.Cgsim.Kernel.dtype Cgsim.Dtype.F32);
    Alcotest.(check bool) "out dir" true (p3.Cgsim.Kernel.dir = Cgsim.Kernel.Out)
  | _ -> Alcotest.fail "bad ports"

let test_sema_struct_dtype () =
  let env =
    analyze
      "struct quad { uint8_t pix[4]; uint16_t xf; uint16_t yf; };\n\
       COMPUTE_KERNEL(aie, k, KernelReadPort<quad> in, KernelWritePort<uint16_t> out) { while \
       (true) { co_await out.put(0); } };"
  in
  let k = List.hd (Cgc.Sema.kernels env) in
  match Cgc.Sema.ports_of_kernel env k with
  | [ { Cgsim.Kernel.dtype = Cgsim.Dtype.Struct fields; _ }; _ ] ->
    Alcotest.(check int) "struct fields" 3 (List.length fields);
    (match fields with
     | ("pix", Cgsim.Dtype.Vector (Cgsim.Dtype.U8, 4)) :: _ -> ()
     | _ -> Alcotest.fail "array field should become a vector dtype")
  | _ -> Alcotest.fail "struct port expected"

let test_sema_window_rtp_ports () =
  let env =
    analyze
      "COMPUTE_KERNEL(aie, k, KernelWindowReadPort<float, 8192> in, KernelRtpPort<int16_t> d, \
       KernelWindowWritePort<float, 8192> out) { while (true) { } };"
  in
  let k = List.hd (Cgc.Sema.kernels env) in
  match Cgc.Sema.ports_of_kernel env k with
  | [ win_in; rtp; win_out ] ->
    Alcotest.(check bool) "window in" true
      (Cgsim.Settings.equal win_in.Cgsim.Kernel.settings (Cgsim.Settings.window 8192));
    Alcotest.(check bool) "rtp" true
      (Cgsim.Settings.equal rtp.Cgsim.Kernel.settings Cgsim.Settings.rtp);
    Alcotest.(check bool) "window out dir" true (win_out.Cgsim.Kernel.dir = Cgsim.Kernel.Out)
  | _ -> Alcotest.fail "three ports expected"

let test_sema_gmio_ports () =
  let env =
    analyze
      "COMPUTE_KERNEL(aie, gk, KernelGmioReadPort<int32_t> in, KernelGmioWritePort<int32_t> out) \
       { while (true) { co_await out.put(co_await in.get()); } };"
  in
  let k = List.hd (Cgc.Sema.kernels env) in
  match Cgc.Sema.ports_of_kernel env k with
  | [ i; o ] ->
    Alcotest.(check bool) "gmio in" true
      (Cgsim.Settings.equal i.Cgsim.Kernel.settings Cgsim.Settings.gmio);
    Alcotest.(check bool) "gmio out" true
      (Cgsim.Settings.equal o.Cgsim.Kernel.settings Cgsim.Settings.gmio)
  | _ -> Alcotest.fail "two ports expected"

let test_sema_bad_realm () =
  match analyze "COMPUTE_KERNEL(gpu, k, KernelReadPort<float> in) { };" with
  | exception Cgc.Sema.Sema_error _ -> ()
  | _ -> Alcotest.fail "unknown realm must be diagnosed"

let test_sema_bad_port_type () =
  match analyze "COMPUTE_KERNEL(aie, k, float x) { };" with
  | exception Cgc.Sema.Sema_error _ -> ()
  | _ -> Alcotest.fail "non-port parameter must be diagnosed"

let test_sema_duplicate () =
  match analyze "static int a = 1;\nstatic int a = 2;" with
  | exception Cgc.Sema.Sema_error _ -> ()
  | _ -> Alcotest.fail "duplicate definition must be diagnosed"

let test_sema_deps () =
  let env =
    analyze
      "static constexpr int N = 4;\n\
       static constexpr int M = N * 2;\n\
       static int helper(int x) { return x + M; }\n\
       static int unrelated(int x) { return x; }\n\
       COMPUTE_KERNEL(aie, k, KernelReadPort<int32_t> in, KernelWritePort<int32_t> out) { while \
       (true) { co_await out.put(helper(co_await in.get())); } };"
  in
  let deps = Cgc.Sema.transitive_deps env [ "k" ] in
  Alcotest.(check (list string)) "transitive deps in source order" [ "N"; "M"; "helper" ] deps

(* ------------------------------------------------------------------ *)
(* Consteval                                                          *)
(* ------------------------------------------------------------------ *)

let eval_graph_of src =
  let env = analyze src in
  match Cgc.Sema.graphs env with
  | [ g ] -> Cgc.Consteval.eval_graph env g
  | _ -> Alcotest.fail "expected exactly one graph"

let test_consteval_adder () =
  let g = eval_graph_of adder_source in
  Alcotest.(check int) "kernels" 1 (Array.length g.Cgsim.Serialized.kernels);
  Alcotest.(check int) "nets" 3 (Array.length g.Cgsim.Serialized.nets);
  Alcotest.(check int) "inputs" 2 (Array.length g.Cgsim.Serialized.input_order);
  Alcotest.(check int) "outputs" 1 (Array.length g.Cgsim.Serialized.output_order);
  (* Attributes attached through attach_attributes must be preserved. *)
  let out_net = Cgsim.Serialized.net g g.Cgsim.Serialized.output_order.(0) in
  Alcotest.(check (option string)) "plio name" (Some "sum_out")
    (Cgsim.Attr.find_string "plio_name" out_net.Cgsim.Serialized.attrs);
  Alcotest.(check (option int)) "plio width" (Some 64)
    (Cgsim.Attr.find_int "plio_width" out_net.Cgsim.Serialized.attrs)

let test_consteval_loop_unroll () =
  (* A constexpr for loop building a chain of N kernels. *)
  let src =
    {|static constexpr int N = 5;
COMPUTE_KERNEL(aie, chain_scale, KernelReadPort<float> in, KernelWritePort<float> out) {
    while (true) { co_await out.put(co_await in.get()); }
};
constexpr auto chain_graph = make_compute_graph_v<[](IoConnector<float> a) {
    IoConnector<float> prev = a;
    for (int i = 0; i < N; ++i) {
        IoConnector<float> next;
        chain_scale(prev, next);
        prev = next;
    }
    return std::make_tuple(prev);
}>;|}
  in
  let g = eval_graph_of src in
  Alcotest.(check int) "five kernel instances" 5 (Array.length g.Cgsim.Serialized.kernels);
  Alcotest.(check int) "six nets" 6 (Array.length g.Cgsim.Serialized.nets)

let test_consteval_matches_builder () =
  (* The CGC adder graph and the equivalent OCaml builder graph have equal
     topologies — the round-trip property from DESIGN.md. *)
  let cgc_g = eval_graph_of adder_source in
  let twin = Cgsim.Registry.find_exn "adder_kernel" in
  let builder_g =
    Cgsim.Builder.make ~name:"adder_graph"
      ~inputs:[ "a", Cgsim.Dtype.F32; "b", Cgsim.Dtype.F32 ]
      (fun b conns ->
        match conns with
        | [ a; bb ] ->
          let c = Cgsim.Builder.net b Cgsim.Dtype.F32 in
          ignore (Cgsim.Builder.add_kernel b twin [ a; bb; c ]);
          Cgsim.Builder.attach_attributes b c
            [ Cgsim.Attr.s "plio_name" "sum_out"; Cgsim.Attr.i "plio_width" 64 ];
          [ c ]
        | _ -> assert false)
  in
  Alcotest.(check bool) "equal topology" true (Cgsim.Serialized.equal_topology cgc_g builder_g)

let test_consteval_broadcast_merge () =
  let src =
    {|COMPUTE_KERNEL(aie, bm_scale, KernelReadPort<float> in, KernelWritePort<float> out) {
    while (true) { co_await out.put(co_await in.get()); }
};
constexpr auto bm_graph = make_compute_graph_v<[](IoConnector<float> a) {
    IoConnector<float> m;
    bm_scale(a, m);
    bm_scale(a, m);
    IoConnector<float> o1, o2;
    bm_scale(m, o1);
    bm_scale(m, o2);
    return std::make_tuple(o1, o2);
}>;|}
  in
  let g = eval_graph_of src in
  (* Net m: two writers (merge) and two readers (broadcast). *)
  let m = Cgsim.Serialized.net g 1 in
  Alcotest.(check int) "merge writers" 2 (List.length m.Cgsim.Serialized.writers);
  Alcotest.(check int) "broadcast readers" 2 (List.length m.Cgsim.Serialized.readers)

let test_consteval_constant () =
  let env = analyze "static constexpr int A = 6;\nstatic constexpr int B = A * 7;" in
  match Cgc.Consteval.eval_constant env "B" with
  | Cgc.Consteval.V_int 42 -> ()
  | _ -> Alcotest.fail "B should evaluate to 42"

let test_consteval_type_error () =
  let src =
    {|COMPUTE_KERNEL(aie, te_scale, KernelReadPort<float> in, KernelWritePort<float> out) {
    while (true) { co_await out.put(co_await in.get()); }
};
constexpr auto te_graph = make_compute_graph_v<[](IoConnector<int32_t> a) {
    IoConnector<float> b;
    te_scale(a, b);
    return std::make_tuple(b);
}>;|}
  in
  match eval_graph_of src with
  | exception Cgsim.Builder.Construction_error _ -> ()
  | _ -> Alcotest.fail "connecting int connector to float port must fail"

let test_consteval_runtime_dependence_rejected () =
  (* Calling an ordinary function at graph construction time is exactly
     what the compile-time design forbids (Section 3.1). *)
  let src =
    {|static int rand_count() { return 4; }
COMPUTE_KERNEL(aie, rd_scale, KernelReadPort<float> in, KernelWritePort<float> out) {
    while (true) { co_await out.put(co_await in.get()); }
};
constexpr auto rd_graph = make_compute_graph_v<[](IoConnector<float> a) {
    IoConnector<float> b;
    int n = rand_count();
    rd_scale(a, b);
    return std::make_tuple(b);
}>;|}
  in
  match eval_graph_of src with
  | exception Cgc.Consteval.Eval_error _ -> ()
  | _ -> Alcotest.fail "non-constexpr calls in graph definitions must be rejected"

(* ------------------------------------------------------------------ *)
(* Property: random graphs round-trip through CGC                      *)
(* ------------------------------------------------------------------ *)

(* One shared f32 pass-through kernel, registered once; the generated CGC
   source declares the same signature so the consteval twin check holds. *)
let prop_node_kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"prop_node_kernel"
    [ Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32; Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ]
    (fun b ->
      let i = Cgsim.Kernel.rd b 0 and o = Cgsim.Kernel.wr b 0 in
      while true do
        Cgsim.Port.put o (Cgsim.Port.get i)
      done)

let () = Cgsim.Registry.register prop_node_kernel

let prop_kernel_cgc =
  "#include \"cgsim.hpp\"\n\
   COMPUTE_KERNEL(aie, prop_node_kernel, KernelReadPort<float> in, KernelWritePort<float> out) {\n\
   \    while (true) { co_await out.put(co_await in.get()); }\n\
   };\n"

(* A random DAG is a list of ops: each op reads an existing net and
   either creates a fresh destination net or merges into an existing
   kernel-driven net.  Net 0 is the graph input. *)
type dag_op = { src : int; fresh : bool }

let dag_gen =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (map2 (fun s fresh -> { src = s; fresh }) (int_bound 1000) (frequencyl [ 4, true; 1, false ])))

let dag_arb =
  QCheck.make dag_gen ~print:(fun ops ->
      String.concat ";"
        (List.map (fun o -> Printf.sprintf "%d%s" o.src (if o.fresh then "+" else "")) ops))

(* Interpret the op list deterministically into (src_net, dst_net) pairs
   over a growing net set; returns edges and the final net count. *)
let elaborate ops =
  (* nets: 0 = input, then one per fresh op *)
  let edges = ref [] in
  let kernel_driven = ref [] in
  let count = ref 1 in
  List.iter
    (fun o ->
      let src = o.src mod !count in
      let dst =
        if o.fresh || !kernel_driven = [] then begin
          let d = !count in
          incr count;
          kernel_driven := d :: !kernel_driven;
          d
        end
        else begin
          let candidates = List.filter (fun d -> d > src) !kernel_driven in
          match candidates with
          | [] ->
            let d = !count in
            incr count;
            kernel_driven := d :: !kernel_driven;
            d
          | d :: _ -> d
        end
      in
      edges := (src, dst) :: !edges)
    ops;
  List.rev !edges, !count

let dag_to_cgc edges count =
  let buf = Buffer.create 512 in
  Buffer.add_string buf prop_kernel_cgc;
  Buffer.add_string buf
    "constexpr auto prop_graph = make_compute_graph_v<[](IoConnector<float> n0) {\n";
  for i = 1 to count - 1 do
    Buffer.add_string buf (Printf.sprintf "    IoConnector<float> n%d;\n" i)
  done;
  List.iter
    (fun (s, d) -> Buffer.add_string buf (Printf.sprintf "    prop_node_kernel(n%d, n%d);\n" s d))
    edges;
  Buffer.add_string buf (Printf.sprintf "    return std::make_tuple(n%d);\n}>;\n" (count - 1));
  Buffer.contents buf

let dag_to_builder edges count =
  Cgsim.Builder.make ~name:"prop_graph" ~inputs:[ "n0", Cgsim.Dtype.F32 ] (fun b conns ->
      let nets = Array.make count (List.hd conns) in
      for i = 1 to count - 1 do
        nets.(i) <- Cgsim.Builder.net b Cgsim.Dtype.F32
      done;
      List.iter
        (fun (s, d) -> ignore (Cgsim.Builder.add_kernel b prop_node_kernel [ nets.(s); nets.(d) ]))
        edges;
      [ nets.(count - 1) ])

let prop_random_graph_roundtrip =
  QCheck.Test.make ~name:"consteval(random CGC DAG) == builder(same DAG)" ~count:60 dag_arb
    (fun ops ->
      let edges, count = elaborate ops in
      let source = dag_to_cgc edges count in
      let env = Cgc.Driver.analyze_string ~file:"prop.cgc" source in
      match Cgc.Sema.graphs env with
      | [ g ] ->
        let via_cgc = Cgc.Consteval.eval_graph env g in
        let via_builder = dag_to_builder edges count in
        Cgsim.Serialized.equal_topology via_cgc via_builder
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Rewriter                                                           *)
(* ------------------------------------------------------------------ *)

let test_rewriter_basic () =
  let r = Cgc.Rewriter.create ~source:"hello cruel world" in
  Cgc.Rewriter.remove r ~start:5 ~stop:11;
  Cgc.Rewriter.insert r ~at:17 "!";
  Alcotest.(check string) "edited" "hello world!" (Cgc.Rewriter.apply r)

let test_rewriter_overlap_rejected () =
  let r = Cgc.Rewriter.create ~source:"abcdef" in
  Cgc.Rewriter.remove r ~start:1 ~stop:4;
  Cgc.Rewriter.remove r ~start:3 ~stop:5;
  match Cgc.Rewriter.apply r with
  | exception Cgc.Rewriter.Rewrite_error _ -> ()
  | _ -> Alcotest.fail "overlapping edits must be rejected"

let test_rewriter_strip_co_await () =
  (* The standard transformation of Section 4.4: remove co_await tokens,
     leaving synchronous calls. *)
  let tu = parse_tu adder_source in
  let r = Cgc.Rewriter.create ~source:tu.Cgc.Ast.tu_source in
  List.iter
    (function
      | Cgc.Ast.T_kernel k ->
        Cgc.Ast.iter_exprs
          (fun e ->
            match e.Cgc.Ast.e_desc with
            | Cgc.Ast.Co_await (_, kw_range) ->
              Cgc.Rewriter.remove r ~start:kw_range.Cgc.Srcloc.start.Cgc.Srcloc.offset
                ~stop:kw_range.Cgc.Srcloc.stop.Cgc.Srcloc.offset
            | _ -> ())
          k.Cgc.Ast.k_body
      | _ -> ())
    tu.Cgc.Ast.tu_items;
  let out = Cgc.Rewriter.apply r in
  let contains needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no co_await left" false (contains "co_await" out);
  Alcotest.(check bool) "calls kept" true (contains "in1.get()" out)

let () =
  Alcotest.run "cgc"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "directives" `Quick test_lexer_directives;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "unterminated comment" `Quick test_lexer_unterminated_comment;
          Alcotest.test_case "string escapes" `Quick test_lexer_string_escapes;
        ] );
      ( "parser",
        [
          Alcotest.test_case "adder items" `Quick test_parse_adder;
          Alcotest.test_case "kernel detail" `Quick test_parse_kernel_detail;
          Alcotest.test_case "graph detail" `Quick test_parse_graph_detail;
          Alcotest.test_case ">> template split" `Quick test_parse_template_shift_split;
          Alcotest.test_case "for loop" `Quick test_parse_for_loop;
          Alcotest.test_case "located errors" `Quick test_parse_error_located;
          Alcotest.test_case "struct with arrays" `Quick test_parse_struct_with_arrays;
        ] );
      ( "sema",
        [
          Alcotest.test_case "adder" `Quick test_sema_adder;
          Alcotest.test_case "struct dtypes" `Quick test_sema_struct_dtype;
          Alcotest.test_case "window/rtp ports" `Quick test_sema_window_rtp_ports;
          Alcotest.test_case "gmio ports" `Quick test_sema_gmio_ports;
          Alcotest.test_case "bad realm" `Quick test_sema_bad_realm;
          Alcotest.test_case "bad port type" `Quick test_sema_bad_port_type;
          Alcotest.test_case "duplicates" `Quick test_sema_duplicate;
          Alcotest.test_case "dependency analysis" `Quick test_sema_deps;
        ] );
      ( "consteval",
        [
          Alcotest.test_case "adder graph" `Quick test_consteval_adder;
          Alcotest.test_case "loop unrolling" `Quick test_consteval_loop_unroll;
          Alcotest.test_case "matches builder topology" `Quick test_consteval_matches_builder;
          Alcotest.test_case "broadcast & merge" `Quick test_consteval_broadcast_merge;
          Alcotest.test_case "constants" `Quick test_consteval_constant;
          Alcotest.test_case "dtype error" `Quick test_consteval_type_error;
          Alcotest.test_case "runtime dependence rejected" `Quick
            test_consteval_runtime_dependence_rejected;
        ] );
      "properties", [ QCheck_alcotest.to_alcotest prop_random_graph_roundtrip ];
      ( "rewriter",
        [
          Alcotest.test_case "basic edits" `Quick test_rewriter_basic;
          Alcotest.test_case "overlap rejected" `Quick test_rewriter_overlap_rejected;
          Alcotest.test_case "strip co_await" `Quick test_rewriter_strip_co_await;
        ] );
    ]

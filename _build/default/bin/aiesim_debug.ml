let () =
  let app = if Array.length Sys.argv > 1 then Sys.argv.(1) else "farrow" in
  let h = Option.get (Apps.Harness.find app) in
  List.iter
    (fun adapter ->
      let d = Aiesim.Deploy.make ~label:(Aiesim.Deploy.adapter_to_string adapter) ~adapter (h.Apps.Harness.graph ()) in
      let sinks, _ = h.Apps.Harness.make_sinks () in
      let r = Aiesim.Sim.run d ~sources:(h.Apps.Harness.sources ~reps:8) ~sinks in
      Format.printf "%a@." Aiesim.Sim.pp_report r)
    [ Aiesim.Deploy.Direct; Aiesim.Deploy.Thunk ]

let aie_header_blacklist = [ "cgsim.hpp"; "cgsim/cgsim.hpp"; "iostream"; "vector"; "cassert" ]

let aie_runtime_header = "cgsim_aie_rt.hpp"

let includes_for env ~blacklist ~runtime_header =
  let seen = Hashtbl.create 8 in
  let keep =
    List.filter_map
      (fun (path, system, _tu) ->
        if List.mem path blacklist then None
        else if Hashtbl.mem seen path then None
        else begin
          Hashtbl.add seen path ();
          Some (if system then Printf.sprintf "#include <%s>" path
                else Printf.sprintf "#include \"%s\"" path)
        end)
      (Cgc.Sema.includes env)
  in
  Printf.sprintf "#include \"%s\"" runtime_header :: keep

let slice_of_symbol env name =
  match Cgc.Sema.defining_tu env name with
  | None -> None
  | Some tu ->
    List.find_map
      (fun item ->
        let matches =
          match item with
          | Cgc.Ast.T_struct { name = n; _ } -> String.equal n name
          | Cgc.Ast.T_global { name = n; _ } -> String.equal n name
          | Cgc.Ast.T_func { name = n; _ } -> String.equal n name
          | Cgc.Ast.T_define { name = n; _ } -> String.equal n name
          | _ -> false
        in
        if matches then
          Some
            (Cgc.Rewriter.slice_range ~source:tu.Cgc.Ast.tu_source (Cgc.Ast.top_range item))
        else None)
      tu.Cgc.Ast.tu_items

let support_decls env roots =
  let deps = Cgc.Sema.transitive_deps env roots in
  List.filter_map
    (fun name ->
      match Cgc.Sema.find env name with
      | Some (Cgc.Sema.E_kernel _) | Some (Cgc.Sema.E_graph _) | None ->
        (* other kernels are emitted separately; graphs never co-extract *)
        None
      | Some (Cgc.Sema.E_define body) ->
        Some (Printf.sprintf "#define %s %s" name body)
      | Some (Cgc.Sema.E_struct _ | Cgc.Sema.E_func _ | Cgc.Sema.E_global _) ->
        slice_of_symbol env name)
    deps

let realm_color = function
  | Cgsim.Kernel.Aie -> "lightblue"
  | Cgsim.Kernel.Noextract -> "lightgrey"
  | Cgsim.Kernel.Pl -> "lightgoldenrod"

let transport_label (n : Cgsim.Serialized.net) =
  match Cgsim.Settings.resolved_transport n.settings with
  | Cgsim.Settings.Stream -> "stream"
  | Cgsim.Settings.Window w -> Printf.sprintf "window<%d>" w
  | Cgsim.Settings.Rtp -> "rtp"
  | Cgsim.Settings.Gmio -> "gmio"

let of_graph (g : Cgsim.Serialized.t) =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "digraph \"%s\" {\n  rankdir=LR;\n  node [fontname=\"sans-serif\"];\n" g.gname;
  Array.iteri
    (fun i (ki : Cgsim.Serialized.kernel_inst) ->
      addf "  k%d [shape=box, style=filled, fillcolor=%s, label=\"%s\\n[%s]\"];\n" i
        (realm_color ki.realm) ki.inst_name
        (Cgsim.Kernel.realm_to_string ki.realm))
    g.kernels;
  Array.iter
    (fun (n : Cgsim.Serialized.net) ->
      (match n.global_input with
       | Some name -> addf "  in%d [shape=ellipse, label=\"%s\"];\n" n.net_id name
       | None -> ());
      match n.global_output with
      | Some name -> addf "  out%d [shape=ellipse, label=\"%s\"];\n" n.net_id name
      | None -> ())
    g.nets;
  Array.iter
    (fun (n : Cgsim.Serialized.net) ->
      let label =
        Printf.sprintf "%s %s" (Cgsim.Dtype.to_string n.dtype) (transport_label n)
      in
      let srcs =
        (match n.global_input with Some _ -> [ Printf.sprintf "in%d" n.net_id ] | None -> [])
        @ List.map (fun (ep : Cgsim.Serialized.endpoint) -> Printf.sprintf "k%d" ep.kernel_idx)
            n.writers
      in
      let dsts =
        (match n.global_output with Some _ -> [ Printf.sprintf "out%d" n.net_id ] | None -> [])
        @ List.map (fun (ep : Cgsim.Serialized.endpoint) -> Printf.sprintf "k%d" ep.kernel_idx)
            n.readers
      in
      List.iter
        (fun src -> List.iter (fun dst -> addf "  %s -> %s [label=\"%s\"];\n" src dst label) dsts)
        srcs)
    g.nets;
  addf "}\n";
  Buffer.contents buf

(** Kernel source transformation (Sections 4.4 and 4.5).

    Each unique kernel is processed twice — once for a forward
    declaration (call signature only), once for the full definition.
    The standard (realm-independent) transformations operate on the
    macro expansion range of the kernel with the {!Cgc.Rewriter}:

    - the [COMPUTE_KERNEL(realm, name, ports...)] header becomes a plain
      [void name(ports...)] function header (the port types remain; each
      realm supplies its own [KernelReadPort]/[KernelWritePort]
      implementations);
    - every [co_await] token is removed, turning the coroutine's
      asynchronous stream operations into synchronous blocking calls.

    The AIE realm additionally emits an adapter thunk that converts the
    hardware-native parameters (stream/window pointers, runtime
    parameters) into the generic port objects and calls the kernel — the
    entry point registered in the generated graph. *)

exception Rewrite_error of string

(** [forward_decl env kernel] — one-line declaration, e.g.
    ["void adder_kernel(KernelReadPort<float> in1, ...);"]. *)
val forward_decl : Cgc.Sema.env -> Cgc.Ast.kernel -> string

(** [definition env ~source kernel] — the transformed definition text. *)
val definition : Cgc.Sema.env -> source:string -> Cgc.Ast.kernel -> string

(** [aie_thunk env kernel] — the AIE entry-point adapter (Section 4.5).
    Its name is [<kernel>_aie]. *)
val aie_thunk : Cgc.Sema.env -> Cgc.Ast.kernel -> string

(** AIE-native parameter spelling for a port (used by the thunk and the
    generated graph): [input_stream<T> *], [input_window<T> *], or a
    plain value for runtime parameters. *)
val aie_native_param : Cgc.Sema.env -> Cgc.Ast.param -> string

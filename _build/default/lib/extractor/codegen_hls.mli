(** HLS (programmable logic) code generation.

    The paper's extractor generates code only for the AIE target but its
    realm-based architecture is explicitly designed for more backends
    (Section 6 names FPGAs via HLS as future work).  This module
    implements that extension: the PL-realm subgraph becomes a Vitis-HLS
    style project —

    - [pl_kernels.hpp] — declarations with [hls::stream] interfaces;
    - one [<kernel>.cpp] per kernel with the co-extracted support code,
      the transformed (co_await-free) definition, and an HLS wrapper
      carrying the interface pragmas;
    - [<graph>_pl.cpp] — a top-level dataflow region instantiating the
      kernels and their internal channels.

    The port-type contract is the same as the AIE realm's: kernels keep
    their generic [Kernel*Port] parameters; the realm runtime header
    ([cgsim_hls_rt.hpp]) implements them over [hls::stream]. *)

val hls_runtime_header : string

val hls_header_blacklist : string list

val kernels_hpp : Cgc.Sema.env -> Cgsim.Serialized.t -> string

val kernel_cpp : Cgc.Sema.env -> Cgsim.Serialized.t -> string -> string

(** The top-level dataflow function. *)
val toplevel_cpp : Cgc.Sema.env -> Cgsim.Serialized.t -> string

exception Rewrite_error of string

let signature env (k : Cgc.Ast.kernel) =
  ignore env;
  let params =
    List.map
      (fun (p : Cgc.Ast.param) ->
        (* Re-render the parameter from its AST type to normalize
           whitespace. *)
        let rec render (t : Cgc.Ast.typ) =
          match t.Cgc.Ast.t_desc with
          | Cgc.Ast.Tname n -> n
          | Cgc.Ast.Tqualified (qs, n) -> String.concat "::" qs ^ "::" ^ n
          | Cgc.Ast.Ttemplate (n, args) ->
            let arg = function
              | Cgc.Ast.Ta_type t -> render t
              | Cgc.Ast.Ta_expr { Cgc.Ast.e_desc = Cgc.Ast.Int_lit i; _ } -> string_of_int i
              | Cgc.Ast.Ta_expr _ -> "/*expr*/"
            in
            Printf.sprintf "%s<%s>" n (String.concat ", " (List.map arg args))
          | Cgc.Ast.Tconst t -> "const " ^ render t
          | Cgc.Ast.Tref t -> render t ^ "&"
          | Cgc.Ast.Tptr t -> render t ^ "*"
          | Cgc.Ast.Tarray (t, _) -> render t ^ "[]"
          | Cgc.Ast.Tauto -> "auto"
        in
        Printf.sprintf "%s %s" (render p.Cgc.Ast.p_type) p.Cgc.Ast.p_name)
      k.Cgc.Ast.k_params
  in
  Printf.sprintf "void %s(%s)" k.Cgc.Ast.k_name (String.concat ", " params)

let forward_decl env k = signature env k ^ ";"

let definition env ~source (k : Cgc.Ast.kernel) =
  (* Rewrite a buffer scoped to the kernel's macro expansion range: the
     [COMPUTE_KERNEL(realm, name, ports)] header becomes a plain function
     header and co_await tokens disappear. *)
  let header_start = k.Cgc.Ast.k_range.Cgc.Srcloc.start.Cgc.Srcloc.offset in
  let body_start = k.Cgc.Ast.k_body_range.Cgc.Srcloc.start.Cgc.Srcloc.offset in
  let k_start = header_start in
  let k_stop = k.Cgc.Ast.k_range.Cgc.Srcloc.stop.Cgc.Srcloc.offset in
  let local_src = Cgc.Rewriter.slice ~source ~start:k_start ~stop:k_stop in
  let local = Cgc.Rewriter.create ~source:local_src in
  Cgc.Rewriter.replace local ~start:0 ~stop:(body_start - k_start) (signature env k ^ " ");
  Cgc.Ast.iter_exprs
    (fun e ->
      match e.Cgc.Ast.e_desc with
      | Cgc.Ast.Co_await (_, kw_range) ->
        let start = kw_range.Cgc.Srcloc.start.Cgc.Srcloc.offset - k_start in
        let stop = ref (kw_range.Cgc.Srcloc.stop.Cgc.Srcloc.offset - k_start) in
        while
          !stop < String.length local_src && (local_src.[!stop] = ' ' || local_src.[!stop] = '\n')
        do
          incr stop
        done;
        Cgc.Rewriter.remove local ~start ~stop:!stop
      | _ -> ())
    k.Cgc.Ast.k_body;
  let text = Cgc.Rewriter.apply local in
  (* Drop a trailing semicolon left over from the macro form. *)
  let text = String.trim text in
  if String.length text > 0 && text.[String.length text - 1] = ';' then
    String.sub text 0 (String.length text - 1)
  else text

let aie_native_param env (p : Cgc.Ast.param) =
  let spec = Cgc.Sema.port_of_param env p in
  let elem = Cgsim.Dtype.cpp_spelling ~struct_name:"stream_elem_t" spec.Cgsim.Kernel.dtype in
  match Cgsim.Settings.resolved_transport spec.Cgsim.Kernel.settings, spec.Cgsim.Kernel.dir with
  | Cgsim.Settings.Stream, Cgsim.Kernel.In ->
    Printf.sprintf "input_stream<%s> *%s_s" elem p.Cgc.Ast.p_name
  | Cgsim.Settings.Stream, Cgsim.Kernel.Out ->
    Printf.sprintf "output_stream<%s> *%s_s" elem p.Cgc.Ast.p_name
  | Cgsim.Settings.Window _, Cgsim.Kernel.In ->
    Printf.sprintf "input_window<%s> *%s_w" elem p.Cgc.Ast.p_name
  | Cgsim.Settings.Window _, Cgsim.Kernel.Out ->
    Printf.sprintf "output_window<%s> *%s_w" elem p.Cgc.Ast.p_name
  | Cgsim.Settings.Rtp, Cgsim.Kernel.In -> Printf.sprintf "%s %s_v" elem p.Cgc.Ast.p_name
  | Cgsim.Settings.Rtp, Cgsim.Kernel.Out -> Printf.sprintf "%s *%s_v" elem p.Cgc.Ast.p_name
  | Cgsim.Settings.Gmio, Cgsim.Kernel.In ->
    Printf.sprintf "input_gmio<%s> *%s_g" elem p.Cgc.Ast.p_name
  | Cgsim.Settings.Gmio, Cgsim.Kernel.Out ->
    Printf.sprintf "output_gmio<%s> *%s_g" elem p.Cgc.Ast.p_name

let aie_thunk env (k : Cgc.Ast.kernel) =
  let buf = Buffer.create 256 in
  let natives = List.map (aie_native_param env) k.Cgc.Ast.k_params in
  Buffer.add_string buf
    (Printf.sprintf "void %s_aie(%s) {\n" k.Cgc.Ast.k_name (String.concat ", " natives));
  List.iter
    (fun (p : Cgc.Ast.param) ->
      let spec = Cgc.Sema.port_of_param env p in
      let elem = Cgsim.Dtype.cpp_spelling ~struct_name:"stream_elem_t" spec.Cgsim.Kernel.dtype in
      let name = p.Cgc.Ast.p_name in
      let line =
        match
          Cgsim.Settings.resolved_transport spec.Cgsim.Kernel.settings, spec.Cgsim.Kernel.dir
        with
        | Cgsim.Settings.Stream, Cgsim.Kernel.In ->
          Printf.sprintf "    KernelReadPort<%s> %s{%s_s};" elem name name
        | Cgsim.Settings.Stream, Cgsim.Kernel.Out ->
          Printf.sprintf "    KernelWritePort<%s> %s{%s_s};" elem name name
        | Cgsim.Settings.Window w, Cgsim.Kernel.In ->
          Printf.sprintf "    KernelWindowReadPort<%s, %d> %s{%s_w};" elem w name name
        | Cgsim.Settings.Window w, Cgsim.Kernel.Out ->
          Printf.sprintf "    KernelWindowWritePort<%s, %d> %s{%s_w};" elem w name name
        | Cgsim.Settings.Rtp, Cgsim.Kernel.In ->
          Printf.sprintf "    KernelRtpPort<%s> %s{%s_v};" elem name name
        | Cgsim.Settings.Rtp, Cgsim.Kernel.Out ->
          Printf.sprintf "    KernelRtpPort<%s> %s{%s_v};" elem name name
        | Cgsim.Settings.Gmio, Cgsim.Kernel.In ->
          Printf.sprintf "    KernelGmioReadPort<%s> %s{%s_g};" elem name name
        | Cgsim.Settings.Gmio, Cgsim.Kernel.Out ->
          Printf.sprintf "    KernelGmioWritePort<%s> %s{%s_g};" elem name name
      in
      Buffer.add_string buf (line ^ "\n"))
    k.Cgc.Ast.k_params;
  Buffer.add_string buf
    (Printf.sprintf "    %s(%s);\n}\n" k.Cgc.Ast.k_name
       (String.concat ", " (List.map (fun (p : Cgc.Ast.param) -> p.Cgc.Ast.p_name) k.Cgc.Ast.k_params)));
  Buffer.contents buf

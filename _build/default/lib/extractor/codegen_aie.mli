(** AIE graph code generation (Section 4.7).

    The original graph definition no longer exists in source form when
    the extractor runs (it was consteval'd away), so the graph files are
    generated, not rewritten.  Per compute graph the AIE backend emits,
    following AMD's AIE graph programming guide structure:

    - [kernel_decls.hpp] — declarations of all AIE kernel functions;
    - [graph.hpp] — the ADF graph class: kernel instantiations, external
      PLIO/RTP ports (named by the user's connection attributes where
      present), connectivity with transport types (stream / window / RTP)
      and source-file assignments;
    - one [<kernel>.cc] per unique kernel — co-extracted support
      declarations, the transformed kernel definition and the AIE entry
      thunk. *)

val kernel_decls_hpp : Cgc.Sema.env -> Cgsim.Serialized.t -> string

val graph_hpp : Cgc.Sema.env -> Cgsim.Serialized.t -> string

(** [kernel_cc env g kernel_name] — contents of the kernel's source file. *)
val kernel_cc : Cgc.Sema.env -> Cgsim.Serialized.t -> string -> string

(** Unique kernel definition names used by the graph (source order). *)
val unique_kernels : Cgsim.Serialized.t -> string list

(** Graph partitioning by execution realm (Section 4.3).

    After deserialization the extractor splits the compute graph into
    per-realm subgraphs and classifies every net:

    - {!Intra_realm}: all endpoints live in one realm;
    - {!Inter_realm}: the connection crosses realms and must become an
      external interface on both sides;
    - {!Global}: the net moves data into or out of the whole graph.

    Realm-specific backends use the classification to generate internal
    connections vs. external interfaces. *)

type port_class =
  | Intra_realm of Cgsim.Kernel.realm
  | Inter_realm
  | Global

val equal_port_class : port_class -> port_class -> bool

val pp_port_class : Format.formatter -> port_class -> unit

(** Classification of every net, indexed by net id. *)
val classify : Cgsim.Serialized.t -> port_class array

(** Realms that occur in the graph, in first-appearance order. *)
val realms : Cgsim.Serialized.t -> Cgsim.Kernel.realm list

exception Partition_error of string

(** [subgraph g realm] — the kernels of [realm] with their nets.
    Inter-realm and global nets become global inputs/outputs of the
    subgraph (named after the original net), so a realm backend sees
    exactly the external interfaces it must generate.  Raises
    {!Partition_error} when the realm has no kernels. *)
val subgraph : Cgsim.Serialized.t -> Cgsim.Kernel.realm -> Cgsim.Serialized.t

lib/extractor/kernel_rewrite.mli: Cgc

lib/extractor/runtime_headers.ml:

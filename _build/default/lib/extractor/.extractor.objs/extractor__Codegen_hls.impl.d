lib/extractor/codegen_hls.ml: Array Buffer Cgc Cgsim Codegen_aie Coextract Kernel_rewrite List Printf String

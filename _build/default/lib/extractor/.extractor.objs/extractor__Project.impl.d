lib/extractor/project.ml: Aiesim Array Buffer Cgc Cgsim Codegen_aie Codegen_hls Coextract Filename Format List Out_channel Partition Printf Runtime_headers String Sys Unix

lib/extractor/dot.mli: Cgsim

lib/extractor/codegen_hls.mli: Cgc Cgsim

lib/extractor/coextract.mli: Cgc

lib/extractor/partition.mli: Cgsim Format

lib/extractor/kernel_rewrite.ml: Buffer Cgc Cgsim List Printf String

lib/extractor/codegen_aie.mli: Cgc Cgsim

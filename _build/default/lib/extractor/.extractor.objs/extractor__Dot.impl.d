lib/extractor/dot.ml: Array Buffer Cgsim List Printf

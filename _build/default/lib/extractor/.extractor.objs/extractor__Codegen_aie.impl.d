lib/extractor/codegen_aie.ml: Array Buffer Cgc Cgsim Coextract Kernel_rewrite List Option Printf String

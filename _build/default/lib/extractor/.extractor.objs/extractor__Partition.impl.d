lib/extractor/partition.ml: Array Cgsim Format Fun Hashtbl List Option Printf String

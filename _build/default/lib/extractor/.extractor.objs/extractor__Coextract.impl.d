lib/extractor/coextract.ml: Cgc Hashtbl List Printf String

lib/extractor/project.mli: Aiesim Cgc Cgsim Format Partition

(* Embedded copies of the realm runtime headers so written projects are
   self-contained (the canonical copies live in include/ at the repo
   root; keep both in sync). *)

let aie =
  {|// cgsim_aie_rt.hpp — AIE-realm runtime adapters for extracted kernels.
//
// Generated kernel sources keep their generic KernelReadPort /
// KernelWritePort parameters (Section 4.4: "each realm must provide its
// own implementations of these types").  This header implements them
// over the native AIE streaming interfaces, so the extracted .cc files
// compile under AMD's aiecompiler unchanged.
#pragma once
#include <adf.h>
#include <aie_api/aie.hpp>

template <typename T> struct KernelReadPort {
    input_stream<T> *s;
    explicit KernelReadPort(input_stream<T> *s) : s(s) {}
    inline T get() { return readincr(s); }
};

template <typename T> struct KernelWritePort {
    output_stream<T> *s;
    explicit KernelWritePort(output_stream<T> *s) : s(s) {}
    inline void put(T v) { writeincr(s, v); }
};

template <typename T, int BYTES> struct KernelWindowReadPort {
    input_window<T> *w;
    explicit KernelWindowReadPort(input_window<T> *w) : w(w) {}
    inline T get() { return window_readincr(w); }
};

template <typename T, int BYTES> struct KernelWindowWritePort {
    output_window<T> *w;
    explicit KernelWindowWritePort(output_window<T> *w) : w(w) {}
    inline void put(T v) { window_writeincr(w, v); }
};

template <typename T> struct KernelRtpPort {
    T v;
    explicit KernelRtpPort(T v) : v(v) {}
    inline T get() { return v; }
};
|}

let hls =
  {|// cgsim_hls_rt.hpp — PL-realm (Vitis HLS) runtime adapters for extracted
// kernels: the same generic port types, implemented over hls::stream.
#pragma once
#include <hls_stream.h>

template <typename T> struct KernelReadPort {
    hls::stream<T> &s;
    explicit KernelReadPort(hls::stream<T> &s) : s(s) {}
    inline T get() {
#pragma HLS INLINE
        return s.read();
    }
};

template <typename T> struct KernelWritePort {
    hls::stream<T> &s;
    explicit KernelWritePort(hls::stream<T> &s) : s(s) {}
    inline void put(T v) {
#pragma HLS INLINE
        s.write(v);
    }
};

template <typename T, int BYTES> struct KernelWindowReadPort {
    hls::stream<T> &s;
    explicit KernelWindowReadPort(hls::stream<T> &s) : s(s) {}
    inline T get() { return s.read(); }
};

template <typename T, int BYTES> struct KernelWindowWritePort {
    hls::stream<T> &s;
    explicit KernelWindowWritePort(hls::stream<T> &s) : s(s) {}
    inline void put(T v) { s.write(v); }
};

template <typename T> struct KernelRtpPort {
    T v;
    explicit KernelRtpPort(T v) : v(v) {}
    inline T get() { return v; }
};
|}

(** Co-extraction of referenced code (Section 4.6).

    Kernels may use helper functions, constant lookup tables and custom
    data types defined at global scope in the prototype source.  For each
    kernel source file the extractor collects the transitive dependencies
    of the kernels it contains — in source order, sliced from the file
    that defines them — plus the include directives, with per-realm
    header blacklisting (simulation-only headers such as the cgsim API
    header never reach hardware builds and are replaced by the realm's
    runtime header). *)

(** Headers never copied into AIE kernel sources. *)
val aie_header_blacklist : string list

(** The realm runtime header that replaces blacklisted includes. *)
val aie_runtime_header : string

(** Include lines to emit for a set of roots' files: every recorded
    directive except blacklisted ones (deduplicated, source order),
    prefixed with the realm runtime header. *)
val includes_for : Cgc.Sema.env -> blacklist:string list -> runtime_header:string -> string list

(** [support_decls env roots] — source text of every global declaration
    transitively referenced by [roots] (kernel or function names), in
    source order, excluding the roots themselves and excluding other
    kernels/graphs. *)
val support_decls : Cgc.Sema.env -> string list -> string list

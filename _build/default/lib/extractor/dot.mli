(** Graphviz visualization of compute graphs.

    Renders a serialized compute graph as a dot digraph: kernels as boxes
    colored by realm, global I/O as ellipses, edges labelled with dtype
    and transport.  Useful with [cgx inspect --dot]. *)

val of_graph : Cgsim.Serialized.t -> string

lib/apps/harness.ml: Array Bilinear Bitonic Cgsim Farrow Float Format Iir List Printexc String Workloads

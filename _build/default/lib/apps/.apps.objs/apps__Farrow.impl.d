lib/apps/farrow.ml: Aie Array Cgsim Workloads

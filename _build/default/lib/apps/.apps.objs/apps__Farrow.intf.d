lib/apps/farrow.mli: Cgsim

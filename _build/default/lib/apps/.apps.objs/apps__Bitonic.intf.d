lib/apps/bitonic.mli: Cgsim

lib/apps/harness.mli: Cgsim

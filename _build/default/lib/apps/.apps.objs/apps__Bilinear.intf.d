lib/apps/bilinear.mli: Cgsim Workloads

lib/apps/iir.mli: Cgsim Workloads

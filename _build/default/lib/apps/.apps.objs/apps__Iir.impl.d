lib/apps/iir.ml: Aie Array Cgsim List Workloads

lib/apps/bilinear.ml: Aie Array Cgsim Lazy List Workloads

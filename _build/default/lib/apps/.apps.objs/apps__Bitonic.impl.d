lib/apps/bitonic.ml: Aie Array Bool Cgsim List Workloads

(** Farrow fractional-delay filter (the paper's [farrow_filter] example).

    Two kernels in a pipeline, mirroring AMD's structure:

    - {!stage1} acquires 4096-byte ping-pong windows of int16 samples and
      computes the four 4-tap cubic-Lagrange sub-filter convolutions
      (Q15, [mac16]/[srs]); the partial results stream to stage 2 as two
      [v2int16] cascade streams (c0,c1) and (c2,c3).
    - {!stage2} receives the cascades plus the fractional delay [d]
      (a Q15 runtime parameter) and combines them with a Horner
      evaluation, writing 4096-byte output windows.

    The heavily pipelined inner loops and the stream-based cascade are
    what make farrow sensitive to the extractor's stream-access thunks
    (89.6 % relative throughput in Table 1), while its window edges keep
    it cheap to simulate per byte. *)

val samples_per_window : int
(** 2048 int16 samples = 4096 bytes. *)

val block_bytes : int
(** 4096 *)

val group : int
(** Inner-loop vector width (32 samples). *)

val cascade_dtype : Cgsim.Dtype.t
(** v2int16 *)

val stage1 : Cgsim.Kernel.t

val stage2 : Cgsim.Kernel.t

val graph : unit -> Cgsim.Serialized.t

val default_d_q15 : int
(** 0.4 in Q15. *)

(** [sources ~reps] — the Q15 delay RTP followed by [reps] windows of a
    deterministic chirp. *)
val sources : reps:int -> Cgsim.Io.source list

val input_samples : reps:int -> int array

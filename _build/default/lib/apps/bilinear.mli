(** Bilinear interpolation (the paper's [Bilinear_Interpolation] example).

    The kernel consumes a stream of interpolation requests — a 2x2 pixel
    quad (u8) plus Q15 x/y fractions packed in an 8-byte struct, showing
    off cgsim's struct-typed streams — and produces Q8 u16 interpolated
    values.  Requests are processed 16 at a time with int16/int32 vector
    blends.  Block size: 2048 bytes = 256 requests (Table 1). *)

val group : int
(** Vector group width (16 requests). *)

val quads_per_block : int
(** 256 *)

val block_bytes : int
(** 2048 *)

val quad_dtype : Cgsim.Dtype.t
(** The packed request struct: {pix : v4uint8; xf : u16; yf : u16}. *)

val quad_value : Workloads.Images.quad -> Cgsim.Value.t

(** Pure vectorized blend of one group (exposed for tests): arrays of 16
    quads to 16 u16 outputs. *)
val blend_group : Workloads.Images.quad array -> int array

val kernel : Cgsim.Kernel.t

val graph : unit -> Cgsim.Serialized.t

(** [sources ~reps] — [reps] blocks of 256 sub-pixel lookups into a
    deterministic synthetic image. *)
val sources : reps:int -> Cgsim.Io.source list

val input_quads : reps:int -> Workloads.Images.quad array

(** 16-wide bitonic sort (the paper's [bitonic-sorting] example).

    A single-kernel graph: the kernel reads 16 fp32 values from its input
    stream, sorts them ascending with a 10-stage bitonic compare-exchange
    network built from AIE vector min/max/shuffle/select intrinsics, and
    writes the sorted block to its output stream.  Block size: 64 bytes
    (Table 1).

    Its heavy use of the vector API and its tiny blocks (one sort per 16
    elements, so synchronisation every few dozen cycles) are exactly why
    the paper uses it to stress API coverage and scheduler overhead. *)

val lanes : int
(** 16 *)

val block_bytes : int
(** 64 *)

(** The compare-exchange network: for each stage, the partner permutation
    and the per-lane "keep the minimum" mask.  Exposed for tests. *)
val stages : (int array * bool array) list

(** Sort one 16-lane vector through the network (pure; used by tests). *)
val sort_vector : float array -> float array

val kernel : Cgsim.Kernel.t

(** Single-kernel graph: in stream -> bitonic -> out stream. *)
val graph : unit -> Cgsim.Serialized.t

(** [sources ~reps] — [reps] blocks of deterministic random floats. *)
val sources : reps:int -> Cgsim.Io.source list

val input_floats : reps:int -> float array
(** The exact stream [sources] produces, for checking. *)

(** SIMD IIR filter (the paper's [implementing-iir-filter], part 2b).

    A 6th-order Butterworth low-pass realised as three cascaded biquads,
    vectorized the way the AMD tutorial does it: the sequential recurrence
    is broken by precomputing, per section, an 8x12 coefficient matrix
    that expresses eight consecutive outputs as a linear combination of
    the eight new inputs plus the four boundary states; each group of 8
    samples then costs twelve 8-lane [fpmac]s per section.

    I/O uses 8192-byte ping-pong windows (2048 fp32 samples) on both
    sides — the reason this example reaches throughput parity after
    extraction in Table 1: the generated adapter costs a constant per
    window instead of per element. *)

val samples_per_window : int
(** 2048 *)

val block_bytes : int
(** 8192 *)

val group : int
(** 8 (fp32 vector lanes) *)

(** Per-section coefficient matrix: [matrix.(j)] is the 8-lane column for
    basis element [j] of [y1; y2; x1; x2; x0..x7].  Exposed for tests. *)
val section_matrix : Workloads.Reference.biquad -> float array array

val kernel : Cgsim.Kernel.t

val graph : unit -> Cgsim.Serialized.t

val sources : reps:int -> Cgsim.Io.source list

val input_samples : reps:int -> float array

type t =
  | F32
  | F64
  | I8
  | I16
  | I32
  | I64
  | U8
  | U16
  | U32
  | Vector of t * int
  | Struct of (string * t) list

let rec equal a b =
  match a, b with
  | F32, F32 | F64, F64 | I8, I8 | I16, I16 | I32, I32 | I64, I64
  | U8, U8 | U16, U16 | U32, U32 ->
    true
  | Vector (ea, la), Vector (eb, lb) -> la = lb && equal ea eb
  | Struct fa, Struct fb ->
    List.length fa = List.length fb
    && List.for_all2 (fun (na, ta) (nb, tb) -> String.equal na nb && equal ta tb) fa fb
  | (F32 | F64 | I8 | I16 | I32 | I64 | U8 | U16 | U32 | Vector _ | Struct _), _ -> false

let is_scalar = function
  | F32 | F64 | I8 | I16 | I32 | I64 | U8 | U16 | U32 -> true
  | Vector _ | Struct _ -> false

let is_integer = function
  | I8 | I16 | I32 | I64 | U8 | U16 | U32 -> true
  | F32 | F64 | Vector _ | Struct _ -> false

let is_float = function
  | F32 | F64 -> true
  | I8 | I16 | I32 | I64 | U8 | U16 | U32 | Vector _ | Struct _ -> false

let rec size_bytes = function
  | I8 | U8 -> 1
  | I16 | U16 -> 2
  | F32 | I32 | U32 -> 4
  | F64 | I64 -> 8
  | Vector (e, lanes) -> lanes * size_bytes e
  | Struct fields -> List.fold_left (fun acc (_, t) -> acc + size_bytes t) 0 fields

let rec scalar_count = function
  | F32 | F64 | I8 | I16 | I32 | I64 | U8 | U16 | U32 -> 1
  | Vector (e, lanes) -> lanes * scalar_count e
  | Struct fields -> List.fold_left (fun acc (_, t) -> acc + scalar_count t) 0 fields

let rec pp ppf = function
  | F32 -> Format.pp_print_string ppf "f32"
  | F64 -> Format.pp_print_string ppf "f64"
  | I8 -> Format.pp_print_string ppf "i8"
  | I16 -> Format.pp_print_string ppf "i16"
  | I32 -> Format.pp_print_string ppf "i32"
  | I64 -> Format.pp_print_string ppf "i64"
  | U8 -> Format.pp_print_string ppf "u8"
  | U16 -> Format.pp_print_string ppf "u16"
  | U32 -> Format.pp_print_string ppf "u32"
  | Vector (e, lanes) -> Format.fprintf ppf "v%d%a" lanes pp e
  | Struct fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (n, t) -> Format.fprintf ppf "%s:%a" n pp t))
      fields

let to_string t = Format.asprintf "%a" pp t

let scalar_of_cpp = function
  | "float" -> Some F32
  | "double" -> Some F64
  | "int8_t" -> Some I8
  | "int16_t" -> Some I16
  | "int32_t" | "int" -> Some I32
  | "int64_t" | "long" -> Some I64
  | "uint8_t" -> Some U8
  | "uint16_t" -> Some U16
  | "uint32_t" | "unsigned" -> Some U32
  | _ -> None

let of_cpp_spelling s =
  match scalar_of_cpp s with
  | Some t -> Some t
  | None ->
    (* Vector spelling: v<N><scalar>, as in AMD's v16float / v8int32. *)
    if String.length s > 1 && s.[0] = 'v' then begin
      let rest = String.sub s 1 (String.length s - 1) in
      let digits = ref 0 in
      while !digits < String.length rest && rest.[!digits] >= '0' && rest.[!digits] <= '9' do
        incr digits
      done;
      if !digits = 0 then None
      else begin
        let lanes = int_of_string (String.sub rest 0 !digits) in
        let elem = String.sub rest !digits (String.length rest - !digits) in
        (* AMD spells the element without the _t suffix: v16int16, v8int32. *)
        let elem_spelling =
          match elem with
          | "int16" -> "int16_t"
          | "int32" -> "int32_t"
          | "int8" -> "int8_t"
          | "uint8" -> "uint8_t"
          | other -> other
        in
        match scalar_of_cpp elem_spelling with
        | Some e when lanes > 0 -> Some (Vector (e, lanes))
        | Some _ | None -> None
      end
    end
    else None

let rec cpp_spelling ?struct_name = function
  | F32 -> "float"
  | F64 -> "double"
  | I8 -> "int8_t"
  | I16 -> "int16_t"
  | I32 -> "int32_t"
  | I64 -> "int64_t"
  | U8 -> "uint8_t"
  | U16 -> "uint16_t"
  | U32 -> "uint32_t"
  | Vector (e, lanes) ->
    let base = cpp_spelling e in
    let short =
      match e with
      | I8 -> "int8" | I16 -> "int16" | I32 -> "int32" | I64 -> "int64"
      | U8 -> "uint8" | U16 -> "uint16" | U32 -> "uint32"
      | F32 -> "float" | F64 -> "double"
      | Vector _ | Struct _ -> base
    in
    Printf.sprintf "v%d%s" lanes short
  | Struct _ ->
    (match struct_name with
     | Some n -> n
     | None -> "struct /* anonymous */")

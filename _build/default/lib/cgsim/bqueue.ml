type t = {
  q_name : string;
  q_dtype : Dtype.t;
  q_cap : int;
  buf : Value.t array;
  mutable head : int;  (* sequence number of the next write *)
  mutable consumers : consumer list;
  mutable producers_open : int;
  mutable producers_total : int;
  mutable closed : bool;
  mutable put_waiters : Sched.waker list;
  mutable get_waiters : Sched.waker list;
  mutable total_put : int;
}

and consumer = {
  c_queue : t;
  mutable cursor : int;  (* sequence number of this consumer's next read *)
}

and producer = {
  p_queue : t;
  mutable open_ : bool;
}

let create ~name ~dtype ~capacity () =
  if capacity <= 0 then invalid_arg ("cgsim: queue capacity must be positive: " ^ name);
  {
    q_name = name;
    q_dtype = dtype;
    q_cap = capacity;
    buf = Array.make capacity (Value.Int 0);
    head = 0;
    consumers = [];
    producers_open = 0;
    producers_total = 0;
    closed = false;
    put_waiters = [];
    get_waiters = [];
    total_put = 0;
  }

let name q = q.q_name
let dtype q = q.q_dtype
let capacity q = q.q_cap
let is_closed q = q.closed
let total_put q = q.total_put

let add_consumer q =
  (* A consumer attached mid-stream starts at the current head: broadcast
     completeness is defined from attachment onward.  The runtime attaches
     all consumers before execution, so in practice cursor = 0. *)
  let c = { c_queue = q; cursor = q.head } in
  q.consumers <- c :: q.consumers;
  c

let add_producer q =
  if q.closed then invalid_arg ("cgsim: adding producer to closed queue " ^ q.q_name);
  let p = { p_queue = q; open_ = true } in
  q.producers_open <- q.producers_open + 1;
  q.producers_total <- q.producers_total + 1;
  p

(* Retirement point: the slowest consumer's cursor.  With no consumers the
   queue acts as a sink and retires immediately (broadcast to zero
   endpoints), mirroring cgsim's behaviour for dangling nets. *)
let min_cursor q =
  match q.consumers with
  | [] -> q.head
  | c :: rest -> List.fold_left (fun acc c -> min acc c.cursor) c.cursor rest

let wake_all_put q =
  let ws = q.put_waiters in
  q.put_waiters <- [];
  List.iter Sched.wake ws

let wake_all_get q =
  let ws = q.get_waiters in
  q.get_waiters <- [];
  List.iter Sched.wake ws

let close q =
  if not q.closed then begin
    q.closed <- true;
    wake_all_get q;
    wake_all_put q
  end

let rec put p v =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("cgsim: put on finished producer of " ^ q.q_name);
  Value.check ~net:q.q_name q.q_dtype v;
  if q.head - min_cursor q >= q.q_cap then begin
    Sched.park (fun w -> q.put_waiters <- w :: q.put_waiters);
    put p v
  end
  else begin
    q.buf.(q.head mod q.q_cap) <- v;
    q.head <- q.head + 1;
    q.total_put <- q.total_put + 1;
    wake_all_get q
  end

let rec get c =
  let q = c.c_queue in
  if c.cursor < q.head then begin
    let v = q.buf.(c.cursor mod q.q_cap) in
    c.cursor <- c.cursor + 1;
    (* Advancing the slowest consumer may free space for producers. *)
    wake_all_put q;
    v
  end
  else if q.closed then raise Sched.End_of_stream
  else begin
    Sched.park (fun w -> q.get_waiters <- w :: q.get_waiters);
    get c
  end

let get_block c n =
  if n < 0 then invalid_arg "cgsim: get_block with negative count";
  Array.init n (fun _ -> get c)

let put_block p vs = Array.iter (put p) vs

let peek c =
  let q = c.c_queue in
  if c.cursor < q.head then Some q.buf.(c.cursor mod q.q_cap)
  else if q.closed then raise Sched.End_of_stream
  else None

let available c =
  let q = c.c_queue in
  q.head - c.cursor

let producer_done p =
  if p.open_ then begin
    p.open_ <- false;
    let q = p.p_queue in
    q.producers_open <- q.producers_open - 1;
    if q.producers_open <= 0 then close q
  end

type transport =
  | Stream
  | Window of int
  | Rtp
  | Gmio

type t = {
  transport : transport option;
  beat_bytes : int option;
  depth : int option;
}

let default = { transport = None; beat_bytes = None; depth = None }

let stream = { default with transport = Some Stream }

let window bytes = { default with transport = Some (Window bytes) }

let rtp = { default with transport = Some Rtp }

let gmio = { default with transport = Some Gmio }

let with_beat beat_bytes t = { t with beat_bytes = Some beat_bytes }

let with_depth depth t = { t with depth = Some depth }

let transport_equal a b =
  match a, b with
  | Stream, Stream | Rtp, Rtp | Gmio, Gmio -> true
  | Window x, Window y -> x = y
  | (Stream | Window _ | Rtp | Gmio), _ -> false

let equal a b =
  Option.equal transport_equal a.transport b.transport
  && Option.equal Int.equal a.beat_bytes b.beat_bytes
  && Option.equal Int.equal a.depth b.depth

let pp_transport ppf = function
  | Stream -> Format.pp_print_string ppf "stream"
  | Window b -> Format.fprintf ppf "window<%d>" b
  | Rtp -> Format.pp_print_string ppf "rtp"
  | Gmio -> Format.pp_print_string ppf "gmio"

let pp ppf t =
  let field name pp_v ppf = function
    | None -> ignore name; ignore ppf
    | Some v -> Format.fprintf ppf " %s=%a" name pp_v v
  in
  Format.fprintf ppf "{%a%a%a }"
    (field "transport" pp_transport) t.transport
    (field "beat" Format.pp_print_int) t.beat_bytes
    (field "depth" Format.pp_print_int) t.depth

let merge_field ~what ~eq ~show a b =
  match a, b with
  | None, x | x, None -> Ok x
  | Some x, Some y ->
    if eq x y then Ok (Some x)
    else
      Error
        (Printf.sprintf "incompatible %s settings on connected ports: %s vs %s" what (show x)
           (show y))

let merge a b =
  let ( let* ) r f = Result.bind r f in
  let show_transport tr = Format.asprintf "%a" pp_transport tr in
  let* transport =
    merge_field ~what:"transport" ~eq:transport_equal ~show:show_transport a.transport b.transport
  in
  let* beat_bytes =
    merge_field ~what:"beat size" ~eq:Int.equal ~show:string_of_int a.beat_bytes b.beat_bytes
  in
  let* depth =
    merge_field ~what:"queue depth" ~eq:Int.equal ~show:string_of_int a.depth b.depth
  in
  Ok { transport; beat_bytes; depth }

let resolved_transport t = Option.value t.transport ~default:Stream

let default_stream_depth = 64

let resolved_depth ~elem_bytes t =
  match t.depth with
  | Some d -> d
  | None ->
    (match resolved_transport t with
     | Stream -> default_stream_depth
     | Rtp -> 1
     | Gmio -> 4 * default_stream_depth
     | Window bytes ->
       (* Two windows in flight models the AIE ping-pong buffer pair. *)
       let elems = max 1 (bytes / max 1 elem_bytes) in
       2 * elems)

let validate ~elem_bytes t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    match resolved_transport t with
    | Stream | Rtp | Gmio -> Ok ()
    | Window bytes ->
      if bytes <= 0 then Error "window size must be positive"
      else if elem_bytes > 0 && bytes mod elem_bytes <> 0 then
        Error
          (Printf.sprintf "window size %d is not a multiple of the element size %d" bytes
             elem_bytes)
      else Ok ()
  in
  let* () =
    match t.beat_bytes with
    | None | Some 4 | Some 8 | Some 16 -> Ok ()
    | Some b -> Error (Printf.sprintf "beat size must be 4, 8 or 16 bytes, got %d" b)
  in
  match t.depth with
  | Some d when d <= 0 -> Error "queue depth must be positive"
  | Some _ | None -> Ok ()

type source = {
  src_name : string;
  make_pull : unit -> unit -> Value.t option;
  length : int option;
}

type sink = {
  snk_name : string;
  push : Value.t -> unit;
}

let of_list values =
  {
    src_name = "list-source";
    make_pull =
      (fun () ->
        let rest = ref values in
        fun () ->
          match !rest with
          | [] -> None
          | v :: tl ->
            rest := tl;
            Some v);
    length = Some (List.length values);
  }

let of_array values =
  {
    src_name = "array-source";
    make_pull =
      (fun () ->
        let i = ref 0 in
        fun () ->
          if !i >= Array.length values then None
          else begin
            let v = values.(!i) in
            incr i;
            Some v
          end);
    length = Some (Array.length values);
  }

let of_f32_array values =
  let tagged = Array.map (fun f -> Value.Float (Value.round_f32 f)) values in
  { (of_array tagged) with src_name = "f32-source" }

let of_int_array dtype values =
  let tagged = Array.map (fun i -> Value.Int (Value.wrap_int dtype i)) values in
  { (of_array tagged) with src_name = "int-source" }

let repeat n values =
  if n < 0 then invalid_arg "cgsim: Io.repeat with negative count";
  let len = List.length values in
  let arr = Array.of_list values in
  {
    src_name = Printf.sprintf "repeat%d-source" n;
    make_pull =
      (fun () ->
        let produced = ref 0 in
        let total = n * len in
        fun () ->
          if !produced >= total then None
          else begin
            let v = arr.(!produced mod len) in
            incr produced;
            Some v
          end);
    length = Some (n * len);
  }

let of_fun f = { src_name = "fun-source"; make_pull = (fun () -> f); length = None }

let rtp v =
  {
    src_name = "rtp-source";
    make_pull =
      (fun () ->
        let sent = ref false in
        fun () ->
          if !sent then None
          else begin
            sent := true;
            Some v
          end);
    length = Some 1;
  }

let source_name s = s.src_name

let with_source_name name s = { s with src_name = name }

let buffer () =
  let acc = ref [] in
  ( { snk_name = "buffer-sink"; push = (fun v -> acc := v :: !acc) },
    fun () -> List.rev !acc )

let f32_buffer () =
  let sink, contents = buffer () in
  ( { sink with snk_name = "f32-buffer-sink" },
    fun () -> Array.of_list (List.map Value.to_float (contents ())) )

let int_buffer () =
  let sink, contents = buffer () in
  ( { sink with snk_name = "int-buffer-sink" },
    fun () -> Array.of_list (List.map Value.to_int (contents ())) )

let counter () =
  let n = ref 0 in
  { snk_name = "counter-sink"; push = (fun _ -> incr n) }, fun () -> !n

let rtp_sink () =
  let cell = ref None in
  ( { snk_name = "rtp-sink"; push = (fun v -> cell := Some v) },
    fun () -> !cell )

let null () = { snk_name = "null-sink"; push = ignore }

let of_consumer push = { snk_name = "consumer-sink"; push }

let sink_name s = s.snk_name

let with_sink_name name s = { s with snk_name = name }

let source_pull s = s.make_pull ()

let source_length s = s.length

let sink_push s v = s.push v

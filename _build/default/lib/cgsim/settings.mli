(** Behaviour-affecting port settings.

    In cgsim these are non-type template arguments on [KernelReadPort] /
    [KernelWritePort] (Section 3.4): marking a port as a runtime parameter,
    the beat size of the underlying bus (e.g. AXI), window (ping-pong
    buffer) sizes, and queue depth.  When two parameterized ports meet on
    one [IoConnector], their settings are merged; incompatible settings are
    a graph-construction error (the analogue of the paper's compile-time
    error). *)

(** How data crosses the port. *)
type transport =
  | Stream  (** Element-at-a-time AXI stream (the default). *)
  | Window of int
      (** Block transfer through a ping-pong buffer of the given size in
          bytes; the kernel is invoked once per full window. *)
  | Rtp  (** Runtime parameter: a scalar written once per invocation. *)
  | Gmio
      (** Global-memory I/O: DMA to DDR through the NoC — higher
          bandwidth and much deeper buffering than a PLIO stream, at the
          cost of hundreds of cycles of access latency.  Listed as
          unexposed in the paper's Section 6; implemented here. *)

type t = {
  transport : transport option;
  beat_bytes : int option;  (** AXI beat width in bytes (4, 8 or 16). *)
  depth : int option;  (** Simulation queue capacity in elements. *)
}

val default : t
(** All fields unset; unset fields act as wildcards in {!merge}. *)

val stream : t
val window : int -> t
val rtp : t
val gmio : t
val with_beat : int -> t -> t
val with_depth : int -> t -> t

val equal : t -> t -> bool

(** [merge a b] unifies two settings: unset fields take the other side's
    value, set fields must agree.  Errors carry a human-readable reason.
    Merging is commutative and associative (property-tested). *)
val merge : t -> t -> (t, string) result

(** Final transport after defaulting ([Stream] when unset). *)
val resolved_transport : t -> transport

(** Queue capacity after defaulting: explicit [depth] if set; otherwise
    windows get 2 in-flight windows worth of elements and streams a default
    of [default_stream_depth]. *)
val resolved_depth : elem_bytes:int -> t -> int

val default_stream_depth : int

(** Validate a fully-merged setting for a net of the given element size:
    window sizes must be a positive multiple of the element size, beats
    must be 4/8/16, depth positive. *)
val validate : elem_bytes:int -> t -> (unit, string) result

val pp : Format.formatter -> t -> unit

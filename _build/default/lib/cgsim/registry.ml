exception Not_found_kernel of string

let table : (string, Kernel.t) Hashtbl.t = Hashtbl.create 32

let order : string list ref = ref []

let register (k : Kernel.t) =
  match Hashtbl.find_opt table k.Kernel.name with
  | Some existing when existing == k -> ()
  | Some _ ->
    invalid_arg
      (Printf.sprintf "cgsim: kernel name %s is already registered with a different definition"
         k.Kernel.name)
  | None ->
    Hashtbl.add table k.Kernel.name k;
    order := k.Kernel.name :: !order

let find name = Hashtbl.find_opt table name

let find_exn name =
  match find name with
  | Some k -> k
  | None -> raise (Not_found_kernel name)

let mem name = Hashtbl.mem table name

let names () = List.rev !order

let reset () =
  Hashtbl.reset table;
  order := []

(** Element type descriptors for stream data.

    Every net (stream connection) in a compute graph carries elements of a
    single {!t}.  Mirrors cgsim's use of C++ template type parameters on
    [KernelReadPort<T>] / [KernelWritePort<T>]: the set of scalar types is
    the set supported by AIE stream interfaces, plus fixed-lane vectors and
    user-defined structs (cgsim explicitly supports struct-typed streams,
    which the AMD AIE framework does not). *)

type t =
  | F32
  | F64
  | I8
  | I16
  | I32
  | I64
  | U8
  | U16
  | U32
  | Vector of t * int  (** [Vector (elem, lanes)]; [elem] must be scalar. *)
  | Struct of (string * t) list
      (** Named fields, in declaration order.  Fields may themselves be
          vectors or nested structs. *)

val equal : t -> t -> bool

val is_scalar : t -> bool

val is_integer : t -> bool

val is_float : t -> bool

(** Size of one element in bytes, using natural (packed) layout.  Used to
    express the paper's per-block byte sizes and AXI beat accounting. *)
val size_bytes : t -> int

(** Number of scalar lanes contained in the type (1 for scalars). *)
val scalar_count : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Parse the C++-ish spelling used by CGC sources and attribute values:
    "float", "double", "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "int", "unsigned".  Vectors are
    spelled "v<N><scalar>", e.g. "v16float".  Returns [None] for unknown
    spellings (structs have no textual spelling; they are built by name
    resolution in CGC's sema). *)
val of_cpp_spelling : string -> t option

(** C++ spelling for code generation; structs print their tag via
    [struct_name]. *)
val cpp_spelling : ?struct_name:string -> t -> string

(** Global kernel registry.

    The serialized graph form cannot embed OCaml closures, just as the
    paper's flattened constexpr structure cannot embed coroutine frames —
    it stores references to template functions instead (Section 3.5).  The
    registry plays that role here: kernels register under their name;
    serialized graphs reference them by key; the runtime, x86sim, aiesim
    and the extractor all resolve through it. *)

(** Register a kernel under its own name.  Raises [Invalid_argument] when
    the name is taken by a different kernel; re-registering the identical
    kernel is a no-op (library modules may be linked and initialized
    twice). *)
val register : Kernel.t -> unit

val find : string -> Kernel.t option

(** Like {!find} but raises [Not_found_kernel] with the missing key. *)
val find_exn : string -> Kernel.t

exception Not_found_kernel of string

val mem : string -> bool

(** All registered kernel names in registration order. *)
val names : unit -> string list

(** Remove everything — test isolation only. *)
val reset : unit -> unit

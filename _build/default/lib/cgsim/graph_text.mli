(** Textual codec for serialized compute graphs.

    The flattened graph form ({!Serialized.t}) is plain data — the whole
    point of the paper's constexpr-variable design is that it crosses
    tool boundaries.  This module gives it a stable, human-readable
    on-disk syntax so graphs can be dumped by one tool (e.g. [cgx]) and
    reloaded by another, golden-tested, or diffed.

    The format is line-oriented:

    {v
    cgsim-graph 1
    graph farrow
    kernel farrow_stage1_0 farrow_stage1 aie
      port in in i16 window:4096
      port c01 out v2i16 stream
      nets 1 2
    net 0 i16 transport=rtp
      input d
    net 2 v2i16 transport=stream
      writer 0.1
      reader 1.0
      attr plio_name str bitonic_out
    inputs 0 1
    outputs 4
    v}

    Round-trip property: [of_string (to_string g)] is topologically equal
    to [g] (tested). *)

val to_string : Serialized.t -> string

val of_string : string -> (Serialized.t, string) result

(** Dtype spellings used by the format ("f32", "v16f32",
    "{a:f32;b:i32}"). *)
val dtype_to_string : Dtype.t -> string

val dtype_of_string : string -> (Dtype.t, string) result

lib/cgsim/runtime.mli: Io Port Sched Serialized

lib/cgsim/graph_text.mli: Dtype Serialized

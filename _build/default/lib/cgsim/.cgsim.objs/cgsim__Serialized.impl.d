lib/cgsim/serialized.ml: Array Attr Dtype Format Int Kernel List Option Printf Settings String

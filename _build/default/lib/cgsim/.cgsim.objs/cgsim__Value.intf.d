lib/cgsim/value.mli: Dtype Format

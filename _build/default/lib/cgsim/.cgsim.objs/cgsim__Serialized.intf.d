lib/cgsim/serialized.mli: Attr Dtype Format Kernel Settings

lib/cgsim/registry.ml: Hashtbl Kernel List Printf

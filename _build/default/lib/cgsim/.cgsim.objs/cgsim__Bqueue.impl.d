lib/cgsim/bqueue.ml: Array Dtype List Sched Value

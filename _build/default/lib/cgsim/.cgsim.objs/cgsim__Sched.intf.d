lib/cgsim/sched.mli: Format

lib/cgsim/io.mli: Dtype Value

lib/cgsim/graph_text.ml: Array Attr Buffer Dtype Kernel List Printf Serialized Settings String

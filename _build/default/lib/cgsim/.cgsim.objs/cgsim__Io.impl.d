lib/cgsim/io.ml: Array List Printf Value

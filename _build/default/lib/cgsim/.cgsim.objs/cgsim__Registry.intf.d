lib/cgsim/registry.mli: Kernel

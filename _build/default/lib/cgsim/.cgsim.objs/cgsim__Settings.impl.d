lib/cgsim/settings.ml: Format Int Option Printf Result

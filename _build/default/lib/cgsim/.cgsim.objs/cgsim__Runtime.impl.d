lib/cgsim/runtime.ml: Array Bqueue Dtype Format Fun Io Kernel List Port Printexc Printf Registry Sched Serialized Settings String

lib/cgsim/sched.ml: Effect Format List Queue Unix

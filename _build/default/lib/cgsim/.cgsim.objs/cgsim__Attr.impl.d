lib/cgsim/attr.ml: Format Hashtbl List String

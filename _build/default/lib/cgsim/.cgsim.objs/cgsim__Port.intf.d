lib/cgsim/port.mli: Dtype Value

lib/cgsim/builder.mli: Attr Dtype Kernel Serialized

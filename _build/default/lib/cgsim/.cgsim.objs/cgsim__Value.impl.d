lib/cgsim/value.ml: Array Dtype Float Format Int32 List Printf String

lib/cgsim/builder.ml: Array Attr Dtype Format Hashtbl Kernel List Option Printf Registry Serialized Settings String

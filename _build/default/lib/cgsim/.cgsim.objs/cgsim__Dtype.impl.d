lib/cgsim/dtype.ml: Format List Printf String

lib/cgsim/kernel.ml: Array Dtype Format Hashtbl List Port Printf Settings String

lib/cgsim/attr.mli: Format

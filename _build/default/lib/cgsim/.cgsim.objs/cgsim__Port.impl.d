lib/cgsim/port.ml: Array Dtype Printf Value

lib/cgsim/settings.mli: Format

lib/cgsim/bqueue.mli: Dtype Value

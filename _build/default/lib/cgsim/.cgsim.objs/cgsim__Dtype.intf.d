lib/cgsim/dtype.mli: Format

lib/cgsim/kernel.mli: Dtype Format Port Settings

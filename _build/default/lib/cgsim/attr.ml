type value =
  | S of string
  | I of int

type t = {
  key : string;
  value : value;
}

let s key v = { key; value = S v }

let i key v = { key; value = I v }

let value_equal a b =
  match a, b with
  | S x, S y -> String.equal x y
  | I x, I y -> x = y
  | (S _ | I _), _ -> false

let equal a b = String.equal a.key b.key && value_equal a.value b.value

let pp ppf t =
  match t.value with
  | S v -> Format.fprintf ppf "%s=%S" t.key v
  | I v -> Format.fprintf ppf "%s=%d" t.key v

let find key attrs =
  List.fold_left (fun acc a -> if String.equal a.key key then Some a.value else acc) None attrs

let find_string key attrs =
  match find key attrs with
  | Some (S v) -> Some v
  | Some (I _) | None -> None

let find_int key attrs =
  match find key attrs with
  | Some (I v) -> Some v
  | Some (S _) | None -> None

let merge old_attrs new_attrs =
  let combined = old_attrs @ new_attrs in
  (* Keep the last occurrence of each key, preserving first-seen order. *)
  let last_of key = find key combined in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun a ->
      if Hashtbl.mem seen a.key then None
      else begin
        Hashtbl.add seen a.key ();
        match last_of a.key with
        | Some value -> Some { a with value }
        | None -> None
      end)
    combined

let key_plio_name = "plio_name"
let key_plio_width = "plio_width"
let key_buffering = "buffering"

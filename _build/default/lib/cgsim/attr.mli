(** Free-form connection attributes.

    Key/value pairs with string keys and string or integer values
    (Section 3.4).  They never affect simulation behaviour; they carry
    auxiliary information for the graph extractor (PLIO port names, PLIO
    widths, buffering hints) that cannot be inferred automatically. *)

type value =
  | S of string
  | I of int

type t = {
  key : string;
  value : value;
}

val s : string -> string -> t
val i : string -> int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Lookups over attribute lists; later entries override earlier ones,
    matching how repeated [attach_attributes] calls behave. *)

val find : string -> t list -> value option
val find_string : string -> t list -> string option
val find_int : string -> t list -> int option

(** [merge old new_] appends [new_] with override semantics and no
    duplicate keys in the result. *)
val merge : t list -> t list -> t list

(** Well-known keys used by the AIE code generator. *)

val key_plio_name : string
val key_plio_width : string
val key_buffering : string

(** AIE array floorplan: tiles, placement and stream routing.

    Models the structural side of the array — the 2D grid of compute
    tiles above a shim row of PL/NoC interface tiles — enough to derive
    stream-switch hop counts for routed connections.  Placement follows
    the aiecompiler default of packing kernels column-major near their
    shim I/O. *)

type coord = {
  col : int;
  row : int;  (** row 0 = shim (interface) row; compute rows start at 1. *)
}

val pp_coord : Format.formatter -> coord -> unit
val equal_coord : coord -> coord -> bool

type t

(** [create ~cols ~rows ()] — compute grid of [cols] x [rows] above the
    shim row.  Defaults come from {!Cfg}. *)
val create : ?cols:int -> ?rows:int -> unit -> t

val cols : t -> int
val rows : t -> int

exception Placement_error of string

(** [place t ~name] assigns the next free compute tile (column-major from
    column 0, row 1 upward).  Raises {!Placement_error} when the array is
    full or the name is already placed. *)
val place : t -> name:string -> coord

(** [place_at t ~name coord] pins a kernel to a tile. *)
val place_at : t -> name:string -> coord -> coord

val placement : t -> name:string -> coord option

(** Shim tile serving a given column (used for PLIO entry/exit). *)
val shim_for : t -> col:int -> coord

(** Manhattan hop count between two tiles; neighbouring tiles share
    memory and count as 0 hops (AIE neighbour communication bypasses the
    stream switch). *)
val hops : coord -> coord -> int

(** Stream latency in cycles for a route of [hops] switches. *)
val route_latency_cycles : int -> int

val placements : t -> (string * coord) list

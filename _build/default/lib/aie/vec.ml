let check_lanes name a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "aie: %s: lane mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let r32 = Cgsim.Value.round_f32

let fsplat lanes v = Array.make lanes (r32 v)

let map2 name f a b =
  check_lanes name a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let fadd a b = map2 "fadd" (fun x y -> r32 (x +. y)) a b

let fsub a b = map2 "fsub" (fun x y -> r32 (x -. y)) a b

let fmul a b = map2 "fmul" (fun x y -> r32 (x *. y)) a b

let fmac acc a b =
  check_lanes "fmac" acc a;
  check_lanes "fmac" a b;
  Array.init (Array.length acc) (fun i -> r32 (acc.(i) +. (a.(i) *. b.(i))))

let fmax a b = map2 "fmax" (fun x y -> if x >= y then x else y) a b

let fmin a b = map2 "fmin" (fun x y -> if x <= y then x else y) a b

let fshuffle v idx =
  Array.map
    (fun i ->
      if i < 0 || i >= Array.length v then
        invalid_arg (Printf.sprintf "aie: fshuffle index %d out of range" i)
      else v.(i))
    idx

let fselect mask a b =
  check_lanes "fselect" a b;
  if Array.length mask <> Array.length a then invalid_arg "aie: fselect mask lane mismatch";
  Array.init (Array.length a) (fun i -> if mask.(i) then a.(i) else b.(i))

let fsum v = Array.fold_left ( +. ) 0.0 v

let isplat lanes v = Array.make lanes v

let iadd a b = map2 "iadd" ( + ) a b

let isub a b = map2 "isub" ( - ) a b

let imul a b = map2 "imul" ( * ) a b

let imac acc a b =
  check_lanes "imac" acc a;
  check_lanes "imac" a b;
  Array.init (Array.length acc) (fun i -> acc.(i) + (a.(i) * b.(i)))

let ishuffle v idx =
  Array.map
    (fun i ->
      if i < 0 || i >= Array.length v then
        invalid_arg (Printf.sprintf "aie: ishuffle index %d out of range" i)
      else v.(i))
    idx

let srs dtype shift acc =
  if shift < 0 then invalid_arg "aie: srs with negative shift";
  (* Round to nearest (ties toward +inf): add half, then arithmetic shift.
     This is the AIE default rounding mode for accumulator moves. *)
  let half = if shift = 0 then 0 else 1 lsl (shift - 1) in
  Array.map (fun x -> Cgsim.Value.clamp_int dtype ((x + half) asr shift)) acc

let ups shift v =
  if shift < 0 then invalid_arg "aie: ups with negative shift";
  Array.map (fun x -> x lsl shift) v

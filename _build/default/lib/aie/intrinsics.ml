let ceil_div a b = (a + b - 1) / b

let fp_slots lanes = max 1 (ceil_div lanes Cfg.fp32_macs_per_cycle)

let i16_slots lanes = max 1 (ceil_div lanes Cfg.int16_macs_per_cycle)

let i32_slots lanes = max 1 (ceil_div lanes Cfg.int32_macs_per_cycle)

let fp2 name f a b =
  Trace.vop ~slots:(fp_slots (Array.length a)) name;
  f a b

let fpadd a b = fp2 "fpadd" Vec.fadd a b

let fpsub a b = fp2 "fpsub" Vec.fsub a b

let fpmul a b = fp2 "fpmul" Vec.fmul a b

let fpmac acc a b =
  Trace.vop ~slots:(fp_slots (Array.length a)) "fpmac";
  Vec.fmac acc a b

let fpmax a b = fp2 "fpmax" Vec.fmax a b

let fpmin a b = fp2 "fpmin" Vec.fmin a b

let fpshuffle v idx =
  Trace.vop ~slots:(fp_slots (Array.length idx)) "fpshuffle";
  Vec.fshuffle v idx

let fpselect mask a b =
  Trace.vop ~slots:(fp_slots (Array.length a)) "fpselect";
  Vec.fselect mask a b

let fpsplat lanes v =
  Trace.vop "fpsplat";
  Vec.fsplat lanes v

let fpsum v =
  (* Tree reduction: log2(lanes) shuffle+add pairs. *)
  let lanes = Array.length v in
  let steps = max 1 (int_of_float (ceil (log (float_of_int (max 2 lanes)) /. log 2.0))) in
  Trace.vop ~slots:steps "fpsum";
  Vec.fsum v

let i16_2 name f a b =
  Trace.vop ~slots:(i16_slots (Array.length a)) name;
  f a b

let mul16 a b = i16_2 "mul16" Vec.imul a b

let mac16 acc a b =
  Trace.vop ~slots:(i16_slots (Array.length a)) "mac16";
  Vec.imac acc a b

let add16 a b = i16_2 "add16" Vec.iadd a b

let sub16 a b = i16_2 "sub16" Vec.isub a b

let shuffle16 v idx =
  Trace.vop ~slots:(i16_slots (Array.length idx)) "shuffle16";
  Vec.ishuffle v idx

let mac32 acc a b =
  Trace.vop ~slots:(i32_slots (Array.length a)) "mac32";
  Vec.imac acc a b

let add32 a b =
  Trace.vop ~slots:(i32_slots (Array.length a)) "add32";
  Vec.iadd a b

let srs16 ~shift acc =
  Trace.vop ~slots:(i16_slots (Array.length acc)) "srs16";
  Vec.srs Cgsim.Dtype.I16 shift acc

let srs32 ~shift acc =
  Trace.vop ~slots:(i32_slots (Array.length acc)) "srs32";
  Vec.srs Cgsim.Dtype.I32 shift acc

let ups16 ~shift v =
  Trace.vop ~slots:(i16_slots (Array.length v)) "ups16";
  Vec.ups shift v

let slice name mem off lanes =
  if off < 0 || off + lanes > Array.length mem then
    invalid_arg
      (Printf.sprintf "aie: %s out of range (off=%d lanes=%d len=%d)" name off lanes
         (Array.length mem))

let load_f32 mem off lanes =
  slice "load_f32" mem off lanes;
  Trace.load ~bytes:(4 * lanes);
  Array.sub mem off lanes

let store_f32 mem off v =
  let lanes = Array.length v in
  slice "store_f32" mem off lanes;
  Trace.store ~bytes:(4 * lanes);
  Array.blit v 0 mem off lanes

let load_i16 mem off lanes =
  slice "load_i16" mem off lanes;
  Trace.load ~bytes:(2 * lanes);
  Array.sub mem off lanes

let store_i16 mem off v =
  let lanes = Array.length v in
  slice "store_i16" mem off lanes;
  Trace.store ~bytes:(2 * lanes);
  Array.blit v 0 mem off lanes

let scalar_op ?count name = Trace.sop ?count name

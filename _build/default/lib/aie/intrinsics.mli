(** Traced AIE intrinsics.

    The emulation layer the paper obtains from AMD's x86 [aietools]
    headers (Section 3.9): kernels call these instead of raw arithmetic so
    that (a) functional results match AIE semantics (f32 rounding,
    shift-round-saturate fixed point) and (b) each call emits the
    architectural cost events that the cycle-approximate simulator
    consumes.  Outside of aiesim tracing the emission is a single disabled
    branch, so cgsim/x86sim runs pay essentially nothing.

    Cost model: one vector-unit issue slot processes 8 fp32 lanes, 8 int32
    lanes or 32 int16 lanes per cycle ({!Cfg}); wider vectors occupy
    proportionally more slots.  Vector loads/stores move data through the
    load/store units in 32-byte beats. *)

(** {1 fp32 vector ops (8-lane granularity)} *)

val fpadd : float array -> float array -> float array
val fpsub : float array -> float array -> float array
val fpmul : float array -> float array -> float array
val fpmac : float array -> float array -> float array -> float array
val fpmax : float array -> float array -> float array
val fpmin : float array -> float array -> float array
val fpshuffle : float array -> int array -> float array
val fpselect : bool array -> float array -> float array -> float array
val fpsplat : int -> float -> float array

(** Horizontal sum; costs log2(lanes) vector ops. *)
val fpsum : float array -> float

(** {1 int16 vector ops (32-lane granularity)} *)

val mul16 : int array -> int array -> int array
val mac16 : int array -> int array -> int array -> int array
val add16 : int array -> int array -> int array
val sub16 : int array -> int array -> int array
val shuffle16 : int array -> int array -> int array

(** {1 int32 vector ops (8-lane granularity)} *)

val mac32 : int array -> int array -> int array -> int array
val add32 : int array -> int array -> int array

(** {1 accumulator moves} *)

val srs16 : shift:int -> int array -> int array
(** Shift-round-saturate accumulators to int16 lanes. *)

val srs32 : shift:int -> int array -> int array

val ups16 : shift:int -> int array -> int array

(** {1 vector loads/stores (data memory)} *)

val load_f32 : float array -> int -> int -> float array
(** [load_f32 mem off lanes] reads lanes from a local array, charging the
    load units. *)

val store_f32 : float array -> int -> float array -> unit

val load_i16 : int array -> int -> int -> int array

val store_i16 : int array -> int -> int array -> unit

(** {1 scalar ops} *)

val scalar_op : ?count:int -> string -> unit
(** Charge scalar-unit work with no functional effect (address updates,
    loop control the compiler would not hide). *)

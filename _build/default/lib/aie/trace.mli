(** Instruction-level operation tracing.

    aiesim is cycle-approximate: it first executes a graph functionally
    under the cgsim scheduler while recording, per kernel fiber, the
    sequence of architectural operations the kernel performed (vector ops,
    scalar ops, loads/stores, stream and window accesses, pipelined-loop
    regions, iteration marks).  A timed replay then assigns cycles to the
    trace using the VLIW issue model.

    Recording is keyed by the running fiber's name ({!Cgsim.Sched}), so the
    same kernel bodies run untraced under plain cgsim or x86sim (a single
    branch on {!enabled}) and traced under aiesim.  The {!Intrinsics}
    module emits compute events; the simulator's port wrappers emit I/O
    events. *)

type transport =
  | Stream
  | Window of int  (** window size in bytes *)
  | Rtp
  | Gmio

type event =
  | Vop of { name : string; slots : int }
      (** Vector-unit operation occupying [slots] issue slots (usually 1;
          wide shuffles or 128-bit stream pushes may take more). *)
  | Sop of { name : string; count : int }  (** [count] scalar-unit ops. *)
  | Load of { bytes : int }  (** Data-memory read through a load unit. *)
  | Store of { bytes : int }
  | Port_read of { port : string; bytes : int; transport : transport; thunked : bool }
  | Port_write of { port : string; bytes : int; transport : transport; thunked : bool }
  | Loop_enter of { trip : int }
      (** Start of a software-pipelined loop region executing [trip]
          iterations; events until the matching {!Loop_exit} describe ONE
          iteration's body (the body is executed [trip] times functionally
          but recorded once; see {!with_pipelined_loop}). *)
  | Loop_exit
  | Loop_abort
      (** The recorded first iteration ended exceptionally (end of stream
          or cancellation); the region must not be scaled by the trip
          count. *)
  | Iteration_mark
      (** Kernel main-loop boundary; aiesim reports the time between marks
          as the paper's "time between iterations" (Table 1). *)

val pp_event : Format.formatter -> event -> unit

type recorder

val create_recorder : unit -> recorder

val events : recorder -> event list

val event_count : recorder -> int

(** {1 Global recording control} *)

(** Master switch; when [false] (the default) every emit is a no-op. *)
val enabled : bool ref

(** Bind a recorder to a fiber name (the kernel instance name).  Events
    performed while that fiber runs land in its recorder. *)
val bind : string -> recorder -> unit

val unbind : string -> unit

val clear_bindings : unit -> unit

(** Emit an event for the current fiber (no-op when disabled or when the
    current fiber has no recorder — sources, sinks and host code). *)
val emit : event -> unit

(** {1 Emission helpers used by kernel code} *)

val vop : ?slots:int -> string -> unit

val sop : ?count:int -> string -> unit

val load : bytes:int -> unit

val store : bytes:int -> unit

val mark_iteration : unit -> unit

(** [with_pipelined_loop ~trip body] marks a software-pipelined inner
    loop: functionally [body i] runs for every [i] in [0..trip-1], but
    only the first iteration's events are recorded inside a
    [Loop_enter]/[Loop_exit] pair (the VLIW model multiplies by the trip
    count).  This keeps traces compact and mirrors how the hardware
    pipeliner charges II * trip + prologue. *)
val with_pipelined_loop : trip:int -> (int -> unit) -> unit

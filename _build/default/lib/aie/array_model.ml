type coord = {
  col : int;
  row : int;
}

let pp_coord ppf c = Format.fprintf ppf "(%d,%d)" c.col c.row

let equal_coord a b = a.col = b.col && a.row = b.row

exception Placement_error of string

type t = {
  cols : int;
  rows : int;
  occupied : (coord, string) Hashtbl.t;
  by_name : (string, coord) Hashtbl.t;
  mutable next : int;  (* linear scan position for auto-placement *)
}

let create ?(cols = Cfg.array_cols) ?(rows = Cfg.array_rows) () =
  if cols <= 0 || rows <= 0 then raise (Placement_error "array dimensions must be positive");
  { cols; rows; occupied = Hashtbl.create 16; by_name = Hashtbl.create 16; next = 0 }

let cols t = t.cols

let rows t = t.rows

let coord_of_linear t i = { col = i / t.rows; row = 1 + (i mod t.rows) }

let place_at t ~name coord =
  if coord.row < 1 || coord.row > t.rows || coord.col < 0 || coord.col >= t.cols then
    raise
      (Placement_error
         (Format.asprintf "tile %a outside the %dx%d compute grid" pp_coord coord t.cols t.rows));
  if Hashtbl.mem t.by_name name then
    raise (Placement_error (Printf.sprintf "kernel %s is already placed" name));
  (match Hashtbl.find_opt t.occupied coord with
   | Some other ->
     raise
       (Placement_error
          (Format.asprintf "tile %a already occupied by %s" pp_coord coord other))
   | None -> ());
  Hashtbl.add t.occupied coord name;
  Hashtbl.add t.by_name name coord;
  coord

let place t ~name =
  if Hashtbl.mem t.by_name name then
    raise (Placement_error (Printf.sprintf "kernel %s is already placed" name));
  let total = t.cols * t.rows in
  let rec scan i =
    if i >= total then raise (Placement_error "AIE array is full")
    else begin
      let c = coord_of_linear t i in
      if Hashtbl.mem t.occupied c then scan (i + 1)
      else begin
        t.next <- i + 1;
        place_at t ~name c
      end
    end
  in
  scan t.next

let placement t ~name = Hashtbl.find_opt t.by_name name

let shim_for t ~col =
  if col < 0 || col >= t.cols then
    raise (Placement_error (Printf.sprintf "shim column %d out of range" col));
  { col; row = 0 }

let hops a b =
  let manhattan = abs (a.col - b.col) + abs (a.row - b.row) in
  (* Direct neighbours share data memory: no stream-switch traversal. *)
  if manhattan <= 1 then 0 else manhattan

let route_latency_cycles hops = hops * Cfg.stream_hop_latency_cycles

let placements t = Hashtbl.fold (fun name coord acc -> (name, coord) :: acc) t.by_name []

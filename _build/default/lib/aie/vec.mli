(** Pure (untraced) vector value helpers.

    AIE vector registers are modelled as plain OCaml arrays: [float array]
    for fp32 lanes and [int array] for integer lanes.  These helpers are
    the functional semantics only; {!Intrinsics} wraps them with cost
    emission.  All operations are lane-wise and length-checked. *)

val check_lanes : string -> 'a array -> 'b array -> unit
(** Raises [Invalid_argument] when lane counts differ. *)

(** {1 fp32 lanes} *)

val fsplat : int -> float -> float array
val fadd : float array -> float array -> float array
val fsub : float array -> float array -> float array
val fmul : float array -> float array -> float array

(** [fmac acc a b] is [acc + a*b] per lane, rounded to f32. *)
val fmac : float array -> float array -> float array -> float array

val fmax : float array -> float array -> float array
val fmin : float array -> float array -> float array

(** [fshuffle v idx] selects lanes: result.(i) = v.(idx.(i)). *)
val fshuffle : float array -> int array -> float array

(** [fselect mask a b] takes a.(i) when mask.(i), else b.(i). *)
val fselect : bool array -> float array -> float array -> float array

val fsum : float array -> float

(** {1 integer lanes} *)

val isplat : int -> int -> int array
val iadd : int array -> int array -> int array
val isub : int array -> int array -> int array
val imul : int array -> int array -> int array

(** [imac acc a b] widening multiply-accumulate (no overflow inside the
    accumulator, mirroring the 48-bit AIE accumulators). *)
val imac : int array -> int array -> int array -> int array

val ishuffle : int array -> int array -> int array

(** [srs dtype shift acc] shift-round-saturate each accumulator lane down
    by [shift] bits with round-to-nearest, saturating to [dtype]. *)
val srs : Cgsim.Dtype.t -> int -> int array -> int array

(** [ups shift v] upshift lanes into accumulator domain. *)
val ups : int -> int array -> int array

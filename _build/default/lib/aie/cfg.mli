(** AI Engine array architecture parameters.

    Models the first-generation AIE array of AMD Versal SoCs as described
    in UG1079 and the paper's evaluation setup: a 2D grid of VLIW/SIMD
    cores at 1250 MHz, stream switches with 32-bit stream ports, 128 KB of
    local data memory per tile group (8 banks), and PLIO interfaces at
    625 MHz.  The numbers here feed the cycle-approximate simulator
    ({!Aiesim}); they are compile-time constants of real hardware, not
    tunables fitted to the paper's tables. *)

val clock_mhz : float
(** AIE core clock used in the paper's evaluation (1250 MHz). *)

val pl_clock_mhz : float
(** Programmable-logic clock for PLIO (625 MHz). *)

val ns_per_cycle : float
(** 1e3 /. clock_mhz = 0.8 ns. *)

val array_cols : int
val array_rows : int
(** Default array size modelled (VC1902: 50 x 8). *)

(** {1 VLIW issue slots per cycle}

    The AIE core is a 7-way VLIW: two load units, one store unit, one
    vector (fixed/float SIMD) unit, one scalar unit, plus move slots.
    Stream access shares dedicated stream ports: one read and one write
    per cycle (32-bit each, or one 128-bit access every 4 cycles). *)

val slots_vector : int
val slots_scalar : int
val slots_load : int
val slots_store : int
val slots_stream_read : int
val slots_stream_write : int

(** {1 SIMD throughput} *)

val fp32_macs_per_cycle : int
(** 8 single-precision MACs per cycle. *)

val int16_macs_per_cycle : int
(** 32 16-bit MACs per cycle. *)

val int32_macs_per_cycle : int
(** 8 32-bit MACs per cycle. *)

(** {1 Memory and streams} *)

val stream_bytes_per_cycle : int
(** 4 bytes per cycle per 32-bit stream port. *)

val plio_bytes_per_pl_cycle : int
(** 8 bytes per PL cycle for a 64-bit PLIO port. *)

val gmio_bytes_per_cycle : int
(** NoC/DDR burst bandwidth for GMIO connections (128-bit). *)

val gmio_latency_cycles : int
(** One-way DDR access latency charged on GMIO routes. *)

val stream_switch_fifo_words : int
(** Per-hop stream-switch FIFO depth in 32-bit words. *)

val stream_hop_latency_cycles : int
(** Latency added per stream-switch hop. *)

val dm_bytes_per_cycle : int
(** Local data-memory bandwidth per load/store unit (256-bit = 32 B). *)

val lock_acquire_cycles : int
(** Cycles to acquire a ping-pong window lock when free. *)

val pipeline_depth : int
(** Software-pipeline fill depth charged as loop prologue/epilogue. *)

val kernel_invocation_overhead_cycles : int
(** Per-invocation graph-runtime overhead (kernel wrapper entry/exit). *)

(** Extra scalar operations per stream access performed by the extractor's
    generated adapter thunk (Section 4.5) — the mechanism behind the
    85–100 % relative-throughput spread in Table 1.  Window (buffer) port
    adapters cost only a per-window constant, which is why the IIR example
    reaches parity. *)

val thunk_scalar_ops_per_stream_access : int ref

val thunk_cycles_per_window : int ref

(** Serial cycles per thunked stream access inside a software-pipelined
    loop that the pipeliner cannot hide (fractional: the call overhead
    partially overlaps with the loop body).

    These three are references so the ablation benchmarks can sweep the
    adapter cost model; production code never mutates them. *)
val thunk_loop_extra_per_access : float ref

val cycles_to_ns : float -> float

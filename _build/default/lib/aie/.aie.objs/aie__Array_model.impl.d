lib/aie/array_model.ml: Cfg Format Hashtbl Printf

lib/aie/intrinsics.mli:

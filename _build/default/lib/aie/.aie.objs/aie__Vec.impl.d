lib/aie/vec.ml: Array Cgsim Printf

lib/aie/cfg.mli:

lib/aie/cfg.ml:

lib/aie/intrinsics.ml: Array Cfg Cgsim Printf Trace Vec

lib/aie/trace.ml: Cgsim Format Fun Hashtbl List

lib/aie/trace.mli: Format

lib/aie/vec.mli: Cgsim

lib/aie/array_model.mli: Format

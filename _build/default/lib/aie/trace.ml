type transport =
  | Stream
  | Window of int
  | Rtp
  | Gmio

type event =
  | Vop of { name : string; slots : int }
  | Sop of { name : string; count : int }
  | Load of { bytes : int }
  | Store of { bytes : int }
  | Port_read of { port : string; bytes : int; transport : transport; thunked : bool }
  | Port_write of { port : string; bytes : int; transport : transport; thunked : bool }
  | Loop_enter of { trip : int }
  | Loop_exit
  | Loop_abort
  | Iteration_mark

let pp_transport ppf = function
  | Stream -> Format.pp_print_string ppf "stream"
  | Window b -> Format.fprintf ppf "window<%d>" b
  | Rtp -> Format.pp_print_string ppf "rtp"
  | Gmio -> Format.pp_print_string ppf "gmio"

let pp_event ppf = function
  | Vop { name; slots } -> Format.fprintf ppf "vop %s x%d" name slots
  | Sop { name; count } -> Format.fprintf ppf "sop %s x%d" name count
  | Load { bytes } -> Format.fprintf ppf "load %dB" bytes
  | Store { bytes } -> Format.fprintf ppf "store %dB" bytes
  | Port_read { port; bytes; transport; thunked } ->
    Format.fprintf ppf "read %s %dB %a%s" port bytes pp_transport transport
      (if thunked then " (thunk)" else "")
  | Port_write { port; bytes; transport; thunked } ->
    Format.fprintf ppf "write %s %dB %a%s" port bytes pp_transport transport
      (if thunked then " (thunk)" else "")
  | Loop_enter { trip } -> Format.fprintf ppf "loop enter trip=%d" trip
  | Loop_exit -> Format.pp_print_string ppf "loop exit"
  | Loop_abort -> Format.pp_print_string ppf "loop abort"
  | Iteration_mark -> Format.pp_print_string ppf "-- iteration --"

type recorder = {
  mutable rev_events : event list;
  mutable count : int;
  (* When > 0 we are inside a pipelined loop replaying iterations beyond
     the first: functional execution continues, recording is paused. *)
  mutable suppressed : int;
}

let create_recorder () = { rev_events = []; count = 0; suppressed = 0 }

let events r = List.rev r.rev_events

let event_count r = r.count

let enabled = ref false

let bindings : (string, recorder) Hashtbl.t = Hashtbl.create 16

let bind name r = Hashtbl.replace bindings name r

let unbind name = Hashtbl.remove bindings name

let clear_bindings () = Hashtbl.reset bindings

let current_recorder () =
  if not !enabled then None else Hashtbl.find_opt bindings (Cgsim.Sched.current_name ())

let push r ev =
  if r.suppressed = 0 then begin
    r.rev_events <- ev :: r.rev_events;
    r.count <- r.count + 1
  end

let emit ev =
  match current_recorder () with
  | Some r -> push r ev
  | None -> ()

let vop ?(slots = 1) name = emit (Vop { name; slots })

let sop ?(count = 1) name = emit (Sop { name; count })

let load ~bytes = emit (Load { bytes })

let store ~bytes = emit (Store { bytes })

let mark_iteration () = emit Iteration_mark

let with_pipelined_loop ~trip body =
  if trip < 0 then invalid_arg "aie: pipelined loop with negative trip count";
  if trip = 0 then ()
  else begin
    match current_recorder () with
    | None ->
      for i = 0 to trip - 1 do
        body i
      done
    | Some r ->
      push r (Loop_enter { trip });
      (* The first iteration is the recorded one; if it aborts (stream
         drained, fiber cancelled) mark the region so the replay does not
         multiply a partial body by the trip count. *)
      (try body 0 with e ->
        push r Loop_abort;
        raise e);
      push r Loop_exit;
      r.suppressed <- r.suppressed + 1;
      Fun.protect
        ~finally:(fun () -> r.suppressed <- r.suppressed - 1)
        (fun () ->
          for i = 1 to trip - 1 do
            body i
          done)
  end

let clock_mhz = 1250.0

let pl_clock_mhz = 625.0

let ns_per_cycle = 1000.0 /. clock_mhz

let array_cols = 50

let array_rows = 8

let slots_vector = 1

let slots_scalar = 1

let slots_load = 2

let slots_store = 1

let slots_stream_read = 1

let slots_stream_write = 1

let fp32_macs_per_cycle = 8

let int16_macs_per_cycle = 32

let int32_macs_per_cycle = 8

let stream_bytes_per_cycle = 4

let plio_bytes_per_pl_cycle = 8

let gmio_bytes_per_cycle = 16

let gmio_latency_cycles = 300

let stream_switch_fifo_words = 32

let stream_hop_latency_cycles = 2

let dm_bytes_per_cycle = 32

let lock_acquire_cycles = 7

let pipeline_depth = 6

let kernel_invocation_overhead_cycles = 24

let thunk_scalar_ops_per_stream_access = ref 1

let thunk_cycles_per_window = ref 12

let thunk_loop_extra_per_access = ref 0.1

let cycles_to_ns cycles = cycles *. ns_per_cycle

(** Synthetic image data for the bilinear-interpolation workload. *)

type t = {
  width : int;
  height : int;
  pixels : int array;  (** row-major u8 *)
}

(** Smooth synthetic test pattern (sum of gradients and ripples). *)
val synthetic : width:int -> height:int -> t

val get : t -> x:int -> y:int -> int

(** One interpolation request: a 2x2 pixel quad and Q15 fractions. *)
type quad = {
  p00 : int;
  p01 : int;
  p10 : int;
  p11 : int;
  xf : int;  (** Q15 in [0, 32767] *)
  yf : int;
}

(** [sample_quads ~seed img n] — n random sub-pixel lookups into [img]. *)
val sample_quads : seed:int -> t -> int -> quad array

(** Pure random quads (no source image). *)
val random_quads : seed:int -> int -> quad array

let random_f32 ~seed n =
  let rng = Prng.create ~seed in
  Array.init n (fun _ -> Cgsim.Value.round_f32 (Prng.float_range rng ~lo:(-1.0) ~hi:1.0))

let chirp_i16 ~seed ~amplitude n =
  if amplitude <= 0 || amplitude > 32767 then invalid_arg "chirp_i16: bad amplitude";
  let rng = Prng.create ~seed in
  let a = float_of_int amplitude in
  Array.init n (fun i ->
      let t = float_of_int i /. float_of_int (max 1 n) in
      (* Sweep 0.01..0.2 cycles/sample. *)
      let phase = 2.0 *. Float.pi *. ((0.01 *. float_of_int i) +. (0.095 *. t *. float_of_int i)) in
      let dither = Prng.float_range rng ~lo:(-0.5) ~hi:0.5 in
      Cgsim.Value.clamp_int Cgsim.Dtype.I16 (int_of_float ((a *. sin phase) +. dither)))

let step_noise_f32 ~seed n =
  let rng = Prng.create ~seed in
  Array.init n (fun i ->
      let step = if i >= n / 8 then 1.0 else 0.0 in
      Cgsim.Value.round_f32 (step +. Prng.float_range rng ~lo:(-0.01) ~hi:0.01))

let random_i16 ~seed n =
  let rng = Prng.create ~seed in
  Array.init n (fun _ -> Prng.int_range rng ~lo:(-32768) ~hi:32767)

type t = {
  width : int;
  height : int;
  pixels : int array;
}

let synthetic ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Images.synthetic: empty image";
  let pixels =
    Array.init (width * height) (fun i ->
        let x = i mod width and y = i / width in
        let fx = float_of_int x /. float_of_int width in
        let fy = float_of_int y /. float_of_int height in
        let v =
          (0.5 *. fx) +. (0.3 *. fy)
          +. (0.2 *. sin (12.0 *. fx) *. cos (9.0 *. fy))
        in
        Cgsim.Value.clamp_int Cgsim.Dtype.U8 (int_of_float (v *. 255.0)))
  in
  { width; height; pixels }

let get img ~x ~y =
  if x < 0 || x >= img.width || y < 0 || y >= img.height then
    invalid_arg "Images.get: out of bounds";
  img.pixels.((y * img.width) + x)

type quad = {
  p00 : int;
  p01 : int;
  p10 : int;
  p11 : int;
  xf : int;
  yf : int;
}

let sample_quads ~seed img n =
  let rng = Prng.create ~seed in
  Array.init n (fun _ ->
      let x = Prng.int_range rng ~lo:0 ~hi:(img.width - 2) in
      let y = Prng.int_range rng ~lo:0 ~hi:(img.height - 2) in
      {
        p00 = get img ~x ~y;
        p01 = get img ~x:(x + 1) ~y;
        p10 = get img ~x ~y:(y + 1);
        p11 = get img ~x:(x + 1) ~y:(y + 1);
        xf = Prng.int_range rng ~lo:0 ~hi:32767;
        yf = Prng.int_range rng ~lo:0 ~hi:32767;
      })

let random_quads ~seed n =
  let rng = Prng.create ~seed in
  let u8 () = Prng.int_range rng ~lo:0 ~hi:255 in
  Array.init n (fun _ ->
      {
        p00 = u8 ();
        p01 = u8 ();
        p10 = u8 ();
        p11 = u8 ();
        xf = Prng.int_range rng ~lo:0 ~hi:32767;
        yf = Prng.int_range rng ~lo:0 ~hi:32767;
      })

(** Golden scalar reference implementations.

    Each evaluation kernel has a straightforward scalar counterpart here,
    written independently of the vectorized implementations in {!Apps} (no
    lane tricks, no pipelining) but sharing the same fixed-point rounding
    semantics ({!Aie.Vec.srs}) and coefficient tables so fixed-point
    pipelines can be compared bit-exactly and float pipelines within a
    small tolerance. *)

(** {1 Bitonic} *)

val sort_f32 : float array -> float array
(** Ascending sort (the specification of the bitonic kernel). *)

(** {1 Farrow fractional-delay filter} *)

val farrow_taps : int
(** Taps per sub-filter (4: cubic Lagrange). *)

val farrow_coeffs_q15 : int array array
(** [farrow_coeffs_q15.(m).(k)] — Q15 coefficient of delay power [m],
    tap [k].  At [d = 0] the filter degenerates to a one-tap delay. *)

val srs15 : int -> int
(** Shift-round-saturate by 15 bits to int16 — the scalar twin of
    [Aie.Vec.srs I16 15] on one lane. *)

(** [farrow_scalar ~d_q15 x] — full scalar farrow pipeline: 4 sub-filter
    convolutions then Horner combination with the Q15 fractional delay.
    Output length equals input length; the first [farrow_taps - 1] outputs
    use zero-padded history. *)
val farrow_scalar : d_q15:int -> int array -> int array

(** {1 IIR cascade} *)

type biquad = {
  b0 : float;
  b1 : float;
  b2 : float;
  a1 : float;
  a2 : float;
}

(** RBJ-cookbook low-pass biquad. *)
val design_lowpass : cutoff:float -> q:float -> biquad

(** The paper example's 6th-order Butterworth low-pass as three cascaded
    sections (Q = 0.5176, 0.7071, 1.9319) at fc = 0.1 fs. *)
val iir_sections : biquad array

(** Direct-form-I cascade, double precision. *)
val iir_scalar : biquad array -> float array -> float array

(** {1 Bilinear interpolation} *)

(** One quad: four u8 pixels and Q15 x/y fractions; output is u16 in Q8.
    Uses the exact integer pipeline of the kernel (Q8 pixels, srs15
    blends). *)
val bilinear_scalar : p00:int -> p01:int -> p10:int -> p11:int -> xf:int -> yf:int -> int

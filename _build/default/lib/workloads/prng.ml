type t = { mutable state : int64 }

let create ~seed =
  (* Avoid the all-zero state; mix the seed through splitmix-style step. *)
  let s = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed) in
  { state = Int64.logor s 1L }

let next t =
  let open Int64 in
  let x = t.state in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  t.state <- x;
  (* Keep 62 bits so the result stays non-negative after Int64.to_int. *)
  to_int (shift_right_logical (mul x 0x2545F4914F6CDD1DL) 2)

let int_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_range: empty range";
  lo + (next t mod (hi - lo + 1))

let float_unit t = float_of_int (next t) /. 4611686018427387904.0

let float_range t ~lo ~hi = lo +. ((hi -. lo) *. float_unit t)

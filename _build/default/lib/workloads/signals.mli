(** Signal and data generators for the four evaluation workloads. *)

(** [random_f32 ~seed n] — n uniform floats in [-1, 1), f32-rounded. *)
val random_f32 : seed:int -> int -> float array

(** [chirp_i16 ~seed ~amplitude n] — linear chirp quantized to int16 with
    a little dither; the farrow filter input. *)
val chirp_i16 : seed:int -> amplitude:int -> int -> int array

(** [step_noise_f32 ~seed n] — unit step plus small noise; the classic IIR
    step-response workload. *)
val step_noise_f32 : seed:int -> int -> float array

(** [random_i16 ~seed n] — uniform int16 samples. *)
val random_i16 : seed:int -> int -> int array

lib/workloads/prng.mli:

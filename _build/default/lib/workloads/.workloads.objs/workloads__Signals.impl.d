lib/workloads/signals.ml: Array Cgsim Float Prng

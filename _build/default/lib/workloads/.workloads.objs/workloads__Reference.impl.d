lib/workloads/reference.ml: Aie Array Cgsim Float

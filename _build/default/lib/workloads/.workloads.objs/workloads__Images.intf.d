lib/workloads/images.mli:

lib/workloads/images.ml: Array Cgsim Prng

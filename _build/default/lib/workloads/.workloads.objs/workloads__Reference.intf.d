lib/workloads/reference.mli:

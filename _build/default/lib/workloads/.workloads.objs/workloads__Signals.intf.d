lib/workloads/signals.mli:

(* ---------------- bitonic ---------------- *)

let sort_f32 a =
  let b = Array.copy a in
  Array.sort compare b;
  b

(* ---------------- farrow ---------------- *)

let farrow_taps = 4

(* Cubic Lagrange interpolation in Farrow structure: tap weights are
   polynomials in the fractional delay d, h_k(d) = sum_m C.(m).(k) d^m.
   At d = 0 the response is a pure one-sample delay. *)
let farrow_coeffs_float =
  [|
    (* m = 0 *) [| 0.0; 1.0; 0.0; 0.0 |];
    (* m = 1 *) [| -1.0 /. 3.0; -0.5; 1.0; -1.0 /. 6.0 |];
    (* m = 2 *) [| 0.5; -1.0; 0.5; 0.0 |];
    (* m = 3 *) [| -1.0 /. 6.0; 0.5; -0.5; 1.0 /. 6.0 |];
  |]

let q15 x = Cgsim.Value.clamp_int Cgsim.Dtype.I16 (int_of_float (Float.round (x *. 32768.0)))

let farrow_coeffs_q15 = Array.map (Array.map q15) farrow_coeffs_float

let srs15 x =
  match Aie.Vec.srs Cgsim.Dtype.I16 15 [| x |] with
  | [| y |] -> y
  | _ -> assert false

let farrow_scalar ~d_q15 x =
  let n = Array.length x in
  let sample i = if i < 0 then 0 else x.(i) in
  Array.init n (fun i ->
      (* Sub-filter convolutions c_m = srs15(sum_k C[m][k] * x[i-3+k]). *)
      let c =
        Array.map
          (fun row ->
            let acc = ref 0 in
            for k = 0 to farrow_taps - 1 do
              acc := !acc + (row.(k) * sample (i - (farrow_taps - 1) + k))
            done;
            srs15 !acc)
          farrow_coeffs_q15
      in
      (* Horner in d (Q15): acc = ((c3*d + c2)*d + c1)*d + c0. *)
      let acc = ref c.(3) in
      for m = 2 downto 0 do
        acc := srs15 (!acc * d_q15) + c.(m)
      done;
      Cgsim.Value.clamp_int Cgsim.Dtype.I16 !acc)

(* ---------------- IIR ---------------- *)

type biquad = {
  b0 : float;
  b1 : float;
  b2 : float;
  a1 : float;
  a2 : float;
}

let design_lowpass ~cutoff ~q =
  if cutoff <= 0.0 || cutoff >= 0.5 then invalid_arg "design_lowpass: cutoff must be in (0, 0.5)";
  let w0 = 2.0 *. Float.pi *. cutoff in
  let alpha = sin w0 /. (2.0 *. q) in
  let cosw = cos w0 in
  let a0 = 1.0 +. alpha in
  {
    b0 = (1.0 -. cosw) /. 2.0 /. a0;
    b1 = (1.0 -. cosw) /. a0;
    b2 = (1.0 -. cosw) /. 2.0 /. a0;
    a1 = -2.0 *. cosw /. a0;
    a2 = (1.0 -. alpha) /. a0;
  }

let iir_sections =
  (* 6th-order Butterworth as a cascade: section Qs 1/(2 cos(pi/12 * k)). *)
  [|
    design_lowpass ~cutoff:0.1 ~q:0.5176;
    design_lowpass ~cutoff:0.1 ~q:0.7071;
    design_lowpass ~cutoff:0.1 ~q:1.9319;
  |]

let iir_scalar sections x =
  let y = Array.copy x in
  Array.iter
    (fun s ->
      let x1 = ref 0.0 and x2 = ref 0.0 and y1 = ref 0.0 and y2 = ref 0.0 in
      for i = 0 to Array.length y - 1 do
        let xi = y.(i) in
        let yi =
          (s.b0 *. xi) +. (s.b1 *. !x1) +. (s.b2 *. !x2) -. (s.a1 *. !y1) -. (s.a2 *. !y2)
        in
        x2 := !x1;
        x1 := xi;
        y2 := !y1;
        y1 := yi;
        y.(i) <- yi
      done)
    sections;
  y

(* ---------------- bilinear ---------------- *)

let srs15_wide x =
  (* Same rounding as srs15 but in the 32-bit domain: Q8 pixel deltas can
     exceed the int16 range mid-pipeline. *)
  match Aie.Vec.srs Cgsim.Dtype.I32 15 [| x |] with
  | [| y |] -> y
  | _ -> assert false

let bilinear_scalar ~p00 ~p01 ~p10 ~p11 ~xf ~yf =
  let q8 p = p lsl 8 in
  let blend a b f = a + srs15_wide ((b - a) * f) in
  let top = blend (q8 p00) (q8 p01) xf in
  let bot = blend (q8 p10) (q8 p11) xf in
  Cgsim.Value.clamp_int Cgsim.Dtype.U16 (blend top bot yf)

(** Deterministic pseudo-random number generation (xorshift64 star).

    All workloads derive from explicit seeds so every simulator run,
    test and benchmark sees identical data — a prerequisite for comparing
    cgsim, x86sim and aiesim outputs bit-for-bit. *)

type t

val create : seed:int -> t

val next : t -> int
(** 62-bit non-negative integer. *)

val int_range : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi] inclusive. *)

val float_unit : t -> float
(** Uniform in [0, 1). *)

val float_range : t -> lo:float -> hi:float -> float

exception Driver_error of string

let default_blacklist = [ "cgsim.hpp"; "cgsim/cgsim.hpp" ]

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> contents
  | exception Sys_error msg -> raise (Driver_error msg)

let resolve_include ~from_dir ~include_dirs path =
  let candidates = Filename.concat from_dir path :: List.map (fun d -> Filename.concat d path) include_dirs in
  List.find_opt Sys.file_exists candidates

let load ?(include_dirs = []) ?(blacklist = default_blacklist) path =
  if not (Sys.file_exists path) then raise (Driver_error ("no such file: " ^ path));
  let seen = Hashtbl.create 8 in
  let rec load_one path =
    let canonical = path in
    if Hashtbl.mem seen canonical then []
    else begin
      Hashtbl.add seen canonical ();
      let tu = Parser.parse ~file:path (read_file path) in
      let from_dir = Filename.dirname path in
      let deps =
        List.concat_map
          (fun item ->
            match item with
            | Ast.T_include { path = inc; system = false; _ }
              when not (List.mem inc blacklist) -> begin
              match resolve_include ~from_dir ~include_dirs inc with
              | Some resolved -> load_one resolved
              | None -> raise (Driver_error (Printf.sprintf "%s: cannot resolve #include \"%s\"" path inc))
            end
            | _ -> [])
          tu.Ast.tu_items
      in
      (* Included files come first so their definitions precede uses. *)
      deps @ [ tu ]
    end
  in
  load_one path

let load_string ?(file = "<memory>") source = [ Parser.parse ~file source ]

let analyze_file ?include_dirs ?blacklist path = Sema.analyze (load ?include_dirs ?blacklist path)

let analyze_string ?file source = Sema.analyze (load_string ?file source)

(** Compile-time evaluation of graph definitions.

    The analogue of Clang's constexpr interpreter in the extraction flow
    (Section 4.2): graph definitions are lambdas whose execution builds
    the compute graph, and instead of pattern-matching construction
    syntax, the extractor simply evaluates them.  Evaluation targets the
    same {!Cgsim.Builder} as the OCaml-embedded API, so a CGC graph and a
    builder graph of the same shape produce topologically equal
    serialized forms — the round-trip the tests check.

    Supported inside graph lambdas (and constexpr global initializers):
    integer/float/bool/string arithmetic and comparisons, constexpr
    global and [#define] constants, local variables, [if]/[for]/[while]
    over compile-time values, [IoConnector<T>] declarations, kernel
    invocation statements, [attach_attributes(conn, {{k, v}, ...})], and
    [return std::make_tuple(conns...)] (or a single connector). *)

exception Eval_error of Srcloc.range * string

type value =
  | V_int of int
  | V_float of float
  | V_bool of bool
  | V_str of string
  | V_conn of Cgsim.Builder.conn
  | V_tuple of value list
  | V_unit

(** Evaluate a constexpr global by name (ints/floats/bools/strings). *)
val eval_constant : Sema.env -> string -> value

(** Evaluate a graph definition to its flattened serialized form.

    Kernels referenced by the lambda are resolved against
    {!Cgsim.Registry}: if a kernel with the same name is registered, its
    signature must match the CGC declaration (dtype, direction, settings
    per port) and its executable body is used; otherwise a
    non-executable placeholder kernel is registered so the graph can
    still be frozen, partitioned and code-generated. *)
val eval_graph : Sema.env -> Ast.graph -> Cgsim.Serialized.t

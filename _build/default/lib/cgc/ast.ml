type typ = {
  t_desc : typ_desc;
  t_range : Srcloc.range;
}

and typ_desc =
  | Tname of string
  | Tqualified of string list * string
  | Ttemplate of string * targ list
  | Tconst of typ
  | Tref of typ
  | Tptr of typ
  | Tarray of typ * expr option  (** T name[N]; dimension may be inferred *)
  | Tauto

and targ =
  | Ta_type of typ
  | Ta_expr of expr

and expr = {
  e_desc : expr_desc;
  e_range : Srcloc.range;
}

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | Ident of string
  | Scoped of string list * string
  | Call of expr * expr list
  | Member of expr * string
  | Arrow of expr * string
  | Index of expr * expr
  | Unop of string * expr
  | Binop of string * expr * expr
  | Assign of string * expr * expr
  | Cond of expr * expr * expr
  | Co_await of expr * Srcloc.range
  | Init_list of expr list
  | Cast of typ * expr
  | Incr_post of expr
  | Decr_post of expr

and stmt = {
  s_desc : stmt_desc;
  s_range : Srcloc.range;
}

and stmt_desc =
  | S_decl of decl
  | S_expr of expr
  | S_if of expr * stmt list * stmt list
  | S_while of expr * stmt list
  | S_do_while of stmt list * expr
  | S_for of stmt option * expr option * expr option * stmt list
  | S_return of expr option
  | S_break
  | S_continue
  | S_block of stmt list

and decl = {
  d_quals : string list;
  d_type : typ;
  d_vars : (string * expr option) list;
}

type param = {
  p_type : typ;
  p_name : string;
  p_range : Srcloc.range;
}

type lambda = {
  l_params : param list;
  l_body : stmt list;
  l_range : Srcloc.range;
}

type top =
  | T_include of { path : string; system : bool; range : Srcloc.range }
  | T_define of { name : string; body : string; range : Srcloc.range }
  | T_pragma of { text : string; range : Srcloc.range }
  | T_struct of { name : string; fields : param list; range : Srcloc.range }
  | T_global of {
      quals : string list;
      typ : typ;
      name : string;
      init : expr option;
      attrs : string list;
      range : Srcloc.range;
    }
  | T_func of {
      quals : string list;
      ret : typ;
      name : string;
      params : param list;
      body : stmt list;
      range : Srcloc.range;
      body_range : Srcloc.range;
    }
  | T_kernel of kernel
  | T_graph of graph

and kernel = {
  k_realm : string;
  k_name : string;
  k_params : param list;
  k_body : stmt list;
  k_range : Srcloc.range;
  k_body_range : Srcloc.range;
}

and graph = {
  g_name : string;
  g_attrs : string list;
  g_lambda : lambda;
  g_range : Srcloc.range;
}

type tu = {
  tu_file : string;
  tu_source : string;
  tu_items : top list;
}

let top_range = function
  | T_include { range; _ }
  | T_define { range; _ }
  | T_pragma { range; _ }
  | T_struct { range; _ }
  | T_global { range; _ }
  | T_func { range; _ } ->
    range
  | T_kernel k -> k.k_range
  | T_graph g -> g.g_range

let rec iter_expr f e =
  f e;
  match e.e_desc with
  | Int_lit _ | Float_lit _ | Str_lit _ | Bool_lit _ | Ident _ | Scoped _ -> ()
  | Call (callee, args) ->
    iter_expr f callee;
    List.iter (iter_expr f) args
  | Member (x, _) | Arrow (x, _) | Unop (_, x) | Co_await (x, _) | Cast (_, x)
  | Incr_post x | Decr_post x ->
    iter_expr f x
  | Index (a, b) | Binop (_, a, b) | Assign (_, a, b) ->
    iter_expr f a;
    iter_expr f b
  | Cond (a, b, c) ->
    iter_expr f a;
    iter_expr f b;
    iter_expr f c
  | Init_list xs -> List.iter (iter_expr f) xs

let rec iter_stmt f s =
  match s.s_desc with
  | S_decl d -> List.iter (fun (_, init) -> Option.iter (iter_expr f) init) d.d_vars
  | S_expr e -> iter_expr f e
  | S_if (c, t, e) ->
    iter_expr f c;
    List.iter (iter_stmt f) t;
    List.iter (iter_stmt f) e
  | S_while (c, body) ->
    iter_expr f c;
    List.iter (iter_stmt f) body
  | S_do_while (body, c) ->
    List.iter (iter_stmt f) body;
    iter_expr f c
  | S_for (init, cond, step, body) ->
    Option.iter (iter_stmt f) init;
    Option.iter (iter_expr f) cond;
    Option.iter (iter_expr f) step;
    List.iter (iter_stmt f) body
  | S_return e -> Option.iter (iter_expr f) e
  | S_break | S_continue -> ()
  | S_block body -> List.iter (iter_stmt f) body

let iter_exprs f stmts = List.iter (iter_stmt f) stmts

let rec type_idents acc (t : typ) =
  match t.t_desc with
  | Tname n -> n :: acc
  | Tqualified (_, n) -> n :: acc
  | Ttemplate (n, args) ->
    List.fold_left
      (fun acc -> function
        | Ta_type t -> type_idents acc t
        | Ta_expr _ -> acc)
      (n :: acc) args
  | Tconst t | Tref t | Tptr t | Tarray (t, _) -> type_idents acc t
  | Tauto -> acc

let referenced_idents stmts =
  let acc = ref [] in
  let add n = acc := n :: !acc in
  let visit e =
    match e.e_desc with
    | Ident n -> add n
    | Scoped (_, n) -> add n
    | Cast (t, _) -> List.iter add (type_idents [] t)
    | _ -> ()
  in
  let rec visit_stmt s =
    (match s.s_desc with
     | S_decl d -> List.iter add (type_idents [] d.d_type)
     | _ -> ());
    match s.s_desc with
    | S_if (_, t, e) ->
      List.iter visit_stmt t;
      List.iter visit_stmt e
    | S_while (_, b) | S_block b -> List.iter visit_stmt b
    | S_do_while (b, _) -> List.iter visit_stmt b
    | S_for (i, _, _, b) ->
      Option.iter visit_stmt i;
      List.iter visit_stmt b
    | S_decl _ | S_expr _ | S_return _ | S_break | S_continue -> ()
  in
  iter_exprs visit stmts;
  List.iter visit_stmt stmts;
  List.rev !acc

(** CGC lexer.

    Tokenizes one source buffer, preserving exact byte ranges for every
    token (the rewriter depends on them).  Comments and whitespace are
    skipped; preprocessor lines ([#include], [#define], [#pragma]) are
    folded into single directive tokens — CGC performs no textual macro
    expansion, matching the design decision to keep the source text
    stable for rewriting. *)

val tokenize : file:string -> string -> Token.t list
(** Raises {!Diag.Error} on malformed input (unterminated strings or
    comments, bad numbers, stray characters). *)

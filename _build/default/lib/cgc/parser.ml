open Ast

type state = {
  toks : Token.t array;
  mutable idx : int;
}

let cur st = st.toks.(st.idx)

let cur_range st = (cur st).Token.range

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let err st fmt = Diag.error (cur_range st) fmt

let is_punct st p =
  match (cur st).Token.kind with
  | Token.Punct q -> String.equal p q
  | _ -> false

let is_kw st k =
  match (cur st).Token.kind with
  | Token.Kw q -> String.equal k q
  | _ -> false

let eat_punct st p =
  if is_punct st p then begin
    let r = cur_range st in
    advance st;
    r
  end
  else err st "expected '%s', found %s" p (Token.kind_to_string (cur st).Token.kind)

let eat_kw st k =
  if is_kw st k then begin
    let r = cur_range st in
    advance st;
    r
  end
  else err st "expected keyword '%s', found %s" k (Token.kind_to_string (cur st).Token.kind)

let eat_ident st =
  match (cur st).Token.kind with
  | Token.Ident name ->
    let r = cur_range st in
    advance st;
    name, r
  | _ -> err st "expected identifier, found %s" (Token.kind_to_string (cur st).Token.kind)

(* C++11 [>>] splitting: when a template-argument context needs a single
   '>', a '>>' token is consumed as one '>' and the state remembers the
   other half. *)
let eat_template_close st =
  match (cur st).Token.kind with
  | Token.Punct ">" ->
    advance st;
    ()
  | Token.Punct ">>" ->
    let tok = cur st in
    let mid =
      {
        tok.Token.range.Srcloc.start with
        Srcloc.col = tok.Token.range.Srcloc.start.Srcloc.col + 1;
        offset = tok.Token.range.Srcloc.start.Srcloc.offset + 1;
      }
    in
    st.toks.(st.idx) <-
      { Token.kind = Token.Punct ">"; range = { tok.Token.range with Srcloc.start = mid } }
  | _ -> err st "expected '>' closing template arguments"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let builtin_type_kws = [ "float"; "double"; "int"; "bool"; "char"; "void"; "long"; "short"; "unsigned"; "signed"; "auto" ]

let rec parse_type st : typ =
  let start = cur_range st in
  let base =
    if is_kw st "const" then begin
      advance st;
      let t = parse_type st in
      { t_desc = Tconst t; t_range = Srcloc.union start t.t_range }
    end
    else if is_kw st "auto" then begin
      advance st;
      { t_desc = Tauto; t_range = start }
    end
    else begin
      match (cur st).Token.kind with
      | Token.Kw k when List.mem k builtin_type_kws ->
        advance st;
        (* multi-word builtins: unsigned int, long long, ... *)
        let words = ref [ k ] in
        let rec more () =
          match (cur st).Token.kind with
          | Token.Kw k2 when List.mem k2 [ "int"; "long"; "short"; "char"; "unsigned"; "signed" ] ->
            words := k2 :: !words;
            advance st;
            more ()
          | _ -> ()
        in
        more ();
        { t_desc = Tname (String.concat " " (List.rev !words)); t_range = start }
      | Token.Ident name ->
        advance st;
        (* qualified: a::b::c *)
        let quals = ref [] and last = ref name in
        while is_punct st "::" do
          advance st;
          let n, _ = eat_ident st in
          quals := !last :: !quals;
          last := n
        done;
        let head_range = start in
        if is_punct st "<" then begin
          advance st;
          let args = parse_template_args st in
          eat_template_close st;
          if !quals = [] then { t_desc = Ttemplate (!last, args); t_range = head_range }
          else
            { t_desc = Ttemplate (String.concat "::" (List.rev !quals) ^ "::" ^ !last, args);
              t_range = head_range }
        end
        else if !quals = [] then { t_desc = Tname !last; t_range = head_range }
        else { t_desc = Tqualified (List.rev !quals, !last); t_range = head_range }
      | _ -> err st "expected a type, found %s" (Token.kind_to_string (cur st).Token.kind)
    end
  in
  parse_type_suffix st base

and parse_type_suffix st base =
  if is_punct st "&" then begin
    advance st;
    parse_type_suffix st { t_desc = Tref base; t_range = base.t_range }
  end
  else if is_punct st "*" then begin
    advance st;
    parse_type_suffix st { t_desc = Tptr base; t_range = base.t_range }
  end
  else base

and parse_template_args st : targ list =
  let parse_one () =
    match (cur st).Token.kind with
    | Token.Int_lit _ | Token.Str_lit _ ->
      (* Non-type argument: parse at additive precedence so '>' and '>>'
         stay available to close the template (as in C++, comparisons in
         template arguments need parentheses). *)
      Ta_expr (parse_binary st 8)
    | Token.Punct "[" -> err st "lambda template arguments belong to make_compute_graph_v only"
    | _ ->
      (* Could be a type or a constant identifier; parse as a type and
         let semantic analysis reinterpret identifiers bound to
         constants. *)
      Ta_type (parse_type st)
  in
  let rec go acc =
    let a = parse_one () in
    if is_punct st "," then begin
      advance st;
      go (a :: acc)
    end
    else List.rev (a :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

and parse_expr st : expr = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  match (cur st).Token.kind with
  | Token.Punct (("=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=") as op) ->
    advance st;
    let rhs = parse_assign st in
    { e_desc = Assign (op, lhs, rhs); e_range = Srcloc.union lhs.e_range rhs.e_range }
  | _ -> lhs

and parse_cond st =
  let c = parse_binary st 0 in
  if is_punct st "?" then begin
    advance st;
    let t = parse_expr st in
    ignore (eat_punct st ":");
    let e = parse_assign st in
    { e_desc = Cond (c, t, e); e_range = Srcloc.union c.e_range e.e_range }
  end
  else c

and binop_table =
  (* precedence level -> operators *)
  [|
    [ "||" ];
    [ "&&" ];
    [ "|" ];
    [ "^" ];
    [ "&" ];
    [ "=="; "!=" ];
    [ "<"; ">"; "<="; ">=" ];
    [ "<<"; ">>" ];
    [ "+"; "-" ];
    [ "*"; "/"; "%" ];
  |]

and parse_binary st level =
  if level >= Array.length binop_table then parse_unary st
  else begin
    let lhs = ref (parse_binary st (level + 1)) in
    let ops = binop_table.(level) in
    let continue_ = ref true in
    while !continue_ do
      match (cur st).Token.kind with
      | Token.Punct op when List.mem op ops ->
        advance st;
        let rhs = parse_binary st (level + 1) in
        lhs :=
          { e_desc = Binop (op, !lhs, rhs); e_range = Srcloc.union !lhs.e_range rhs.e_range }
      | _ -> continue_ := false
    done;
    !lhs
  end

and parse_unary st =
  let start = cur_range st in
  match (cur st).Token.kind with
  | Token.Kw "co_await" ->
    let kw_range = cur_range st in
    advance st;
    let operand = parse_unary st in
    { e_desc = Co_await (operand, kw_range); e_range = Srcloc.union kw_range operand.e_range }
  | Token.Punct (("!" | "~" | "-" | "+" | "*" | "&") as op) ->
    advance st;
    let operand = parse_unary st in
    { e_desc = Unop (op, operand); e_range = Srcloc.union start operand.e_range }
  | Token.Punct "++" ->
    advance st;
    let operand = parse_unary st in
    { e_desc = Unop ("++", operand); e_range = Srcloc.union start operand.e_range }
  | Token.Punct "--" ->
    advance st;
    let operand = parse_unary st in
    { e_desc = Unop ("--", operand); e_range = Srcloc.union start operand.e_range }
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match (cur st).Token.kind with
    | Token.Punct "(" ->
      advance st;
      let args = parse_call_args st in
      let close = eat_punct st ")" in
      e := { e_desc = Call (!e, args); e_range = Srcloc.union !e.e_range close }
    | Token.Punct "." ->
      advance st;
      let name, r = eat_ident st in
      e := { e_desc = Member (!e, name); e_range = Srcloc.union !e.e_range r }
    | Token.Punct "->" ->
      advance st;
      let name, r = eat_ident st in
      e := { e_desc = Arrow (!e, name); e_range = Srcloc.union !e.e_range r }
    | Token.Punct "[" ->
      advance st;
      let idx = parse_expr st in
      let close = eat_punct st "]" in
      e := { e_desc = Index (!e, idx); e_range = Srcloc.union !e.e_range close }
    | Token.Punct "{" when (match !e.e_desc with Ident _ | Scoped _ -> true | _ -> false) ->
      (* Braced construction of a named type: v2int16{a, b}. *)
      let lst = parse_primary st in
      (match lst.e_desc with
       | Init_list _ -> e := { e_desc = Call (!e, [ lst ]); e_range = Srcloc.union !e.e_range lst.e_range }
       | _ -> err st "expected a brace-initializer")
    | Token.Punct "++" ->
      let r = cur_range st in
      advance st;
      e := { e_desc = Incr_post !e; e_range = Srcloc.union !e.e_range r }
    | Token.Punct "--" ->
      let r = cur_range st in
      advance st;
      e := { e_desc = Decr_post !e; e_range = Srcloc.union !e.e_range r }
    | _ -> continue_ := false
  done;
  !e

and parse_call_args st =
  if is_punct st ")" then []
  else begin
    let rec go acc =
      let a = parse_expr st in
      if is_punct st "," then begin
        advance st;
        go (a :: acc)
      end
      else List.rev (a :: acc)
    in
    go []
  end

and parse_primary st =
  let range = cur_range st in
  match (cur st).Token.kind with
  | Token.Int_lit (v, _) ->
    advance st;
    { e_desc = Int_lit v; e_range = range }
  | Token.Float_lit (v, _) ->
    advance st;
    { e_desc = Float_lit v; e_range = range }
  | Token.Str_lit s ->
    advance st;
    { e_desc = Str_lit s; e_range = range }
  | Token.Char_lit c ->
    advance st;
    { e_desc = Int_lit (Char.code c); e_range = range }
  | Token.Kw "true" ->
    advance st;
    { e_desc = Bool_lit true; e_range = range }
  | Token.Kw "false" ->
    advance st;
    { e_desc = Bool_lit false; e_range = range }
  | Token.Kw k when List.mem k builtin_type_kws ->
    (* functional cast: float(x) *)
    advance st;
    let t = { t_desc = Tname k; t_range = range } in
    ignore (eat_punct st "(");
    let operand = parse_expr st in
    let close = eat_punct st ")" in
    { e_desc = Cast (t, operand); e_range = Srcloc.union range close }
  | Token.Ident name ->
    advance st;
    if is_punct st "::" then begin
      let quals = ref [ name ] in
      let last = ref "" in
      while is_punct st "::" do
        advance st;
        let n, _ = eat_ident st in
        last := n;
        if is_punct st "::" then quals := n :: !quals
      done;
      { e_desc = Scoped (List.rev !quals, !last); e_range = range }
    end
    else { e_desc = Ident name; e_range = range }
  | Token.Punct "(" ->
    advance st;
    let e = parse_expr st in
    let close = eat_punct st ")" in
    { e with e_range = Srcloc.union range close }
  | Token.Punct "{" ->
    advance st;
    let items =
      if is_punct st "}" then []
      else begin
        let rec go acc =
          let e = parse_expr st in
          if is_punct st "," then begin
            advance st;
            go (e :: acc)
          end
          else List.rev (e :: acc)
        in
        go []
      end
    in
    let close = eat_punct st "}" in
    { e_desc = Init_list items; e_range = Srcloc.union range close }
  | k -> err st "expected an expression, found %s" (Token.kind_to_string k)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let quals_kws = [ "const"; "constexpr"; "static"; "inline" ]

let rec parse_stmt st : stmt =
  let start = cur_range st in
  match (cur st).Token.kind with
  | Token.Punct "{" ->
    advance st;
    let body = parse_stmts_until st "}" in
    let close = eat_punct st "}" in
    { s_desc = S_block body; s_range = Srcloc.union start close }
  | Token.Kw "if" ->
    advance st;
    ignore (eat_punct st "(");
    let cond = parse_expr st in
    ignore (eat_punct st ")");
    let then_ = parse_branch st in
    let else_ =
      if is_kw st "else" then begin
        advance st;
        parse_branch st
      end
      else []
    in
    { s_desc = S_if (cond, then_, else_); s_range = Srcloc.union start (prev_range st) }
  | Token.Kw "while" ->
    advance st;
    ignore (eat_punct st "(");
    let cond = parse_expr st in
    ignore (eat_punct st ")");
    let body = parse_branch st in
    { s_desc = S_while (cond, body); s_range = Srcloc.union start (prev_range st) }
  | Token.Kw "do" ->
    advance st;
    let body = parse_branch st in
    ignore (eat_kw st "while");
    ignore (eat_punct st "(");
    let cond = parse_expr st in
    ignore (eat_punct st ")");
    let close = eat_punct st ";" in
    { s_desc = S_do_while (body, cond); s_range = Srcloc.union start close }
  | Token.Kw "for" ->
    advance st;
    ignore (eat_punct st "(");
    let init = if is_punct st ";" then (advance st; None) else Some (parse_decl_or_expr_stmt st) in
    let cond = if is_punct st ";" then None else Some (parse_expr st) in
    ignore (eat_punct st ";");
    let step = if is_punct st ")" then None else Some (parse_expr st) in
    ignore (eat_punct st ")");
    let body = parse_branch st in
    { s_desc = S_for (init, cond, step, body); s_range = Srcloc.union start (prev_range st) }
  | Token.Kw "return" ->
    advance st;
    let value = if is_punct st ";" then None else Some (parse_expr st) in
    let close = eat_punct st ";" in
    { s_desc = S_return value; s_range = Srcloc.union start close }
  | Token.Kw "break" ->
    advance st;
    let close = eat_punct st ";" in
    { s_desc = S_break; s_range = Srcloc.union start close }
  | Token.Kw "continue" ->
    advance st;
    let close = eat_punct st ";" in
    { s_desc = S_continue; s_range = Srcloc.union start close }
  | _ -> parse_decl_or_expr_stmt st

and prev_range st = st.toks.(max 0 (st.idx - 1)).Token.range

and parse_branch st =
  match parse_stmt st with
  | { s_desc = S_block body; _ } -> body
  | s -> [ s ]

and parse_stmts_until st close =
  let rec go acc =
    if is_punct st close then List.rev acc
    else if (cur st).Token.kind = Token.Eof then
      err st "unexpected end of file (missing '%s')" close
    else go (parse_stmt st :: acc)
  in
  go []

(* Declaration vs. expression: tentative parse with backtracking, the
   same strategy C++ front-ends use for this ambiguity. *)
and parse_decl_or_expr_stmt st : stmt =
  let saved = st.idx in
  match parse_decl_stmt st with
  | s -> s
  | exception Diag.Error _ ->
    st.idx <- saved;
    let start = cur_range st in
    let e = parse_expr st in
    let close = eat_punct st ";" in
    { s_desc = S_expr e; s_range = Srcloc.union start close }

and parse_decl_stmt st : stmt =
  let start = cur_range st in
  let quals = ref [] in
  while
    match (cur st).Token.kind with
    | Token.Kw k when List.mem k quals_kws && k <> "const" -> true
    | Token.Kw "const" -> true
    | _ -> false
  do
    (match (cur st).Token.kind with
     | Token.Kw k -> quals := k :: !quals
     | _ -> ());
    advance st
  done;
  let typ = parse_type st in
  (* A declaration must be followed by an identifier. *)
  let vars = parse_declarators st typ in
  let close = eat_punct st ";" in
  {
    s_desc = S_decl { d_quals = List.rev !quals; d_type = typ; d_vars = vars };
    s_range = Srcloc.union start close;
  }

and parse_declarators st typ =
  let parse_one () =
    let name, _ = eat_ident st in
    (* array declarator folds into the variable's init handling *)
    let rec dims acc =
      if is_punct st "[" then begin
        advance st;
        let d = if is_punct st "]" then None else Some (parse_expr st) in
        ignore (eat_punct st "]");
        dims (d :: acc)
      end
      else List.rev acc
    in
    let _ = dims [] in
    ignore typ;
    let init =
      if is_punct st "=" then begin
        advance st;
        Some (parse_expr st)
      end
      else if is_punct st "(" then begin
        advance st;
        let args = parse_call_args st in
        ignore (eat_punct st ")");
        match args with
        | [ one ] -> Some one
        | _ ->
          Some { e_desc = Init_list args; e_range = cur_range st }
      end
      else if is_punct st "{" then Some (parse_primary st)
      else None
    in
    name, init
  in
  let rec go acc =
    let v = parse_one () in
    if is_punct st "," then begin
      advance st;
      go (v :: acc)
    end
    else List.rev (v :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_param st : param =
  let start = cur_range st in
  let typ = parse_type st in
  let name, r = eat_ident st in
  (* array suffix on parameters/fields *)
  let typ = ref typ in
  while is_punct st "[" do
    advance st;
    let d = if is_punct st "]" then None else Some (parse_expr st) in
    ignore (eat_punct st "]");
    typ := { t_desc = Tarray (!typ, d); t_range = (!typ).t_range }
  done;
  { p_type = !typ; p_name = name; p_range = Srcloc.union start r }

let parse_params st =
  ignore (eat_punct st "(");
  if is_punct st ")" then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let p = parse_param st in
      if is_punct st "," then begin
        advance st;
        go (p :: acc)
      end
      else begin
        ignore (eat_punct st ")");
        List.rev (p :: acc)
      end
    in
    go []
  end

let parse_attrs st =
  (* zero or more [[ ident ]] groups *)
  let attrs = ref [] in
  while is_punct st "[[" do
    advance st;
    let name, _ = eat_ident st in
    attrs := name :: !attrs;
    ignore (eat_punct st "]]")
  done;
  List.rev !attrs

let parse_kernel st : kernel =
  let start = cur_range st in
  advance st (* COMPUTE_KERNEL *);
  ignore (eat_punct st "(");
  let realm, _ = eat_ident st in
  ignore (eat_punct st ",");
  let name, _ = eat_ident st in
  ignore (eat_punct st ",");
  let rec params acc =
    let p = parse_param st in
    if is_punct st "," then begin
      advance st;
      params (p :: acc)
    end
    else begin
      ignore (eat_punct st ")");
      List.rev (p :: acc)
    end
  in
  let params = params [] in
  let body_open = eat_punct st "{" in
  let body = parse_stmts_until st "}" in
  let body_close = eat_punct st "}" in
  (* Optional trailing semicolon, as in the paper's Figure 3. *)
  if is_punct st ";" then advance st;
  {
    k_realm = realm;
    k_name = name;
    k_params = params;
    k_body = body;
    k_range = Srcloc.union start (prev_range st);
    k_body_range = Srcloc.union body_open body_close;
  }

let parse_lambda st : lambda =
  let start = cur_range st in
  ignore (eat_punct st "[");
  ignore (eat_punct st "]");
  let params = parse_params st in
  let open_ = eat_punct st "{" in
  let body = parse_stmts_until st "}" in
  let close = eat_punct st "}" in
  ignore open_;
  { l_params = params; l_body = body; l_range = Srcloc.union start close }

let parse_graph st ~attrs ~quals ~start : graph =
  ignore quals;
  (* after: constexpr auto NAME = make_compute_graph_v <  lambda  > ; *)
  let name, _ = eat_ident st in
  ignore (eat_punct st "=");
  let head, _ = eat_ident st in
  if head <> "make_compute_graph_v" then
    err st "graph initializer must be make_compute_graph_v<...>, found %s" head;
  ignore (eat_punct st "<");
  let lambda = parse_lambda st in
  eat_template_close st;
  let close = eat_punct st ";" in
  { g_name = name; g_attrs = attrs; g_lambda = lambda; g_range = Srcloc.union start close }

let parse_struct st : top =
  let start = cur_range st in
  advance st (* struct *);
  let name, _ = eat_ident st in
  ignore (eat_punct st "{");
  let fields = ref [] in
  while not (is_punct st "}") do
    let f = parse_param st in
    ignore (eat_punct st ";");
    fields := f :: !fields
  done;
  ignore (eat_punct st "}");
  let close = eat_punct st ";" in
  T_struct { name; fields = List.rev !fields; range = Srcloc.union start close }

let parse_func_or_global st ~attrs : top =
  let start = cur_range st in
  let quals = ref [] in
  while
    match (cur st).Token.kind with
    | Token.Kw k when List.mem k quals_kws -> true
    | _ -> false
  do
    (match (cur st).Token.kind with
     | Token.Kw k -> quals := k :: !quals
     | _ -> ());
    advance st
  done;
  let quals = List.rev !quals in
  (* Graph definition: constexpr auto name = make_compute_graph_v<...> *)
  if
    List.mem "constexpr" quals && is_kw st "auto"
    &&
    (match st.toks.(st.idx + 2).Token.kind with
     | Token.Punct "=" ->
       (match st.toks.(st.idx + 3).Token.kind with
        | Token.Ident "make_compute_graph_v" -> true
        | _ -> false)
     | _ -> false)
  then begin
    advance st (* auto *);
    T_graph (parse_graph st ~attrs ~quals ~start)
  end
  else begin
    let typ = parse_type st in
    let name, _ = eat_ident st in
    if is_punct st "(" then begin
      let params = parse_params st in
      let body_open = eat_punct st "{" in
      let body = parse_stmts_until st "}" in
      let body_close = eat_punct st "}" in
      T_func
        {
          quals;
          ret = typ;
          name;
          params;
          body;
          range = Srcloc.union start body_close;
          body_range = Srcloc.union body_open body_close;
        }
    end
    else begin
      (* global variable, possibly an array *)
      let typ = ref typ in
      while is_punct st "[" do
        advance st;
        let d = if is_punct st "]" then None else Some (parse_expr st) in
        ignore (eat_punct st "]");
        typ := { t_desc = Tarray (!typ, d); t_range = (!typ).t_range }
      done;
      let init =
        if is_punct st "=" then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      let close = eat_punct st ";" in
      T_global { quals; typ = !typ; name; init; attrs; range = Srcloc.union start close }
    end
  end

let parse_tokens ~file ~source toks =
  let st = { toks = Array.of_list toks; idx = 0 } in
  let items = ref [] in
  let rec go () =
    match (cur st).Token.kind with
    | Token.Eof -> ()
    | Token.Directive_include { path; system } ->
      let range = cur_range st in
      advance st;
      items := T_include { path; system; range } :: !items;
      go ()
    | Token.Directive_define { name; body } ->
      let range = cur_range st in
      advance st;
      items := T_define { name; body; range } :: !items;
      go ()
    | Token.Directive_pragma text ->
      let range = cur_range st in
      advance st;
      items := T_pragma { text; range } :: !items;
      go ()
    | Token.Kw "struct" ->
      items := parse_struct st :: !items;
      go ()
    | Token.Ident "COMPUTE_KERNEL" ->
      items := T_kernel (parse_kernel st) :: !items;
      go ()
    | Token.Punct "[[" ->
      let attrs = parse_attrs st in
      items := parse_func_or_global st ~attrs :: !items;
      go ()
    | Token.Kw _ | Token.Ident _ ->
      items := parse_func_or_global st ~attrs:[] :: !items;
      go ()
    | k -> err st "unexpected %s at top level" (Token.kind_to_string k)
  in
  go ();
  { tu_file = file; tu_source = source; tu_items = List.rev !items }

let parse ~file source = parse_tokens ~file ~source (Lexer.tokenize ~file source)

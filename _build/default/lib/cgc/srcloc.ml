type pos = {
  file : string;
  line : int;
  col : int;
  offset : int;
}

type range = {
  start : pos;
  stop : pos;
}

let dummy_pos = { file = "<none>"; line = 0; col = 0; offset = -1 }

let dummy = { start = dummy_pos; stop = dummy_pos }

let make start stop = { start; stop }

let union a b =
  if a == dummy then b
  else if b == dummy then a
  else begin
    let start = if a.start.offset <= b.start.offset then a.start else b.start in
    let stop = if a.stop.offset >= b.stop.offset then a.stop else b.stop in
    { start; stop }
  end

let pp_pos ppf p = Format.fprintf ppf "%s:%d:%d" p.file p.line p.col

let pp ppf r = pp_pos ppf r.start

let to_string r = Format.asprintf "%a" pp r

(** Source locations and ranges.

    Every CGC token and AST node carries a byte-offset range into the
    original source buffer; the {!Rewriter} operates on these ranges, so
    they must survive all analysis passes untouched (the same contract
    clang::SourceRange gives LibTooling tools). *)

type pos = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  offset : int;  (** 0-based byte offset *)
}

type range = {
  start : pos;
  stop : pos;  (** exclusive *)
}

val dummy_pos : pos

val dummy : range

val make : pos -> pos -> range

(** Smallest range covering both. *)
val union : range -> range -> range

val pp_pos : Format.formatter -> pos -> unit

val pp : Format.formatter -> range -> unit

(** "file:line:col" of the start. *)
val to_string : range -> string

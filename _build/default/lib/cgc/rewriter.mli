(** Source-level rewriting (the clang::Rewriter analogue).

    Non-overlapping edits keyed by original byte offsets, applied in one
    pass to produce the transformed text.  Edits never invalidate each
    other's positions because they all refer to the original buffer. *)

type t

exception Rewrite_error of string

val create : source:string -> t

val source : t -> string

(** [remove t ~start ~stop] deletes [start, stop).  Offsets are byte
    offsets into the original source. *)
val remove : t -> start:int -> stop:int -> unit

val replace : t -> start:int -> stop:int -> string -> unit

val insert : t -> at:int -> string -> unit

(** Apply all edits.  Raises {!Rewrite_error} if any two edits overlap. *)
val apply : t -> string

(** Text of a range in an untouched buffer. *)
val slice : source:string -> start:int -> stop:int -> string

(** Slice by {!Srcloc.range}. *)
val slice_range : source:string -> Srcloc.range -> string

(** CGC semantic analysis.

    Builds the symbol environment over one or more translation units
    (main file plus local includes), resolves port and element types to
    {!Cgsim.Dtype.t}, validates kernel signatures, and computes the
    symbol reference graph used for co-extraction (Section 4.6).

    Type information recovered here plays the role of the template
    arguments Clang's semantic analysis hands the paper's extractor. *)

type entry =
  | E_struct of Ast.param list
  | E_func of { quals : string list; ret : Ast.typ; params : Ast.param list }
  | E_global of { quals : string list; typ : Ast.typ; init : Ast.expr option }
  | E_define of string  (** raw body text *)
  | E_kernel of Ast.kernel
  | E_graph of Ast.graph

type env

exception Sema_error of Srcloc.range * string

val analyze : Ast.tu list -> env
(** Raises {!Sema_error} on duplicate definitions, unknown realms,
    non-port kernel parameters, or unresolvable port element types. *)

val tus : env -> Ast.tu list

(** Lookup; names are global (CGC has a single namespace). *)
val find : env -> string -> entry option

(** The translation unit that defines a symbol. *)
val defining_tu : env -> string -> Ast.tu option

(** Source-order list of all defined symbol names. *)
val order : env -> string list

val kernels : env -> Ast.kernel list

val graphs : env -> Ast.graph list

(** Include directives of the whole program, in source order. *)
val includes : env -> (string * bool * Ast.tu) list

(** {1 Types} *)

(** Element dtype of a C++ type (scalars, vector spellings, user structs;
    fixed-size arrays of scalars inside structs become vectors). *)
val dtype_of_type : env -> Ast.typ -> Cgsim.Dtype.t

(** Kernel port classification from the parameter's template type. *)
val port_of_param : env -> Ast.param -> Cgsim.Kernel.port_spec

(** All ports of a kernel, in declaration order. *)
val ports_of_kernel : env -> Ast.kernel -> Cgsim.Kernel.port_spec list

(** Element dtype of an [IoConnector<T>] type. *)
val connector_dtype : env -> Ast.typ -> Cgsim.Dtype.t

(** {1 Dependencies} *)

(** Direct references from a symbol's body/initializer to other defined
    symbols (functions, globals, structs, defines). *)
val direct_deps : env -> string -> string list

(** Transitive closure over {!direct_deps} of the given roots, returned
    in source order and excluding the roots themselves. *)
val transitive_deps : env -> string list -> string list

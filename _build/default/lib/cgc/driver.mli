(** Front-end driver: load a CGC program from disk.

    Resolves local [#include "..."] directives recursively (relative to
    the including file, then [include_dirs]) into separate translation
    units, in include order, main file last — so co-extraction can slice
    text from the file that really defines each symbol.  System includes
    and the cgsim API header are recorded but never opened. *)

exception Driver_error of string

(** Headers never opened even when present on disk (the simulator API is
    not user code; Section 4.6's blacklist). *)
val default_blacklist : string list

val load :
  ?include_dirs:string list -> ?blacklist:string list -> string -> Ast.tu list
(** [load path] parses [path] and its local includes. *)

val load_string : ?file:string -> string -> Ast.tu list
(** Parse from memory (tests); includes are recorded but not resolved. *)

(** Parse + analyze in one step. *)
val analyze_file : ?include_dirs:string list -> ?blacklist:string list -> string -> Sema.env

val analyze_string : ?file:string -> string -> Sema.env

type kind =
  | Ident of string
  | Kw of string
  | Int_lit of int * string
  | Float_lit of float * string
  | Str_lit of string
  | Char_lit of char
  | Punct of string
  | Directive_include of { path : string; system : bool }
  | Directive_define of { name : string; body : string }
  | Directive_pragma of string
  | Eof

type t = {
  kind : kind;
  range : Srcloc.range;
}

let keywords =
  [
    "auto"; "bool"; "break"; "case"; "char"; "const"; "constexpr"; "continue"; "co_await";
    "default"; "do"; "double"; "else"; "enum"; "false"; "float"; "for"; "if"; "inline"; "int";
    "long"; "namespace"; "return"; "short"; "signed"; "sizeof"; "static"; "struct"; "switch";
    "template"; "true"; "typedef"; "typename"; "unsigned"; "using"; "void"; "while";
  ]

let kind_to_string = function
  | Ident s -> Printf.sprintf "identifier %s" s
  | Kw s -> Printf.sprintf "keyword %s" s
  | Int_lit (_, s) -> Printf.sprintf "integer %s" s
  | Float_lit (_, s) -> Printf.sprintf "float %s" s
  | Str_lit s -> Printf.sprintf "string %S" s
  | Char_lit c -> Printf.sprintf "char %C" c
  | Punct s -> Printf.sprintf "'%s'" s
  | Directive_include { path; system } ->
    Printf.sprintf "#include %s" (if system then "<" ^ path ^ ">" else "\"" ^ path ^ "\"")
  | Directive_define { name; _ } -> Printf.sprintf "#define %s" name
  | Directive_pragma p -> Printf.sprintf "#pragma %s" p
  | Eof -> "end of file"

let pp ppf t = Format.fprintf ppf "%s@%a" (kind_to_string t.kind) Srcloc.pp t.range

(** CGC recursive-descent parser.

    Parses a token stream into an {!Ast.tu}.  The grammar is the C++
    subset used by cgsim prototypes; anything outside it produces a
    located {!Diag.Error} rather than a guess.  Notable constructs:

    - [COMPUTE_KERNEL(realm, name, ports...) { body }] parses into
      {!Ast.T_kernel}, with the whole macro-call-through-body span kept
      as the expansion range (the paper's footnote 3: rewriting must use
      macro expansion ranges);
    - [[[attr]] constexpr auto g = make_compute_graph_v<[](...) {...}>;]
      parses into {!Ast.T_graph};
    - [>>] closing two template levels is split, as in C++11. *)

val parse : file:string -> string -> Ast.tu
(** Lex and parse one source buffer. *)

val parse_tokens : file:string -> source:string -> Token.t list -> Ast.tu

(** CGC token stream elements. *)

type kind =
  | Ident of string
  | Kw of string  (** language keyword (see {!keywords}) *)
  | Int_lit of int * string  (** value, original spelling *)
  | Float_lit of float * string
  | Str_lit of string  (** decoded contents *)
  | Char_lit of char
  | Punct of string  (** operator or punctuation spelling, e.g. "::", "<<" *)
  | Directive_include of { path : string; system : bool }
      (** A whole [#include] line. *)
  | Directive_define of { name : string; body : string }
      (** Object-like [#define NAME tokens...] (body kept as raw text). *)
  | Directive_pragma of string
  | Eof

type t = {
  kind : kind;
  range : Srcloc.range;
}

val keywords : string list
(** The C++ keywords CGC recognizes (incl. [co_await], [constexpr]). *)

val pp : Format.formatter -> t -> unit

val kind_to_string : kind -> string

(** CGC abstract syntax.

    Covers the C++ subset cgsim prototypes are written in: preprocessor
    directives (as recorded items), struct definitions, constexpr/const
    globals, free functions, [COMPUTE_KERNEL] definitions, and graph
    definitions ([constexpr auto g = make_compute_graph_v<lambda>]).
    Every node keeps its source {!Srcloc.range}. *)

type typ = {
  t_desc : typ_desc;
  t_range : Srcloc.range;
}

and typ_desc =
  | Tname of string  (** builtin or user type name, e.g. float, int16_t *)
  | Tqualified of string list * string  (** e.g. std::size_t *)
  | Ttemplate of string * targ list  (** KernelReadPort<float>, IoConnector<int> *)
  | Tconst of typ
  | Tref of typ
  | Tptr of typ
  | Tarray of typ * expr option  (** T name[N]; dimension may be inferred *)
  | Tauto

and targ =
  | Ta_type of typ
  | Ta_expr of expr  (** non-type template argument *)

and expr = {
  e_desc : expr_desc;
  e_range : Srcloc.range;
}

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | Ident of string
  | Scoped of string list * string  (** std::make_tuple *)
  | Call of expr * expr list
  | Member of expr * string  (** a.b *)
  | Arrow of expr * string  (** a->b *)
  | Index of expr * expr
  | Unop of string * expr
  | Binop of string * expr * expr
  | Assign of string * expr * expr  (** =, +=, ... *)
  | Cond of expr * expr * expr
  | Co_await of expr * Srcloc.range  (** operand, range of the co_await keyword itself *)
  | Init_list of expr list  (** { a, b, c } *)
  | Cast of typ * expr  (** T(expr) or (T)expr *)
  | Incr_post of expr
  | Decr_post of expr

and stmt = {
  s_desc : stmt_desc;
  s_range : Srcloc.range;
}

and stmt_desc =
  | S_decl of decl
  | S_expr of expr
  | S_if of expr * stmt list * stmt list
  | S_while of expr * stmt list
  | S_do_while of stmt list * expr
  | S_for of stmt option * expr option * expr option * stmt list
  | S_return of expr option
  | S_break
  | S_continue
  | S_block of stmt list

and decl = {
  d_quals : string list;  (** const, constexpr, static *)
  d_type : typ;
  d_vars : (string * expr option) list;  (** names with optional inits *)
}

type param = {
  p_type : typ;
  p_name : string;
  p_range : Srcloc.range;
}

type lambda = {
  l_params : param list;
  l_body : stmt list;
  l_range : Srcloc.range;
}

type top =
  | T_include of { path : string; system : bool; range : Srcloc.range }
  | T_define of { name : string; body : string; range : Srcloc.range }
  | T_pragma of { text : string; range : Srcloc.range }
  | T_struct of { name : string; fields : param list; range : Srcloc.range }
  | T_global of {
      quals : string list;
      typ : typ;
      name : string;
      init : expr option;
      attrs : string list;  (** [[attr]] spellings *)
      range : Srcloc.range;
    }
  | T_func of {
      quals : string list;
      ret : typ;
      name : string;
      params : param list;
      body : stmt list;
      range : Srcloc.range;
      body_range : Srcloc.range;  (** the braces, inclusive *)
    }
  | T_kernel of kernel
  | T_graph of graph

and kernel = {
  k_realm : string;
  k_name : string;
  k_params : param list;
  k_body : stmt list;
  k_range : Srcloc.range;  (** full COMPUTE_KERNEL(...) { ... } expansion range *)
  k_body_range : Srcloc.range;  (** braces, inclusive *)
}

and graph = {
  g_name : string;
  g_attrs : string list;
  g_lambda : lambda;
  g_range : Srcloc.range;
}

type tu = {
  tu_file : string;
  tu_source : string;
  tu_items : top list;
}

val top_range : top -> Srcloc.range

(** Fold over every expression in a statement list (pre-order). *)
val iter_exprs : (expr -> unit) -> stmt list -> unit

(** All identifiers referenced in a statement list (including scoped heads
    and callees), for dependency analysis. *)
val referenced_idents : stmt list -> string list

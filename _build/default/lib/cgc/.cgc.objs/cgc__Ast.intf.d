lib/cgc/ast.mli: Srcloc

lib/cgc/token.mli: Format Srcloc

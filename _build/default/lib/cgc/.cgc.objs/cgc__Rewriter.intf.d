lib/cgc/rewriter.mli: Srcloc

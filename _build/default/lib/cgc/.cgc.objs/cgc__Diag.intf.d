lib/cgc/diag.mli: Format Srcloc

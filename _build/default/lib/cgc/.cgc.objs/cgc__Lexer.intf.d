lib/cgc/lexer.mli: Token

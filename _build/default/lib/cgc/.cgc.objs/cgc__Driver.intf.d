lib/cgc/driver.mli: Ast Sema

lib/cgc/sema.ml: Ast Cgsim Format Hashtbl List Srcloc String

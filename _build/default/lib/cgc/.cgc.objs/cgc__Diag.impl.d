lib/cgc/diag.ml: Format Printf Srcloc

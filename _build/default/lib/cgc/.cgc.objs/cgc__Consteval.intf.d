lib/cgc/consteval.mli: Ast Cgsim Sema Srcloc

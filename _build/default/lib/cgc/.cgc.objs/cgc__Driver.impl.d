lib/cgc/driver.ml: Ast Filename Hashtbl In_channel List Parser Printf Sema Sys

lib/cgc/parser.mli: Ast Token

lib/cgc/srcloc.ml: Format

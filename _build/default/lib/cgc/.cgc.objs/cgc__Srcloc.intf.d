lib/cgc/srcloc.mli: Format

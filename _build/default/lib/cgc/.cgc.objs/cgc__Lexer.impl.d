lib/cgc/lexer.ml: Buffer Diag List Srcloc String Token

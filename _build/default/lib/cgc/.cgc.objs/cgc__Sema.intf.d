lib/cgc/sema.mli: Ast Cgsim Srcloc

lib/cgc/parser.ml: Array Ast Char Diag Lexer List Srcloc String Token

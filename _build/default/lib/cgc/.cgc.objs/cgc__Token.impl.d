lib/cgc/token.ml: Format Printf Srcloc

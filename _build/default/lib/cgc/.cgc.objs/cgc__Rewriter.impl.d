lib/cgc/rewriter.ml: Buffer List Printf Srcloc String

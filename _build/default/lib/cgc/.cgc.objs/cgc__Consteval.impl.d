lib/cgc/consteval.ml: Array Ast Cgsim Format Hashtbl List Option Printf Sema Srcloc String

lib/cgc/ast.ml: List Option Srcloc

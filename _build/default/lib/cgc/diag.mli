(** Diagnostics for the CGC front-end. *)

exception Error of Srcloc.range * string

(** Raise a located error. *)
val error : Srcloc.range -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Render "file:line:col: error: message". *)
val to_string : Srcloc.range -> string -> string

type cursor = {
  src : string;
  file : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let make_cursor ~file src = { src; file; off = 0; line = 1; col = 1 }

let pos c = { Srcloc.file = c.file; line = c.line; col = c.col; offset = c.off }

let at_end c = c.off >= String.length c.src

let peek c = if at_end c then '\000' else c.src.[c.off]

let peek2 c = if c.off + 1 >= String.length c.src then '\000' else c.src.[c.off + 1]

let advance c =
  if not (at_end c) then begin
    if c.src.[c.off] = '\n' then begin
      c.line <- c.line + 1;
      c.col <- 1
    end
    else c.col <- c.col + 1;
    c.off <- c.off + 1
  end

let range_from c start = Srcloc.make start (pos c)

let is_ident_start ch = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_digit ch = ch >= '0' && ch <= '9'

let is_ident_char ch = is_ident_start ch || is_digit ch

(* Multi-character punctuators, longest first. *)
let puncts =
  [
    "<<="; ">>="; "..."; "->*"; "::"; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "++"; "--";
    "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "->"; "[["; "]]"; "("; ")"; "{"; "}"; "[";
    "]"; "<"; ">"; ";"; ","; "."; ":"; "?"; "="; "+"; "-"; "*"; "/"; "%"; "!"; "&"; "|"; "^";
    "~";
  ]

let skip_ws_and_comments c =
  let rec go () =
    if at_end c then ()
    else begin
      match peek c with
      | ' ' | '\t' | '\r' | '\n' ->
        advance c;
        go ()
      | '/' when peek2 c = '/' ->
        while (not (at_end c)) && peek c <> '\n' do
          advance c
        done;
        go ()
      | '/' when peek2 c = '*' ->
        let start = pos c in
        advance c;
        advance c;
        let rec close () =
          if at_end c then
            Diag.error (Srcloc.make start (pos c)) "unterminated block comment"
          else if peek c = '*' && peek2 c = '/' then begin
            advance c;
            advance c
          end
          else begin
            advance c;
            close ()
          end
        in
        close ();
        go ()
      | '\\' when peek2 c = '\n' ->
        advance c;
        advance c;
        go ()
      | _ -> ()
    end
  in
  go ()

let lex_ident c =
  let start = pos c in
  let b = Buffer.create 16 in
  while (not (at_end c)) && is_ident_char (peek c) do
    Buffer.add_char b (peek c);
    advance c
  done;
  let name = Buffer.contents b in
  let kind =
    if List.mem name Token.keywords then Token.Kw name else Token.Ident name
  in
  { Token.kind; range = range_from c start }

let lex_number c =
  let start = pos c in
  let b = Buffer.create 16 in
  let add () =
    Buffer.add_char b (peek c);
    advance c
  in
  let is_hex = peek c = '0' && (peek2 c = 'x' || peek2 c = 'X') in
  if is_hex then begin
    add ();
    add ();
    while
      (not (at_end c))
      && (is_digit (peek c)
          || (peek c >= 'a' && peek c <= 'f')
          || (peek c >= 'A' && peek c <= 'F'))
    do
      add ()
    done
  end
  else begin
    while (not (at_end c)) && is_digit (peek c) do
      add ()
    done
  end;
  let is_float = ref false in
  if (not is_hex) && peek c = '.' && is_digit (peek2 c) then begin
    is_float := true;
    add ();
    while (not (at_end c)) && is_digit (peek c) do
      add ()
    done
  end
  else if (not is_hex) && peek c = '.' && not (is_ident_start (peek2 c)) then begin
    is_float := true;
    add ()
  end;
  if (not is_hex) && (peek c = 'e' || peek c = 'E') then begin
    is_float := true;
    add ();
    if peek c = '+' || peek c = '-' then add ();
    while (not (at_end c)) && is_digit (peek c) do
      add ()
    done
  end;
  let spelling_no_suffix = Buffer.contents b in
  (* Consume literal suffixes (f, u, l, ll, ul...). *)
  let suffix = Buffer.create 4 in
  while
    (not (at_end c))
    && (match peek c with 'f' | 'F' | 'u' | 'U' | 'l' | 'L' -> true | _ -> false)
  do
    Buffer.add_char suffix (peek c);
    advance c;
    if Buffer.length suffix > 0 && (Buffer.nth suffix 0 = 'f' || Buffer.nth suffix 0 = 'F') then
      is_float := true
  done;
  let spelling = spelling_no_suffix ^ Buffer.contents suffix in
  let range = range_from c start in
  if !is_float || String.contains (Buffer.contents suffix) 'f'
     || String.contains (Buffer.contents suffix) 'F'
  then begin
    match float_of_string_opt spelling_no_suffix with
    | Some f -> { Token.kind = Token.Float_lit (f, spelling); range }
    | None -> Diag.error range "malformed floating-point literal %s" spelling
  end
  else begin
    match int_of_string_opt spelling_no_suffix with
    | Some i -> { Token.kind = Token.Int_lit (i, spelling); range }
    | None -> Diag.error range "malformed integer literal %s" spelling
  end

let lex_string c =
  let start = pos c in
  advance c;
  let b = Buffer.create 16 in
  let rec go () =
    if at_end c then Diag.error (Srcloc.make start (pos c)) "unterminated string literal"
    else begin
      match peek c with
      | '"' -> advance c
      | '\\' ->
        advance c;
        let esc = peek c in
        advance c;
        Buffer.add_char b
          (match esc with
           | 'n' -> '\n'
           | 't' -> '\t'
           | 'r' -> '\r'
           | '0' -> '\000'
           | '\\' -> '\\'
           | '"' -> '"'
           | '\'' -> '\''
           | other -> other);
        go ()
      | ch ->
        Buffer.add_char b ch;
        advance c;
        go ()
    end
  in
  go ();
  { Token.kind = Token.Str_lit (Buffer.contents b); range = range_from c start }

let lex_char c =
  let start = pos c in
  advance c;
  let value =
    if peek c = '\\' then begin
      advance c;
      let esc = peek c in
      advance c;
      match esc with
      | 'n' -> '\n'
      | 't' -> '\t'
      | '0' -> '\000'
      | other -> other
    end
    else begin
      let ch = peek c in
      advance c;
      ch
    end
  in
  if peek c <> '\'' then Diag.error (range_from c start) "unterminated character literal";
  advance c;
  { Token.kind = Token.Char_lit value; range = range_from c start }

(* One whole preprocessor line. *)
let lex_directive c =
  let start = pos c in
  advance c (* '#' *);
  (* read the rest of the (logical) line *)
  let line_start = c.off in
  while (not (at_end c)) && peek c <> '\n' do
    if peek c = '\\' && peek2 c = '\n' then begin
      advance c;
      advance c
    end
    else advance c
  done;
  let text = String.sub c.src line_start (c.off - line_start) in
  let range = range_from c start in
  let text = String.trim text in
  let starts_with prefix =
    String.length text >= String.length prefix && String.sub text 0 (String.length prefix) = prefix
  in
  let after prefix = String.trim (String.sub text (String.length prefix) (String.length text - String.length prefix)) in
  if starts_with "include" then begin
    let arg = after "include" in
    if String.length arg >= 2 && arg.[0] = '<' then begin
      match String.index_opt arg '>' with
      | Some i ->
        {
          Token.kind = Token.Directive_include { path = String.sub arg 1 (i - 1); system = true };
          range;
        }
      | None -> Diag.error range "malformed #include directive"
    end
    else if String.length arg >= 2 && arg.[0] = '"' then begin
      match String.index_from_opt arg 1 '"' with
      | Some i ->
        {
          Token.kind = Token.Directive_include { path = String.sub arg 1 (i - 1); system = false };
          range;
        }
      | None -> Diag.error range "malformed #include directive"
    end
    else Diag.error range "malformed #include directive"
  end
  else if starts_with "define" then begin
    let arg = after "define" in
    match String.index_opt arg ' ' with
    | Some i ->
      {
        Token.kind =
          Token.Directive_define
            {
              name = String.sub arg 0 i;
              body = String.trim (String.sub arg i (String.length arg - i));
            };
        range;
      }
    | None -> { Token.kind = Token.Directive_define { name = arg; body = "" }; range }
  end
  else if starts_with "pragma" then
    { Token.kind = Token.Directive_pragma (after "pragma"); range }
  else Diag.error range "unsupported preprocessor directive: #%s" text

let lex_punct c =
  let start = pos c in
  let remaining = String.length c.src - c.off in
  let matches p =
    String.length p <= remaining && String.sub c.src c.off (String.length p) = p
  in
  match List.find_opt matches puncts with
  | Some p ->
    for _ = 1 to String.length p do
      advance c
    done;
    { Token.kind = Token.Punct p; range = range_from c start }
  | None ->
    Diag.error
      (Srcloc.make start { start with col = start.col + 1; offset = start.offset + 1 })
      "stray character %C" (peek c)

let tokenize ~file src =
  let c = make_cursor ~file src in
  let rec go acc =
    skip_ws_and_comments c;
    if at_end c then begin
      let p = pos c in
      List.rev ({ Token.kind = Token.Eof; range = Srcloc.make p p } :: acc)
    end
    else begin
      let tok =
        match peek c with
        | ch when is_ident_start ch -> lex_ident c
        | ch when is_digit ch -> lex_number c
        | '"' -> lex_string c
        | '\'' -> lex_char c
        | '#' -> lex_directive c
        | _ -> lex_punct c
      in
      go (tok :: acc)
    end
  in
  go []

exception Error of Srcloc.range * string

let error range fmt = Format.kasprintf (fun s -> raise (Error (range, s))) fmt

let to_string range msg = Printf.sprintf "%s: error: %s" (Srcloc.to_string range) msg

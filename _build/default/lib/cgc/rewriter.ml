exception Rewrite_error of string

type edit = {
  start : int;
  stop : int;  (* exclusive; start = stop for insertions *)
  text : string;
}

type t = {
  src : string;
  mutable edits : edit list;
}

let create ~source = { src = source; edits = [] }

let source t = t.src

let check_bounds t start stop =
  if start < 0 || stop > String.length t.src || start > stop then
    raise
      (Rewrite_error
         (Printf.sprintf "edit range [%d, %d) out of bounds (source is %d bytes)" start stop
            (String.length t.src)))

let add t e =
  check_bounds t e.start e.stop;
  t.edits <- e :: t.edits

let remove t ~start ~stop = add t { start; stop; text = "" }

let replace t ~start ~stop text = add t { start; stop; text }

let insert t ~at text = add t { start = at; stop = at; text }

let apply t =
  let edits =
    List.sort
      (fun a b -> if a.start <> b.start then compare a.start b.start else compare a.stop b.stop)
      (List.rev t.edits)
  in
  (* Overlap detection (adjacent insertions at the same point are fine). *)
  let rec check = function
    | a :: (b :: _ as rest) ->
      if a.stop > b.start then
        raise
          (Rewrite_error
             (Printf.sprintf "overlapping edits: [%d, %d) and [%d, %d)" a.start a.stop b.start
                b.stop));
      check rest
    | _ -> ()
  in
  check edits;
  let buf = Buffer.create (String.length t.src) in
  let cursor = ref 0 in
  List.iter
    (fun e ->
      if e.start > !cursor then Buffer.add_substring buf t.src !cursor (e.start - !cursor);
      Buffer.add_string buf e.text;
      cursor := max !cursor e.stop)
    edits;
  if !cursor < String.length t.src then
    Buffer.add_substring buf t.src !cursor (String.length t.src - !cursor);
  Buffer.contents buf

let slice ~source ~start ~stop =
  if start < 0 || stop > String.length source || start > stop then
    raise (Rewrite_error (Printf.sprintf "slice [%d, %d) out of bounds" start stop));
  String.sub source start (stop - start)

let slice_range ~source (r : Srcloc.range) =
  slice ~source ~start:r.Srcloc.start.Srcloc.offset ~stop:r.Srcloc.stop.Srcloc.offset

(** Thread-per-kernel functional simulator (the x86sim analogue).

    Runs the same serialized graphs and the same kernel bodies as cgsim's
    runtime, but with the execution model of AMD's functional simulator:
    every kernel instance, data source and data sink runs on a dedicated
    OS thread and blocks preemptively in queue operations.  This is the
    comparison point of Table 2 — faster than cgsim only when several
    compute-heavy kernels genuinely run in parallel; slower when frequent
    small transfers make mutex/condvar synchronisation dominate. *)

exception X86sim_error of string

type stats = {
  threads : int;
  failed : (string * exn) list;
  wall_ns : float;
}

(** [run g ~sources ~sinks] executes the graph to completion.  Re-raises
    the first kernel failure as {!X86sim_error} after joining all
    threads. *)
val run :
  ?queue_capacity:int ->
  Cgsim.Serialized.t ->
  sources:Cgsim.Io.source list ->
  sinks:Cgsim.Io.sink list ->
  stats

lib/x86sim/sim.mli: Cgsim

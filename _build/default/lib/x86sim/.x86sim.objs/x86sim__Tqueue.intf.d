lib/x86sim/tqueue.mli: Cgsim

lib/x86sim/sim.ml: Array Cgsim Domain Format Fun Gc List Mutex Printexc Printf String Tqueue Unix

lib/x86sim/tqueue.ml: Array Cgsim Condition Fun List Mutex

(** Thread-safe bounded broadcast queues.

    The preemptive counterpart of {!Cgsim.Bqueue}, used by the x86sim
    analogue, which runs every kernel on its own OS thread like AMD's
    functional simulator (Section 5.2).  Synchronisation is a mutex and
    condition variable per queue — the overhead the paper's Table 2
    contrasts against cgsim's cooperative design.

    Semantics match {!Cgsim.Bqueue}: broadcast to every consumer,
    per-producer FIFO, close-on-last-producer, reads past a drained closed
    queue raise {!Cgsim.Sched.End_of_stream}. *)

type t

type consumer

type producer

val create : name:string -> dtype:Cgsim.Dtype.t -> capacity:int -> unit -> t

val add_consumer : t -> consumer

val add_producer : t -> producer

val put : producer -> Cgsim.Value.t -> unit
(** Blocks while full. *)

val get : consumer -> Cgsim.Value.t
(** Blocks while empty; raises {!Cgsim.Sched.End_of_stream} when closed
    and drained. *)

val peek : consumer -> Cgsim.Value.t option

val available : consumer -> int

val producer_done : producer -> unit

val total_put : t -> int

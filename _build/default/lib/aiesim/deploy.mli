(** Deployment descriptors: a compute graph mapped onto the AIE array.

    A deploy records everything the cycle-approximate simulator needs
    beyond the graph itself: kernel placement on tiles (hence stream-route
    lengths) and, crucially, the kind of I/O adapter each kernel uses:

    - {!Direct}: hand-written kernels accessing streams with raw
      intrinsics, as in AMD's original examples (the "AMD" column of
      Table 1);
    - {!Thunk}: kernels wrapped by the graph extractor's generated adapter
      thunk (Section 4.5), which costs extra scalar operations around each
      stream access and a small constant per window (the "This work"
      column).

    The extractor produces [Thunk] deploys; baselines use [Direct]. *)

type adapter =
  | Direct
  | Thunk

val adapter_to_string : adapter -> string

type t = {
  graph : Cgsim.Serialized.t;
  array : Aie.Array_model.t;
  adapter : adapter;
  label : string;
}

exception Deploy_error of string

(** [make ~label ~adapter g] places every AIE-realm kernel on the array
    (column-major next to the shim by default; [place] can pin kernels —
    returning [None] falls back to auto-placement) and checks that the
    graph contains only AIE and I/O elements (kernels of other realms
    cannot be deployed to the array; {!Deploy_error}). *)
val make :
  ?cols:int ->
  ?rows:int ->
  ?place:(string -> Aie.Array_model.coord option) ->
  label:string ->
  adapter:adapter ->
  Cgsim.Serialized.t ->
  t

(** Baseline (hand-optimized, [Direct]) deploy. *)
val baseline : Cgsim.Serialized.t -> t

(** Extracted ([Thunk]) deploy, as emitted by the graph extractor. *)
val extracted : Cgsim.Serialized.t -> t

(** Coordinates of a kernel instance. *)
val coord_of : t -> string -> Aie.Array_model.coord

(** Stream-switch hops between the endpoints of a net (shim counts for
    global I/O). *)
val net_hops : t -> Cgsim.Serialized.net -> int

type adapter =
  | Direct
  | Thunk

let adapter_to_string = function
  | Direct -> "direct"
  | Thunk -> "thunk"

type t = {
  graph : Cgsim.Serialized.t;
  array : Aie.Array_model.t;
  adapter : adapter;
  label : string;
}

exception Deploy_error of string

let make ?cols ?rows ?place ~label ~adapter (g : Cgsim.Serialized.t) =
  let array = Aie.Array_model.create ?cols ?rows () in
  Array.iter
    (fun (ki : Cgsim.Serialized.kernel_inst) ->
      match ki.realm with
      | Cgsim.Kernel.Aie -> begin
        match place with
        | Some f -> begin
          match f ki.inst_name with
          | Some coord -> ignore (Aie.Array_model.place_at array ~name:ki.inst_name coord)
          | None -> ignore (Aie.Array_model.place array ~name:ki.inst_name)
        end
        | None -> ignore (Aie.Array_model.place array ~name:ki.inst_name)
      end
      | Cgsim.Kernel.Noextract | Cgsim.Kernel.Pl ->
        raise
          (Deploy_error
             (Printf.sprintf
                "graph %s: kernel %s has realm %s; only pure-AIE graphs can be deployed to the \
                 array (partition the graph first)"
                g.gname ki.inst_name
                (Cgsim.Kernel.realm_to_string ki.realm))))
    g.kernels;
  { graph = g; array; adapter; label }

let baseline g = make ~label:"amd-baseline" ~adapter:Direct g

let extracted g = make ~label:"cgsim-extracted" ~adapter:Thunk g

let coord_of t name =
  match Aie.Array_model.placement t.array ~name with
  | Some c -> c
  | None -> raise (Deploy_error (Printf.sprintf "kernel %s is not placed" name))

let net_hops t (n : Cgsim.Serialized.net) =
  let coord_of_ep (ep : Cgsim.Serialized.endpoint) =
    coord_of t t.graph.kernels.(ep.kernel_idx).inst_name
  in
  let shim = Aie.Array_model.shim_for t.array ~col:0 in
  let srcs =
    if n.global_input <> None then [ shim ] else List.map coord_of_ep n.writers
  in
  let dsts =
    (if n.global_output <> None then [ shim ] else [])
    @ List.map coord_of_ep n.readers
  in
  (* Worst-case endpoint pair bounds the route depth of the broadcast. *)
  List.fold_left
    (fun acc s ->
      List.fold_left (fun acc d -> max acc (Aie.Array_model.hops s d)) acc dsts)
    0 srcs

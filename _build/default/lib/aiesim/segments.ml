type seg =
  | Compute of int
  | Rd of { chan : int; bytes : int; core : int }
  | Wr of { chan : int; bytes : int; core : int }
  | Win_in of { chan : int; bytes : int; core : int }
  | Win_out of { chan : int; bytes : int; core : int }
  | Rtp_in of { chan : int }
  | Mark

let pp_seg ppf = function
  | Compute c -> Format.fprintf ppf "compute %d" c
  | Rd { chan; bytes; core } -> Format.fprintf ppf "rd ch%d %dB (%d)" chan bytes core
  | Wr { chan; bytes; core } -> Format.fprintf ppf "wr ch%d %dB (%d)" chan bytes core
  | Win_in { chan; bytes; core } -> Format.fprintf ppf "win-in ch%d %dB (%d)" chan bytes core
  | Win_out { chan; bytes; core } -> Format.fprintf ppf "win-out ch%d %dB (%d)" chan bytes core
  | Rtp_in { chan } -> Format.fprintf ppf "rtp ch%d" chan
  | Mark -> Format.pp_print_string ppf "mark"

type port_env = {
  chan_of_port : string -> int;
}

exception Compile_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

let stream_cycles bytes = max 1 ((bytes + Aie.Cfg.stream_bytes_per_cycle - 1) / Aie.Cfg.stream_bytes_per_cycle)

(* Maximum chunks a pipelined loop's traffic is re-expanded into. *)
let loop_chunks_cap = 32

type state = {
  env : port_env;
  thunked : bool;
  mutable rev_segs : seg list;
  usage : Vliw.usage;
  (* bytes already seen in the current (partial) window of each port *)
  win_progress : (string, int) Hashtbl.t;
  (* sub-beat residuals: window elements move through 32 B vector
     loads/stores, so per-element accesses accumulate into full beats
     instead of each charging a whole load/store slot *)
  mutable ld_residual : int;
  mutable st_residual : int;
}

let push st s = st.rev_segs <- s :: st.rev_segs

let flush st =
  if not (Vliw.is_empty st.usage) then begin
    push st (Compute (Vliw.cycles st.usage));
    let u = st.usage in
    u.Vliw.vec <- 0;
    u.Vliw.scl <- 0;
    u.Vliw.ld <- 0;
    u.Vliw.st <- 0;
    u.Vliw.srd <- 0;
    u.Vliw.swr <- 0
  end

let thunk_stream_cost st =
  if st.thunked then st.usage.Vliw.scl <- st.usage.Vliw.scl + !Aie.Cfg.thunk_scalar_ops_per_stream_access

(* Window progress bookkeeping: returns true when [bytes] starts a new
   window for [port]. *)
let window_step st port window_bytes bytes =
  let seen = Option.value (Hashtbl.find_opt st.win_progress port) ~default:0 in
  let starts = seen mod window_bytes = 0 in
  Hashtbl.replace st.win_progress port (seen + bytes);
  starts

let window_completes st port window_bytes =
  let seen = Option.value (Hashtbl.find_opt st.win_progress port) ~default:0 in
  seen > 0 && seen mod window_bytes = 0

(* Aggregated port traffic of one pipelined-loop iteration. *)
type loop_port = {
  lp_read : bool;
  lp_chan : int;
  lp_bytes : int;  (* per iteration *)
  lp_thunked : bool;
}

let rec consume_loop_body st events ~depth ~body_usage ~rev_ports =
  (* Scan events of ONE loop iteration, accumulating VLIW usage and port
     traffic; handles (rare) nested pipelined loops by folding their total
     cycles into the enclosing body as scalar-equivalent cycles. *)
  match events with
  | [] -> fail "pipelined loop region not closed (missing Loop_exit)"
  | Aie.Trace.Loop_exit :: rest ->
    if depth = 0 then rest, body_usage, List.rev rev_ports
    else fail "unbalanced Loop_exit"
  | ev :: rest ->
    (match ev with
     | Aie.Trace.Vop { slots; _ } ->
       body_usage.Vliw.vec <- body_usage.Vliw.vec + slots;
       consume_loop_body st rest ~depth ~body_usage ~rev_ports
     | Aie.Trace.Sop { count; _ } ->
       body_usage.Vliw.scl <- body_usage.Vliw.scl + count;
       consume_loop_body st rest ~depth ~body_usage ~rev_ports
     | Aie.Trace.Load { bytes } ->
       Vliw.add_load_bytes body_usage bytes;
       consume_loop_body st rest ~depth ~body_usage ~rev_ports
     | Aie.Trace.Store { bytes } ->
       Vliw.add_store_bytes body_usage bytes;
       consume_loop_body st rest ~depth ~body_usage ~rev_ports
     | Aie.Trace.Port_read { port; bytes; transport; thunked } ->
       (* Stream reads occupy the stream port and (when thunked) the
          adapter; window elements inside a loop are local-memory loads —
          the DMA moved them in the background — and RTP reads are a
          scalar fetch.  The lp entry keeps the data-arrival sync for the
          event engine in every case. *)
       (match transport with
        | Aie.Trace.Stream | Aie.Trace.Gmio ->
          body_usage.Vliw.srd <- body_usage.Vliw.srd + 1;
          if thunked then
            body_usage.Vliw.scl <-
              body_usage.Vliw.scl + !Aie.Cfg.thunk_scalar_ops_per_stream_access
        | Aie.Trace.Window _ -> Vliw.add_load_bytes body_usage bytes
        | Aie.Trace.Rtp -> body_usage.Vliw.scl <- body_usage.Vliw.scl + 1);
       let lp =
         { lp_read = true; lp_chan = st.env.chan_of_port port; lp_bytes = bytes;
           lp_thunked = (thunked && (transport = Aie.Trace.Stream || transport = Aie.Trace.Gmio)) }
       in
       consume_loop_body st rest ~depth ~body_usage ~rev_ports:(lp :: rev_ports)
     | Aie.Trace.Port_write { port; bytes; transport; thunked } ->
       (match transport with
        | Aie.Trace.Stream | Aie.Trace.Gmio ->
          body_usage.Vliw.swr <- body_usage.Vliw.swr + 1;
          if thunked then
            body_usage.Vliw.scl <-
              body_usage.Vliw.scl + !Aie.Cfg.thunk_scalar_ops_per_stream_access
        | Aie.Trace.Window _ -> Vliw.add_store_bytes body_usage bytes
        | Aie.Trace.Rtp -> body_usage.Vliw.scl <- body_usage.Vliw.scl + 1);
       let lp =
         { lp_read = false; lp_chan = st.env.chan_of_port port; lp_bytes = bytes;
           lp_thunked = (thunked && (transport = Aie.Trace.Stream || transport = Aie.Trace.Gmio)) }
       in
       consume_loop_body st rest ~depth ~body_usage ~rev_ports:(lp :: rev_ports)
     | Aie.Trace.Loop_enter { trip } ->
       (* Nested loop: fold its packed cycles into the outer body by
          charging them on the scalar unit (conservative serialisation). *)
       let inner = Vliw.empty () in
       let rest', inner_usage, inner_ports =
         consume_loop_body st rest ~depth:0 ~body_usage:inner ~rev_ports:[]
       in
       if inner_ports <> [] then
         fail "stream access inside a nested pipelined loop is not supported";
       body_usage.Vliw.scl <-
         body_usage.Vliw.scl + Vliw.loop_cycles inner_usage ~trip;
       consume_loop_body st rest' ~depth ~body_usage ~rev_ports
     | Aie.Trace.Iteration_mark -> fail "Iteration_mark inside a pipelined loop"
     | Aie.Trace.Loop_abort -> fail "Loop_abort inside a completed region"
     | Aie.Trace.Loop_exit -> assert false)

let emit_loop st ~trip ~body_usage ~ports =
  flush st;
  let ii = max 1 (Vliw.cycles body_usage) in
  (* Adapter thunks are opaque calls the software pipeliner schedules
     around: part of their overhead stays serial (fractional cycles per
     access, accumulated per chunk). *)
  let thunked_accesses = List.length (List.filter (fun lp -> lp.lp_thunked) ports) in
  let serial_per_iter = float_of_int thunked_accesses *. !Aie.Cfg.thunk_loop_extra_per_access in
  (* Re-expand traffic into at most [loop_chunks_cap] chunks so the event
     engine still interleaves this kernel with its peers. *)
  let chunks = max 1 (min trip loop_chunks_cap) in
  let base = trip / chunks and extra = trip mod chunks in
  for c = 0 to chunks - 1 do
    let ct = base + if c < extra then 1 else 0 in
    if ct > 0 then begin
      let serial = int_of_float (Float.round (serial_per_iter *. float_of_int ct)) in
      let cyc = (ii * ct) + serial + if c = 0 then Aie.Cfg.pipeline_depth else 0 in
      push st (Compute cyc);
      List.iter
        (fun lp ->
          let bytes = lp.lp_bytes * ct in
          if lp.lp_read then push st (Rd { chan = lp.lp_chan; bytes; core = 0 })
          else push st (Wr { chan = lp.lp_chan; bytes; core = 0 }))
        ports
    end
  done

let handle_event st ev =
  match ev with
  | Aie.Trace.Vop { slots; _ } -> st.usage.Vliw.vec <- st.usage.Vliw.vec + slots
  | Aie.Trace.Sop { count; _ } -> st.usage.Vliw.scl <- st.usage.Vliw.scl + count
  | Aie.Trace.Load { bytes } -> Vliw.add_load_bytes st.usage bytes
  | Aie.Trace.Store { bytes } -> Vliw.add_store_bytes st.usage bytes
  | Aie.Trace.Port_read { port; bytes; transport; thunked } ->
    let chan = st.env.chan_of_port port in
    (match transport with
     | Aie.Trace.Stream | Aie.Trace.Gmio ->
       if thunked then thunk_stream_cost st;
       flush st;
       push st (Rd { chan; bytes; core = stream_cycles bytes })
     | Aie.Trace.Window w ->
       if window_step st port w bytes then begin
         flush st;
         push st (Win_in { chan; bytes = w; core = Aie.Cfg.lock_acquire_cycles });
         if thunked then push st (Compute !Aie.Cfg.thunk_cycles_per_window)
       end;
       (* Window elements are local-memory traffic once acquired;
          accumulate into 32 B beats. *)
       st.ld_residual <- st.ld_residual + bytes;
       st.usage.Vliw.ld <- st.usage.Vliw.ld + (st.ld_residual / Aie.Cfg.dm_bytes_per_cycle);
       st.ld_residual <- st.ld_residual mod Aie.Cfg.dm_bytes_per_cycle
     | Aie.Trace.Rtp ->
       st.usage.Vliw.scl <- st.usage.Vliw.scl + 1;
       flush st;
       push st (Rtp_in { chan }))
  | Aie.Trace.Port_write { port; bytes; transport; thunked } ->
    let chan = st.env.chan_of_port port in
    (match transport with
     | Aie.Trace.Stream | Aie.Trace.Gmio ->
       if thunked then thunk_stream_cost st;
       flush st;
       push st (Wr { chan; bytes; core = stream_cycles bytes })
     | Aie.Trace.Window w ->
       ignore (window_step st port w bytes);
       st.st_residual <- st.st_residual + bytes;
       st.usage.Vliw.st <- st.usage.Vliw.st + (st.st_residual / Aie.Cfg.dm_bytes_per_cycle);
       st.st_residual <- st.st_residual mod Aie.Cfg.dm_bytes_per_cycle;
       if window_completes st port w then begin
         flush st;
         push st (Win_out { chan; bytes = w; core = Aie.Cfg.lock_acquire_cycles });
         if thunked then push st (Compute !Aie.Cfg.thunk_cycles_per_window)
       end
     | Aie.Trace.Rtp ->
       st.usage.Vliw.scl <- st.usage.Vliw.scl + 1;
       flush st;
       push st (Wr { chan; bytes; core = 1 }))
  | Aie.Trace.Iteration_mark ->
    flush st;
    push st (Compute Aie.Cfg.kernel_invocation_overhead_cycles);
    push st Mark
  | Aie.Trace.Loop_enter _ | Aie.Trace.Loop_exit | Aie.Trace.Loop_abort ->
    (* handled by the caller *)
    assert false

(* Split off one loop region (handling nesting) and classify how it
   ended: a clean [Loop_exit], an exceptional [Loop_abort], or a trace
   that simply stops (fiber cancelled while parked inside the region). *)
let split_region events =
  let rec go acc depth = function
    | [] -> List.rev acc, `Unclosed, []
    | Aie.Trace.Loop_exit :: rest when depth = 0 -> List.rev acc, `Closed, rest
    | Aie.Trace.Loop_abort :: rest when depth = 0 -> List.rev acc, `Aborted, rest
    | (Aie.Trace.Loop_enter _ as e) :: rest -> go (e :: acc) (depth + 1) rest
    | ((Aie.Trace.Loop_exit | Aie.Trace.Loop_abort) as e) :: rest -> go (e :: acc) (depth - 1) rest
    | e :: rest -> go (e :: acc) depth rest
  in
  go [] 0 events

let compile ~env ~thunked events =
  let st =
    {
      env;
      thunked;
      rev_segs = [];
      usage = Vliw.empty ();
      win_progress = Hashtbl.create 8;
      ld_residual = 0;
      st_residual = 0;
    }
  in
  let rec walk = function
    | [] -> ()
    | Aie.Trace.Loop_enter { trip } :: rest ->
      let region, terminator, rest' = split_region rest in
      (match terminator with
       | `Closed ->
         let body_usage = Vliw.empty () in
         let _, body_usage, ports =
           consume_loop_body st (region @ [ Aie.Trace.Loop_exit ]) ~depth:0 ~body_usage
             ~rev_ports:[]
         in
         if trip > 0 then emit_loop st ~trip ~body_usage ~ports
       | `Aborted | `Unclosed ->
         (* A partial first iteration: replay its events inline, without
            trip multiplication (functionally only this much data moved). *)
         walk region);
      walk rest'
    | (Aie.Trace.Loop_exit | Aie.Trace.Loop_abort) :: _ ->
      fail "Loop_exit/abort without matching Loop_enter"
    | ev :: rest ->
      handle_event st ev;
      walk rest
  in
  walk events;
  flush st;
  List.rev st.rev_segs

let compute_cycles segs =
  List.fold_left
    (fun acc -> function
      | Compute c -> acc + c
      | Rd { core; _ } | Wr { core; _ } | Win_in { core; _ } | Win_out { core; _ } -> acc + core
      | Rtp_in _ | Mark -> acc)
    0 segs

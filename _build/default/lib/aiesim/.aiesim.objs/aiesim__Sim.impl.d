lib/aiesim/sim.ml: Aie Array Buffer Cgsim Deploy Float Format Fun Hashtbl List Option Printf Segments String Sys

lib/aiesim/sim.mli: Cgsim Deploy Format

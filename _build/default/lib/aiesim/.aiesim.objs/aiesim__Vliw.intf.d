lib/aiesim/vliw.mli: Format

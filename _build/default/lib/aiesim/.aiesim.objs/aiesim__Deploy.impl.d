lib/aiesim/deploy.ml: Aie Array Cgsim List Printf

lib/aiesim/segments.mli: Aie Format

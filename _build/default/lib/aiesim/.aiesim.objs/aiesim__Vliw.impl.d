lib/aiesim/vliw.ml: Aie Format

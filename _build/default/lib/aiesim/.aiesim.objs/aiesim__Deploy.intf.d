lib/aiesim/deploy.mli: Aie Cgsim

lib/aiesim/segments.ml: Aie Float Format Hashtbl List Option Vliw

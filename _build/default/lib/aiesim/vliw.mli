(** VLIW issue model.

    Packs a bag of architectural operations into machine cycles under the
    AIE core's issue constraints ({!Aie.Cfg}): per cycle, one vector op,
    one scalar op, two 32-byte loads, one store, one stream read and one
    stream write may issue in parallel.  The cycle count of a straight-line
    region is the maximum over the per-class occupancy — the compiler is
    assumed to schedule perfectly within a region (optimistic, but equally
    optimistic for baseline and extracted code, so relative throughput is
    meaningful).

    Software-pipelined loops run at an initiation interval II equal to the
    packed cycle count of one iteration body, plus a fill/drain prologue
    of {!Aie.Cfg.pipeline_depth} cycles. *)

type usage = {
  mutable vec : int;  (** vector-unit issue slots *)
  mutable scl : int;  (** scalar-unit ops *)
  mutable ld : int;  (** load-unit beats (32 B each) *)
  mutable st : int;  (** store-unit beats *)
  mutable srd : int;  (** stream-read issues *)
  mutable swr : int;  (** stream-write issues *)
}

val empty : unit -> usage

val is_empty : usage -> bool

val add_load_bytes : usage -> int -> unit
(** Convert a data-memory access into load beats. *)

val add_store_bytes : usage -> int -> unit

val scale : usage -> int -> usage
(** Multiply all counts (loop bodies). *)

val add : usage -> usage -> unit
(** Accumulate [snd] into [fst]. *)

val cycles : usage -> int
(** Packed cycle count of the region (>= 1 when non-empty). *)

val loop_cycles : usage -> trip:int -> int
(** II * trip + pipeline fill. *)

val pp : Format.formatter -> usage -> unit

type usage = {
  mutable vec : int;
  mutable scl : int;
  mutable ld : int;
  mutable st : int;
  mutable srd : int;
  mutable swr : int;
}

let empty () = { vec = 0; scl = 0; ld = 0; st = 0; srd = 0; swr = 0 }

let is_empty u = u.vec = 0 && u.scl = 0 && u.ld = 0 && u.st = 0 && u.srd = 0 && u.swr = 0

let ceil_div a b = (a + b - 1) / b

let add_load_bytes u bytes = u.ld <- u.ld + max 1 (ceil_div bytes Aie.Cfg.dm_bytes_per_cycle)

let add_store_bytes u bytes = u.st <- u.st + max 1 (ceil_div bytes Aie.Cfg.dm_bytes_per_cycle)

let scale u k =
  { vec = u.vec * k; scl = u.scl * k; ld = u.ld * k; st = u.st * k; srd = u.srd * k; swr = u.swr * k }

let add dst src =
  dst.vec <- dst.vec + src.vec;
  dst.scl <- dst.scl + src.scl;
  dst.ld <- dst.ld + src.ld;
  dst.st <- dst.st + src.st;
  dst.srd <- dst.srd + src.srd;
  dst.swr <- dst.swr + src.swr

let cycles u =
  if is_empty u then 0
  else begin
    let open Aie.Cfg in
    let c =
      max
        (ceil_div u.vec slots_vector)
        (max
           (ceil_div u.scl slots_scalar)
           (max
              (ceil_div u.ld slots_load)
              (max (ceil_div u.st slots_store)
                 (max (ceil_div u.srd slots_stream_read) (ceil_div u.swr slots_stream_write)))))
    in
    max 1 c
  end

let loop_cycles u ~trip =
  if trip <= 0 then 0
  else begin
    let ii = max 1 (cycles u) in
    (ii * trip) + Aie.Cfg.pipeline_depth
  end

let pp ppf u =
  Format.fprintf ppf "{vec=%d scl=%d ld=%d st=%d srd=%d swr=%d -> %d cyc}" u.vec u.scl u.ld u.st
    u.srd u.swr (cycles u)

(** Trace compilation: architectural op traces to timed segment programs.

    A kernel's captured {!Aie.Trace} is compiled into a linear program of
    {!seg}ments: straight-line compute regions packed by the VLIW model,
    interleaved with the blocking I/O points where the discrete-event
    engine synchronises kernels through stream channels.

    Pipelined-loop regions compile to II*trip + prologue cycles; their
    stream traffic is re-expanded in bounded chunks so the event engine
    still sees producer/consumer overlap without one segment per
    iteration. *)

type seg =
  | Compute of int  (** core busy for this many cycles *)
  | Rd of { chan : int; bytes : int; core : int }
      (** Consume [bytes] from channel; the core is busy [core] cycles
          once data is available (0 when the issue cost is already inside
          a loop's II). *)
  | Wr of { chan : int; bytes : int; core : int }
  | Win_in of { chan : int; bytes : int; core : int }
      (** Acquire a full input window: blocks until [bytes] have arrived,
          then costs the lock-acquire [core] cycles. *)
  | Win_out of { chan : int; bytes : int; core : int }
      (** Release a full output window to the DMA. *)
  | Rtp_in of { chan : int }
  | Mark  (** Kernel iteration boundary (Table 1's inter-iteration time). *)

val pp_seg : Format.formatter -> seg -> unit

(** Per-port channel resolution handed in by the simulator. *)
type port_env = {
  chan_of_port : string -> int;
}

exception Compile_error of string

(** [compile ~env ~thunked events] — [thunked] selects the extracted
    adapter cost model ({!Deploy.Thunk}); the per-access costs come from
    {!Aie.Cfg}.  Raises {!Compile_error} on malformed traces (unbalanced
    loop markers, unknown ports). *)
val compile : env:port_env -> thunked:bool -> Aie.Trace.event list -> seg list

(** Total compute cycles in a segment program (diagnostics). *)
val compute_cycles : seg list -> int

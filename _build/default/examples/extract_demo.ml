(* Extraction demo: run the full source-to-source pipeline on a CGC
   prototype embedded right here, print the generated AIE project, and
   simulate the extracted graph.

     dune exec examples/extract_demo.exe *)

let prototype =
  {|#include "cgsim.hpp"
#include <cstdint>

// Gain applied before accumulation; co-extracted into the kernel source.
static constexpr int DEMO_SHIFT = 2;
static int demo_scale(int x) { return x << DEMO_SHIFT; }

COMPUTE_KERNEL(
    aie,
    demo_scaler,
    KernelReadPort<int32_t> in,
    KernelWritePort<int32_t> out
) {
    while (true) {
        co_await out.put(demo_scale(co_await in.get()));
    }
};

COMPUTE_KERNEL(
    aie,
    demo_accumulate,
    KernelReadPort<int32_t> in,
    KernelWritePort<int32_t> out
) {
    int acc = 0;
    while (true) {
        acc = acc + (co_await in.get());
        co_await out.put(acc);
    }
};

[[extract_compute_graph]]
constexpr auto demo_graph = make_compute_graph_v<[](
    IoConnector<int32_t> numbers
) {
    IoConnector<int32_t> scaled, running;
    demo_scaler(numbers, scaled);
    demo_accumulate(scaled, running);
    attach_attributes(running, {{"plio_name", "acc_out"}, {"plio_width", 32}});
    return std::make_tuple(running);
}>;|}

let () =
  Printf.printf "== graph extraction demo ==\n\n";
  let projects = Extractor.Project.extract_string ~file:"demo.cgc" prototype in
  List.iter
    (fun p ->
      Format.printf "%a@.@." Extractor.Project.pp_summary p;
      List.iter
        (fun f ->
          Printf.printf "---- %s ----\n%s\n" f.Extractor.Project.rel_path
            f.Extractor.Project.contents)
        p.Extractor.Project.files;
      (* The extracted subgraph deploys straight onto the
         cycle-approximate simulator with the generated-thunk cost
         model; kernels resolve through the registry, and CGC kernels
         without OCaml twins get placeholder bodies, so here we run the
         functional check through the serialized graph itself instead. *)
      let deploy = Extractor.Project.deploy p in
      Format.printf "deploy: %s (adapter = %s)@."
        deploy.Aiesim.Deploy.graph.Cgsim.Serialized.gname
        (Aiesim.Deploy.adapter_to_string deploy.Aiesim.Deploy.adapter))
    projects

examples/quickstart.mli:

examples/quickstart.ml: Array Attr Builder Cgsim Dtype Format Io Kernel Port Printf Registry Runtime Sched Serialized

examples/extract_demo.mli:

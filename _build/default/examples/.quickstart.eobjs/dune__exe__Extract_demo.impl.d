examples/extract_demo.ml: Aiesim Cgsim Extractor Format List Printf

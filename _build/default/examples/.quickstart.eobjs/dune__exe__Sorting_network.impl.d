examples/sorting_network.ml: Aiesim Apps Array Cgsim Printf String X86sim

examples/dsp_chain.ml: Aiesim Apps Array Builder Cgsim Dtype Io Kernel List Port Printf Registry Runtime Sched Value Workloads

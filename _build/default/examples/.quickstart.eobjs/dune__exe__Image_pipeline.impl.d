examples/image_pipeline.ml: Apps Array Cgsim Printf Workloads

examples/sorting_network.mli:

examples/dsp_chain.mli:

(* cgx — the cgsim compute-graph extractor and serving command-line tool.

   Mirrors the paper's source-to-source translation workflow (Figure 5):
   point it at a C++ (CGC) file containing cgsim graph prototypes and it
   emits one deployable AIE project per extractable graph.  Beyond the
   offline workflow, `serve` exposes the warm-pool runtime behind a
   socket and `request` is its client.

     cgx extract examples/cgc/farrow.cgc -o out/
     cgx inspect examples/cgc/farrow.cgc
     cgx simulate examples/cgc/bitonic.cgc          # aiesim, thunk model
     cgx serve --listen unix:/tmp/cgx.sock &
     cgx request --connect unix:/tmp/cgx.sock --app farrow *)

open Cmdliner

let handle_errors = Cgx_args.handle_errors

let extract_cmd =
  let run input include_dirs all_graphs out_dir =
    handle_errors (fun () ->
        let projects = Extractor.Project.extract_file ~include_dirs ~all_graphs input in
        List.iter
          (fun p ->
            let written = Extractor.Project.write ~dir:out_dir p in
            Printf.printf "graph %s:\n" p.Extractor.Project.graph_name;
            List.iter (fun path -> Printf.printf "  wrote %s\n" path) written)
          projects)
  in
  Cmd.v
    (Cmd.info "extract" ~doc:"Extract compute graphs into deployable AIE projects.")
    Term.(
      const run $ Cgx_args.input $ Cgx_args.include_dirs $ Cgx_args.all_graphs $ Cgx_args.out_dir)

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot instead of the text summary.")

let inspect_cmd =
  let run input include_dirs all_graphs dot =
    handle_errors (fun () ->
        let projects = Extractor.Project.extract_file ~include_dirs ~all_graphs input in
        List.iter
          (fun p ->
            if dot then
              print_string
                (Extractor.Dot.of_graph ~lint:p.Extractor.Project.lint
                   p.Extractor.Project.serialized)
            else begin
              Format.printf "%a@." Extractor.Project.pp_summary p;
              Format.printf "%a@." Cgsim.Serialized.pp p.Extractor.Project.serialized
            end)
          projects)
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Show the serialized graphs and port classification of a file.")
    Term.(const run $ Cgx_args.input $ Cgx_args.include_dirs $ Cgx_args.all_graphs $ dot_arg)

let dump_cmd =
  let run input include_dirs all_graphs =
    handle_errors (fun () ->
        let projects = Extractor.Project.extract_file ~include_dirs ~all_graphs input in
        List.iter
          (fun p -> print_string (Cgsim.Graph_text.to_string p.Extractor.Project.serialized))
          projects)
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Print the flattened serialized graphs in the textual graph format (the on-disk           analogue of the constexpr graph variable).")
    Term.(const run $ Cgx_args.input $ Cgx_args.include_dirs $ Cgx_args.all_graphs)

let suggest_capacities_arg =
  Arg.(
    value & flag
    & info
        [ "suggest-capacities" ]
        ~doc:
          "Run the capacity synthesizer and print the minimal deadlock-free queue depth for \
           every under-buffered cycle net, as net-id/depth pairs ready to apply (the same \
           depths Run_config.auto_capacity applies automatically).  With $(b,--json) the \
           pairs populate the suggested_capacities field.")

let lint_cmd =
  let run input include_dirs json graph_name suggest =
    handle_errors (fun () ->
        let env = Cgc.Driver.analyze_file ~include_dirs input in
        let graphs =
          match graph_name with
          | None -> Cgc.Sema.graphs env
          | Some n ->
            List.filter (fun (g : Cgc.Ast.graph) -> g.Cgc.Ast.g_name = n) (Cgc.Sema.graphs env)
        in
        if graphs = [] then begin
          Printf.eprintf "error: no compute graphs%s in %s\n"
            (match graph_name with Some n -> " named " ^ n | None -> "")
            input;
          exit 2
        end;
        let linted =
          List.map
            (fun (g : Cgc.Ast.graph) ->
              let serialized = Cgc.Consteval.eval_graph env g in
              let caps = if suggest || json then Analysis.Capacity.suggest serialized else [] in
              let bottleneck =
                if json then
                  Option.map
                    (fun b -> b.Analysis.Throughput.b_bottleneck)
                    (Analysis.Throughput.bound serialized)
                else None
              in
              g.Cgc.Ast.g_name, serialized, Analysis.Lint.run serialized, caps, bottleneck)
            graphs
        in
        if json then
          print_endline
            (Obs.Json.to_string
               (Obs.Json.Obj
                  [
                    "schema", Obs.Json.Str "cgsim-lint/2";
                    "file", Obs.Json.Str input;
                    ( "graphs",
                      Obs.Json.Arr
                        (List.map
                           (fun (name, _, diags, caps, bottleneck) ->
                             Analysis.Report.to_json ~suggested_capacities:caps
                               ?predicted_bottleneck:bottleneck ~graph:name diags)
                           linted) );
                  ]))
        else
          List.iter
            (fun (name, serialized, diags, caps, _) ->
              Printf.printf "graph %s: %s\n" name (Analysis.Report.summary diags);
              List.iter
                (fun d -> print_endline ("  " ^ Cgsim.Diagnostic.render d))
                (Cgsim.Diagnostic.sort diags);
              if suggest then
                if caps = [] then
                  Printf.printf "  capacities: all cycle nets already meet their bounds\n"
                else
                  List.iter
                    (fun (net_id, depth) ->
                      Printf.printf "  capacity: %s -> depth %d\n"
                        (Cgsim.Serialized.net_display serialized net_id)
                        depth)
                    caps)
            linted;
        (* 0 clean/info, 1 warnings, 2 errors — CI gates on >= 2. *)
        exit
          (Cgsim.Diagnostic.exit_status (List.concat_map (fun (_, _, d, _, _) -> d) linted)))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze the compute graphs of a file: structural validity, rate balance, \
          capacity-aware deadlock detection, capacity synthesis, throughput bounds, \
          fan-out/settings hazards, pool safety.")
    Term.(
      const run $ Cgx_args.input $ Cgx_args.include_dirs $ Cgx_args.json $ Cgx_args.graph
      $ suggest_capacities_arg)

let simulate_cmd =
  let run input include_dirs all_graphs reps trace deadline_ms metrics =
    handle_errors (fun () ->
        let projects = Extractor.Project.extract_file ~include_dirs ~all_graphs input in
        let chrome_trace =
          match trace with Some f when Filename.check_suffix f ".json" -> Some f | _ -> None
        in
        (* A trace file without the .json suffix silently fell through to
           the CSV timeline; say so, so a typo like trace.jsn is visible. *)
        (match trace, chrome_trace with
         | Some f, None ->
           Printf.eprintf
             "warning: --trace %s does not end in .json; writing the CSV iteration timeline \
              (name the file *.json for the Chrome trace)\n\
              %!"
             f
         | _ -> ());
        List.iter
          (fun p ->
            let name = p.Extractor.Project.graph_name in
            match Apps.Harness.find name with
            | None ->
              Printf.printf
                "graph %s: no registered workload; run via the library API with your own \
                 sources/sinks\n"
                name
            | Some h ->
              let deploy = Extractor.Project.deploy p in
              let config =
                match deadline_ms with
                | None -> None
                | Some ms -> Some Cgsim.Run_config.(with_deadline_ms ms default)
              in
              let simulate () =
                let sinks, _ = h.Apps.Harness.make_sinks () in
                Aiesim.Sim.run ?config deploy ~sources:(h.Apps.Harness.sources ~reps) ~sinks
              in
              if chrome_trace <> None || metrics <> None then begin
                (* Both exports read the same session: the trace file gets
                   the event ring, the metrics file the aggregates. *)
                let report, session = Obs.Trace.with_session simulate in
                Format.printf "%a@." Aiesim.Sim.pp_report report;
                (match chrome_trace with
                 | Some file ->
                   Out_channel.with_open_bin file (fun oc ->
                       Out_channel.output_string oc (Obs.Export.chrome_json session));
                   Printf.printf "wrote Chrome trace (open in https://ui.perfetto.dev) to %s\n"
                     file
                 | None -> ());
                match metrics with
                | Some file ->
                  let text =
                    Obs.Prom.of_snapshot (Obs.Metrics.snapshot session.Obs.Trace.metrics)
                  in
                  Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc text);
                  Printf.printf "wrote Prometheus exposition to %s\n" file
                | None -> ()
              end
              else begin
                let report = simulate () in
                Format.printf "%a@." Aiesim.Sim.pp_report report;
                match trace with
                | None -> ()
                | Some file ->
                  Out_channel.with_open_bin file (fun oc ->
                      Out_channel.output_string oc (Aiesim.Sim.timeline_csv report));
                  Printf.printf "wrote timeline to %s\n" file
              end)
          projects)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Extract and run on the cycle-approximate AIE simulator (known workloads only).")
    Term.(
      const run $ Cgx_args.input $ Cgx_args.include_dirs $ Cgx_args.all_graphs $ Cgx_args.reps
      $ Cgx_args.trace $ Cgx_args.deadline_ms $ Cgx_args.metrics)

(* ------------------------------------------------------------------ *)
(* serve / request                                                     *)
(* ------------------------------------------------------------------ *)

let parse_addr s =
  match Serve.Addr.parse s with
  | Ok a -> a
  | Error m ->
    Printf.eprintf "error: %s\n" m;
    exit 2

let builtin_graphs () =
  List.map (fun h -> h.Apps.Harness.name, h.Apps.Harness.graph ()) Apps.Harness.all

let stats_interval_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "stats-interval" ] ~docv:"SECONDS"
        ~doc:"Print a one-line serving summary to stderr every SECONDS seconds.")

let extra_graph_files_arg =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "Additional CGC source files whose extracted graphs are served alongside the four \
           built-in paper applications.")

let serve_cmd =
  let run listen domains include_dirs files deadline_ms retries breaker stats_interval =
    handle_errors (fun () ->
        let addr = parse_addr listen in
        let extracted =
          List.concat_map
            (fun f ->
              let ps = Extractor.Project.extract_file ~include_dirs ~all_graphs:true f in
              List.map
                (fun p -> p.Extractor.Project.graph_name, p.Extractor.Project.serialized)
                ps)
            files
        in
        let graphs = builtin_graphs () @ extracted in
        let config =
          let open Cgsim.Run_config in
          let c = with_retries retries default in
          let c = match deadline_ms with Some ms -> with_deadline_ms ms c | None -> c in
          match breaker with Some n -> with_breaker n c | None -> c
        in
        let server =
          Serve.Server.create ~config ?stats_interval_s:stats_interval ~graphs ~domains
            ~listen:addr ()
        in
        Serve.Server.install_signal_handlers server;
        Printf.eprintf "[cgx serve] listening on %s (%d domains, %d graphs)\n%!"
          (Serve.Addr.to_string addr) domains (List.length graphs);
        Serve.Server.serve server;
        Printf.eprintf "[cgx serve] drained after %d requests\n%!" (Serve.Server.served server))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve compute graphs over a socket: a long-lived daemon owning a warm instance pool, \
          speaking the versioned cgx-serve/1 length-prefixed JSON protocol.  SIGTERM drains \
          gracefully: in-flight requests complete and their replies are written before exit.")
    Term.(
      const run $ Cgx_args.listen $ Cgx_args.domains $ Cgx_args.include_dirs
      $ extra_graph_files_arg $ Cgx_args.deadline_ms $ Cgx_args.retries $ Cgx_args.breaker
      $ stats_interval_arg)

let app_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "app" ] ~docv:"NAME"
        ~doc:"Run one of the built-in paper applications (bitonic, farrow, iir, bilinear).")

let ping_arg = Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe; print the round-trip time.")

let drain_source src =
  let pull = Cgsim.Io.source_pull src in
  let rec go acc =
    match pull () with
    | Some v -> go (v :: acc)
    | None -> List.rev acc
  in
  go []

let request_app client name reps seed deadline_ms =
  match Apps.Harness.find name with
  | None ->
    Printf.eprintf "error: unknown app %S (expected bitonic, farrow, iir or bilinear)\n" name;
    exit 2
  | Some h ->
    let inputs = List.map drain_source (h.Apps.Harness.sources ~reps) in
    (match Serve.Client.run client ?deadline_ms ?seed ~graph:name inputs with
     | Error m ->
       Printf.eprintf "error: %s\n" m;
       exit 1
     | Ok rp -> (
       match rp.Serve.Wire.rp_outcome with
       | Serve.Wire.Completed outputs ->
         let primary = match outputs with o :: _ -> o | [] -> [] in
         (match h.Apps.Harness.check ~reps primary with
          | Ok () ->
            Printf.printf
              "graph %s: completed, %d output elements in %.3f ms server time (run %.3f ms, %d \
               attempt(s), domain %d); output check passed\n"
              name (List.length primary)
              (rp.Serve.Wire.rp_server_ns /. 1e6)
              (rp.Serve.Wire.rp_run_ns /. 1e6)
              rp.Serve.Wire.rp_attempts rp.Serve.Wire.rp_domain
          | Error m ->
            Printf.eprintf "graph %s: completed but output check failed: %s\n" name m;
            exit 1)
       | other ->
         Printf.eprintf "graph %s: %s (%d attempt(s))\n" name
           (Serve.Wire.run_outcome_label other)
           rp.Serve.Wire.rp_attempts;
         exit 1))

let request_cmd =
  let run connect app reps seed deadline_ms metrics ping =
    handle_errors (fun () ->
        let addr = parse_addr connect in
        let client = Serve.Client.connect ~retries:10 addr in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close client)
          (fun () ->
            if ping then (
              match Serve.Client.ping client with
              | Ok rtt_ns -> Printf.printf "pong in %.3f ms\n" (rtt_ns /. 1e6)
              | Error m ->
                Printf.eprintf "error: %s\n" m;
                exit 1)
            else
              match metrics with
              | Some file -> (
                match Serve.Client.metrics client with
                | Ok body ->
                  Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc body);
                  Printf.printf "wrote Prometheus exposition to %s\n" file
                | Error m ->
                  Printf.eprintf "error: %s\n" m;
                  exit 1)
              | None -> (
                match app with
                | Some name -> request_app client name reps seed deadline_ms
                | None ->
                  Printf.eprintf "error: one of --app, --metrics or --ping is required\n";
                  exit 2)))
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running $(b,cgx serve) daemon: run a built-in app and check its \
          outputs against the golden reference, dump the server's /metrics exposition, or ping.")
    Term.(
      const run $ Cgx_args.connect $ app_arg $ Cgx_args.reps $ Cgx_args.seed
      $ Cgx_args.deadline_ms $ Cgx_args.metrics $ ping_arg)

let () =
  let info =
    Cmd.info "cgx" ~version:"1.0.0"
      ~doc:"Compute-graph extractor for cgsim prototypes targeting AMD Versal AI Engines"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ extract_cmd; inspect_cmd; dump_cmd; lint_cmd; simulate_cmd; serve_cmd; request_cmd ]))

(* cgx — the cgsim compute-graph extractor command-line tool.

   Mirrors the paper's source-to-source translation workflow (Figure 5):
   point it at a C++ (CGC) file containing cgsim graph prototypes and it
   emits one deployable AIE project per extractable graph.

     cgx extract examples/cgc/farrow.cgc -o out/
     cgx inspect examples/cgc/farrow.cgc
     cgx simulate examples/cgc/bitonic.cgc          # aiesim, thunk model *)

open Cmdliner

let input_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"C++ source file containing cgsim compute graphs.")

let include_dirs_arg =
  Arg.(
    value & opt_all dir []
    & info [ "I"; "include" ] ~docv:"DIR" ~doc:"Additional include directory.")

let all_graphs_arg =
  Arg.(
    value & flag
    & info [ "a"; "all-graphs" ]
        ~doc:
          "Extract every graph, not only those annotated \
           [[extract_compute_graph]].")

let out_dir_arg =
  Arg.(
    value & opt string "extracted"
    & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory for generated projects.")

let handle_errors f =
  try f () with
  | Cgc.Diag.Error (range, msg) ->
    Printf.eprintf "%s\n" (Cgc.Diag.to_string range msg);
    exit 1
  | Cgc.Sema.Sema_error (range, msg) ->
    Printf.eprintf "%s\n" (Cgc.Diag.to_string range msg);
    exit 1
  | Cgc.Consteval.Eval_error (range, msg) ->
    Printf.eprintf "%s\n" (Cgc.Diag.to_string range msg);
    exit 1
  | Cgc.Driver.Driver_error msg | Extractor.Project.Extract_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Aiesim.Sim.Sim_error msg | Cgsim.Runtime.Runtime_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

let extract_cmd =
  let run input include_dirs all_graphs out_dir =
    handle_errors (fun () ->
        let projects = Extractor.Project.extract_file ~include_dirs ~all_graphs input in
        List.iter
          (fun p ->
            let written = Extractor.Project.write ~dir:out_dir p in
            Printf.printf "graph %s:\n" p.Extractor.Project.graph_name;
            List.iter (fun path -> Printf.printf "  wrote %s\n" path) written)
          projects)
  in
  Cmd.v
    (Cmd.info "extract" ~doc:"Extract compute graphs into deployable AIE projects.")
    Term.(const run $ input_arg $ include_dirs_arg $ all_graphs_arg $ out_dir_arg)

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot instead of the text summary.")

let inspect_cmd =
  let run input include_dirs all_graphs dot =
    handle_errors (fun () ->
        let projects = Extractor.Project.extract_file ~include_dirs ~all_graphs input in
        List.iter
          (fun p ->
            if dot then
              print_string
                (Extractor.Dot.of_graph ~lint:p.Extractor.Project.lint
                   p.Extractor.Project.serialized)
            else begin
              Format.printf "%a@." Extractor.Project.pp_summary p;
              Format.printf "%a@." Cgsim.Serialized.pp p.Extractor.Project.serialized
            end)
          projects)
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Show the serialized graphs and port classification of a file.")
    Term.(const run $ input_arg $ include_dirs_arg $ all_graphs_arg $ dot_arg)

let dump_cmd =
  let run input include_dirs all_graphs =
    handle_errors (fun () ->
        let projects = Extractor.Project.extract_file ~include_dirs ~all_graphs input in
        List.iter
          (fun p -> print_string (Cgsim.Graph_text.to_string p.Extractor.Project.serialized))
          projects)
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Print the flattened serialized graphs in the textual graph format (the on-disk           analogue of the constexpr graph variable).")
    Term.(const run $ input_arg $ include_dirs_arg $ all_graphs_arg)

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit findings as a JSON document (schema cgsim-lint/2).")

let suggest_capacities_arg =
  Arg.(
    value & flag
    & info
        [ "suggest-capacities" ]
        ~doc:
          "Run the capacity synthesizer and print the minimal deadlock-free queue depth for \
           every under-buffered cycle net, as net-id/depth pairs ready to apply (the same \
           depths Run_config.auto_capacity applies automatically).  With $(b,--json) the \
           pairs populate the suggested_capacities field.")

let graph_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "g"; "graph" ] ~docv:"NAME" ~doc:"Lint only the graph named NAME.")

let lint_cmd =
  let run input include_dirs json graph_name suggest =
    handle_errors (fun () ->
        let env = Cgc.Driver.analyze_file ~include_dirs input in
        let graphs =
          match graph_name with
          | None -> Cgc.Sema.graphs env
          | Some n ->
            List.filter (fun (g : Cgc.Ast.graph) -> g.Cgc.Ast.g_name = n) (Cgc.Sema.graphs env)
        in
        if graphs = [] then begin
          Printf.eprintf "error: no compute graphs%s in %s\n"
            (match graph_name with Some n -> " named " ^ n | None -> "")
            input;
          exit 2
        end;
        let linted =
          List.map
            (fun (g : Cgc.Ast.graph) ->
              let serialized = Cgc.Consteval.eval_graph env g in
              let caps = if suggest || json then Analysis.Capacity.suggest serialized else [] in
              let bottleneck =
                if json then
                  Option.map
                    (fun b -> b.Analysis.Throughput.b_bottleneck)
                    (Analysis.Throughput.bound serialized)
                else None
              in
              g.Cgc.Ast.g_name, serialized, Analysis.Lint.run serialized, caps, bottleneck)
            graphs
        in
        if json then
          print_endline
            (Obs.Json.to_string
               (Obs.Json.Obj
                  [
                    "schema", Obs.Json.Str "cgsim-lint/2";
                    "file", Obs.Json.Str input;
                    ( "graphs",
                      Obs.Json.Arr
                        (List.map
                           (fun (name, _, diags, caps, bottleneck) ->
                             Analysis.Report.to_json ~suggested_capacities:caps
                               ?predicted_bottleneck:bottleneck ~graph:name diags)
                           linted) );
                  ]))
        else
          List.iter
            (fun (name, serialized, diags, caps, _) ->
              Printf.printf "graph %s: %s\n" name (Analysis.Report.summary diags);
              List.iter
                (fun d -> print_endline ("  " ^ Cgsim.Diagnostic.render d))
                (Cgsim.Diagnostic.sort diags);
              if suggest then
                if caps = [] then
                  Printf.printf "  capacities: all cycle nets already meet their bounds\n"
                else
                  List.iter
                    (fun (net_id, depth) ->
                      Printf.printf "  capacity: %s -> depth %d\n"
                        (Cgsim.Serialized.net_display serialized net_id)
                        depth)
                    caps)
            linted;
        (* 0 clean/info, 1 warnings, 2 errors — CI gates on >= 2. *)
        exit
          (Cgsim.Diagnostic.exit_status (List.concat_map (fun (_, _, d, _, _) -> d) linted)))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze the compute graphs of a file: structural validity, rate balance, \
          capacity-aware deadlock detection, capacity synthesis, throughput bounds, \
          fan-out/settings hazards, pool safety.")
    Term.(
      const run $ input_arg $ include_dirs_arg $ json_arg $ graph_arg $ suggest_capacities_arg)

let reps_arg =
  Arg.(value & opt int 8 & info [ "r"; "reps" ] ~docv:"N" ~doc:"Input blocks to simulate.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write an execution trace of the simulation.  FILE ending in .json gets the full \
           Chrome trace-event form (capture-phase scheduler/queue activity plus the replay \
           timeline; open in Perfetto); any other extension gets the CSV iteration timeline.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget for the functional capture phase of each simulated graph.  A \
           stalled or divergent graph is stopped at the budget and reported as an error \
           naming the parked kernels, instead of hanging the command.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the simulation's aggregate metrics (per-port element counters, per-kernel \
           self-time histograms, scheduler/queue latencies) as Prometheus text exposition \
           (format 0.0.4) to FILE.")

let simulate_cmd =
  let run input include_dirs all_graphs reps trace deadline_ms metrics =
    handle_errors (fun () ->
        let projects = Extractor.Project.extract_file ~include_dirs ~all_graphs input in
        let chrome_trace =
          match trace with Some f when Filename.check_suffix f ".json" -> Some f | _ -> None
        in
        (* A trace file without the .json suffix silently fell through to
           the CSV timeline; say so, so a typo like trace.jsn is visible. *)
        (match trace, chrome_trace with
         | Some f, None ->
           Printf.eprintf
             "warning: --trace %s does not end in .json; writing the CSV iteration timeline \
              (name the file *.json for the Chrome trace)\n\
              %!"
             f
         | _ -> ());
        List.iter
          (fun p ->
            let name = p.Extractor.Project.graph_name in
            match Apps.Harness.find name with
            | None ->
              Printf.printf
                "graph %s: no registered workload; run via the library API with your own \
                 sources/sinks\n"
                name
            | Some h ->
              let deploy = Extractor.Project.deploy p in
              let config =
                match deadline_ms with
                | None -> None
                | Some ms -> Some Cgsim.Run_config.(with_deadline_ms ms default)
              in
              let simulate () =
                let sinks, _ = h.Apps.Harness.make_sinks () in
                Aiesim.Sim.run ?config deploy ~sources:(h.Apps.Harness.sources ~reps) ~sinks
              in
              if chrome_trace <> None || metrics <> None then begin
                (* Both exports read the same session: the trace file gets
                   the event ring, the metrics file the aggregates. *)
                let report, session = Obs.Trace.with_session simulate in
                Format.printf "%a@." Aiesim.Sim.pp_report report;
                (match chrome_trace with
                 | Some file ->
                   Out_channel.with_open_bin file (fun oc ->
                       Out_channel.output_string oc (Obs.Export.chrome_json session));
                   Printf.printf "wrote Chrome trace (open in https://ui.perfetto.dev) to %s\n"
                     file
                 | None -> ());
                match metrics with
                | Some file ->
                  let text =
                    Obs.Prom.of_snapshot (Obs.Metrics.snapshot session.Obs.Trace.metrics)
                  in
                  Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc text);
                  Printf.printf "wrote Prometheus exposition to %s\n" file
                | None -> ()
              end
              else begin
                let report = simulate () in
                Format.printf "%a@." Aiesim.Sim.pp_report report;
                match trace with
                | None -> ()
                | Some file ->
                  Out_channel.with_open_bin file (fun oc ->
                      Out_channel.output_string oc (Aiesim.Sim.timeline_csv report));
                  Printf.printf "wrote timeline to %s\n" file
              end)
          projects)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Extract and run on the cycle-approximate AIE simulator (known workloads only).")
    Term.(
      const run $ input_arg $ include_dirs_arg $ all_graphs_arg $ reps_arg $ trace_arg
      $ deadline_arg $ metrics_arg)

let () =
  let info =
    Cmd.info "cgx" ~version:"1.0.0"
      ~doc:"Compute-graph extractor for cgsim prototypes targeting AMD Versal AI Engines"
  in
  exit (Cmd.eval (Cmd.group info [ extract_cmd; inspect_cmd; dump_cmd; lint_cmd; simulate_cmd ]))

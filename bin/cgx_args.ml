(* Shared Cmdliner vocabulary for every cgx subcommand, so flags spell
   and document identically everywhere instead of each command growing
   its own slightly-different copy. *)

open Cmdliner

let input =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"C++ source file containing cgsim compute graphs.")

let include_dirs =
  Arg.(
    value & opt_all dir []
    & info [ "I"; "include" ] ~docv:"DIR" ~doc:"Additional include directory.")

let all_graphs =
  Arg.(
    value & flag
    & info [ "a"; "all-graphs" ]
        ~doc:
          "Extract every graph, not only those annotated \
           [[extract_compute_graph]].")

let out_dir =
  Arg.(
    value & opt string "extracted"
    & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory for generated projects.")

let json =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit findings as a JSON document (schema cgsim-lint/2).")

let graph =
  Arg.(
    value
    & opt (some string) None
    & info [ "g"; "graph" ] ~docv:"NAME" ~doc:"Lint only the graph named NAME.")

let reps =
  Arg.(value & opt int 8 & info [ "r"; "reps" ] ~docv:"N" ~doc:"Input blocks to simulate.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write an execution trace of the simulation.  FILE ending in .json gets the full \
           Chrome trace-event form (capture-phase scheduler/queue activity plus the replay \
           timeline; open in Perfetto); any other extension gets the CSV iteration timeline.")

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget per graph execution.  A stalled or divergent graph is stopped at \
           the budget and reported with the parked kernels named, instead of hanging the \
           command (or the serving request).")

let metrics =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write aggregate metrics (per-port element counters, per-kernel self-time \
           histograms, scheduler/queue/pool latencies) as Prometheus text exposition \
           (format 0.0.4) to FILE.")

let seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N" ~doc:"Deterministic seed (retry backoff jitter).")

let domains =
  Arg.(
    value & opt int 2
    & info [ "domains" ] ~docv:"N" ~doc:"Worker domains serving requests in parallel.")

let retries =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:"Retry budget per request for retryable outcomes (failures, deadline hits).")

let breaker =
  Arg.(
    value
    & opt (some int) None
    & info [ "breaker" ] ~docv:"N"
        ~doc:
          "Circuit-breaker threshold: after N consecutive failed requests the circuit opens \
           and further requests are shed until the server restarts.")

let listen =
  Arg.(
    required
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:"Listen address: $(b,unix:PATH) or $(b,HOST:PORT).")

let connect =
  Arg.(
    required
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:"Server address: $(b,unix:PATH) or $(b,HOST:PORT).")

let handle_errors f =
  try f () with
  | Cgc.Diag.Error (range, msg) ->
    Printf.eprintf "%s\n" (Cgc.Diag.to_string range msg);
    exit 1
  | Cgc.Sema.Sema_error (range, msg) ->
    Printf.eprintf "%s\n" (Cgc.Diag.to_string range msg);
    exit 1
  | Cgc.Consteval.Eval_error (range, msg) ->
    Printf.eprintf "%s\n" (Cgc.Diag.to_string range msg);
    exit 1
  | Cgc.Driver.Driver_error msg | Extractor.Project.Extract_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Aiesim.Sim.Sim_error msg | Cgsim.Runtime.Runtime_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "error: %s: %s%s\n" fn (Unix.error_message e)
      (if arg = "" then "" else " (" ^ arg ^ ")");
    exit 1
  | Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

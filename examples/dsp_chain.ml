(* DSP-chain example: a custom compute graph combining the farrow
   fractional-delay stages with the IIR low-pass, showing how graphs are
   composed from a library of kernels and swept over a runtime parameter.

     dune exec examples/dsp_chain.exe *)

open Cgsim

(* farrow stage1/stage2 -> i16-to-f32 conversion -> IIR low-pass *)
let i16_to_f32 =
  Kernel.define ~realm:Kernel.Aie ~name:"dsp_i16_to_f32"
    [ Kernel.in_port "in" Dtype.I16; Kernel.out_port "out" Dtype.F32 ]
    (fun b ->
      let input = Kernel.rd b 0 and out = Kernel.wr b 0 in
      while true do
        Port.put_f32 out (float_of_int (Port.get_int input) /. 32768.0)
      done)

let () = Registry.register i16_to_f32

let chain_graph () =
  Builder.make ~name:"dsp_chain"
    ~inputs:[ "d", Dtype.I16; "samples", Dtype.I16 ]
    (fun g conns ->
      match conns with
      | [ d; samples ] ->
        let c01 = Builder.net g Apps.Farrow.cascade_dtype in
        let c23 = Builder.net g Apps.Farrow.cascade_dtype in
        let delayed = Builder.net g Dtype.I16 in
        let as_float = Builder.net g Dtype.F32 in
        let filtered = Builder.net g Dtype.F32 in
        ignore (Builder.add_kernel g Apps.Farrow.stage1 [ samples; c01; c23 ]);
        ignore (Builder.add_kernel g Apps.Farrow.stage2 [ c01; c23; d; delayed ]);
        ignore (Builder.add_kernel g i16_to_f32 [ delayed; as_float ]);
        ignore (Builder.add_kernel g Apps.Iir.kernel [ as_float; filtered ]);
        [ filtered ]
      | _ -> assert false)

let rms a =
  sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 a /. float_of_int (Array.length a))

let () =
  Printf.printf "== DSP chain: farrow fractional delay -> IIR low-pass ==\n";
  let samples = Workloads.Signals.chirp_i16 ~seed:5 ~amplitude:12000 2048 in
  (* Sweep the fractional delay (a runtime parameter) and measure the
     output RMS: the low-pass response to the chirp is delay-invariant,
     so the RMS stays stable while each run re-instantiates the graph
     with a different RTP value. *)
  List.iter
    (fun d_frac ->
      let d_q15 = int_of_float (d_frac *. 32768.0) in
      let d_q15 = min 32767 (max 0 d_q15) in
      let sink, result = Io.f32_buffer () in
      let stats =
        Runtime.execute_exn (chain_graph ())
          ~sources:
            [ Io.rtp (Value.Int d_q15); Io.of_int_array Dtype.I16 samples ]
          ~sinks:[ sink ]
      in
      let out = result () in
      Printf.printf "d = %.2f: %5d samples out, rms = %.4f (%d fiber slices)\n" d_frac
        (Array.length out) (rms out) stats.Sched.slices)
    [ 0.0; 0.25; 0.5; 0.75 ];
  (* The same composed graph runs on the cycle-approximate simulator. *)
  let sink = Io.null () in
  let deploy = Aiesim.Deploy.baseline (chain_graph ()) in
  let report =
    Aiesim.Sim.run deploy
      ~sources:
        [ Io.rtp (Value.Int 16384); Io.of_int_array Dtype.I16 samples ]
      ~sinks:[ sink ]
  in
  Printf.printf "\naiesim: 4-kernel chain, %.1f ns per 4096-byte block\n"
    report.Aiesim.Sim.ns_per_block

(* Image-pipeline example: bilinear resampling of a synthetic image with
   the bilinear-interpolation graph, plus a struct-typed stream showing
   cgsim's custom stream data types.

     dune exec examples/image_pipeline.exe *)

let () =
  Printf.printf "== image pipeline: bilinear resampling ==\n";
  let img = Workloads.Images.synthetic ~width:64 ~height:64 in
  (* Resample the 64x64 image to 24x24 by streaming one interpolation
     request per output pixel through the bilinear graph. *)
  let out_w = 24 and out_h = 24 in
  let requests =
    Array.init (out_w * out_h) (fun i ->
        let ox = i mod out_w and oy = i / out_w in
        (* Map output pixel centres into source coordinates. *)
        let sx = float_of_int ox *. float_of_int (img.Workloads.Images.width - 2) /. float_of_int (out_w - 1) in
        let sy = float_of_int oy *. float_of_int (img.Workloads.Images.height - 2) /. float_of_int (out_h - 1) in
        let x = int_of_float sx and y = int_of_float sy in
        {
          Workloads.Images.p00 = Workloads.Images.get img ~x ~y;
          p01 = Workloads.Images.get img ~x:(x + 1) ~y;
          p10 = Workloads.Images.get img ~x ~y:(y + 1);
          p11 = Workloads.Images.get img ~x:(x + 1) ~y:(y + 1);
          xf = int_of_float ((sx -. float_of_int x) *. 32767.0);
          yf = int_of_float ((sy -. float_of_int y) *. 32767.0);
        })
  in
  let source = Cgsim.Io.of_array (Array.map Apps.Bilinear.quad_value requests) in
  let sink, result = Cgsim.Io.int_buffer () in
  let _ = Cgsim.Runtime.execute_exn (Apps.Bilinear.graph ()) ~sources:[ source ] ~sinks:[ sink ] in
  let pixels = result () in
  (* Render as ASCII art (Q8 -> 8 grey levels). *)
  let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  for y = 0 to out_h - 1 do
    for x = 0 to out_w - 1 do
      let v = pixels.((y * out_w) + x) in
      let level = min 7 (v * 8 / 65536) in
      print_char shades.(level);
      print_char shades.(level)
    done;
    print_newline ()
  done;
  Printf.printf "\nresampled %dx%d -> %dx%d (%d interpolation requests)\n"
    img.Workloads.Images.width img.Workloads.Images.height out_w out_h (Array.length requests)

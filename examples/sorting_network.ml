(* Sorting-network example: run the paper's bitonic-sorting graph on all
   three simulators and compare their behaviour on the same input.

     dune exec examples/sorting_network.exe *)

let reps = 64

let () =
  let h = Apps.Harness.bitonic in
  let graph = h.Apps.Harness.graph () in
  Printf.printf "== bitonic 16-wide sorting network ==\n";
  Printf.printf "%s\n\n" (Cgsim.Serialized.stats graph);

  (* cgsim: cooperative, single thread *)
  let sinks, contents = h.Apps.Harness.make_sinks () in
  let stats = Cgsim.Runtime.execute_exn graph ~sources:(h.Apps.Harness.sources ~reps) ~sinks in
  (match h.Apps.Harness.check ~reps (contents ()) with
   | Ok () -> Printf.printf "cgsim:  %d blocks sorted correctly (%d fiber slices)\n" reps
                stats.Cgsim.Sched.slices
   | Error e -> failwith e);

  (* x86sim: one OS thread per kernel *)
  let sinks, contents = h.Apps.Harness.make_sinks () in
  let x86 = X86sim.Sim.run_exn graph ~sources:(h.Apps.Harness.sources ~reps) ~sinks in
  (match h.Apps.Harness.check ~reps (contents ()) with
   | Ok () -> Printf.printf "x86sim: identical outputs on %d threads\n" x86.X86sim.Sim.threads
   | Error e -> failwith e);

  (* aiesim: cycle-approximate, hand-written vs extracted deploys *)
  let timed label deploy =
    let sinks, _ = h.Apps.Harness.make_sinks () in
    let report = Aiesim.Sim.run deploy ~sources:(h.Apps.Harness.sources ~reps) ~sinks in
    Printf.printf "aiesim (%s): %.1f ns per 64-byte block\n" label report.Aiesim.Sim.ns_per_block;
    report
  in
  let base = timed "hand-written" (Aiesim.Deploy.baseline graph) in
  let extr = timed "extracted   " (Aiesim.Deploy.extracted graph) in
  Printf.printf "relative throughput after extraction: %.1f %%\n"
    (Aiesim.Sim.relative_throughput_percent ~baseline:base ~extracted:extr);

  (* Show one sorted block. *)
  let input = Apps.Bitonic.input_floats ~reps:1 in
  let sorted = Apps.Bitonic.sort_vector input in
  Printf.printf "\nexample block:\n  in:  %s\n  out: %s\n"
    (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%+.2f") input)))
    (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%+.2f") sorted)))

(* Quickstart: define two kernels, build a compute graph, and simulate it
   with cgsim — the OCaml rendition of the paper's Figures 3 and 4.

     dune exec examples/quickstart.exe *)

open Cgsim

(* A compute kernel (cf. COMPUTE_KERNEL, Figure 3): reads pairs of values
   from two input streams, writes their sum to the output stream.  The
   body runs as a cooperative fiber; every port operation is a suspension
   point (the co_await analogue). *)
let adder_kernel =
  Kernel.define ~realm:Kernel.Aie ~name:"quickstart_adder"
    [
      Kernel.in_port "in1" Dtype.F32;
      Kernel.in_port "in2" Dtype.F32;
      Kernel.out_port "out" Dtype.F32;
    ]
    (fun b ->
      let in1 = Kernel.rd b 0 and in2 = Kernel.rd b 1 and out = Kernel.wr b 0 in
      while true do
        let v = Port.get_f32 in1 +. Port.get_f32 in2 in
        Port.put_f32 out v
      done)

(* Squares a stream. *)
let square_kernel =
  Kernel.define ~realm:Kernel.Aie ~name:"quickstart_square"
    [ Kernel.in_port "in" Dtype.F32; Kernel.out_port "out" Dtype.F32 ]
    (fun b ->
      let input = Kernel.rd b 0 and out = Kernel.wr b 0 in
      while true do
        let v = Port.get_f32 input in
        Port.put_f32 out (v *. v)
      done)

let () =
  Registry.register adder_kernel;
  Registry.register square_kernel

(* Graph construction (cf. make_compute_graph_v, Figure 4): the function
   receives connectors for the graph's inputs, wires kernels together
   through internal connectors, and returns the output connectors.
   Construction runs strictly before execution and freezes into the
   flattened serialized form. *)
let graph =
  Builder.make ~name:"quickstart"
    ~inputs:[ "a", Dtype.F32; "b", Dtype.F32 ]
    (fun g conns ->
      match conns with
      | [ a; b ] ->
        let sum = Builder.net g Dtype.F32 in
        let squared = Builder.net g Dtype.F32 in
        ignore (Builder.add_kernel g adder_kernel [ a; b; sum ]);
        ignore (Builder.add_kernel g square_kernel [ sum; squared ]);
        Builder.attach_attributes g squared [ Attr.s "plio_name" "result"; Attr.i "plio_width" 64 ];
        [ squared ]
      | _ -> assert false)

let () =
  Format.printf "Serialized graph:@.%a@.@." Serialized.pp graph;
  (* Run: attach container-backed sources and sinks (Section 3.7) and let
     the scheduler drive all fibers until no one can continue. *)
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 10.0; 20.0; 30.0; 40.0 |] in
  let sink, result = Io.f32_buffer () in
  let stats =
    Runtime.execute_exn graph ~sources:[ Io.of_f32_array xs; Io.of_f32_array ys ] ~sinks:[ sink ]
  in
  Array.iteri
    (fun i v -> Printf.printf "(%g + %g)^2 = %g\n" xs.(i) ys.(i) v)
    (result ());
  Format.printf "@.scheduler: %a@." Sched.pp_stats stats

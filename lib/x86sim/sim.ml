exception X86sim_error of string

let fail fmt = Format.kasprintf (fun s -> raise (X86sim_error s)) fmt

type stats = {
  threads : int;
  failed : (string * exn) list;
  wall_ns : float;
}

type outcome =
  | Completed of stats
  | Deadline_exceeded of {
      graph : string;
      waiting : string list;
      wall_ns : float;
    }
  | Kernel_failed of {
      graph : string;
      thread : string;
      exn : exn;
      wall_ns : float;
    }

let outcome_label = function
  | Completed _ -> "completed"
  | Deadline_exceeded _ -> "deadline"
  | Kernel_failed _ -> "failed"

let deep_stream_depth = 4096

let run ?(config = Cgsim.Run_config.default) (g : Cgsim.Serialized.t) ~sources ~sinks =
  (match Cgsim.Serialized.validate_diags g with
   | [] -> ()
   | diags ->
     fail "invalid graph %s: %s" g.gname
       (String.concat "; " (List.map Cgsim.Diagnostic.render diags)));
  (* Same pre-flight static analysis as the cgsim runtime; the threaded
     backend shares the structural hazards (e.g. shared kernel state). *)
  Cgsim.Runtime.preflight ~lint:config.Cgsim.Run_config.lint g;
  let n_in = Array.length g.input_order and n_out = Array.length g.output_order in
  if List.length sources <> n_in then
    fail "graph %s has %d global inputs but %d sources were supplied" g.gname n_in
      (List.length sources);
  if List.length sinks <> n_out then
    fail "graph %s has %d global outputs but %d sinks were supplied" g.gname n_out
      (List.length sinks);
  let queues =
    Array.map
      (fun (n : Cgsim.Serialized.net) ->
        let elem_bytes = Cgsim.Dtype.size_bytes n.dtype in
        let capacity =
          match config.Cgsim.Run_config.queue_capacity with
          | Some c -> c
          | None ->
            (* The functional simulator buffers deeply in host memory
               (threads should block rarely); hardware-fidelity depths
               only matter to aiesim. *)
            max deep_stream_depth (Cgsim.Settings.resolved_depth ~elem_bytes n.settings)
        in
        Tqueue.create ~unboxed:config.Cgsim.Run_config.unboxed
          ~name:(Printf.sprintf "%s/net%d" g.gname n.net_id) ~dtype:n.dtype ~capacity ())
      g.nets
  in
  let failures = ref [] in
  let failures_lock = Mutex.create () in
  let record_failure name exn =
    Mutex.lock failures_lock;
    failures := (name, exn) :: !failures;
    Mutex.unlock failures_lock
  in
  let bodies = ref [] in
  (* Wire kernels. *)
  Array.iter
    (fun (inst : Cgsim.Serialized.kernel_inst) ->
      let kernel =
        match Cgsim.Registry.find inst.key with
        | Some k -> k
        | None -> fail "graph %s references unregistered kernel %s" g.gname inst.key
      in
      let readers = ref [] and writers = ref [] and producers = ref [] in
      Array.iteri
        (fun port_idx (spec : Cgsim.Kernel.port_spec) ->
          let q = queues.(inst.port_nets.(port_idx)) in
          match spec.Cgsim.Kernel.dir with
          | Cgsim.Kernel.In ->
            let c = Tqueue.add_consumer q in
            readers :=
              {
                Cgsim.Port.r_name = Printf.sprintf "%s.%s" inst.inst_name spec.Cgsim.Kernel.pname;
                r_dtype = spec.Cgsim.Kernel.dtype;
                r_get = (fun () -> Tqueue.get c);
                r_peek = (fun () -> Tqueue.peek c);
                r_available = (fun () -> Tqueue.available c);
                r_get_block = (fun n -> Tqueue.get_block c n);
                r_get_floats = (fun n -> Tqueue.get_floats c n);
                r_get_ints = (fun n -> Tqueue.get_ints c n);
              }
              :: !readers
          | Cgsim.Kernel.Out ->
            let p = Tqueue.add_producer q in
            producers := p :: !producers;
            writers :=
              {
                Cgsim.Port.w_name = Printf.sprintf "%s.%s" inst.inst_name spec.Cgsim.Kernel.pname;
                w_dtype = spec.Cgsim.Kernel.dtype;
                w_put = (fun v -> Tqueue.put p v);
                w_put_block = Tqueue.put_block p;
                w_put_floats = Tqueue.put_floats p;
                w_put_ints = Tqueue.put_ints p;
                w_space = (fun () -> Tqueue.space q);
              }
              :: !writers)
        inst.ports;
      let binding =
        {
          Cgsim.Kernel.readers = Array.of_list (List.rev !readers);
          writers = Array.of_list (List.rev !writers);
        }
      in
      let ps = !producers in
      let body () =
        Fun.protect
          ~finally:(fun () -> List.iter Tqueue.producer_done ps)
          (fun () ->
            try kernel.Cgsim.Kernel.body binding with
            | Cgsim.Sched.End_of_stream | Cgsim.Sched.Terminated -> ()
            | exn -> record_failure inst.inst_name exn)
      in
      bodies := (inst.inst_name, body) :: !bodies)
    g.kernels;
  (* Sources and sinks. *)
  List.iteri
    (fun i src ->
      let q = queues.(g.input_order.(i)) in
      let p = Tqueue.add_producer q in
      let pull_block = Cgsim.Io.source_pull_block src in
      let chunk = max 1 (min (Tqueue.capacity q) 1024) in
      let body () =
        Fun.protect
          ~finally:(fun () -> Tqueue.producer_done p)
          (fun () ->
            try
              let rec loop () =
                let vs = pull_block chunk in
                if Array.length vs > 0 then begin
                  Tqueue.put_block p vs;
                  loop ()
                end
              in
              loop ()
            with
            | Cgsim.Sched.Terminated -> ()
            | exn -> record_failure (Cgsim.Io.source_name src) exn)
      in
      bodies := (Cgsim.Io.source_name src, body) :: !bodies)
    sources;
  List.iteri
    (fun i snk ->
      let q = queues.(g.output_order.(i)) in
      let c = Tqueue.add_consumer q in
      let chunk = max 1 (min (Tqueue.capacity q) 1024) in
      let body () =
        try
          let rec loop () =
            Cgsim.Io.sink_push_block snk (Tqueue.get_some c ~max:chunk);
            loop ()
          in
          loop ()
        with
        | Cgsim.Sched.End_of_stream | Cgsim.Sched.Terminated -> ()
        | exn -> record_failure (Cgsim.Io.sink_name snk) exn
      in
      bodies := (Cgsim.Io.sink_name snk, body) :: !bodies)
    sinks;
  let bodies = List.rev !bodies in
  (* Completion flags, one per thread: the watchdog snapshots the names
     still running when the deadline fires — the threaded analogue of the
     cooperative scheduler's parked-fiber snapshot. *)
  let flags = List.map (fun (name, _) -> name, Atomic.make false) bodies in
  (* OCaml 5 minor collections stop every domain; a larger minor heap
     keeps the preemptive simulator's domains off each other's backs. *)
  let gc = Gc.get () in
  Gc.set { gc with Gc.minor_heap_size = max gc.Gc.minor_heap_size (8 * 1024 * 1024) };
  let t0 = Obs.Clock.now_ns () in
  let all_done = Atomic.make false in
  let deadline_hit = ref None in
  (* Wall-clock watchdog: no timed condition wait in the stdlib, so it
     ticks every 2 ms; on expiry it poisons every queue, which raises
     {!Cgsim.Sched.Terminated} in all blocked (and subsequently blocking)
     threads.  A thread that never touches a queue again is not
     interruptible — same caveat as cgsim's cooperative budget. *)
  let watchdog =
    match config.Cgsim.Run_config.deadline_ns with
    | None -> None
    | Some d ->
      Some
        (Domain.spawn (fun () ->
             let t_end = t0 +. d in
             let fired = ref false in
             while (not (Atomic.get all_done)) && not !fired do
               let remaining_ns = t_end -. Obs.Clock.now_ns () in
               if remaining_ns <= 0. then begin
                 fired := true;
                 let waiting =
                   List.filter_map
                     (fun (name, flag) -> if Atomic.get flag then None else Some name)
                     flags
                 in
                 deadline_hit := Some waiting;
                 if !Obs.Trace.on then begin
                   Obs.Trace.instant ~track:"x86sim" ~cat:"sim" "deadline-poison";
                   Obs.Trace.incr_metric "x86.deadline"
                 end;
                 Array.iter Tqueue.poison queues
               end
               else Unix.sleepf (Float.min (remaining_ns /. 1e9) 0.002)
             done))
  in
  let threads =
    List.map2
      (fun (name, body) (_, flag) ->
        Domain.spawn (fun () ->
            (* Label the domain so Tqueue's wait spans land on a named
               track; the thread span frames its whole lifetime. *)
            Obs.Trace.set_thread_label name;
            Fun.protect
              ~finally:(fun () -> Atomic.set flag true)
              (fun () -> Obs.Trace.with_span ~track:name ~cat:"thread" "thread" body)))
      bodies flags
  in
  List.iter Domain.join threads;
  Atomic.set all_done true;
  (match watchdog with Some w -> Domain.join w | None -> ());
  let wall_ns = Obs.Clock.now_ns () -. t0 in
  Gc.set gc;
  let failed = List.rev !failures in
  match failed with
  | (name, exn) :: _ -> Kernel_failed { graph = g.gname; thread = name; exn; wall_ns }
  | [] ->
    (match !deadline_hit with
     | Some waiting -> Deadline_exceeded { graph = g.gname; waiting; wall_ns }
     | None -> Completed { threads = List.length threads; failed; wall_ns })

let stats_exn = function
  | Completed stats -> stats
  | Kernel_failed { graph; thread; exn; _ } ->
    fail "graph %s: kernel thread %s failed: %s" graph thread (Printexc.to_string exn)
  | Deadline_exceeded { graph; waiting; wall_ns } ->
    fail "graph %s: wall-clock deadline exceeded after %.1f ms; still running: %s" graph
      (wall_ns /. 1e6)
      (match waiting with [] -> "<none>" | ws -> String.concat ", " ws)

let run_exn ?config g ~sources ~sinks = stats_exn (run ?config g ~sources ~sinks)

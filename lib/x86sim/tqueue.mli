(** Thread-safe bounded broadcast queues.

    The preemptive counterpart of {!Cgsim.Bqueue}, used by the x86sim
    analogue, which runs every kernel on its own OS thread like AMD's
    functional simulator (Section 5.2).  Synchronisation is a mutex and
    condition variable per queue — the overhead the paper's Table 2
    contrasts against cgsim's cooperative design.

    Semantics match {!Cgsim.Bqueue}: broadcast to every consumer,
    per-producer FIFO, close-on-last-producer, reads past a drained closed
    queue raise {!Cgsim.Sched.End_of_stream}. *)

type t

type consumer

type producer

(** [unboxed] (default [true]) backs scalar-dtype rings with flat
    [float array]/[int array] storage — the threaded mirror of
    {!Cgsim.Bqueue}'s bigarray data plane — so the unboxed block
    transfers below move native memory.  Aggregate dtypes always box.
    Semantics are identical either way; F32 rings round stored values as
    {!Cgsim.Value.round_f32}. *)
val create : ?unboxed:bool -> name:string -> dtype:Cgsim.Dtype.t -> capacity:int -> unit -> t

(** Whether the ring stores flat scalars (see [create]'s [unboxed]). *)
val is_unboxed : t -> bool

val add_consumer : t -> consumer

val add_producer : t -> producer

val put : producer -> Cgsim.Value.t -> unit
(** Blocks while full. *)

val get : consumer -> Cgsim.Value.t
(** Blocks while empty; raises {!Cgsim.Sched.End_of_stream} when closed
    and drained. *)

(** {1 Block transfers}

    Semantically equivalent to element loops, but each call takes the
    queue lock once for the whole block (condition waits release it while
    blocked), moves contiguous ring slices with at most two array blits
    per chunk, and wakes the other side once per stored/retired chunk. *)

val put_block : producer -> Cgsim.Value.t array -> unit
(** Store a whole block, chunking by available space; blocks larger than
    the capacity stream through.  The block is validated up front. *)

val get_block : consumer -> int -> Cgsim.Value.t array
(** Read exactly [n] elements.  Raises {!Cgsim.Sched.End_of_stream} if
    the queue closes mid-block (elements consumed so far stay consumed,
    like the element loop). *)

val get_some : consumer -> max:int -> Cgsim.Value.t array
(** Read between 1 and [max] immediately-available elements, blocking
    only while the queue is empty; raises {!Cgsim.Sched.End_of_stream}
    when closed and drained.  The sink-drain primitive. *)

(** {1 Unboxed block transfers}

    Flat-payload variants with the same locking, chunking and
    end-of-stream discipline; on flat storage both sides of the copy are
    native arrays.  Float transfers require a float-dtype net and
    integer transfers an integer-dtype net ([Invalid_argument]
    otherwise); integer payloads are range-checked and F32 nets round on
    store. *)

val put_floats : producer -> float array -> unit

val get_floats : consumer -> int -> float array

val get_floats_some : consumer -> max:int -> float array

val put_ints : producer -> int array -> unit

val get_ints : consumer -> int -> int array

val get_ints_some : consumer -> max:int -> int array

val peek : consumer -> Cgsim.Value.t option

val available : consumer -> int

val producer_done : producer -> unit

(** {1 Deadline teardown}

    [poison q] marks the queue and wakes every blocked thread; from then
    on any operation on [q] — including ones that would not have blocked
    — raises {!Cgsim.Sched.Terminated}.  {!Sim.run}'s watchdog poisons
    all queues when the wall-clock budget expires, so the per-kernel OS
    threads unwind at their next queue touch.  Idempotent, thread-safe. *)
val poison : t -> unit

val is_poisoned : t -> bool

val total_put : t -> int

val capacity : t -> int

val space : t -> int
(** Advisory free space (capacity minus in-flight elements), taken under
    the queue lock but stale the moment it returns; block writes re-check
    before storing.  Feeds {!Cgsim.Port.w_space}. *)

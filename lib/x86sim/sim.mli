(** Thread-per-kernel functional simulator (the x86sim analogue).

    Runs the same serialized graphs and the same kernel bodies as cgsim's
    runtime, but with the execution model of AMD's functional simulator:
    every kernel instance, data source and data sink runs on a dedicated
    OS thread and blocks preemptively in queue operations.  This is the
    comparison point of Table 2 — faster than cgsim only when several
    compute-heavy kernels genuinely run in parallel; slower when frequent
    small transfers make mutex/condvar synchronisation dominate.

    Execution knobs come from the shared {!Cgsim.Run_config.t}; the
    fields that make sense here are [queue_capacity], [lint] and
    [deadline_ns] (enforced by a watchdog that poisons every {!Tqueue}
    on expiry, raising [Terminated] in all blocked threads).  The
    cooperative-scheduler knobs — [hooks], [faults], [max_steps],
    [block_io], [spsc], retry/breaker — do not apply to the threaded
    backend and are ignored. *)

exception X86sim_error of string

type stats = {
  threads : int;
  failed : (string * exn) list;
  wall_ns : float;
}

type outcome =
  | Completed of stats
  | Deadline_exceeded of {
      graph : string;
      waiting : string list;
          (** Threads that had not finished when the deadline fired. *)
      wall_ns : float;
    }
  | Kernel_failed of {
      graph : string;
      thread : string;  (** Kernel/source/sink thread that raised. *)
      exn : exn;
      wall_ns : float;
    }

(** ["completed"], ["deadline"] or ["failed"] (metric/JSON key). *)
val outcome_label : outcome -> string

(** [run g ~sources ~sinks] executes the graph to completion, deadline
    expiry or first failure, joining every thread before returning.
    Wiring errors (invalid graph, wrong source/sink counts, unregistered
    kernels) raise {!X86sim_error} up front. *)
val run :
  ?config:Cgsim.Run_config.t ->
  Cgsim.Serialized.t ->
  sources:Cgsim.Io.source list ->
  sinks:Cgsim.Io.sink list ->
  outcome

(** [Completed stats] returns [stats]; other outcomes raise
    {!X86sim_error} with a message naming the graph. *)
val stats_exn : outcome -> stats

val run_exn :
  ?config:Cgsim.Run_config.t ->
  Cgsim.Serialized.t ->
  sources:Cgsim.Io.source list ->
  sinks:Cgsim.Io.sink list ->
  stats

(* Ring storage mirrors Cgsim.Bqueue's unboxed data plane in threaded
   form: scalar-dtype rings hold plain OCaml [float array]/[int array]
   (both flat, unboxed representations), so the unboxed block transfers
   below move native memory under the queue lock.  Aggregate dtypes keep
   boxed [Value.t] storage. *)
type storage =
  | Boxed of Cgsim.Value.t array
  | Floats of float array
  | Ints of int array

type t = {
  q_name : string;
  q_dtype : Cgsim.Dtype.t;
  check : Cgsim.Value.t -> bool;  (* compiled dtype validator *)
  round : float -> float;  (* storage rounding: round_f32 on F32 rings *)
  bounds : (int * int) option;  (* integer dtype range, for flat int puts *)
  cap : int;
  buf : storage;
  mutable head : int;
  mutable retired : int;
      (* cached min consumer cursor; valid whenever [consumers <> []] *)
  mutable consumers : consumer list;
  mutable producers_open : int;
  mutable closed : bool;
  mutable poisoned : bool;  (* deadline teardown: blocked ops raise Terminated *)
  mutable total : int;
  lock : Mutex.t;
  nonfull : Condition.t;
  nonempty : Condition.t;
  k_wput : string;  (* precomputed obs keys, cf. Cgsim.Bqueue *)
  k_wget : string;
}

and consumer = {
  c_queue : t;
  mutable cursor : int;
}

and producer = {
  p_queue : t;
  mutable open_ : bool;
}

let create ?(unboxed = true) ~name ~dtype ~capacity () =
  if capacity <= 0 then invalid_arg ("x86sim: queue capacity must be positive: " ^ name);
  let buf =
    if unboxed && Cgsim.Dtype.is_float dtype then Floats (Array.make capacity 0.)
    else if unboxed && Cgsim.Dtype.is_integer dtype then Ints (Array.make capacity 0)
    else Boxed (Array.make capacity (Cgsim.Value.Int 0))
  in
  {
    q_name = name;
    q_dtype = dtype;
    check = Cgsim.Value.compile_check dtype;
    round = (if dtype = Cgsim.Dtype.F32 then Cgsim.Value.round_f32 else Fun.id);
    bounds = Cgsim.Value.int_range dtype;
    cap = capacity;
    buf;
    head = 0;
    retired = 0;
    consumers = [];
    producers_open = 0;
    closed = false;
    poisoned = false;
    total = 0;
    lock = Mutex.create ();
    nonfull = Condition.create ();
    nonempty = Condition.create ();
    k_wput = "queue.wait_put:" ^ name;
    k_wget = "queue.wait_get:" ^ name;
  }

let is_unboxed q = match q.buf with Boxed _ -> false | Floats _ | Ints _ -> true

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add_consumer q =
  with_lock q (fun () ->
      let c = { c_queue = q; cursor = q.head } in
      if q.consumers = [] then q.retired <- q.head;
      q.consumers <- c :: q.consumers;
      c)

let add_producer q =
  with_lock q (fun () ->
      if q.closed then invalid_arg ("x86sim: adding producer to closed queue " ^ q.q_name);
      q.producers_open <- q.producers_open + 1;
      { p_queue = q; open_ = true })

let fold_min_cursor q =
  match q.consumers with
  | [] -> q.head
  | c :: rest -> List.fold_left (fun acc c -> min acc c.cursor) c.cursor rest

let min_cursor q =
  match q.consumers with
  | [] -> q.head
  | _ :: _ -> q.retired

(* Call with the lock held after a consumer's cursor advanced from
   [old_cursor].  The retirement point only moves when the advancing
   consumer held it, so the O(consumers) refold is skipped otherwise —
   and producers are woken only when the minimum actually moved. *)
let note_retire q old_cursor =
  if old_cursor = q.retired && q.consumers <> [] then begin
    let m = fold_min_cursor q in
    if m > q.retired then begin
      q.retired <- m;
      Condition.broadcast q.nonfull
    end
  end

(* Deadline teardown.  Once poisoned, every queue operation — blocked or
   about to block — raises {!Cgsim.Sched.Terminated}: the watchdog in
   {!Sim.run} poisons all queues when the wall-clock budget expires and
   the OS threads unwind at their next queue touch (the preemptive
   analogue of cgsim's park/wake stop token). *)
let check_poison q = if q.poisoned then raise Cgsim.Sched.Terminated

let poison q =
  with_lock q (fun () ->
      if not q.poisoned then begin
        q.poisoned <- true;
        Condition.broadcast q.nonempty;
        Condition.broadcast q.nonfull
      end)

let is_poisoned q = with_lock q (fun () -> q.poisoned)

(* Measured condition wait: attributes blocked time both to the queue
   endpoint and to the calling OS thread (the per-thread lock-wait
   breakdown Table 2's x86sim/cgsim comparison is really about).  The
   span is emitted only when the caller actually had to wait, so an
   uncontended run traces nothing here. *)
let timed_wait ~key cond q predicate =
  (* Poison ends any wait: the loop predicate drops out and the trailing
     check raises, whether or not the caller ever blocked. *)
  let predicate () = predicate () && not q.poisoned in
  if predicate () then begin
    if !Obs.Trace.on then begin
      let track = Obs.Trace.thread_label () in
      let t0 = Obs.Trace.now_ns () in
      while predicate () do
        Condition.wait cond q.lock
      done;
      let dt = Obs.Trace.now_ns () -. t0 in
      Obs.Trace.span ~track ~cat:"queue" ~name:key ~ts_ns:t0 ~dur_ns:dt ();
      Obs.Trace.observe_ns key dt;
      Obs.Trace.observe_ns ("x86.wait:" ^ track) dt
    end
    else
      while predicate () do
        Condition.wait cond q.lock
      done
  end;
  check_poison q

(* Per-storage slot accessors; [write_slot] assumes the value already
   passed the dtype check, so the scalar conversions cannot fail. *)
let write_slot q idx v =
  match q.buf with
  | Boxed a -> a.(idx) <- v
  | Floats a -> a.(idx) <- q.round (Cgsim.Value.to_float v)
  | Ints a -> a.(idx) <- Cgsim.Value.to_int v

let read_slot q idx =
  match q.buf with
  | Boxed a -> a.(idx)
  | Floats a -> Cgsim.Value.Float a.(idx)
  | Ints a -> Cgsim.Value.Int a.(idx)

let put p v =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("x86sim: put on finished producer of " ^ q.q_name);
  if not (q.check v) then Cgsim.Value.check ~net:q.q_name q.q_dtype v;
  with_lock q (fun () ->
      timed_wait ~key:q.k_wput q.nonfull q (fun () ->
          q.head - min_cursor q >= q.cap && not q.closed);
      if q.closed then invalid_arg ("x86sim: put on closed queue " ^ q.q_name);
      write_slot q (q.head mod q.cap) v;
      q.head <- q.head + 1;
      q.total <- q.total + 1;
      Condition.broadcast q.nonempty)

let get c =
  let q = c.c_queue in
  with_lock q (fun () ->
      timed_wait ~key:q.k_wget q.nonempty q (fun () -> c.cursor >= q.head && not q.closed);
      if c.cursor < q.head then begin
        let v = read_slot q (c.cursor mod q.cap) in
        let old = c.cursor in
        c.cursor <- old + 1;
        note_retire q old;
        v
      end
      else raise Cgsim.Sched.End_of_stream)

(* Ring-slice copies: at most two contiguous segments around the seam.
   One family per (payload, storage) pairing; mismatched-representation
   pairs convert per element, matched pairs blit. *)
let seam q pos len k =
  let first = min len (q.cap - pos) in
  k pos 0 first;
  if len > first then k 0 first (len - first)

let blit_in_values q src off len =
  let pos = q.head mod q.cap in
  match q.buf with
  | Boxed a -> seam q pos len (fun rp so l -> Array.blit src (off + so) a rp l)
  | Floats a ->
    seam q pos len (fun rp so l ->
        for i = 0 to l - 1 do
          a.(rp + i) <- q.round (Cgsim.Value.to_float src.(off + so + i))
        done)
  | Ints a ->
    seam q pos len (fun rp so l ->
        for i = 0 to l - 1 do
          a.(rp + i) <- Cgsim.Value.to_int src.(off + so + i)
        done)

let blit_out_values c dst off len =
  let q = c.c_queue in
  let pos = c.cursor mod q.cap in
  match q.buf with
  | Boxed a -> seam q pos len (fun rp so l -> Array.blit a rp dst (off + so) l)
  | Floats a ->
    seam q pos len (fun rp so l ->
        for i = 0 to l - 1 do
          dst.(off + so + i) <- Cgsim.Value.Float a.(rp + i)
        done)
  | Ints a ->
    seam q pos len (fun rp so l ->
        for i = 0 to l - 1 do
          dst.(off + so + i) <- Cgsim.Value.Int a.(rp + i)
        done)

let require_float q =
  if not (Cgsim.Dtype.is_float q.q_dtype) then
    invalid_arg
      (Printf.sprintf "x86sim: float block transfer on %s dtype net %s"
         (Cgsim.Dtype.to_string q.q_dtype) q.q_name)

let require_int q =
  if not (Cgsim.Dtype.is_integer q.q_dtype) then
    invalid_arg
      (Printf.sprintf "x86sim: integer block transfer on %s dtype net %s"
         (Cgsim.Dtype.to_string q.q_dtype) q.q_name)

let blit_in_floats q (src : float array) off len =
  let pos = q.head mod q.cap in
  match q.buf with
  | Floats a ->
    seam q pos len (fun rp so l ->
        if q.q_dtype = Cgsim.Dtype.F32 then
          for i = 0 to l - 1 do
            a.(rp + i) <- q.round src.(off + so + i)
          done
        else Array.blit src (off + so) a rp l)
  | Boxed a ->
    seam q pos len (fun rp so l ->
        for i = 0 to l - 1 do
          a.(rp + i) <- Cgsim.Value.Float (q.round src.(off + so + i))
        done)
  | Ints _ -> assert false (* require_float ran first *)

let blit_out_floats c (dst : float array) off len =
  let q = c.c_queue in
  let pos = c.cursor mod q.cap in
  match q.buf with
  | Floats a -> seam q pos len (fun rp so l -> Array.blit a rp dst (off + so) l)
  | Boxed a ->
    seam q pos len (fun rp so l ->
        for i = 0 to l - 1 do
          dst.(off + so + i) <- Cgsim.Value.to_float a.(rp + i)
        done)
  | Ints _ -> assert false

let blit_in_ints q (src : int array) off len =
  let pos = q.head mod q.cap in
  match q.buf with
  | Ints a -> seam q pos len (fun rp so l -> Array.blit src (off + so) a rp l)
  | Boxed a ->
    seam q pos len (fun rp so l ->
        for i = 0 to l - 1 do
          a.(rp + i) <- Cgsim.Value.Int src.(off + so + i)
        done)
  | Floats _ -> assert false

let blit_out_ints c (dst : int array) off len =
  let q = c.c_queue in
  let pos = c.cursor mod q.cap in
  match q.buf with
  | Ints a -> seam q pos len (fun rp so l -> Array.blit a rp dst (off + so) l)
  | Boxed a ->
    seam q pos len (fun rp so l ->
        for i = 0 to l - 1 do
          dst.(off + so + i) <- Cgsim.Value.to_int a.(rp + i)
        done)
  | Floats _ -> assert false

let check_int_block q is =
  match q.bounds with
  | None -> ()
  | Some (lo, hi) ->
    Array.iter
      (fun i ->
        if i < lo || i > hi then
          invalid_arg
            (Printf.sprintf "x86sim: %d out of %s range on net %s" i
               (Cgsim.Dtype.to_string q.q_dtype) q.q_name))
      is

(* Shared chunk loops: one lock acquisition for the whole block
   (condition waits release it while blocked), the other side woken once
   per stored/retired chunk.  [blit off chunk] copies [chunk] elements of
   the caller's payload starting at [off] into/out of the ring. *)
let put_loop p len blit =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("x86sim: put on finished producer of " ^ q.q_name);
  if len > 0 then
    with_lock q (fun () ->
        let off = ref 0 in
        while !off < len do
          timed_wait ~key:q.k_wput q.nonfull q (fun () ->
              q.head - min_cursor q >= q.cap && not q.closed);
          if q.closed then invalid_arg ("x86sim: put on closed queue " ^ q.q_name);
          let space = q.cap - (q.head - min_cursor q) in
          let chunk = min space (len - !off) in
          blit !off chunk;
          q.head <- q.head + chunk;
          q.total <- q.total + chunk;
          off := !off + chunk;
          Condition.broadcast q.nonempty
        done)

let get_loop c n blit =
  let q = c.c_queue in
  if n > 0 then
    with_lock q (fun () ->
        let filled = ref 0 in
        while !filled < n do
          timed_wait ~key:q.k_wget q.nonempty q (fun () -> c.cursor >= q.head && not q.closed);
          if c.cursor < q.head then begin
            let take = min (q.head - c.cursor) (n - !filled) in
            blit !filled take;
            let old = c.cursor in
            c.cursor <- old + take;
            filled := !filled + take;
            note_retire q old
          end
          else
            (* Closed and drained mid-block: consumed elements stay
               consumed, exactly like the element loop. *)
            raise Cgsim.Sched.End_of_stream
        done)

let some_loop c ~max blit =
  if max <= 0 then invalid_arg "x86sim: get_some needs a positive max";
  let q = c.c_queue in
  with_lock q (fun () ->
      timed_wait ~key:q.k_wget q.nonempty q (fun () -> c.cursor >= q.head && not q.closed);
      if c.cursor < q.head then begin
        let take = min (q.head - c.cursor) max in
        blit take;
        let old = c.cursor in
        c.cursor <- old + take;
        note_retire q old;
        take
      end
      else raise Cgsim.Sched.End_of_stream)

let put_block p vs =
  let q = p.p_queue in
  (* Validate the whole block before taking the lock. *)
  Array.iter (fun v -> if not (q.check v) then Cgsim.Value.check ~net:q.q_name q.q_dtype v) vs;
  put_loop p (Array.length vs) (fun off chunk -> blit_in_values q vs off chunk)

let get_block c n =
  if n < 0 then invalid_arg "x86sim: get_block with negative count";
  let out = Array.make n (Cgsim.Value.Int 0) in
  get_loop c n (fun off take -> blit_out_values c out off take);
  out

let get_some c ~max =
  let out = ref [||] in
  let _ =
    some_loop c ~max (fun take ->
        let a = Array.make take (Cgsim.Value.Int 0) in
        blit_out_values c a 0 take;
        out := a)
  in
  !out

(* {1 Unboxed block transfers} — flat payloads, same locking discipline. *)

let put_floats p fs =
  let q = p.p_queue in
  require_float q;
  put_loop p (Array.length fs) (fun off chunk -> blit_in_floats q fs off chunk)

let get_floats c n =
  if n < 0 then invalid_arg "x86sim: get_floats with negative count";
  require_float c.c_queue;
  let out = Array.make n 0. in
  get_loop c n (fun off take -> blit_out_floats c out off take);
  out

let get_floats_some c ~max =
  require_float c.c_queue;
  let out = ref [||] in
  let _ =
    some_loop c ~max (fun take ->
        let a = Array.make take 0. in
        blit_out_floats c a 0 take;
        out := a)
  in
  !out

let put_ints p is =
  let q = p.p_queue in
  require_int q;
  check_int_block q is;
  put_loop p (Array.length is) (fun off chunk -> blit_in_ints q is off chunk)

let get_ints c n =
  if n < 0 then invalid_arg "x86sim: get_ints with negative count";
  require_int c.c_queue;
  let out = Array.make n 0 in
  get_loop c n (fun off take -> blit_out_ints c out off take);
  out

let get_ints_some c ~max =
  require_int c.c_queue;
  let out = ref [||] in
  let _ =
    some_loop c ~max (fun take ->
        let a = Array.make take 0 in
        blit_out_ints c a 0 take;
        out := a)
  in
  !out

let peek c =
  let q = c.c_queue in
  with_lock q (fun () ->
      check_poison q;
      if c.cursor < q.head then Some (read_slot q (c.cursor mod q.cap))
      else if q.closed then raise Cgsim.Sched.End_of_stream
      else None)

let available c =
  let q = c.c_queue in
  with_lock q (fun () -> q.head - c.cursor)

let producer_done p =
  if p.open_ then begin
    p.open_ <- false;
    let q = p.p_queue in
    with_lock q (fun () ->
        q.producers_open <- q.producers_open - 1;
        if q.producers_open <= 0 then begin
          q.closed <- true;
          Condition.broadcast q.nonempty;
          Condition.broadcast q.nonfull
        end)
  end

let total_put q = with_lock q (fun () -> q.total)

let capacity q = q.cap

(* Advisory free space: stale by the time the caller acts on it, which
   is fine — block writes re-check under the lock. *)
let space q = with_lock q (fun () -> q.cap - (q.head - min_cursor q))

type t = {
  q_name : string;
  q_dtype : Cgsim.Dtype.t;
  cap : int;
  buf : Cgsim.Value.t array;
  mutable head : int;
  mutable consumers : consumer list;
  mutable producers_open : int;
  mutable closed : bool;
  mutable total : int;
  lock : Mutex.t;
  nonfull : Condition.t;
  nonempty : Condition.t;
  k_wput : string;  (* precomputed obs keys, cf. Cgsim.Bqueue *)
  k_wget : string;
}

and consumer = {
  c_queue : t;
  mutable cursor : int;
}

and producer = {
  p_queue : t;
  mutable open_ : bool;
}

let create ~name ~dtype ~capacity () =
  if capacity <= 0 then invalid_arg ("x86sim: queue capacity must be positive: " ^ name);
  {
    q_name = name;
    q_dtype = dtype;
    cap = capacity;
    buf = Array.make capacity (Cgsim.Value.Int 0);
    head = 0;
    consumers = [];
    producers_open = 0;
    closed = false;
    total = 0;
    lock = Mutex.create ();
    nonfull = Condition.create ();
    nonempty = Condition.create ();
    k_wput = "queue.wait_put:" ^ name;
    k_wget = "queue.wait_get:" ^ name;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add_consumer q =
  with_lock q (fun () ->
      let c = { c_queue = q; cursor = q.head } in
      q.consumers <- c :: q.consumers;
      c)

let add_producer q =
  with_lock q (fun () ->
      if q.closed then invalid_arg ("x86sim: adding producer to closed queue " ^ q.q_name);
      q.producers_open <- q.producers_open + 1;
      { p_queue = q; open_ = true })

let min_cursor q =
  match q.consumers with
  | [] -> q.head
  | c :: rest -> List.fold_left (fun acc c -> min acc c.cursor) c.cursor rest

(* Measured condition wait: attributes blocked time both to the queue
   endpoint and to the calling OS thread (the per-thread lock-wait
   breakdown Table 2's x86sim/cgsim comparison is really about).  The
   span is emitted only when the caller actually had to wait, so an
   uncontended run traces nothing here. *)
let timed_wait ~key cond q predicate =
  if predicate () then begin
    if !Obs.Trace.on then begin
      let track = Obs.Trace.thread_label () in
      let t0 = Obs.Trace.now_ns () in
      while predicate () do
        Condition.wait cond q.lock
      done;
      let dt = Obs.Trace.now_ns () -. t0 in
      Obs.Trace.span ~track ~cat:"queue" ~name:key ~ts_ns:t0 ~dur_ns:dt ();
      Obs.Trace.observe_ns key dt;
      Obs.Trace.observe_ns ("x86.wait:" ^ track) dt
    end
    else
      while predicate () do
        Condition.wait cond q.lock
      done
  end

let put p v =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("x86sim: put on finished producer of " ^ q.q_name);
  Cgsim.Value.check ~net:q.q_name q.q_dtype v;
  with_lock q (fun () ->
      timed_wait ~key:q.k_wput q.nonfull q (fun () ->
          q.head - min_cursor q >= q.cap && not q.closed);
      if q.closed then invalid_arg ("x86sim: put on closed queue " ^ q.q_name);
      q.buf.(q.head mod q.cap) <- v;
      q.head <- q.head + 1;
      q.total <- q.total + 1;
      Condition.broadcast q.nonempty)

let get c =
  let q = c.c_queue in
  with_lock q (fun () ->
      timed_wait ~key:q.k_wget q.nonempty q (fun () -> c.cursor >= q.head && not q.closed);
      if c.cursor < q.head then begin
        let v = q.buf.(c.cursor mod q.cap) in
        c.cursor <- c.cursor + 1;
        Condition.broadcast q.nonfull;
        v
      end
      else raise Cgsim.Sched.End_of_stream)

let peek c =
  let q = c.c_queue in
  with_lock q (fun () ->
      if c.cursor < q.head then Some q.buf.(c.cursor mod q.cap)
      else if q.closed then raise Cgsim.Sched.End_of_stream
      else None)

let available c =
  let q = c.c_queue in
  with_lock q (fun () -> q.head - c.cursor)

let producer_done p =
  if p.open_ then begin
    p.open_ <- false;
    let q = p.p_queue in
    with_lock q (fun () ->
        q.producers_open <- q.producers_open - 1;
        if q.producers_open <= 0 then begin
          q.closed <- true;
          Condition.broadcast q.nonempty;
          Condition.broadcast q.nonfull
        end)
  end

let total_put q = with_lock q (fun () -> q.total)

type t = {
  q_name : string;
  q_dtype : Cgsim.Dtype.t;
  check : Cgsim.Value.t -> bool;  (* compiled dtype validator *)
  cap : int;
  buf : Cgsim.Value.t array;
  mutable head : int;
  mutable retired : int;
      (* cached min consumer cursor; valid whenever [consumers <> []] *)
  mutable consumers : consumer list;
  mutable producers_open : int;
  mutable closed : bool;
  mutable poisoned : bool;  (* deadline teardown: blocked ops raise Terminated *)
  mutable total : int;
  lock : Mutex.t;
  nonfull : Condition.t;
  nonempty : Condition.t;
  k_wput : string;  (* precomputed obs keys, cf. Cgsim.Bqueue *)
  k_wget : string;
}

and consumer = {
  c_queue : t;
  mutable cursor : int;
}

and producer = {
  p_queue : t;
  mutable open_ : bool;
}

let create ~name ~dtype ~capacity () =
  if capacity <= 0 then invalid_arg ("x86sim: queue capacity must be positive: " ^ name);
  {
    q_name = name;
    q_dtype = dtype;
    check = Cgsim.Value.compile_check dtype;
    cap = capacity;
    buf = Array.make capacity (Cgsim.Value.Int 0);
    head = 0;
    retired = 0;
    consumers = [];
    producers_open = 0;
    closed = false;
    poisoned = false;
    total = 0;
    lock = Mutex.create ();
    nonfull = Condition.create ();
    nonempty = Condition.create ();
    k_wput = "queue.wait_put:" ^ name;
    k_wget = "queue.wait_get:" ^ name;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add_consumer q =
  with_lock q (fun () ->
      let c = { c_queue = q; cursor = q.head } in
      if q.consumers = [] then q.retired <- q.head;
      q.consumers <- c :: q.consumers;
      c)

let add_producer q =
  with_lock q (fun () ->
      if q.closed then invalid_arg ("x86sim: adding producer to closed queue " ^ q.q_name);
      q.producers_open <- q.producers_open + 1;
      { p_queue = q; open_ = true })

let fold_min_cursor q =
  match q.consumers with
  | [] -> q.head
  | c :: rest -> List.fold_left (fun acc c -> min acc c.cursor) c.cursor rest

let min_cursor q =
  match q.consumers with
  | [] -> q.head
  | _ :: _ -> q.retired

(* Call with the lock held after a consumer's cursor advanced from
   [old_cursor].  The retirement point only moves when the advancing
   consumer held it, so the O(consumers) refold is skipped otherwise —
   and producers are woken only when the minimum actually moved. *)
let note_retire q old_cursor =
  if old_cursor = q.retired && q.consumers <> [] then begin
    let m = fold_min_cursor q in
    if m > q.retired then begin
      q.retired <- m;
      Condition.broadcast q.nonfull
    end
  end

(* Deadline teardown.  Once poisoned, every queue operation — blocked or
   about to block — raises {!Cgsim.Sched.Terminated}: the watchdog in
   {!Sim.run} poisons all queues when the wall-clock budget expires and
   the OS threads unwind at their next queue touch (the preemptive
   analogue of cgsim's park/wake stop token). *)
let check_poison q = if q.poisoned then raise Cgsim.Sched.Terminated

let poison q =
  with_lock q (fun () ->
      if not q.poisoned then begin
        q.poisoned <- true;
        Condition.broadcast q.nonempty;
        Condition.broadcast q.nonfull
      end)

let is_poisoned q = with_lock q (fun () -> q.poisoned)

(* Measured condition wait: attributes blocked time both to the queue
   endpoint and to the calling OS thread (the per-thread lock-wait
   breakdown Table 2's x86sim/cgsim comparison is really about).  The
   span is emitted only when the caller actually had to wait, so an
   uncontended run traces nothing here. *)
let timed_wait ~key cond q predicate =
  (* Poison ends any wait: the loop predicate drops out and the trailing
     check raises, whether or not the caller ever blocked. *)
  let predicate () = predicate () && not q.poisoned in
  if predicate () then begin
    if !Obs.Trace.on then begin
      let track = Obs.Trace.thread_label () in
      let t0 = Obs.Trace.now_ns () in
      while predicate () do
        Condition.wait cond q.lock
      done;
      let dt = Obs.Trace.now_ns () -. t0 in
      Obs.Trace.span ~track ~cat:"queue" ~name:key ~ts_ns:t0 ~dur_ns:dt ();
      Obs.Trace.observe_ns key dt;
      Obs.Trace.observe_ns ("x86.wait:" ^ track) dt
    end
    else
      while predicate () do
        Condition.wait cond q.lock
      done
  end;
  check_poison q

let put p v =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("x86sim: put on finished producer of " ^ q.q_name);
  if not (q.check v) then Cgsim.Value.check ~net:q.q_name q.q_dtype v;
  with_lock q (fun () ->
      timed_wait ~key:q.k_wput q.nonfull q (fun () ->
          q.head - min_cursor q >= q.cap && not q.closed);
      if q.closed then invalid_arg ("x86sim: put on closed queue " ^ q.q_name);
      q.buf.(q.head mod q.cap) <- v;
      q.head <- q.head + 1;
      q.total <- q.total + 1;
      Condition.broadcast q.nonempty)

let get c =
  let q = c.c_queue in
  with_lock q (fun () ->
      timed_wait ~key:q.k_wget q.nonempty q (fun () -> c.cursor >= q.head && not q.closed);
      if c.cursor < q.head then begin
        let v = q.buf.(c.cursor mod q.cap) in
        let old = c.cursor in
        c.cursor <- old + 1;
        note_retire q old;
        v
      end
      else raise Cgsim.Sched.End_of_stream)

(* Ring-slice copies: at most two [Array.blit]s around the seam. *)
let blit_in q src off len =
  let pos = q.head mod q.cap in
  let first = min len (q.cap - pos) in
  Array.blit src off q.buf pos first;
  if len > first then Array.blit src (off + first) q.buf 0 (len - first)

let blit_out c dst off len =
  let q = c.c_queue in
  let pos = c.cursor mod q.cap in
  let first = min len (q.cap - pos) in
  Array.blit q.buf pos dst off first;
  if len > first then Array.blit q.buf 0 dst (off + first) (len - first)

let put_block p vs =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("x86sim: put on finished producer of " ^ q.q_name);
  (* Validate the whole block before taking the lock. *)
  Array.iter (fun v -> if not (q.check v) then Cgsim.Value.check ~net:q.q_name q.q_dtype v) vs;
  let len = Array.length vs in
  if len > 0 then
    (* One lock acquisition for the whole block; [Condition.wait] releases
       it while full, and consumers are woken once per stored chunk. *)
    with_lock q (fun () ->
        let off = ref 0 in
        while !off < len do
          timed_wait ~key:q.k_wput q.nonfull q (fun () ->
              q.head - min_cursor q >= q.cap && not q.closed);
          if q.closed then invalid_arg ("x86sim: put on closed queue " ^ q.q_name);
          let space = q.cap - (q.head - min_cursor q) in
          let chunk = min space (len - !off) in
          blit_in q vs !off chunk;
          q.head <- q.head + chunk;
          q.total <- q.total + chunk;
          off := !off + chunk;
          Condition.broadcast q.nonempty
        done)

let get_block c n =
  if n < 0 then invalid_arg "x86sim: get_block with negative count";
  let q = c.c_queue in
  if n = 0 then [||]
  else begin
    let out = Array.make n (Cgsim.Value.Int 0) in
    with_lock q (fun () ->
        let filled = ref 0 in
        while !filled < n do
          timed_wait ~key:q.k_wget q.nonempty q (fun () -> c.cursor >= q.head && not q.closed);
          if c.cursor < q.head then begin
            let take = min (q.head - c.cursor) (n - !filled) in
            blit_out c out !filled take;
            let old = c.cursor in
            c.cursor <- old + take;
            filled := !filled + take;
            note_retire q old
          end
          else
            (* Closed and drained mid-block: consumed elements stay
               consumed, exactly like the element loop. *)
            raise Cgsim.Sched.End_of_stream
        done);
    out
  end

let get_some c ~max =
  if max <= 0 then invalid_arg "x86sim: get_some needs a positive max";
  let q = c.c_queue in
  with_lock q (fun () ->
      timed_wait ~key:q.k_wget q.nonempty q (fun () -> c.cursor >= q.head && not q.closed);
      if c.cursor < q.head then begin
        let take = min (q.head - c.cursor) max in
        let out = Array.make take (Cgsim.Value.Int 0) in
        blit_out c out 0 take;
        let old = c.cursor in
        c.cursor <- old + take;
        note_retire q old;
        out
      end
      else raise Cgsim.Sched.End_of_stream)

let peek c =
  let q = c.c_queue in
  with_lock q (fun () ->
      check_poison q;
      if c.cursor < q.head then Some q.buf.(c.cursor mod q.cap)
      else if q.closed then raise Cgsim.Sched.End_of_stream
      else None)

let available c =
  let q = c.c_queue in
  with_lock q (fun () -> q.head - c.cursor)

let producer_done p =
  if p.open_ then begin
    p.open_ <- false;
    let q = p.p_queue in
    with_lock q (fun () ->
        q.producers_open <- q.producers_open - 1;
        if q.producers_open <= 0 then begin
          q.closed <- true;
          Condition.broadcast q.nonempty;
          Condition.broadcast q.nonfull
        end)
  end

let total_put q = with_lock q (fun () -> q.total)

let capacity q = q.cap

(* Advisory free space: stale by the time the caller acts on it, which
   is fine — block writes re-check under the lock. *)
let space q = with_lock q (fun () -> q.cap - (q.head - min_cursor q))

(** Graphviz visualization of compute graphs.

    Renders a serialized compute graph as a dot digraph: kernels as boxes
    colored by realm, global I/O as ellipses, edges labelled with dtype
    and transport.  Useful with [cgx inspect --dot].

    When [lint] findings are supplied, edges of nets named by a finding
    are colored by its worst severity: red for errors, orange for
    warnings (info-level findings do not change the rendering). *)

val of_graph : ?lint:Cgsim.Diagnostic.t list -> Cgsim.Serialized.t -> string

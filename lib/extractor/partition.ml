type port_class =
  | Intra_realm of Cgsim.Kernel.realm
  | Inter_realm
  | Global

let equal_port_class a b =
  match a, b with
  | Intra_realm x, Intra_realm y -> Cgsim.Kernel.equal_realm x y
  | Inter_realm, Inter_realm | Global, Global -> true
  | (Intra_realm _ | Inter_realm | Global), _ -> false

let pp_port_class ppf = function
  | Intra_realm r -> Format.fprintf ppf "intra(%s)" (Cgsim.Kernel.realm_to_string r)
  | Inter_realm -> Format.pp_print_string ppf "inter"
  | Global -> Format.pp_print_string ppf "global"

exception Partition_error of string

let endpoint_realm (g : Cgsim.Serialized.t) (ep : Cgsim.Serialized.endpoint) =
  g.kernels.(ep.kernel_idx).realm

let classify (g : Cgsim.Serialized.t) =
  Array.map
    (fun (n : Cgsim.Serialized.net) ->
      if n.global_input <> None || n.global_output <> None then Global
      else begin
        let realms =
          List.map (endpoint_realm g) (n.writers @ n.readers)
        in
        match realms with
        | [] -> Global (* dangling net: external by definition *)
        | r :: rest ->
          if List.for_all (Cgsim.Kernel.equal_realm r) rest then Intra_realm r else Inter_realm
      end)
    g.nets

let realms (g : Cgsim.Serialized.t) =
  Array.fold_left
    (fun acc (ki : Cgsim.Serialized.kernel_inst) ->
      if List.exists (Cgsim.Kernel.equal_realm ki.realm) acc then acc else acc @ [ ki.realm ])
    [] g.kernels

let subgraph (g : Cgsim.Serialized.t) realm =
  let keep_kernel (ki : Cgsim.Serialized.kernel_inst) = Cgsim.Kernel.equal_realm ki.realm realm in
  let kept_kernels =
    Array.of_list (List.filter keep_kernel (Array.to_list g.kernels))
  in
  if Array.length kept_kernels = 0 then
    raise
      (Partition_error
         (Printf.sprintf "graph %s has no kernels in realm %s" g.gname
            (Cgsim.Kernel.realm_to_string realm)));
  let kernel_remap = Hashtbl.create 8 in
  Array.iteri
    (fun new_idx (ki : Cgsim.Serialized.kernel_inst) ->
      (* original index: find by instance name (unique) *)
      let orig_idx = ref (-1) in
      Array.iteri
        (fun i (o : Cgsim.Serialized.kernel_inst) ->
          if String.equal o.inst_name ki.inst_name then orig_idx := i)
        g.kernels;
      Hashtbl.replace kernel_remap !orig_idx new_idx)
    kept_kernels;
  (* Nets touched by kept kernels. *)
  let touched = Array.make (Array.length g.nets) false in
  Array.iter
    (fun (ki : Cgsim.Serialized.kernel_inst) ->
      Array.iter (fun nid -> touched.(nid) <- true) ki.port_nets)
    kept_kernels;
  let net_remap = Hashtbl.create 16 in
  let kept_net_ids =
    List.filteri
      (fun _ _ -> true)
      (List.filter (fun nid -> touched.(nid)) (List.init (Array.length g.nets) Fun.id))
  in
  List.iteri (fun new_id orig_id -> Hashtbl.replace net_remap orig_id new_id) kept_net_ids;
  let classes = classify g in
  let remap_ep (ep : Cgsim.Serialized.endpoint) =
    match Hashtbl.find_opt kernel_remap ep.kernel_idx with
    | Some k -> Some { ep with Cgsim.Serialized.kernel_idx = k }
    | None -> None
  in
  let nets =
    Array.of_list
      (List.map
         (fun orig_id ->
           let n = g.nets.(orig_id) in
           let writers = List.filter_map remap_ep n.writers in
           let readers = List.filter_map remap_ep n.readers in
           let external_name suffix =
             Printf.sprintf "%s_net%d_%s" g.gname orig_id suffix
           in
           (* A net becomes a subgraph input when its data comes from
              outside the realm (global input or foreign writer), and a
              subgraph output when consumed outside. *)
           let foreign_writer =
             List.exists (fun ep -> remap_ep ep = None) n.writers || n.global_input <> None
           in
           let foreign_reader =
             List.exists (fun ep -> remap_ep ep = None) n.readers || n.global_output <> None
           in
           let global_input =
             if foreign_writer then
               Some (Option.value n.global_input ~default:(external_name "in"))
             else None
           in
           let global_output =
             if foreign_reader then
               Some (Option.value n.global_output ~default:(external_name "out"))
             else None
           in
           ignore classes;
           {
             n with
             Cgsim.Serialized.net_id = Hashtbl.find net_remap orig_id;
             writers;
             readers;
             global_input;
             global_output;
           })
         kept_net_ids)
  in
  let kernels =
    Array.map
      (fun (ki : Cgsim.Serialized.kernel_inst) ->
        { ki with Cgsim.Serialized.port_nets = Array.map (Hashtbl.find net_remap) ki.port_nets })
      kept_kernels
  in
  let input_order =
    Array.of_list
      (List.filter_map
         (fun (n : Cgsim.Serialized.net) ->
           if n.Cgsim.Serialized.global_input <> None then Some n.Cgsim.Serialized.net_id else None)
         (Array.to_list nets))
  in
  let output_order =
    Array.of_list
      (List.filter_map
         (fun (n : Cgsim.Serialized.net) ->
           if n.Cgsim.Serialized.global_output <> None then Some n.Cgsim.Serialized.net_id
           else None)
         (Array.to_list nets))
  in
  let sub =
    {
      Cgsim.Serialized.gname = Printf.sprintf "%s_%s" g.gname (Cgsim.Kernel.realm_to_string realm);
      kernels;
      nets;
      input_order;
      output_order;
    }
  in
  match Cgsim.Serialized.validate_diags sub with
  | [] -> sub
  | diags ->
    raise
      (Partition_error
         (Printf.sprintf "subgraph of %s for realm %s is invalid: %s" g.gname
            (Cgsim.Kernel.realm_to_string realm)
            (String.concat "; " (List.map Cgsim.Diagnostic.render diags))))

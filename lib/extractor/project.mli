(** Extraction orchestration: CGC source to deployable AIE project.

    Ties the pipeline of Figure 5 together: ingest (parse + sema +
    consteval), realm partitioning, kernel transformation, co-extraction
    and code generation, producing an in-memory project that can be
    written to disk and a deployment descriptor that runs on the
    cycle-approximate simulator with the extracted-adapter cost model. *)

exception Extract_error of string

type file = {
  rel_path : string;
  contents : string;
}

type t = {
  graph_name : string;
  source_file : string;
  serialized : Cgsim.Serialized.t;  (** full graph, pre-partitioning *)
  aie_subgraph : Cgsim.Serialized.t option;  (** the AIE realm's partition *)
  pl_subgraph : Cgsim.Serialized.t option;  (** the PL/HLS realm's partition *)
  host_kernels : string list;  (** noextract kernels left in the host app *)
  files : file list;
  port_classes : Partition.port_class array;
  lint : Cgsim.Diagnostic.t list;
      (** Static-analysis findings on the full graph.  Never contains an
          error-level finding — extraction refuses those graphs — and is
          embedded in the generated project [README.md]. *)
}

(** Graphs eligible for extraction in an analyzed program: those marked
    [[extract_compute_graph]]; with [all_graphs] every graph. *)
val extractable_graphs : ?all_graphs:bool -> Cgc.Sema.env -> Cgc.Ast.graph list

(** Extract one graph.  The graph is linted first ({!Analysis.Lint.run});
    error-level findings abort extraction with {!Extract_error} listing
    them, and surviving warnings are carried in [lint] and embedded in
    the generated [README.md].  Raises {!Extract_error} (or the
    underlying located front-end errors) on failure. *)
val extract : Cgc.Sema.env -> Cgc.Ast.graph -> t

(** Extract every eligible graph of a file (convenience). *)
val extract_file :
  ?include_dirs:string list -> ?all_graphs:bool -> string -> t list

val extract_string : ?all_graphs:bool -> ?file:string -> string -> t list

(** Write the project under [dir/<graph_name>/]. *)
val write : dir:string -> t -> string list
(** Returns the paths written. *)

(** Deployment of the extracted AIE partition on aiesim, with the
    generated adapter thunks' cost model ({!Aiesim.Deploy.Thunk}).
    Raises {!Extract_error} if the graph has no AIE partition. *)
val deploy : t -> Aiesim.Deploy.t

val pp_summary : Format.formatter -> t -> unit

let realm_color = function
  | Cgsim.Kernel.Aie -> "lightblue"
  | Cgsim.Kernel.Noextract -> "lightgrey"
  | Cgsim.Kernel.Pl -> "lightgoldenrod"

let transport_label (n : Cgsim.Serialized.net) =
  match Cgsim.Settings.resolved_transport n.settings with
  | Cgsim.Settings.Stream -> "stream"
  | Cgsim.Settings.Window w -> Printf.sprintf "window<%d>" w
  | Cgsim.Settings.Rtp -> "rtp"
  | Cgsim.Settings.Gmio -> "gmio"

(* Worst lint severity naming each net, for edge coloring. *)
let net_severities lint nets =
  let worst = Array.make nets None in
  List.iter
    (fun (d : Cgsim.Diagnostic.t) ->
      List.iter
        (fun id ->
          if id >= 0 && id < nets then
            worst.(id) <-
              (match worst.(id) with
               | None -> Some d.Cgsim.Diagnostic.severity
               | Some s ->
                 if Cgsim.Diagnostic.compare_severity d.Cgsim.Diagnostic.severity s > 0 then
                   Some d.Cgsim.Diagnostic.severity
                 else Some s))
        d.Cgsim.Diagnostic.net_ids)
    lint;
  worst

let severity_style = function
  | Some Cgsim.Diagnostic.Error -> " color=red penwidth=2.0"
  | Some Cgsim.Diagnostic.Warning -> " color=orange penwidth=1.5"
  | Some Cgsim.Diagnostic.Info | None -> ""

let of_graph ?(lint = []) (g : Cgsim.Serialized.t) =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "digraph \"%s\" {\n  rankdir=LR;\n  node [fontname=\"sans-serif\"];\n" g.gname;
  Array.iteri
    (fun i (ki : Cgsim.Serialized.kernel_inst) ->
      addf "  k%d [shape=box, style=filled, fillcolor=%s, label=\"%s\\n[%s]\"];\n" i
        (realm_color ki.realm) ki.inst_name
        (Cgsim.Kernel.realm_to_string ki.realm))
    g.kernels;
  Array.iter
    (fun (n : Cgsim.Serialized.net) ->
      (match n.global_input with
       | Some name -> addf "  in%d [shape=ellipse, label=\"%s\"];\n" n.net_id name
       | None -> ());
      match n.global_output with
      | Some name -> addf "  out%d [shape=ellipse, label=\"%s\"];\n" n.net_id name
      | None -> ())
    g.nets;
  let severities = net_severities lint (Array.length g.nets) in
  Array.iter
    (fun (n : Cgsim.Serialized.net) ->
      let label =
        Printf.sprintf "%s %s" (Cgsim.Dtype.to_string n.dtype) (transport_label n)
      in
      let style = severity_style severities.(n.net_id) in
      let srcs =
        (match n.global_input with Some _ -> [ Printf.sprintf "in%d" n.net_id ] | None -> [])
        @ List.map (fun (ep : Cgsim.Serialized.endpoint) -> Printf.sprintf "k%d" ep.kernel_idx)
            n.writers
      in
      let dsts =
        (match n.global_output with Some _ -> [ Printf.sprintf "out%d" n.net_id ] | None -> [])
        @ List.map (fun (ep : Cgsim.Serialized.endpoint) -> Printf.sprintf "k%d" ep.kernel_idx)
            n.readers
      in
      List.iter
        (fun src ->
          List.iter (fun dst -> addf "  %s -> %s [label=\"%s\"%s];\n" src dst label style) dsts)
        srcs)
    g.nets;
  addf "}\n";
  Buffer.contents buf

exception Extract_error of string

type file = {
  rel_path : string;
  contents : string;
}

type t = {
  graph_name : string;
  source_file : string;
  serialized : Cgsim.Serialized.t;
  aie_subgraph : Cgsim.Serialized.t option;
  pl_subgraph : Cgsim.Serialized.t option;
  host_kernels : string list;
  files : file list;
  port_classes : Partition.port_class array;
  lint : Cgsim.Diagnostic.t list;
}

let extract_attribute = "extract_compute_graph"

let extractable_graphs ?(all_graphs = false) env =
  List.filter
    (fun (g : Cgc.Ast.graph) -> all_graphs || List.mem extract_attribute g.Cgc.Ast.g_attrs)
    (Cgc.Sema.graphs env)

let host_manifest (g : Cgc.Ast.graph) serialized host_kernels =
  let buf = Buffer.create 512 in
  Printf.ksprintf (Buffer.add_string buf)
    "# Host (noextract) partition of compute graph '%s'\n\
     # These kernels stay in the host application; the extractor leaves\n\
     # their prototype implementations untouched (Section 4: the\n\
     # 'noextract' target excludes kernels from extraction).\n\n"
    g.Cgc.Ast.g_name;
  List.iter (fun k -> Printf.ksprintf (Buffer.add_string buf) "kernel %s\n" k) host_kernels;
  let classes = Partition.classify serialized in
  Array.iteri
    (fun i cls ->
      Printf.ksprintf (Buffer.add_string buf) "net %d: %s\n" i
        (Format.asprintf "%a" Partition.pp_port_class cls))
    classes;
  Buffer.contents buf

(* The generated project's front page: what was extracted, and what the
   static analyzer had to say about the graph it came from.  Warnings
   ride along with the generated code so whoever builds it downstream
   sees them without re-running the linter. *)
let readme (g : Cgc.Ast.graph) (serialized : Cgsim.Serialized.t) host_kernels lint =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "# Extracted compute graph `%s`\n\n" g.Cgc.Ast.g_name;
  addf "%d kernel instances, %d nets, %d inputs, %d outputs.\n\n"
    (Array.length serialized.Cgsim.Serialized.kernels)
    (Array.length serialized.Cgsim.Serialized.nets)
    (Array.length serialized.Cgsim.Serialized.input_order)
    (Array.length serialized.Cgsim.Serialized.output_order);
  if host_kernels <> [] then
    addf "Host (noextract) kernels: %s.\n\n" (String.concat ", " host_kernels);
  addf "## Static analysis\n\n";
  (match
     List.filter
       (fun (d : Cgsim.Diagnostic.t) -> d.Cgsim.Diagnostic.severity <> Cgsim.Diagnostic.Info)
       lint
   with
   | [] -> addf "The graph lints clean (%s).\n" (Analysis.Report.summary lint)
   | visible ->
     addf "The linter reported %s on this graph:\n\n" (Analysis.Report.summary lint);
     List.iter (fun d -> addf "- %s\n" (Cgsim.Diagnostic.render d)) visible);
  Buffer.contents buf

let extract env (g : Cgc.Ast.graph) =
  let serialized = Cgc.Consteval.eval_graph env g in
  let lint = Analysis.Lint.run serialized in
  (match Cgsim.Diagnostic.max_severity lint with
   | Some Cgsim.Diagnostic.Error ->
     let errors =
       List.filter
         (fun (d : Cgsim.Diagnostic.t) ->
           d.Cgsim.Diagnostic.severity = Cgsim.Diagnostic.Error)
         lint
     in
     raise
       (Extract_error
          (Printf.sprintf "graph %s fails static analysis:\n%s" g.Cgc.Ast.g_name
             (String.concat "\n" (List.map Cgsim.Diagnostic.render errors))))
   | _ -> ());
  let port_classes = Partition.classify serialized in
  let realms = Partition.realms serialized in
  let has r = List.exists (Cgsim.Kernel.equal_realm r) realms in
  if not (has Cgsim.Kernel.Aie || has Cgsim.Kernel.Pl) then
    raise
      (Extract_error
         (Printf.sprintf "graph %s contains no AIE- or PL-realm kernels to extract"
            g.Cgc.Ast.g_name));
  (* Keep the user's graph name on each partition: it names the generated
     top-level classes/functions. *)
  let named_subgraph realm =
    if has realm then
      Some
        { (Partition.subgraph serialized realm) with Cgsim.Serialized.gname = g.Cgc.Ast.g_name }
    else None
  in
  let aie_subgraph = named_subgraph Cgsim.Kernel.Aie in
  let pl_subgraph = named_subgraph Cgsim.Kernel.Pl in
  let host_kernels =
    List.filter_map
      (fun (ki : Cgsim.Serialized.kernel_inst) ->
        if Cgsim.Kernel.equal_realm ki.realm Cgsim.Kernel.Noextract then Some ki.key else None)
      (Array.to_list serialized.Cgsim.Serialized.kernels)
    |> List.sort_uniq compare
  in
  let aie_files =
    match aie_subgraph with
    | None -> []
    | Some sub ->
      { rel_path = Coextract.aie_runtime_header; contents = Runtime_headers.aie }
      :: { rel_path = "kernel_decls.hpp"; contents = Codegen_aie.kernel_decls_hpp env sub }
      :: { rel_path = "graph.hpp"; contents = Codegen_aie.graph_hpp env sub }
      :: List.map
           (fun name ->
             { rel_path = name ^ ".cc"; contents = Codegen_aie.kernel_cc env sub name })
           (Codegen_aie.unique_kernels sub)
  in
  let pl_files =
    match pl_subgraph with
    | None -> []
    | Some sub ->
      { rel_path = "pl/" ^ Codegen_hls.hls_runtime_header; contents = Runtime_headers.hls }
      :: { rel_path = "pl/pl_kernels.hpp"; contents = Codegen_hls.kernels_hpp env sub }
      :: { rel_path = Printf.sprintf "pl/%s_pl.cpp" g.Cgc.Ast.g_name;
           contents = Codegen_hls.toplevel_cpp env sub }
      :: List.map
           (fun name ->
             { rel_path = "pl/" ^ name ^ ".cpp"; contents = Codegen_hls.kernel_cpp env sub name })
           (Codegen_aie.unique_kernels sub)
  in
  let host_files =
    if host_kernels = [] then []
    else [ { rel_path = "host/MANIFEST"; contents = host_manifest g serialized host_kernels } ]
  in
  let source_file =
    match Cgc.Sema.defining_tu env g.Cgc.Ast.g_name with
    | Some tu -> tu.Cgc.Ast.tu_file
    | None -> "<unknown>"
  in
  let readme_file =
    { rel_path = "README.md"; contents = readme g serialized host_kernels lint }
  in
  {
    graph_name = g.Cgc.Ast.g_name;
    source_file;
    serialized;
    aie_subgraph;
    pl_subgraph;
    host_kernels;
    files = (readme_file :: aie_files) @ pl_files @ host_files;
    port_classes;
    lint;
  }

let extract_file ?include_dirs ?all_graphs path =
  let env = Cgc.Driver.analyze_file ?include_dirs path in
  match extractable_graphs ?all_graphs env with
  | [] -> raise (Extract_error (path ^ ": no extractable compute graphs found"))
  | graphs -> List.map (extract env) graphs

let extract_string ?all_graphs ?file source =
  let env = Cgc.Driver.analyze_string ?file source in
  match extractable_graphs ?all_graphs env with
  | [] -> raise (Extract_error "no extractable compute graphs found")
  | graphs -> List.map (extract env) graphs

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write ~dir t =
  let base = Filename.concat dir t.graph_name in
  mkdir_p base;
  List.map
    (fun f ->
      let path = Filename.concat base f.rel_path in
      mkdir_p (Filename.dirname path);
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc f.contents);
      path)
    t.files

let deploy t =
  match t.aie_subgraph with
  | Some sub -> Aiesim.Deploy.extracted sub
  | None ->
    raise (Extract_error (Printf.sprintf "graph %s has no AIE partition to deploy" t.graph_name))

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>graph %s (from %s)@," t.graph_name t.source_file;
  Format.fprintf ppf "  %d kernels, %d nets@,"
    (Array.length t.serialized.Cgsim.Serialized.kernels)
    (Array.length t.serialized.Cgsim.Serialized.nets);
  let pp_part label = function
    | None -> ()
    | Some (sub : Cgsim.Serialized.t) ->
      Format.fprintf ppf "  %s partition: %d kernels, %d nets@," label
        (Array.length sub.Cgsim.Serialized.kernels)
        (Array.length sub.Cgsim.Serialized.nets)
  in
  pp_part "AIE" t.aie_subgraph;
  pp_part "PL" t.pl_subgraph;
  if t.host_kernels <> [] then
    Format.fprintf ppf "  host kernels: %s@," (String.concat ", " t.host_kernels);
  Array.iteri
    (fun i cls ->
      Format.fprintf ppf "  net %d: %a@," i Partition.pp_port_class cls)
    t.port_classes;
  Format.fprintf ppf "  files: %s@]"
    (String.concat ", " (List.map (fun f -> f.rel_path) t.files))

module G = Workloads.Sdf_gen
module S = Cgsim.Serialized
module D = Cgsim.Diagnostic

(* Differential oracle over {!Workloads.Sdf_gen} cases: hold the static
   linter's verdict against what the runtime actually does.

   This lives in its own library (not in [workloads]) on purpose:
   linking [analysis] arms the runtime lint/fusion/capacity hooks at
   module-init time, and the many test binaries that use [workloads]
   fixtures must not have their runtime behaviour changed by a
   transitive dependency.  Only the fuzz surfaces (bench fuzz,
   test_fuzz) link this. *)

(* Lint stays off for runtime probes: the oracle's whole point is to
   compare the linter's verdict against what the runtime actually does,
   so the runtime must not be protected by the verdict under test. *)
let base_config =
  Cgsim.Run_config.(default |> with_lint `Off |> with_max_steps 10_000_000)

let run_cgsim ?(config = base_config) graph input =
  let sink, read = Cgsim.Io.f32_buffer () in
  let outcome =
    Cgsim.Runtime.execute ~config graph
      ~sources:[ Cgsim.Io.of_f32_array input ]
      ~sinks:[ sink ]
  in
  outcome, read ()

(* A cgsim run "deadlocked" when the scheduler reached quiescence with
   fibers still parked on queue I/O (they are cancelled at stall time),
   or burned its whole step budget without finishing. *)
let deadlocked = function
  | Cgsim.Runtime.Completed stats -> stats.Cgsim.Sched.cancelled > 0
  | Cgsim.Runtime.Deadline_exceeded _ | Cgsim.Runtime.Cancelled -> true
  | Cgsim.Runtime.Kernel_failed _ -> false

let check (case : G.case) =
  let problems = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun s -> problems := Printf.sprintf "%s: %s" case.G.c_name s :: !problems)
      fmt
  in
  let diags = Analysis.Lint.run case.G.c_graph in
  let has code = List.exists (fun (d : D.t) -> d.D.code = code) diags in
  let flagged =
    List.exists (fun (d : D.t) -> d.D.severity = D.Error || d.D.severity = D.Warning) diags
  in
  (match case.G.c_defect with
   | None ->
     if flagged then
       fail "linter flagged a clean graph: %s" (Analysis.Report.summary diags);
     if Analysis.Capacity.suggest case.G.c_graph <> [] then
       fail "capacity synthesizer suggested depths for a clean graph";
     (match run_cgsim case.G.c_graph case.G.c_input with
      | Cgsim.Runtime.Completed stats, out when stats.Cgsim.Sched.cancelled = 0 ->
        if Array.length out <> case.G.c_expected_out then
          fail "cgsim produced %d elements, statically expected %d" (Array.length out)
            case.G.c_expected_out;
        let x_sink, x_read = Cgsim.Io.f32_buffer () in
        let x_config = Cgsim.Run_config.(base_config |> with_deadline_ms 10_000.0) in
        (match
           X86sim.Sim.run ~config:x_config case.G.c_graph
             ~sources:[ Cgsim.Io.of_f32_array case.G.c_input ]
             ~sinks:[ x_sink ]
         with
         | X86sim.Sim.Completed _ ->
           let x_out = x_read () in
           if Array.length x_out <> Array.length out then
             fail "x86sim produced %d elements, cgsim %d" (Array.length x_out)
               (Array.length out)
           else
             Array.iteri
               (fun i v ->
                 if not (Float.equal v out.(i)) && !problems = [] then
                   fail "outputs diverge at element %d: x86sim %h, cgsim %h" i v out.(i))
               x_out
         | o -> fail "x86sim did not complete: %s" (X86sim.Sim.outcome_label o))
      | outcome, _ ->
        fail "cgsim did not complete a clean graph: %s"
          (Cgsim.Runtime.outcome_label outcome))
   | Some G.Imbalance ->
     if not (has "CG-E101") then
       fail "injected imbalance missed (findings: %s)" (Analysis.Report.summary diags)
   | Some G.Starved_cycle ->
     if not (has "CG-W202") then
       fail "unverifiable starved cycle missed (findings: %s)"
         (Analysis.Report.summary diags);
     let outcome, _ = run_cgsim case.G.c_graph case.G.c_input in
     if not (deadlocked outcome) then
       fail "starved cycle did not deadlock at runtime (%s)"
         (Cgsim.Runtime.outcome_label outcome)
   | Some G.Under_capacity ->
     let fb = Option.get case.G.c_fb_net in
     if not (has "CG-E201") then
       fail "under-buffered cycle missed (findings: %s)" (Analysis.Report.summary diags);
     (match List.assoc_opt fb (Analysis.Capacity.suggest case.G.c_graph) with
      | Some d when d = case.G.c_fb_need -> ()
      | Some d -> fail "suggested depth %d for the feedback net, need %d" d case.G.c_fb_need
      | None -> fail "no capacity suggestion for the under-buffered feedback net");
     let outcome, _ = run_cgsim case.G.c_graph case.G.c_input in
     if not (deadlocked outcome) then
       fail "under-buffered cycle did not deadlock with lint off (%s)"
         (Cgsim.Runtime.outcome_label outcome);
     (* auto_capacity turns the same graph into a completing one... *)
     let auto_config = Cgsim.Run_config.(base_config |> with_auto_capacity true) in
     (match run_cgsim ~config:auto_config case.G.c_graph case.G.c_input with
      | Cgsim.Runtime.Completed stats, out when stats.Cgsim.Sched.cancelled = 0 ->
        if Array.length out <> case.G.c_expected_out then
          fail "auto_capacity run produced %d elements, expected %d" (Array.length out)
            case.G.c_expected_out
      | outcome, _ ->
        fail "auto_capacity did not rescue the run: %s"
          (Cgsim.Runtime.outcome_label outcome));
     (* ...and the suggestion is minimal: one element less deadlocks. *)
     let starved_again =
       S.with_net_depths case.G.c_graph [ fb, case.G.c_fb_need - 1 ]
     in
     let outcome, _ = run_cgsim starved_again case.G.c_input in
     if not (deadlocked outcome) then
       fail "depth need-1 on the feedback net did not deadlock (suggestion not minimal)";
     let fixed = S.with_net_depths case.G.c_graph [ fb, case.G.c_fb_need ] in
     if Analysis.Capacity.suggest fixed <> [] then
       fail "capacity synthesizer still suggests depths after applying its own suggestion");
  List.rev !problems

let run_suite ?(progress = fun _ _ -> ()) count =
  let disagreements = ref [] in
  for i = 0 to count - 1 do
    let case = G.nth_case i in
    let problems = check case in
    disagreements := List.rev_append problems !disagreements;
    progress (i + 1) (List.length !disagreements)
  done;
  List.rev !disagreements

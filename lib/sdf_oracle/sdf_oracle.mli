(** Differential lint-vs-runtime oracle over {!Workloads.Sdf_gen}
    cases.

    Lives apart from [workloads] so that linking the generator's
    fixtures does not transitively link [analysis] (which arms the
    runtime lint/fusion/capacity hooks at module-init time and would
    change runtime behaviour for every binary using workloads).  Only
    the fuzz surfaces (bench fuzz, test_fuzz) link this library.

    [check] asserts the correspondences documented on
    {!Workloads.Sdf_gen}: clean graphs lint clean, draw no capacity
    suggestions and complete on both cgsim and x86sim with
    bit-identical outputs of the statically known length; injected
    defects draw their predicted diagnostic and (where applicable)
    genuinely deadlock, with [Run_config.auto_capacity] rescuing
    under-buffered cycles at exactly the suggested depth — one element
    less deadlocks again. *)

(** Run one case against the oracle; returns human-readable
    disagreement descriptions (empty = linter and runtime agree). *)
val check : Workloads.Sdf_gen.case -> string list

(** [run_suite ?progress count] checks {!Workloads.Sdf_gen.nth_case}
    [0..count-1]; [progress done disagreements] is called after each.
    Returns all disagreements. *)
val run_suite : ?progress:(int -> int -> unit) -> int -> string list

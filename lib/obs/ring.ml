(* Bounded trace buffer.  All slots are allocated up front and recycled,
   so emitting an event writes eight fields into an existing record —
   no per-event allocation, which keeps tracing cheap enough to leave
   compiled in (the off path is a single branch in Trace).

   Overflow drops the OLDEST events: the interesting part of a stalled
   or slow run is almost always its tail, and the dropped count is
   reported so truncation is never silent.

   A mutex serialises writers: cgsim is single-threaded (uncontended
   lock), x86sim emits from many domains. *)

type t = {
  slots : Event.t array;
  mutable next : int;  (* total events ever emitted *)
  mutable dropped : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "obs: ring capacity must be positive";
  {
    slots = Array.init capacity (fun _ -> Event.make_empty ());
    next = 0;
    dropped = 0;
    lock = Mutex.create ();
  }

let capacity t = Array.length t.slots

let length t = min t.next (Array.length t.slots)

let dropped t = t.dropped

let emit t ~ts_ns ~dur_ns ~phase ~name ~track ~cat ~pid ~a_key ~a_val =
  Mutex.lock t.lock;
  let cap = Array.length t.slots in
  if t.next >= cap then t.dropped <- t.dropped + 1;
  let slot = t.slots.(t.next mod cap) in
  slot.Event.ts_ns <- ts_ns;
  slot.Event.dur_ns <- dur_ns;
  slot.Event.phase <- phase;
  slot.Event.name <- name;
  slot.Event.track <- track;
  slot.Event.cat <- cat;
  slot.Event.pid <- pid;
  slot.Event.a_key <- a_key;
  slot.Event.a_val <- a_val;
  t.next <- t.next + 1;
  Mutex.unlock t.lock

(* Oldest-first traversal of the live window. *)
let iter t f =
  Mutex.lock t.lock;
  let snapshot =
    let cap = Array.length t.slots in
    let n = min t.next cap in
    let first = t.next - n in
    Array.init n (fun i -> Event.copy t.slots.((first + i) mod cap))
  in
  Mutex.unlock t.lock;
  Array.iter f snapshot

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

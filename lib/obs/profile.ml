(* Per-kernel self-time profiles.

   The scheduler observes every slice it runs into a
   "kernel.self_ns:NAME" HDR histogram (self time: the kernel body's
   own slice durations, queue waits excluded by construction since a
   parked fiber is not running).  This module renders those histograms
   as a profile: a table sorted by total self time, and a collapsed
   stack ("root;kernel value") that flamegraph.pl consumes directly. *)

let prefix = "kernel.self_ns:"

type row = {
  kernel : string;
  slices : int;
  self_ns : float;  (* total self time *)
  mean_ns : float;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
  share : float;  (* fraction of summed self time across kernels *)
}

let rows (s : Metrics.snapshot) =
  let kernels =
    List.filter_map
      (fun (h : Metrics.histo_snapshot) ->
        let n = String.length prefix in
        if String.length h.Metrics.h_name > n && String.sub h.Metrics.h_name 0 n = prefix then
          Some (String.sub h.Metrics.h_name n (String.length h.Metrics.h_name - n), h)
        else None)
      s.Metrics.histograms
  in
  let total = List.fold_left (fun acc (_, h) -> acc +. h.Metrics.sum) 0.0 kernels in
  kernels
  |> List.map (fun (kernel, (h : Metrics.histo_snapshot)) ->
         {
           kernel;
           slices = h.Metrics.count;
           self_ns = h.Metrics.sum;
           mean_ns = Metrics.mean h;
           p50_ns = Metrics.quantile h 0.5;
           p99_ns = Metrics.quantile h 0.99;
           p999_ns = Metrics.quantile h 0.999;
           max_ns = h.Metrics.max_v;
           share = (if total > 0.0 then h.Metrics.sum /. total else 0.0);
         })
  |> List.sort (fun a b -> compare b.self_ns a.self_ns)

let table s =
  match rows s with
  | [] -> "no kernel self-time samples (run with tracing on)\n"
  | rows ->
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "%-28s %8s %12s %6s %10s %10s %10s %10s\n" "kernel" "slices" "self_ms"
         "share" "mean_ns" "p50_ns" "p99_ns" "p999_ns");
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "%-28s %8d %12.3f %5.1f%% %10.0f %10.0f %10.0f %10.0f\n" r.kernel
             r.slices (r.self_ns /. 1e6) (100.0 *. r.share) r.mean_ns r.p50_ns r.p99_ns r.p999_ns))
      rows;
    Buffer.contents b

(* flamegraph.pl collapsed-stack format: "frame;frame value", one line
   per stack, integer values.  Our "stacks" are one frame deep under a
   synthetic root; the value is total self time in ns. *)
let collapsed ?(root = "cgsim") s =
  let b = Buffer.create 512 in
  List.iter
    (fun r ->
      Buffer.add_string b (Printf.sprintf "%s;%s %.0f\n" root r.kernel r.self_ns))
    (rows s);
  Buffer.contents b

(** Named aggregate metrics: counters, high-water gauges and HDR
    log-linear latency histograms ({!Hdr}).

    Metrics complement the event ring: the ring holds a bounded window
    of individual events, metrics aggregate over the whole run (queue
    occupancy high-water marks, per-endpoint blocked time, park/wake
    counts, slice durations) with O(1) memory per name.  All operations
    are thread-safe. *)

type t

val create : unit -> t

(** [add t name v] adds [v] to counter [name] (created on first use). *)
val add : t -> string -> float -> unit

val incr : t -> string -> unit

(** [observe t name v] records [v] (typically ns) into histogram
    [name]: HDR log-linear buckets ({!quantile} error bounded by
    {!quantile_rel_error}), plus exact count/sum/min/max. *)
val observe : t -> string -> float -> unit

(** [merge_hdr t name h] adds every bucket of a privately-accumulated
    {!Hdr.t} (e.g. one per pool domain) into histogram [name]. *)
val merge_hdr : t -> string -> Hdr.t -> unit

(** [high_water t name v] raises gauge [name] to at least [v]. *)
val high_water : t -> string -> float -> unit

type counter_snapshot = { c_name : string; total : float; events : int }

type histo_snapshot = {
  h_name : string;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  cumulative : (float * int) list;
      (** (bucket upper bound, events at or below it), ascending. *)
}

type gauge_snapshot = { g_name : string; peak : float }

type snapshot = {
  counters : counter_snapshot list;
  histograms : histo_snapshot list;
  gauges : gauge_snapshot list;
}

(** Consistent copy of every metric, each section sorted by name. *)
val snapshot : t -> snapshot

val mean : histo_snapshot -> float

(** Worst-case relative error of {!quantile} against the exact rank
    statistic of the recorded values (the {!Hdr} bucket resolution). *)
val quantile_rel_error : float

(** [quantile h q] for [q] in [0,1]: an upper bound clamped to the
    observed min/max, within {!quantile_rel_error} of exact. *)
val quantile : histo_snapshot -> float -> float

val pp_snapshot : Format.formatter -> snapshot -> unit

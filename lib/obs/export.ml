(* Exporters over a stopped (or still-running) session: Chrome
   trace-event JSON for Perfetto/chrome://tracing, CSV for ad-hoc
   analysis, and a human-readable text summary. *)

let us ns = ns /. 1000.0

(* Stable (pid, track) -> tid mapping in first-encounter order, so two
   exports of the same session agree and tests are deterministic. *)
let assign_tids events =
  let table : (int * string, int) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let next = ref 1 in
  List.iter
    (fun (e : Event.t) ->
      let key = e.Event.pid, e.Event.track in
      if not (Hashtbl.mem table key) then begin
        Hashtbl.add table key !next;
        order := (key, !next) :: !order;
        incr next
      end)
    events;
  table, List.rev !order

let chrome_json (s : Trace.session) =
  let events = Ring.to_list s.Trace.ring in
  let tids, order = assign_tids events in
  let pids =
    List.sort_uniq compare (List.map (fun ((pid, _), _) -> pid) order)
  in
  let process_meta =
    List.map
      (fun pid ->
        let pname =
          if pid = Event.virtual_pid then "aiesim (virtual cycles as ns)" else "wall-clock"
        in
        Json.Obj
          [
            "name", Json.Str "process_name";
            "ph", Json.Str "M";
            "pid", Json.Num (float_of_int pid);
            "tid", Json.Num 0.0;
            "args", Json.Obj [ "name", Json.Str pname ];
          ])
      pids
  in
  let thread_meta =
    List.map
      (fun ((pid, track), tid) ->
        Json.Obj
          [
            "name", Json.Str "thread_name";
            "ph", Json.Str "M";
            "pid", Json.Num (float_of_int pid);
            "tid", Json.Num (float_of_int tid);
            "args", Json.Obj [ "name", Json.Str track ];
          ])
      order
  in
  let event_json (e : Event.t) =
    let tid = Hashtbl.find tids (e.Event.pid, e.Event.track) in
    let base =
      [
        "name", Json.Str e.Event.name;
        "cat", Json.Str e.Event.cat;
        "ph", Json.Str (Event.phase_to_string e.Event.phase);
        "ts", Json.Num (us e.Event.ts_ns);
        "pid", Json.Num (float_of_int e.Event.pid);
        "tid", Json.Num (float_of_int tid);
      ]
    in
    let base =
      match e.Event.phase with
      | Event.Span -> base @ [ "dur", Json.Num (us e.Event.dur_ns) ]
      | Event.Instant -> base @ [ "s", Json.Str "t" ]
      | Event.Counter -> base
    in
    let base =
      if String.equal e.Event.a_key "" then base
      else base @ [ "args", Json.Obj [ e.Event.a_key, Json.Num e.Event.a_val ] ]
    in
    Json.Obj base
  in
  let duration_ns =
    match s.Trace.stopped_ns with
    | Some t -> t -. s.Trace.started_ns
    | None -> Clock.now_ns () -. s.Trace.started_ns
  in
  Json.to_string
    (Json.Obj
       [
         "displayTimeUnit", Json.Str "ns";
         "otherData",
         Json.Obj
           [
             "producer", Json.Str "cgsim-versal lib/obs";
             "events", Json.Num (float_of_int (Ring.length s.Trace.ring));
             "dropped", Json.Num (float_of_int (Ring.dropped s.Trace.ring));
             "ring_capacity", Json.Num (float_of_int (Ring.capacity s.Trace.ring));
             "session_ns", Json.Num duration_ns;
           ];
         "traceEvents", Json.Arr (process_meta @ thread_meta @ List.map event_json events);
       ])

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let csv (s : Trace.session) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "ts_ns,dur_ns,phase,pid,track,cat,name,arg_key,arg_val\n";
  Ring.iter s.Trace.ring (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%.0f,%.0f,%s,%d,%s,%s,%s,%s,%g\n" e.Event.ts_ns e.Event.dur_ns
           (Event.phase_to_string e.Event.phase)
           e.Event.pid (csv_escape e.Event.track) (csv_escape e.Event.cat)
           (csv_escape e.Event.name) (csv_escape e.Event.a_key) e.Event.a_val));
  Buffer.contents buf

let summary (s : Trace.session) =
  let by_cat : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let span_ns_by_cat : (string, float) Hashtbl.t = Hashtbl.create 8 in
  Ring.iter s.Trace.ring (fun e ->
      Hashtbl.replace by_cat e.Event.cat
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_cat e.Event.cat));
      if e.Event.phase = Event.Span then
        Hashtbl.replace span_ns_by_cat e.Event.cat
          (e.Event.dur_ns
          +. Option.value ~default:0.0 (Hashtbl.find_opt span_ns_by_cat e.Event.cat)));
  let duration_ns =
    match s.Trace.stopped_ns with
    | Some t -> t -. s.Trace.started_ns
    | None -> Clock.now_ns () -. s.Trace.started_ns
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "obs session: %.3f ms, %d events retained (%d dropped, capacity %d)\n"
       (duration_ns /. 1e6) (Ring.length s.Trace.ring) (Ring.dropped s.Trace.ring)
       (Ring.capacity s.Trace.ring));
  let cats = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_cat []) in
  List.iter
    (fun (cat, n) ->
      let span_ms =
        Option.value ~default:0.0 (Hashtbl.find_opt span_ns_by_cat cat) /. 1e6
      in
      Buffer.add_string b (Printf.sprintf "  %-12s %8d events, %10.3f ms in spans\n" cat n span_ms))
    cats;
  Buffer.add_string b (Format.asprintf "%a" Metrics.pp_snapshot (Metrics.snapshot s.Trace.metrics));
  Buffer.contents b

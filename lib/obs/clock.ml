(* One clock source for the whole stack.  Sched slice accounting, queue
   blocked-time spans and exported trace timestamps must be mutually
   comparable, so everything reads this module instead of calling
   Unix.gettimeofday directly.

   The clock is "monotonic-ish": gettimeofday can step backwards under
   NTP adjustment, which would produce negative span durations and
   Perfetto refuses such traces, so readings are clamped to never go
   below the last value handed out.  The origin is process start, which
   keeps the exported microsecond timestamps small. *)

let epoch = Unix.gettimeofday ()

let last = ref 0.0

let now_ns () =
  let t = (Unix.gettimeofday () -. epoch) *. 1e9 in
  (* Benign race under x86sim's domains: a stale [last] can only make the
     clamp less strict, never yield a negative delta for one reader. *)
  let t = if t < !last then !last else t in
  last := t;
  t

let epoch_s () = epoch

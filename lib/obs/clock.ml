(* One clock source for the whole stack.  Sched slice accounting, queue
   blocked-time spans and exported trace timestamps must be mutually
   comparable, so everything reads this module instead of calling
   Unix.gettimeofday directly.

   The clock is "monotonic-ish": gettimeofday can step backwards under
   NTP adjustment, which would produce negative span durations and
   Perfetto refuses such traces, so readings are clamped to never go
   below the last value handed out.  The origin is process start, which
   keeps the exported microsecond timestamps small.

   The clamp is an integer-nanosecond Atomic advanced by CAS: concurrent
   x86sim/pool domains always observe a non-decreasing sequence, and the
   int payload keeps the hot path allocation-free (a float Atomic would
   box on every store).  gettimeofday resolves microseconds, so integer
   nanoseconds lose nothing. *)

let epoch = Unix.gettimeofday ()

let last = Atomic.make 0

let now_ns () =
  let t = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e9) in
  let rec clamp () =
    let l = Atomic.get last in
    if t <= l then float_of_int l
    else if Atomic.compare_and_set last l t then float_of_int t
    else clamp ()
  in
  clamp ()

(* The last value handed out, without reading the OS clock: one atomic
   load, no syscall.  Precise to the most recent [now_ns] call from
   anywhere in the process (the cgsim scheduler calls it twice per
   slice), which is all coarse consumers like the flight recorder need. *)
let cached_ns () = float_of_int (Atomic.get last)

let epoch_s () = epoch

(** Session exporters.

    {!chrome_json} emits the Chrome trace-event format (load the file in
    {{:https://ui.perfetto.dev}Perfetto} or chrome://tracing): one
    process per timeline (wall-clock vs. aiesim virtual time), one named
    thread track per fiber / OS thread / tile, spans as "X" complete
    events, instants and counters.  Timestamps are microseconds as the
    format requires.  Drop counts and ring capacity ride along in
    [otherData] so truncated traces are recognisable. *)

(** Chrome trace-event JSON for the session's retained events. *)
val chrome_json : Trace.session -> string

(** Flat CSV ([ts_ns,dur_ns,phase,pid,track,cat,name,arg_key,arg_val]). *)
val csv : Trace.session -> string

(** Human-readable text: session length, per-category event counts and
    span time, then the full metrics snapshot (counters, high-water
    gauges, latency histograms). *)
val summary : Trace.session -> string

(** Always-on flight recorder: a per-domain ring of the last
    {!capacity} coarse events (scheduler slices, parks, stops, pool
    requests, fault injections), running whether or not an {!Trace}
    session is active.

    Failure paths ({!Cgsim.Runtime} outcomes, the pool's breaker-open)
    call {!snapshot} on the domain that hit the failure, so every
    production failure ships with its recent-history context — the
    thing a post-hoc trace can never recover.

    [note] is allocation-free (struct-of-arrays ring, single writer per
    domain, no locks); callers pass pre-existing strings.  Events are
    emitted at scheduler/supervision granularity, never per element. *)

type kind =
  | Slice  (** A fiber ran one scheduler slice; arg = duration ns. *)
  | Park
  | Wake
  | Stop  (** Scheduler stop token set; name = reason. *)
  | Body_raise  (** A kernel body raised; name = kernel instance. *)
  | Request  (** Pool request started; arg = request id. *)
  | Retry  (** Pool retry; arg = attempt number. *)
  | Breaker  (** Pool circuit breaker opened. *)
  | Fault  (** Fault plan injected; name = port. *)
  | Note

val kind_to_string : kind -> string

type entry = { fl_ts_ns : float; fl_kind : kind; fl_name : string; fl_arg : float }

(** Ring capacity per domain (events retained). *)
val capacity : int

(** Record an event on the current domain's ring.  Never allocates and
    never reads the OS clock (it stamps entries with {!Clock.cached_ns},
    which the scheduler refreshes every slice); pass an existing string,
    not a [Printf] result. *)
val note : kind -> ?arg:float -> string -> unit

(** As {!note} with an exact caller-supplied timestamp, for sites that
    just read the clock anyway (e.g. the scheduler's slice accounting). *)
val note_at : ts:float -> kind -> ?arg:float -> string -> unit

(** Oldest-first window of the current domain's ring. *)
val snapshot : unit -> entry list

(** Total events ever noted on the current domain. *)
val noted : unit -> int

(** Reset the current domain's ring (tests). *)
val clear : unit -> unit

(** Global kill switch for overhead A/B measurements; on by default. *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool

val pp_entry : Format.formatter -> entry -> unit

(** One line per entry, oldest first. *)
val render : entry list -> string

type counter = { mutable total : float; mutable events : int }

type gauge = { mutable peak : float }

(* Histograms are HDR log-linear (Obs.Hdr): quantiles carry a bounded
   ~0.78 % relative error instead of the power-of-two bucket resolution
   this module started with.  Recording is still two array ops, cheap
   enough for per-element paths. *)
type t = {
  counters : (string, counter) Hashtbl.t;
  histos : (string, Hdr.t) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  lock : Mutex.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    histos = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  let r = f () in
  Mutex.unlock t.lock;
  r

let add t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c ->
        c.total <- c.total +. v;
        c.events <- c.events + 1
      | None -> Hashtbl.add t.counters name { total = v; events = 1 })

let incr t name = add t name 1.0

let find_histo t name =
  match Hashtbl.find_opt t.histos name with
  | Some h -> h
  | None ->
    let h = Hdr.create () in
    Hashtbl.add t.histos name h;
    h

let observe t name v = locked t (fun () -> Hdr.record (find_histo t name) v)

(* Merge a privately-accumulated HDR histogram (e.g. one per pool
   domain) into histogram [name] — the aggregation path that keeps hot
   recording lock-free. *)
let merge_hdr t name hdr = locked t (fun () -> Hdr.merge_into ~into:(find_histo t name) hdr)

let high_water t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some g -> if v > g.peak then g.peak <- v
      | None -> Hashtbl.add t.gauges name { peak = v })

type counter_snapshot = { c_name : string; total : float; events : int }

type histo_snapshot = {
  h_name : string;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  cumulative : (float * int) list;  (* bucket upper bound, events <= bound *)
}

type gauge_snapshot = { g_name : string; peak : float }

type snapshot = {
  counters : counter_snapshot list;
  histograms : histo_snapshot list;
  gauges : gauge_snapshot list;
}

let by_name n1 n2 = String.compare n1 n2

let quantile_rel_error = Hdr.rel_error

let snapshot (t : t) =
  locked t (fun () ->
      let counters =
        Hashtbl.fold
          (fun c_name (c : counter) acc -> { c_name; total = c.total; events = c.events } :: acc)
          t.counters []
        |> List.sort (fun a b -> by_name a.c_name b.c_name)
      in
      let histograms =
        Hashtbl.fold
          (fun h_name h acc ->
            {
              h_name;
              count = Hdr.count h;
              sum = Hdr.sum h;
              min_v = (if Hdr.count h = 0 then infinity else Hdr.min_value h);
              max_v = (if Hdr.count h = 0 then neg_infinity else Hdr.max_value h);
              cumulative = Hdr.cumulative h;
            }
            :: acc)
          t.histos []
        |> List.sort (fun a b -> by_name a.h_name b.h_name)
      in
      let gauges =
        Hashtbl.fold
          (fun g_name (g : gauge) acc -> { g_name; peak = g.peak } :: acc)
          t.gauges []
        |> List.sort (fun a b -> by_name a.g_name b.g_name)
      in
      { counters; histograms; gauges })

let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

(* Quantile over the snapshot's cumulative buckets: the upper bound of
   the first bucket whose cumulative count reaches the rank, clamped to
   the observed extremes.  With the HDR layout this is within
   {!quantile_rel_error} of the exact rank statistic. *)
let quantile h q =
  if h.count = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int h.count)) in
    let rank = max 1 (min h.count rank) in
    let rec find = function
      | [] -> h.max_v
      | (bound, cum) :: rest -> if cum >= rank then bound else find rest
    in
    Float.min h.max_v (Float.max h.min_v (find h.cumulative))
  end

let pp_snapshot ppf s =
  Format.fprintf ppf "@[<v>";
  if s.counters <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter
      (fun c -> Format.fprintf ppf "  %-40s %14.0f (%d events)@," c.c_name c.total c.events)
      s.counters
  end;
  if s.gauges <> [] then begin
    Format.fprintf ppf "high-water gauges:@,";
    List.iter (fun g -> Format.fprintf ppf "  %-40s %14.1f@," g.g_name g.peak) s.gauges
  end;
  if s.histograms <> [] then begin
    Format.fprintf ppf "histograms (ns, quantile rel. error <= %.2f%%):@,"
      (100.0 *. quantile_rel_error);
    List.iter
      (fun h ->
        Format.fprintf ppf
          "  %-40s n=%-8d mean=%-10.0f p50=%-10.0f p99=%-10.0f p999=%-10.0f max=%.0f@," h.h_name
          h.count (mean h) (quantile h 0.5) (quantile h 0.99) (quantile h 0.999) h.max_v)
      s.histograms
  end;
  Format.fprintf ppf "@]"

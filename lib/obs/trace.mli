(** Global tracing session: the front door every simulator emits into.

    At most one session is active at a time.  Instrumentation sites in
    cgsim, x86sim and aiesim stay compiled in permanently and check
    {!is_on} — a single load-and-branch when tracing is off; when on,
    events go into the session's preallocated {!Ring} (no allocation per
    event) and aggregates into its {!Metrics}. *)

type session = {
  ring : Ring.t;
  metrics : Metrics.t;
  started_ns : float;  (** {!Clock.now_ns} at {!start}. *)
  mutable stopped_ns : float option;
}

(** The raw enabled flag.  Read-only for instrumentation fast paths
    ([if !Obs.Trace.on then …]); use {!start}/{!stop} to change it. *)
val on : bool ref

val is_on : unit -> bool

val current : unit -> session option

(** Begin a session (default ring capacity 65536 events).  Raises
    [Invalid_argument] if one is already active. *)
val start : ?capacity:int -> unit -> session

(** End the active session, if any, and return it for export. *)
val stop : unit -> session option

(** [with_session f] runs [f] under a fresh session and returns its
    result with the (stopped) session.  The session is stopped even if
    [f] raises. *)
val with_session : ?capacity:int -> (unit -> 'a) -> 'a * session

(** Alias of {!Clock.now_ns} so instrumentation needs one [open]. *)
val now_ns : unit -> float

(** {1 Event emission — no-ops when tracing is off} *)

(** A completed span whose endpoints the caller already measured. *)
val span :
  track:string ->
  ?cat:string ->
  ?pid:int ->
  ?arg:string * float ->
  name:string ->
  ts_ns:float ->
  dur_ns:float ->
  unit ->
  unit

val instant :
  track:string -> ?cat:string -> ?pid:int -> ?arg:string * float -> string -> unit

(** Counter sample ([ts_ns] defaults to now; pass it explicitly for
    virtual-time counters). *)
val counter :
  track:string -> ?cat:string -> ?pid:int -> ?ts_ns:float -> name:string -> float -> unit

(** [with_span ~track name f] measures [f] and emits the span (also on
    exception).  When tracing is off it is exactly [f ()]. *)
val with_span : track:string -> ?cat:string -> ?pid:int -> string -> (unit -> 'a) -> 'a

(** {1 Metric emission — no-ops when tracing is off} *)

val add_metric : string -> float -> unit

val incr_metric : string -> unit

val observe_ns : string -> float -> unit

val high_water : string -> float -> unit

(** {1 Thread identity}

    cgsim passes fiber names explicitly; x86sim's domains label
    themselves once and queue code recovers the label here. *)

val set_thread_label : string -> unit

(** The current domain's label ("domain-N" when unlabelled). *)
val thread_label : unit -> string

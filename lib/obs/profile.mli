(** Per-kernel self-time profiles over the ["kernel.self_ns:NAME"]
    histograms the scheduler records (one HDR histogram per kernel,
    slice durations; queue waits excluded since parked fibers are not
    running). *)

(** The histogram-name prefix the scheduler uses
    (["kernel.self_ns:"]). *)
val prefix : string

type row = {
  kernel : string;
  slices : int;
  self_ns : float;  (** Total self time. *)
  mean_ns : float;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
  share : float;  (** Fraction of summed self time across kernels. *)
}

(** Profile rows, sorted by total self time, descending. *)
val rows : Metrics.snapshot -> row list

(** Render {!rows} as an aligned text table. *)
val table : Metrics.snapshot -> string

(** flamegraph.pl collapsed-stack lines (["root;kernel self_ns"]),
    one per kernel. *)
val collapsed : ?root:string -> Metrics.snapshot -> string

(* Minimal JSON support: enough of a writer to emit Chrome trace-event
   files and enough of a parser to validate them (the test suite parses
   exported traces back).  Kept dependency-free on purpose — the
   container image has no yojson. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
  else Buffer.add_string buf "0"

let rec write_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> number_to buf f
  | Str s -> escape_to buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write_to buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write_to buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write_to buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let perr st fmt =
  Format.kasprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> perr st "expected %c, found %c" c d
  | None -> perr st "expected %c, found end of input" c

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else perr st "invalid literal"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> perr st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> Buffer.add_char buf '"'; advance st
       | Some '\\' -> Buffer.add_char buf '\\'; advance st
       | Some '/' -> Buffer.add_char buf '/'; advance st
       | Some 'n' -> Buffer.add_char buf '\n'; advance st
       | Some 'r' -> Buffer.add_char buf '\r'; advance st
       | Some 't' -> Buffer.add_char buf '\t'; advance st
       | Some 'b' -> Buffer.add_char buf '\b'; advance st
       | Some 'f' -> Buffer.add_char buf '\012'; advance st
       | Some 'u' ->
         advance st;
         if st.pos + 4 > String.length st.src then perr st "truncated \\u escape";
         let hex = String.sub st.src st.pos 4 in
         let code =
           try int_of_string ("0x" ^ hex) with _ -> perr st "bad \\u escape %s" hex
         in
         st.pos <- st.pos + 4;
         (* Keep it simple: non-ASCII escapes round-trip as '?'. *)
         Buffer.add_char buf (if code < 0x80 then Char.chr code else '?')
       | _ -> perr st "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> perr st "invalid number %S" text

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> perr st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> perr st "expected , or } in object"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> perr st "expected , or ] in array"
      in
      Arr (items [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> Num (parse_number st)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing data at %d" st.pos)
    else Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_list = function Arr items -> Some items | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None

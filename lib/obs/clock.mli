(** The single wall-clock source shared by every simulator.

    All observability timestamps — scheduler slice accounting, queue
    blocked-time spans, exported trace events — come from here, so the
    numbers are mutually consistent by construction.  Readings never go
    backwards (gettimeofday steps are clamped). *)

(** Nanoseconds since process start, monotonically non-decreasing. *)
val now_ns : unit -> float

(** The gettimeofday origin (seconds since the Unix epoch) that
    [now_ns] is relative to, for correlating with external logs. *)
val epoch_s : unit -> float

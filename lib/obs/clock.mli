(** The single wall-clock source shared by every simulator.

    All observability timestamps — scheduler slice accounting, queue
    blocked-time spans, exported trace events — come from here, so the
    numbers are mutually consistent by construction.  Readings never go
    backwards (gettimeofday steps are clamped through an atomic
    compare-and-set, so the guarantee holds across domains). *)

(** Nanoseconds since process start, monotonically non-decreasing. *)
val now_ns : unit -> float

(** The most recent [now_ns] reading, without touching the OS clock —
    one atomic load.  For coarse consumers (e.g. the flight recorder)
    where slice-granular timestamps suffice and a syscall per event
    would dominate. *)
val cached_ns : unit -> float

(** The gettimeofday origin (seconds since the Unix epoch) that
    [now_ns] is relative to, for correlating with external logs. *)
val epoch_s : unit -> float

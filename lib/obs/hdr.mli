(** HDR-style log-linear latency histogram.

    Each power-of-two octave is split into 128 linear sub-buckets, so
    any reported quantile is within {!rel_error} (~0.78 %) of the exact
    rank statistic of the recorded values — one-sided (never below it)
    — with exact integer resolution below 128 ns.  Recording is O(1)
    and allocation-free; two histograms merge by bucket-wise addition,
    which is how per-domain recorders combine without sharing.

    Not internally synchronised: use per-domain instances or guard with
    a lock (as {!Metrics} does). *)

type t

val create : unit -> t

(** Worst-case relative error of {!quantile} against the exact rank
    statistic (1/128). *)
val rel_error : float

(** [record t v] records [v] (nanoseconds; negatives and NaN clamp to
    0, values are rounded to integer ns). *)
val record : t -> float -> unit

(** [record_n t v n] records [n] occurrences of [v] ([n <= 0]: no-op). *)
val record_n : t -> float -> int -> unit

val count : t -> int

(** Exact sum of recorded values (pre-quantisation). *)
val sum : t -> float

val min_value : t -> float

val max_value : t -> float

val mean : t -> float

(** [quantile t q] for [q] in [0,1]: the highest value of the first
    bucket covering the rank, clamped to the observed min/max.  Within
    {!rel_error} of the exact statistic. *)
val quantile : t -> float -> float

(** [merge_into ~into src] adds every bucket of [src] into [into];
    [src] is unchanged. *)
val merge_into : into:t -> t -> unit

(** Bucket-wise sum as a fresh histogram; commutative. *)
val merge : t -> t -> t

val copy : t -> t

(** Non-empty buckets as [(upper_bound, cumulative_count)], ascending —
    the series behind both quantiles and Prometheus [_bucket] lines. *)
val cumulative : t -> (float * int) list

(** Dependency-free minimal JSON: a writer for the Chrome trace-event
    exporter and a strict parser so tests can validate exported traces
    by parsing them back. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Strict parse of a complete document (trailing garbage is an error).
    Non-ASCII [\u] escapes decode as ['?'] — trace content is ASCII. *)
val of_string : string -> (t, string) result

val member : string -> t -> t option

val to_list : t -> t list option

val to_float : t -> float option

val to_str : t -> string option

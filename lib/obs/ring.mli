(** Preallocated bounded ring buffer for trace events.

    Emission recycles preallocated slots (no allocation per event) and
    is thread-safe.  When full, the oldest events are overwritten and
    counted in {!dropped} — truncation is bounded and never silent. *)

type t

val create : capacity:int -> t

val capacity : t -> int

(** Events currently held (≤ capacity). *)
val length : t -> int

(** Events lost to overflow since creation. *)
val dropped : t -> int

val emit :
  t ->
  ts_ns:float ->
  dur_ns:float ->
  phase:Event.phase ->
  name:string ->
  track:string ->
  cat:string ->
  pid:int ->
  a_key:string ->
  a_val:float ->
  unit

(** Oldest-first traversal over a consistent snapshot. *)
val iter : t -> (Event.t -> unit) -> unit

(** Oldest-first snapshot as a list. *)
val to_list : t -> Event.t list

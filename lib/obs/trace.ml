type session = {
  ring : Ring.t;
  metrics : Metrics.t;
  started_ns : float;
  mutable stopped_ns : float option;
}

(* The enabled flag is split from the session so instrumentation sites
   pay exactly one load+branch when tracing is off — the invariant the
   simulators rely on to leave hooks compiled in unconditionally. *)
let on = ref false

let active : session option ref = ref None

let[@inline] is_on () = !on

let current () = !active

let default_capacity = 1 lsl 16

let start ?(capacity = default_capacity) () =
  (match !active with
   | Some _ -> invalid_arg "obs: a trace session is already active"
   | None -> ());
  let s =
    {
      ring = Ring.create ~capacity;
      metrics = Metrics.create ();
      started_ns = Clock.now_ns ();
      stopped_ns = None;
    }
  in
  active := Some s;
  on := true;
  s

let stop () =
  match !active with
  | None -> None
  | Some s ->
    on := false;
    active := None;
    s.stopped_ns <- Some (Clock.now_ns ());
    Some s

let with_session ?capacity f =
  let s = start ?capacity () in
  let finish () = ignore (stop ()) in
  let r =
    try f ()
    with e ->
      finish ();
      raise e
  in
  finish ();
  r, s

let now_ns = Clock.now_ns

(* ------------------------------------------------------------------ *)
(* Event emission (no-ops when off)                                    *)
(* ------------------------------------------------------------------ *)

let emit ~phase ~track ~cat ~pid ~arg ~name ~ts_ns ~dur_ns =
  match !active with
  | None -> ()
  | Some s ->
    let a_key, a_val = match arg with None -> "", 0.0 | Some (k, v) -> k, v in
    Ring.emit s.ring ~ts_ns ~dur_ns ~phase ~name ~track ~cat ~pid ~a_key ~a_val

let span ~track ?(cat = "span") ?(pid = Event.wall_pid) ?arg ~name ~ts_ns ~dur_ns () =
  if !on then emit ~phase:Event.Span ~track ~cat ~pid ~arg ~name ~ts_ns ~dur_ns

let instant ~track ?(cat = "instant") ?(pid = Event.wall_pid) ?arg name =
  if !on then emit ~phase:Event.Instant ~track ~cat ~pid ~arg ~name ~ts_ns:(Clock.now_ns ()) ~dur_ns:0.0

let counter ~track ?(cat = "counter") ?(pid = Event.wall_pid) ?ts_ns ~name value =
  if !on then begin
    let ts_ns = match ts_ns with Some t -> t | None -> Clock.now_ns () in
    emit ~phase:Event.Counter ~track ~cat ~pid ~arg:(Some ("value", value)) ~name ~ts_ns
      ~dur_ns:0.0
  end

let with_span ~track ?(cat = "span") ?(pid = Event.wall_pid) name f =
  if not !on then f ()
  else begin
    let t0 = Clock.now_ns () in
    let finish () =
      let t1 = Clock.now_ns () in
      emit ~phase:Event.Span ~track ~cat ~pid ~arg:None ~name ~ts_ns:t0 ~dur_ns:(t1 -. t0)
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Metrics (no-ops when off)                                           *)
(* ------------------------------------------------------------------ *)

let add_metric name v = match !active with None -> () | Some s -> Metrics.add s.metrics name v

let incr_metric name = match !active with None -> () | Some s -> Metrics.incr s.metrics name

let observe_ns name v =
  match !active with None -> () | Some s -> Metrics.observe s.metrics name v

let high_water name v =
  match !active with None -> () | Some s -> Metrics.high_water s.metrics name v

(* ------------------------------------------------------------------ *)
(* Thread identity for the preemptive simulator                        *)
(* ------------------------------------------------------------------ *)

let label_key : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "")

let set_thread_label name = Domain.DLS.set label_key name

let thread_label () =
  match Domain.DLS.get label_key with
  | "" -> Printf.sprintf "domain-%d" (Domain.self () :> int)
  | l -> l

(* Prometheus text exposition (format 0.0.4) over a Metrics.snapshot.

   Metric keys follow the in-tree convention "family.parts:instance"
   (e.g. "kernel.self_ns:farrow0", "queue.blocked_put:bitonic/net3"):
   the part before ':' becomes the metric family (dots mapped to
   underscores, "cgsim_" namespace prefixed), the part after it becomes
   an {id="..."} label, so per-kernel/per-net series aggregate the way
   PromQL expects.  Counters get the _total suffix, gauges render
   as-is, histograms emit the full _bucket/_sum/_count series with
   cumulative counts and a +Inf bucket — the HDR buckets of Obs.Hdr
   are already cumulative upper bounds, which is exactly the le
   contract.

   [validate] is the strict parser CI runs over every exposition the
   tools write: line shapes, name/label syntax, declared types, bucket
   monotonicity and +Inf/_count agreement all checked. *)

let default_namespace = "cgsim_"

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok = if i = 0 then is_name_start c else is_name_char c in
      if not ok then Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  if s = "" then "_" else s

(* "family.parts:instance" -> sanitized family, optional instance. *)
let split_key key =
  match String.index_opt key ':' with
  | None -> sanitize key, None
  | Some i ->
    let base = String.sub key 0 i in
    let id = String.sub key (i + 1) (String.length key - i - 1) in
    sanitize base, if id = "" then None else Some id

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let labels_string = function
  | None -> ""
  | Some id -> Printf.sprintf "{id=\"%s\"}" (escape_label id)

(* le needs an extra label spot inside an existing (or empty) set. *)
let labels_with_le id le =
  match id with
  | None -> Printf.sprintf "{le=\"%s\"}" le
  | Some id -> Printf.sprintf "{id=\"%s\",le=\"%s\"}" (escape_label id) le

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.9g" f
  else if f > 0.0 then "+Inf"
  else if f < 0.0 then "-Inf"
  else "NaN"

(* Group snapshot entries family-first so each family gets exactly one
   # TYPE line; first-encounter order (snapshot is name-sorted). *)
let group_by_family entries =
  let order = ref [] in
  let table : (string, (string option * 'a) list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (key, payload) ->
      let family, id = split_key key in
      match Hashtbl.find_opt table family with
      | Some cell -> cell := (id, payload) :: !cell
      | None ->
        Hashtbl.add table family (ref [ id, payload ]);
        order := family :: !order)
    entries;
  List.rev_map (fun family -> family, List.rev !(Hashtbl.find table family)) !order

let of_snapshot ?(namespace = default_namespace) (s : Metrics.snapshot) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (family, series) ->
      let name = namespace ^ family ^ "_total" in
      line "# TYPE %s counter" name;
      List.iter
        (fun (id, (c : Metrics.counter_snapshot)) ->
          line "%s%s %s" name (labels_string id) (number c.Metrics.total))
        series)
    (group_by_family (List.map (fun (c : Metrics.counter_snapshot) -> c.Metrics.c_name, c) s.Metrics.counters));
  List.iter
    (fun (family, series) ->
      let name = namespace ^ family in
      line "# TYPE %s gauge" name;
      List.iter
        (fun (id, (g : Metrics.gauge_snapshot)) ->
          line "%s%s %s" name (labels_string id) (number g.Metrics.peak))
        series)
    (group_by_family (List.map (fun (g : Metrics.gauge_snapshot) -> g.Metrics.g_name, g) s.Metrics.gauges));
  List.iter
    (fun (family, series) ->
      let name = namespace ^ family in
      line "# TYPE %s histogram" name;
      List.iter
        (fun (id, (h : Metrics.histo_snapshot)) ->
          List.iter
            (fun (bound, cum) -> line "%s_bucket%s %d" name (labels_with_le id (number bound)) cum)
            h.Metrics.cumulative;
          line "%s_bucket%s %d" name (labels_with_le id "+Inf") h.Metrics.count;
          line "%s_sum%s %s" name (labels_string id) (number h.Metrics.sum);
          line "%s_count%s %d" name (labels_string id) h.Metrics.count)
        series)
    (group_by_family (List.map (fun (h : Metrics.histo_snapshot) -> h.Metrics.h_name, h) s.Metrics.histograms));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Strict validation                                                   *)
(* ------------------------------------------------------------------ *)

type sample = { s_name : string; s_labels : (string * string) list; s_value : float }

exception Bad of string

let failv fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let parse_metric_name line pos =
  let n = String.length line in
  let start = !pos in
  if !pos >= n || not (is_name_start line.[!pos]) then failv "expected metric name";
  while !pos < n && is_name_char line.[!pos] do
    incr pos
  done;
  String.sub line start (!pos - start)

let parse_labels line pos =
  let n = String.length line in
  if !pos < n && line.[!pos] = '{' then begin
    incr pos;
    let labels = ref [] in
    let rec one () =
      let k = parse_metric_name line pos in
      if !pos + 1 >= n || line.[!pos] <> '=' || line.[!pos + 1] <> '"' then
        failv "label %s: expected =\"" k;
      pos := !pos + 2;
      let b = Buffer.create 16 in
      let rec scan () =
        if !pos >= n then failv "unterminated label value"
        else
          match line.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            if !pos + 1 >= n then failv "truncated escape";
            (match line.[!pos + 1] with
             | '\\' -> Buffer.add_char b '\\'
             | '"' -> Buffer.add_char b '"'
             | 'n' -> Buffer.add_char b '\n'
             | c -> failv "bad escape \\%c" c);
            pos := !pos + 2;
            scan ()
          | c ->
            Buffer.add_char b c;
            incr pos;
            scan ()
      in
      scan ();
      labels := (k, Buffer.contents b) :: !labels;
      if !pos < n && line.[!pos] = ',' then begin
        incr pos;
        one ()
      end
      else if !pos < n && line.[!pos] = '}' then incr pos
      else failv "expected , or } in labels"
    in
    one ();
    List.rev !labels
  end
  else []

let parse_value s =
  match String.trim s with
  | "+Inf" -> infinity
  | "-Inf" -> neg_infinity
  | "NaN" -> nan
  | t -> (match float_of_string_opt t with Some f -> f | None -> failv "bad value %S" t)

let parse_sample line =
  let pos = ref 0 in
  let name = parse_metric_name line pos in
  let labels = parse_labels line pos in
  let n = String.length line in
  if !pos >= n || line.[!pos] <> ' ' then failv "expected space before value";
  let value = parse_value (String.sub line !pos (n - !pos)) in
  { s_name = name; s_labels = labels; s_value = value }

(* The family a sample belongs to, given the declared types. *)
let family_of types name =
  if Hashtbl.mem types name then Some name
  else
    let strip suffix =
      let ls = String.length suffix and ln = String.length name in
      if ln > ls && String.sub name (ln - ls) ls = suffix then
        let f = String.sub name 0 (ln - ls) in
        if Hashtbl.find_opt types f = Some "histogram" then Some f else None
      else None
    in
    match strip "_bucket" with
    | Some f -> Some f
    | None -> (match strip "_sum" with Some f -> Some f | None -> strip "_count")

let validate text =
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  (* (family, non-le labels) -> buckets in order, sum seen, count value *)
  let hists : (string * (string * string) list, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let counts : (string * (string * string) list, float) Hashtbl.t = Hashtbl.create 16 in
  let sums : (string * (string * string) list, unit) Hashtbl.t = Hashtbl.create 16 in
  try
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let err fmt = Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "line %d: %s" lineno m))) fmt in
        let line = if String.length line > 0 && line.[String.length line - 1] = '\r' then String.sub line 0 (String.length line - 1) else line in
        if line = "" then ()
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.split_on_char ' ' (String.sub line 7 (String.length line - 7)) with
          | [ name; ty ] ->
            if not (String.length name > 0 && is_name_start name.[0] && String.for_all is_name_char name) then
              err "bad metric name %S" name;
            if not (List.mem ty [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]) then
              err "bad type %S" ty;
            if Hashtbl.mem types name then err "duplicate TYPE for %s" name;
            Hashtbl.add types name ty
          | _ -> err "malformed # TYPE line"
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then ()
        else if String.length line >= 1 && line.[0] = '#' then err "unexpected comment %S" line
        else begin
          let s = try parse_sample line with Bad m -> err "%s" m in
          match family_of types s.s_name with
          | None -> err "sample %s has no preceding # TYPE" s.s_name
          | Some family ->
            let is_suffix suffix =
              let ls = String.length suffix and ln = String.length s.s_name in
              ln > ls && String.sub s.s_name (ln - ls) ls = suffix
              && Hashtbl.find_opt types family = Some "histogram"
            in
            if Hashtbl.find_opt types family = Some "histogram" then begin
              let base_labels = List.filter (fun (k, _) -> k <> "le") s.s_labels in
              if is_suffix "_bucket" then begin
                let le =
                  match List.assoc_opt "le" s.s_labels with
                  | Some le -> parse_value le
                  | None -> err "%s_bucket without le label" family
                in
                let key = family, base_labels in
                let cell =
                  match Hashtbl.find_opt hists key with
                  | Some c -> c
                  | None ->
                    let c = ref [] in
                    Hashtbl.add hists key c;
                    c
                in
                (match !cell with
                 | (prev_le, prev_cum) :: _ ->
                   if not (le > prev_le) then err "%s buckets not in ascending le order" family;
                   if s.s_value < prev_cum then err "%s bucket counts not cumulative" family
                 | [] -> ());
                cell := (le, s.s_value) :: !cell
              end
              else if is_suffix "_count" then Hashtbl.replace counts (family, base_labels) s.s_value
              else if is_suffix "_sum" then Hashtbl.replace sums (family, base_labels) ()
              else err "histogram %s has stray sample %s" family s.s_name
            end
        end)
      lines;
    Hashtbl.iter
      (fun (family, labels) cell ->
        (match !cell with
         | (le, cum) :: _ ->
           if le <> infinity then failv "%s: bucket series does not end with +Inf" family
           else begin
             match Hashtbl.find_opt counts (family, labels) with
             | Some c when c = cum -> ()
             | Some c -> failv "%s: +Inf bucket %g but _count %g" family cum c
             | None -> failv "%s: _bucket without _count" family
           end
         | [] -> ());
        if not (Hashtbl.mem sums (family, labels)) then failv "%s: _bucket without _sum" family)
      hists;
    Ok ()
  with Bad m -> Error m

(* HDR-style log-linear histogram.

   The log2-bucket histogram that used to back Obs.Metrics answers
   "which power of two" — a p99 of 1.7 µs and one of 3.3 µs land in the
   same bucket.  Production latency work (pool.request, the loadtest
   percentiles) needs quantiles with a bounded RELATIVE error, which is
   what the log-linear layout gives: every power-of-two octave is split
   into [sub_count] equal-width linear sub-buckets, so the bucket width
   is always at most value/sub_count.

   Values are recorded as non-negative integer nanoseconds.  Buckets:

   - n in [0, sub_count): bucket n exactly (integer resolution, zero
     quantisation error);
   - n >= sub_count with top bit at position msb: the octave is split
     into sub_count buckets of width 2^(msb - sub_bits); the reported
     representative is the HIGHEST value of the bucket, so the relative
     error of any quantile is < 1/sub_count (~0.78 %), one-sided (never
     under-reports).

   Recording is O(1) (two float ops and an array increment), the layout
   is a plain int array, and two histograms with the same layout merge
   by bucket-wise addition — each pool domain records into its own
   histogram with no synchronisation and the pool merges at join time.
   The structure itself is NOT thread-safe; share it only under a lock
   (Obs.Metrics does) or per-domain. *)

let sub_bits = 7

let sub_count = 1 lsl sub_bits (* 128 linear sub-buckets per octave *)

(* Worst-case relative error of a reported quantile vs the exact rank
   statistic of the recorded integers: below [sub_count] buckets are
   exact, above it the bucket width over its lowest value is bounded by
   1/sub_count. *)
let rel_error = 1.0 /. float_of_int sub_count

(* Highest representable msb for an OCaml int is 62; octave index
   o = msb - sub_bits + 1 <= 56. *)
let n_buckets = ((62 - sub_bits + 1) * sub_count) + sub_count

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  {
    counts = Array.make n_buckets 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let msb_of n = snd (Float.frexp (float_of_int n)) - 1

let index_of n =
  if n < sub_count then n
  else begin
    let msb = msb_of n in
    let octave = msb - sub_bits + 1 in
    let sub = (n lsr (msb - sub_bits)) - sub_count in
    (octave * sub_count) + sub
  end

(* Highest value mapping to bucket [i] (the reported representative). *)
let value_of i =
  if i < sub_count then float_of_int i
  else begin
    let octave = i / sub_count in
    let sub = i mod sub_count in
    let shift = octave - 1 in
    float_of_int (((sub + sub_count + 1) lsl shift) - 1)
  end

let record_n t v n =
  if n > 0 then begin
    let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
    (* Clamp above max_int so the float->int conversion stays defined;
       4e18 ns is ~127 years, far past any latency we record. *)
    let i = index_of (int_of_float (Float.round (Float.min v 4.0e18))) in
    t.counts.(i) <- t.counts.(i) + n;
    t.count <- t.count + n;
    t.sum <- t.sum +. (v *. float_of_int n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v 1

let count t = t.count

let sum t = t.sum

let min_value t = if t.count = 0 then 0.0 else t.min_v

let max_value t = if t.count = 0 then 0.0 else t.max_v

let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let quantile t q =
  if t.count = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = max 1 (min t.count rank) in
    let cum = ref 0 and i = ref 0 and found = ref (-1) in
    while !found < 0 && !i < n_buckets do
      cum := !cum + t.counts.(!i);
      if !cum >= rank then found := !i;
      incr i
    done;
    let v = if !found < 0 then t.max_v else value_of !found in
    Float.min t.max_v (Float.max t.min_v v)
  end

let merge_into ~into src =
  Array.iteri (fun i n -> if n > 0 then into.counts.(i) <- into.counts.(i) + n) src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let copy t =
  let c = create () in
  merge_into ~into:c t;
  c

(* Non-empty buckets as (upper bound, cumulative count), ascending —
   the shape both quantile readers and the Prometheus [_bucket] series
   consume. *)
let cumulative t =
  let acc = ref [] and cum = ref 0 in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        cum := !cum + n;
        acc := (value_of i, !cum) :: !acc
      end)
    t.counts;
  List.rev !acc

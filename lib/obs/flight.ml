(* Always-on flight recorder.

   The trace session (Obs.Trace) answers "record everything while I
   watch"; production failures happen when nobody is watching.  The
   flight recorder is the other half: a tiny per-domain ring of coarse
   events (scheduler slices, parks, stops, pool requests, fault
   injections) that runs permanently — tracing on or off — and is
   snapshotted into failure outcomes, so a Deadline_exceeded or
   Kernel_failed that reaches an operator carries its own last-N-events
   context.

   Cost discipline, in order of importance:
   - [note] never allocates: the ring is struct-of-arrays (float/int/
     string slots written in place) and callers pass pre-existing
     strings (fiber names, port names), never Printf results.
   - One ring per domain via Domain.DLS: a single writer each, no locks,
     no contention.  Snapshots read the writer's own ring (the failing
     domain snapshots itself at the failure site), so no cross-domain
     reads race with writes.
   - Events are emitted at scheduler/supervision granularity (a slice,
     a park, a request), never per element, keeping the overhead on the
     Table 2 micro path well under 2 %.

   [set_enabled false] exists for overhead A/B measurements; the check
   is one Atomic.get on the note path. *)

type kind =
  | Slice  (* a fiber ran one scheduler slice; arg = duration ns *)
  | Park  (* a fiber suspended on a queue *)
  | Wake
  | Stop  (* scheduler stop token set; name = reason *)
  | Body_raise  (* a kernel body raised; name = kernel instance *)
  | Request  (* pool request started; arg = request id *)
  | Retry  (* pool retry; arg = attempt number *)
  | Breaker  (* pool circuit breaker opened *)
  | Fault  (* fault plan injected; name = port *)
  | Note  (* free-form *)

let kind_to_string = function
  | Slice -> "slice"
  | Park -> "park"
  | Wake -> "wake"
  | Stop -> "stop"
  | Body_raise -> "raise"
  | Request -> "request"
  | Retry -> "retry"
  | Breaker -> "breaker"
  | Fault -> "fault"
  | Note -> "note"

type entry = { fl_ts_ns : float; fl_kind : kind; fl_name : string; fl_arg : float }

let default_capacity = 256

(* Struct-of-arrays ring: writing an event is four array stores and an
   index bump, no allocation (floats unbox into float arrays). *)
type ring = {
  ts : float array;
  kinds : kind array;
  names : string array;
  args : float array;
  mutable next : int;  (* total events ever noted on this domain *)
}

let ring_key : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        ts = Array.make default_capacity 0.0;
        kinds = Array.make default_capacity Note;
        names = Array.make default_capacity "";
        args = Array.make default_capacity 0.0;
        next = 0;
      })

let enabled = Atomic.make true

let set_enabled b = Atomic.set enabled b

let is_enabled () = Atomic.get enabled

let capacity = default_capacity

(* [note_at] writes the ring with a caller-supplied timestamp; [note]
   uses the cached clock (one atomic load, no syscall) — the scheduler
   refreshes the real clock twice per slice, which is exactly the
   granularity flight events are emitted at.  default_capacity is a
   power of two, so the index wrap is a mask, not a division. *)
let note_at ~ts kind ?(arg = 0.0) name =
  if Atomic.get enabled then begin
    let r = Domain.DLS.get ring_key in
    let i = r.next land (default_capacity - 1) in
    r.ts.(i) <- ts;
    r.kinds.(i) <- kind;
    r.names.(i) <- name;
    r.args.(i) <- arg;
    r.next <- r.next + 1
  end

let note kind ?arg name = note_at ~ts:(Clock.cached_ns ()) kind ?arg name

(* Oldest-first window of the CURRENT domain's ring.  Failure paths call
   this on the domain that hit the failure, which is also the ring's
   only writer, so the read is race-free. *)
let snapshot () =
  let r = Domain.DLS.get ring_key in
  let n = min r.next default_capacity in
  let first = r.next - n in
  List.init n (fun i ->
      let j = (first + i) mod default_capacity in
      { fl_ts_ns = r.ts.(j); fl_kind = r.kinds.(j); fl_name = r.names.(j); fl_arg = r.args.(j) })

let noted () = (Domain.DLS.get ring_key).next

let clear () =
  let r = Domain.DLS.get ring_key in
  r.next <- 0

let pp_entry ppf e =
  Format.fprintf ppf "%10.0f %-8s %s" e.fl_ts_ns (kind_to_string e.fl_kind) e.fl_name;
  if e.fl_arg <> 0.0 then Format.fprintf ppf " (%g)" e.fl_arg

let render entries =
  let b = Buffer.create 256 in
  List.iter (fun e -> Buffer.add_string b (Format.asprintf "%a\n" pp_entry e)) entries;
  Buffer.contents b

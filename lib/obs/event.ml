type phase =
  | Span  (* has a duration; Chrome "X" complete event *)
  | Instant  (* Chrome "i" *)
  | Counter  (* Chrome "C"; value in [a_val] *)

type t = {
  mutable ts_ns : float;
  mutable dur_ns : float;
  mutable phase : phase;
  mutable name : string;
  mutable track : string;
  mutable cat : string;
  mutable pid : int;
  mutable a_key : string;  (* "" means no argument *)
  mutable a_val : float;
}

let wall_pid = 1

let virtual_pid = 2

let make_empty () =
  {
    ts_ns = 0.0;
    dur_ns = 0.0;
    phase = Instant;
    name = "";
    track = "";
    cat = "";
    pid = wall_pid;
    a_key = "";
    a_val = 0.0;
  }

let copy e =
  {
    ts_ns = e.ts_ns;
    dur_ns = e.dur_ns;
    phase = e.phase;
    name = e.name;
    track = e.track;
    cat = e.cat;
    pid = e.pid;
    a_key = e.a_key;
    a_val = e.a_val;
  }

let phase_to_string = function Span -> "X" | Instant -> "i" | Counter -> "C"

let pp ppf e =
  match e.phase with
  | Span ->
    Format.fprintf ppf "[%s] %s %s @%.0fns +%.0fns" e.track e.cat e.name e.ts_ns e.dur_ns
  | Instant -> Format.fprintf ppf "[%s] %s %s @%.0fns" e.track e.cat e.name e.ts_ns
  | Counter -> Format.fprintf ppf "[%s] %s %s=%g @%.0fns" e.track e.cat e.name e.a_val e.ts_ns

(** Prometheus text exposition (format 0.0.4) over a
    {!Metrics.snapshot}, plus the strict parser CI uses to validate
    every exposition the tools write.

    Metric keys follow the in-tree convention ["family.parts:instance"]
    (e.g. ["kernel.self_ns:farrow0"]): the part before [':'] becomes the
    metric family (dots mapped to underscores, namespace prefixed), the
    part after it an [{id="..."}] label.  Counters get the [_total]
    suffix; histograms emit cumulative [_bucket{le=...}] series ending
    in [+Inf], then [_sum] and [_count]. *)

(** ["cgsim_"] — prefixed to every family name. *)
val default_namespace : string

(** Render a snapshot as exposition text, one [# TYPE] line per
    family. *)
val of_snapshot : ?namespace:string -> Metrics.snapshot -> string

(** Strict validation: line shapes, metric-name and label syntax,
    samples preceded by their [# TYPE], histogram buckets in ascending
    [le] order with non-decreasing cumulative counts ending in a [+Inf]
    bucket that equals [_count], and [_sum] present.  Returns the first
    violation. *)
val validate : string -> (unit, string) result

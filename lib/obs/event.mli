(** Typed trace events.

    The event vocabulary is the intersection of what the three
    simulators need and what the Chrome trace-event format can render:
    spans (slices with a duration), instants and counter samples.  Every
    event carries a [track] (the fiber, OS thread or aiesim tile lane it
    belongs to) and a [pid] namespace separating wall-clock time from
    aiesim's virtual cycle time, so a cgsim run and its replay can sit
    side by side in one Perfetto view without their timelines mixing. *)

type phase =
  | Span  (** [dur_ns] long; exported as a Chrome "X" complete event. *)
  | Instant
  | Counter  (** Sampled value in [a_val]. *)

type t = {
  mutable ts_ns : float;  (** Start time, ns on the owning timeline. *)
  mutable dur_ns : float;  (** Span length; 0 otherwise. *)
  mutable phase : phase;
  mutable name : string;
  mutable track : string;  (** Fiber / thread / tile lane. *)
  mutable cat : string;  (** "sched", "queue", "kernel", "thread", "sim", … *)
  mutable pid : int;  (** {!wall_pid} or {!virtual_pid}. *)
  mutable a_key : string;  (** Optional argument key; [""] = none. *)
  mutable a_val : float;
}

(** Process id for wall-clock events (cgsim, x86sim, host code). *)
val wall_pid : int

(** Process id for virtual-time events (the aiesim replay; timestamps
    are cycles converted to ns at the modelled clock). *)
val virtual_pid : int

(** A zeroed event (ring-buffer slot initialisation). *)
val make_empty : unit -> t

(** Deep copy (ring slots are recycled; export snapshots copy out). *)
val copy : t -> t

val phase_to_string : phase -> string

val pp : Format.formatter -> t -> unit

exception Eval_error of Srcloc.range * string

let fail range fmt = Format.kasprintf (fun s -> raise (Eval_error (range, s))) fmt

type value =
  | V_int of int
  | V_float of float
  | V_bool of bool
  | V_str of string
  | V_conn of Cgsim.Builder.conn
  | V_tuple of value list
  | V_unit

let value_kind = function
  | V_int _ -> "int"
  | V_float _ -> "float"
  | V_bool _ -> "bool"
  | V_str _ -> "string"
  | V_conn _ -> "IoConnector"
  | V_tuple _ -> "tuple"
  | V_unit -> "void"

(* Mutable evaluation scope (lexical chain). *)
type scope = {
  vars : (string, value ref) Hashtbl.t;
  parent : scope option;
}

let new_scope parent = { vars = Hashtbl.create 8; parent }

let rec lookup scope name =
  match Hashtbl.find_opt scope.vars name with
  | Some r -> Some r
  | None -> (match scope.parent with Some p -> lookup p name | None -> None)

exception Return_value of value

(* ------------------------------------------------------------------ *)
(* Constant expressions shared by globals and graph lambdas            *)
(* ------------------------------------------------------------------ *)

let as_int range = function
  | V_int i -> i
  | V_bool b -> if b then 1 else 0
  | v -> fail range "expected an integer, got %s" (value_kind v)

let as_bool range = function
  | V_bool b -> b
  | V_int i -> i <> 0
  | v -> fail range "expected a boolean, got %s" (value_kind v)

let arith range op a b =
  match a, b, op with
  | V_int x, V_int y, "+" -> V_int (x + y)
  | V_int x, V_int y, "-" -> V_int (x - y)
  | V_int x, V_int y, "*" -> V_int (x * y)
  | V_int x, V_int y, "/" ->
    if y = 0 then fail range "division by zero in constant expression" else V_int (x / y)
  | V_int x, V_int y, "%" ->
    if y = 0 then fail range "modulo by zero in constant expression" else V_int (x mod y)
  | V_int x, V_int y, "<<" -> V_int (x lsl y)
  | V_int x, V_int y, ">>" -> V_int (x asr y)
  | V_int x, V_int y, "&" -> V_int (x land y)
  | V_int x, V_int y, "|" -> V_int (x lor y)
  | V_int x, V_int y, "^" -> V_int (x lxor y)
  | V_int x, V_int y, "<" -> V_bool (x < y)
  | V_int x, V_int y, ">" -> V_bool (x > y)
  | V_int x, V_int y, "<=" -> V_bool (x <= y)
  | V_int x, V_int y, ">=" -> V_bool (x >= y)
  | V_int x, V_int y, "==" -> V_bool (x = y)
  | V_int x, V_int y, "!=" -> V_bool (x <> y)
  | (V_float _ | V_int _), (V_float _ | V_int _), _ -> begin
    let fx = match a with V_float f -> f | V_int i -> float_of_int i | _ -> assert false in
    let fy = match b with V_float f -> f | V_int i -> float_of_int i | _ -> assert false in
    match op with
    | "+" -> V_float (fx +. fy)
    | "-" -> V_float (fx -. fy)
    | "*" -> V_float (fx *. fy)
    | "/" -> V_float (fx /. fy)
    | "<" -> V_bool (fx < fy)
    | ">" -> V_bool (fx > fy)
    | "<=" -> V_bool (fx <= fy)
    | ">=" -> V_bool (fx >= fy)
    | "==" -> V_bool (fx = fy)
    | "!=" -> V_bool (fx <> fy)
    | _ -> fail range "operator %s is not usable on floats in constant expressions" op
  end
  | V_bool x, V_bool y, "&&" -> V_bool (x && y)
  | V_bool x, V_bool y, "||" -> V_bool (x || y)
  | V_str x, V_str y, "==" -> V_bool (String.equal x y)
  | V_str x, V_str y, "!=" -> V_bool (not (String.equal x y))
  | _ -> fail range "operator %s cannot combine %s and %s" op (value_kind a) (value_kind b)

(* ------------------------------------------------------------------ *)
(* Graph evaluation                                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  env : Sema.env;
  builder : Cgsim.Builder.t;
  globals_cache : (string, value) Hashtbl.t;
}

let rec eval_global ctx range name =
  match Hashtbl.find_opt ctx.globals_cache name with
  | Some v -> v
  | None ->
    let v =
      match Sema.find ctx.env name with
      | Some (Sema.E_global { quals; init = Some init; _ })
        when List.mem "constexpr" quals || List.mem "const" quals ->
        eval_const_expr ctx init
      | Some (Sema.E_global _) ->
        fail range "%s is not a constexpr value usable at graph-construction time" name
      | Some (Sema.E_define body) -> begin
        (* Parse the macro body as an expression once. *)
        match int_of_string_opt body with
        | Some i -> V_int i
        | None -> begin
          match float_of_string_opt body with
          | Some f -> V_float f
          | None -> V_str body
        end
      end
      | Some _ -> fail range "%s cannot be evaluated as a constant" name
      | None -> fail range "unknown name %s in constant expression" name
    in
    Hashtbl.replace ctx.globals_cache name v;
    v

and eval_const_expr ctx (e : Ast.expr) : value =
  match e.Ast.e_desc with
  | Ast.Int_lit i -> V_int i
  | Ast.Float_lit f -> V_float f
  | Ast.Str_lit s -> V_str s
  | Ast.Bool_lit b -> V_bool b
  | Ast.Ident name -> eval_global ctx e.Ast.e_range name
  | Ast.Binop (op, a, b) ->
    arith e.Ast.e_range op (eval_const_expr ctx a) (eval_const_expr ctx b)
  | Ast.Unop ("-", a) -> begin
    match eval_const_expr ctx a with
    | V_int i -> V_int (-i)
    | V_float f -> V_float (-.f)
    | v -> fail e.Ast.e_range "cannot negate %s" (value_kind v)
  end
  | Ast.Unop ("!", a) -> V_bool (not (as_bool e.Ast.e_range (eval_const_expr ctx a)))
  | Ast.Cond (c, t, f) ->
    if as_bool e.Ast.e_range (eval_const_expr ctx c) then eval_const_expr ctx t
    else eval_const_expr ctx f
  | Ast.Cast (_, x) -> eval_const_expr ctx x
  | _ -> fail e.Ast.e_range "unsupported construct in constant expression"

(* Resolve the kernel for a CGC kernel definition: prefer a registered
   executable twin with a matching signature; otherwise register a
   placeholder so the graph can be frozen and extracted. *)
let kernel_of_cgc ctx (k : Ast.kernel) : Cgsim.Kernel.t =
  let ports = Sema.ports_of_kernel ctx.env k in
  let realm =
    match Cgsim.Kernel.realm_of_string k.Ast.k_realm with
    | Some r -> r
    | None -> fail k.Ast.k_range "unknown realm %s" k.Ast.k_realm
  in
  match Cgsim.Registry.find k.Ast.k_name with
  | Some twin ->
    let twin_ports = Array.to_list twin.Cgsim.Kernel.ports in
    if List.length twin_ports <> List.length ports then
      fail k.Ast.k_range
        "kernel %s: CGC declaration has %d ports but the registered implementation has %d"
        k.Ast.k_name (List.length ports) (List.length twin_ports);
    List.iteri
      (fun i (spec : Cgsim.Kernel.port_spec) ->
        let t = List.nth twin_ports i in
        if spec.Cgsim.Kernel.dir <> t.Cgsim.Kernel.dir then
          fail k.Ast.k_range "kernel %s port %s: direction differs from the registered twin"
            k.Ast.k_name spec.Cgsim.Kernel.pname;
        if not (Cgsim.Dtype.equal spec.Cgsim.Kernel.dtype t.Cgsim.Kernel.dtype) then
          fail k.Ast.k_range "kernel %s port %s: dtype %s differs from the registered twin's %s"
            k.Ast.k_name spec.Cgsim.Kernel.pname
            (Cgsim.Dtype.to_string spec.Cgsim.Kernel.dtype)
            (Cgsim.Dtype.to_string t.Cgsim.Kernel.dtype);
        (* Settings compare after defaulting: an unset transport resolves
           to Stream, so KernelReadPort<T> matches a twin that left its
           settings implicit — but windows, sizes and RTP must agree. *)
        let same_transport =
          match
            Cgsim.Settings.resolved_transport spec.Cgsim.Kernel.settings,
            Cgsim.Settings.resolved_transport t.Cgsim.Kernel.settings
          with
          | Cgsim.Settings.Stream, Cgsim.Settings.Stream
          | Cgsim.Settings.Rtp, Cgsim.Settings.Rtp
          | Cgsim.Settings.Gmio, Cgsim.Settings.Gmio ->
            true
          | Cgsim.Settings.Window a, Cgsim.Settings.Window b -> a = b
          | ( Cgsim.Settings.Stream | Cgsim.Settings.Window _ | Cgsim.Settings.Rtp
            | Cgsim.Settings.Gmio ),
            _ ->
            false
        in
        if not same_transport then
          fail k.Ast.k_range "kernel %s port %s: transport differs from the registered twin"
            k.Ast.k_name spec.Cgsim.Kernel.pname)
      ports;
    if not (Cgsim.Kernel.equal_realm twin.Cgsim.Kernel.realm realm) then
      fail k.Ast.k_range "kernel %s: realm differs from the registered twin" k.Ast.k_name;
    (* Queue depths are CGC-side tuning, not part of the twin contract:
       a declared <.., DEPTH> argument overlays the twin's port settings
       so the instantiated graph actually gets the declared capacity. *)
    let depths_declared =
      List.exists
        (fun (spec : Cgsim.Kernel.port_spec) ->
          spec.Cgsim.Kernel.settings.Cgsim.Settings.depth <> None)
        ports
    in
    if not depths_declared then twin
    else
      {
        twin with
        Cgsim.Kernel.ports =
          Array.of_list
            (List.mapi
               (fun i (spec : Cgsim.Kernel.port_spec) ->
                 let t = List.nth twin_ports i in
                 match spec.Cgsim.Kernel.settings.Cgsim.Settings.depth with
                 | Some d ->
                   {
                     t with
                     Cgsim.Kernel.settings = Cgsim.Settings.with_depth d t.Cgsim.Kernel.settings;
                   }
                 | None -> t)
               ports);
      }
  | None ->
    let kernel =
      Cgsim.Kernel.define ~realm ~name:k.Ast.k_name ports (fun _ ->
          failwith
            (Printf.sprintf
               "CGC kernel %s has no executable implementation (extraction-only kernel)"
               k.Ast.k_name))
    in
    Cgsim.Registry.register kernel;
    kernel

let rec eval_expr ctx scope (e : Ast.expr) : value =
  match e.Ast.e_desc with
  | Ast.Int_lit i -> V_int i
  | Ast.Float_lit f -> V_float f
  | Ast.Str_lit s -> V_str s
  | Ast.Bool_lit b -> V_bool b
  | Ast.Ident name -> begin
    match lookup scope name with
    | Some r -> !r
    | None -> begin
      match Sema.find ctx.env name with
      | Some (Sema.E_kernel _) ->
        fail e.Ast.e_range "kernel %s must be invoked, not referenced" name
      | Some _ -> eval_global ctx e.Ast.e_range name
      | None -> fail e.Ast.e_range "unknown name %s in graph definition" name
    end
  end
  | Ast.Binop (op, a, b) -> arith e.Ast.e_range op (eval_expr ctx scope a) (eval_expr ctx scope b)
  | Ast.Unop ("-", a) -> begin
    match eval_expr ctx scope a with
    | V_int i -> V_int (-i)
    | V_float f -> V_float (-.f)
    | v -> fail e.Ast.e_range "cannot negate %s" (value_kind v)
  end
  | Ast.Unop ("!", a) -> V_bool (not (as_bool e.Ast.e_range (eval_expr ctx scope a)))
  | Ast.Unop ("++", a) -> begin
    match a.Ast.e_desc with
    | Ast.Ident n -> begin
      match lookup scope n with
      | Some r ->
        r := V_int (as_int e.Ast.e_range !r + 1);
        !r
      | None -> fail e.Ast.e_range "unknown variable %s" n
    end
    | _ -> fail e.Ast.e_range "++ needs a variable"
  end
  | Ast.Incr_post a -> eval_expr ctx scope { e with Ast.e_desc = Ast.Unop ("++", a) }
  | Ast.Decr_post a -> begin
    match a.Ast.e_desc with
    | Ast.Ident n -> begin
      match lookup scope n with
      | Some r ->
        r := V_int (as_int e.Ast.e_range !r - 1);
        !r
      | None -> fail e.Ast.e_range "unknown variable %s" n
    end
    | _ -> fail e.Ast.e_range "-- needs a variable"
  end
  | Ast.Assign ("=", { Ast.e_desc = Ast.Ident n; _ }, rhs) -> begin
    let v = eval_expr ctx scope rhs in
    match lookup scope n with
    | Some r ->
      r := v;
      v
    | None -> fail e.Ast.e_range "assignment to unknown variable %s" n
  end
  | Ast.Assign (op, ({ Ast.e_desc = Ast.Ident _; _ } as lhs), rhs)
    when String.length op = 2 && op.[1] = '=' ->
    let bin = String.sub op 0 1 in
    eval_expr ctx scope
      { e with Ast.e_desc = Ast.Assign ("=", lhs, { e with Ast.e_desc = Ast.Binop (bin, lhs, rhs) }) }
  | Ast.Cond (c, t, f) ->
    if as_bool e.Ast.e_range (eval_expr ctx scope c) then eval_expr ctx scope t
    else eval_expr ctx scope f
  | Ast.Cast (_, x) -> eval_expr ctx scope x
  | Ast.Call (callee, args) -> eval_call ctx scope e.Ast.e_range callee args
  | Ast.Scoped _ -> fail e.Ast.e_range "qualified names are only callable (std::make_tuple)"
  | Ast.Co_await _ -> fail e.Ast.e_range "co_await cannot appear in a graph definition"
  | Ast.Init_list _ -> fail e.Ast.e_range "brace initializers only appear in attach_attributes"
  | Ast.Member _ | Ast.Arrow _ | Ast.Index _ | Ast.Unop _ | Ast.Assign _ ->
    fail e.Ast.e_range "unsupported construct in graph definition"

and eval_call ctx scope range callee args =
  match callee.Ast.e_desc with
  | Ast.Ident "attach_attributes" -> begin
    match args with
    | [ conn_e; { Ast.e_desc = Ast.Init_list pairs; _ } ] -> begin
      match eval_expr ctx scope conn_e with
      | V_conn conn ->
        let attrs =
          List.map
            (fun (pair : Ast.expr) ->
              match pair.Ast.e_desc with
              | Ast.Init_list [ key_e; val_e ] -> begin
                let key =
                  match eval_expr ctx scope key_e with
                  | V_str s -> s
                  | v -> fail pair.Ast.e_range "attribute key must be a string, got %s" (value_kind v)
                in
                match eval_expr ctx scope val_e with
                | V_str s -> Cgsim.Attr.s key s
                | V_int i -> Cgsim.Attr.i key i
                | v -> fail pair.Ast.e_range "attribute value must be string or int, got %s" (value_kind v)
              end
              | _ -> fail pair.Ast.e_range "attributes must be {key, value} pairs")
            pairs
        in
        Cgsim.Builder.attach_attributes ctx.builder conn attrs;
        V_unit
      | v -> fail range "attach_attributes expects a connector, got %s" (value_kind v)
    end
    | _ -> fail range "attach_attributes expects (connector, {{key, value}, ...})"
  end
  | Ast.Ident name when (match Sema.find ctx.env name with Some (Sema.E_kernel _) -> true | _ -> false) -> begin
    match Sema.find ctx.env name with
    | Some (Sema.E_kernel k) ->
      let kernel = kernel_of_cgc ctx k in
      let conns =
        List.map
          (fun a ->
            match eval_expr ctx scope a with
            | V_conn c -> c
            | v -> fail a.Ast.e_range "kernel arguments must be connectors, got %s" (value_kind v))
          args
      in
      ignore (Cgsim.Builder.add_kernel ctx.builder ~src:(Diag.span_of_range range) kernel conns);
      V_unit
    | _ -> assert false
  end
  | Ast.Scoped ([ "std" ], "make_tuple") ->
    V_tuple (List.map (eval_expr ctx scope) args)
  | Ast.Ident name -> fail range "cannot call %s at graph-construction time" name
  | _ -> fail range "unsupported call in graph definition"

and eval_stmts ctx scope stmts = List.iter (eval_stmt ctx scope) stmts

and eval_stmt ctx scope (s : Ast.stmt) =
  match s.Ast.s_desc with
  | Ast.S_decl d -> begin
    match d.Ast.d_type.Ast.t_desc with
    | Ast.Ttemplate ("IoConnector", _) ->
      let dtype = Sema.connector_dtype ctx.env d.Ast.d_type in
      List.iter
        (fun (name, init) ->
          match init with
          | None ->
            Hashtbl.replace scope.vars name
              (ref
                 (V_conn
                    (Cgsim.Builder.net ~src:(Diag.span_of_range s.Ast.s_range) ctx.builder dtype)))
          | Some e -> begin
            match eval_expr ctx scope e with
            | V_conn c -> Hashtbl.replace scope.vars name (ref (V_conn c))
            | v -> fail s.Ast.s_range "connector %s initialized with %s" name (value_kind v)
          end)
        d.Ast.d_vars
    | _ ->
      List.iter
        (fun (name, init) ->
          let v =
            match init with
            | Some e -> eval_expr ctx scope e
            | None -> V_int 0
          in
          Hashtbl.replace scope.vars name (ref v))
        d.Ast.d_vars
  end
  | Ast.S_expr e -> ignore (eval_expr ctx scope e)
  | Ast.S_if (c, t, f) ->
    if as_bool s.Ast.s_range (eval_expr ctx scope c) then eval_stmts ctx (new_scope (Some scope)) t
    else eval_stmts ctx (new_scope (Some scope)) f
  | Ast.S_while (c, body) ->
    let fuel = ref 100000 in
    while as_bool s.Ast.s_range (eval_expr ctx scope c) do
      decr fuel;
      if !fuel <= 0 then fail s.Ast.s_range "graph-construction loop exceeded 100000 iterations";
      eval_stmts ctx (new_scope (Some scope)) body
    done
  | Ast.S_do_while (body, c) ->
    let continue_ = ref true in
    let fuel = ref 100000 in
    while !continue_ do
      decr fuel;
      if !fuel <= 0 then fail s.Ast.s_range "graph-construction loop exceeded 100000 iterations";
      eval_stmts ctx (new_scope (Some scope)) body;
      continue_ := as_bool s.Ast.s_range (eval_expr ctx scope c)
    done
  | Ast.S_for (init, cond, step, body) ->
    let loop_scope = new_scope (Some scope) in
    Option.iter (eval_stmt ctx loop_scope) init;
    let fuel = ref 100000 in
    let check () =
      match cond with
      | None -> true
      | Some c -> as_bool s.Ast.s_range (eval_expr ctx loop_scope c)
    in
    while check () do
      decr fuel;
      if !fuel <= 0 then fail s.Ast.s_range "graph-construction loop exceeded 100000 iterations";
      eval_stmts ctx (new_scope (Some loop_scope)) body;
      Option.iter (fun e -> ignore (eval_expr ctx loop_scope e)) step
    done
  | Ast.S_return e ->
    let v = match e with Some e -> eval_expr ctx scope e | None -> V_unit in
    raise (Return_value v)
  | Ast.S_break | Ast.S_continue ->
    fail s.Ast.s_range "break/continue are not supported in graph definitions"
  | Ast.S_block body -> eval_stmts ctx (new_scope (Some scope)) body

let eval_graph env (g : Ast.graph) : Cgsim.Serialized.t =
  let builder = Cgsim.Builder.create ~name:g.Ast.g_name in
  let ctx = { env; builder; globals_cache = Hashtbl.create 16 } in
  let scope = new_scope None in
  (* Lambda parameters become the graph's global inputs, in order. *)
  List.iter
    (fun (p : Ast.param) ->
      let dtype = Sema.connector_dtype env p.Ast.p_type in
      let conn =
        Cgsim.Builder.input builder ~src:(Diag.span_of_range p.Ast.p_range) ~name:p.Ast.p_name
          dtype
      in
      Hashtbl.replace scope.vars p.Ast.p_name (ref (V_conn conn)))
    g.Ast.g_lambda.Ast.l_params;
  let result =
    match eval_stmts ctx scope g.Ast.g_lambda.Ast.l_body with
    | () -> V_unit
    | exception Return_value v -> v
  in
  let outputs =
    match result with
    | V_tuple vs ->
      List.map
        (function
          | V_conn c -> c
          | v -> fail g.Ast.g_range "graph outputs must be connectors, got %s" (value_kind v))
        vs
    | V_conn c -> [ c ]
    | V_unit -> []
    | v -> fail g.Ast.g_range "graph must return connectors, got %s" (value_kind v)
  in
  List.iteri
    (fun i conn -> Cgsim.Builder.output ctx.builder ~name:(Printf.sprintf "out%d" i) conn)
    outputs;
  Cgsim.Builder.freeze builder

let eval_constant env name =
  let builder = Cgsim.Builder.create ~name:"<constant-eval>" in
  let ctx = { env; builder; globals_cache = Hashtbl.create 4 } in
  eval_global ctx Srcloc.dummy name

(** Diagnostics for the CGC front-end.

    Located front-end failures are raised as {!Error}; rendering routes
    through {!Cgsim.Diagnostic} so CGC errors, validator findings and
    static-analysis findings all read the same. *)

exception Error of Srcloc.range * string

(** Raise a located error. *)
val error : Srcloc.range -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** CGC range to the neutral span type carried by serialized graphs. *)
val span_of_range : Srcloc.range -> Cgsim.Srcspan.t

(** A front-end error as an uncoded error-severity diagnostic. *)
val to_diagnostic : Srcloc.range -> string -> Cgsim.Diagnostic.t

(** Render "file:line:col: error: message" (via {!Cgsim.Diagnostic.render}). *)
val to_string : Srcloc.range -> string -> string

exception Error of Srcloc.range * string

let error range fmt = Format.kasprintf (fun s -> raise (Error (range, s))) fmt

let span_of_range (r : Srcloc.range) =
  Cgsim.Srcspan.make ~file:r.Srcloc.start.Srcloc.file ~line:r.Srcloc.start.Srcloc.line
    ~col:r.Srcloc.start.Srcloc.col ~end_line:r.Srcloc.stop.Srcloc.line
    ~end_col:r.Srcloc.stop.Srcloc.col ()

let to_diagnostic range msg =
  Cgsim.Diagnostic.make ~severity:Cgsim.Diagnostic.Error ~code:""
    ~loc:(span_of_range range) msg

(* Front-end errors carry no code; Diagnostic.render then produces the
   historical "file:line:col: error: message" shape exactly. *)
let to_string range msg = Cgsim.Diagnostic.render (to_diagnostic range msg)

type entry =
  | E_struct of Ast.param list
  | E_func of { quals : string list; ret : Ast.typ; params : Ast.param list }
  | E_global of { quals : string list; typ : Ast.typ; init : Ast.expr option }
  | E_define of string
  | E_kernel of Ast.kernel
  | E_graph of Ast.graph

type env = {
  e_tus : Ast.tu list;
  symbols : (string, entry) Hashtbl.t;
  tu_of : (string, Ast.tu) Hashtbl.t;
  mutable rev_order : string list;
  mutable rev_includes : (string * bool * Ast.tu) list;
}

exception Sema_error of Srcloc.range * string

let fail range fmt = Format.kasprintf (fun s -> raise (Sema_error (range, s))) fmt

let tus env = env.e_tus

let find env name = Hashtbl.find_opt env.symbols name

let defining_tu env name = Hashtbl.find_opt env.tu_of name

let order env = List.rev env.rev_order

let includes env = List.rev env.rev_includes

let kernels env =
  List.filter_map
    (fun name -> match find env name with Some (E_kernel k) -> Some k | _ -> None)
    (order env)

let graphs env =
  List.filter_map
    (fun name -> match find env name with Some (E_graph g) -> Some g | _ -> None)
    (order env)

let define env tu range name entry =
  (match Hashtbl.find_opt env.symbols name with
   | Some _ -> fail range "duplicate definition of %s" name
   | None -> ());
  Hashtbl.add env.symbols name entry;
  Hashtbl.add env.tu_of name tu;
  env.rev_order <- name :: env.rev_order

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec dtype_of_type env (t : Ast.typ) : Cgsim.Dtype.t =
  match t.Ast.t_desc with
  | Ast.Tconst inner | Ast.Tref inner -> dtype_of_type env inner
  | Ast.Tname name -> begin
    match Cgsim.Dtype.of_cpp_spelling name with
    | Some dt -> dt
    | None -> begin
      match find env name with
      | Some (E_struct fields) ->
        Cgsim.Dtype.Struct
          (List.map (fun (f : Ast.param) -> f.Ast.p_name, field_dtype env f.Ast.p_type) fields)
      | _ -> fail t.Ast.t_range "unknown element type %s" name
    end
  end
  | Ast.Tqualified (_, name) -> begin
    match Cgsim.Dtype.of_cpp_spelling name with
    | Some dt -> dt
    | None -> fail t.Ast.t_range "unknown element type %s" name
  end
  | Ast.Ttemplate (name, _) -> fail t.Ast.t_range "template type %s is not a stream element type" name
  | Ast.Tptr _ -> fail t.Ast.t_range "pointer types cannot cross stream ports"
  | Ast.Tarray _ -> fail t.Ast.t_range "array types cannot cross stream ports directly"
  | Ast.Tauto -> fail t.Ast.t_range "auto is not a stream element type"

and field_dtype env (t : Ast.typ) : Cgsim.Dtype.t =
  match t.Ast.t_desc with
  | Ast.Tarray (elem, Some { Ast.e_desc = Ast.Int_lit n; _ }) when n > 0 ->
    Cgsim.Dtype.Vector (dtype_of_type env elem, n)
  | Ast.Tarray (_, _) -> fail t.Ast.t_range "struct array fields need a literal dimension"
  | _ -> dtype_of_type env t

let int_template_arg (t : Ast.targ) range =
  match t with
  | Ast.Ta_expr { Ast.e_desc = Ast.Int_lit n; _ } -> n
  | Ast.Ta_expr _ | Ast.Ta_type _ -> fail range "expected an integer template argument"

let port_of_param env (p : Ast.param) : Cgsim.Kernel.port_spec =
  let range = p.Ast.p_range in
  (* Stream and window port types accept one trailing integer template
     argument declaring the simulation queue depth in elements —
     cgsim's KernelReadPort<T, DEPTH> non-type argument.  Omitted, the
     depth stays unset and resolves to the runtime default. *)
  let depth settings = function
    | [] -> settings
    | [ d ] -> Cgsim.Settings.with_depth (int_template_arg d range) settings
    | _ -> fail range "kernel parameter %s: too many template arguments" p.Ast.p_name
  in
  match p.Ast.p_type.Ast.t_desc with
  | Ast.Ttemplate ("KernelReadPort", Ast.Ta_type elem :: rest) ->
    Cgsim.Kernel.in_port p.Ast.p_name (dtype_of_type env elem)
      ~settings:(depth Cgsim.Settings.stream rest)
  | Ast.Ttemplate ("KernelWritePort", Ast.Ta_type elem :: rest) ->
    Cgsim.Kernel.out_port p.Ast.p_name (dtype_of_type env elem)
      ~settings:(depth Cgsim.Settings.stream rest)
  | Ast.Ttemplate ("KernelWindowReadPort", Ast.Ta_type elem :: bytes :: rest) ->
    Cgsim.Kernel.in_port p.Ast.p_name (dtype_of_type env elem)
      ~settings:(depth (Cgsim.Settings.window (int_template_arg bytes range)) rest)
  | Ast.Ttemplate ("KernelWindowWritePort", Ast.Ta_type elem :: bytes :: rest) ->
    Cgsim.Kernel.out_port p.Ast.p_name (dtype_of_type env elem)
      ~settings:(depth (Cgsim.Settings.window (int_template_arg bytes range)) rest)
  | Ast.Ttemplate ("KernelRtpPort", [ Ast.Ta_type elem ]) ->
    Cgsim.Kernel.in_port p.Ast.p_name (dtype_of_type env elem) ~settings:Cgsim.Settings.rtp
  | Ast.Ttemplate ("KernelGmioReadPort", [ Ast.Ta_type elem ]) ->
    Cgsim.Kernel.in_port p.Ast.p_name (dtype_of_type env elem) ~settings:Cgsim.Settings.gmio
  | Ast.Ttemplate ("KernelGmioWritePort", [ Ast.Ta_type elem ]) ->
    Cgsim.Kernel.out_port p.Ast.p_name (dtype_of_type env elem) ~settings:Cgsim.Settings.gmio
  | Ast.Ttemplate (name, _) ->
    fail range "kernel parameter %s: %s is not a known port type" p.Ast.p_name name
  | _ ->
    fail range "kernel parameter %s must be a Kernel*Port<...> type" p.Ast.p_name

let ports_of_kernel env (k : Ast.kernel) = List.map (port_of_param env) k.Ast.k_params

let connector_dtype env (t : Ast.typ) =
  match t.Ast.t_desc with
  | Ast.Ttemplate ("IoConnector", [ Ast.Ta_type elem ]) -> dtype_of_type env elem
  | _ -> fail t.Ast.t_range "expected IoConnector<T>"

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let analyze (tus : Ast.tu list) =
  let env =
    {
      e_tus = tus;
      symbols = Hashtbl.create 64;
      tu_of = Hashtbl.create 64;
      rev_order = [];
      rev_includes = [];
    }
  in
  List.iter
    (fun (tu : Ast.tu) ->
      List.iter
        (fun item ->
          match item with
          | Ast.T_include { path; system; _ } ->
            env.rev_includes <- (path, system, tu) :: env.rev_includes
          | Ast.T_pragma _ -> ()
          | Ast.T_define { name; body; range } -> define env tu range name (E_define body)
          | Ast.T_struct { name; fields; range } -> define env tu range name (E_struct fields)
          | Ast.T_global { name; quals; typ; init; range; _ } ->
            define env tu range name (E_global { quals; typ; init })
          | Ast.T_func { name; quals; ret; params; range; _ } ->
            define env tu range name (E_func { quals; ret; params })
          | Ast.T_kernel k -> define env tu k.Ast.k_range k.Ast.k_name (E_kernel k)
          | Ast.T_graph g -> define env tu g.Ast.g_range g.Ast.g_name (E_graph g))
        tu.Ast.tu_items)
    tus;
  (* Validation pass. *)
  List.iter
    (fun name ->
      match Hashtbl.find env.symbols name with
      | E_kernel k ->
        (match Cgsim.Kernel.realm_of_string k.Ast.k_realm with
         | Some _ -> ()
         | None -> fail k.Ast.k_range "unknown realm %s for kernel %s" k.Ast.k_realm name);
        ignore (ports_of_kernel env k)
      | E_graph g ->
        List.iter
          (fun (p : Ast.param) -> ignore (connector_dtype env p.Ast.p_type))
          g.Ast.g_lambda.Ast.l_params
      | E_struct fields ->
        List.iter (fun (f : Ast.param) -> ignore (field_dtype env f.Ast.p_type)) fields
      | E_func _ | E_global _ | E_define _ -> ())
    (order env);
  env

(* ------------------------------------------------------------------ *)
(* Dependencies                                                        *)
(* ------------------------------------------------------------------ *)

let rec type_names (t : Ast.typ) =
  match t.Ast.t_desc with
  | Ast.Tname n -> [ n ]
  | Ast.Tqualified (_, n) -> [ n ]
  | Ast.Ttemplate (n, args) ->
    n
    :: List.concat_map
         (function Ast.Ta_type t -> type_names t | Ast.Ta_expr e -> expr_names e)
         args
  | Ast.Tconst t | Ast.Tref t | Ast.Tptr t -> type_names t
  | Ast.Tarray (t, dim) ->
    type_names t @ (match dim with Some e -> expr_names e | None -> [])
  | Ast.Tauto -> []

and expr_names e =
  let acc = ref [] in
  Ast.iter_exprs
    (fun e ->
      match e.Ast.e_desc with
      | Ast.Ident n -> acc := n :: !acc
      | Ast.Scoped (_, n) -> acc := n :: !acc
      | _ -> ())
    [ { Ast.s_desc = Ast.S_expr e; s_range = Srcloc.dummy } ];
  List.rev !acc

let func_body env name =
  match Hashtbl.find_opt env.tu_of name with
  | None -> []
  | Some tu ->
    List.concat_map
      (fun item ->
        match item with
        | Ast.T_func f when String.equal f.name name -> f.body
        | _ -> [])
      tu.Ast.tu_items

let idents_of_entry env name =
  match Hashtbl.find_opt env.symbols name with
  | None -> []
  | Some (E_func { params; ret; _ }) ->
    Ast.referenced_idents (func_body env name)
    @ List.concat_map (fun (p : Ast.param) -> type_names p.Ast.p_type) params
    @ type_names ret
  | Some (E_kernel k) ->
    Ast.referenced_idents k.Ast.k_body
    @ List.concat_map (fun (p : Ast.param) -> type_names p.Ast.p_type) k.Ast.k_params
  | Some (E_global { init; typ; _ }) ->
    (match init with None -> [] | Some e -> expr_names e) @ type_names typ
  | Some (E_struct fields) ->
    List.concat_map (fun (f : Ast.param) -> type_names f.Ast.p_type) fields
  | Some (E_graph g) -> Ast.referenced_idents g.Ast.g_lambda.Ast.l_body
  | Some (E_define _) -> []

let direct_deps env name =
  let refs = idents_of_entry env name in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      (not (String.equal n name))
      && Hashtbl.mem env.symbols n
      &&
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    refs

let transitive_deps env roots =
  let visited = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace visited r ()) roots;
  let collected = Hashtbl.create 16 in
  let rec visit name =
    List.iter
      (fun dep ->
        if not (Hashtbl.mem visited dep) then begin
          Hashtbl.add visited dep ();
          Hashtbl.add collected dep ();
          visit dep
        end)
      (direct_deps env name)
  in
  List.iter visit roots;
  List.filter (Hashtbl.mem collected) (order env)

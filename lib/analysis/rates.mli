(** Rate / balance analysis (synchronous-dataflow style).

    Each kernel port has a rate: the number of beats (elements) it
    produces or consumes per steady-state firing of its kernel.  Rates
    come from three sources, in order of preference:

    - rates declared on the kernel definition ({!Cgsim.Kernel.define}'s
      [?rates]), resolved through the registry;
    - window transports, which imply [window_bytes / elem_bytes] beats
      per firing (a window kernel fires once per full window);
    - RTP transports, which imply rate 0 (a scalar written out-of-band,
      not per-firing traffic).

    Plain streams with no declaration stay unknown and generate no
    balance constraints.

    Over the known rates the pass solves the SDF balance equations
    [rep(w) * rate(w.port) = rep(r) * rate(r.port)] for every
    single-writer, non-RTP net (merge nets have no well-defined
    per-writer split, so they are skipped).  Inconsistent nets are
    reported as [CG-E101] errors naming both offending kernel ports;
    consistently solved components of two or more kernels get a
    [CG-I102] info carrying the minimal integer repetition vector. *)

(** Beats per firing of port [port_idx] of kernel [kernel_idx], or
    [None] when unknown.  Exposed for the deadlock pass. *)
val port_rate : Cgsim.Serialized.t -> int -> int -> int option

val analyze : Cgsim.Serialized.t -> Cgsim.Diagnostic.t list

(** Programmatic form of the balance solve, for passes that need the
    repetition vector itself rather than rendered findings (capacity
    synthesis, throughput bounds, the fuzzer oracle). *)
type solution = {
  balanced : bool;
      (** No [CG-E101] inconsistency anywhere in the graph. *)
  repetitions : (int * int) list;
      (** Minimal positive integer repetitions [(kernel_idx, rep)],
          sorted by kernel index, one entry per kernel that appears in a
          balance-constrained component.  Kernels with no known-rate
          constraints (isolated sources/sinks, plain streams without
          declarations) are absent — treat them as repetition 1.  When
          [balanced] is false the entries of inconsistent components are
          best-effort and should not be trusted. *)
}

val solve : Cgsim.Serialized.t -> solution

module S = Cgsim.Serialized
module D = Cgsim.Diagnostic

(* Minimum beats the net must buffer for the cycle to progress: the
   larger of what one writer firing deposits and what one reader firing
   demands, over the endpoints that lie inside the component.  [None]
   when any of those endpoints has no known rate. *)
let required_capacity (g : S.t) inside (n : S.net) =
  let rates =
    List.filter_map
      (fun (ep : S.endpoint) ->
        if Hashtbl.mem inside ep.S.kernel_idx then
          Some (Rates.port_rate g ep.S.kernel_idx ep.S.port_idx)
        else None)
      (n.S.writers @ n.S.readers)
  in
  if List.exists Option.is_none rates then None
  else
    Some (List.fold_left (fun acc r -> max acc (Option.get r)) 0 rates)

let cycle_name (g : S.t) kernels =
  let names = List.map (fun k -> g.S.kernels.(k).S.inst_name) kernels in
  String.concat " -> " (names @ [ List.hd names ])

let analyze (g : S.t) =
  let ng = Netgraph.make g in
  let diags = ref [] in
  List.iter
    (fun kernels ->
      let inside = Hashtbl.create 8 in
      List.iter (fun k -> Hashtbl.add inside k ()) kernels;
      let names = List.map (fun k -> g.S.kernels.(k).S.inst_name) kernels in
      let nets = Netgraph.internal_nets ng kernels in
      let under = ref [] in
      let unknown = ref [] in
      List.iter
        (fun id ->
          let n = g.S.nets.(id) in
          let elem_bytes = Cgsim.Dtype.size_bytes n.S.dtype in
          let capacity = Cgsim.Settings.resolved_depth ~elem_bytes n.S.settings in
          match required_capacity g inside n with
          | Some need when capacity < need -> under := (id, capacity, need) :: !under
          | Some _ -> ()
          | None -> unknown := (id, capacity) :: !unknown)
        nets;
      let cyc = cycle_name g kernels in
      (match List.rev !under with
       | (id, capacity, need) :: _ as all ->
         let ids = List.map (fun (id, _, _) -> id) all in
         diags :=
           D.make ~severity:D.Error ~code:"CG-E201" ~graph:g.S.gname ~kernels:names
             ~nets:(List.map (S.net_display g) ids)
             ~net_ids:ids ?loc:(S.net_src g id)
             (Printf.sprintf
                "cycle %s can deadlock: %s buffers %d element%s but the cycle needs at least %d \
                 per firing"
                cyc (S.net_display g id) capacity
                (if capacity = 1 then "" else "s")
                need)
           :: !diags
       | [] -> ());
      (match List.rev !unknown with
       | (id, capacity) :: _ as all when !under = [] ->
         let ids = List.map fst all in
         diags :=
           D.make ~severity:D.Warning ~code:"CG-W202" ~graph:g.S.gname ~kernels:names
             ~nets:(List.map (S.net_display g) ids)
             ~net_ids:ids ?loc:(S.net_src g id)
             (Printf.sprintf
                "cycle %s has nets with unknown rates (%s buffers %d elements); its buffering \
                 cannot be verified — declare kernel rates to check it"
                cyc (S.net_display g id) capacity)
           :: !diags
       | _ -> ());
      if !under = [] && !unknown = [] then
        diags :=
          D.make ~severity:D.Info ~code:"CG-I203" ~graph:g.S.gname ~kernels:names
            ~nets:(List.map (S.net_display g) nets)
            ~net_ids:nets
            (Printf.sprintf "cycle %s is sufficiently buffered for its declared rates" cyc)
          :: !diags)
    (Netgraph.cyclic_sccs ng);
  List.rev !diags

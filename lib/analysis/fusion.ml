module S = Cgsim.Serialized
module D = Cgsim.Diagnostic

(* Operator-fusion discovery.

   A chain is a maximal run of kernels a -> b -> ... -> z in which every
   interior hop is an exclusive point-to-point net (one writer, one
   reader, not a global input/output, not an RTP side channel) that is
   the writer's only output and the reader's only input.  That is
   exactly the shape {!Cgsim.Runtime}'s pump protocol can collapse into
   one fiber: heads keep their (possibly many) real inputs, tails their
   real outputs, and each interior queue becomes a direct hand-off edge.

   Fusion is proposed only for lint-clean graphs: structural validation
   plus the SDF balance solve ({!Rates}) and the deadlock pass must
   produce no error — an unbalanced or deadlocking graph keeps its
   per-kernel fibers so the existing diagnostics describe what the user
   actually ran.  The balance solve also carries the rate-matched
   guarantee: where rates are declared (or implied by window
   transports), a clean solve means producer and consumer agree per
   steady-state firing, so the hand-off edge stays bounded by the
   window sizes in play. *)

let clean (g : S.t) =
  S.validate_diags g = []
  && D.max_severity (Rates.analyze g) <> Some D.Error
  && D.max_severity (Deadlock.analyze g) <> Some D.Error

(* Net ids bound to ports of the given direction on kernel [k]. *)
let dir_nets (g : S.t) dir k =
  let inst = g.S.kernels.(k) in
  let acc = ref [] in
  Array.iteri
    (fun pi (spec : Cgsim.Kernel.port_spec) ->
      if spec.Cgsim.Kernel.dir = dir then acc := inst.S.port_nets.(pi) :: !acc)
    inst.S.ports;
  !acc

let chains (g : S.t) =
  if not (clean g) then []
  else begin
    let nk = Array.length g.S.kernels in
    let succ = Array.make nk (-1) in
    let pred = Array.make nk (-1) in
    Array.iteri
      (fun id (n : S.net) ->
        let fusible_transport =
          match Cgsim.Settings.resolved_transport n.S.settings with
          | Cgsim.Settings.Rtp -> false
          | Cgsim.Settings.Stream | Cgsim.Settings.Window _ | Cgsim.Settings.Gmio -> true
        in
        if n.S.global_input = None && n.S.global_output = None && fusible_transport then
          match n.S.writers, n.S.readers with
          | [ w ], [ r ] ->
            let a = w.S.kernel_idx and b = r.S.kernel_idx in
            if a <> b
               && dir_nets g Cgsim.Kernel.Out a = [ id ]
               && dir_nets g Cgsim.Kernel.In b = [ id ]
            then begin
              succ.(a) <- b;
              pred.(b) <- a
            end
          | _ -> ())
      g.S.nets;
    (* Walk maximal runs from heads (link out, no link in).  Pure cycles
       have no head and are left unfused — a fused cycle would pull its
       own pump. *)
    let result = ref [] in
    for k = 0 to nk - 1 do
      if succ.(k) >= 0 && pred.(k) < 0 then begin
        let acc = ref [ k ] in
        let cur = ref k in
        while succ.(!cur) >= 0 do
          cur := succ.(!cur);
          acc := !cur :: !acc
        done;
        result := List.rev !acc :: !result
      end
    done;
    List.rev !result
  end

(* Self-register as the runtime's fusion hook: linking this module is
   enough for Run_config.fuse to take effect, whether or not the full
   lint entry point is referenced. *)
let () = Cgsim.Runtime.set_fusion_hook (fun g -> chains g)

let analyze (g : S.t) =
  List.map
    (fun chain ->
      let names = List.map (fun k -> g.S.kernels.(k).S.inst_name) chain in
      (* Interior hand-off nets: the sole output of every non-tail
         member.  Carrying them lets [lint.suppress] on those nets mute
         the finding for chains the user deliberately keeps unfused. *)
      let interior =
        match List.rev chain with
        | [] | [ _ ] -> []
        | _ :: rev_heads ->
          List.rev_map (fun k -> List.hd (dir_nets g Cgsim.Kernel.Out k)) rev_heads
      in
      D.make ~severity:D.Info ~code:"CG-I103" ~graph:g.S.gname ~kernels:names
        ~nets:(List.map (S.net_display g) interior)
        ~net_ids:interior
        (Printf.sprintf
           "fusible chain: %s — %d queue hop%s collapse into direct hand-off when \
            Run_config.fuse is on"
           (String.concat " -> " names)
           (List.length chain - 1)
           (if List.length chain = 2 then "" else "s")))
    (chains g)

module S = Cgsim.Serialized
module D = Cgsim.Diagnostic

type pass = {
  pass_name : string;
  pass_run : S.t -> D.t list;
}

let default_passes =
  [
    { pass_name = "rates"; pass_run = Rates.analyze };
    { pass_name = "deadlock"; pass_run = Deadlock.analyze };
    { pass_name = "capacity"; pass_run = Capacity.analyze };
    { pass_name = "throughput"; pass_run = Throughput.analyze };
    { pass_name = "hazards"; pass_run = Hazards.analyze };
    { pass_name = "pool-safety"; pass_run = Pool_safety.analyze };
    { pass_name = "fusion"; pass_run = Fusion.analyze };
  ]

let suppress_key = "lint.suppress"

let suppressed_codes (g : S.t) net_id =
  if net_id < 0 || net_id >= Array.length g.S.nets then []
  else
    match Cgsim.Attr.find_string suppress_key g.S.nets.(net_id).S.attrs with
    | None -> []
    | Some spec ->
      String.split_on_char ',' spec |> List.map String.trim |> List.filter (( <> ) "")

let is_suppressed (g : S.t) (d : D.t) =
  d.D.net_ids <> []
  && List.for_all
       (fun id ->
         let codes = suppressed_codes g id in
         List.mem "all" codes || List.mem d.D.code codes)
       d.D.net_ids

let run ?(passes = default_passes) (g : S.t) =
  let structural = S.validate_diags g in
  if D.max_severity structural = Some D.Error then D.sort structural
  else begin
    let findings =
      structural @ List.concat_map (fun p -> p.pass_run g) passes
    in
    D.sort (List.filter (fun d -> not (is_suppressed g d)) findings)
  end

let install_runtime_hook () =
  Cgsim.Runtime.set_lint_hook (fun g -> run g);
  Cgsim.Runtime.set_fusion_hook Fusion.chains;
  Cgsim.Runtime.set_capacity_hook Capacity.suggest

(* Linking the analysis library arms the runtime pre-flight, the
   operator-fusion pass and the capacity synthesizer. *)
let () = install_runtime_hook ()

(** The lint driver: every pass over one graph, one finding list.

    Pass order is structural validation first ({!Cgsim.Serialized.validate_diags});
    when it reports errors the graph's indices cannot be trusted, so the
    deeper passes are skipped and only the structural findings are
    returned.  Otherwise the rate, deadlock, hazard and pool-safety
    passes run and their findings are filtered through per-net
    suppression and sorted errors-first.

    Suppression: a net attribute ["lint.suppress"] whose string value is
    a comma-separated list of codes (or ["all"]) drops findings of those
    codes when {e every} net the finding names carries the suppression.
    Findings naming no net are never suppressed. *)

type pass = {
  pass_name : string;
  pass_run : Cgsim.Serialized.t -> Cgsim.Diagnostic.t list;
}

(** Rates, deadlock, hazards, pool-safety — the passes that run after
    structural validation. *)
val default_passes : pass list

val run : ?passes:pass list -> Cgsim.Serialized.t -> Cgsim.Diagnostic.t list

(** Install {!run} as {!Cgsim.Runtime}'s pre-flight hook.  Idempotent;
    also performed when this module is initialized, so merely linking
    the [analysis] library arms the runtime pre-flight. *)
val install_runtime_hook : unit -> unit

module S = Cgsim.Serialized
module D = Cgsim.Diagnostic

(* Capacity synthesis.

   The deadlock pass ({!Deadlock}) proves the bound: a cycle makes
   progress iff every internal net buffers at least
   [max(writer beats/firing, reader beats/firing)] elements.  This pass
   turns the same bound into a constructive suggestion — for every
   under-buffered cycle net, the minimal depth that satisfies it.  The
   suggestion is minimal by construction: one element less and the
   deadlock pass's CG-E201 (and the runtime's actual deadlock)
   reappear. *)

(* (net_id, have, need) for every cycle-internal net whose resolved
   capacity is below its bound, grouped per cyclic SCC. *)
let under_per_cycle (g : S.t) =
  let ng = Netgraph.make g in
  List.filter_map
    (fun kernels ->
      let inside = Hashtbl.create 8 in
      List.iter (fun k -> Hashtbl.add inside k ()) kernels;
      let under =
        List.filter_map
          (fun id ->
            let n = g.S.nets.(id) in
            let elem_bytes = Cgsim.Dtype.size_bytes n.S.dtype in
            let have = Cgsim.Settings.resolved_depth ~elem_bytes n.S.settings in
            match Deadlock.required_capacity g inside n with
            | Some need when have < need -> Some (id, have, need)
            | _ -> None)
          (Netgraph.internal_nets ng kernels)
      in
      if under = [] then None else Some (kernels, under))
    (Netgraph.cyclic_sccs ng)

let suggest (g : S.t) =
  let best = Hashtbl.create 8 in
  List.iter
    (fun (_, under) ->
      List.iter
        (fun (id, _, need) ->
          match Hashtbl.find_opt best id with
          | Some prev when prev >= need -> ()
          | _ -> Hashtbl.replace best id need)
        under)
    (under_per_cycle g);
  Hashtbl.fold (fun id need acc -> (id, need) :: acc) best []
  |> List.sort compare

let analyze (g : S.t) =
  List.map
    (fun (kernels, under) ->
      let names = List.map (fun k -> g.S.kernels.(k).S.inst_name) kernels in
      let cyc = String.concat " -> " (names @ [ List.hd names ]) in
      let ids = List.map (fun (id, _, _) -> id) under in
      let show =
        String.concat ", "
          (List.map
             (fun (id, have, need) ->
               Printf.sprintf "%s %d -> %d" (S.net_display g id) have need)
             under)
      in
      D.make ~severity:D.Info ~code:"CG-I204" ~graph:g.S.gname ~kernels:names
        ~nets:(List.map (S.net_display g) ids)
        ~net_ids:ids
        ?loc:(S.net_src g (List.hd ids))
        (Printf.sprintf
           "minimal deadlock-free capacities for cycle %s: %s (apply via \
            Run_config.auto_capacity or take the depths from cgx lint --suggest-capacities)"
           cyc show))
    (under_per_cycle g)

(* Self-register as the runtime's capacity hook: linking this module is
   enough for Run_config.auto_capacity to take effect. *)
let () = Cgsim.Runtime.set_capacity_hook (fun g -> suggest g)

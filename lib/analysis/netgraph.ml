module S = Cgsim.Serialized

type t = {
  g : S.t;
  succ : (int * int) list array;  (* kernel idx -> (reader kernel, net id) *)
  writers : int list array;  (* net id -> writer kernel idxs *)
  readers : int list array;  (* net id -> reader kernel idxs *)
}

let dedup_keep_order xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let make (g : S.t) =
  let nk = Array.length g.S.kernels in
  let nn = Array.length g.S.nets in
  let succ = Array.make nk [] in
  let writers = Array.make nn [] in
  let readers = Array.make nn [] in
  Array.iter
    (fun (n : S.net) ->
      let ws = dedup_keep_order (List.map (fun (e : S.endpoint) -> e.S.kernel_idx) n.S.writers) in
      let rs = dedup_keep_order (List.map (fun (e : S.endpoint) -> e.S.kernel_idx) n.S.readers) in
      writers.(n.S.net_id) <- ws;
      readers.(n.S.net_id) <- rs;
      List.iter (fun w -> List.iter (fun r -> succ.(w) <- (r, n.S.net_id) :: succ.(w)) rs) ws)
    g.S.nets;
  Array.iteri (fun i es -> succ.(i) <- List.rev es) succ;
  { g; succ; writers; readers }

let graph t = t.g

let succ t k = t.succ.(k)

let writers_of_net t id = t.writers.(id)

let readers_of_net t id = t.readers.(id)

(* Tarjan.  Graphs here are a handful of kernels; the recursive
   formulation is the readable one and stack depth is not a concern. *)
let cyclic_sccs t =
  let nk = Array.length t.g.S.kernels in
  let index = Array.make nk (-1) in
  let lowlink = Array.make nk 0 in
  let on_stack = Array.make nk false in
  let stack = ref [] in
  let next = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    index.(v) <- !next;
    lowlink.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (w, _net) ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      t.succ.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      let cyclic =
        match comp with
        | [ k ] -> List.exists (fun (r, _) -> r = k) t.succ.(k)
        | _ -> List.length comp > 1
      in
      if cyclic then out := comp :: !out
    end
  in
  for v = 0 to nk - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  List.sort
    (fun a b -> compare (List.nth_opt a 0) (List.nth_opt b 0))
    !out

let internal_nets t kernels =
  let inside = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.add inside k ()) kernels;
  let hit ks = List.exists (Hashtbl.mem inside) ks in
  Array.to_list t.g.S.nets
  |> List.filter_map (fun (n : S.net) ->
         if hit t.writers.(n.S.net_id) && hit t.readers.(n.S.net_id) then Some n.S.net_id
         else None)

module S = Cgsim.Serialized
module D = Cgsim.Diagnostic

(* The gate {!Cgsim.Pool} request batching relies on: every kernel
   instance resolves, is declared [Pure] AND [stateless].  Purity alone
   (no state shared between instances) is not enough — a filter with a
   local delay line is pure yet produces different output for
   concatenated streams, which is exactly what batching feeds it. *)
let batching_safe (g : S.t) =
  Array.for_all
    (fun (inst : S.kernel_inst) ->
      match Cgsim.Registry.find inst.S.key with
      | None -> false
      | Some k -> k.Cgsim.Kernel.purity = Cgsim.Kernel.Pure && k.Cgsim.Kernel.stateless)
    g.S.kernels

let analyze (g : S.t) =
  let diags = ref [] in
  let unknown = ref [] in
  Array.iter
    (fun (inst : S.kernel_inst) ->
      match Cgsim.Registry.find inst.S.key with
      | None -> ()  (* structural validation reports unregistered keys *)
      | Some k ->
        (match k.Cgsim.Kernel.purity with
         | Cgsim.Kernel.Stateful ->
           diags :=
             D.make ~severity:D.Warning ~code:"CG-W401" ~graph:g.S.gname
               ~kernels:[ inst.S.inst_name ] ?loc:inst.S.src
               (Printf.sprintf
                  "kernel %s (%s) is declared stateful: concurrent pool serving of this graph \
                   may observe cross-request interference"
                  inst.S.inst_name inst.S.key)
             :: !diags
         | Cgsim.Kernel.Pure -> ()
         | Cgsim.Kernel.Unknown ->
           if not (List.mem inst.S.key !unknown) then unknown := inst.S.key :: !unknown))
    g.S.kernels;
  let diags = List.rev !diags in
  match List.rev !unknown with
  | [] -> diags
  | keys ->
    diags
    @ [
        D.make ~severity:D.Info ~code:"CG-I402" ~graph:g.S.gname
          (Printf.sprintf
             "kernel definition%s %s declare%s no purity; annotate with ~pure to let the \
              pool-safety pass verify concurrent serving"
             (if List.length keys = 1 then "" else "s")
             (String.concat ", " keys)
             (if List.length keys = 1 then "s" else ""));
      ]

(** Capacity synthesis: minimal deadlock-free buffer sizing.

    The deadlock pass ({!Deadlock}) rejects cycles whose internal nets
    buffer less than one firing's worth of traffic.  This pass runs the
    same bound constructively: for every under-buffered net inside a
    cyclic strongly connected component it computes the minimal queue
    depth that lets the cycle progress, and reports the lot as a
    [CG-I204] info finding per cycle ("net7 2 -> 64, ...").

    The suggestion is minimal by construction — the bound is exact, so a
    depth one element smaller reintroduces [CG-E201] (and, at run time,
    the real deadlock).  Depths are only ever raised relative to the
    graph's resolved settings; adequately (or over-) buffered nets
    produce no suggestion.

    Linking the analysis library installs {!suggest} as the runtime's
    capacity hook ({!Cgsim.Runtime.set_capacity_hook}), so
    [Run_config.auto_capacity] applies these depths automatically at
    {!Cgsim.Runtime.compile} time. *)

(** [(net_id, minimal depth)] for every net whose resolved capacity is
    below some containing cycle's bound, sorted by net id.  Nets whose
    rates are unknown are skipped (see the deadlock pass's [CG-W202]);
    the empty list means no change is needed. *)
val suggest : Cgsim.Serialized.t -> (int * int) list

(** The [CG-I204] findings, one per cyclic SCC with at least one
    under-buffered net. *)
val analyze : Cgsim.Serialized.t -> Cgsim.Diagnostic.t list

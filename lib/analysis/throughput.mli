(** Static throughput / bottleneck bound.

    Weights every kernel by [repetition × per-firing cost], where
    repetitions come from the SDF balance solve ({!Rates.solve}) and the
    cost model is either unit (structural analysis: the kernel that
    fires most per steady-state iteration) or measured nanoseconds
    (e.g. per-kernel [kernel.self_ns] rows from {!Obs.Profile}), in
    which case the weights turn into a predicted request-rate ceiling.

    The sum of the weights bounds single-domain (sequential) throughput;
    the largest single stage — one kernel, or a whole cyclic SCC, since
    kernels on a cycle cannot overlap each other — bounds pipelined
    throughput (the maximum-cycle-ratio reading of the netgraph). *)

type bound = {
  b_weights : (string * float) list;
      (** Per kernel-instance weight, in kernel order.  Unit cost:
          repetitions per iteration.  Measured: ns per request. *)
  b_bottleneck : string;  (** Kernel with the largest weight. *)
  b_share : float;  (** Its fraction of {!b_total}, in [0, 1]. *)
  b_total : float;  (** Sum of all weights (sequential iteration cost). *)
  b_critical : float;
      (** Largest single stage: max kernel weight, or max cyclic-SCC
          weight sum where a cycle exists.  [b_critical >= ] max weight. *)
  b_measured : bool;  (** Whether a cost model was supplied. *)
}

(** [bound ?cost g]: [cost] maps a kernel instance name to its measured
    cost in ns per request ([None] entries count as 0 — e.g. a kernel
    that never fired); omitting it selects unit cost.  Returns [None]
    for empty graphs or all-zero weights. *)
val bound : ?cost:(string -> float option) -> Cgsim.Serialized.t -> bound option

(** [1e9 / b_total] resp. [1e9 / b_critical] — requests per second.
    [None] unless the bound was built from a measured cost model. *)
val sequential_per_sec : bound -> float option

val pipelined_per_sec : bound -> float option

(** The [CG-I105] finding: unit-cost bottleneck for graphs with a
    balanced, non-empty repetition vector.  At most one finding. *)
val analyze : Cgsim.Serialized.t -> Cgsim.Diagnostic.t list

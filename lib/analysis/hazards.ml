module S = Cgsim.Serialized
module D = Cgsim.Diagnostic

let fanout_threshold = 4

let analyze (g : S.t) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  Array.iter
    (fun (n : S.net) ->
      let id = n.S.net_id in
      let display = S.net_display g id in
      let loc = S.net_src g id in
      let kernel_names eps =
        List.map (fun (ep : S.endpoint) -> g.S.kernels.(ep.S.kernel_idx).S.inst_name) eps
      in
      (* Consumers as the runtime counts them: kernel readers plus the
         implicit sink fiber on a global output. *)
      let consumers = List.length n.S.readers + if n.S.global_output <> None then 1 else 0 in
      if consumers > fanout_threshold then
        emit
          (D.make ~severity:D.Warning ~code:"CG-W301" ~graph:g.S.gname
             ~kernels:(kernel_names n.S.readers)
             ~nets:[ display ] ~net_ids:[ id ] ?loc
             (Printf.sprintf
                "%s broadcasts to %d consumers; retirement advances at the slowest one and the \
                 net stays on the MPMC slow path"
                display consumers));
      if
        n.S.global_output <> None
        && List.length n.S.writers = 1
        && List.length n.S.readers >= 1
      then
        emit
          (D.make ~severity:D.Warning ~code:"CG-W302" ~graph:g.S.gname
             ~kernels:(kernel_names (n.S.writers @ n.S.readers))
             ~nets:[ display ] ~net_ids:[ id ] ?loc
             (Printf.sprintf
                "%s is tapped as a global output while kernels also read it; the sink fiber is \
                 a second consumer, demoting the edge from the SPSC fast path"
                display));
      (match n.S.settings.Cgsim.Settings.beat_bytes with
       | Some beat ->
         let elem = Cgsim.Dtype.size_bytes n.S.dtype in
         if beat > 0 && elem > 0 && beat mod elem <> 0 && elem mod beat <> 0 then
           emit
             (D.make ~severity:D.Warning ~code:"CG-W303" ~graph:g.S.gname
                ~nets:[ display ] ~net_ids:[ id ] ?loc
                (Printf.sprintf
                   "%s packs %d-byte elements into %d-byte beats; neither divides the other, so \
                    every beat straddles an element boundary"
                   display elem beat))
       | None -> ()))
    g.S.nets;
  List.rev !diags

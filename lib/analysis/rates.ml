module S = Cgsim.Serialized
module D = Cgsim.Diagnostic

(* ------------------------------------------------------------------ *)
(* Exact rational arithmetic for the balance solve.  Graph rates are   *)
(* small integers; int rationals reduced at every step are plenty.     *)
(* ------------------------------------------------------------------ *)

type ratio = {
  num : int;
  den : int;  (* > 0 *)
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let ratio num den =
  if den = 0 then invalid_arg "analysis: zero-denominator ratio";
  let s = if den < 0 then -1 else 1 in
  let g = max 1 (abs (gcd num den)) in
  { num = s * num / g; den = s * den / g }

let ratio_equal a b = a.num = b.num && a.den = b.den

let ratio_mul a b = ratio (a.num * b.num) (a.den * b.den)

let ratio_to_string r = if r.den = 1 then string_of_int r.num else Printf.sprintf "%d/%d" r.num r.den

(* ------------------------------------------------------------------ *)
(* Rate resolution                                                     *)
(* ------------------------------------------------------------------ *)

let port_rate (g : S.t) kernel_idx port_idx =
  let inst = g.S.kernels.(kernel_idx) in
  let declared =
    match Cgsim.Registry.find inst.S.key with
    | Some k -> Cgsim.Kernel.rate k port_idx
    | None -> None
  in
  match declared with
  | Some _ as r -> r
  | None ->
    let net = g.S.nets.(inst.S.port_nets.(port_idx)) in
    let elem_bytes = Cgsim.Dtype.size_bytes net.S.dtype in
    (match Cgsim.Settings.resolved_transport net.S.settings with
     | Cgsim.Settings.Window bytes when elem_bytes > 0 && bytes mod elem_bytes = 0 ->
       Some (bytes / elem_bytes)
     | Cgsim.Settings.Rtp -> Some 0
     | _ -> None)

(* ------------------------------------------------------------------ *)
(* Balance equations                                                   *)
(* ------------------------------------------------------------------ *)

type constraint_edge = {
  c_net : int;
  c_writer : S.endpoint;
  c_reader : S.endpoint;
  c_wrate : int;  (* > 0 *)
  c_rrate : int;  (* > 0 *)
}

let ep_port_name (g : S.t) (ep : S.endpoint) =
  let ki = g.S.kernels.(ep.S.kernel_idx) in
  ki.S.ports.(ep.S.port_idx).Cgsim.Kernel.pname

(* Shared propagation core: collects the balance constraints, solves by
   propagation per connected component, and returns the raw solution —
   per-kernel rational repetitions, component ids, and the CG-E101
   findings discovered on the way.  [analyze] renders findings from it;
   [solve] reduces it to minimal integer repetition vectors. *)
type raw = {
  raw_diags : D.t list;  (* emission order *)
  raw_rep : ratio option array;  (* per kernel idx *)
  raw_comp : int array;  (* per kernel idx, -1 = unconstrained *)
  raw_comp_count : int;
}

let propagate (g : S.t) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let constraints = ref [] in
  Array.iter
    (fun (n : S.net) ->
      match Cgsim.Settings.resolved_transport n.S.settings with
      | Cgsim.Settings.Rtp -> ()
      | _ ->
        (match n.S.writers with
         | [ w ] ->
           let wrate = port_rate g w.S.kernel_idx w.S.port_idx in
           List.iter
             (fun (r : S.endpoint) ->
               match wrate, port_rate g r.S.kernel_idx r.S.port_idx with
               | Some wr, Some rr when wr > 0 && rr > 0 ->
                 constraints :=
                   { c_net = n.S.net_id; c_writer = w; c_reader = r; c_wrate = wr; c_rrate = rr }
                   :: !constraints
               | Some wr, Some rr when wr <> rr ->
                 (* Exactly one side is zero: declared one-shot against a
                    per-firing stream — traffic either accumulates without
                    bound or the reader starves. *)
                 let wk = g.S.kernels.(w.S.kernel_idx).S.inst_name in
                 let rk = g.S.kernels.(r.S.kernel_idx).S.inst_name in
                 emit
                   (D.make ~severity:D.Error ~code:"CG-E101" ~graph:g.S.gname
                      ~kernels:[ wk; rk ]
                      ~nets:[ S.net_display g n.S.net_id ]
                      ~net_ids:[ n.S.net_id ] ?loc:(S.net_src g n.S.net_id)
                      (Printf.sprintf
                         "unbalanced net: %s.%s produces %d beats per firing but %s.%s consumes \
                          %d"
                         wk (ep_port_name g w) wr rk (ep_port_name g r) rr))
               | _ -> ())
             n.S.readers
         | _ -> ())
        (* Merge nets (several writers) have no per-writer balance
           constraint; the fan-out/fan-in hazards pass covers them. *))
    g.S.nets;
  let constraints = List.rev !constraints in
  (* Solve by propagation: pick an unvisited kernel, give it repetition
     1, and push rep(r) = rep(w) * wrate / rrate across every constraint
     touching the component.  A revisited kernel whose propagated value
     disagrees with its assigned one sits on an unbalanced net. *)
  let nk = Array.length g.S.kernels in
  let rep = Array.make nk None in
  let comp = Array.make nk (-1) in
  let adj = Array.make nk [] in
  List.iter
    (fun c ->
      let w = c.c_writer.S.kernel_idx and r = c.c_reader.S.kernel_idx in
      adj.(w) <- (c, true) :: adj.(w);
      adj.(r) <- (c, false) :: adj.(r))
    constraints;
  let comp_count = ref 0 in
  for seed = 0 to nk - 1 do
    if rep.(seed) = None && adj.(seed) <> [] then begin
      let id = !comp_count in
      incr comp_count;
      rep.(seed) <- Some (ratio 1 1);
      comp.(seed) <- id;
      let queue = Queue.create () in
      Queue.add seed queue;
      while not (Queue.is_empty queue) do
        let k = Queue.pop queue in
        let k_rep = Option.get rep.(k) in
        List.iter
          (fun (c, k_is_writer) ->
            let other, expected =
              if k_is_writer then
                c.c_reader.S.kernel_idx, ratio_mul k_rep (ratio c.c_wrate c.c_rrate)
              else c.c_writer.S.kernel_idx, ratio_mul k_rep (ratio c.c_rrate c.c_wrate)
            in
            match rep.(other) with
            | None ->
              rep.(other) <- Some expected;
              comp.(other) <- id;
              Queue.add other queue
            | Some have ->
              if not (ratio_equal have expected) then begin
                let w = c.c_writer and r = c.c_reader in
                let wk = g.S.kernels.(w.S.kernel_idx).S.inst_name in
                let rk = g.S.kernels.(r.S.kernel_idx).S.inst_name in
                let bad = g.S.kernels.(other).S.inst_name in
                emit
                  (D.make ~severity:D.Error ~code:"CG-E101" ~graph:g.S.gname
                     ~kernels:[ wk; rk ]
                     ~nets:[ S.net_display g c.c_net ]
                     ~net_ids:[ c.c_net ] ?loc:(S.net_src g c.c_net)
                     (Printf.sprintf
                        "unbalanced net: %s.%s produces %d beats per firing against %s.%s \
                         consuming %d — the balance equations give %s repetition %s here but \
                         %s elsewhere"
                        wk (ep_port_name g w) c.c_wrate rk (ep_port_name g r) c.c_rrate bad
                        (ratio_to_string expected) (ratio_to_string have)))
              end)
          adj.(k)
      done
    end
  done;
  { raw_diags = List.rev !diags; raw_rep = rep; raw_comp = comp; raw_comp_count = !comp_count }

let analyze (g : S.t) =
  let raw = propagate g in
  let nk = Array.length g.S.kernels in
  let rep = raw.raw_rep in
  let comp = raw.raw_comp in
  (* Deduplicate CG-E101: propagation can visit a bad net from both
     ends.  One finding per net is what a human wants to read. *)
  let seen_bad = Hashtbl.create 4 in
  let diags =
    raw.raw_diags
    |> List.filter (fun (d : D.t) ->
           match d.D.net_ids with
           | [ id ] when d.D.code = "CG-E101" ->
             if Hashtbl.mem seen_bad id then false
             else begin
               Hashtbl.add seen_bad id ();
               true
             end
           | _ -> true)
  in
  (* Minimal integer repetition vector per consistently solved
     component: scale by the lcm of denominators, then divide by the
     gcd of the results. *)
  let bad_kernels = Hashtbl.create 4 in
  List.iter
    (fun (d : D.t) -> List.iter (fun k -> Hashtbl.replace bad_kernels k ()) d.D.kernels)
    diags;
  let infos = ref [] in
  for id = 0 to raw.raw_comp_count - 1 do
    let members =
      List.filter (fun k -> comp.(k) = id) (List.init nk Fun.id)
    in
    let clean =
      List.length members >= 2
      && List.for_all
           (fun k -> not (Hashtbl.mem bad_kernels g.S.kernels.(k).S.inst_name))
           members
    in
    if clean then begin
      let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / abs (gcd a b) in
      let l = List.fold_left (fun acc k -> lcm acc (Option.get rep.(k)).den) 1 members in
      let scaled = List.map (fun k -> k, (Option.get rep.(k)).num * (l / (Option.get rep.(k)).den)) members in
      let g0 = List.fold_left (fun acc (_, v) -> abs (gcd acc v)) 0 scaled in
      let g0 = max 1 g0 in
      let names = List.map (fun (k, _) -> g.S.kernels.(k).S.inst_name) scaled in
      let show =
        String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s×%d" g.S.kernels.(k).S.inst_name (v / g0)) scaled)
      in
      infos :=
        D.make ~severity:D.Info ~code:"CG-I102" ~graph:g.S.gname ~kernels:names
          (Printf.sprintf "steady-state repetition vector: %s" show)
        :: !infos
    end
  done;
  diags @ List.rev !infos

(* ------------------------------------------------------------------ *)
(* Programmatic solve — the entry the capacity and throughput passes   *)
(* (and the fuzzer oracle) build on.                                   *)
(* ------------------------------------------------------------------ *)

type solution = {
  balanced : bool;
  repetitions : (int * int) list;
}

let solve (g : S.t) =
  let raw = propagate g in
  let nk = Array.length g.S.kernels in
  let balanced =
    not (List.exists (fun (d : D.t) -> d.D.code = "CG-E101") raw.raw_diags)
  in
  let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / abs (gcd a b) in
  let reps = ref [] in
  for id = raw.raw_comp_count - 1 downto 0 do
    let members = List.filter (fun k -> raw.raw_comp.(k) = id) (List.init nk Fun.id) in
    let l =
      List.fold_left (fun acc k -> lcm acc (Option.get raw.raw_rep.(k)).den) 1 members
    in
    let scaled =
      List.map
        (fun k ->
          let r = Option.get raw.raw_rep.(k) in
          k, r.num * (l / r.den))
        members
    in
    let g0 = max 1 (List.fold_left (fun acc (_, v) -> abs (gcd acc v)) 0 scaled) in
    List.iter (fun (k, v) -> reps := (k, v / g0) :: !reps) scaled
  done;
  { balanced; repetitions = List.sort compare !reps }

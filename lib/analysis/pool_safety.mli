(** Pool-safety / determinism pass.

    {!Cgsim.Pool} instantiates and runs the same serialized graph on
    several domains at once; a kernel body that captures shared mutable
    state (declared [~pure:false]) makes those runs interfere.  This
    pass resolves every kernel instance through the registry and
    reports:

    - [CG-W401]: an instance of a kernel declared stateful — concurrent
      pool serving (or even back-to-back runs) may observe cross-request
      interference;
    - [CG-I402]: a single info listing the kernel definitions that never
      declared their purity, as a nudge to annotate them. *)

val analyze : Cgsim.Serialized.t -> Cgsim.Diagnostic.t list

(** Pool-safety / determinism pass.

    {!Cgsim.Pool} instantiates and runs the same serialized graph on
    several domains at once; a kernel body that captures shared mutable
    state (declared [~pure:false]) makes those runs interfere.  This
    pass resolves every kernel instance through the registry and
    reports:

    - [CG-W401]: an instance of a kernel declared stateful — concurrent
      pool serving (or even back-to-back runs) may observe cross-request
      interference;
    - [CG-I402]: a single info listing the kernel definitions that never
      declared their purity, as a nudge to annotate them. *)

val analyze : Cgsim.Serialized.t -> Cgsim.Diagnostic.t list

(** [batching_safe g] is [true] iff every kernel instance resolves
    through the registry to a definition declared [~pure:true] {e and}
    [~stateless:true] — the property {!Cgsim.Pool} requires before
    multiplexing several requests through one warm run
    ({!Cgsim.Runtime.compiled_batchable} is the runtime-side
    equivalent).  Purity alone is weaker: it admits kernels with local
    per-run memory (delay lines, accumulators), which are pool-safe but
    not concatenation-safe. *)
val batching_safe : Cgsim.Serialized.t -> bool

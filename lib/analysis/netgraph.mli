(** Kernel-level connectivity view of a serialized graph.

    The static-analysis passes reason about kernels and the nets between
    them, not about individual endpoints, so this module folds the
    endpoint lists of {!Cgsim.Serialized.t} into a directed graph whose
    vertices are kernel instances and whose edges are "kernel [w] writes
    a net that kernel [r] reads", labelled with the net id.  Global
    inputs and outputs contribute no vertices — cycles through the host
    are impossible by construction. *)

type t

val make : Cgsim.Serialized.t -> t

val graph : t -> Cgsim.Serialized.t

(** Successor edges of a kernel: [(reader_kernel_idx, net_id)] pairs,
    one per (net, reader) combination, in declaration order. *)
val succ : t -> int -> (int * int) list

(** Kernel indices writing / reading a net (deduplicated, in order). *)
val writers_of_net : t -> int -> int list

val readers_of_net : t -> int -> int list

(** Strongly connected components that can actually sustain a cycle:
    components of two or more kernels, plus single kernels with a
    self-loop edge.  Each component lists kernel indices in traversal
    order; the result lists components in ascending order of their first
    kernel. *)
val cyclic_sccs : t -> int list list

(** Nets whose writer set and reader set both intersect the given kernel
    set — the edges a cycle through those kernels runs over. *)
val internal_nets : t -> int list -> int list

(** Rendering of finding sets.

    One reporter for every surface: [cgx lint]'s text and [--json]
    output, the runtime pre-flight's stderr lines, and the extractor's
    embedded README section all go through here so a finding reads the
    same everywhere. *)

(** One line per finding (sorted errors-first) followed by a summary
    line ["N errors, M warnings, K infos"]; ["no findings"] alone when
    the list is empty. *)
val to_text : Cgsim.Diagnostic.t list -> string

(** The summary line by itself. *)
val summary : Cgsim.Diagnostic.t list -> string

(** JSON document with schema ["cgsim-lint/2"]: graph name, per-severity
    counts, the findings as structured objects, plus — new in /2 and
    always present — [suggested_capacities] (the {!Capacity.suggest}
    [(net, depth)] pairs; empty array when the caller passes none) and
    [predicted_bottleneck] (the {!Throughput} bottleneck kernel name, or
    [null]). *)
val to_json :
  ?suggested_capacities:(int * int) list ->
  ?predicted_bottleneck:string ->
  graph:string ->
  Cgsim.Diagnostic.t list ->
  Obs.Json.t

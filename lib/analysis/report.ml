module D = Cgsim.Diagnostic

let count sev diags = List.length (List.filter (fun d -> d.D.severity = sev) diags)

let summary diags =
  if diags = [] then "no findings"
  else
    Printf.sprintf "%d error%s, %d warning%s, %d info%s"
      (count D.Error diags)
      (if count D.Error diags = 1 then "" else "s")
      (count D.Warning diags)
      (if count D.Warning diags = 1 then "" else "s")
      (count D.Info diags)
      (if count D.Info diags = 1 then "" else "s")

let to_text diags =
  match diags with
  | [] -> summary []
  | _ ->
    String.concat "\n" (List.map D.render (D.sort diags) @ [ summary diags ])

let to_json ?(suggested_capacities = []) ?predicted_bottleneck ~graph diags =
  let open Obs.Json in
  Obj
    [
      "schema", Str "cgsim-lint/2";
      "graph", Str graph;
      ( "counts",
        Obj
          [
            "error", Num (float_of_int (count D.Error diags));
            "warning", Num (float_of_int (count D.Warning diags));
            "info", Num (float_of_int (count D.Info diags));
          ] );
      ( "suggested_capacities",
        Arr
          (List.map
             (fun (net_id, depth) ->
               Obj [ "net", Num (float_of_int net_id); "depth", Num (float_of_int depth) ])
             suggested_capacities) );
      ( "predicted_bottleneck",
        match predicted_bottleneck with Some k -> Str k | None -> Null );
      "findings", Arr (List.map D.to_json (D.sort diags));
    ]

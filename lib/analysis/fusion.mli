(** Operator-fusion discovery.

    Finds maximal chains of kernels connected by exclusive
    point-to-point nets — each interior net has exactly one writer and
    one reader, is not a global input/output or RTP side channel, is the
    writer's only output and the reader's only input.  Those are the
    hops {!Cgsim.Runtime} collapses into a single fiber with direct
    hand-off edges when [Run_config.fuse] is on (the runtime re-checks
    the structure before acting on a proposal).

    Chains are proposed only for lint-clean graphs: structural
    validation, the SDF balance solve ({!Rates}) and the {!Deadlock}
    pass must all come back error-free, so rate-mismatched or
    deadlock-prone graphs keep one fiber per kernel and their
    diagnostics stay accurate. *)

(** Proposed chains, each a list of kernel indices upstream-first with
    at least two members.  Chains are disjoint.  Installed as the
    runtime's fusion hook when the analysis library is linked (see
    {!Lint.install_runtime_hook}). *)
val chains : Cgsim.Serialized.t -> int list list

(** Lint pass: one [CG-I103] info per discovered chain, naming the
    member kernels upstream-first. *)
val analyze : Cgsim.Serialized.t -> Cgsim.Diagnostic.t list

module S = Cgsim.Serialized
module D = Cgsim.Diagnostic

(* Static throughput bound.

   Weight every kernel by the work it contributes to one steady-state
   iteration of the graph: its balance-equation repetition count times a
   per-firing cost.  With no cost model the cost is 1 (unit cost: the
   kernel that fires most often is the structural bottleneck); with a
   measured cost model — ns per request attributed to each kernel, e.g.
   from {!Obs.Profile} rows — the weights are absolute and the bound
   becomes a predicted request ceiling.

   Two readings of the weights:

   - sequential (one domain): every firing shares the domain, so the
     iteration takes the *sum* of the weights — the ceiling warm serving
     on a single domain can approach but not beat;
   - pipelined (a domain per kernel): steady state is limited by the
     slowest stage, i.e. the *max* weight — except that kernels on a
     cycle cannot overlap with each other, so each cyclic SCC
     contributes the sum of its members as one stage (the
     maximum-cycle-ratio reading of the netgraph). *)

type bound = {
  b_weights : (string * float) list;
  b_bottleneck : string;
  b_share : float;
  b_total : float;
  b_critical : float;
  b_measured : bool;
}

let bound ?cost (g : S.t) =
  let nk = Array.length g.S.kernels in
  if nk = 0 then None
  else begin
    let sol = Rates.solve g in
    let rep k =
      match List.assoc_opt k sol.Rates.repetitions with
      | Some r -> float_of_int r
      | None -> 1.0
    in
    let weight k =
      match cost with
      | Some f -> Option.value (f g.S.kernels.(k).S.inst_name) ~default:0.0
      | None -> rep k
    in
    let weights = List.init nk (fun k -> g.S.kernels.(k).S.inst_name, weight k) in
    let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weights in
    if total <= 0.0 then None
    else begin
      let b_bottleneck, bw =
        List.fold_left
          (fun (bn, bw) (n, w) -> if w > bw then n, w else bn, bw)
          (List.hd weights) (List.tl weights)
      in
      (* Pipelined critical stage: max single weight, or a whole cycle
         where one exists — cycle members cannot overlap each other. *)
      let ng = Netgraph.make g in
      let warr = Array.of_list (List.map snd weights) in
      let critical =
        List.fold_left
          (fun acc kernels ->
            max acc (List.fold_left (fun s k -> s +. warr.(k)) 0.0 kernels))
          bw (Netgraph.cyclic_sccs ng)
      in
      Some
        {
          b_weights = weights;
          b_bottleneck;
          b_share = bw /. total;
          b_total = total;
          b_critical = critical;
          b_measured = cost <> None;
        }
    end
  end

(* Predicted request ceilings, defined only for measured (ns) weights. *)
let sequential_per_sec b = if b.b_measured then Some (1e9 /. b.b_total) else None

let pipelined_per_sec b = if b.b_measured then Some (1e9 /. b.b_critical) else None

let analyze (g : S.t) =
  let sol = Rates.solve g in
  if not sol.Rates.balanced || sol.Rates.repetitions = [] then []
  else
    match bound g with
    | None -> []
    | Some b ->
      [
        D.make ~severity:D.Info ~code:"CG-I105" ~graph:g.S.gname
          ~kernels:[ b.b_bottleneck ]
          (Printf.sprintf
             "static bottleneck: %s carries %.0f%% of the steady-state work at unit cost \
              (%.0f of %.0f firings per iteration) — profile with Obs.Profile for a \
              time-weighted bound"
             b.b_bottleneck (100.0 *. b.b_share)
             (List.assoc b.b_bottleneck b.b_weights)
             b.b_total);
      ]

(** Broadcast fan-out and settings hazards.

    Performance smells that run correctly but slowly (or that will run
    slowly the day the graph is scaled up):

    - [CG-W301]: a net broadcast to more than {!fanout_threshold}
      consumers.  Broadcast retirement advances at the pace of the
      slowest consumer, and a wide MPMC net keeps every producer on the
      slow path.
    - [CG-W302]: a single-writer, single-reader net that is also a
      global output.  The implicit sink fiber is a second consumer, so
      the edge is demoted from the SPSC fast path — a dedicated tap
      kernel (or dropping the tap) restores it.
    - [CG-W303]: a net whose AXI beat width neither divides nor is a
      multiple of its element size, so every beat straddles element
      boundaries (partial-beat packing). *)

val fanout_threshold : int

val analyze : Cgsim.Serialized.t -> Cgsim.Diagnostic.t list

(** Capacity-aware deadlock detection.

    A cycle of kernels can only make progress if every net on the cycle
    can hold at least one full firing's worth of traffic: a writer that
    blocks mid-firing waits on a reader that is itself (transitively)
    waiting on the writer.  For every strongly connected component of
    the kernel graph this pass compares each internal net's resolved
    queue capacity against the rate-derived minimum
    [max(writer beats/firing, reader beats/firing)]:

    - capacity below the bound on some net → [CG-E201] error naming the
      cycle's kernels and the under-buffered net;
    - some cycle net with unknown rates → [CG-W202] warning (the bound
      cannot be established; a conservative reader should treat the
      cycle as suspect);
    - every net verified → [CG-I203] info recording the cycle and that
      its buffering passed.

    Acyclic graphs produce no findings. *)

(** [required_capacity g inside n]: minimum elements net [n] must buffer
    for a cycle over the kernels in [inside] (a hashtable keyed by
    kernel index) to make progress — the larger of one writer firing's
    deposit and one reader firing's demand, over the endpoints inside
    the component.  [None] when any such endpoint has no known rate.
    Exposed for the capacity-synthesis pass, which turns the same bound
    into suggested depths instead of errors. *)
val required_capacity : Cgsim.Serialized.t -> (int, unit) Hashtbl.t -> Cgsim.Serialized.net -> int option

val analyze : Cgsim.Serialized.t -> Cgsim.Diagnostic.t list

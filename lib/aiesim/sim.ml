exception Sim_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Sim_error s)) fmt

type kernel_report = {
  k_name : string;
  iterations : int;
  first_mark_cycles : float;
  avg_interval_cycles : float;
  busy_cycles : int;
  marks : float list;
}

type report = {
  label : string;
  total_cycles : float;
  blocks : int;
  ns_per_block : float;
  kernels : kernel_report list;
  capture_stats : Cgsim.Sched.stats;
  trace_events : int;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v>deploy %s: %.0f cycles total, %d blocks, %.1f ns/block@," r.label
    r.total_cycles r.blocks r.ns_per_block;
  List.iter
    (fun k ->
      Format.fprintf ppf "  %s: %d iters, fill %.0f cyc, interval %.1f cyc (%.1f ns), busy %d cyc@,"
        k.k_name k.iterations k.first_mark_cycles k.avg_interval_cycles
        (Aie.Cfg.cycles_to_ns k.avg_interval_cycles)
        k.busy_cycles)
    r.kernels;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Phase 1: functional capture                                         *)
(* ------------------------------------------------------------------ *)

let transport_of_settings s =
  match Cgsim.Settings.resolved_transport s with
  | Cgsim.Settings.Stream -> Aie.Trace.Stream
  | Cgsim.Settings.Window b -> Aie.Trace.Window b
  | Cgsim.Settings.Rtp -> Aie.Trace.Rtp
  | Cgsim.Settings.Gmio -> Aie.Trace.Gmio

type capture_result = {
  traces : (string * Aie.Trace.event list) list;  (* per kernel instance *)
  traffic : int array;  (* elements per net *)
  stats : Cgsim.Sched.stats;
  events_total : int;
}

let capture ?(config = Cgsim.Run_config.default) (d : Deploy.t) ~sources ~sinks =
  let g = d.Deploy.graph in
  let thunk_applies (inst : Cgsim.Serialized.kernel_inst) =
    d.Deploy.adapter = Deploy.Thunk && inst.realm = Cgsim.Kernel.Aie
  in
  let port_key (inst : Cgsim.Serialized.kernel_inst) port_idx =
    Printf.sprintf "%s.%s" inst.inst_name inst.ports.(port_idx).Cgsim.Kernel.pname
  in
  let net_of inst port_idx = g.Cgsim.Serialized.nets.(inst.Cgsim.Serialized.port_nets.(port_idx)) in
  let hooks =
    {
      Cgsim.Runtime.wrap_reader =
        (fun inst port_idx r ->
          let net = net_of inst port_idx in
          let transport = transport_of_settings net.Cgsim.Serialized.settings in
          let bytes = Cgsim.Dtype.size_bytes net.Cgsim.Serialized.dtype in
          let thunked = thunk_applies inst in
          let port = port_key inst port_idx in
          let ev = Aie.Trace.Port_read { port; bytes; transport; thunked } in
          {
            r with
            Cgsim.Port.r_get =
              (fun () ->
                let v = r.Cgsim.Port.r_get () in
                Aie.Trace.emit ev;
                v);
            Cgsim.Port.r_get_block =
              (fun n ->
                (* Block reads must keep per-element cycle accounting:
                   emit one event per element, as the element loop would. *)
                let vs = r.Cgsim.Port.r_get_block n in
                for _ = 1 to Array.length vs do
                  Aie.Trace.emit ev
                done;
                vs);
            Cgsim.Port.r_get_floats =
              (fun n ->
                let fs = r.Cgsim.Port.r_get_floats n in
                for _ = 1 to Array.length fs do
                  Aie.Trace.emit ev
                done;
                fs);
            Cgsim.Port.r_get_ints =
              (fun n ->
                let is = r.Cgsim.Port.r_get_ints n in
                for _ = 1 to Array.length is do
                  Aie.Trace.emit ev
                done;
                is);
          });
      wrap_writer =
        (fun inst port_idx w ->
          let net = net_of inst port_idx in
          let transport = transport_of_settings net.Cgsim.Serialized.settings in
          let bytes = Cgsim.Dtype.size_bytes net.Cgsim.Serialized.dtype in
          let thunked = thunk_applies inst in
          let port = port_key inst port_idx in
          let ev = Aie.Trace.Port_write { port; bytes; transport; thunked } in
          {
            w with
            Cgsim.Port.w_put =
              (fun v ->
                w.Cgsim.Port.w_put v;
                Aie.Trace.emit ev);
            Cgsim.Port.w_put_block =
              (fun vs ->
                w.Cgsim.Port.w_put_block vs;
                for _ = 1 to Array.length vs do
                  Aie.Trace.emit ev
                done);
            Cgsim.Port.w_put_floats =
              (fun fs ->
                w.Cgsim.Port.w_put_floats fs;
                for _ = 1 to Array.length fs do
                  Aie.Trace.emit ev
                done);
            Cgsim.Port.w_put_ints =
              (fun is ->
                w.Cgsim.Port.w_put_ints is;
                for _ = 1 to Array.length is do
                  Aie.Trace.emit ev
                done);
            Cgsim.Port.w_space =
              (* An AIE core has no burst buffer behind its stream ports —
                 every write is one switch beat.  Advertising zero advisory
                 space makes interleave-aware block writers (put_window2)
                 degrade to the per-beat order the hardware would emit, so
                 the captured event order stays replayable against the
                 switch-FIFO capacities even though cgsim's own queues are
                 deep enough to absorb whole-group bursts. *)
              (match transport with
               | Aie.Trace.Stream -> (fun () -> 0)
               | Aie.Trace.Window _ | Aie.Trace.Rtp | Aie.Trace.Gmio -> w.Cgsim.Port.w_space);
          });
      around_body = (fun _ body () -> body ());
    }
  in
  let recorders =
    Array.to_list
      (Array.map
         (fun (inst : Cgsim.Serialized.kernel_inst) ->
           let r = Aie.Trace.create_recorder () in
           Aie.Trace.bind inst.inst_name r;
           inst.inst_name, r)
         g.kernels)
  in
  Aie.Trace.enabled := true;
  let finish () =
    Aie.Trace.enabled := false;
    List.iter (fun (name, _) -> Aie.Trace.unbind name) recorders
  in
  (* The caller's hooks (if any) wrap the capture wrappers, so capture
     records the traffic the kernels actually performed.  Fusion is
     forced off: replay models one tile per kernel, so capture must see
     every kernel on its own fiber with real queues between them. *)
  let config =
    Cgsim.Run_config.with_fuse false
      (Cgsim.Run_config.with_hooks
         (Cgsim.Runtime.compose_hooks config.Cgsim.Run_config.hooks hooks)
         config)
  in
  let ctx = Cgsim.Runtime.instantiate ~config g in
  let outcome =
    Fun.protect ~finally:finish (fun () -> Cgsim.Runtime.run ctx ~sources ~sinks)
  in
  let stats =
    match outcome with
    | Cgsim.Runtime.Completed stats -> stats
    | o ->
      (* A capture cut short by deadline, cancellation or kernel failure
         has no replayable trace; surface it as a simulator error. *)
      fail "capture of %s did not complete: %a" g.Cgsim.Serialized.gname Cgsim.Runtime.pp_outcome
        o
  in
  let traces = List.map (fun (name, r) -> name, Aie.Trace.events r) recorders in
  let events_total =
    List.fold_left (fun acc (_, r) -> acc + Aie.Trace.event_count r) 0 recorders
  in
  { traces; traffic = Cgsim.Runtime.net_traffic ctx; stats; events_total }

(* ------------------------------------------------------------------ *)
(* Phase 2: virtual-time replay                                        *)
(* ------------------------------------------------------------------ *)

type wentry = {
  avail : float;  (* cycle at which the bytes are visible to readers *)
  upto : int;  (* cumulative channel bytes including this entry *)
}

type rstate = {
  mutable cursor : int;  (* cumulative bytes consumed *)
  mutable widx : int;  (* index into wentries for avail lookup *)
}

type chan = {
  capacity : int;  (* bytes *)
  route_cycles : int;
  mutable wentries : wentry array;  (* in write order; [wlen] live entries *)
  mutable wlen : int;
  mutable produced : int;  (* cumulative bytes *)
  mutable last_avail : float;
  mutable readers : rstate list;
  mutable last_consume : float;
  mutable wait_read : proc list;
  mutable wait_write : proc list;
}

and proc = {
  p_name : string;
  mutable segs : Segments.seg list;
  mutable time : float;
  mutable runnable : bool;
  mutable done_ : bool;
  mutable marks_rev : float list;
  mutable busy : int;
  mutable io_remaining : int;  (* bytes left of the head Rd/Wr; -1 = fresh *)
  mutable was_blocked : bool;  (* head segment blocked at least once *)
  reads : (int, rstate) Hashtbl.t;  (* chan id -> this proc's read cursor *)
}

let min_cursor ch =
  match ch.readers with
  | [] -> ch.produced
  | r :: rest -> List.fold_left (fun acc r -> min acc r.cursor) r.cursor rest

(* Availability time of cumulative byte position [upto] for reader [r];
   amortized O(1) via the reader's cached entry index. *)
let avail_time ch r upto =
  while r.widx < ch.wlen && ch.wentries.(r.widx).upto < upto do
    r.widx <- r.widx + 1
  done;
  if r.widx < ch.wlen then Some ch.wentries.(r.widx).avail else None

let wake_readers ch =
  List.iter (fun p -> p.runnable <- true) ch.wait_read;
  ch.wait_read <- []

let wake_writers ch =
  List.iter (fun p -> p.runnable <- true) ch.wait_write;
  ch.wait_write <- []

let push_write ch ~avail bytes =
  let avail = Float.max avail ch.last_avail in
  ch.last_avail <- avail;
  ch.produced <- ch.produced + bytes;
  if ch.wlen >= Array.length ch.wentries then begin
    let grown = Array.make (max 16 (2 * Array.length ch.wentries)) { avail = 0.0; upto = 0 } in
    Array.blit ch.wentries 0 grown 0 ch.wlen;
    ch.wentries <- grown
  end;
  ch.wentries.(ch.wlen) <- { avail; upto = ch.produced };
  ch.wlen <- ch.wlen + 1;
  wake_readers ch

(* One step of a process: execute the head segment if possible.  Returns
   [true] when progress was made. *)
let step chans p =
  match p.segs with
  | [] ->
    p.done_ <- true;
    p.runnable <- false;
    true
  | seg :: rest ->
    let finish_seg () = p.segs <- rest in
    (match seg with
     | Segments.Compute c ->
       p.time <- p.time +. float_of_int c;
       p.busy <- p.busy + c;
       finish_seg ();
       true
     | Segments.Mark ->
       p.marks_rev <- p.time :: p.marks_rev;
       finish_seg ();
       true
     | Segments.Rtp_in { chan } ->
       let ch = chans.(chan) in
       let r =
         match Hashtbl.find_opt p.reads chan with
         | Some r -> r
         | None -> fail "%s: rtp read on channel %d without registration" p.p_name chan
       in
       (* RTP values are written before the graph starts; available at
          their write entry time, or 0 if the producer is a source. *)
       (match avail_time ch r (r.cursor + 1) with
        | Some avail ->
          p.time <- Float.max p.time avail +. 1.0;
          r.cursor <- r.cursor + 1;
          (* consume the remaining bytes of the scalar *)
          finish_seg ();
          true
        | None ->
          if ch.produced > r.cursor then (finish_seg (); true)
          else begin
            p.runnable <- false;
            ch.wait_read <- p :: ch.wait_read;
            false
          end)
     | Segments.Rd { chan; bytes; core } | Segments.Win_in { chan; bytes; core } ->
       let atomic = match seg with Segments.Win_in _ -> true | _ -> false in
       let ch = chans.(chan) in
       let r =
         match Hashtbl.find_opt p.reads chan with
         | Some r -> r
         | None -> fail "%s: read on channel %d without registration" p.p_name chan
       in
       if p.io_remaining < 0 then p.io_remaining <- bytes;
       (* Window acquires are all-or-nothing (the lock releases only when
          the DMA filled the buffer); stream reads drain incrementally so
          transfers larger than the switch FIFO cannot deadlock. *)
       let available = ch.produced - r.cursor in
       let want = if atomic then p.io_remaining else min p.io_remaining (max available 0) in
       if (atomic && available < p.io_remaining) || available <= 0 then begin
         p.runnable <- false;
         ch.wait_read <- p :: ch.wait_read;
         false
       end
       else begin
         let take = if atomic then p.io_remaining else want in
         let needed = r.cursor + take in
         (match avail_time ch r needed with
          | Some avail -> p.time <- Float.max p.time avail
          | None -> ());
         r.cursor <- needed;
         p.io_remaining <- p.io_remaining - take;
         ch.last_consume <- Float.max ch.last_consume p.time;
         wake_writers ch;
         if p.io_remaining = 0 then begin
           p.time <- p.time +. float_of_int core;
           p.busy <- p.busy + core;
           p.io_remaining <- -1;
           finish_seg ()
         end;
         true
       end
     | Segments.Wr { chan; bytes; core } | Segments.Win_out { chan; bytes; core } ->
       let ch = chans.(chan) in
       if p.io_remaining < 0 then p.io_remaining <- bytes;
       let space = ch.capacity - (ch.produced - min_cursor ch) in
       if space <= 0 then begin
         p.runnable <- false;
         p.was_blocked <- true;
         ch.wait_write <- p :: ch.wait_write;
         false
       end
       else begin
         let put = min p.io_remaining space in
         (* If this write had to wait, the space it uses appeared no
            earlier than the consumer's freeing read. *)
         if p.was_blocked then begin
           p.time <- Float.max p.time ch.last_consume;
           p.was_blocked <- false
         end;
         let transfer =
           float_of_int
             (max 1 ((put + Aie.Cfg.stream_bytes_per_cycle - 1) / Aie.Cfg.stream_bytes_per_cycle))
         in
         let avail = p.time +. float_of_int ch.route_cycles +. transfer in
         push_write ch ~avail put;
         p.io_remaining <- p.io_remaining - put;
         if p.io_remaining = 0 then begin
           p.time <- p.time +. float_of_int core;
           p.busy <- p.busy + core;
           p.io_remaining <- -1;
           finish_seg ()
         end
         else
           (* Larger-than-FIFO burst: the core is stalled at stream rate
              while the FIFO drains. *)
           p.time <- p.time +. transfer;
         true
       end)

(* Source/sink segment synthesis: chunked PLIO transfers. *)

let chunked_total ~elem_bytes ~elems =
  let chunk_elems = max 1 (64 / max 1 elem_bytes) in
  let rec build remaining acc =
    if remaining <= 0 then List.rev acc
    else begin
      let n = min chunk_elems remaining in
      build (remaining - n) (n :: acc)
    end
  in
  build elems []

let source_segs ~chan ~elem_bytes ~elems =
  List.map
    (fun n ->
      let bytes = n * elem_bytes in
      (* PLIO at 625 MHz x 64 bit = 4 B per AIE cycle. *)
      Segments.Wr { chan; bytes; core = max 1 (bytes / Aie.Cfg.plio_bytes_per_pl_cycle * 2) })
    (chunked_total ~elem_bytes ~elems)

let sink_segs ~chan ~elem_bytes ~elems =
  List.map
    (fun n ->
      let bytes = n * elem_bytes in
      Segments.Rd { chan; bytes; core = max 1 (bytes / Aie.Cfg.plio_bytes_per_pl_cycle * 2) })
    (chunked_total ~elem_bytes ~elems)

let replay (d : Deploy.t) (cap : capture_result) =
  let g = d.Deploy.graph in
  (* Compile every kernel trace first: aggregated loop traffic determines
     how much channel buffering the replay needs (pipelined loops stream
     continuously on real hardware; at chunk granularity the FIFO must
     absorb one chunk or compute and transfer would falsely serialize). *)
  let kernel_segs =
    Array.to_list
      (Array.map
         (fun (inst : Cgsim.Serialized.kernel_inst) ->
           let chan_of_port port =
             let rec find i =
               if i >= Array.length inst.ports then fail "unknown port %s in trace" port
               else if
                 String.equal port
                   (Printf.sprintf "%s.%s" inst.inst_name inst.ports.(i).Cgsim.Kernel.pname)
               then inst.port_nets.(i)
               else find (i + 1)
             in
             find 0
           in
           let events =
             match List.assoc_opt inst.inst_name cap.traces with
             | Some evs -> evs
             | None -> fail "no trace captured for kernel %s" inst.inst_name
           in
           let thunked = d.Deploy.adapter = Deploy.Thunk && inst.realm = Cgsim.Kernel.Aie in
           inst, Segments.compile ~env:{ Segments.chan_of_port } ~thunked events)
         g.kernels)
  in
  let max_seg_bytes = Array.make (Array.length g.nets) 0 in
  List.iter
    (fun (_, segs) ->
      List.iter
        (function
          | Segments.Rd { chan; bytes; _ } | Segments.Wr { chan; bytes; _ } ->
            if bytes > max_seg_bytes.(chan) then max_seg_bytes.(chan) <- bytes
          | Segments.Win_in _ | Segments.Win_out _ | Segments.Compute _ | Segments.Rtp_in _
          | Segments.Mark ->
            ())
        segs)
    kernel_segs;
  let chans =
    Array.map
      (fun (n : Cgsim.Serialized.net) ->
        let elem = Cgsim.Dtype.size_bytes n.dtype in
        let capacity =
          match Cgsim.Settings.resolved_transport n.settings with
          | Cgsim.Settings.Window w -> max (2 * w) (2 * max_seg_bytes.(n.net_id))
          | Cgsim.Settings.Rtp -> max elem 4
          | Cgsim.Settings.Gmio ->
            (* DDR-backed: effectively unbounded buffering. *)
            max 65536 (2 * max_seg_bytes.(n.net_id))
          | Cgsim.Settings.Stream ->
            let fifo = Aie.Cfg.stream_switch_fifo_words * 4 in
            let base = max fifo (2 * elem) in
            let base = max base (2 * max_seg_bytes.(n.net_id)) in
            (* Shim DMAs buffer global I/O more deeply than switch FIFOs. *)
            if n.global_input <> None || n.global_output <> None then max base 512 else base
        in
        let gmio_latency =
          match Cgsim.Settings.resolved_transport n.settings with
          | Cgsim.Settings.Gmio -> Aie.Cfg.gmio_latency_cycles
          | Cgsim.Settings.Stream | Cgsim.Settings.Window _ | Cgsim.Settings.Rtp -> 0
        in
        {
          capacity;
          route_cycles = gmio_latency + Aie.Array_model.route_latency_cycles (Deploy.net_hops d n);
          wentries = [||];
          wlen = 0;
          produced = 0;
          last_avail = 0.0;
          readers = [];
          last_consume = 0.0;
          wait_read = [];
          wait_write = [];
        })
      g.nets
  in
  let procs = ref [] in
  let new_proc name segs =
    let p =
      {
        p_name = name;
        segs;
        time = 0.0;
        runnable = true;
        done_ = false;
        marks_rev = [];
        busy = 0;
        io_remaining = -1;
        was_blocked = false;
        reads = Hashtbl.create 4;
      }
    in
    procs := p :: !procs;
    p
  in
  let register_reader p chan =
    if not (Hashtbl.mem p.reads chan) then begin
      let r = { cursor = 0; widx = 0 } in
      Hashtbl.add p.reads chan r;
      chans.(chan).readers <- r :: chans.(chan).readers
    end
  in
  (* Kernel processes from the precompiled traces. *)
  List.iter
    (fun ((inst : Cgsim.Serialized.kernel_inst), segs) ->
      let p = new_proc inst.inst_name segs in
      Array.iteri
        (fun i (spec : Cgsim.Kernel.port_spec) ->
          if spec.Cgsim.Kernel.dir = Cgsim.Kernel.In then register_reader p inst.port_nets.(i))
        inst.ports)
    kernel_segs;
  (* Source and sink processes on global nets, sized by observed traffic. *)
  Array.iter
    (fun (n : Cgsim.Serialized.net) ->
      let elem_bytes = Cgsim.Dtype.size_bytes n.dtype in
      let elems = cap.traffic.(n.net_id) in
      if n.global_input <> None then
        ignore
          (new_proc
             (Printf.sprintf "plio-in:%s" (Option.value n.global_input ~default:"?"))
             (source_segs ~chan:n.net_id ~elem_bytes ~elems));
      if n.global_output <> None then begin
        let p =
          new_proc
            (Printf.sprintf "plio-out:%s" (Option.value n.global_output ~default:"?"))
            (sink_segs ~chan:n.net_id ~elem_bytes ~elems)
        in
        register_reader p n.net_id
      end)
    g.nets;
  let procs = !procs in
  (* Event loop: always advance the runnable process with the smallest
     local time (earliest-first keeps channel causality). *)
  let rec drive () =
    let next =
      List.fold_left
        (fun acc p ->
          if p.done_ || not p.runnable then acc
          else
            match acc with
            | Some q when q.time <= p.time -> acc
            | _ -> Some p)
        None procs
    in
    match next with
    | Some p ->
      (match Sys.getenv_opt "AIESIM_DEBUG" with
       | Some _ ->
         (match p.segs with
          | seg :: _ ->
            Format.eprintf "%-20s t=%8.0f io=%6d %a@." p.p_name p.time p.io_remaining
              Segments.pp_seg seg
          | [] -> Format.eprintf "%-20s t=%8.0f done@." p.p_name p.time)
       | None -> ());
      ignore (step chans p);
      drive ()
    | None ->
      if List.exists (fun p -> not p.done_) procs then begin
        let blocked =
          List.filter_map
            (fun p ->
              if p.done_ then None
              else
                Some
                  (Format.asprintf "%s@t=%.0f on [%a] (io_remaining=%d, %d segs left)" p.p_name
                     p.time
                     (fun ppf -> function
                       | [] -> Format.pp_print_string ppf "-"
                       | seg :: _ -> Segments.pp_seg ppf seg)
                     p.segs p.io_remaining (List.length p.segs)))
            procs
        in
        fail "replay deadlock; blocked processes: %s" (String.concat "; " blocked)
      end
  in
  drive ();
  procs

let kernel_reports procs (g : Cgsim.Serialized.t) =
  Array.to_list
    (Array.map
       (fun (inst : Cgsim.Serialized.kernel_inst) ->
         let p = List.find (fun p -> String.equal p.p_name inst.inst_name) procs in
         let marks = List.rev p.marks_rev in
         match marks with
         | [] ->
           {
             k_name = p.p_name;
             iterations = 0;
             first_mark_cycles = p.time;
             avg_interval_cycles = p.time;
             busy_cycles = p.busy;
             marks;
           }
         | [ only ] ->
           {
             k_name = p.p_name;
             iterations = 1;
             first_mark_cycles = only;
             avg_interval_cycles = only;
             busy_cycles = p.busy;
             marks;
           }
         | first :: _ ->
           let last = List.nth marks (List.length marks - 1) in
           let n = List.length marks in
           {
             k_name = p.p_name;
             iterations = n;
             first_mark_cycles = first;
             avg_interval_cycles = (last -. first) /. float_of_int (n - 1);
             busy_cycles = p.busy;
             marks;
           })
       g.kernels)

(* Mirror the replay timeline into the active obs session, on the
   virtual-time pid: cycle timestamps become ns at the modelled clock,
   one track per kernel ("aie:<name>").  Together with the wall-clock
   spans the capture phase already emitted (scheduler slices, queue
   blocked time), one Perfetto view then shows a cgsim run and its
   aiesim replay side by side. *)
let report_to_trace (r : report) =
  if Obs.Trace.is_on () then begin
    let pid = Obs.Event.virtual_pid in
    List.iter
      (fun k ->
        let track = "aie:" ^ k.k_name in
        (match k.marks with
         | [] -> ()
         | first :: _ ->
           Obs.Trace.span ~track ~pid ~cat:"sim" ~name:"fill" ~ts_ns:0.0
             ~dur_ns:(Aie.Cfg.cycles_to_ns first) ());
        let iter_key = "aie.iter_ns:" ^ k.k_name in
        let rec pairs i = function
          | a :: (b :: _ as rest) ->
            let dur = Aie.Cfg.cycles_to_ns (b -. a) in
            Obs.Trace.span ~track ~pid ~cat:"sim"
              ~arg:("iteration", float_of_int i)
              ~name:"iter" ~ts_ns:(Aie.Cfg.cycles_to_ns a) ~dur_ns:dur ();
            Obs.Trace.observe_ns iter_key dur;
            pairs (i + 1) rest
          | _ -> ()
        in
        pairs 0 k.marks;
        Obs.Trace.add_metric ("aie.busy_cycles:" ^ k.k_name) (float_of_int k.busy_cycles))
      r.kernels;
    Obs.Trace.span ~track:"aie:replay" ~pid ~cat:"sim" ~name:("replay " ^ r.label) ~ts_ns:0.0
      ~dur_ns:(Aie.Cfg.cycles_to_ns r.total_cycles) ()
  end

let run ?config (d : Deploy.t) ~sources ~sinks =
  let cap = capture ?config d ~sources ~sinks in
  let procs = replay d cap in
  let kernels = kernel_reports procs d.Deploy.graph in
  let total_cycles = List.fold_left (fun acc p -> Float.max acc p.time) 0.0 procs in
  (* Report per-block time at the output-side kernel: the one whose first
     mark lands latest (deepest in the pipeline). *)
  let reporting =
    List.fold_left
      (fun acc k ->
        match acc with
        | None -> Some k
        | Some b -> if k.first_mark_cycles > b.first_mark_cycles then Some k else acc)
      None
      (List.filter (fun k -> k.iterations > 0) kernels)
  in
  let blocks, ns_per_block =
    match reporting with
    | Some k ->
      (* Kernels mark at the top of their main loop, so a run of N blocks
         records N+1 marks (the last one precedes end-of-stream). *)
      max 1 (k.iterations - 1), Aie.Cfg.cycles_to_ns k.avg_interval_cycles
    | None -> 0, Aie.Cfg.cycles_to_ns total_cycles
  in
  let report =
    {
      label = d.Deploy.label;
      total_cycles;
      blocks;
      ns_per_block;
      kernels;
      capture_stats = cap.stats;
      trace_events = cap.events_total;
    }
  in
  report_to_trace report;
  report

let relative_throughput_percent ~baseline ~extracted =
  if extracted.ns_per_block <= 0.0 then 0.0
  else 100.0 *. baseline.ns_per_block /. extracted.ns_per_block

let timeline_csv r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kernel,iteration,start_cycles,start_ns\n";
  List.iter
    (fun k ->
      List.iteri
        (fun i t ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%.1f,%.2f\n" k.k_name i t (Aie.Cfg.cycles_to_ns t)))
        k.marks)
    r.kernels;
  Buffer.contents buf

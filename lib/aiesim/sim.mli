(** The cycle-approximate AIE simulator (the aiesim analogue).

    Simulation happens in two phases:

    + {b Capture}: the graph runs functionally under the cgsim cooperative
      runtime with tracing enabled — every kernel fiber records its
      architectural op trace and every port access is tagged with its
      transport.  Functional outputs land in the caller's sinks, so
      correctness and timing come from the same execution.
    + {b Replay}: each kernel's trace is compiled to a segment program
      ({!Segments}) and replayed on a virtual-time event engine in which
      kernels, global sources (PLIO) and sinks advance local clocks and
      synchronise through finite-capacity stream channels with hop
      latency, transfer bandwidth, window ping-pong locks and
      backpressure.

    The report carries the paper's Table 1 metric: steady-state time
    between kernel iterations, in cycles and nanoseconds at 1250 MHz. *)

exception Sim_error of string

type kernel_report = {
  k_name : string;
  iterations : int;  (** number of Iteration_marks replayed *)
  first_mark_cycles : float;  (** pipeline-fill latency to first block *)
  avg_interval_cycles : float;  (** steady-state cycles between blocks *)
  busy_cycles : int;  (** total core-busy cycles *)
  marks : float list;  (** iteration timestamps, in cycles *)
}

type report = {
  label : string;
  total_cycles : float;  (** makespan of the replay *)
  blocks : int;  (** iterations of the reporting (output-side) kernel *)
  ns_per_block : float;  (** Table 1's "processing time per input block" *)
  kernels : kernel_report list;
  capture_stats : Cgsim.Sched.stats;  (** functional-phase scheduler stats *)
  trace_events : int;  (** total captured events (simulation effort) *)
}

val pp_report : Format.formatter -> report -> unit

(** [run deploy ~sources ~sinks] simulates one execution.  Sinks receive
    the functional outputs.  [config] governs the functional capture
    phase (queue knobs, deadline/fuel, fault plan); its hooks compose
    outside the capture wrappers.  Raises {!Sim_error} on replay
    deadlock (a graph whose traffic cannot fit the modelled buffering)
    or when the capture phase does not complete — deadline, cancellation
    or kernel failure, with the structured outcome in the message. *)
val run :
  ?config:Cgsim.Run_config.t ->
  Deploy.t ->
  sources:Cgsim.Io.source list ->
  sinks:Cgsim.Io.sink list ->
  report

(** Emit the replay timeline into the active {!Obs.Trace} session on
    the virtual-time pid: per kernel, a pipeline-fill span plus one span
    per iteration interval, with matching [aie.iter_ns:*] histograms.
    {!run} already does this when tracing is on; exposed for replaying a
    stored report into a session started later.  No-op when tracing is
    off. *)
val report_to_trace : report -> unit

(** Throughput ratio [baseline/extracted] of two reports (Table 1's
    "relative throughput" column, in percent). *)
val relative_throughput_percent : baseline:report -> extracted:report -> float

(** CSV timeline of the replay: one line per kernel iteration
    ([kernel,iteration,start_cycles,start_ns]), in execution order —
    the equivalent of the execution trace the paper reads Table 1's
    inter-iteration times from. *)
val timeline_csv : report -> string

let group = 16

let quads_per_block = 256

let quad_bytes = 8

let block_bytes = quads_per_block * quad_bytes

let quad_dtype =
  Cgsim.Dtype.Struct
    [
      "pix", Cgsim.Dtype.Vector (Cgsim.Dtype.U8, 4);
      "xf", Cgsim.Dtype.U16;
      "yf", Cgsim.Dtype.U16;
    ]

let quad_value (q : Workloads.Images.quad) =
  Cgsim.Value.Rec
    [
      ( "pix",
        Cgsim.Value.Vec
          [|
            Cgsim.Value.Int q.p00;
            Cgsim.Value.Int q.p01;
            Cgsim.Value.Int q.p10;
            Cgsim.Value.Int q.p11;
          |] );
      "xf", Cgsim.Value.Int q.xf;
      "yf", Cgsim.Value.Int q.yf;
    ]

let quad_of_value v =
  let pix = Cgsim.Value.to_vec (Cgsim.Value.field v "pix") in
  {
    Workloads.Images.p00 = Cgsim.Value.to_int pix.(0);
    p01 = Cgsim.Value.to_int pix.(1);
    p10 = Cgsim.Value.to_int pix.(2);
    p11 = Cgsim.Value.to_int pix.(3);
    xf = Cgsim.Value.to_int (Cgsim.Value.field v "xf");
    yf = Cgsim.Value.to_int (Cgsim.Value.field v "yf");
  }

(* Vectorized blend over one 16-request group.  Pixels are upshifted to
   Q8, both horizontal blends and the vertical blend use a Q15 multiply
   followed by shift-round (32-bit accumulators, no mid-pipeline
   saturation), matching Workloads.Reference.bilinear_scalar exactly. *)
let blend_group quads =
  let open Aie.Intrinsics in
  if Array.length quads <> group then invalid_arg "bilinear: expected a 16-quad group";
  let lane f = Array.map f quads in
  let p00 = lane (fun q -> q.Workloads.Images.p00) in
  let p01 = lane (fun q -> q.Workloads.Images.p01) in
  let p10 = lane (fun q -> q.Workloads.Images.p10) in
  let p11 = lane (fun q -> q.Workloads.Images.p11) in
  let xf = lane (fun q -> q.Workloads.Images.xf) in
  let yf = lane (fun q -> q.Workloads.Images.yf) in
  let q8 v = ups16 ~shift:8 v in
  let sub_wide a b =
    Aie.Trace.vop ~slots:2 "sub32";
    Aie.Vec.isub a b
  in
  let blend a b f =
    (* a + ((b - a) * f) >> 15, rounded, in 32-bit accumulators *)
    let delta = sub_wide b a in
    let prod = mac32 (Aie.Vec.isplat group 0) delta f in
    add32 a (srs32 ~shift:15 prod)
  in
  let top = blend (q8 p00) (q8 p01) xf in
  let bot = blend (q8 p10) (q8 p11) xf in
  let out = blend top bot yf in
  Array.map (fun v -> Cgsim.Value.clamp_int Cgsim.Dtype.U16 v) out

let kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"bilinear_kernel"
    ~rates:[ "req", 1; "out", 1 ]
    ~pure:true ~stateless:true
    [
      Cgsim.Kernel.in_port "req" quad_dtype;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.U16;
    ]
    (fun b ->
      let input = Cgsim.Kernel.rd b 0 and output = Cgsim.Kernel.wr b 0 in
      let groups_per_block = quads_per_block / group in
      while true do
        Aie.Trace.mark_iteration ();
        Aie.Trace.with_pipelined_loop ~trip:groups_per_block (fun _g ->
            let quads = Array.map quad_of_value (Cgsim.Port.get_window input group) in
            let out = blend_group quads in
            Aie.Intrinsics.scalar_op ~count:2 "addr";
            Cgsim.Port.put_window_int output out)
      done)

let () = Cgsim.Registry.register kernel

let graph () =
  Cgsim.Builder.make ~name:"bilinear" ~inputs:[ "req", quad_dtype ] (fun b conns ->
      let out = Cgsim.Builder.net b Cgsim.Dtype.U16 in
      ignore (Cgsim.Builder.add_kernel b kernel [ List.hd conns; out ]);
      Cgsim.Builder.attach_attributes b out
        [ Cgsim.Attr.s "plio_name" "bilinear_out"; Cgsim.Attr.i "plio_width" 64 ];
      [ out ])

let image = lazy (Workloads.Images.synthetic ~width:256 ~height:256)

let input_quads ~reps =
  Workloads.Images.sample_quads ~seed:7 (Lazy.force image) (reps * quads_per_block)

let sources ~reps =
  [ Cgsim.Io.of_array (Array.map quad_value (input_quads ~reps)) ]

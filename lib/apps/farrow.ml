let samples_per_window = 2048

let block_bytes = 2 * samples_per_window

let group = 32

let taps = Workloads.Reference.farrow_taps

let cascade_dtype = Cgsim.Dtype.Vector (Cgsim.Dtype.I16, 2)

let window_settings = Cgsim.Settings.window block_bytes

let pair a b = Cgsim.Value.Vec [| Cgsim.Value.Int a; Cgsim.Value.Int b |]

(* --------------------------- stage 1 --------------------------- *)

let stage1 =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"farrow_stage1"
    ~rates:[ "in", samples_per_window; "c01", samples_per_window; "c23", samples_per_window ]
    ~pure:true
    [
      Cgsim.Kernel.in_port "in" Cgsim.Dtype.I16 ~settings:window_settings;
      Cgsim.Kernel.out_port "c01" cascade_dtype;
      Cgsim.Kernel.out_port "c23" cascade_dtype;
    ]
    (fun b ->
      let input = Cgsim.Kernel.rd b 0 in
      let c01 = Cgsim.Kernel.wr b 0 and c23 = Cgsim.Kernel.wr b 1 in
      let coeffs = Workloads.Reference.farrow_coeffs_q15 in
      (* Sample history across window boundaries (zero-initialised, as in
         the scalar reference). *)
      let history = Array.make (taps - 1) 0 in
      let groups = samples_per_window / group in
      while true do
        Aie.Trace.mark_iteration ();
        let samples = Cgsim.Port.get_window_int input samples_per_window in
        (* ext.(i + taps - 1) = samples.(i), prefixed with history. *)
        let ext = Array.append history samples in
        Aie.Intrinsics.scalar_op ~count:4 "win_setup";
        Aie.Trace.with_pipelined_loop ~trip:groups (fun g ->
            let base = g * group in
            (* One shifted 32-lane load per tap, shared by all four
               sub-filters. *)
            let x = Array.init taps (fun k -> Aie.Intrinsics.load_i16 ext (base + k) group) in
            let c =
              Array.map
                (fun row ->
                  let acc = ref (Aie.Vec.isplat group 0) in
                  for k = 0 to taps - 1 do
                    acc :=
                      Aie.Intrinsics.mac16 !acc x.(k) (Aie.Vec.isplat group row.(k))
                  done;
                  Aie.Intrinsics.srs16 ~shift:15 !acc)
                coeffs
            in
            Aie.Intrinsics.scalar_op ~count:2 "addr";
            (* stage2 drains c01/c23 interleaved per sample, so a
               whole-group burst on one port before the other would
               overrun the in-flight buffering of both streams and
               deadlock.  put_window2 writes the pair in lockstep chunks
               bounded by the tighter queue's free space — block-path
               transfers without changing the observable element order
               beyond what the consumer's interleave already absorbs. *)
            let out01 = Array.init group (fun s -> pair c.(0).(s) c.(1).(s)) in
            let out23 = Array.init group (fun s -> pair c.(2).(s) c.(3).(s)) in
            Cgsim.Port.put_window2 c01 c23 out01 out23);
        Array.blit samples (samples_per_window - (taps - 1)) history 0 (taps - 1)
      done)

(* --------------------------- stage 2 --------------------------- *)

let stage2 =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"farrow_stage2"
    ~rates:
      [ "c01", samples_per_window; "c23", samples_per_window; "d", 0; "out", samples_per_window ]
    ~pure:true
    [
      Cgsim.Kernel.in_port "c01" cascade_dtype;
      Cgsim.Kernel.in_port "c23" cascade_dtype;
      Cgsim.Kernel.in_port "d" Cgsim.Dtype.I16 ~settings:Cgsim.Settings.rtp;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.I16 ~settings:window_settings;
    ]
    (fun b ->
      let c01 = Cgsim.Kernel.rd b 0
      and c23 = Cgsim.Kernel.rd b 1
      and d_port = Cgsim.Kernel.rd b 2
      and output = Cgsim.Kernel.wr b 0 in
      let d = Cgsim.Port.get_int d_port in
      let dv = Aie.Vec.isplat group d in
      let groups = samples_per_window / group in
      while true do
        Aie.Trace.mark_iteration ();
        Aie.Trace.with_pipelined_loop ~trip:groups (fun _g ->
            let c = Array.init 4 (fun _ -> Array.make group 0) in
            (* Interleave the two cascade streams per sample, matching the
               producer's write order — with 32-word stream FIFOs a
               port-at-a-time drain would need more in-flight buffering
               than the switch provides. *)
            for s = 0 to group - 1 do
              let v01 = Cgsim.Value.to_vec (Cgsim.Port.get c01) in
              let v23 = Cgsim.Value.to_vec (Cgsim.Port.get c23) in
              c.(0).(s) <- Cgsim.Value.to_int v01.(0);
              c.(1).(s) <- Cgsim.Value.to_int v01.(1);
              c.(2).(s) <- Cgsim.Value.to_int v23.(0);
              c.(3).(s) <- Cgsim.Value.to_int v23.(1)
            done;
            (* Horner: acc = ((c3*d + c2)*d + c1)*d + c0 in Q15. *)
            let acc = ref c.(3) in
            for m = 2 downto 0 do
              let prod = Aie.Intrinsics.mul16 !acc dv in
              let shifted = Aie.Intrinsics.srs16 ~shift:15 prod in
              acc := Aie.Intrinsics.add16 shifted c.(m)
            done;
            let y = Aie.Intrinsics.srs16 ~shift:0 !acc in
            Aie.Intrinsics.scalar_op ~count:2 "addr";
            Cgsim.Port.put_window_int output y)
      done)

let () =
  Cgsim.Registry.register stage1;
  Cgsim.Registry.register stage2

let graph () =
  Cgsim.Builder.make ~name:"farrow"
    ~inputs:[ "d", Cgsim.Dtype.I16; "in", Cgsim.Dtype.I16 ]
    (fun b conns ->
      match conns with
      | [ d; input ] ->
        let c01 = Cgsim.Builder.net b cascade_dtype in
        let c23 = Cgsim.Builder.net b cascade_dtype in
        let out = Cgsim.Builder.net b Cgsim.Dtype.I16 in
        ignore (Cgsim.Builder.add_kernel b stage1 [ input; c01; c23 ]);
        ignore (Cgsim.Builder.add_kernel b stage2 [ c01; c23; d; out ]);
        Cgsim.Builder.attach_attributes b out
          [ Cgsim.Attr.s "plio_name" "farrow_out"; Cgsim.Attr.i "plio_width" 64 ];
        [ out ]
      | _ -> assert false)

let default_d_q15 = 13107 (* 0.4 *)

let input_samples ~reps =
  Workloads.Signals.chirp_i16 ~seed:11 ~amplitude:12000 (reps * samples_per_window)

let sources ~reps =
  [
    Cgsim.Io.rtp (Cgsim.Value.Int default_d_q15);
    Cgsim.Io.of_int_array Cgsim.Dtype.I16 (input_samples ~reps);
  ]

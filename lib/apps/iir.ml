let samples_per_window = 2048

let block_bytes = 4 * samples_per_window

let group = 8

let basis = 4 + 8 (* y1 y2 x1 x2 then x0..x7 *)

let window_settings = Cgsim.Settings.window block_bytes

(* Column j of the matrix: the contribution of basis element j to the
   eight outputs, obtained by running the biquad recurrence on the unit
   basis vector (linearity).  Basis layout: [y-1; y-2; x-1; x-2; x0..x7]. *)
let section_matrix (s : Workloads.Reference.biquad) =
  let open Workloads.Reference in
  let col j =
    let u k = if j = k then 1.0 else 0.0 in
    let y1 = ref (u 0) and y2 = ref (u 1) in
    let x1 = ref (u 2) and x2 = ref (u 3) in
    Array.init group (fun k ->
        let xk = u (4 + k) in
        let yk =
          (s.b0 *. xk) +. (s.b1 *. !x1) +. (s.b2 *. !x2) -. (s.a1 *. !y1) -. (s.a2 *. !y2)
        in
        x2 := !x1;
        x1 := xk;
        y2 := !y1;
        y1 := yk;
        yk)
  in
  Array.init basis (fun j -> Array.map Cgsim.Value.round_f32 (col j))

let kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"iir_kernel"
    ~rates:[ "in", samples_per_window; "out", samples_per_window ]
    ~pure:true
    [
      Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32 ~settings:window_settings;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32 ~settings:window_settings;
    ]
    (fun b ->
      let input = Cgsim.Kernel.rd b 0 and output = Cgsim.Kernel.wr b 0 in
      let sections = Workloads.Reference.iir_sections in
      let matrices = Array.map section_matrix sections in
      (* Boundary state per section, carried across groups and windows. *)
      let state = Array.map (fun _ -> [| 0.0; 0.0; 0.0; 0.0 |]) sections in
      let groups = samples_per_window / group in
      let buf = Array.make samples_per_window 0.0 in
      while true do
        Aie.Trace.mark_iteration ();
        let win = Cgsim.Port.get_window_f32 input samples_per_window in
        Array.blit win 0 buf 0 samples_per_window;
        Array.iteri
          (fun si m ->
            let st = state.(si) in
            Aie.Trace.with_pipelined_loop ~trip:groups (fun g ->
                let x = Aie.Intrinsics.load_f32 buf (g * group) group in
                let acc = ref (Aie.Intrinsics.fpsplat group 0.0) in
                for j = 0 to 3 do
                  acc := Aie.Intrinsics.fpmac !acc (Aie.Vec.fsplat group st.(j)) m.(j)
                done;
                for k = 0 to group - 1 do
                  acc := Aie.Intrinsics.fpmac !acc (Aie.Vec.fsplat group x.(k)) m.(4 + k)
                done;
                let y = !acc in
                (* Update boundary state: y1 y2 x1 x2. *)
                st.(1) <- y.(group - 2);
                st.(0) <- y.(group - 1);
                st.(3) <- x.(group - 2);
                st.(2) <- x.(group - 1);
                Aie.Intrinsics.scalar_op ~count:4 "state";
                Aie.Intrinsics.store_f32 buf (g * group) y))
          matrices;
        Aie.Intrinsics.scalar_op ~count:4 "win_ctl";
        Cgsim.Port.put_window_f32 output buf
      done)

let () = Cgsim.Registry.register kernel

let graph () =
  Cgsim.Builder.make ~name:"iir" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun b conns ->
      let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel b kernel [ List.hd conns; out ]);
      Cgsim.Builder.attach_attributes b out
        [ Cgsim.Attr.s "plio_name" "iir_out"; Cgsim.Attr.i "plio_width" 64 ];
      [ out ])

let input_samples ~reps = Workloads.Signals.step_noise_f32 ~seed:23 (reps * samples_per_window)

let sources ~reps = [ Cgsim.Io.of_f32_array (input_samples ~reps) ]

(** Uniform driver interface over the four evaluation applications.

    Benches and integration tests treat every app the same way: build the
    graph, make sources for N repetitions, collect sink outputs, check
    them against the golden reference.  One repetition is one input block
    as defined by the paper's Table 1 (bitonic 64 B, farrow 4096 B, IIR
    8192 B, bilinear 2048 B). *)

type t = {
  name : string;
  block_bytes : int;
  table2_reps : int;  (** The paper's Table 2 repetition count. *)
  graph : unit -> Cgsim.Serialized.t;
  sources : reps:int -> Cgsim.Io.source list;
  make_sinks : unit -> Cgsim.Io.sink list * (unit -> Cgsim.Value.t list);
      (** Sinks plus a thunk reading the primary output stream. *)
  check : reps:int -> Cgsim.Value.t list -> (unit, string) result;
      (** Validate the primary output against the scalar reference. *)
}

val bitonic : t
val farrow : t
val iir : t
val bilinear : t

(** In the paper's Table 1/2 row order. *)
val all : t list

val find : string -> t option

(** Run the app once under the plain cgsim runtime and check outputs;
    convenience used by tests and the quickstart of the bench harness.
    Any non-[Completed] outcome (deadline, cancellation, kernel failure
    — e.g. under a [config] with faults) is rendered into the [Error]. *)
val run_cgsim : ?config:Cgsim.Run_config.t -> t -> reps:int -> (Cgsim.Sched.stats, string) result

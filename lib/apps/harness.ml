type t = {
  name : string;
  block_bytes : int;
  table2_reps : int;
  graph : unit -> Cgsim.Serialized.t;
  sources : reps:int -> Cgsim.Io.source list;
  make_sinks : unit -> Cgsim.Io.sink list * (unit -> Cgsim.Value.t list);
  check : reps:int -> Cgsim.Value.t list -> (unit, string) result;
}

let single_buffer_sinks () =
  let sink, contents = Cgsim.Io.buffer () in
  [ sink ], contents

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let check_floats ~what ~tol expected actual =
  if Array.length expected <> List.length actual then
    err "%s: expected %d outputs, got %d" what (Array.length expected) (List.length actual)
  else begin
    let rec scan i = function
      | [] -> Ok ()
      | v :: rest ->
        let a = Cgsim.Value.to_float v in
        let e = expected.(i) in
        if Float.abs (a -. e) > tol +. (tol *. Float.abs e) then
          err "%s: output %d: expected %g, got %g" what i e a
        else scan (i + 1) rest
    in
    scan 0 actual
  end

let check_ints ~what expected actual =
  if Array.length expected <> List.length actual then
    err "%s: expected %d outputs, got %d" what (Array.length expected) (List.length actual)
  else begin
    let rec scan i = function
      | [] -> Ok ()
      | v :: rest ->
        let a = Cgsim.Value.to_int v in
        if a <> expected.(i) then err "%s: output %d: expected %d, got %d" what i expected.(i) a
        else scan (i + 1) rest
    in
    scan 0 actual
  end

let bitonic =
  {
    name = "bitonic";
    block_bytes = Bitonic.block_bytes;
    table2_reps = 1024;
    graph = Bitonic.graph;
    sources = (fun ~reps -> Bitonic.sources ~reps);
    make_sinks = single_buffer_sinks;
    check =
      (fun ~reps actual ->
        let input = Bitonic.input_floats ~reps in
        let expected =
          Array.concat
            (List.init reps (fun blk ->
                 Workloads.Reference.sort_f32 (Array.sub input (blk * Bitonic.lanes) Bitonic.lanes)))
        in
        check_floats ~what:"bitonic" ~tol:0.0 expected actual);
  }

let farrow =
  {
    name = "farrow";
    block_bytes = Farrow.block_bytes;
    table2_reps = 512;
    graph = Farrow.graph;
    sources = (fun ~reps -> Farrow.sources ~reps);
    make_sinks = single_buffer_sinks;
    check =
      (fun ~reps actual ->
        let input = Farrow.input_samples ~reps in
        let expected =
          Workloads.Reference.farrow_scalar ~d_q15:Farrow.default_d_q15 input
        in
        check_ints ~what:"farrow" expected actual);
  }

let iir =
  {
    name = "iir";
    block_bytes = Iir.block_bytes;
    table2_reps = 256;
    graph = Iir.graph;
    sources = (fun ~reps -> Iir.sources ~reps);
    make_sinks = single_buffer_sinks;
    check =
      (fun ~reps actual ->
        let input = Iir.input_samples ~reps in
        let expected =
          Workloads.Reference.iir_scalar Workloads.Reference.iir_sections input
        in
        (* The vectorized kernel uses an f32 coefficient-matrix
           formulation; allow a small tolerance vs. the f64 direct form. *)
        check_floats ~what:"iir" ~tol:2e-3 expected actual);
  }

let bilinear =
  {
    name = "bilinear";
    block_bytes = Bilinear.block_bytes;
    table2_reps = 256;
    graph = Bilinear.graph;
    sources = (fun ~reps -> Bilinear.sources ~reps);
    make_sinks = single_buffer_sinks;
    check =
      (fun ~reps actual ->
        let quads = Bilinear.input_quads ~reps in
        let expected =
          Array.map
            (fun (q : Workloads.Images.quad) ->
              Workloads.Reference.bilinear_scalar ~p00:q.p00 ~p01:q.p01 ~p10:q.p10 ~p11:q.p11
                ~xf:q.xf ~yf:q.yf)
            quads
        in
        check_ints ~what:"bilinear" expected actual);
  }

let all = [ bitonic; farrow; iir; bilinear ]

let find name = List.find_opt (fun t -> String.equal t.name name) all

let run_cgsim ?config t ~reps =
  let g = t.graph () in
  let sinks, contents = t.make_sinks () in
  match Cgsim.Runtime.execute ?config g ~sources:(t.sources ~reps) ~sinks with
  | exception e -> Error (Printexc.to_string e)
  | Cgsim.Runtime.Completed stats ->
    (match t.check ~reps (contents ()) with
     | Ok () -> Ok stats
     | Error e -> Error e)
  | o -> Error (Format.asprintf "%a" Cgsim.Runtime.pp_outcome o)

let lanes = 16

let block_bytes = 4 * lanes

(* Bitonic network for 16 lanes: for merge sizes k = 2,4,8,16 and strides
   j = k/2 .. 1, lane i exchanges with lane (i xor j); ascending regions
   are those with (i land k) = 0.  A lane keeps the minimum of the pair
   when it is the lower index of an ascending pair or the upper index of a
   descending pair. *)
let stages =
  let stage k j =
    let perm = Array.init lanes (fun i -> i lxor j) in
    let keep_min =
      Array.init lanes (fun i ->
          let ascending = i land k = 0 in
          let lower = i land j = 0 in
          Bool.equal ascending lower)
    in
    perm, keep_min
  in
  List.concat_map
    (fun k ->
      let rec strides j = if j = 0 then [] else stage k j :: strides (j / 2) in
      strides (k / 2))
    [ 2; 4; 8; 16 ]

let sort_vector v =
  if Array.length v <> lanes then invalid_arg "bitonic: expected 16 lanes";
  List.fold_left
    (fun v (perm, keep_min) ->
      let partner = Aie.Intrinsics.fpshuffle v perm in
      let lo = Aie.Intrinsics.fpmin v partner in
      let hi = Aie.Intrinsics.fpmax v partner in
      Aie.Intrinsics.fpselect keep_min lo hi)
    v stages

let kernel =
  Cgsim.Kernel.define ~realm:Cgsim.Kernel.Aie ~name:"bitonic_kernel"
    ~rates:[ "in", lanes; "out", lanes ]
    ~pure:true ~stateless:true
    [
      Cgsim.Kernel.in_port "in" Cgsim.Dtype.F32;
      Cgsim.Kernel.out_port "out" Cgsim.Dtype.F32;
    ]
    (fun b ->
      let input = Cgsim.Kernel.rd b 0 and output = Cgsim.Kernel.wr b 0 in
      while true do
        Aie.Trace.mark_iteration ();
        let v = Cgsim.Port.get_window_f32 input lanes in
        let sorted = sort_vector v in
        Aie.Intrinsics.scalar_op ~count:2 "blk_ctl";
        Cgsim.Port.put_window_f32 output sorted
      done)

let () = Cgsim.Registry.register kernel

let graph () =
  Cgsim.Builder.make ~name:"bitonic" ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun b conns ->
      let out = Cgsim.Builder.net b Cgsim.Dtype.F32 in
      ignore (Cgsim.Builder.add_kernel b kernel [ List.hd conns; out ]);
      Cgsim.Builder.attach_attributes b out
        [ Cgsim.Attr.s "plio_name" "bitonic_out"; Cgsim.Attr.i "plio_width" 64 ];
      [ out ])

let input_floats ~reps = Workloads.Signals.random_f32 ~seed:42 (reps * lanes)

let sources ~reps = [ Cgsim.Io.of_f32_array (input_floats ~reps) ]

type t = {
  fd : Unix.file_descr;
  lock : Mutex.t;  (* serializes writes and id assignment *)
  mutable next_id : int;
}

let connect ?(retries = 0) addr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sa = Addr.sockaddr addr in
  let rec attempt k backoff =
    let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ETIMEDOUT), _, _)
      when k < retries ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf backoff;
      attempt (k + 1) (Float.min 1.0 (backoff *. 2.))
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  { fd = attempt 0 0.05; lock = Mutex.create (); next_id = 0 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t body =
  Mutex.lock t.lock;
  let id = t.next_id in
  t.next_id <- id + 1;
  let r =
    try
      Wire.write_frame t.fd (Wire.encode_request { Wire.q_id = id; q_body = body });
      Ok id
    with Unix.Unix_error (e, _, _) -> Error (Printf.sprintf "send failed: %s" (Unix.error_message e))
  in
  Mutex.unlock t.lock;
  r

let recv t =
  match Wire.read_frame t.fd with
  | Error e -> Error (Wire.frame_error_message e)
  | Ok payload -> (
    match Wire.decode_reply payload with
    | Ok reply -> Ok reply
    | Error e -> Error (Wire.decode_error_message e))

let ( let* ) r f =
  match r with
  | Ok v -> f v
  | Error _ as e -> e

(* Blocking exchange: send, then read until the matching id shows up.
   With no pipelined traffic interleaved the first reply is ours; the
   loop tolerates stragglers from an aborted earlier exchange. *)
let roundtrip t body =
  let* id = send t body in
  let rec wait () =
    let* reply = recv t in
    if reply.Wire.p_id = id || reply.Wire.p_id = -1 then Ok reply.Wire.p_body else wait ()
  in
  wait ()

let error_message code msg = Printf.sprintf "server error [%s]: %s" (Wire.error_code_label code) msg

let run t ?deadline_ms ?seed ~graph inputs =
  let body =
    Wire.Run { rq_graph = graph; rq_inputs = inputs; rq_deadline_ms = deadline_ms; rq_seed = seed }
  in
  let* reply = roundtrip t body in
  match reply with
  | Wire.Result r -> Ok r
  | Wire.Error (code, msg) -> Error (error_message code msg)
  | Wire.Metrics_text _ | Wire.Pong -> Error "protocol error: unexpected reply type to run"

let metrics t =
  let* reply = roundtrip t Wire.Metrics in
  match reply with
  | Wire.Metrics_text body -> Ok body
  | Wire.Error (code, msg) -> Error (error_message code msg)
  | Wire.Result _ | Wire.Pong -> Error "protocol error: unexpected reply type to metrics"

let ping t =
  let t0 = Obs.Clock.now_ns () in
  let* reply = roundtrip t Wire.Ping in
  match reply with
  | Wire.Pong -> Ok (Obs.Clock.now_ns () -. t0)
  | Wire.Error (code, msg) -> Error (error_message code msg)
  | Wire.Result _ | Wire.Metrics_text _ -> Error "protocol error: unexpected reply type to ping"

let send_run t ?deadline_ms ?seed ~graph inputs =
  match
    send t
      (Wire.Run { rq_graph = graph; rq_inputs = inputs; rq_deadline_ms = deadline_ms; rq_seed = seed })
  with
  | Ok id -> id
  | Error m -> failwith m

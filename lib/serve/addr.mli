(** Listen/connect endpoint specifications shared by {!Server},
    {!Client} and the CLI: ["unix:PATH"] for a Unix-domain stream
    socket, ["HOST:PORT"] for TCP (empty host means loopback). *)

type t =
  | Unix_path of string
  | Tcp of string * int  (** host, port *)

(** Parse an endpoint spec; [Error] explains both accepted forms. *)
val parse : string -> (t, string) result

val to_string : t -> string

(** Resolve to a connectable/bindable [Unix.sockaddr] (TCP hosts through
    [gethostbyname], falling back to loopback). *)
val sockaddr : t -> Unix.sockaddr

(** [PF_UNIX] or [PF_INET], matching {!sockaddr}. *)
val domain : t -> Unix.socket_domain

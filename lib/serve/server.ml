module Pool = Cgsim.Pool
module Run_config = Cgsim.Run_config

type conn = {
  c_fd : Unix.file_descr;
  c_wlock : Mutex.t;  (* one reply frame at a time onto the socket *)
  c_ilock : Mutex.t;
  c_icond : Condition.t;
  mutable c_inflight : int;  (* pool requests whose reply is still owed *)
  c_done : bool Atomic.t;
  mutable c_domain : unit Domain.t option;
}

type t = {
  s_pool : Pool.t;
  s_config : Run_config.t;
  s_graphs : (string * Cgsim.Serialized.t) list;
  s_listen_fd : Unix.file_descr;
  s_addr : Addr.t;
  s_stop_r : Unix.file_descr;  (* self-pipe: stop() pokes the accept loop *)
  s_stop_w : Unix.file_descr;
  s_stop_requested : bool Atomic.t;
  s_stopping : bool Atomic.t;
  s_conns : conn list ref;
  s_conns_lock : Mutex.t;
  s_metrics : Obs.Metrics.t;
  s_served : int Atomic.t;
  s_stats_interval : float option;
}

let addr t = t.s_addr

let served t = Atomic.get t.s_served

let create ?(config = Run_config.default) ?stats_interval_s ~graphs ~domains ~listen () =
  if graphs = [] then invalid_arg "serve: Server.create needs at least one graph";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let pool = Pool.create ~config ~domains () in
  let fd = Unix.socket (Addr.domain listen) Unix.SOCK_STREAM 0 in
  (match listen with
   | Addr.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
   | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (Addr.sockaddr listen);
  Unix.listen fd 64;
  let stop_r, stop_w = Unix.pipe () in
  {
    s_pool = pool;
    s_config = config;
    s_graphs = graphs;
    s_listen_fd = fd;
    s_addr = listen;
    s_stop_r = stop_r;
    s_stop_w = stop_w;
    s_stop_requested = Atomic.make false;
    s_stopping = Atomic.make false;
    s_conns = ref [];
    s_conns_lock = Mutex.create ();
    s_metrics = Obs.Metrics.create ();
    s_served = Atomic.make 0;
    s_stats_interval = stats_interval_s;
  }

let stop t =
  if not (Atomic.exchange t.s_stop_requested true) then
    try ignore (Unix.write t.s_stop_w (Bytes.of_string "x") 0 1) with Unix.Unix_error _ -> ()

let install_signal_handlers t =
  let h = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

(* ------------------------------------------------------------------ *)
(* Reply path                                                          *)
(* ------------------------------------------------------------------ *)

let send conn reply =
  let payload = Wire.encode_reply reply in
  Mutex.lock conn.c_wlock;
  (* A vanished peer (EPIPE/ECONNRESET) is the client's problem: the
     request still ran, its reply is simply undeliverable. *)
  (try Wire.write_frame conn.c_fd payload with Unix.Unix_error _ -> ());
  Mutex.unlock conn.c_wlock

let inflight_incr conn =
  Mutex.lock conn.c_ilock;
  conn.c_inflight <- conn.c_inflight + 1;
  Mutex.unlock conn.c_ilock

let inflight_decr conn =
  Mutex.lock conn.c_ilock;
  conn.c_inflight <- conn.c_inflight - 1;
  if conn.c_inflight = 0 then Condition.broadcast conn.c_icond;
  Mutex.unlock conn.c_ilock

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let exposition t =
  let pm = Pool.metrics t.s_pool in
  let sm = Obs.Metrics.snapshot t.s_metrics in
  let merged =
    {
      Obs.Metrics.counters = pm.Obs.Metrics.counters @ sm.Obs.Metrics.counters;
      histograms = pm.Obs.Metrics.histograms @ sm.Obs.Metrics.histograms;
      gauges = pm.Obs.Metrics.gauges @ sm.Obs.Metrics.gauges;
    }
  in
  Obs.Prom.of_snapshot merged

let error_reply t conn id code msg =
  Obs.Metrics.incr t.s_metrics ("serve.error:" ^ Wire.error_code_label code);
  send conn { Wire.p_id = id; p_body = Wire.Error (code, msg) }

let wire_outcome (res : Pool.request_result) readers =
  if res.Pool.shed then Wire.Shed
  else
    match res.Pool.outcome with
    | Cgsim.Runtime.Completed _ -> Wire.Completed (List.map (fun rd -> rd ()) readers)
    | Cgsim.Runtime.Deadline_exceeded p ->
      Wire.Deadline
        {
          d_reason = (match p.Cgsim.Runtime.p_reason with `Wall_clock -> "deadline" | `Max_steps -> "max-steps");
          d_parked = p.Cgsim.Runtime.p_parked;
          d_last_kernel = p.Cgsim.Runtime.p_last_kernel;
        }
    | Cgsim.Runtime.Cancelled -> Wire.Cancelled
    | Cgsim.Runtime.Kernel_failed f ->
      Wire.Failed
        { x_kernel = f.Cgsim.Runtime.f_kernel; x_message = Printexc.to_string f.Cgsim.Runtime.f_exn }

let handle_run t conn id (rq : Wire.run_request) =
  let t_recv = Obs.Clock.now_ns () in
  match List.assoc_opt rq.Wire.rq_graph t.s_graphs with
  | None ->
    error_reply t conn id Wire.Unknown_graph (Printf.sprintf "no graph named %S" rq.Wire.rq_graph)
  | Some g ->
    let n_in = Array.length g.Cgsim.Serialized.input_order in
    let n_out = Array.length g.Cgsim.Serialized.output_order in
    if List.length rq.Wire.rq_inputs <> n_in then
      error_reply t conn id Wire.Bad_request
        (Printf.sprintf "graph %S takes %d input streams, request has %d" rq.Wire.rq_graph n_in
           (List.length rq.Wire.rq_inputs))
    else if Pool.breaker_open t.s_pool then begin
      (* Admission control: the breaker is open, refuse at the door with
         the same structured shed the pool itself would produce. *)
      Obs.Metrics.incr t.s_metrics "serve.shed";
      send conn
        {
          Wire.p_id = id;
          p_body =
            Wire.Result
              {
                rp_outcome = Wire.Shed;
                rp_attempts = 0;
                rp_domain = -1;
                rp_server_ns = Obs.Clock.now_ns () -. t_recv;
                rp_run_ns = 0.;
              };
        }
    end
    else begin
      let config =
        let c = t.s_config in
        let c =
          match rq.Wire.rq_deadline_ms with
          | Some d -> Run_config.with_deadline_ms d c
          | None -> c
        in
        match rq.Wire.rq_seed with
        | Some s -> Run_config.with_seed s c
        | None -> c
      in
      (* [io] runs once per attempt on the worker domain; the readers of
         the newest attempt's collector sinks are what the reply reads. *)
      let readers = ref [] in
      let io _ =
        let sources = List.map Cgsim.Io.of_list rq.Wire.rq_inputs in
        let sinks, rds = List.split (List.init n_out (fun _ -> Cgsim.Io.buffer ())) in
        readers := rds;
        (sources, sinks)
      in
      let on_complete (res : Pool.request_result) =
        send conn
          {
            Wire.p_id = id;
            p_body =
              Wire.Result
                {
                  rp_outcome = wire_outcome res !readers;
                  rp_attempts = res.Pool.attempts;
                  rp_domain = res.Pool.domain;
                  rp_server_ns = Obs.Clock.now_ns () -. t_recv;
                  rp_run_ns = res.Pool.req_wall_ns;
                };
          };
        inflight_decr conn
      in
      inflight_incr conn;
      match Pool.submit t.s_pool ~config ~on_complete ~io g with
      | _handle -> ()
      | exception exn ->
        (* Compile-time rejection (invalid graph, `Error`-level lint). *)
        inflight_decr conn;
        error_reply t conn id Wire.Bad_request (Printexc.to_string exn)
    end

let handle_request t conn (req : Wire.request) =
  Atomic.incr t.s_served;
  match req.Wire.q_body with
  | Wire.Ping ->
    Obs.Metrics.incr t.s_metrics "serve.request:ping";
    send conn { Wire.p_id = req.Wire.q_id; p_body = Wire.Pong }
  | Wire.Metrics ->
    Obs.Metrics.incr t.s_metrics "serve.request:metrics";
    send conn { Wire.p_id = req.Wire.q_id; p_body = Wire.Metrics_text (exposition t) }
  | Wire.Run rq ->
    Obs.Metrics.incr t.s_metrics "serve.request:run";
    if Atomic.get t.s_stopping then
      error_reply t conn req.Wire.q_id Wire.Shutting_down "server is draining"
    else handle_run t conn req.Wire.q_id rq

(* ------------------------------------------------------------------ *)
(* Connection lifecycle                                                *)
(* ------------------------------------------------------------------ *)

let handle_conn t conn =
  (try
     let rec loop () =
       match Wire.read_frame conn.c_fd with
       | Error Wire.Eof -> ()
       | Error (Wire.Truncated | Wire.Oversized _ as e) ->
         (* The stream cannot be resynchronized after a bad frame:
            report and hang up. *)
         error_reply t conn (-1) Wire.Bad_request (Wire.frame_error_message e)
       | Ok payload -> (
         match Wire.decode_request payload with
         | Ok req ->
           handle_request t conn req;
           loop ()
         | Error (Wire.Wrong_version _ as e) ->
           error_reply t conn (-1) Wire.Version_mismatch (Wire.decode_error_message e);
           loop ()
         | Error (Wire.Malformed _ as e) ->
           error_reply t conn (-1) Wire.Bad_request (Wire.decode_error_message e);
           loop ())
     in
     loop ()
   with _ -> ());
  (* Drain this connection: every accepted request writes its reply
     before the socket closes. *)
  Mutex.lock conn.c_ilock;
  while conn.c_inflight > 0 do
    Condition.wait conn.c_icond conn.c_ilock
  done;
  Mutex.unlock conn.c_ilock;
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  Atomic.set conn.c_done true

let spawn_conn t fd =
  Obs.Metrics.incr t.s_metrics "serve.connection";
  let conn =
    {
      c_fd = fd;
      c_wlock = Mutex.create ();
      c_ilock = Mutex.create ();
      c_icond = Condition.create ();
      c_inflight = 0;
      c_done = Atomic.make false;
      c_domain = None;
    }
  in
  Mutex.lock t.s_conns_lock;
  t.s_conns := conn :: !(t.s_conns);
  Mutex.unlock t.s_conns_lock;
  conn.c_domain <- Some (Domain.spawn (fun () -> handle_conn t conn))

(* Join finished connection domains so a long-lived daemon does not
   accumulate them.  Runs on the accept-loop domain only. *)
let reap t =
  Mutex.lock t.s_conns_lock;
  let finished, live = List.partition (fun c -> Atomic.get c.c_done) !(t.s_conns) in
  t.s_conns := live;
  Mutex.unlock t.s_conns_lock;
  List.iter
    (fun c -> match c.c_domain with Some d -> ( try Domain.join d with _ -> ()) | None -> ())
    finished

let log_stats t =
  let snap = Pool.metrics t.s_pool in
  let counter name =
    match List.find_opt (fun c -> String.equal c.Obs.Metrics.c_name name) snap.Obs.Metrics.counters with
    | Some c -> int_of_float c.Obs.Metrics.total
    | None -> 0
  in
  Printf.eprintf "[cgx serve] served=%d inflight=%d warm_hit=%d cold=%d shed=%d breaker=%s\n%!"
    (Pool.served t.s_pool) (Pool.pending t.s_pool) (counter "pool.warm_hit") (counter "pool.cold")
    (counter "pool.shed")
    (if Pool.breaker_open t.s_pool then "open" else "closed")

(* ------------------------------------------------------------------ *)
(* Accept loop and drain                                               *)
(* ------------------------------------------------------------------ *)

let drain t =
  Atomic.set t.s_stopping true;
  (try Unix.close t.s_listen_fd with Unix.Unix_error _ -> ());
  (match t.s_addr with
   | Addr.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
   | Addr.Tcp _ -> ());
  Mutex.lock t.s_conns_lock;
  let conns = !(t.s_conns) in
  t.s_conns := [];
  Mutex.unlock t.s_conns_lock;
  (* EOF every reader: handlers fall out of their read loop, wait for
     their in-flight replies, close, exit. *)
  List.iter
    (fun c ->
      if not (Atomic.get c.c_done) then
        try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  List.iter
    (fun c -> match c.c_domain with Some d -> ( try Domain.join d with _ -> ()) | None -> ())
    conns;
  Pool.shutdown t.s_pool;
  try
    Unix.close t.s_stop_r;
    Unix.close t.s_stop_w
  with Unix.Unix_error _ -> ()

let serve t =
  let interval = t.s_stats_interval in
  let next_stats =
    ref (match interval with Some s -> Unix.gettimeofday () +. s | None -> infinity)
  in
  let rec loop () =
    let timeout =
      match interval with
      | None -> -1.0
      | Some _ -> Float.max 0.0 (!next_stats -. Unix.gettimeofday ())
    in
    match Unix.select [ t.s_listen_fd; t.s_stop_r ] [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | ready, _, _ ->
      if Unix.gettimeofday () >= !next_stats then begin
        log_stats t;
        (match interval with Some s -> next_stats := Unix.gettimeofday () +. s | None -> ())
      end;
      if List.mem t.s_stop_r ready then ()
      else begin
        if List.mem t.s_listen_fd ready then begin
          match Unix.accept t.s_listen_fd with
          | fd, _ -> spawn_conn t fd
          | exception Unix.Unix_error _ -> ()
        end;
        reap t;
        loop ()
      end
  in
  loop ();
  drain t

(** Client side of the [cgx-serve/1] protocol: one connection, blocking
    or pipelined use.

    Blocking ({!run}, {!metrics}, {!ping}): send one request, wait for
    its reply.  Pipelined ({!send_run} + {!recv}): keep several [run]
    requests in flight on the connection — the server replies as
    requests complete, in completion order, each reply carrying the id
    {!send_run} returned.  {!send_run} is safe to call from a different
    domain than the one looping on {!recv} (one sender, one receiver);
    don't mix blocking calls into a pipelined exchange. *)

type t

(** [connect addr] opens a connection.  [retries] (default 0) retries a
    refused/absent endpoint with a short backoff — for racing a daemon
    that is still binding its socket.  Raises [Unix.Unix_error] when the
    endpoint stays unreachable.  Ignores SIGPIPE process-wide. *)
val connect : ?retries:int -> Addr.t -> t

val close : t -> unit

(** {1 Blocking} *)

(** [run t ~graph inputs] sends one run request ([inputs]: one element
    list per graph input, in [input_order]) and waits for the reply.
    [Error] covers transport failures, protocol errors and structured
    server errors; outcomes (deadline, shed, failed...) are [Ok] with
    the taxonomy inside {!Wire.run_reply}. *)
val run :
  t ->
  ?deadline_ms:float ->
  ?seed:int ->
  graph:string ->
  Cgsim.Value.t list list ->
  (Wire.run_reply, string) result

(** Prometheus exposition of the server's live metrics. *)
val metrics : t -> (string, string) result

(** Round-trip liveness probe; [Ok rtt_ns]. *)
val ping : t -> (float, string) result

(** {1 Pipelined} *)

(** Send a run request without waiting; returns the request id its reply
    will carry. *)
val send_run :
  t -> ?deadline_ms:float -> ?seed:int -> graph:string -> Cgsim.Value.t list list -> int

(** Next reply frame, in server completion order. *)
val recv : t -> (Wire.reply, string) result

let proto = "cgx-serve/1"

let max_frame_bytes = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

type frame_error =
  | Eof
  | Truncated
  | Oversized of int

let frame_error_message = function
  | Eof -> "connection closed"
  | Truncated -> "truncated frame (EOF mid-frame)"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes > %d limit)" n max_frame_bytes

let put_len b off n =
  Bytes.set b off (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (n land 0xff))

let get_len b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  put_len b 0 n;
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

let unframe ?(max_bytes = max_frame_bytes) b ~pos =
  let avail = Bytes.length b - pos in
  if avail = 0 then Error Eof
  else if avail < 4 then Error Truncated
  else
    let n = get_len b pos in
    if n > max_bytes then Error (Oversized n)
    else if avail - 4 < n then Error Truncated
    else Ok (Bytes.sub_string b (pos + 4) n, pos + 4 + n)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd payload =
  let b = Bytes.unsafe_of_string (frame payload) in
  write_all fd b 0 (Bytes.length b)

(* Read exactly [len] bytes; [`Eof n] reports how many arrived first. *)
let really_read fd b off len =
  let rec go off len =
    if len = 0 then `Ok
    else
      match Unix.read fd b off len with
      | 0 -> `Eof
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
  in
  go off len

let read_frame fd =
  let hdr = Bytes.create 4 in
  match Unix.read fd hdr 0 1 with
  | 0 -> Error Eof
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> Error Eof
  | _ -> (
    match really_read fd hdr 1 3 with
    | `Eof -> Error Truncated
    | `Ok ->
      let n = get_len hdr 0 in
      if n > max_frame_bytes then Error (Oversized n)
      else
        let payload = Bytes.create n in
        (match really_read fd payload 0 n with
         | `Eof -> Error Truncated
         | `Ok -> Ok (Bytes.unsafe_to_string payload)))

(* ------------------------------------------------------------------ *)
(* Bit-exact Value codec                                               *)
(* ------------------------------------------------------------------ *)

module J = Obs.Json

(* Hexadecimal float notation round-trips every finite double exactly
   (and "nan"/"infinity" cover the rest); decimal strings do the same
   for ints.  Obs.Json's %.6g number printing stays confined to
   timings, where precision loss is harmless. *)
let rec json_of_value = function
  | Cgsim.Value.Float f -> J.Obj [ ("F", J.Str (Printf.sprintf "%h" f)) ]
  | Cgsim.Value.Int i -> J.Obj [ ("I", J.Str (string_of_int i)) ]
  | Cgsim.Value.Vec a -> J.Obj [ ("V", J.Arr (Array.to_list a |> List.map json_of_value)) ]
  | Cgsim.Value.Rec fs -> J.Obj [ ("R", J.Obj (List.map (fun (k, v) -> (k, json_of_value v)) fs)) ]

let rec value_of_json j =
  match j with
  | J.Obj [ ("F", J.Str s) ] -> (
    match float_of_string_opt s with
    | Some f -> Ok (Cgsim.Value.Float f)
    | None -> Error (Printf.sprintf "bad float literal %S" s))
  | J.Obj [ ("I", J.Str s) ] -> (
    match int_of_string_opt s with
    | Some i -> Ok (Cgsim.Value.Int i)
    | None -> Error (Printf.sprintf "bad int literal %S" s))
  | J.Obj [ ("V", J.Arr elts) ] ->
    let rec go acc = function
      | [] -> Ok (Cgsim.Value.Vec (Array.of_list (List.rev acc)))
      | e :: rest -> (
        match value_of_json e with
        | Ok v -> go (v :: acc) rest
        | Error _ as e -> e)
    in
    go [] elts
  | J.Obj [ ("R", J.Obj fields) ] ->
    let rec go acc = function
      | [] -> Ok (Cgsim.Value.Rec (List.rev acc))
      | (k, fv) :: rest -> (
        match value_of_json fv with
        | Ok v -> go ((k, v) :: acc) rest
        | Error _ as e -> e)
    in
    go [] fields
  | _ -> Error "expected a tagged value object ({\"F\"|\"I\"|\"V\"|\"R\": ...})"

(* ------------------------------------------------------------------ *)
(* Envelope types                                                      *)
(* ------------------------------------------------------------------ *)

type run_request = {
  rq_graph : string;
  rq_inputs : Cgsim.Value.t list list;
  rq_deadline_ms : float option;
  rq_seed : int option;
}

type request_body =
  | Run of run_request
  | Metrics
  | Ping

type request = {
  q_id : int;
  q_body : request_body;
}

type run_outcome =
  | Completed of Cgsim.Value.t list list
  | Deadline of {
      d_reason : string;
      d_parked : string list;
      d_last_kernel : string option;
    }
  | Cancelled
  | Failed of {
      x_kernel : string;
      x_message : string;
    }
  | Shed

let run_outcome_label = function
  | Completed _ -> "completed"
  | Deadline { d_reason; _ } -> d_reason
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"
  | Shed -> "shed"

type run_reply = {
  rp_outcome : run_outcome;
  rp_attempts : int;
  rp_domain : int;
  rp_server_ns : float;
  rp_run_ns : float;
}

type error_code =
  | Version_mismatch
  | Bad_request
  | Unknown_graph
  | Shutting_down

let error_code_label = function
  | Version_mismatch -> "version-mismatch"
  | Bad_request -> "bad-request"
  | Unknown_graph -> "unknown-graph"
  | Shutting_down -> "shutting-down"

let error_code_of_label = function
  | "version-mismatch" -> Some Version_mismatch
  | "bad-request" -> Some Bad_request
  | "unknown-graph" -> Some Unknown_graph
  | "shutting-down" -> Some Shutting_down
  | _ -> None

type reply_body =
  | Result of run_reply
  | Metrics_text of string
  | Pong
  | Error of error_code * string

type reply = {
  p_id : int;
  p_body : reply_body;
}

type decode_error =
  | Wrong_version of string
  | Malformed of string

let decode_error_message = function
  | Wrong_version v -> Printf.sprintf "protocol version mismatch: peer speaks %S, this end %S" v proto
  | Malformed m -> "malformed frame: " ^ m

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let envelope id fields = J.Obj (("proto", J.Str proto) :: ("id", J.Str (string_of_int id)) :: fields)

let json_of_inputs slots =
  J.Arr (List.map (fun elems -> J.Arr (List.map json_of_value elems)) slots)

let encode_request { q_id; q_body } =
  let fields =
    match q_body with
    | Run rq ->
      [ ("type", J.Str "run"); ("graph", J.Str rq.rq_graph); ("inputs", json_of_inputs rq.rq_inputs) ]
      @ (match rq.rq_deadline_ms with
         | Some d -> [ ("deadline_ms", J.Num d) ]
         | None -> [])
      @ (match rq.rq_seed with
         | Some s -> [ ("seed", J.Str (string_of_int s)) ]
         | None -> [])
    | Metrics -> [ ("type", J.Str "metrics") ]
    | Ping -> [ ("type", J.Str "ping") ]
  in
  J.to_string (envelope q_id fields)

let encode_reply { p_id; p_body } =
  let fields =
    match p_body with
    | Result rp ->
      [
        ("type", J.Str "result");
        ("outcome", J.Str (run_outcome_label rp.rp_outcome));
        ("attempts", J.Num (float_of_int rp.rp_attempts));
        ("domain", J.Num (float_of_int rp.rp_domain));
        ("server_ns", J.Num rp.rp_server_ns);
        ("run_ns", J.Num rp.rp_run_ns);
      ]
      @ (match rp.rp_outcome with
         | Completed outs -> [ ("outputs", json_of_inputs outs) ]
         | Deadline { d_parked; d_last_kernel; _ } ->
           [ ("parked", J.Arr (List.map (fun s -> J.Str s) d_parked)) ]
           @ (match d_last_kernel with
              | Some k -> [ ("last_kernel", J.Str k) ]
              | None -> [])
         | Failed { x_kernel; x_message } ->
           [ ("kernel", J.Str x_kernel); ("message", J.Str x_message) ]
         | Cancelled | Shed -> [])
    | Metrics_text body -> [ ("type", J.Str "metrics"); ("body", J.Str body) ]
    | Pong -> [ ("type", J.Str "pong") ]
    | Error (code, msg) ->
      [ ("type", J.Str "error"); ("code", J.Str (error_code_label code)); ("message", J.Str msg) ]
  in
  J.to_string (envelope p_id fields)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f =
  match r with
  | Ok v -> f v
  | Error _ as e -> e

let str_field j name =
  match J.member name j with
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Malformed (Printf.sprintf "field %S must be a string" name))
  | None -> Error (Malformed (Printf.sprintf "missing field %S" name))

let int_str_field j name =
  let* s = str_field j name in
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Malformed (Printf.sprintf "field %S must be a decimal int string" name))

(* Check version first, then pull the id: every later error can carry
   the request id back to the peer. *)
let check_envelope payload =
  match J.of_string payload with
  | Error m -> Stdlib.Error (Malformed m)
  | Ok j ->
    let* v = str_field j "proto" in
    if not (String.equal v proto) then Error (Wrong_version v)
    else
      let* id = int_str_field j "id" in
      let* ty = str_field j "type" in
      Ok (j, id, ty)

let decode_inputs j =
  match J.member "inputs" j with
  | Some (J.Arr slots) ->
    let rec go_slots acc = function
      | [] -> Ok (List.rev acc)
      | J.Arr elems :: rest ->
        let rec go_elems eacc = function
          | [] -> go_slots (List.rev eacc :: acc) rest
          | e :: more -> (
            match value_of_json e with
            | Ok v -> go_elems (v :: eacc) more
            | Error m -> Stdlib.Error (Malformed m))
        in
        go_elems [] elems
      | _ -> Error (Malformed "each input slot must be an array of values")
    in
    go_slots [] slots
  | Some _ -> Error (Malformed "field \"inputs\" must be an array of arrays")
  | None -> Error (Malformed "missing field \"inputs\"")

let decode_request payload =
  let* j, q_id, ty = check_envelope payload in
  match ty with
  | "run" ->
    let* rq_graph = str_field j "graph" in
    let* rq_inputs = decode_inputs j in
    let* rq_deadline_ms =
      match J.member "deadline_ms" j with
      | Some (J.Num d) -> Ok (Some d)
      | Some _ -> Error (Malformed "field \"deadline_ms\" must be a number")
      | None -> Ok None
    in
    let* rq_seed =
      match J.member "seed" j with
      | Some (J.Str _) ->
        let* s = int_str_field j "seed" in
        Ok (Some s)
      | Some _ -> Error (Malformed "field \"seed\" must be a decimal int string")
      | None -> Ok None
    in
    Ok { q_id; q_body = Run { rq_graph; rq_inputs; rq_deadline_ms; rq_seed } }
  | "metrics" -> Ok { q_id; q_body = Metrics }
  | "ping" -> Ok { q_id; q_body = Ping }
  | other -> Error (Malformed (Printf.sprintf "unknown request type %S" other))

let num_field j name =
  match J.member name j with
  | Some (J.Num n) -> Ok n
  | Some _ -> Error (Malformed (Printf.sprintf "field %S must be a number" name))
  | None -> Error (Malformed (Printf.sprintf "missing field %S" name))

let decode_reply payload =
  let* j, p_id, ty = check_envelope payload in
  match ty with
  | "result" ->
    let* label = str_field j "outcome" in
    let* attempts = num_field j "attempts" in
    let* domain = num_field j "domain" in
    let* server_ns = num_field j "server_ns" in
    let* run_ns = num_field j "run_ns" in
    let* rp_outcome =
      match label with
      | "completed" -> (
        match J.member "outputs" j with
        | Some _ ->
          let* outs =
            decode_inputs (J.Obj [ ("inputs", Option.get (J.member "outputs" j)) ])
          in
          Ok (Completed outs)
        | None -> Error (Malformed "completed result missing \"outputs\""))
      | "deadline" | "max-steps" ->
        let d_parked =
          match J.member "parked" j with
          | Some (J.Arr l) -> List.filter_map J.to_str l
          | _ -> []
        in
        let d_last_kernel =
          match J.member "last_kernel" j with
          | Some (J.Str k) -> Some k
          | _ -> None
        in
        Ok (Deadline { d_reason = label; d_parked; d_last_kernel })
      | "cancelled" -> Ok Cancelled
      | "failed" ->
        let* x_kernel = str_field j "kernel" in
        let* x_message = str_field j "message" in
        Ok (Failed { x_kernel; x_message })
      | "shed" -> Ok Shed
      | other -> Error (Malformed (Printf.sprintf "unknown outcome %S" other))
    in
    Ok
      {
        p_id;
        p_body =
          Result
            {
              rp_outcome;
              rp_attempts = int_of_float attempts;
              rp_domain = int_of_float domain;
              rp_server_ns = server_ns;
              rp_run_ns = run_ns;
            };
      }
  | "metrics" ->
    let* body = str_field j "body" in
    Ok { p_id; p_body = Metrics_text body }
  | "pong" -> Ok { p_id; p_body = Pong }
  | "error" ->
    let* code_label = str_field j "code" in
    let* message = str_field j "message" in
    (match error_code_of_label code_label with
     | Some code -> Ok { p_id; p_body = Error (code, message) }
     | None -> Error (Malformed (Printf.sprintf "unknown error code %S" code_label)))
  | other -> Error (Malformed (Printf.sprintf "unknown reply type %S" other))

(** The [cgx-serve/1] wire protocol: length-prefixed JSON frames with a
    versioned envelope, plus the strict codec both ends share.

    {b Framing.}  A frame is a 4-byte big-endian payload length followed
    by that many bytes of UTF-8 JSON.  Frames larger than
    {!max_frame_bytes} are refused before the payload is read, so a
    corrupt or hostile length prefix cannot make the peer allocate
    unboundedly.  {!read_frame} classifies every failure mode —
    clean EOF between frames, truncation mid-frame, an oversized
    length, undecodable JSON is reported by the decoders.

    {b Envelope.}  Every payload is a JSON object carrying
    [{"proto":"cgx-serve/1","id":"<n>", "type":...}].  The [proto]
    field is checked first and a mismatch is distinguished from mere
    malformedness ({!decode_error}), so a server can answer an
    incompatible client with a structured [version-mismatch] error
    instead of dropping the connection.  The [id] is assigned by the
    client and echoed verbatim in the matching reply — replies to
    pipelined requests may arrive out of submission order.

    {b Values.}  Stream elements ({!Cgsim.Value.t}) cross the wire as
    tagged objects — [{"F":"0x1.5p+3"}], [{"I":"42"}], [{"V":[...]}],
    [{"R":{...}}] — with floats in hexadecimal notation and integers in
    decimal strings.  The string forms make the codec bit-exact:
    [Obs.Json] prints numbers with [%.6g], which is fine for timings but
    would corrupt payload data, and a serve round-trip must be
    bit-identical to an in-process run. *)

(** Protocol identifier carried by every frame: ["cgx-serve/1"]. *)
val proto : string

(** Refuse frames above this payload size (16 MiB). *)
val max_frame_bytes : int

(** {1 Framing} *)

type frame_error =
  | Eof  (** Clean EOF at a frame boundary (peer closed). *)
  | Truncated  (** EOF inside a length prefix or payload. *)
  | Oversized of int  (** Declared payload length above {!max_frame_bytes}. *)

val frame_error_message : frame_error -> string

(** [write_frame fd payload] writes the length prefix and payload,
    looping over partial writes.  Raises [Unix.Unix_error] on a broken
    connection (callers ignore SIGPIPE and handle [EPIPE]). *)
val write_frame : Unix.file_descr -> string -> unit

(** Read one complete frame payload. *)
val read_frame : Unix.file_descr -> (string, frame_error) result

(** Pure framing, for tests and in-memory use: [frame payload] is the
    bytes {!write_frame} would emit; [unframe b ~pos] decodes one frame
    starting at [pos] and returns the payload with the position just
    past it. *)
val frame : string -> string

val unframe : ?max_bytes:int -> Bytes.t -> pos:int -> (string * int, frame_error) result

(** {1 Requests} *)

type run_request = {
  rq_graph : string;  (** Graph name, resolved by the server's registry. *)
  rq_inputs : Cgsim.Value.t list list;
      (** One element list per global input, in the graph's
          [input_order]. *)
  rq_deadline_ms : float option;  (** Per-request deadline override. *)
  rq_seed : int option;  (** Per-request backoff-jitter seed override. *)
}

type request_body =
  | Run of run_request
  | Metrics  (** Prometheus exposition of the server's live metrics. *)
  | Ping

type request = {
  q_id : int;  (** Client-assigned, echoed in the reply. *)
  q_body : request_body;
}

(** {1 Replies} *)

(** Structured outcome taxonomy, mirroring {!Cgsim.Runtime.outcome} plus
    the pool's load-shedding refusal. *)
type run_outcome =
  | Completed of Cgsim.Value.t list list
      (** One element list per global output, in [output_order]. *)
  | Deadline of {
      d_reason : string;  (** ["deadline"] (wall clock) or ["max-steps"]. *)
      d_parked : string list;  (** Fibers blocked on queue I/O. *)
      d_last_kernel : string option;
    }
  | Cancelled
  | Failed of {
      x_kernel : string;
      x_message : string;
    }
  | Shed  (** Refused by the open circuit breaker (admission control). *)

(** Stable label, aligned with [Runtime.outcome_label]: ["completed"],
    ["deadline"], ["max-steps"], ["cancelled"], ["failed"], ["shed"]. *)
val run_outcome_label : run_outcome -> string

type run_reply = {
  rp_outcome : run_outcome;
  rp_attempts : int;  (** Executions performed (0 when shed). *)
  rp_domain : int;  (** Worker domain that served the request. *)
  rp_server_ns : float;
      (** Decode-to-reply wall time on the server: queue wait included. *)
  rp_run_ns : float;  (** Execution time across attempts and backoffs. *)
}

type error_code =
  | Version_mismatch  (** Peer speaks a different [cgx-serve/N]. *)
  | Bad_request  (** Malformed frame or envelope. *)
  | Unknown_graph  (** No graph of that name in the server registry. *)
  | Shutting_down  (** Received while the server drains. *)

val error_code_label : error_code -> string

type reply_body =
  | Result of run_reply
  | Metrics_text of string
  | Pong
  | Error of error_code * string

type reply = {
  p_id : int;  (** Echo of the request id; [-1] when it never decoded. *)
  p_body : reply_body;
}

(** {1 Codec}

    Encoders never fail.  Decoders are strict: unknown [type] tags,
    missing fields and malformed values are errors, and the protocol
    version is checked before anything else. *)

type decode_error =
  | Wrong_version of string  (** The peer's [proto] field, verbatim. *)
  | Malformed of string

val decode_error_message : decode_error -> string

val encode_request : request -> string
val decode_request : string -> (request, decode_error) result
val encode_reply : reply -> string
val decode_reply : string -> (reply, decode_error) result

(** Exposed for tests: the tagged bit-exact {!Cgsim.Value.t} codec. *)
val json_of_value : Cgsim.Value.t -> Obs.Json.t

val value_of_json : Obs.Json.t -> (Cgsim.Value.t, string) result

type t =
  | Unix_path of string
  | Tcp of string * int

let parse s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S: expected unix:PATH or HOST:PORT" s)
  | Some i ->
    let before = String.sub s 0 i in
    let after = String.sub s (i + 1) (String.length s - i - 1) in
    if String.equal before "unix" then
      if String.length after = 0 then Error "bad address: unix: needs a socket path"
      else Ok (Unix_path after)
    else (
      match int_of_string_opt after with
      | Some port when port >= 0 && port < 65536 -> Ok (Tcp (before, port))
      | _ -> Error (Printf.sprintf "bad address %S: port %S is not a valid TCP port" s after))

let to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let sockaddr = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
    let ip =
      if String.length host = 0 || String.equal host "localhost" then Unix.inet_addr_loopback
      else
        match Unix.inet_addr_of_string host with
        | ip -> ip
        | exception Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback)
    in
    Unix.ADDR_INET (ip, port)

let domain = function
  | Unix_path _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

(** The [cgx serve] daemon: a socket front door over {!Cgsim.Pool}.

    One server owns one persistent pool and a registry of named graphs.
    {!create} binds the listen socket (connectable as soon as it
    returns); {!serve} runs the accept loop — one reader domain per
    connection, requests submitted to the pool with a completion
    callback that writes the reply from the worker domain, so a
    connection can pipeline: replies carry the request's [id] and may
    arrive out of submission order.

    {b Admission control.}  A [run] request that arrives while the
    pool's circuit breaker is open is refused at the door with a
    structured [shed] result ([attempts = 0]) — the client sees the same
    taxonomy the pool's own shedding produces, without the request ever
    queueing.

    {b Graceful drain.}  {!stop} (or SIGTERM/SIGINT after
    {!install_signal_handlers}) makes {!serve} stop accepting, shut down
    the read side of every open connection (clients see EOF after their
    last reply), wait for every in-flight request to complete and its
    reply to be written, join the connection domains, shut the pool
    down, and return.  No accepted request is ever dropped.

    {b Metrics.}  A [metrics] request returns the Prometheus exposition
    of the pool's live metrics merged with the server's own families
    ([cgsim_serve_connection_total], [cgsim_serve_request_total{id=...}],
    [cgsim_serve_error_total{id=...}]).  With [stats_interval_s] set,
    the accept loop also prints a one-line serving summary (served /
    in-flight / warm hits / cold builds / breaker state) to stderr at
    that period. *)

type t

(** [create ~graphs ~domains ~listen ()] compiles nothing up front —
    graphs compile (and cache) on first request — but binds and listens
    immediately.  [config] is the pool-wide default {!Cgsim.Run_config.t};
    per-request [deadline_ms]/[seed] overrides layer on top of it.
    Raises [Unix.Unix_error] when the address cannot be bound (an
    existing Unix socket path is replaced, not an error).  Also ignores
    SIGPIPE process-wide: a peer closing mid-reply must surface as
    [EPIPE], not kill the daemon. *)
val create :
  ?config:Cgsim.Run_config.t ->
  ?stats_interval_s:float ->
  graphs:(string * Cgsim.Serialized.t) list ->
  domains:int ->
  listen:Addr.t ->
  unit ->
  t

(** Run the accept loop until {!stop}; returns after the drain completes
    (see above). *)
val serve : t -> unit

(** Begin graceful drain.  Callable from any domain and from signal
    handlers; idempotent. *)
val stop : t -> unit

(** Route SIGTERM and SIGINT to {!stop}. *)
val install_signal_handlers : t -> unit

(** The address {!create} bound. *)
val addr : t -> Addr.t

(** Requests served since start (any type, including refusals). *)
val served : t -> int

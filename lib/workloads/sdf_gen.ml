module K = Cgsim.Kernel
module S = Cgsim.Serialized

(* Seeded random SDF graph generator + differential oracle.

   Graphs are balanced by construction: every kernel gets a repetition
   count first, and every net's traffic is a common multiple of its two
   endpoints' repetitions, so per-port rates are exact integers and the
   balance equations solve.  Defects are then injected deliberately and
   labelled, which gives the oracle ground truth to hold the static
   analyzer against the runtime:

   - a clean graph must lint clean (no errors or warnings), complete on
     both cgsim and x86sim, and produce identical outputs of the
     statically known length;
   - an injected imbalance must trip CG-E101;
   - an under-buffered feedback cycle must trip CG-E201, genuinely
     deadlock with lint off, and complete once the capacity
     synthesizer's suggested depths are applied — while one element less
     than the suggestion deadlocks again (minimality);
   - a rate-undeclared, token-starved cycle must trip CG-W202 and
     genuinely deadlock.

   Every choice derives from the seed through {!Prng}, so a case
   reproduces exactly from (seed, defect). *)

type defect =
  | Imbalance
  | Under_capacity
  | Starved_cycle

let defect_to_string = function
  | Imbalance -> "imbalance"
  | Under_capacity -> "under-capacity"
  | Starved_cycle -> "starved-cycle"

type case = {
  c_name : string;
  c_seed : int;
  c_defect : defect option;
  c_graph : S.t;
  c_input : float array;
  c_expected_out : int;  (** Output elements a correct complete run yields. *)
  c_fb_net : int option;  (** Feedback net id, when the case has a cycle. *)
  c_fb_need : int;  (** Its minimal deadlock-free depth (0 without cycle). *)
}

(* ------------------------------------------------------------------ *)
(* Kernel factory.                                                     *)
(*                                                                     *)
(* The registry is global and a name collision with a different kernel *)
(* is an error, so kernels are memoized by a name that encodes their   *)
(* entire behavior (rates, declaredness, prologue, scale): the same    *)
(* name always maps to the same definition, across cases and seeds.    *)
(* ------------------------------------------------------------------ *)

let kernel_cache : (string, K.t) Hashtbl.t = Hashtbl.create 64

(* A generated kernel fires forever: read one declared window from each
   input in port order, fold the elements, write one declared window to
   each output.  Termination is the normal end-of-stream protocol when
   the inputs drain.  [prologue] kernels first emit one window of zeros
   on out0 — the initial tokens that let a feedback cycle start. *)
let mk_kernel ~declare ~prologue ~scale_tenths ~in_rates ~out_rates =
  let show rs = String.concat "x" (List.map string_of_int rs) in
  let name =
    Printf.sprintf "sdfgen_%s%s_s%d_i%s_o%s"
      (if declare then "d" else "u")
      (if prologue then "p" else "")
      scale_tenths (show in_rates) (show out_rates)
  in
  match Hashtbl.find_opt kernel_cache name with
  | Some k -> k
  | None ->
    let ports =
      List.mapi (fun i _ -> K.in_port (Printf.sprintf "in%d" i) Cgsim.Dtype.F32) in_rates
      @ List.mapi (fun i _ -> K.out_port (Printf.sprintf "out%d" i) Cgsim.Dtype.F32) out_rates
    in
    let rates =
      if declare then
        Some
          (List.mapi (fun i r -> Printf.sprintf "in%d" i, r) in_rates
          @ List.mapi (fun i r -> Printf.sprintf "out%d" i, r) out_rates)
      else None
    in
    let ia = Array.of_list in_rates in
    let oa = Array.of_list out_rates in
    let scale = float_of_int scale_tenths /. 10.0 in
    let body b =
      if prologue then Cgsim.Port.put_window_f32 (K.wr b 0) (Array.make oa.(0) 0.0);
      while true do
        let acc = ref 0.0 in
        Array.iteri
          (fun i r ->
            let xs = Cgsim.Port.get_window_f32 (K.rd b i) r in
            Array.iter (fun v -> acc := !acc +. v) xs)
          ia;
        let s = !acc *. scale in
        Array.iteri
          (fun o r ->
            Cgsim.Port.put_window_f32 (K.wr b o)
              (Array.init r (fun j -> s +. float_of_int (j + o))))
          oa
      done
    in
    let k = K.define ?rates ~pure:true ~realm:K.Aie ~name ports body in
    Cgsim.Registry.register k;
    Hashtbl.add kernel_cache name k;
    k

(* ------------------------------------------------------------------ *)
(* Abstract topology, materialized through the builder.                *)
(* ------------------------------------------------------------------ *)

type ak = {
  ak_rep : int;
  ak_declare : bool;
  ak_prologue : bool;
  ak_scale : int;  (* tenths *)
}

type ae = {
  e_src : int;  (* kernel id; -1 = graph input *)
  e_dst : int;  (* kernel id; -2 = graph output *)
  e_tokens : int;  (* elements per steady-state iteration *)
  e_depth : int option;  (* explicit queue depth to apply post-freeze *)
  e_perturb : int;  (* added to the reader's declared rate (imbalance) *)
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b = a / gcd a b * b

(* Deep enough that DAG scheduling order can never fake a deadlock: the
   largest per-firing window is bounded well under this. *)
let dag_depth = 256

let generate ?defect ~seed () =
  let tag =
    match defect with
    | None -> 0
    | Some Imbalance -> 1
    | Some Under_capacity -> 2
    | Some Starved_cycle -> 3
  in
  let rng = Prng.create ~seed:(1 + (seed * 4) + tag) in
  let kernels = ref [] in
  let nk = ref 0 in
  let edges = ref [] in
  let ne = ref 0 in
  let new_kernel ?(declare = true) ?(prologue = false) rep =
    let id = !nk in
    incr nk;
    kernels :=
      { ak_rep = rep; ak_declare = declare; ak_prologue = prologue;
        ak_scale = Prng.int_range rng ~lo:5 ~hi:20 }
      :: !kernels;
    id
  in
  let connect ?depth ?(perturb = 0) ~tokens src dst =
    let id = !ne in
    incr ne;
    edges :=
      { e_src = src; e_dst = dst; e_tokens = tokens; e_depth = depth; e_perturb = perturb }
      :: !edges;
    id
  in
  let rep () = Prng.int_range rng ~lo:1 ~hi:4 in
  let tok ra rb = lcm ra rb * Prng.int_range rng ~lo:1 ~hi:2 in
  (* Entrance reads the graph input. *)
  let re = rep () in
  let entr = new_kernel re in
  let rin = Prng.int_range rng ~lo:1 ~hi:3 in
  let input_edge = connect ~tokens:(rin * re) (-1) entr in
  let cur = ref entr in
  let cur_rep = ref re in
  let line () =
    let r = rep () in
    let k = new_kernel r in
    ignore (connect ~depth:dag_depth ~tokens:(tok !cur_rep r) !cur k);
    cur := k;
    cur_rep := r
  in
  for _ = 1 to Prng.int_range rng ~lo:0 ~hi:2 do
    line ()
  done;
  (* One diamond always: the undirected cycle it closes is what makes an
     injected imbalance statically detectable at all. *)
  let rsp = rep () in
  let sp = new_kernel rsp in
  ignore (connect ~depth:dag_depth ~tokens:(tok !cur_rep rsp) !cur sp);
  let ra = rep () in
  let ka = new_kernel ra in
  ignore (connect ~depth:dag_depth ~tokens:(tok rsp ra) sp ka);
  let rb = rep () in
  let kb = new_kernel rb in
  ignore (connect ~depth:dag_depth ~tokens:(tok rsp rb) sp kb);
  let rj = rep () in
  let kj = new_kernel rj in
  ignore (connect ~depth:dag_depth ~tokens:(tok ra rj) ka kj);
  let perturb = if defect = Some Imbalance then 1 else 0 in
  ignore (connect ~depth:dag_depth ~perturb ~tokens:(tok rb rj) kb kj);
  cur := kj;
  cur_rep := rj;
  (* Feedback cycle: fwd -> back -> fwd, seeded by the back kernel's
     one-window prologue.  Both cycle nets need exactly [rc] elements of
     depth — the minimal deadlock-free capacity. *)
  let want_cycle =
    match defect with
    | Some Under_capacity | Some Starved_cycle -> true
    | Some Imbalance -> false
    | None -> Prng.int_range rng ~lo:0 ~hi:1 = 1
  in
  let fb_edge, fb_need =
    if not want_cycle then None, 0
    else begin
      let starved = defect = Some Starved_cycle in
      let declare = not starved in
      let rc_rep = rep () in
      let rc = Prng.int_range rng ~lo:3 ~hi:8 in
      let fwd = new_kernel ~declare rc_rep in
      let back = new_kernel ~declare ~prologue:(not starved) rc_rep in
      ignore (connect ~depth:dag_depth ~tokens:(tok !cur_rep rc_rep) !cur fwd);
      ignore (connect ~depth:rc ~tokens:(rc * rc_rep) fwd back);
      let fb_depth =
        match defect with
        | Some Under_capacity -> Prng.int_range rng ~lo:1 ~hi:(rc - 1)
        | _ -> rc
      in
      let fb = connect ~depth:fb_depth ~tokens:(rc * rc_rep) back fwd in
      cur := fwd;
      cur_rep := rc_rep;
      Some fb, rc
    end
  in
  for _ = 1 to Prng.int_range rng ~lo:0 ~hi:1 do
    line ()
  done;
  let rout = Prng.int_range rng ~lo:1 ~hi:3 in
  let output_edge = connect ~tokens:(rout * !cur_rep) !cur (-2) in
  (* Materialize. *)
  let ks = Array.of_list (List.rev !kernels) in
  let es = Array.of_list (List.rev !edges) in
  let n_edges = Array.length es in
  let ins_of ki =
    List.filter (fun ei -> es.(ei).e_dst = ki) (List.init n_edges Fun.id)
  in
  let outs_of ki =
    List.filter (fun ei -> es.(ei).e_src = ki) (List.init n_edges Fun.id)
  in
  let name =
    Printf.sprintf "sdf_%s_%d"
      (match defect with None -> "clean" | Some d -> defect_to_string d)
      seed
  in
  let inst = Array.make (Array.length ks) (-1) in
  let graph =
    Cgsim.Builder.make ~name ~inputs:[ "in", Cgsim.Dtype.F32 ] (fun b conns ->
        let in_conn = List.hd conns in
        let out_conn = ref None in
        let econn =
          Array.map
            (fun e ->
              if e.e_src = -1 then in_conn
              else begin
                let c = Cgsim.Builder.net b Cgsim.Dtype.F32 in
                if e.e_dst = -2 then out_conn := Some c;
                c
              end)
            es
        in
        Array.iteri
          (fun ki k ->
            let ins = ins_of ki in
            let outs = outs_of ki in
            let in_rates =
              List.map (fun ei -> (es.(ei).e_tokens / k.ak_rep) + es.(ei).e_perturb) ins
            in
            let out_rates = List.map (fun ei -> es.(ei).e_tokens / k.ak_rep) outs in
            let kd =
              mk_kernel ~declare:k.ak_declare ~prologue:k.ak_prologue
                ~scale_tenths:k.ak_scale ~in_rates ~out_rates
            in
            inst.(ki) <-
              Cgsim.Builder.add_kernel b kd (List.map (fun ei -> econn.(ei)) (ins @ outs)))
          ks;
        [ Option.get !out_conn ])
  in
  (* Recover each edge's net id through its reader's port binding, then
     apply the explicit depths in one shot. *)
  let net_of_edge ei =
    let e = es.(ei) in
    if e.e_dst >= 0 then begin
      let pos = ref 0 in
      List.iteri (fun i ej -> if ej = ei then pos := i) (ins_of e.e_dst);
      graph.S.kernels.(inst.(e.e_dst)).S.port_nets.(!pos)
    end
    else begin
      (* Output edge: index from the writer side, after its inputs. *)
      let n_in = List.length (ins_of e.e_src) in
      let pos = ref 0 in
      List.iteri (fun i ej -> if ej = ei then pos := i) (outs_of e.e_src);
      graph.S.kernels.(inst.(e.e_src)).S.port_nets.(n_in + !pos)
    end
  in
  let depths =
    List.filter_map
      (fun ei ->
        match es.(ei).e_depth with Some d -> Some (net_of_edge ei, d) | None -> None)
      (List.init n_edges Fun.id)
  in
  let graph = S.with_net_depths graph depths in
  let iterations = Prng.int_range rng ~lo:2 ~hi:5 in
  let input =
    Array.init
      (es.(input_edge).e_tokens * iterations)
      (fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0)
  in
  {
    c_name = name;
    c_seed = seed;
    c_defect = defect;
    c_graph = graph;
    c_input = input;
    c_expected_out = es.(output_edge).e_tokens * iterations;
    c_fb_net = Option.map net_of_edge fb_edge;
    c_fb_need = fb_need;
  }

(* Round-robin over the defect mix: one clean case for every defect
   case, all four labels exercised. *)
let nth_case i =
  let seed = 1000 + i in
  match i mod 6 with
  | 0 | 1 | 2 -> generate ~seed ()
  | 3 -> generate ~defect:Imbalance ~seed ()
  | 4 -> generate ~defect:Under_capacity ~seed ()
  | _ -> generate ~defect:Starved_cycle ~seed ()

(** Seeded random SDF graph generator and differential lint-vs-runtime
    oracle.

    {!generate} builds compute graphs that are balanced by construction
    (kernel repetitions are drawn first; every net's per-iteration
    traffic is a common multiple of its endpoints' repetitions, so port
    rates are exact integers), each with one diamond — the undirected
    cycle that makes imbalance statically detectable — and optionally a
    prologue-seeded feedback cycle.  Defects are injected deliberately
    and labelled:

    - {!Imbalance}: one diamond edge's reader rate is perturbed, so the
      balance equations are inconsistent — the linter must report
      [CG-E101];
    - {!Under_capacity}: the feedback net's depth is set below the
      cycle's per-firing demand — the linter must report [CG-E201], the
      runtime (lint off) must actually deadlock, and
      [Run_config.auto_capacity] must rescue the run with the minimal
      depth (one element less deadlocks again);
    - {!Starved_cycle}: the cycle kernels declare no rates and emit no
      initial tokens — the linter must report [CG-W202] (unverifiable)
      and the runtime must deadlock.

    Clean graphs must lint clean, draw no capacity suggestions, and
    complete on both cgsim and x86sim with bit-identical outputs of the
    statically known length.  [Sdf_oracle.check] (its own library, so
    [workloads] itself never links [analysis] and arms no runtime
    hooks) asserts exactly these correspondences; [Sdf_oracle.run_suite]
    sweeps them over the deterministic {!nth_case} mix.  Everything
    derives from explicit seeds, so any reported disagreement
    reproduces exactly. *)

type defect =
  | Imbalance
  | Under_capacity
  | Starved_cycle

val defect_to_string : defect -> string

type case = {
  c_name : string;
  c_seed : int;
  c_defect : defect option;
  c_graph : Cgsim.Serialized.t;
  c_input : float array;  (** Input stream for the graph's one input. *)
  c_expected_out : int;  (** Output elements a correct complete run yields. *)
  c_fb_net : int option;  (** Feedback net id, when the case has a cycle. *)
  c_fb_need : int;  (** Its minimal deadlock-free depth (0 without cycle). *)
}

(** [generate ?defect ~seed ()] builds one case; deterministic in
    (seed, defect).  Generated kernels self-register in the global
    registry under behavior-encoding names (prefix ["sdfgen_"]), so
    repeated generation is idempotent. *)
val generate : ?defect:defect -> seed:int -> unit -> case

(** The deterministic case mix: seeds [1000+i], cycling three clean
    cases then one of each defect. *)
val nth_case : int -> case

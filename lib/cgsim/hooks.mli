(** Hooks letting a simulator intercept every kernel-port access and every
    kernel body without changing kernel code — the mechanism aiesim uses to
    count stream traffic, the observability layer uses for per-port
    counters, and {!Faults} uses to inject failures.

    This lives below {!Runtime} (which re-exports it as [wrap_hooks]) so
    that {!Run_config} and {!Faults} can be expressed without a dependency
    cycle on the runtime. *)

type t = {
  wrap_reader : Serialized.kernel_inst -> int -> Port.reader -> Port.reader;
      (** [wrap_reader inst port_idx r]; [port_idx] indexes [inst.ports]. *)
  wrap_writer : Serialized.kernel_inst -> int -> Port.writer -> Port.writer;
  around_body : Serialized.kernel_inst -> (unit -> unit) -> unit -> unit;
      (** Wraps the whole kernel body invocation. *)
}

(** Identity hooks. *)
val none : t

(** [compose outer inner] nests hook layers: readers/writers are wrapped
    by [inner] first, then [outer]; bodies likewise. *)
val compose : t -> t -> t

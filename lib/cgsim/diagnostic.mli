(** Structured diagnostics shared across the stack.

    One diagnostic type for every layer that judges a graph: the
    serialized-form validator ({!Serialized.validate_diags}), the static
    analyzer ([lib/analysis]), the CGC front-end ([Cgc.Diag] renders its
    located errors through {!render}) and the extractor.  A diagnostic is
    plain data — severity, a stable code like ["CG-E201"], a message, the
    kernel instances and nets it concerns, and an optional source span
    when the graph came from CGC — so tools can render it as text, JSON,
    or Graphviz coloring without re-parsing prose. *)

type severity =
  | Info
  | Warning
  | Error

val severity_to_string : severity -> string

(** Errors dominate warnings dominate infos. *)
val compare_severity : severity -> severity -> int

type t = {
  severity : severity;
  code : string;  (** Stable code, e.g. ["CG-E201"]; [""] for uncoded front-end errors. *)
  message : string;
  graph : string;  (** Name of the graph the finding concerns; [""] when unknown. *)
  kernels : string list;  (** Kernel instance names involved, cycle order preserved. *)
  nets : string list;  (** Display names of the nets involved (see {!Serialized}). *)
  net_ids : int list;  (** Net ids of [nets], for tools that index the graph. *)
  loc : Srcspan.t option;
}

(** [make ~severity ~code msg] with everything else defaulted empty. *)
val make :
  severity:severity ->
  code:string ->
  ?graph:string ->
  ?kernels:string list ->
  ?nets:string list ->
  ?net_ids:int list ->
  ?loc:Srcspan.t ->
  string ->
  t

(** Worst severity present, [None] on the empty list. *)
val max_severity : t list -> severity option

(** Conventional process exit status for a finding set: 0 when nothing
    worse than [Info], 1 for [Warning], 2 for [Error]. *)
val exit_status : t list -> int

(** Sort by severity (errors first), then code, keeping the original
    order among equals. *)
val sort : t list -> t list

(** "file:line:col: error[CG-E201]: message [kernels: a, b; nets: n1]".
    Location and bracketed context are omitted when absent; the code
    bracket is omitted when [code = ""] — which makes the render of an
    uncoded front-end error exactly the historical
    "file:line:col: error: message" form. *)
val render : t -> string

val pp : Format.formatter -> t -> unit

val to_json : t -> Obs.Json.t

exception Construction_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Construction_error s)) fmt

type net_state = {
  id : int;
  dtype : Dtype.t;
  src : Srcspan.t option;
  mutable attrs : Attr.t list;
  mutable writers : Serialized.endpoint list;  (* reverse order *)
  mutable readers : Serialized.endpoint list;  (* reverse order *)
  mutable global_input : string option;
  mutable global_output : string option;
}

type conn = {
  owner_id : int;
  net : net_state;
}

type inst_state = {
  inst_name : string;
  kernel : Kernel.t;
  port_nets : int array;
  inst_src : Srcspan.t option;
}

type t = {
  builder_id : int;
  gname : string;
  mutable nets : net_state list;  (* reverse order *)
  mutable insts : inst_state list;  (* reverse order *)
  mutable next_net : int;
  mutable input_order : int list;  (* reverse order *)
  mutable output_order : int list;  (* reverse order *)
  mutable frozen : bool;
  inst_names : (string, unit) Hashtbl.t;
  kernel_counts : (string, int) Hashtbl.t;
}

let next_builder_id = ref 0

let create ~name =
  incr next_builder_id;
  {
    builder_id = !next_builder_id;
    gname = name;
    nets = [];
    insts = [];
    next_net = 0;
    input_order = [];
    output_order = [];
    frozen = false;
    inst_names = Hashtbl.create 8;
    kernel_counts = Hashtbl.create 8;
  }

let check_open t = if t.frozen then fail "graph %s: construction after freeze" t.gname

let fresh_net ?src t dtype =
  check_open t;
  let n =
    {
      id = t.next_net;
      dtype;
      src;
      attrs = [];
      writers = [];
      readers = [];
      global_input = None;
      global_output = None;
    }
  in
  t.next_net <- t.next_net + 1;
  t.nets <- n :: t.nets;
  { owner_id = t.builder_id; net = n }

let check_owner t c =
  if c.owner_id <> t.builder_id then
    fail "graph %s: connector belongs to a different graph builder" t.gname

let net ?src t dtype = fresh_net ?src t dtype

let input t ?src ?(attrs = []) ~name dtype =
  let c = fresh_net ?src t dtype in
  c.net.global_input <- Some name;
  c.net.attrs <- Attr.merge c.net.attrs attrs;
  t.input_order <- c.net.id :: t.input_order;
  c

let output t ?(attrs = []) ~name c =
  check_open t;
  check_owner t c;
  (match c.net.global_output with
   | Some existing -> fail "graph %s: connector already declared as output %s" t.gname existing
   | None -> ());
  c.net.global_output <- Some name;
  c.net.attrs <- Attr.merge c.net.attrs attrs;
  t.output_order <- c.net.id :: t.output_order

let attach_attributes t c attrs =
  check_open t;
  check_owner t c;
  c.net.attrs <- Attr.merge c.net.attrs attrs

let dtype_of c = c.net.dtype

let add_kernel t ?inst ?src (kernel : Kernel.t) conns =
  check_open t;
  let n_ports = Array.length kernel.Kernel.ports in
  if List.length conns <> n_ports then
    fail "graph %s: kernel %s expects %d connectors, got %d" t.gname kernel.Kernel.name n_ports
      (List.length conns);
  List.iter (check_owner t) conns;
  let inst_name =
    match inst with
    | Some n -> n
    | None ->
      let count = Option.value (Hashtbl.find_opt t.kernel_counts kernel.Kernel.name) ~default:0 in
      Hashtbl.replace t.kernel_counts kernel.Kernel.name (count + 1);
      Printf.sprintf "%s_%d" kernel.Kernel.name count
  in
  if Hashtbl.mem t.inst_names inst_name then
    fail "graph %s: duplicate kernel instance name %s" t.gname inst_name;
  Hashtbl.add t.inst_names inst_name ();
  let kernel_idx = List.length t.insts in
  let port_nets = Array.make n_ports (-1) in
  List.iteri
    (fun port_idx c ->
      let spec = kernel.Kernel.ports.(port_idx) in
      if not (Dtype.equal spec.Kernel.dtype c.net.dtype) then
        fail "graph %s: kernel %s port %s carries %s but connector carries %s" t.gname
          kernel.Kernel.name spec.Kernel.pname
          (Dtype.to_string spec.Kernel.dtype)
          (Dtype.to_string c.net.dtype);
      port_nets.(port_idx) <- c.net.id;
      let ep = { Serialized.kernel_idx; port_idx } in
      match spec.Kernel.dir with
      | Kernel.In ->
        if c.net.global_output <> None then
          fail "graph %s: connector already declared as a global output cannot feed kernel %s"
            t.gname kernel.Kernel.name;
        c.net.readers <- ep :: c.net.readers
      | Kernel.Out ->
        if c.net.global_input <> None then
          fail "graph %s: kernel %s writes connector declared as global input %s" t.gname
            kernel.Kernel.name
            (Option.value c.net.global_input ~default:"?");
        c.net.writers <- ep :: c.net.writers)
    conns;
  t.insts <- { inst_name; kernel; port_nets; inst_src = src } :: t.insts;
  kernel_idx

(* Merge the settings of all endpoints touching a net, mirroring cgsim's
   unification of parameterized port settings (Section 3.4). *)
let merged_settings t insts (n : net_state) =
  let endpoint_settings ep =
    let inst = insts.(ep.Serialized.kernel_idx) in
    inst.kernel.Kernel.ports.(ep.Serialized.port_idx).Kernel.settings
  in
  let all = List.map endpoint_settings (n.writers @ n.readers) in
  List.fold_left
    (fun acc s ->
      match Settings.merge acc s with
      | Ok merged -> merged
      | Error reason -> fail "graph %s: net %d: %s" t.gname n.id reason)
    Settings.default all

let freeze t =
  check_open t;
  t.frozen <- true;
  let insts = Array.of_list (List.rev t.insts) in
  let nets_list = List.rev t.nets in
  let kernels =
    Array.map
      (fun st ->
        if not (Registry.mem st.kernel.Kernel.name) then
          fail "graph %s: kernel %s is not registered (Registry.register it first)" t.gname
            st.kernel.Kernel.name;
        {
          Serialized.inst_name = st.inst_name;
          key = st.kernel.Kernel.name;
          realm = st.kernel.Kernel.realm;
          ports = st.kernel.Kernel.ports;
          port_nets = st.port_nets;
          src = st.inst_src;
        })
      insts
  in
  let nets =
    Array.of_list
      (List.map
         (fun n ->
           let settings = merged_settings t insts n in
           (match Settings.validate ~elem_bytes:(Dtype.size_bytes n.dtype) settings with
            | Ok () -> ()
            | Error e -> fail "graph %s: net %d: %s" t.gname n.id e);
           {
             Serialized.net_id = n.id;
             dtype = n.dtype;
             settings;
             attrs = n.attrs;
             writers = List.rev n.writers;
             readers = List.rev n.readers;
             global_input = n.global_input;
             global_output = n.global_output;
             src = n.src;
           })
         nets_list)
  in
  (* Dangling-connector checks: every read net needs a source; warn-level
     conditions (unread nets) are allowed as sinks with zero consumers. *)
  Array.iter
    (fun (n : Serialized.net) ->
      if (n.readers <> [] || n.global_output <> None) && n.writers = [] && n.global_input = None
      then
        fail "graph %s: net %d is consumed but has no producer (dangling connector)" t.gname
          n.net_id)
    nets;
  let serialized =
    {
      Serialized.gname = t.gname;
      kernels;
      nets;
      input_order = Array.of_list (List.rev t.input_order);
      output_order = Array.of_list (List.rev t.output_order);
    }
  in
  match Serialized.validate_diags serialized with
  | [] -> serialized
  | diags ->
    fail "graph %s: invalid serialized form:@\n%s" t.gname
      (String.concat "\n" (List.map Diagnostic.render diags))

let make ~name ~inputs f =
  let b = create ~name in
  let in_conns = List.map (fun (n, dt) -> input b ~name:n dt) inputs in
  let outs = f b in_conns in
  List.iteri (fun i c -> output b ~name:(Printf.sprintf "out%d" i) c) outs;
  freeze b

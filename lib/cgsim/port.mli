(** Kernel-side stream endpoints.

    The runtime analogue of [KernelReadPort<T>] / [KernelWritePort<T>]:
    the objects a kernel body actually reads from and writes to.  They are
    closure records so the same kernel body can be bound to

    - cgsim's cooperative queues ({!Bqueue}, via {!Runtime}),
    - x86sim's thread-safe queues (one OS thread per kernel), and
    - aiesim's instrumented endpoints (cycle accounting around accesses),

    mirroring how the paper's extractor swaps port-type implementations per
    realm (Section 4.4) without touching kernel code. *)

type reader = {
  r_name : string;
  r_dtype : Dtype.t;
  r_get : unit -> Value.t;  (** May suspend; raises {!Sched.End_of_stream}. *)
  r_peek : unit -> Value.t option;
  r_available : unit -> int;
  r_get_block : int -> Value.t array;
      (** Block read: equivalent to [n] calls of [r_get] but routed
          through the transport's block fast path when it has one. *)
  r_get_floats : int -> float array;
      (** Unboxed block read (float-dtype ports): equivalent to
          [Array.map Value.to_float (r_get_block n)] but with no boxing
          when the transport stores unboxed. *)
  r_get_ints : int -> int array;  (** Unboxed block read, integer dtypes. *)
}

type writer = {
  w_name : string;
  w_dtype : Dtype.t;
  w_put : Value.t -> unit;  (** May suspend. *)
  w_put_block : Value.t array -> unit;  (** Block write, cf. [r_get_block]. *)
  w_put_floats : float array -> unit;
      (** Unboxed block write (float-dtype ports); F32 payloads round to
          single precision on store ({!Value.round_f32}). *)
  w_put_ints : int array -> unit;
      (** Unboxed block write, integer dtypes; range-checked. *)
  w_space : unit -> int;
      (** Advisory free space of the transport (never suspends); the
          interleave-aware {!put_window2} sizes its lockstep chunks with
          it. *)
}

val get : reader -> Value.t
val put : writer -> Value.t -> unit

(** Window (block) transfers, used by buffer-port kernels such as the IIR
    example.  [get_window r n] reads [n] elements through the binding's
    block path (one queue transaction per chunk rather than per element). *)
val get_window : reader -> int -> Value.t array

val put_window : writer -> Value.t array -> unit

(** Unboxed windows: flat float/int payloads through the transport's
    unboxed block path.  On a bigarray-backed queue the transfer is a
    bounds-checked blit with no {!Value.t} allocation; elsewhere it
    boxes at the boundary with identical semantics. *)

val get_window_f32 : reader -> int -> float array

val put_window_f32 : writer -> float array -> unit

val get_window_int : reader -> int -> int array

val put_window_int : writer -> int array -> unit

(** [put_window2 wa wb va vb] writes two equal-length windows to two
    ports in lockstep chunks sized by the free space of the tighter
    queue — the block path for producers whose consumer drains the two
    streams interleaved (farrow stage 1).  A whole-window burst on one
    port could deadlock such a pair; this cannot, because whenever
    neither queue has space it degrades to the scalar interleave.
    Raises [Invalid_argument] if the arrays differ in length. *)
val put_window2 : writer -> writer -> Value.t array -> Value.t array -> unit

(** Derive block accessors from scalar ones, for bindings whose transport
    has no native block operation.  Semantically identical to an element
    loop. *)
val block_get_of_get : (unit -> Value.t) -> int -> Value.t array

val block_put_of_put : (Value.t -> unit) -> Value.t array -> unit

(** Derive unboxed accessors from a boxed block path, for transports
    with no native unboxed operation: one block transaction underneath,
    box/unbox at the boundary.  [block_of_floats] rounds F32 payloads
    before boxing, matching unboxed-storage semantics. *)

val floats_of_block : (int -> Value.t array) -> int -> float array

val ints_of_block : (int -> Value.t array) -> int -> int array

val block_of_floats : Dtype.t -> (Value.t array -> unit) -> float array -> unit

val block_of_ints : (Value.t array -> unit) -> int array -> unit

(** {1 Scalar conveniences} *)

val get_f32 : reader -> float
val get_int : reader -> int
val put_f32 : writer -> float -> unit
val put_int : writer -> int -> unit

(** {1 Typed codecs}

    A ['a Codec.t] converts between OCaml values and stream elements,
    giving kernels a typed API including user-defined structs (the paper
    highlights struct-typed streams as a type-safety improvement over the
    AIE framework's flat buffers). *)

module Codec : sig
  type 'a t = {
    dtype : Dtype.t;
    enc : 'a -> Value.t;
    dec : Value.t -> 'a;
  }

  val f32 : float t
  val f64 : float t
  val i32 : int t
  val i16 : int t
  val u8 : int t

  (** Fixed-lane float vector. *)
  val vf32 : int -> float array t

  (** Fixed-lane int vector of the given scalar dtype. *)
  val vint : Dtype.t -> int -> int array t

  (** Build a struct codec from named field codecs packed as a record of
      accessors; see {!field}. *)
  val struct2 : string * 'a t -> string * 'b t -> ('a * 'b) t

  val struct3 : string * 'a t -> string * 'b t -> string * 'c t -> ('a * 'b * 'c) t

  val struct4 :
    string * 'a t -> string * 'b t -> string * 'c t -> string * 'd t -> ('a * 'b * 'c * 'd) t
end

val read : 'a Codec.t -> reader -> 'a
val write : 'a Codec.t -> writer -> 'a -> unit

(** Fail-fast dtype agreement check used when binding endpoints. *)
val check_dtype : expected:Dtype.t -> actual:Dtype.t -> what:string -> unit

(** Graph construction (the [IoConnector] API).

    The staged analogue of the paper's compile-time graph construction
    (Section 3.4): the user supplies a function that receives connector
    objects for the graph's external inputs, creates internal connectors,
    applies kernels to connectors, and returns the output connectors.  The
    construction phase runs strictly before execution and "freezes" into
    the flattened {!Serialized.t} form; any inconsistency (dtype mismatch,
    incompatible port settings, unknown kernels, dangling connectors) is
    reported at freeze time — the moment that corresponds to the paper's
    compile-time errors.

    Connecting several kernel outputs to one connector creates an implicit
    stream merge; several inputs, an implicit broadcast. *)

type t

(** A connector (net under construction).  Valid only for the builder that
    created it. *)
type conn

exception Construction_error of string

val create : name:string -> t

(** Declare an external graph input carrying elements of the dtype.
    [src] records the source construct that declared it (set by the CGC
    const-evaluator; OCaml-built graphs normally omit it). *)
val input : t -> ?src:Srcspan.t -> ?attrs:Attr.t list -> name:string -> Dtype.t -> conn

(** Create an internal connector. *)
val net : ?src:Srcspan.t -> t -> Dtype.t -> conn

(** Declare [conn] as an external graph output. *)
val output : t -> ?attrs:Attr.t list -> name:string -> conn -> unit

(** [add_kernel t kernel conns] instantiates [kernel], binding [conns]
    positionally to its ports (inputs read the connector, outputs write
    it).  Arity and dtypes are checked immediately; settings are merged at
    freeze.  Returns the instance index.  An explicit [inst] name overrides
    the generated ["<kernel>_<n>"]; [src] records the invocation site. *)
val add_kernel : t -> ?inst:string -> ?src:Srcspan.t -> Kernel.t -> conn list -> int

(** Attach extractor-facing attributes to a connector (Section 3.4). *)
val attach_attributes : t -> conn -> Attr.t list -> unit

val dtype_of : conn -> Dtype.t

(** Freeze into the flattened form.  Raises {!Construction_error} listing
    every problem found. *)
val freeze : t -> Serialized.t

(** One-call convenience mirroring [make_compute_graph_v]: declare inputs,
    run the connectivity function on their connectors, declare the
    returned connectors as outputs, freeze. *)
val make :
  name:string ->
  inputs:(string * Dtype.t) list ->
  (t -> conn list -> conn list) ->
  Serialized.t

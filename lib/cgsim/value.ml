type t =
  | Float of float
  | Int of int
  | Vec of t array
  | Rec of (string * t) list

let rec equal a b =
  match a, b with
  | Float x, Float y -> Float.equal x y
  | Int x, Int y -> x = y
  | Vec x, Vec y ->
    let n = Array.length x in
    n = Array.length y
    && (let rec scan i = i >= n || (equal x.(i) y.(i) && scan (i + 1)) in
        scan 0)
  | Rec x, Rec y ->
    List.length x = List.length y
    && List.for_all2 (fun (nx, vx) (ny, vy) -> String.equal nx ny && equal vx vy) x y
  | (Float _ | Int _ | Vec _ | Rec _), _ -> false

let rec pp ppf = function
  | Float f -> Format.fprintf ppf "%g" f
  | Int i -> Format.fprintf ppf "%d" i
  | Vec a ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp)
      (Array.to_seq a)
  | Rec fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (n, v) -> Format.fprintf ppf "%s=%a" n pp v))
      fields

let to_string v = Format.asprintf "%a" pp v

let int_range = function
  | Dtype.I8 -> Some (-128, 127)
  | Dtype.I16 -> Some (-32768, 32767)
  | Dtype.I32 -> Some (-2147483648, 2147483647)
  | Dtype.I64 -> None (* OCaml ints are 63-bit; treat as unbounded *)
  | Dtype.U8 -> Some (0, 255)
  | Dtype.U16 -> Some (0, 65535)
  | Dtype.U32 -> Some (0, 4294967295)
  | Dtype.F32 | Dtype.F64 | Dtype.Vector _ | Dtype.Struct _ -> None

let rec conforms dtype v =
  match dtype, v with
  | (Dtype.F32 | Dtype.F64), Float _ -> true
  | (Dtype.I8 | Dtype.I16 | Dtype.I32 | Dtype.I64 | Dtype.U8 | Dtype.U16 | Dtype.U32), Int i ->
    (match int_range dtype with
     | None -> true
     | Some (lo, hi) -> i >= lo && i <= hi)
  | Dtype.Vector (e, lanes), Vec a ->
    Array.length a = lanes && Array.for_all (conforms e) a
  | Dtype.Struct fields, Rec fvs ->
    List.length fields = List.length fvs
    && List.for_all2
         (fun (fn, ft) (vn, vv) -> String.equal fn vn && conforms ft vv)
         fields fvs
  | _, (Float _ | Int _ | Vec _ | Rec _) -> false

let check ~net dtype v =
  if not (conforms dtype v) then
    invalid_arg
      (Printf.sprintf "cgsim: value %s does not conform to dtype %s on net %s"
         (to_string v) (Dtype.to_string dtype) net)

(* Specialized validators: the dtype tree is interpreted once, here, and
   the returned closure does only the per-value shape/range tests.  Queues
   compile one validator at creation instead of re-walking the dtype on
   every element (the dominant cost of [conforms] on scalar streams). *)
let rec compile_check = function
  | (Dtype.F32 | Dtype.F64) -> ( function Float _ -> true | Int _ | Vec _ | Rec _ -> false)
  | Dtype.I64 -> ( function Int _ -> true | Float _ | Vec _ | Rec _ -> false)
  | (Dtype.I8 | Dtype.I16 | Dtype.I32 | Dtype.U8 | Dtype.U16 | Dtype.U32) as d ->
    (match int_range d with
     | Some (lo, hi) ->
       fun v -> ( match v with Int i -> i >= lo && i <= hi | Float _ | Vec _ | Rec _ -> false)
     | None -> ( function Int _ -> true | Float _ | Vec _ | Rec _ -> false))
  | Dtype.Vector (e, lanes) ->
    let ce = compile_check e in
    fun v ->
      (match v with
       | Vec a -> Array.length a = lanes && Array.for_all ce a
       | Float _ | Int _ | Rec _ -> false)
  | Dtype.Struct fields ->
    let compiled = List.map (fun (fn, ft) -> fn, compile_check ft) fields in
    let nfields = List.length fields in
    fun v ->
      (match v with
       | Rec fvs ->
         List.length fvs = nfields
         && List.for_all2 (fun (fn, cf) (vn, vv) -> String.equal fn vn && cf vv) compiled fvs
       | Float _ | Int _ | Vec _ -> false)

let rec zero = function
  | Dtype.F32 | Dtype.F64 -> Float 0.0
  | Dtype.I8 | Dtype.I16 | Dtype.I32 | Dtype.I64 | Dtype.U8 | Dtype.U16 | Dtype.U32 -> Int 0
  | Dtype.Vector (e, lanes) -> Vec (Array.init lanes (fun _ -> zero e))
  | Dtype.Struct fields -> Rec (List.map (fun (n, t) -> n, zero t) fields)

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | (Vec _ | Rec _) as v -> invalid_arg ("cgsim: expected scalar float, got " ^ to_string v)

let to_int = function
  | Int i -> i
  | (Float _ | Vec _ | Rec _) as v -> invalid_arg ("cgsim: expected integer, got " ^ to_string v)

let to_vec = function
  | Vec a -> a
  | (Float _ | Int _ | Rec _) as v -> invalid_arg ("cgsim: expected vector, got " ^ to_string v)

let field v name =
  match v with
  | Rec fields ->
    (try List.assoc name fields
     with Not_found -> invalid_arg ("cgsim: struct has no field " ^ name))
  | Float _ | Int _ | Vec _ -> invalid_arg ("cgsim: expected struct, got " ^ to_string v)

let clamp_int dtype i =
  match int_range dtype with
  | None -> i
  | Some (lo, hi) -> if i < lo then lo else if i > hi then hi else i

let wrap_int dtype i =
  match dtype with
  | Dtype.I8 -> (i + 128) land 255 - 128
  | Dtype.I16 -> (i + 32768) land 65535 - 32768
  | Dtype.I32 -> (i + 2147483648) land 4294967295 - 2147483648
  | Dtype.U8 -> i land 255
  | Dtype.U16 -> i land 65535
  | Dtype.U32 -> i land 4294967295
  | Dtype.I64 | Dtype.F32 | Dtype.F64 | Dtype.Vector _ | Dtype.Struct _ -> i

(* Single-precision rounding via a C cast: the Int32.bits_of_float
   spelling boxes an Int32 per call, which on unboxed f32 stores (one
   round per element) is the difference between a pure register op and
   the dominant allocation of the whole data plane. *)
external round_f32 : float -> float = "cgsim_round_f32_byte" "cgsim_round_f32"
  [@@unboxed] [@@noalloc]

(** Unified execution configuration.

    One record consolidating what used to be a sprawl of optional
    arguments across {!Runtime.instantiate}/{!Runtime.execute},
    {!Pool.run} and [X86sim.Sim.run], plus the robustness knobs
    (deadlines, fuel, retries, circuit breaker, fault injection).

    Build with [Run_config.(default |> with_deadline_ms 50. |> with_retries 2)]
    and pass as [~config].  Fields are exposed for pattern matching; use
    the [with_*] builders for forward compatibility. *)

(** Pre-flight lint behaviour: [`Off] skips the analysis, [`Warn] (the
    default) prints warning/error findings to stderr and proceeds,
    [`Error] refuses to run a graph with error-level findings. *)
type lint_level =
  [ `Off
  | `Warn
  | `Error
  ]

type t = {
  hooks : Hooks.t;  (** Port/body interception; default {!Hooks.none}. *)
  queue_capacity : int option;
      (** Override every net's resolved queue depth; default per-net. *)
  block_io : bool;  (** Block-transfer fast path (default [true]). *)
  spsc : bool;  (** SPSC queue fast path (default [true]). *)
  lint : lint_level;  (** Pre-flight static analysis (default [`Warn]). *)
  deadline_ns : float option;
      (** Wall-clock budget per run (per attempt under {!Pool}). *)
  max_steps : int option;  (** Scheduler slice budget (fuel). *)
  retries : int;
      (** {!Pool} only: retry budget for retryable outcomes
          (kernel failures, deadline hits); default 0. *)
  retry_base_ns : float;
      (** Decorrelated-jitter backoff base (default 1 ms); 0 disables
          sleeping between attempts. *)
  retry_cap_ns : float;  (** Backoff cap (default 100 ms). *)
  breaker_threshold : int option;
      (** {!Pool} only: consecutive final failures after which the
          circuit opens and remaining requests are shed; default off. *)
  faults : Faults.t option;  (** Fault-injection plan; default none. *)
  seed : int;  (** Seed for backoff jitter (determinism). *)
  warm : bool;
      (** {!Pool} only: serve requests from per-domain warm runtime
          instances (compile once, {!Runtime.reset} between requests);
          default [true].  [false] forces the cold path — a fresh
          instantiation per attempt. *)
  batch : int;
      (** {!Pool} only: maximum requests pumped through one warm run when
          the graph is provably batchable (every kernel declared
          [~pure:true] and [~stateless:true]); default 1 (no batching).
          Ignored on the cold path and for open-loop arrivals. *)
  fuse : bool;
      (** Operator fusion (default [true]): collapse chains of
          rate-matched single-producer/single-consumer kernels into one
          fiber, passing windows directly with no intermediate queue.
          Only lint-clean chains identified by the analysis pass are
          fused; everything else falls back transparently.  [false]
          keeps one fiber + one queue per hop — the equivalence
          baseline. *)
  unboxed : bool;
      (** Unboxed data plane (default [true]): back scalar-dtype queue
          storage with [Bigarray.Array1] so block transfers move flat
          memory instead of boxed {!Value.t}s.  [false] forces boxed
          storage everywhere — the equivalence baseline. *)
  auto_capacity : bool;
      (** Capacity synthesis (default [false]): at {!Runtime.compile}
          time, raise each net's queue depth to the minimal
          deadlock-free capacity suggested by the static analyzer's
          capacity pass ([Analysis.Capacity], finding CG-I204).
          Depths are only ever raised, never lowered, so a clean graph
          is untouched.  No-op unless the [analysis] library is linked
          (the suggestion hook installs itself, like the lint and
          fusion hooks). *)
}

val default : t

val with_hooks : Hooks.t -> t -> t
val with_queue_capacity : int -> t -> t
val with_block_io : bool -> t -> t
val with_spsc : bool -> t -> t
val with_lint : lint_level -> t -> t
val with_deadline_ns : float -> t -> t
val with_deadline_ms : float -> t -> t
val with_max_steps : int -> t -> t
val with_retries : int -> t -> t
val with_backoff : ?base_ns:float -> ?cap_ns:float -> t -> t
val with_breaker : int -> t -> t
val with_faults : Faults.t -> t -> t
val with_seed : int -> t -> t
val with_warm : bool -> t -> t

(** Raises [Invalid_argument] unless the batch size is positive. *)
val with_batch : int -> t -> t

val with_fuse : bool -> t -> t
val with_unboxed : bool -> t -> t
val with_auto_capacity : bool -> t -> t

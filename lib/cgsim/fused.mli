(** Direct hand-off edges inside fused kernel chains.

    When the fusion pass collapses a chain of rate-matched
    single-producer/single-consumer kernels into one fiber
    ({!Runtime.compile} with [Run_config.fuse]), the queue between two
    chain members is replaced by an [edge]: a growable unboxed ring plus
    a pull coroutine.  The downstream member's port reads state a demand
    and resume the upstream member's body (the edge's {e pump}) until
    enough elements arrived; the upstream body suspends itself once the
    demand is met.  No scheduler parking, waking or capacity blocking
    happens on the edge itself — blocking operations inside the pump
    (e.g. the chain head reading a real input queue) park the whole
    chain fiber, preserving unfused semantics.

    Semantic differences from a {!Bqueue}, by design:
    - [peek] {e pulls}: it may run the upstream body (and park or raise
      {!Sched.End_of_stream}) instead of returning [None], because
      availability on a demand-driven edge is not observable without
      producing.
    - capacity is elastic (bounded by the window sizes the bodies use),
      so a fused chain never deadlocks on edge capacity.

    Everything here is single-fiber code driven by {!Runtime}; none of
    it is safe to share between domains. *)

type edge

val create : name:string -> dtype:Dtype.t -> edge

val name : edge -> string
val dtype : edge -> Dtype.t

(** Elements written over the run so far (net-traffic accounting). *)
val total_put : edge -> int

(** Elements buffered: written but not yet read. *)
val occupancy : edge -> int

val is_closed : edge -> bool

(** Install the upstream body as this run's pump ({!Runtime}'s [arm]
    does this before spawning the chain fiber). *)
val install_pump : edge -> (unit -> unit) -> unit

(** {1 Writer side — used by the upstream member's output port} *)

val put : edge -> Value.t -> unit
val put_block : edge -> Value.t array -> unit
val put_floats : edge -> float array -> unit
val put_ints : edge -> int array -> unit

(** Outstanding demand (elements still wanted before the writer would
    suspend) — the advisory the fused writer exposes as [w_space]. *)
val w_space : edge -> int

(** {1 Reader side — used by the downstream member's input port} *)

val get : edge -> Value.t
val peek : edge -> Value.t option
val available : edge -> int
val get_block : edge -> int -> Value.t array
val get_floats : edge -> int -> float array
val get_ints : edge -> int -> int array

(** {1 Lifecycle} *)

(** Close the edge (upstream finished); readers drain then observe
    {!Sched.End_of_stream}. *)
val close : edge -> unit

(** End-of-run teardown: discontinue a still-suspended pump with
    {!Sched.Terminated} (so its cleanup runs) and close the edge. *)
val kill : edge -> unit

(** Restore to pristine for the next run (the grown ring is kept; the
    pump slot empties until the next {!install_pump}). *)
val reset : edge -> unit

(** Deterministic, seeded fault injection (chaos testing).

    A fault plan wraps kernel ports through ordinary {!Hooks} (installed
    by {!Runtime.instantiate} when {!Run_config.faults} is set): on the
    Nth access through a matching kernel's port, the configured action
    fires.  Same seed, same plan, same graph, single-domain schedule ⇒
    same outcome.

    A plan carries {e fire budgets} shared across instantiations of the
    same plan value — atomically decremented, so a [~fires:1] fault hits
    exactly one request even when pool domains race, and a retried
    request re-instantiating the graph runs clean.  That is how transient
    faults (fail once, recover on retry) are expressed. *)

(** Raised out of a kernel body by the {!Raise} action. *)
exception Injected of string

type action =
  | Raise  (** Raise {!Injected} out of the kernel body. *)
  | Stall
      (** Busy-stall: spin on {!Sched.yield} forever.  Progress stops but
          the schedule does not, so only a deadline or fuel budget ends
          the run — pair with {!Run_config.with_deadline_ns}. *)
  | Delay of int  (** Insert N cooperative yields, then proceed. *)
  | Backpressure of int
      (** From the Nth access on, the port's advisory space probe reports
          a full queue and every put is preceded by N yields. *)

val action_to_string : action -> string

type spec = {
  fs_kernel : string;  (** Kernel instance name, or ["*"] for any. *)
  fs_action : action;
  fs_after : int;  (** Fire on the Nth port access (1-based); [<= 0]: seed-derived. *)
  fs_fires : int;  (** Total fire budget across instantiations; [-1] = unlimited. *)
}

val raise_on : kernel:string -> ?after:int -> ?fires:int -> unit -> spec
val stall_on : kernel:string -> ?after:int -> ?fires:int -> unit -> spec
val delay_on : kernel:string -> ?after:int -> ?yields:int -> ?fires:int -> unit -> spec
val backpressure_on : kernel:string -> ?after:int -> ?yields:int -> ?fires:int -> unit -> spec

type t

(** [plan ~seed specs] arms the specs: activations left at [<= 0] are
    resolved deterministically from [seed] and the kernel name. *)
val plan : ?seed:int -> spec list -> t

val seed : t -> int

(** Faults actually fired so far (all actions, all instantiations). *)
val injected : t -> int

(** Human-readable description of the armed specs (resolved activations). *)
val describe : t -> string list

(** The hooks implementing the plan; composed innermost by
    {!Runtime.instantiate}.  Each fired fault also emits a
    [faults.injected] metric and a per-port instant into the active
    {!Obs.Trace} session. *)
val hooks : t -> Hooks.t

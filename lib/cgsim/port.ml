type reader = {
  r_name : string;
  r_dtype : Dtype.t;
  r_get : unit -> Value.t;
  r_peek : unit -> Value.t option;
  r_available : unit -> int;
  r_get_block : int -> Value.t array;
  r_get_floats : int -> float array;
  r_get_ints : int -> int array;
}

type writer = {
  w_name : string;
  w_dtype : Dtype.t;
  w_put : Value.t -> unit;
  w_put_block : Value.t array -> unit;
  w_put_floats : float array -> unit;
  w_put_ints : int array -> unit;
  w_space : unit -> int;
}

let get r = r.r_get ()

let put w v = w.w_put v

let get_window r n = r.r_get_block n

let put_window w vs = w.w_put_block vs

(* Unboxed windows: flat float/int payloads through the transport's
   unboxed block path — no Value boxing on bigarray-backed queues. *)
let get_window_f32 r n = r.r_get_floats n

let put_window_f32 w fs = w.w_put_floats fs

let get_window_int r n = r.r_get_ints n

let put_window_int w is = w.w_put_ints is

(* Two-port interleaved block write.  Some kernels (farrow stage 1)
   produce two streams that a downstream kernel drains alternately; a
   whole-window burst on one port before touching the other can exceed
   the in-flight buffering of both queues together and deadlock.  This
   writes the pair in lockstep chunks bounded by the currently free
   space of the tighter queue, so the consumer always gets data on the
   stream it needs next.  When neither queue has space the chunk
   degrades to one element, which blocks exactly like the scalar
   interleave — progress is guaranteed whenever the plain per-element
   interleave would make progress. *)
let put_window2 wa wb va vb =
  let n = Array.length va in
  if Array.length vb <> n then
    invalid_arg
      (Printf.sprintf "cgsim: put_window2 on %s/%s: arrays differ in length (%d vs %d)"
         wa.w_name wb.w_name n (Array.length vb));
  if n > 0 then begin
    let off = ref 0 in
    while !off < n do
      let free = min (wa.w_space ()) (wb.w_space ()) in
      let len = min (n - !off) (max 1 free) in
      if !off = 0 && len = n then begin
        wa.w_put_block va;
        wb.w_put_block vb
      end
      else begin
        wa.w_put_block (Array.sub va !off len);
        wb.w_put_block (Array.sub vb !off len)
      end;
      off := !off + len
    done
  end

(* Fallback block accessors for bindings whose transport has no native
   block operation (element loops, semantically identical). *)
let block_get_of_get get n = Array.init n (fun _ -> get ())

let block_put_of_put put vs = Array.iter put vs

(* Derive the unboxed accessors from the boxed block path, for bindings
   whose transport has no native unboxed operation: box/unbox at the
   boundary, one block transaction underneath.  The float writer rounds
   F32 payloads before boxing, matching unboxed-storage semantics. *)
let floats_of_block get_block n = Array.map Value.to_float (get_block n)

let ints_of_block get_block n = Array.map Value.to_int (get_block n)

let block_of_floats dtype put_block fs =
  match dtype with
  | Dtype.F32 -> put_block (Array.map (fun f -> Value.Float (Value.round_f32 f)) fs)
  | _ -> put_block (Array.map (fun f -> Value.Float f) fs)

let block_of_ints put_block is = put_block (Array.map (fun i -> Value.Int i) is)

let get_f32 r = Value.to_float (get r)

let get_int r = Value.to_int (get r)

let put_f32 w f = put w (Value.Float f)

let put_int w i = put w (Value.Int i)

module Codec = struct
  type 'a t = {
    dtype : Dtype.t;
    enc : 'a -> Value.t;
    dec : Value.t -> 'a;
  }

  let f32 =
    { dtype = Dtype.F32; enc = (fun f -> Value.Float (Value.round_f32 f)); dec = Value.to_float }

  let f64 = { dtype = Dtype.F64; enc = (fun f -> Value.Float f); dec = Value.to_float }

  let int_codec dtype =
    { dtype; enc = (fun i -> Value.Int (Value.wrap_int dtype i)); dec = Value.to_int }

  let i32 = int_codec Dtype.I32
  let i16 = int_codec Dtype.I16
  let u8 = int_codec Dtype.U8

  let vf32 lanes =
    {
      dtype = Dtype.Vector (Dtype.F32, lanes);
      enc =
        (fun a ->
          if Array.length a <> lanes then
            invalid_arg (Printf.sprintf "cgsim: vf32 codec expects %d lanes" lanes);
          Value.Vec (Array.map (fun f -> Value.Float (Value.round_f32 f)) a));
      dec = (fun v -> Array.map Value.to_float (Value.to_vec v));
    }

  let vint elem lanes =
    {
      dtype = Dtype.Vector (elem, lanes);
      enc =
        (fun a ->
          if Array.length a <> lanes then
            invalid_arg (Printf.sprintf "cgsim: vint codec expects %d lanes" lanes);
          Value.Vec (Array.map (fun i -> Value.Int (Value.wrap_int elem i)) a));
      dec = (fun v -> Array.map Value.to_int (Value.to_vec v));
    }

  let struct2 (na, ca) (nb, cb) =
    {
      dtype = Dtype.Struct [ na, ca.dtype; nb, cb.dtype ];
      enc = (fun (a, b) -> Value.Rec [ na, ca.enc a; nb, cb.enc b ]);
      dec = (fun v -> ca.dec (Value.field v na), cb.dec (Value.field v nb));
    }

  let struct3 (na, ca) (nb, cb) (nc, cc) =
    {
      dtype = Dtype.Struct [ na, ca.dtype; nb, cb.dtype; nc, cc.dtype ];
      enc = (fun (a, b, c) -> Value.Rec [ na, ca.enc a; nb, cb.enc b; nc, cc.enc c ]);
      dec =
        (fun v -> ca.dec (Value.field v na), cb.dec (Value.field v nb), cc.dec (Value.field v nc));
    }

  let struct4 (na, ca) (nb, cb) (nc, cc) (nd, cd) =
    {
      dtype = Dtype.Struct [ na, ca.dtype; nb, cb.dtype; nc, cc.dtype; nd, cd.dtype ];
      enc =
        (fun (a, b, c, d) ->
          Value.Rec [ na, ca.enc a; nb, cb.enc b; nc, cc.enc c; nd, cd.enc d ]);
      dec =
        (fun v ->
          ( ca.dec (Value.field v na),
            cb.dec (Value.field v nb),
            cc.dec (Value.field v nc),
            cd.dec (Value.field v nd) ));
    }
end

let read codec r = codec.Codec.dec (get r)

let write codec w v = put w (codec.Codec.enc v)

let check_dtype ~expected ~actual ~what =
  if not (Dtype.equal expected actual) then
    invalid_arg
      (Printf.sprintf "cgsim: dtype mismatch on %s: expected %s, got %s" what
         (Dtype.to_string expected) (Dtype.to_string actual))

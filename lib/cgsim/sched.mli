(** Cooperative task scheduler.

    The OCaml analogue of cgsim's C++20-coroutine runtime (Sections 3.6 and
    3.8): every kernel, data source and data sink runs as a user-mode fiber
    on a single OS thread, implemented with OCaml 5 effect handlers.
    Suspension points correspond exactly to the paper's [co_await]ed stream
    operations — a fiber parks when a queue operation cannot proceed and is
    woken by the peer endpoint.

    Execution proceeds as in the paper: all fibers are created suspended
    and registered as pending tasks; the scheduling loop then invokes
    runnable tasks until no fiber can continue (there is no explicit
    termination condition, cf. the paper's footnote 2).  Remaining parked
    fibers are then cancelled with {!Terminated} so their cleanup runs, and
    the run returns statistics.

    The scheduler also keeps the kernel-time vs. scheduling-time accounting
    used to reproduce the paper's Section 5.2 perf profile (99.94 % of
    cgsim's bitonic runtime is kernel execution). *)

type t

(** Handle used to resume one specific park of one specific fiber.  Waking
    is idempotent and ignores stale wakers from earlier parks. *)
type waker

(** Raised inside a fiber when the scheduler cancels it at end of run. *)
exception Terminated

(** Raised by blocking operations on a closed, drained stream; kernels
    written as infinite loops terminate cleanly through it. *)
exception End_of_stream

(** Why a run was stopped before quiescence. *)
type stop_reason =
  | Cancel_requested  (** {!cancel} was called. *)
  | Deadline  (** The wall-clock budget of {!run} expired. *)
  | Out_of_fuel  (** The slice budget of {!run} was exhausted. *)

(** Progress snapshot taken the instant the stop was detected, before any
    fiber was torn down — the post-mortem for stuck or divergent graphs. *)
type stop = {
  reason : stop_reason;
  parked : string list;  (** Fibers parked at stop time, in spawn order. *)
  last_task : string option;  (** The last fiber that executed a slice. *)
  stop_slices : int;  (** Slices executed when the stop fired. *)
}

val stop_reason_to_string : stop_reason -> string

type stats = {
  spawned : int;  (** Fibers registered. *)
  completed : int;  (** Fibers that returned or ended via {!End_of_stream}. *)
  cancelled : int;  (** Fibers parked at stall time, ended via {!Terminated}. *)
  failed : (string * exn) list;  (** Fibers that raised any other exception. *)
  slices : int;  (** Resume-to-suspend execution slices. *)
  kernel_ns : float;  (** Wall time spent inside fiber code. *)
  total_ns : float;  (** Wall time of the whole run. *)
  stopped : stop option;
      (** [Some _] when the run ended via cancellation, deadline or fuel
          exhaustion rather than quiescence. *)
}

(** Fraction of run time spent inside fibers, [kernel_ns /. total_ns]. *)
val kernel_fraction : stats -> float

val pp_stats : Format.formatter -> stats -> unit

val create : unit -> t

(** [spawn t ~name fn] registers a fiber in the suspended state.  Allowed
    both before {!run} and from inside a running fiber.  [prof_key]
    overrides the per-kernel profiler key (default
    [Obs.Profile.prefix ^ name]); warm runtimes pass a precomputed key so
    respawning a fiber never allocates the string again. *)
val spawn : ?prof_key:string -> t -> name:string -> (unit -> unit) -> unit

(** Restore the scheduler to its freshly-{!create}d state: empties the
    task set and ready queue and zeroes all counters and the stop token.
    Every prior {!run} drives fibers to quiescence (or terminates them),
    so no live continuation is dropped.  Raises [Invalid_argument] if
    called from inside {!run}. *)
val reset : t -> unit

(** Run until no fiber can continue.  Not reentrant.

    [deadline_ns] bounds the run's wall-clock time (relative to its
    start) and [max_steps] bounds the number of execution slices — the
    fuel budget.  Both are checked between every two slices, i.e. at
    every park/wake boundary of the cooperative schedule.  When either
    trips (or {!cancel} was called), the scheduler snapshots progress
    into [stats.stopped], then terminates every remaining fiber with
    {!Terminated} so cleanup code runs.  Once the stop token is set,
    {!park} and {!yield} raise {!Terminated} instead of suspending, so
    teardown cannot wedge; only a fiber that never reaches a suspension
    point can outlive its budget. *)
val run : ?deadline_ns:float -> ?max_steps:int -> t -> stats

(** Cooperatively request cancellation: sets the stop token checked at
    every park/wake boundary.  Callable from inside a fiber (the caller
    itself is terminated at its next suspension point) or from the host
    before {!run}.  Idempotent; the first stop reason wins. *)
val cancel : t -> unit

(** Whether the stop token is set (any reason). *)
val cancel_requested : t -> bool

(** Number of fibers currently parked (diagnostic). *)
val parked_count : t -> int

(** Names of currently parked fibers (diagnostic, deterministic order). *)
val parked_names : t -> string list

(** {1 Operations available inside a fiber} *)

(** Reschedule the calling fiber at the back of the ready queue. *)
val yield : unit -> unit

(** [park register] suspends the calling fiber after handing a fresh
    {!waker} to [register] (which typically stores it in a queue's waiter
    list).  The fiber resumes when the waker is {!wake}d. *)
val park : (waker -> unit) -> unit

(** Wake a parked fiber.  Safe to call on stale or duplicate wakers. *)
val wake : waker -> unit

(** [wake_batch ws] wakes every valid waker in [ws] in one pass with a
    single metrics update — the queue layer uses it to make wake cost
    proportional to the number of waiters actually resumed rather than
    re-entering per-waker bookkeeping.  Stale wakers are skipped. *)
val wake_batch : waker list -> unit

(** Name of the currently running fiber, for diagnostics. *)
val current_name : unit -> string

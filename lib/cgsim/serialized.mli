(** Flattened, array-based compute-graph representation.

    The analogue of the constexpr-storable structure of Section 3.5: graph
    construction produces pointer-rich builder state, which is flattened
    into index-based arrays so it can cross the construction/execution
    boundary.  Everything here is plain data — kernels are referenced by
    registry key (Section 3.5's "references to template functions") — so
    the same structure is produced by the OCaml builder and by the CGC
    const-evaluator, consumed by the runtime deserializer, by both
    simulators, and by the graph extractor (Section 4.2). *)

type endpoint = {
  kernel_idx : int;  (** Index into {!t.kernels}. *)
  port_idx : int;  (** Index into that kernel's port array. *)
}

type net = {
  net_id : int;
  dtype : Dtype.t;
  settings : Settings.t;  (** Fully merged over all endpoints. *)
  attrs : Attr.t list;
  writers : endpoint list;  (** Multiple writers = implicit stream merge. *)
  readers : endpoint list;  (** Multiple readers = implicit broadcast. *)
  global_input : string option;  (** Externally fed (name of graph input). *)
  global_output : string option;  (** Externally drained (name of graph output). *)
  src : Srcspan.t option;
      (** Source construct that created the connector (CGC graphs only;
          builder graphs leave it unset unless the caller provides one). *)
}

type kernel_inst = {
  inst_name : string;  (** Unique instance name within the graph. *)
  key : string;  (** Registry key of the kernel definition. *)
  realm : Kernel.realm;
  ports : Kernel.port_spec array;  (** Snapshot of the definition's ports. *)
  port_nets : int array;  (** Net id bound to each port, positionally. *)
  src : Srcspan.t option;  (** Invocation site in CGC source, when known. *)
}

type t = {
  gname : string;
  kernels : kernel_inst array;
  nets : net array;
  input_order : int array;  (** Net ids of global inputs, in argument order. *)
  output_order : int array;  (** Net ids of global outputs, in return order. *)
}

val net : t -> int -> net
val kernel : t -> int -> kernel_inst

val inputs : t -> net list
val outputs : t -> net list

(** Human-facing name of a net: its global input/output name when it has
    one, otherwise "net<id> (writer.port -> reader.port)" built from the
    kernel ports on it — diagnostics should never show a bare index. *)
val net_display : t -> int -> string

(** "inst.port" spelling of an endpoint. *)
val endpoint_display : t -> endpoint -> string

(** Best-effort source span for a net: the net's own [src] when present,
    else the span of the first endpoint kernel that has one. *)
val net_src : t -> int -> Srcspan.t option

(** Structural validation: indices in range, endpoint port directions
    consistent with writer/reader roles, dtypes of endpoints equal to the
    net dtype, merged settings valid, input/output order arrays consistent
    with net flags.  Returns all problems found, as structured
    diagnostics (codes CG-E001..CG-E006) naming kernel instances and
    nets rather than bare indices, with source spans when the graph
    carries them. *)
val validate_diags : t -> Diagnostic.t list

(** Topological equality: same kernels (by key, realm, ports), same nets
    (by dtype, settings, endpoints, attrs, global roles) and same I/O
    order, ignoring net ids' numeric values beyond their structural role
    and ignoring instance-name spelling.  Used to property-test that
    builder graphs and CGC-consteval graphs agree. *)
val equal_topology : t -> t -> bool

(** [with_net_depths t [(net_id, depth); ...]] returns a copy of [t]
    whose listed nets carry an explicit queue [depth] in their settings
    (see {!Settings.with_depth}); other nets, and entries with unknown
    ids or non-positive depths, are untouched.  Used to apply (or, in
    tests, deliberately under-apply) the capacities synthesized by the
    static analyzer without rebuilding the graph. *)
val with_net_depths : t -> (int * int) list -> t

val pp : Format.formatter -> t -> unit

(** Total element-size-weighted fan of the graph — diagnostic metric used
    by benches to sanity-check workload sizes. *)
val stats : t -> string

(** Global graph I/O: data sources and sinks (Section 3.7).

    Sources and sinks are specifications that the runtime turns into
    dedicated fibers attached to the graph's external nets after
    instantiation — exactly the paper's "specialized kernel coroutines"
    that stream standard containers into and out of the graph.  Runtime
    parameters are single-value sources/sinks. *)

type source

type sink

(** {1 Sources} *)

(** Stream every element of the list, then close the net. *)
val of_list : Value.t list -> source

val of_array : Value.t array -> source

(** Stream the whole array as F32 elements. *)
val of_f32_array : float array -> source

(** Stream the whole array as integer elements of the given dtype. *)
val of_int_array : Dtype.t -> int array -> source

(** [repeat n src_list] streams the list [n] times (the paper repeats test
    vectors to extend simulation time, Section 5.2). *)
val repeat : int -> Value.t list -> source

(** Pull-based source: called until it returns [None]. *)
val of_fun : (unit -> Value.t option) -> source

(** [concat srcs] streams each source to exhaustion in order — the batching
    path uses it to pump several requests' inputs through one warm run.
    Length is the sum when every part's length is known.  Raises
    [Invalid_argument] on the empty list. *)
val concat : source list -> source

(** Runtime-parameter source: writes one scalar, then closes. *)
val rtp : Value.t -> source

val source_name : source -> string
val with_source_name : string -> source -> source

(** {1 Sinks} *)

(** Collect everything into a buffer; read it after the run. *)
val buffer : unit -> sink * (unit -> Value.t list)

(** Collect into a float array view (F32/F64 nets). *)
val f32_buffer : unit -> sink * (unit -> float array)

val int_buffer : unit -> sink * (unit -> int array)

(** Count elements, discarding them. *)
val counter : unit -> sink * (unit -> int)

(** Runtime-parameter sink: captures the last scalar written (the paper's
    RTP sinks pass variables back to the host). *)
val rtp_sink : unit -> sink * (unit -> Value.t option)

(** Discard everything. *)
val null : unit -> sink

(** Push-based sink. *)
val of_consumer : (Value.t -> unit) -> sink

val sink_name : sink -> string
val with_sink_name : string -> sink -> sink

(** {1 Runtime wiring (used by {!Runtime} and the simulators)} *)

(** [source_pull s] returns a fresh pull function for one run of [s].
    Sources are restartable: each call restarts from the beginning. *)
val source_pull : source -> unit -> Value.t option

(** [source_pull_block s] returns a fresh block-pull function: [pull n]
    yields at most [n] elements, [[||]] once exhausted.  Array-backed
    sources serve [Array.sub] slices (one copy per chunk); others fall
    back to an element loop.  Independent iterator from {!source_pull} —
    a run drives one or the other, never both. *)
val source_pull_block : source -> int -> Value.t array

(** Unboxed block pulls, same contract as {!source_pull_block} with flat
    float/int payloads.  Sources with native float/int backing
    ({!of_f32_array}, {!of_int_array}, and {!concat} over them) serve
    [Array.sub] slices with no boxing; others unbox a boxed block at the
    boundary.  The runtime drives these on unboxed scalar nets so source
    data goes straight into bigarray queue storage. *)
val source_pull_floats : source -> int -> float array

val source_pull_ints : source -> int -> int array

(** Elements the source will produce, when statically known. *)
val source_length : source -> int option

val sink_push : sink -> Value.t -> unit

(** Push a whole block; equivalent to pushing each element in order. *)
val sink_push_block : sink -> Value.t array -> unit

(** Unboxed block pushes; equivalent to boxing each element and pushing.
    {!f32_buffer}, {!int_buffer}, {!counter} and {!null} accept them
    without boxing. *)
val sink_push_floats : sink -> float array -> unit

val sink_push_ints : sink -> int array -> unit

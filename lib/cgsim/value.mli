(** Dynamically-typed stream element values.

    The simulator core is monomorphic over {!t}: every queue carries tagged
    values that are checked against the net's {!Dtype.t} when written.  A
    typed facade ({!Codec}) lets kernel code work with ordinary OCaml
    values; the dynamic core is what makes the flattened serialized graph
    form ({!Serialized}) self-contained, mirroring the paper's
    compile-time-to-runtime data transfer. *)

type t =
  | Float of float  (** F32/F64 payloads. *)
  | Int of int  (** All integer dtypes; range-checked against the dtype. *)
  | Vec of t array
  | Rec of (string * t) list

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [conforms dtype v] is [true] when [v] is a valid element of [dtype]
    (correct shape and integer ranges; floats are accepted for both F32 and
    F64, with F32 values expected to already be single-precision rounded). *)
val conforms : Dtype.t -> t -> bool

(** [check ~net dtype v] raises [Invalid_argument] with a descriptive
    message naming [net] when [v] does not conform to [dtype]. *)
val check : net:string -> Dtype.t -> t -> unit

(** [compile_check dtype] specializes {!conforms} for one dtype: the dtype
    tree is interpreted once and the returned closure performs only the
    per-value tests.  [compile_check d v = conforms d v] for every [v];
    queues compile a validator at creation so hot-path writes avoid
    re-walking the dtype. *)
val compile_check : Dtype.t -> t -> bool

(** Canonical zero element of a dtype (0 / 0.0 / zero-filled aggregates). *)
val zero : Dtype.t -> t

(** Accessors raising [Invalid_argument] on shape mismatch. *)

val to_float : t -> float
val to_int : t -> int
val to_vec : t -> t array
val field : t -> string -> t

(** Representable range of a bounded integer dtype; [None] for [I64]
    (treated as unbounded native int), floats and aggregates. *)
val int_range : Dtype.t -> (int * int) option

(** Saturating / wrapping integer helpers used by fixed-point kernels. *)

val clamp_int : Dtype.t -> int -> int
(** Saturate an int to the representable range of an integer dtype. *)

val wrap_int : Dtype.t -> int -> int
(** Wrap (two's complement) an int into the range of an integer dtype. *)

(** Round a float to single precision (F32 storage semantics).
    Exposed as an unboxed external so per-element rounding on unboxed
    stores stays allocation-free across module boundaries. *)
external round_f32 : float -> float = "cgsim_round_f32_byte" "cgsim_round_f32"
  [@@unboxed] [@@noalloc]

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type wrap_hooks = {
  wrap_reader : Serialized.kernel_inst -> int -> Port.reader -> Port.reader;
  wrap_writer : Serialized.kernel_inst -> int -> Port.writer -> Port.writer;
  around_body : Serialized.kernel_inst -> (unit -> unit) -> unit -> unit;
}

let no_hooks =
  {
    wrap_reader = (fun _ _ r -> r);
    wrap_writer = (fun _ _ w -> w);
    around_body = (fun _ body () -> body ());
  }

let compose_hooks outer inner =
  {
    wrap_reader = (fun inst idx r -> outer.wrap_reader inst idx (inner.wrap_reader inst idx r));
    wrap_writer = (fun inst idx w -> outer.wrap_writer inst idx (inner.wrap_writer inst idx w));
    around_body = (fun inst body -> outer.around_body inst (inner.around_body inst body));
  }

(* Observability instrumentation, expressed as ordinary wrap_hooks: per
   port element counters and kernel body lifecycle instants.  Installed
   automatically by [instantiate] when a trace session is active, inside
   any caller-supplied hooks (so e.g. aiesim's capture wrappers see the
   same values they always did). *)
let obs_hooks () =
  {
    wrap_reader =
      (fun _inst _idx r ->
        let key = "port.get:" ^ r.Port.r_name in
        {
          r with
          Port.r_get =
            (fun () ->
              let v = r.Port.r_get () in
              Obs.Trace.incr_metric key;
              v);
          Port.r_get_block =
            (fun n ->
              let vs = r.Port.r_get_block n in
              (* One metric update per block, same totals as per-element. *)
              Obs.Trace.add_metric key (float_of_int (Array.length vs));
              vs);
        });
    wrap_writer =
      (fun _inst _idx w ->
        let key = "port.put:" ^ w.Port.w_name in
        {
          w with
          Port.w_put =
            (fun v ->
              w.Port.w_put v;
              Obs.Trace.incr_metric key);
          Port.w_put_block =
            (fun vs ->
              w.Port.w_put_block vs;
              Obs.Trace.add_metric key (float_of_int (Array.length vs)));
        });
    around_body =
      (fun inst body () ->
        let track = inst.Serialized.inst_name in
        Obs.Trace.instant ~track ~cat:"kernel" "body-start";
        match body () with
        | () -> Obs.Trace.instant ~track ~cat:"kernel" "body-end"
        | exception Sched.End_of_stream ->
          Obs.Trace.instant ~track ~cat:"kernel" "body-end";
          raise Sched.End_of_stream
        | exception e ->
          Obs.Trace.instant ~track ~cat:"kernel" "body-raise";
          raise e);
  }

type lint_level =
  [ `Off
  | `Warn
  | `Error
  ]

(* The static analyzer (lib/analysis) installs itself here at module-init
   time; cgsim itself cannot depend on it without a cycle.  When no hook
   is installed, pre-flight linting quietly does nothing. *)
let lint_hook : (Serialized.t -> Diagnostic.t list) option ref = ref None

let set_lint_hook f = lint_hook := Some f

let preflight ~lint (g : Serialized.t) =
  match lint, !lint_hook with
  | `Off, _ | _, None -> ()
  | (`Warn | `Error), Some hook ->
    let diags =
      List.filter
        (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
        (hook g)
    in
    if diags <> [] then begin
      match lint, Diagnostic.max_severity diags with
      | `Error, Some Diagnostic.Error ->
        fail "graph %s failed pre-flight lint:\n%s" g.Serialized.gname
          (String.concat "\n" (List.map Diagnostic.render diags))
      | _ ->
        List.iter (fun d -> prerr_endline (Diagnostic.render d)) diags
    end

type t = {
  graph : Serialized.t;
  sched : Sched.t;
  queues : Bqueue.t array;  (* indexed by net id *)
  block_io : bool;
  spsc : bool;
  mutable ran : bool;
}

let graph t = t.graph

let net_traffic t = Array.map Bqueue.total_put t.queues

(* I/O fibers move data in chunks of this many elements at most; bounded
   by the queue capacity so a chunk is at most one full ring. *)
let io_chunk q = max 1 (min (Bqueue.capacity q) 1024)

let instantiate ?(hooks = no_hooks) ?queue_capacity ?(block_io = true) ?(spsc = true)
    (g : Serialized.t) =
  let hooks = if !Obs.Trace.on then compose_hooks hooks (obs_hooks ()) else hooks in
  (match Serialized.validate g with
   | Ok () -> ()
   | Error problems ->
     fail "cannot instantiate %s: %s" g.Serialized.gname (String.concat "; " problems));
  let sched = Sched.create () in
  let queues =
    Array.map
      (fun (n : Serialized.net) ->
        let elem_bytes = Dtype.size_bytes n.dtype in
        let capacity =
          match queue_capacity with
          | Some c -> c
          | None -> Settings.resolved_depth ~elem_bytes n.settings
        in
        Bqueue.create
          ~name:(Printf.sprintf "%s/net%d" g.Serialized.gname n.net_id)
          ~dtype:n.dtype ~capacity ())
      g.Serialized.nets
  in
  let t = { graph = g; sched; queues; block_io; spsc; ran = false } in
  (* Wire every kernel instance.  Endpoint registration happens here, up
     front, so broadcast completeness holds from the first element. *)
  Array.iteri
    (fun _idx (inst : Serialized.kernel_inst) ->
      let kernel =
        match Registry.find inst.key with
        | Some k -> k
        | None -> fail "graph %s references unregistered kernel %s" g.Serialized.gname inst.key
      in
      let readers = ref [] in
      let writers = ref [] in
      let writer_producers = ref [] in
      Array.iteri
        (fun port_idx (spec : Kernel.port_spec) ->
          let q = queues.(inst.port_nets.(port_idx)) in
          Port.check_dtype ~expected:spec.Kernel.dtype ~actual:(Bqueue.dtype q)
            ~what:(Printf.sprintf "%s.%s" inst.inst_name spec.Kernel.pname);
          match spec.Kernel.dir with
          | Kernel.In ->
            let c = Bqueue.add_consumer q in
            let r =
              {
                Port.r_name = Printf.sprintf "%s.%s" inst.inst_name spec.Kernel.pname;
                r_dtype = spec.Kernel.dtype;
                r_get = (fun () -> Bqueue.get c);
                r_peek = (fun () -> Bqueue.peek c);
                r_available = (fun () -> Bqueue.available c);
                r_get_block =
                  (if block_io then fun n -> Bqueue.get_block c n
                   else Port.block_get_of_get (fun () -> Bqueue.get c));
              }
            in
            readers := hooks.wrap_reader inst port_idx r :: !readers
          | Kernel.Out ->
            let p = Bqueue.add_producer q in
            writer_producers := p :: !writer_producers;
            let w =
              {
                Port.w_name = Printf.sprintf "%s.%s" inst.inst_name spec.Kernel.pname;
                w_dtype = spec.Kernel.dtype;
                w_put = (fun v -> Bqueue.put p v);
                w_put_block =
                  (if block_io then Bqueue.put_block p
                   else Port.block_put_of_put (fun v -> Bqueue.put p v));
                w_space = (fun () -> Bqueue.space q);
              }
            in
            writers := hooks.wrap_writer inst port_idx w :: !writers)
        inst.ports;
      let binding =
        {
          Kernel.readers = Array.of_list (List.rev !readers);
          writers = Array.of_list (List.rev !writers);
        }
      in
      let producers = !writer_producers in
      let body () =
        (* When a kernel terminates (normally or via End_of_stream), its
           output nets lose one producer; fully-drained nets close and the
           closure propagates downstream. *)
        Fun.protect
          ~finally:(fun () -> List.iter Bqueue.producer_done producers)
          (hooks.around_body inst (fun () -> kernel.Kernel.body binding))
      in
      Sched.spawn sched ~name:inst.inst_name body)
    g.Serialized.kernels;
  t

let attach_source t net_id source =
  let q = t.queues.(net_id) in
  let p = Bqueue.add_producer q in
  let body =
    if t.block_io then begin
      let pull_block = Io.source_pull_block source in
      let chunk = io_chunk q in
      fun () ->
        let rec loop () =
          let vs = pull_block chunk in
          if Array.length vs > 0 then begin
            Bqueue.put_block p vs;
            loop ()
          end
        in
        loop ()
    end
    else begin
      let pull = Io.source_pull source in
      fun () ->
        let rec loop () =
          match pull () with
          | Some v ->
            Bqueue.put p v;
            loop ()
          | None -> ()
        in
        loop ()
    end
  in
  Sched.spawn t.sched ~name:(Io.source_name source) (fun () ->
      Fun.protect ~finally:(fun () -> Bqueue.producer_done p) body)

let attach_sink t net_id sink =
  let q = t.queues.(net_id) in
  let c = Bqueue.add_consumer q in
  let body =
    if t.block_io then begin
      let chunk = io_chunk q in
      fun () ->
        let rec loop () =
          let vs = Bqueue.get_some c ~max:chunk in
          Io.sink_push_block sink vs;
          loop ()
        in
        loop ()
    end
    else fun () ->
      let rec loop () =
        let v = Bqueue.get c in
        Io.sink_push sink v;
        loop ()
      in
      loop ()
  in
  Sched.spawn t.sched ~name:(Io.sink_name sink) body

(* Every net must end wiring with at least one producer and one consumer
   on its queue: a producer-less queue never closes (its readers would
   hang until end-of-run cancellation), and a consumer-less queue retires
   nothing (its writers fill it and hang).  Both used to fail silently at
   run time; now they fail up front, naming the kernel ports on the net. *)
let check_wiring t =
  let describe_eps eps =
    match eps with
    | [] -> "no kernel ports"
    | _ ->
      String.concat ", "
        (List.map
           (fun (ep : Serialized.endpoint) ->
             let ki = t.graph.Serialized.kernels.(ep.kernel_idx) in
             Printf.sprintf "%s.%s" ki.inst_name ki.ports.(ep.port_idx).Kernel.pname)
           eps)
  in
  Array.iteri
    (fun id q ->
      let (n : Serialized.net) = t.graph.Serialized.nets.(id) in
      if Bqueue.producers q = 0 then
        fail "graph %s: net %s has no producer — readers %s would hang (missing source?)"
          t.graph.gname (Bqueue.name q) (describe_eps n.readers);
      if Bqueue.consumers q = 0 then
        fail "graph %s: net %s has no consumer — writers %s would hang (missing sink?)"
          t.graph.gname (Bqueue.name q) (describe_eps n.writers))
    t.queues

let run ?(lint = `Warn) t ~sources ~sinks =
  if t.ran then fail "runtime context for %s is single-shot; instantiate again" t.graph.gname;
  (* Pre-flight static analysis happens before any fiber is scheduled:
     at [`Error] a failing graph is refused before a single kernel body
     executes. *)
  preflight ~lint t.graph;
  t.ran <- true;
  let n_in = Array.length t.graph.Serialized.input_order in
  let n_out = Array.length t.graph.Serialized.output_order in
  if List.length sources <> n_in then
    fail "graph %s has %d global inputs but %d sources were supplied" t.graph.gname n_in
      (List.length sources);
  if List.length sinks <> n_out then
    fail "graph %s has %d global outputs but %d sinks were supplied" t.graph.gname n_out
      (List.length sinks);
  List.iteri (fun i src -> attach_source t t.graph.Serialized.input_order.(i) src) sources;
  List.iteri (fun i snk -> attach_sink t t.graph.Serialized.output_order.(i) snk) sinks;
  (* Wiring is complete: verify every edge, then seal the queues so
     1-producer/1-consumer edges take the SPSC fast path. *)
  check_wiring t;
  Array.iter (fun q -> Bqueue.seal ~spsc:t.spsc q) t.queues;
  let stats = Sched.run t.sched in
  (match stats.Sched.failed with
   | [] -> ()
   | (name, exn) :: _ ->
     fail "kernel fiber %s failed: %s" name (Printexc.to_string exn));
  stats

let execute ?hooks ?queue_capacity ?block_io ?spsc ?lint g ~sources ~sinks =
  let t = instantiate ?hooks ?queue_capacity ?block_io ?spsc g in
  run ?lint t ~sources ~sinks

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* Hooks are defined in their own module (dependency-cycle avoidance);
   re-exported here under the historical names. *)
type wrap_hooks = Hooks.t = {
  wrap_reader : Serialized.kernel_inst -> int -> Port.reader -> Port.reader;
  wrap_writer : Serialized.kernel_inst -> int -> Port.writer -> Port.writer;
  around_body : Serialized.kernel_inst -> (unit -> unit) -> unit -> unit;
}

let no_hooks = Hooks.none

let compose_hooks = Hooks.compose

(* Observability instrumentation, expressed as ordinary wrap_hooks: per
   port element counters and kernel body lifecycle instants.  Installed
   automatically by [instantiate] when a trace session is active, inside
   any caller-supplied hooks (so e.g. aiesim's capture wrappers see the
   same values they always did). *)
let obs_hooks () =
  {
    wrap_reader =
      (fun _inst _idx r ->
        let key = "port.get:" ^ r.Port.r_name in
        {
          r with
          Port.r_get =
            (fun () ->
              let v = r.Port.r_get () in
              Obs.Trace.incr_metric key;
              v);
          Port.r_get_block =
            (fun n ->
              let vs = r.Port.r_get_block n in
              (* One metric update per block, same totals as per-element. *)
              Obs.Trace.add_metric key (float_of_int (Array.length vs));
              vs);
          Port.r_get_floats =
            (fun n ->
              let fs = r.Port.r_get_floats n in
              Obs.Trace.add_metric key (float_of_int (Array.length fs));
              fs);
          Port.r_get_ints =
            (fun n ->
              let is = r.Port.r_get_ints n in
              Obs.Trace.add_metric key (float_of_int (Array.length is));
              is);
        });
    wrap_writer =
      (fun _inst _idx w ->
        let key = "port.put:" ^ w.Port.w_name in
        {
          w with
          Port.w_put =
            (fun v ->
              w.Port.w_put v;
              Obs.Trace.incr_metric key);
          Port.w_put_block =
            (fun vs ->
              w.Port.w_put_block vs;
              Obs.Trace.add_metric key (float_of_int (Array.length vs)));
          Port.w_put_floats =
            (fun fs ->
              w.Port.w_put_floats fs;
              Obs.Trace.add_metric key (float_of_int (Array.length fs)));
          Port.w_put_ints =
            (fun is ->
              w.Port.w_put_ints is;
              Obs.Trace.add_metric key (float_of_int (Array.length is)));
        });
    around_body =
      (fun inst body () ->
        let track = inst.Serialized.inst_name in
        Obs.Trace.instant ~track ~cat:"kernel" "body-start";
        match body () with
        | () -> Obs.Trace.instant ~track ~cat:"kernel" "body-end"
        | exception Sched.End_of_stream ->
          Obs.Trace.instant ~track ~cat:"kernel" "body-end";
          raise Sched.End_of_stream
        | exception e ->
          Obs.Trace.instant ~track ~cat:"kernel" "body-raise";
          raise e);
  }

type lint_level = Run_config.lint_level

(* The static analyzer (lib/analysis) installs itself here at module-init
   time; cgsim itself cannot depend on it without a cycle.  When no hook
   is installed, pre-flight linting quietly does nothing. *)
let lint_hook : (Serialized.t -> Diagnostic.t list) option ref = ref None

let set_lint_hook f = lint_hook := Some f

let preflight ~lint (g : Serialized.t) =
  match lint, !lint_hook with
  | `Off, _ | _, None -> ()
  | (`Warn | `Error), Some hook ->
    let diags =
      List.filter
        (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
        (hook g)
    in
    if diags <> [] then begin
      match lint, Diagnostic.max_severity diags with
      | `Error, Some Diagnostic.Error ->
        fail "graph %s failed pre-flight lint:\n%s" g.Serialized.gname
          (String.concat "\n" (List.map Diagnostic.render diags))
      | _ ->
        List.iter (fun d -> prerr_endline (Diagnostic.render d)) diags
    end

(* The fusion analysis (lib/analysis) installs itself here at module-init
   time, like the linter.  It proposes chains of kernel indices
   (upstream first) whose members are rate-matched and connected by
   exclusive SPSC nets; [compile] collapses each accepted chain into one
   fiber with direct hand-off edges ({!Fused}) instead of queues.  With
   no hook installed, or [Run_config.fuse] off, nothing fuses. *)
let fusion_hook : (Serialized.t -> int list list) option ref = ref None

let set_fusion_hook f = fusion_hook := Some f

(* Re-validate proposed chains against the structural facts the
   single-fiber pump protocol needs; a chain that fails any check is
   dropped (transparent fallback to normal queued execution), never an
   error.  Returns the accepted chains as (member kernel indices,
   interior net ids) plus the per-net fused flags. *)
let resolve_chains ~(config : Run_config.t) (g : Serialized.t) =
  let n_nets = Array.length g.Serialized.nets in
  match (if config.Run_config.fuse then !fusion_hook else None) with
  | None -> [||], Array.make n_nets false
  | Some hook ->
    let n_kernels = Array.length g.Serialized.kernels in
    let proposed = try hook g with _ -> [] in
    let claimed = Array.make n_kernels false in
    let fused = Array.make n_nets false in
    let dir_nets dir k =
      let inst = g.Serialized.kernels.(k) in
      let acc = ref [] in
      Array.iteri
        (fun pi (spec : Kernel.port_spec) ->
          if spec.Kernel.dir = dir then acc := inst.Serialized.port_nets.(pi) :: !acc)
        inst.Serialized.ports;
      !acc
    in
    (* The unique exclusive non-global net written by [a] and read by
       [b], if there is exactly one. *)
    let pair_net a b =
      let hits = ref [] in
      Array.iteri
        (fun id (n : Serialized.net) ->
          if n.Serialized.global_input = None && n.Serialized.global_output = None
             && (match n.Serialized.writers with
                 | [ w ] -> w.Serialized.kernel_idx = a
                 | _ -> false)
             && (match n.Serialized.readers with
                 | [ r ] -> r.Serialized.kernel_idx = b
                 | _ -> false)
          then hits := id :: !hits)
        g.Serialized.nets;
      match !hits with [ id ] -> Some id | _ -> None
    in
    let accepted = ref [] in
    List.iter
      (fun chain ->
        let members = Array.of_list chain in
        let m = Array.length members in
        let distinct =
          m >= 2
          && Array.for_all (fun k -> k >= 0 && k < n_kernels && not claimed.(k)) members
          &&
          let seen = Hashtbl.create m in
          Array.for_all
            (fun k ->
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.add seen k ();
                true
              end)
            members
        in
        if distinct then begin
          let edges = Array.init (m - 1) (fun i -> pair_net members.(i) members.(i + 1)) in
          let connected = Array.for_all Option.is_some edges in
          if connected then begin
            let edges = Array.map Option.get edges in
            (* Shape the pump protocol supports: every non-tail member's
               sole output is its chain edge (its body is the downstream
               edge's pump), every non-head member's sole input is the
               edge from its predecessor.  Head inputs and tail outputs
               stay real. *)
            let shape_ok = ref true in
            for i = 0 to m - 2 do
              if dir_nets Kernel.Out members.(i) <> [ edges.(i) ] then shape_ok := false
            done;
            for i = 1 to m - 1 do
              if dir_nets Kernel.In members.(i) <> [ edges.(i - 1) ] then shape_ok := false
            done;
            if !shape_ok then begin
              Array.iter (fun k -> claimed.(k) <- true) members;
              Array.iter (fun id -> fused.(id) <- true) edges;
              accepted := (members, edges) :: !accepted
            end
          end
        end)
      proposed;
    Array.of_list (List.rev !accepted), fused

(* The capacity-synthesis analysis (lib/analysis) installs itself here
   at module-init time, like the linter and the fusion pass.  It maps a
   graph to (net id, minimal deadlock-free depth) suggestions;
   [resolve_graph] raises the corresponding queue capacities when
   [Run_config.auto_capacity] is on.  Depths are only ever raised — a
   suggestion below the resolved depth is ignored — so the synthesis
   can never shrink a queue the user sized deliberately. *)
let capacity_hook : (Serialized.t -> (int * int) list) option ref = ref None

let set_capacity_hook f = capacity_hook := Some f

(* ------------------------------------------------------------------ *)
(* Structured outcomes                                                 *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_graph : string;
  f_kernel : string;
  f_exn : exn;
  f_backtrace : string;  (* may be empty when backtrace recording is off *)
  f_src : Srcspan.t option;
  f_flight : Obs.Flight.entry list;
      (* flight-recorder window from the failing domain, oldest first;
         captured whether or not tracing was on *)
}

type progress = {
  p_graph : string;
  p_reason : [ `Wall_clock | `Max_steps ];
  p_parked : string list;
  p_occupancy : (string * int) list;  (* net name, unretired elements *)
  p_last_kernel : string option;
  p_stats : Sched.stats;
  p_flight : Obs.Flight.entry list;  (* as f_flight *)
}

type outcome =
  | Completed of Sched.stats
  | Deadline_exceeded of progress
  | Cancelled
  | Kernel_failed of failure

let outcome_label = function
  | Completed _ -> "completed"
  | Deadline_exceeded p -> (match p.p_reason with `Wall_clock -> "deadline" | `Max_steps -> "max-steps")
  | Cancelled -> "cancelled"
  | Kernel_failed _ -> "failed"

let failure_message f =
  Format.asprintf "graph %s: kernel %s failed: %s%s%s" f.f_graph f.f_kernel
    (Printexc.to_string f.f_exn)
    (match f.f_src with
     | Some s -> Printf.sprintf " (%s)" (Srcspan.to_string s)
     | None -> "")
    (if f.f_backtrace = "" then ""
     else "\n" ^ f.f_backtrace)

let progress_message p =
  Format.asprintf "graph %s: %s after %d slices; parked: %s; last advanced: %s%s" p.p_graph
    (match p.p_reason with
     | `Wall_clock -> "wall-clock deadline exceeded"
     | `Max_steps -> "step budget exhausted")
    p.p_stats.Sched.slices
    (match p.p_parked with [] -> "<none>" | ps -> String.concat ", " ps)
    (Option.value p.p_last_kernel ~default:"<none>")
    (match List.filter (fun (_, occ) -> occ > 0) p.p_occupancy with
     | [] -> ""
     | occ ->
       "; occupancy: "
       ^ String.concat ", " (List.map (fun (n, o) -> Printf.sprintf "%s=%d" n o) occ))

let pp_outcome ppf = function
  | Completed stats -> Format.fprintf ppf "completed (%a)" Sched.pp_stats stats
  | Deadline_exceeded p -> Format.pp_print_string ppf (progress_message p)
  | Cancelled -> Format.pp_print_string ppf "cancelled"
  | Kernel_failed f -> Format.pp_print_string ppf (failure_message f)

(* ------------------------------------------------------------------ *)
(* Compiled graphs and warm instances                                  *)
(* ------------------------------------------------------------------ *)

(* The lifecycle is split in two (the paper's own separation of the
   static compute-graph description from its simulated execution):

   - [compiled]: everything derivable from the Serialized.t + Run_config
     pair alone — validation, registry resolution, per-net queue
     capacities, precomputed fiber profiler keys, graph purity and the
     pre-flight lint verdict.  Built once, shared freely.

   - [t] (an instance): the mutable per-request state — queues with their
     registered endpoints and sealed SPSC plan, the scheduler, failure
     slot and the I/O slots of the current run.  [reset] restores a used
     instance to pristine without reallocating any of it; [arm] (called
     by every [run]) re-applies the hook stack to the raw ports and
     respawns all fibers, so per-instantiation hook state (fault access
     counters, tracing) behaves exactly as a fresh build. *)

type compiled = {
  c_graph : Serialized.t;
  c_config : Run_config.t;
  c_kernels : Kernel.t array;  (* registry-resolved, indexed like kernels *)
  c_prof_keys : string array;  (* per kernel inst, for Sched.spawn *)
  c_capacities : int array;  (* per net id *)
  c_chains : (int array * int array) array;
      (* accepted fusion chains: member kernel indices (upstream first)
         and the net ids of the interior edges between them *)
  c_fused : bool array;  (* per net id: replaced by a Fused.edge *)
  c_pure : bool;  (* every kernel body declared Pure *)
  c_batchable : bool;  (* every kernel Pure AND stateless: concat-safe *)
  c_linted : bool;  (* pre-flight verdict already established *)
}

(* One kernel port wired to its queue endpoint.  Raw (unhooked) port
   records are built once per instance; [arm] wraps them per run. *)
type port_wire =
  | Wire_in of int * Port.reader  (* port index in inst.ports *)
  | Wire_out of int * Port.writer

type wired_kernel = {
  wk_inst : Serialized.kernel_inst;
  wk_kernel : Kernel.t;
  wk_prof_key : string;
  wk_wires : port_wire array;  (* in inst.ports order *)
  wk_producers : Bqueue.producer list;  (* closed when the fiber ends *)
}

(* One fused chain, instantiated: members index [t.kernels]; edge [i]
   hands off between members [i] and [i+1]. *)
type chain_rt = {
  ch_members : int array;
  ch_edges : Fused.edge array;
}

type t = {
  graph : Serialized.t;
  sched : Sched.t;
  queues : Bqueue.t array;  (* indexed by net id *)
  f_edges : Fused.edge option array;  (* indexed by net id; Some = fused *)
  chains : chain_rt array;
  member_chain : int array;  (* kernel idx -> chain idx, -1 = unfused *)
  config : Run_config.t;
  kernels : wired_kernel array;
  in_producers : Bqueue.producer array;  (* per input_order slot *)
  out_consumers : Bqueue.consumer array;  (* per output_order slot *)
  mutable cur_sources : Io.source array;  (* the current run's I/O *)
  mutable cur_sinks : Io.sink array;
  mutable ran : bool;
  mutable linted : bool;
  mutable failure : failure option;  (* first kernel failure, with context *)
}

let graph t = t.graph

let config t = t.config

let net_traffic t =
  Array.mapi
    (fun id q ->
      match t.f_edges.(id) with
      | Some e -> Fused.total_put e
      | None -> Bqueue.total_put q)
    t.queues

let cancel t = Sched.cancel t.sched

(* I/O fibers move data in chunks of this many elements at most; bounded
   by the queue capacity so a chunk is at most one full ring. *)
let io_chunk q = max 1 (min (Bqueue.capacity q) 1024)

let resolve_graph ~(config : Run_config.t) (g : Serialized.t) =
  (match Serialized.validate_diags g with
   | [] -> ()
   | diags ->
     fail "cannot instantiate %s: %s" g.Serialized.gname
       (String.concat "; " (List.map Diagnostic.render diags)));
  let kernels =
    Array.map
      (fun (inst : Serialized.kernel_inst) ->
        match Registry.find inst.key with
        | Some k -> k
        | None -> fail "graph %s references unregistered kernel %s" g.Serialized.gname inst.key)
      g.Serialized.kernels
  in
  let prof_keys =
    Array.map
      (fun (inst : Serialized.kernel_inst) -> Obs.Profile.prefix ^ inst.Serialized.inst_name)
      g.Serialized.kernels
  in
  let capacities =
    Array.map
      (fun (n : Serialized.net) ->
        match config.Run_config.queue_capacity with
        | Some c -> c
        | None -> Settings.resolved_depth ~elem_bytes:(Dtype.size_bytes n.dtype) n.settings)
      g.Serialized.nets
  in
  (match (if config.Run_config.auto_capacity then !capacity_hook else None) with
   | None -> ()
   | Some hook ->
     List.iter
       (fun (id, depth) ->
         if id >= 0 && id < Array.length capacities then
           capacities.(id) <- max capacities.(id) depth)
       (try hook g with _ -> []));
  let pure = Array.for_all (fun k -> k.Kernel.purity = Kernel.Pure) kernels in
  let batchable =
    pure && Array.for_all (fun k -> k.Kernel.stateless) kernels
  in
  kernels, prof_keys, capacities, pure, batchable

let compile_internal ~linted ~(config : Run_config.t) (g : Serialized.t) =
  let kernels, prof_keys, capacities, pure, batchable = resolve_graph ~config g in
  let chains, fused = resolve_chains ~config g in
  {
    c_graph = g;
    c_config = config;
    c_kernels = kernels;
    c_prof_keys = prof_keys;
    c_capacities = capacities;
    c_chains = chains;
    c_fused = fused;
    c_pure = pure;
    c_batchable = batchable;
    c_linted = linted;
  }

let compile ?(config = Run_config.default) (g : Serialized.t) =
  let c = compile_internal ~linted:true ~config g in
  (* The lint verdict is part of the compiled artifact: warm hits and
     retries reuse it instead of re-running the analyzer. *)
  preflight ~lint:config.Run_config.lint g;
  c

let compiled_graph c = c.c_graph

let compiled_config c = c.c_config

let compiled_pure c = c.c_pure

let compiled_batchable c = c.c_batchable

(* Accepted fusion chains, as kernel indices upstream-first (empty when
   fusion is off, no analysis is linked, or nothing qualified). *)
let compiled_chains c = Array.map fst c.c_chains

(* Every net must end wiring with at least one producer and one consumer
   on its queue: a producer-less queue never closes (its readers would
   hang until end-of-run cancellation), and a consumer-less queue retires
   nothing (its writers fill it and hang).  Both used to fail silently at
   run time; now they fail at instance build, naming the kernel ports. *)
let check_wiring ~(g : Serialized.t) ~fused queues =
  let describe_eps eps =
    match eps with
    | [] -> "no kernel ports"
    | _ ->
      String.concat ", "
        (List.map
           (fun (ep : Serialized.endpoint) ->
             let ki = g.Serialized.kernels.(ep.kernel_idx) in
             Printf.sprintf "%s.%s" ki.inst_name ki.ports.(ep.port_idx).Kernel.pname)
           eps)
  in
  Array.iteri
    (fun id q ->
      (* Fused nets have no queue endpoints by design: their single
         writer/reader pair hands off through a Fused.edge. *)
      if not fused.(id) then begin
        let (n : Serialized.net) = g.Serialized.nets.(id) in
        if Bqueue.producers q = 0 then
          fail "graph %s: net %s has no producer — readers %s would hang (missing source?)"
            g.gname (Bqueue.name q) (describe_eps n.readers);
        if Bqueue.consumers q = 0 then
          fail "graph %s: net %s has no consumer — writers %s would hang (missing sink?)"
            g.gname (Bqueue.name q) (describe_eps n.writers)
      end)
    queues

(* Build the per-request state from a compiled graph: queues, endpoint
   registration (kernel ports and one producer/consumer per global I/O
   slot, so endpoint counts are static and the SPSC seal survives
   resets), wiring check and seal — everything [run] does not have to
   repeat. *)
let new_instance (c : compiled) =
  let g = c.c_graph in
  let config = c.c_config in
  let sched = Sched.create () in
  let f_edges =
    Array.mapi
      (fun id (n : Serialized.net) ->
        if c.c_fused.(id) then
          Some
            (Fused.create
               ~name:(Printf.sprintf "%s/net%d" g.Serialized.gname n.net_id)
               ~dtype:n.dtype)
        else None)
      g.Serialized.nets
  in
  let queues =
    Array.mapi
      (fun id (n : Serialized.net) ->
        (* Fused nets keep an index-aligned placeholder queue (never
           endpointed, minimal ring) so per-net arrays stay dense. *)
        if c.c_fused.(id) then
          Bqueue.create ~unboxed:false
            ~name:(Printf.sprintf "%s/net%d" g.Serialized.gname n.net_id)
            ~dtype:n.dtype ~capacity:1 ()
        else
          Bqueue.create ~unboxed:config.Run_config.unboxed
            ~name:(Printf.sprintf "%s/net%d" g.Serialized.gname n.net_id)
            ~dtype:n.dtype ~capacity:c.c_capacities.(id) ())
      g.Serialized.nets
  in
  let block_io = config.Run_config.block_io in
  let kernels =
    Array.mapi
      (fun idx (inst : Serialized.kernel_inst) ->
        let producers = ref [] in
        let wires =
          Array.mapi
            (fun port_idx (spec : Kernel.port_spec) ->
              let net_id = inst.port_nets.(port_idx) in
              let q = queues.(net_id) in
              Port.check_dtype ~expected:spec.Kernel.dtype ~actual:(Bqueue.dtype q)
                ~what:(Printf.sprintf "%s.%s" inst.inst_name spec.Kernel.pname);
              let pname = Printf.sprintf "%s.%s" inst.inst_name spec.Kernel.pname in
              match f_edges.(net_id), spec.Kernel.dir with
              | Some e, Kernel.In ->
                (* Fused hand-off: reads pull the upstream pump directly,
                   no queue transaction, so block_io granularity does not
                   apply. *)
                Wire_in
                  ( port_idx,
                    {
                      Port.r_name = pname;
                      r_dtype = spec.Kernel.dtype;
                      r_get = (fun () -> Fused.get e);
                      r_peek = (fun () -> Fused.peek e);
                      r_available = (fun () -> Fused.available e);
                      r_get_block = Fused.get_block e;
                      r_get_floats = Fused.get_floats e;
                      r_get_ints = Fused.get_ints e;
                    } )
              | Some e, Kernel.Out ->
                Wire_out
                  ( port_idx,
                    {
                      Port.w_name = pname;
                      w_dtype = spec.Kernel.dtype;
                      w_put = Fused.put e;
                      w_put_block = Fused.put_block e;
                      w_put_floats = Fused.put_floats e;
                      w_put_ints = Fused.put_ints e;
                      w_space = (fun () -> Fused.w_space e);
                    } )
              | None, Kernel.In ->
                let cns = Bqueue.add_consumer q in
                let boxed_block_get = Port.block_get_of_get (fun () -> Bqueue.get cns) in
                Wire_in
                  ( port_idx,
                    {
                      Port.r_name = pname;
                      r_dtype = spec.Kernel.dtype;
                      r_get = (fun () -> Bqueue.get cns);
                      r_peek = (fun () -> Bqueue.peek cns);
                      r_available = (fun () -> Bqueue.available cns);
                      r_get_block =
                        (if block_io then fun n -> Bqueue.get_block cns n
                         else boxed_block_get);
                      r_get_floats =
                        (if block_io then fun n -> Bqueue.get_floats cns n
                         else Port.floats_of_block boxed_block_get);
                      r_get_ints =
                        (if block_io then fun n -> Bqueue.get_ints cns n
                         else Port.ints_of_block boxed_block_get);
                    } )
              | None, Kernel.Out ->
                let p = Bqueue.add_producer q in
                producers := p :: !producers;
                let boxed_block_put = Port.block_put_of_put (fun v -> Bqueue.put p v) in
                Wire_out
                  ( port_idx,
                    {
                      Port.w_name = pname;
                      w_dtype = spec.Kernel.dtype;
                      w_put = (fun v -> Bqueue.put p v);
                      w_put_block = (if block_io then Bqueue.put_block p else boxed_block_put);
                      w_put_floats =
                        (if block_io then Bqueue.put_floats p
                         else Port.block_of_floats spec.Kernel.dtype boxed_block_put);
                      w_put_ints =
                        (if block_io then Bqueue.put_ints p
                         else Port.block_of_ints boxed_block_put);
                      w_space = (fun () -> Bqueue.space q);
                    } ))
            inst.ports
        in
        {
          wk_inst = inst;
          wk_kernel = c.c_kernels.(idx);
          wk_prof_key = c.c_prof_keys.(idx);
          wk_wires = wires;
          wk_producers = !producers;
        })
      g.Serialized.kernels
  in
  let chains =
    Array.map
      (fun (members, edge_nets) ->
        {
          ch_members = members;
          ch_edges = Array.map (fun id -> Option.get f_edges.(id)) edge_nets;
        })
      c.c_chains
  in
  let member_chain = Array.make (Array.length g.Serialized.kernels) (-1) in
  Array.iteri
    (fun ci ch -> Array.iter (fun k -> member_chain.(k) <- ci) ch.ch_members)
    chains;
  let in_producers =
    Array.map (fun net_id -> Bqueue.add_producer queues.(net_id)) g.Serialized.input_order
  in
  let out_consumers =
    Array.map (fun net_id -> Bqueue.add_consumer queues.(net_id)) g.Serialized.output_order
  in
  check_wiring ~g ~fused:c.c_fused queues;
  Array.iteri
    (fun id q -> if not c.c_fused.(id) then Bqueue.seal ~spsc:config.Run_config.spsc q)
    queues;
  {
    graph = g;
    sched;
    queues;
    f_edges;
    chains;
    member_chain;
    config;
    kernels;
    in_producers;
    out_consumers;
    cur_sources = [||];
    cur_sinks = [||];
    ran = false;
    linted = c.c_linted;
    failure = None;
  }

(* [instantiate] keeps its historical semantics: the graph is validated
   and wired here, but the pre-flight lint still happens at the first
   [run] (the compiled artifact of a bare instantiate carries no
   verdict). *)
let instantiate ?(config = Run_config.default) (g : Serialized.t) =
  new_instance (compile_internal ~linted:false ~config g)

(* Restore a used instance to pristine: ring cursors, producer-open
   flags, scheduler state and the failure slot all return to their
   just-built values; nothing is reallocated and the endpoint set (and
   with it the sealed SPSC plan and lint verdict) is preserved. *)
let reset t =
  Array.iter Bqueue.reset t.queues;
  Array.iter (function Some e -> Fused.reset e | None -> ()) t.f_edges;
  Sched.reset t.sched;
  t.cur_sources <- [||];
  t.cur_sinks <- [||];
  t.ran <- false;
  t.failure <- None

(* Failure supervision, expressed as the outermost body hook: a kernel
   body raising is recorded — kernel name, exception, backtrace, source
   span from the graph — before the scheduler's fiber boundary sees it.
   Only the first failure is kept (later ones are usually collateral). *)
let supervise_hooks (t : t) =
  {
    Hooks.wrap_reader = (fun _ _ r -> r);
    wrap_writer = (fun _ _ w -> w);
    around_body =
      (fun inst body () ->
        try body () with
        | (Sched.End_of_stream | Sched.Terminated) as e -> raise e
        | e ->
          let bt = Printexc.get_backtrace () in
          Obs.Flight.note Obs.Flight.Body_raise inst.Serialized.inst_name;
          if t.failure = None then
            (* Snapshot here, on the failing domain, while the ring still
               holds the events leading up to the raise. *)
            t.failure <-
              Some
                {
                  f_graph = t.graph.Serialized.gname;
                  f_kernel = inst.Serialized.inst_name;
                  f_exn = e;
                  f_backtrace = String.trim bt;
                  f_src = inst.Serialized.src;
                  f_flight = Obs.Flight.snapshot ();
                };
          raise e);
  }

(* Arm the instance for one run: compose the hook stack and spawn every
   fiber.  Hook nesting, outermost first: failure supervision, caller
   hooks, observability counters, fault injection.  Faults sit innermost
   so an injected raise unwinds through (and is seen by) every other
   layer, exactly like a real kernel bug.  Re-wrapping per run keeps
   per-instantiation hook state — fault access counters, trace-session
   checks — identical to a fresh build. *)
let arm t =
  let config = t.config in
  let hooks = Hooks.compose (supervise_hooks t) config.Run_config.hooks in
  let hooks = if !Obs.Trace.on then Hooks.compose hooks (obs_hooks ()) else hooks in
  let hooks =
    match config.Run_config.faults with
    | None -> hooks
    | Some plan -> Hooks.compose hooks (Faults.hooks plan)
  in
  let wrap_binding wk =
    let readers = ref [] in
    let writers = ref [] in
    Array.iter
      (fun wire ->
        match wire with
        | Wire_in (port_idx, r) ->
          readers := hooks.Hooks.wrap_reader wk.wk_inst port_idx r :: !readers
        | Wire_out (port_idx, w) ->
          writers := hooks.Hooks.wrap_writer wk.wk_inst port_idx w :: !writers)
      wk.wk_wires;
    {
      Kernel.readers = Array.of_list (List.rev !readers);
      writers = Array.of_list (List.rev !writers);
    }
  in
  (* Hook-wrapped body of one kernel, closing its queue producers when it
     ends however it ends — as a standalone fiber or as a fused pump. *)
  let member_body wk =
    let binding = wrap_binding wk in
    let producers = wk.wk_producers in
    fun () ->
      (* When a kernel terminates (normally or via End_of_stream), its
         output nets lose one producer; fully-drained nets close and the
         closure propagates downstream. *)
      Fun.protect
        ~finally:(fun () -> List.iter Bqueue.producer_done producers)
        (hooks.Hooks.around_body wk.wk_inst (fun () -> wk.wk_kernel.Kernel.body binding))
  in
  Array.iteri
    (fun idx wk ->
      if t.member_chain.(idx) < 0 then
        Sched.spawn ~prof_key:wk.wk_prof_key t.sched ~name:wk.wk_inst.inst_name
          (member_body wk))
    t.kernels;
  (* Fused chains: one fiber per chain.  Every member but the tail is
     installed as the pump of its outgoing edge (the downstream member's
     reads resume it on demand); the tail body runs the fiber.  Blocking
     operations inside any member park the whole chain fiber, so external
     behaviour matches the unfused graph.  Teardown discontinues
     still-suspended pumps so their cleanup (producer_done, fault
     counters) runs exactly as when each kernel had its own fiber. *)
  Array.iter
    (fun ch ->
      let m = Array.length ch.ch_members in
      for i = 0 to m - 2 do
        Fused.install_pump ch.ch_edges.(i) (member_body t.kernels.(ch.ch_members.(i)))
      done;
      let tail = t.kernels.(ch.ch_members.(m - 1)) in
      let tail_body = member_body tail in
      Sched.spawn ~prof_key:tail.wk_prof_key t.sched ~name:tail.wk_inst.inst_name
        (fun () ->
          Fun.protect ~finally:(fun () -> Array.iter Fused.kill ch.ch_edges) tail_body))
    t.chains;
  Array.iteri
    (fun i net_id ->
      let source = t.cur_sources.(i) in
      let q = t.queues.(net_id) in
      let p = t.in_producers.(i) in
      let body =
        if config.Run_config.block_io then begin
          let chunk = io_chunk q in
          let dt = Bqueue.dtype q in
          (* On unboxed scalar nets, pump flat payloads straight into the
             bigarray ring — source data never boxes. *)
          if Bqueue.is_unboxed q && Dtype.is_float dt then begin
            let pull_floats = Io.source_pull_floats source in
            fun () ->
              let rec loop () =
                let fs = pull_floats chunk in
                if Array.length fs > 0 then begin
                  Bqueue.put_floats p fs;
                  loop ()
                end
              in
              loop ()
          end
          else if Bqueue.is_unboxed q && Dtype.is_integer dt then begin
            let pull_ints = Io.source_pull_ints source in
            fun () ->
              let rec loop () =
                let is = pull_ints chunk in
                if Array.length is > 0 then begin
                  Bqueue.put_ints p is;
                  loop ()
                end
              in
              loop ()
          end
          else begin
            let pull_block = Io.source_pull_block source in
            fun () ->
              let rec loop () =
                let vs = pull_block chunk in
                if Array.length vs > 0 then begin
                  Bqueue.put_block p vs;
                  loop ()
                end
              in
              loop ()
          end
        end
        else begin
          let pull = Io.source_pull source in
          fun () ->
            let rec loop () =
              match pull () with
              | Some v ->
                Bqueue.put p v;
                loop ()
              | None -> ()
            in
            loop ()
        end
      in
      Sched.spawn t.sched ~name:(Io.source_name source) (fun () ->
          Fun.protect ~finally:(fun () -> Bqueue.producer_done p) body))
    t.graph.Serialized.input_order;
  Array.iteri
    (fun i net_id ->
      let sink = t.cur_sinks.(i) in
      let q = t.queues.(net_id) in
      let c = t.out_consumers.(i) in
      let body =
        if config.Run_config.block_io then begin
          let chunk = io_chunk q in
          let dt = Bqueue.dtype q in
          if Bqueue.is_unboxed q && Dtype.is_float dt then fun () ->
            let rec loop () =
              let fs = Bqueue.get_floats_some c ~max:chunk in
              Io.sink_push_floats sink fs;
              loop ()
            in
            loop ()
          else if Bqueue.is_unboxed q && Dtype.is_integer dt then fun () ->
            let rec loop () =
              let is = Bqueue.get_ints_some c ~max:chunk in
              Io.sink_push_ints sink is;
              loop ()
            in
            loop ()
          else fun () ->
            let rec loop () =
              let vs = Bqueue.get_some c ~max:chunk in
              Io.sink_push_block sink vs;
              loop ()
            in
            loop ()
        end
        else fun () ->
          let rec loop () =
            let v = Bqueue.get c in
            Io.sink_push sink v;
            loop ()
          in
          loop ()
      in
      Sched.spawn t.sched ~name:(Io.sink_name sink) body)
    t.graph.Serialized.output_order

(* Source span of a kernel instance by fiber name, for failures recorded
   at the scheduler boundary (source/sink fibers have no span). *)
let src_of_fiber t name =
  Array.fold_left
    (fun acc (ki : Serialized.kernel_inst) ->
      if acc = None && String.equal ki.inst_name name then ki.src else acc)
    None t.graph.Serialized.kernels

let occupancy_snapshot t =
  Array.to_list
    (Array.mapi
       (fun id q ->
         match t.f_edges.(id) with
         | Some e -> Fused.name e, Fused.occupancy e
         | None -> Bqueue.name q, Bqueue.occupancy q)
       t.queues)

let run t ~sources ~sinks =
  if t.ran then
    fail "runtime context for %s already ran; reset it (or instantiate again)" t.graph.gname;
  (* Pre-flight static analysis happens before any fiber is scheduled:
     at [`Error] a failing graph is refused before a single kernel body
     executes.  A compiled graph's verdict (and a reset instance's) is
     reused — warm hits and retries never re-lint. *)
  if not t.linted then begin
    preflight ~lint:t.config.Run_config.lint t.graph;
    t.linted <- true
  end;
  t.ran <- true;
  let n_in = Array.length t.graph.Serialized.input_order in
  let n_out = Array.length t.graph.Serialized.output_order in
  if List.length sources <> n_in then
    fail "graph %s has %d global inputs but %d sources were supplied" t.graph.gname n_in
      (List.length sources);
  if List.length sinks <> n_out then
    fail "graph %s has %d global outputs but %d sinks were supplied" t.graph.gname n_out
      (List.length sinks);
  t.cur_sources <- Array.of_list sources;
  t.cur_sinks <- Array.of_list sinks;
  arm t;
  let stats =
    Sched.run ?deadline_ns:t.config.Run_config.deadline_ns
      ?max_steps:t.config.Run_config.max_steps t.sched
  in
  match t.failure with
  | Some f -> Kernel_failed f
  | None ->
    (match stats.Sched.stopped with
     | Some stop ->
       (match stop.Sched.reason with
        | Sched.Cancel_requested -> Cancelled
        | Sched.Deadline | Sched.Out_of_fuel ->
          Deadline_exceeded
            {
              p_graph = t.graph.Serialized.gname;
              p_reason =
                (match stop.Sched.reason with
                 | Sched.Deadline -> `Wall_clock
                 | _ -> `Max_steps);
              p_parked = stop.Sched.parked;
              p_occupancy = occupancy_snapshot t;
              p_last_kernel = stop.Sched.last_task;
              p_stats = stats;
              p_flight = Obs.Flight.snapshot ();
            })
     | None ->
       (match stats.Sched.failed with
        | [] -> Completed stats
        | (name, exn) :: _ ->
          (* A source/sink fiber failed (kernel failures are recorded by
             the supervision hook above, with more context). *)
          Kernel_failed
            {
              f_graph = t.graph.Serialized.gname;
              f_kernel = name;
              f_exn = exn;
              f_backtrace = "";
              f_src = src_of_fiber t name;
              f_flight = Obs.Flight.snapshot ();
            }))

let stats_exn = function
  | Completed stats -> stats
  | Kernel_failed f -> raise (Runtime_error (failure_message f))
  | Deadline_exceeded p -> raise (Runtime_error (progress_message p))
  | Cancelled -> raise (Runtime_error "run cancelled")

let run_exn t ~sources ~sinks = stats_exn (run t ~sources ~sinks)

let execute ?config g ~sources ~sinks =
  let t = instantiate ?config g in
  run t ~sources ~sinks

let execute_exn ?config g ~sources ~sinks = stats_exn (execute ?config g ~sources ~sinks)

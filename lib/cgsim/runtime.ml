exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* Hooks are defined in their own module (dependency-cycle avoidance);
   re-exported here under the historical names. *)
type wrap_hooks = Hooks.t = {
  wrap_reader : Serialized.kernel_inst -> int -> Port.reader -> Port.reader;
  wrap_writer : Serialized.kernel_inst -> int -> Port.writer -> Port.writer;
  around_body : Serialized.kernel_inst -> (unit -> unit) -> unit -> unit;
}

let no_hooks = Hooks.none

let compose_hooks = Hooks.compose

(* Observability instrumentation, expressed as ordinary wrap_hooks: per
   port element counters and kernel body lifecycle instants.  Installed
   automatically by [instantiate] when a trace session is active, inside
   any caller-supplied hooks (so e.g. aiesim's capture wrappers see the
   same values they always did). *)
let obs_hooks () =
  {
    wrap_reader =
      (fun _inst _idx r ->
        let key = "port.get:" ^ r.Port.r_name in
        {
          r with
          Port.r_get =
            (fun () ->
              let v = r.Port.r_get () in
              Obs.Trace.incr_metric key;
              v);
          Port.r_get_block =
            (fun n ->
              let vs = r.Port.r_get_block n in
              (* One metric update per block, same totals as per-element. *)
              Obs.Trace.add_metric key (float_of_int (Array.length vs));
              vs);
        });
    wrap_writer =
      (fun _inst _idx w ->
        let key = "port.put:" ^ w.Port.w_name in
        {
          w with
          Port.w_put =
            (fun v ->
              w.Port.w_put v;
              Obs.Trace.incr_metric key);
          Port.w_put_block =
            (fun vs ->
              w.Port.w_put_block vs;
              Obs.Trace.add_metric key (float_of_int (Array.length vs)));
        });
    around_body =
      (fun inst body () ->
        let track = inst.Serialized.inst_name in
        Obs.Trace.instant ~track ~cat:"kernel" "body-start";
        match body () with
        | () -> Obs.Trace.instant ~track ~cat:"kernel" "body-end"
        | exception Sched.End_of_stream ->
          Obs.Trace.instant ~track ~cat:"kernel" "body-end";
          raise Sched.End_of_stream
        | exception e ->
          Obs.Trace.instant ~track ~cat:"kernel" "body-raise";
          raise e);
  }

type lint_level = Run_config.lint_level

(* The static analyzer (lib/analysis) installs itself here at module-init
   time; cgsim itself cannot depend on it without a cycle.  When no hook
   is installed, pre-flight linting quietly does nothing. *)
let lint_hook : (Serialized.t -> Diagnostic.t list) option ref = ref None

let set_lint_hook f = lint_hook := Some f

let preflight ~lint (g : Serialized.t) =
  match lint, !lint_hook with
  | `Off, _ | _, None -> ()
  | (`Warn | `Error), Some hook ->
    let diags =
      List.filter
        (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
        (hook g)
    in
    if diags <> [] then begin
      match lint, Diagnostic.max_severity diags with
      | `Error, Some Diagnostic.Error ->
        fail "graph %s failed pre-flight lint:\n%s" g.Serialized.gname
          (String.concat "\n" (List.map Diagnostic.render diags))
      | _ ->
        List.iter (fun d -> prerr_endline (Diagnostic.render d)) diags
    end

(* ------------------------------------------------------------------ *)
(* Structured outcomes                                                 *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_graph : string;
  f_kernel : string;
  f_exn : exn;
  f_backtrace : string;  (* may be empty when backtrace recording is off *)
  f_src : Srcspan.t option;
  f_flight : Obs.Flight.entry list;
      (* flight-recorder window from the failing domain, oldest first;
         captured whether or not tracing was on *)
}

type progress = {
  p_graph : string;
  p_reason : [ `Wall_clock | `Max_steps ];
  p_parked : string list;
  p_occupancy : (string * int) list;  (* net name, unretired elements *)
  p_last_kernel : string option;
  p_stats : Sched.stats;
  p_flight : Obs.Flight.entry list;  (* as f_flight *)
}

type outcome =
  | Completed of Sched.stats
  | Deadline_exceeded of progress
  | Cancelled
  | Kernel_failed of failure

let outcome_label = function
  | Completed _ -> "completed"
  | Deadline_exceeded p -> (match p.p_reason with `Wall_clock -> "deadline" | `Max_steps -> "max-steps")
  | Cancelled -> "cancelled"
  | Kernel_failed _ -> "failed"

let failure_message f =
  Format.asprintf "graph %s: kernel %s failed: %s%s%s" f.f_graph f.f_kernel
    (Printexc.to_string f.f_exn)
    (match f.f_src with
     | Some s -> Printf.sprintf " (%s)" (Srcspan.to_string s)
     | None -> "")
    (if f.f_backtrace = "" then ""
     else "\n" ^ f.f_backtrace)

let progress_message p =
  Format.asprintf "graph %s: %s after %d slices; parked: %s; last advanced: %s%s" p.p_graph
    (match p.p_reason with
     | `Wall_clock -> "wall-clock deadline exceeded"
     | `Max_steps -> "step budget exhausted")
    p.p_stats.Sched.slices
    (match p.p_parked with [] -> "<none>" | ps -> String.concat ", " ps)
    (Option.value p.p_last_kernel ~default:"<none>")
    (match List.filter (fun (_, occ) -> occ > 0) p.p_occupancy with
     | [] -> ""
     | occ ->
       "; occupancy: "
       ^ String.concat ", " (List.map (fun (n, o) -> Printf.sprintf "%s=%d" n o) occ))

let pp_outcome ppf = function
  | Completed stats -> Format.fprintf ppf "completed (%a)" Sched.pp_stats stats
  | Deadline_exceeded p -> Format.pp_print_string ppf (progress_message p)
  | Cancelled -> Format.pp_print_string ppf "cancelled"
  | Kernel_failed f -> Format.pp_print_string ppf (failure_message f)

type t = {
  graph : Serialized.t;
  sched : Sched.t;
  queues : Bqueue.t array;  (* indexed by net id *)
  mutable config : Run_config.t;
  mutable ran : bool;
  mutable failure : failure option;  (* first kernel failure, with context *)
}

let graph t = t.graph

let config t = t.config

let net_traffic t = Array.map Bqueue.total_put t.queues

let cancel t = Sched.cancel t.sched

(* I/O fibers move data in chunks of this many elements at most; bounded
   by the queue capacity so a chunk is at most one full ring. *)
let io_chunk q = max 1 (min (Bqueue.capacity q) 1024)

(* Failure supervision, expressed as the outermost body hook: a kernel
   body raising is recorded — kernel name, exception, backtrace, source
   span from the graph — before the scheduler's fiber boundary sees it.
   Only the first failure is kept (later ones are usually collateral).
   [ctx] is filled in by [instantiate] before any body can run. *)
let supervise_hooks (ctx : t option ref) =
  {
    Hooks.wrap_reader = (fun _ _ r -> r);
    wrap_writer = (fun _ _ w -> w);
    around_body =
      (fun inst body () ->
        try body () with
        | (Sched.End_of_stream | Sched.Terminated) as e -> raise e
        | e ->
          let bt = Printexc.get_backtrace () in
          Obs.Flight.note Obs.Flight.Body_raise inst.Serialized.inst_name;
          (match !ctx with
           | Some t when t.failure = None ->
             (* Snapshot here, on the failing domain, while the ring still
                holds the events leading up to the raise. *)
             t.failure <-
               Some
                 {
                   f_graph = t.graph.Serialized.gname;
                   f_kernel = inst.Serialized.inst_name;
                   f_exn = e;
                   f_backtrace = String.trim bt;
                   f_src = inst.Serialized.src;
                   f_flight = Obs.Flight.snapshot ();
                 }
           | _ -> ());
          raise e);
  }

let instantiate ?(config = Run_config.default) (g : Serialized.t) =
  (* Hook nesting, outermost first: failure supervision, caller hooks,
     observability counters, fault injection.  Faults sit innermost so an
     injected raise unwinds through (and is seen by) every other layer,
     exactly like a real kernel bug. *)
  let ctx = ref None in
  let hooks = Hooks.compose (supervise_hooks ctx) config.Run_config.hooks in
  let hooks = if !Obs.Trace.on then Hooks.compose hooks (obs_hooks ()) else hooks in
  let hooks =
    match config.Run_config.faults with
    | None -> hooks
    | Some plan -> Hooks.compose hooks (Faults.hooks plan)
  in
  (match Serialized.validate_diags g with
   | [] -> ()
   | diags ->
     fail "cannot instantiate %s: %s" g.Serialized.gname
       (String.concat "; " (List.map Diagnostic.render diags)));
  let sched = Sched.create () in
  let queues =
    Array.map
      (fun (n : Serialized.net) ->
        let elem_bytes = Dtype.size_bytes n.dtype in
        let capacity =
          match config.Run_config.queue_capacity with
          | Some c -> c
          | None -> Settings.resolved_depth ~elem_bytes n.settings
        in
        Bqueue.create
          ~name:(Printf.sprintf "%s/net%d" g.Serialized.gname n.net_id)
          ~dtype:n.dtype ~capacity ())
      g.Serialized.nets
  in
  let t = { graph = g; sched; queues; config; ran = false; failure = None } in
  ctx := Some t;
  let block_io = config.Run_config.block_io in
  (* Wire every kernel instance.  Endpoint registration happens here, up
     front, so broadcast completeness holds from the first element. *)
  Array.iteri
    (fun _idx (inst : Serialized.kernel_inst) ->
      let kernel =
        match Registry.find inst.key with
        | Some k -> k
        | None -> fail "graph %s references unregistered kernel %s" g.Serialized.gname inst.key
      in
      let readers = ref [] in
      let writers = ref [] in
      let writer_producers = ref [] in
      Array.iteri
        (fun port_idx (spec : Kernel.port_spec) ->
          let q = queues.(inst.port_nets.(port_idx)) in
          Port.check_dtype ~expected:spec.Kernel.dtype ~actual:(Bqueue.dtype q)
            ~what:(Printf.sprintf "%s.%s" inst.inst_name spec.Kernel.pname);
          match spec.Kernel.dir with
          | Kernel.In ->
            let c = Bqueue.add_consumer q in
            let r =
              {
                Port.r_name = Printf.sprintf "%s.%s" inst.inst_name spec.Kernel.pname;
                r_dtype = spec.Kernel.dtype;
                r_get = (fun () -> Bqueue.get c);
                r_peek = (fun () -> Bqueue.peek c);
                r_available = (fun () -> Bqueue.available c);
                r_get_block =
                  (if block_io then fun n -> Bqueue.get_block c n
                   else Port.block_get_of_get (fun () -> Bqueue.get c));
              }
            in
            readers := hooks.Hooks.wrap_reader inst port_idx r :: !readers
          | Kernel.Out ->
            let p = Bqueue.add_producer q in
            writer_producers := p :: !writer_producers;
            let w =
              {
                Port.w_name = Printf.sprintf "%s.%s" inst.inst_name spec.Kernel.pname;
                w_dtype = spec.Kernel.dtype;
                w_put = (fun v -> Bqueue.put p v);
                w_put_block =
                  (if block_io then Bqueue.put_block p
                   else Port.block_put_of_put (fun v -> Bqueue.put p v));
                w_space = (fun () -> Bqueue.space q);
              }
            in
            writers := hooks.Hooks.wrap_writer inst port_idx w :: !writers)
        inst.ports;
      let binding =
        {
          Kernel.readers = Array.of_list (List.rev !readers);
          writers = Array.of_list (List.rev !writers);
        }
      in
      let producers = !writer_producers in
      let body () =
        (* When a kernel terminates (normally or via End_of_stream), its
           output nets lose one producer; fully-drained nets close and the
           closure propagates downstream. *)
        Fun.protect
          ~finally:(fun () -> List.iter Bqueue.producer_done producers)
          (hooks.Hooks.around_body inst (fun () -> kernel.Kernel.body binding))
      in
      Sched.spawn sched ~name:inst.inst_name body)
    g.Serialized.kernels;
  t

let attach_source t net_id source =
  let q = t.queues.(net_id) in
  let p = Bqueue.add_producer q in
  let body =
    if t.config.Run_config.block_io then begin
      let pull_block = Io.source_pull_block source in
      let chunk = io_chunk q in
      fun () ->
        let rec loop () =
          let vs = pull_block chunk in
          if Array.length vs > 0 then begin
            Bqueue.put_block p vs;
            loop ()
          end
        in
        loop ()
    end
    else begin
      let pull = Io.source_pull source in
      fun () ->
        let rec loop () =
          match pull () with
          | Some v ->
            Bqueue.put p v;
            loop ()
          | None -> ()
        in
        loop ()
    end
  in
  Sched.spawn t.sched ~name:(Io.source_name source) (fun () ->
      Fun.protect ~finally:(fun () -> Bqueue.producer_done p) body)

let attach_sink t net_id sink =
  let q = t.queues.(net_id) in
  let c = Bqueue.add_consumer q in
  let body =
    if t.config.Run_config.block_io then begin
      let chunk = io_chunk q in
      fun () ->
        let rec loop () =
          let vs = Bqueue.get_some c ~max:chunk in
          Io.sink_push_block sink vs;
          loop ()
        in
        loop ()
    end
    else fun () ->
      let rec loop () =
        let v = Bqueue.get c in
        Io.sink_push sink v;
        loop ()
      in
      loop ()
  in
  Sched.spawn t.sched ~name:(Io.sink_name sink) body

(* Every net must end wiring with at least one producer and one consumer
   on its queue: a producer-less queue never closes (its readers would
   hang until end-of-run cancellation), and a consumer-less queue retires
   nothing (its writers fill it and hang).  Both used to fail silently at
   run time; now they fail up front, naming the kernel ports on the net. *)
let check_wiring t =
  let describe_eps eps =
    match eps with
    | [] -> "no kernel ports"
    | _ ->
      String.concat ", "
        (List.map
           (fun (ep : Serialized.endpoint) ->
             let ki = t.graph.Serialized.kernels.(ep.kernel_idx) in
             Printf.sprintf "%s.%s" ki.inst_name ki.ports.(ep.port_idx).Kernel.pname)
           eps)
  in
  Array.iteri
    (fun id q ->
      let (n : Serialized.net) = t.graph.Serialized.nets.(id) in
      if Bqueue.producers q = 0 then
        fail "graph %s: net %s has no producer — readers %s would hang (missing source?)"
          t.graph.gname (Bqueue.name q) (describe_eps n.readers);
      if Bqueue.consumers q = 0 then
        fail "graph %s: net %s has no consumer — writers %s would hang (missing sink?)"
          t.graph.gname (Bqueue.name q) (describe_eps n.writers))
    t.queues

(* Source span of a kernel instance by fiber name, for failures recorded
   at the scheduler boundary (source/sink fibers have no span). *)
let src_of_fiber t name =
  Array.fold_left
    (fun acc (ki : Serialized.kernel_inst) ->
      if acc = None && String.equal ki.inst_name name then ki.src else acc)
    None t.graph.Serialized.kernels

let occupancy_snapshot t =
  Array.to_list (Array.map (fun q -> Bqueue.name q, Bqueue.occupancy q) t.queues)

let run t ~sources ~sinks =
  if t.ran then fail "runtime context for %s is single-shot; instantiate again" t.graph.gname;
  (* Pre-flight static analysis happens before any fiber is scheduled:
     at [`Error] a failing graph is refused before a single kernel body
     executes. *)
  preflight ~lint:t.config.Run_config.lint t.graph;
  t.ran <- true;
  let n_in = Array.length t.graph.Serialized.input_order in
  let n_out = Array.length t.graph.Serialized.output_order in
  if List.length sources <> n_in then
    fail "graph %s has %d global inputs but %d sources were supplied" t.graph.gname n_in
      (List.length sources);
  if List.length sinks <> n_out then
    fail "graph %s has %d global outputs but %d sinks were supplied" t.graph.gname n_out
      (List.length sinks);
  List.iteri (fun i src -> attach_source t t.graph.Serialized.input_order.(i) src) sources;
  List.iteri (fun i snk -> attach_sink t t.graph.Serialized.output_order.(i) snk) sinks;
  (* Wiring is complete: verify every edge, then seal the queues so
     1-producer/1-consumer edges take the SPSC fast path. *)
  check_wiring t;
  Array.iter (fun q -> Bqueue.seal ~spsc:t.config.Run_config.spsc q) t.queues;
  let stats =
    Sched.run ?deadline_ns:t.config.Run_config.deadline_ns
      ?max_steps:t.config.Run_config.max_steps t.sched
  in
  match t.failure with
  | Some f -> Kernel_failed f
  | None ->
    (match stats.Sched.stopped with
     | Some stop ->
       (match stop.Sched.reason with
        | Sched.Cancel_requested -> Cancelled
        | Sched.Deadline | Sched.Out_of_fuel ->
          Deadline_exceeded
            {
              p_graph = t.graph.Serialized.gname;
              p_reason =
                (match stop.Sched.reason with
                 | Sched.Deadline -> `Wall_clock
                 | _ -> `Max_steps);
              p_parked = stop.Sched.parked;
              p_occupancy = occupancy_snapshot t;
              p_last_kernel = stop.Sched.last_task;
              p_stats = stats;
              p_flight = Obs.Flight.snapshot ();
            })
     | None ->
       (match stats.Sched.failed with
        | [] -> Completed stats
        | (name, exn) :: _ ->
          (* A source/sink fiber failed (kernel failures are recorded by
             the supervision hook above, with more context). *)
          Kernel_failed
            {
              f_graph = t.graph.Serialized.gname;
              f_kernel = name;
              f_exn = exn;
              f_backtrace = "";
              f_src = src_of_fiber t name;
              f_flight = Obs.Flight.snapshot ();
            }))

let stats_exn = function
  | Completed stats -> stats
  | Kernel_failed f -> raise (Runtime_error (failure_message f))
  | Deadline_exceeded p -> raise (Runtime_error (progress_message p))
  | Cancelled -> raise (Runtime_error "run cancelled")

let run_exn t ~sources ~sinks = stats_exn (run t ~sources ~sinks)

let execute ?config g ~sources ~sinks =
  let t = instantiate ?config g in
  run t ~sources ~sinks

let execute_exn ?config g ~sources ~sinks = stats_exn (execute ?config g ~sources ~sinks)

(* ------------------------------------------------------------------ *)
(* Deprecated optional-arg shims (one release; see docs/ROBUSTNESS.md)  *)
(* ------------------------------------------------------------------ *)

let instantiate_opts ?hooks ?queue_capacity ?block_io ?spsc g =
  instantiate ~config:(Run_config.make ?hooks ?queue_capacity ?block_io ?spsc ()) g

let run_opts ?lint t ~sources ~sinks =
  (match lint with
   | Some lint -> t.config <- Run_config.with_lint lint t.config
   | None -> ());
  stats_exn (run t ~sources ~sinks)

let execute_opts ?hooks ?queue_capacity ?block_io ?spsc ?lint g ~sources ~sinks =
  stats_exn
    (execute ~config:(Run_config.make ?hooks ?queue_capacity ?block_io ?spsc ?lint ()) g ~sources
       ~sinks)

(** Fixed-capacity multi-producer multi-consumer queues with broadcast
    semantics (Section 3.6): every consumer receives a complete copy of all
    data written to the queue.  Order is preserved per producer; data from
    multiple producers may interleave (producers share one append point, so
    interleaving follows scheduling order).

    Blocking behaviour integrates with {!Sched}: a full queue parks
    producers, an empty queue parks consumers.  An element is retired once
    the slowest consumer has read it.

    Producers are registered so the queue can close itself when every
    producer is done; reads past the last element of a closed queue raise
    {!Sched.End_of_stream}, which ends infinite-loop kernels cleanly. *)

type t

type consumer

type producer

(** [create ~name ~dtype ~capacity ()] makes an empty queue holding at
    most [capacity] elements (a positive count).  Written values are
    checked against [dtype].  Blocking endpoints park on the scheduler of
    whichever fiber touches them ({!Sched.park} uses the running fiber's
    scheduler), so a queue belongs to whatever run it is used in.

    [unboxed] (default [true]) backs scalar-dtype rings with
    [Bigarray.Array1] storage — [float32]/[float64] for floats, native
    [int] for every integer dtype (U32 and I64 payloads exceed int32) —
    so the flat block transfers below move unboxed memory.  Aggregate
    dtypes always use boxed storage.  Semantics are identical either
    way, with one storage conversion: an F32 ring holds single
    precision, so stored floats round exactly as {!Value.round_f32}
    (in-tree F32 producers already round before writing). *)
val create : ?unboxed:bool -> name:string -> dtype:Dtype.t -> capacity:int -> unit -> t

val name : t -> string
val dtype : t -> Dtype.t
val capacity : t -> int

(** Registration must happen before the first [put]/[get] of the
    corresponding endpoint; the runtime wires all endpoints up front. *)

val add_consumer : t -> consumer
val add_producer : t -> producer

(** Endpoints registered so far: producers over the queue's lifetime
    (including finished ones) and attached consumers.  The runtime uses
    these to reject miswired edges before execution instead of hanging
    at run time. *)

val producers : t -> int
val consumers : t -> int

(** [seal q] ends the wiring phase: when the queue has exactly one
    registered producer and one consumer (and [spsc], default [true],
    permits it), subsequent transfers take a single-producer /
    single-consumer fast path — a plain head/tail ring where the lone
    consumer's cursor is the retirement point, skipping the broadcast
    minimum-cursor bookkeeping.  Semantics are identical to the MPMC
    path.  Registering any further endpoint after sealing falls back to
    the MPMC path transparently.  [~spsc:false] forces the MPMC path
    (equivalence baselines, benchmarks). *)
val seal : ?spsc:bool -> t -> unit

(** Whether the sealed queue is currently on the SPSC fast path. *)
val is_spsc : t -> bool

(** Whether the ring is bigarray-backed (see {!create}'s [unboxed]). *)
val is_unboxed : t -> bool

(** [reset q] restores the queue to its just-created-and-wired state:
    cursors and sequence numbers return to zero, buffered contents are
    discarded, every registered producer is reopened and the queue is
    unclosed.  The endpoint set (and therefore a sealed SPSC plan) is
    preserved — warm runtime instances reuse the queue without
    reallocating buffers, endpoints or the compiled validator.  Must not
    be called while fibers are parked on the queue (the waiter lists are
    dropped); the runtime resets only between runs. *)
val reset : t -> unit

(** Free slots from the producer side (capacity minus unretired
    elements).  Advisory: another fiber may change it; block writes
    re-check under their own blocking discipline. *)
val space : t -> int

(** Unretired elements currently buffered (capacity minus {!space}) —
    the per-net occupancy reported by stuck-graph post-mortems. *)
val occupancy : t -> int

(** [put p v] appends [v]; parks while the queue is full.  Raises
    [Invalid_argument] on dtype mismatch or put-after-done. *)
val put : producer -> Value.t -> unit

(** [get c] removes this consumer's next element; parks while none is
    available.  Raises {!Sched.End_of_stream} once the queue is closed and
    this consumer has drained it. *)
val get : consumer -> Value.t

(** {1 Block transfers}

    The block fast path: contiguous ring slices move with at most two
    [Array.blit]s per chunk, dtype validation uses the queue's
    precompiled checker ({!Value.compile_check}), and waiters are woken
    once per chunk rather than once per element.  Blocks larger than the
    queue capacity stream through in capacity-sized chunks.  Blocking and
    {!Sched.End_of_stream} behaviour match a loop of the scalar calls. *)

(** [get_block c n] reads exactly [n] consecutive elements (window
    transfer); parks until all [n] arrive.  Raises
    {!Sched.End_of_stream} if the queue closes before the block is
    complete (elements already consumed stay consumed, as with a scalar
    read loop). *)
val get_block : consumer -> int -> Value.t array

(** [put_block p vs] appends all of [vs] in order. *)
val put_block : producer -> Value.t array -> unit

(** [get_some c ~max] reads between 1 and [max] immediately-available
    consecutive elements, parking only while the queue is empty — the
    natural drain loop for sinks.  Raises {!Sched.End_of_stream} when
    closed and drained. *)
val get_some : consumer -> max:int -> Value.t array

(** {1 Unboxed block transfers}

    Flat-payload variants of the block operations: same blocking,
    chunking and {!Sched.End_of_stream} discipline, no {!Value.t} in
    the interface.  On bigarray storage both sides of the copy are
    unboxed (memcpy-class); on boxed storage they box/unbox per element
    with identical semantics.  Float transfers require a float-dtype
    net and integer transfers an integer-dtype net
    ([Invalid_argument] otherwise); integer payloads are range-checked
    against the dtype, and F32 nets round on store as {!Value.round_f32}. *)

val put_floats : producer -> float array -> unit
val get_floats : consumer -> int -> float array
val get_floats_some : consumer -> max:int -> float array
val put_ints : producer -> int array -> unit
val get_ints : consumer -> int -> int array
val get_ints_some : consumer -> max:int -> int array

(** Allocation-free drains: like the [get_*_some] variants but fill the
    caller's buffer (up to its length) and return the element count, so a
    steady-state consumer reuses one buffer instead of allocating per
    chunk. *)

val get_floats_into : consumer -> float array -> int
val get_ints_into : consumer -> int array -> int

(** Non-blocking probe: [Some v] without consuming, [None] when empty.
    Raises {!Sched.End_of_stream} when closed and drained. *)
val peek : consumer -> Value.t option

(** Mark one producer as finished.  The queue closes when all registered
    producers are done; parked consumers are woken to observe end of
    stream.  Idempotent. *)
val producer_done : producer -> unit

val is_closed : t -> bool

(** Elements written over the queue's lifetime (diagnostic/metric). *)
val total_put : t -> int

(** Elements this consumer still has buffered. *)
val available : consumer -> int

(** Compute kernel definitions.

    The OCaml analogue of the paper's [COMPUTE_KERNEL] macro (Section 3.3):
    a kernel is a named, realm-annotated function over typed I/O ports.
    Port metadata (direction, dtype, settings) is carried explicitly —
    the role the generated C++ class and its type traits play in cgsim.

    A kernel body receives a {!binding} of runtime endpoints; bodies are
    written as infinite loops over stream operations and terminate via
    {!Sched.End_of_stream} when their inputs drain (or run once per window
    for buffer-port kernels). *)

(** Target hardware realm (Section 4.3).  [Aie] kernels are extracted to
    the AI Engine array; [Noextract] kernels stay in the host application;
    [Pl] marks the programmable-logic/HLS realm the paper lists as future
    work (partitioning supports it; code generation rejects it). *)
type realm =
  | Aie
  | Noextract
  | Pl

val realm_to_string : realm -> string
val realm_of_string : string -> realm option
val equal_realm : realm -> realm -> bool

type dir =
  | In
  | Out

type port_spec = {
  pname : string;
  dir : dir;
  dtype : Dtype.t;
  settings : Settings.t;
}

(** Endpoints bound positionally to the kernel's ports: [readers] holds
    the [In] ports in declaration order, [writers] the [Out] ports. *)
type binding = {
  readers : Port.reader array;
  writers : Port.writer array;
}

type body = binding -> unit

(** Whether the kernel body is safe to run on several graph instances at
    once.  [Pure] bodies keep all mutable state inside the body closure
    (created fresh per instantiation); [Stateful] bodies capture shared
    mutable state, so concurrent {!Pool} serving or even back-to-back
    runs may observe cross-request interference.  [Unknown] is the
    default for kernels that never declared themselves. *)
type purity =
  | Pure
  | Stateful
  | Unknown

val purity_to_string : purity -> string

type t = {
  name : string;
  realm : realm;
  ports : port_spec array;
  body : body;
  rates : int array option;
      (** Beats produced/consumed per steady-state firing, positionally
          aligned with [ports]; [None] when undeclared.  Consumed by the
          static analyzer's SDF balance and deadlock passes. *)
  purity : purity;
  stateless : bool;
      (** Whether the body carries no memory {e across} inputs within one
          run — its output for a concatenation of streams is the
          concatenation of its per-stream outputs.  Strictly stronger
          than [purity = Pure] (which only rules out state shared
          {e between} instances): a filter with a local delay line is
          [Pure] but not stateless.  Gates {!Pool} request batching. *)
}

(** [define ~realm ~name ports body] validates the port list (non-empty
    names, unique names, at least one port) and builds a kernel.

    [rates] declares per-port beats per firing by port name (every name
    must exist, every rate must be non-negative; RTP ports conventionally
    declare [0]).  [pure] declares pool-safety: [~pure:true] promises the
    body keeps all mutable state local, [~pure:false] flags shared
    mutable state.  [stateless] additionally promises no memory across
    inputs within a run (concatenation-safe; requires [~pure:true],
    [Invalid_argument] otherwise).  Omitting any leaves the metadata
    undeclared. *)
val define :
  ?rates:(string * int) list ->
  ?pure:bool ->
  ?stateless:bool ->
  realm:realm ->
  name:string ->
  port_spec list ->
  body ->
  t

(** Declared rate of a port (by index into [ports]); [None] when the
    kernel declared no rates. *)
val rate : t -> int -> int option

(** Port-spec constructors. *)

val in_port : ?settings:Settings.t -> string -> Dtype.t -> port_spec
val out_port : ?settings:Settings.t -> string -> Dtype.t -> port_spec

(** Indexing helpers for bodies. *)

val rd : binding -> int -> Port.reader
val wr : binding -> int -> Port.writer

val in_ports : t -> port_spec list
val out_ports : t -> port_spec list

(** Index of a port among ports of its own direction, as used by
    {!binding}; [None] if the name is unknown. *)
val directional_index : t -> string -> (dir * int) option

val pp : Format.formatter -> t -> unit

open Effect
open Effect.Deep

exception Terminated
exception End_of_stream

type task = {
  name : string;
  prof_key : string;  (* "kernel.self_ns:<name>", precomputed so the
                         per-slice profiler observe never allocates *)
  mutable gen : int;  (* park generation; wakers from older parks are stale *)
  mutable state : task_state;
}

and task_state =
  | Initial of (unit -> unit)
  | Running
  | Parked of (unit, unit) continuation
  | Ready of (unit, unit) continuation
  | Finished

type waker = {
  w_task : task;
  w_gen : int;
  w_sched : t;
}

and t = {
  ready : task Queue.t;
  mutable tasks : task list;  (* reverse spawn order *)
  mutable spawned : int;
  mutable completed : int;
  mutable cancelled : int;
  mutable failed : (string * exn) list;
  mutable slices : int;
  mutable kernel_ns : float;
  mutable in_run : bool;
  mutable n_parked : int;  (* tasks currently in [Parked _] *)
  mutable stop : stop_reason option;  (* cooperative cancel token *)
  mutable stop_info : stop option;  (* snapshot taken when [stop] was set *)
  mutable last_ran : string option;  (* last task that executed a slice *)
}

and stop_reason =
  | Cancel_requested
  | Deadline
  | Out_of_fuel

and stop = {
  reason : stop_reason;
  parked : string list;  (* parked fibers at stop detection, spawn order *)
  last_task : string option;
  stop_slices : int;
}

type stats = {
  spawned : int;
  completed : int;
  cancelled : int;
  failed : (string * exn) list;
  slices : int;
  kernel_ns : float;
  total_ns : float;
  stopped : stop option;
}

let stop_reason_to_string = function
  | Cancel_requested -> "cancelled"
  | Deadline -> "deadline"
  | Out_of_fuel -> "max-steps"

let kernel_fraction s = if s.total_ns <= 0.0 then 0.0 else s.kernel_ns /. s.total_ns

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>spawned=%d completed=%d cancelled=%d failed=%d@ slices=%d kernel=%.3fms total=%.3fms \
     kernel-fraction=%.4f%s@]"
    s.spawned s.completed s.cancelled (List.length s.failed) s.slices (s.kernel_ns /. 1e6)
    (s.total_ns /. 1e6) (kernel_fraction s)
    (match s.stopped with
     | None -> ""
     | Some st -> Printf.sprintf " stopped=%s" (stop_reason_to_string st.reason))

let create () =
  {
    ready = Queue.create ();
    tasks = [];
    spawned = 0;
    completed = 0;
    cancelled = 0;
    failed = [];
    slices = 0;
    kernel_ns = 0.0;
    in_run = false;
    n_parked = 0;
    stop = None;
    stop_info = None;
    last_ran = None;
  }

type _ Effect.t +=
  | Park_eff : (waker -> unit) -> unit Effect.t
  | Yield_eff : unit Effect.t

(* The current scheduler for the running fiber.  Each scheduler instance
   is single-threaded by design (Section 5.2 discusses this trade-off),
   but the domain pool (Pool) runs one independent scheduler per domain,
   so the slot is domain-local rather than a plain global; x86sim uses OS
   threads and never goes through this module. *)
let current_key : (t * task) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = Domain.DLS.get current_key

let current_name () =
  match !(current ()) with
  | Some (_, task) -> task.name
  | None -> "<host>"

(* The single clock shared with the observability layer: scheduler stats
   and exported obs spans must agree on what "now" means. *)
let now_ns = Obs.Clock.now_ns

let spawn ?prof_key (t : t) ~name fn =
  let prof_key =
    match prof_key with Some k -> k | None -> Obs.Profile.prefix ^ name
  in
  let task = { name; prof_key; gen = 0; state = Initial fn } in
  t.spawned <- t.spawned + 1;
  t.tasks <- task :: t.tasks;
  Queue.push task t.ready

(* Restore a scheduler to its freshly-[create]d state so a warm runtime
   instance can respawn its fibers without reallocating the scheduler.
   All fibers must already be finished (every [run] drives the task set
   to quiescence or terminates it), so dropping the task list loses no
   live continuation. *)
let reset (t : t) =
  if t.in_run then invalid_arg "cgsim: Sched.reset called during run";
  Queue.clear t.ready;
  t.tasks <- [];
  t.spawned <- 0;
  t.completed <- 0;
  t.cancelled <- 0;
  t.failed <- [];
  t.slices <- 0;
  t.kernel_ns <- 0.0;
  t.n_parked <- 0;
  t.stop <- None;
  t.stop_info <- None;
  t.last_ran <- None

(* Suspension points double as the cancellation checkpoints: once the
   scheduler's stop token is set, a fiber reaching any park/yield boundary
   is terminated instead of suspended, so cancellation cascades cannot
   re-park and the stop is guaranteed to drain (only a fiber that never
   suspends can outlive it). *)
let yield () =
  match !(current ()) with
  | Some (t, _) -> if t.stop <> None then raise Terminated else perform Yield_eff
  | None -> ()

let park register =
  match !(current ()) with
  | Some (t, _) ->
    if t.stop <> None then raise Terminated else perform (Park_eff register)
  | None -> invalid_arg "cgsim: Sched.park called outside of a running fiber"

let wake w =
  let task = w.w_task in
  match task.state with
  | Parked k when task.gen = w.w_gen ->
    task.state <- Ready k;
    w.w_sched.n_parked <- w.w_sched.n_parked - 1;
    Obs.Flight.note Obs.Flight.Wake task.name;
    if !Obs.Trace.on then begin
      Obs.Trace.instant ~track:task.name ~cat:"sched" "wake";
      Obs.Trace.incr_metric "sched.wakes"
    end;
    Queue.push task w.w_sched.ready
  | Parked _ | Initial _ | Running | Ready _ | Finished -> ()

(* Batched wake: one pass over the waiter list and a single metric update,
   instead of re-entering the per-waker bookkeeping for every entry.
   Stale wakers (task re-parked under a newer generation, already ready,
   or finished) are skipped exactly as in [wake]. *)
let wake_batch ws =
  let traced = !Obs.Trace.on in
  let woken = ref 0 in
  List.iter
    (fun w ->
      let task = w.w_task in
      match task.state with
      | Parked k when task.gen = w.w_gen ->
        task.state <- Ready k;
        w.w_sched.n_parked <- w.w_sched.n_parked - 1;
        incr woken;
        if traced then Obs.Trace.instant ~track:task.name ~cat:"sched" "wake";
        Queue.push task w.w_sched.ready
      | Parked _ | Initial _ | Running | Ready _ | Finished -> ())
    ws;
  if traced && !woken > 0 then Obs.Trace.add_metric "sched.wakes" (float_of_int !woken)

let parked_tasks (t : t) =
  List.filter
    (fun task -> match task.state with Parked _ -> true | _ -> false)
    (List.rev t.tasks)

(* O(1): maintained at every park/wake/cancel transition; the scheduling
   loop consults this on each idle check, so a fold over all tasks there
   would be O(tasks) per drained ready-queue. *)
let parked_count t = t.n_parked

let parked_names t = List.map (fun task -> task.name) (parked_tasks t)

(* First stop wins; the snapshot is taken here, before any fiber is torn
   down, so post-mortems see the graph as it was when progress ended. *)
let set_stop t reason =
  if t.stop = None then begin
    t.stop <- Some reason;
    t.stop_info <-
      Some { reason; parked = parked_names t; last_task = t.last_ran; stop_slices = t.slices };
    Obs.Flight.note Obs.Flight.Stop (stop_reason_to_string reason);
    if !Obs.Trace.on then begin
      Obs.Trace.instant ~track:"<scheduler>" ~cat:"sched" (stop_reason_to_string reason);
      Obs.Trace.incr_metric "sched.cancel"
    end
  end

let cancel t = set_stop t Cancel_requested

let cancel_requested t = t.stop <> None

(* Handler installed around every fiber body.  Park and Yield capture the
   one-shot continuation and stash it on the task record. *)
let fiber_handler (t : t) (task : task) : (unit, unit) handler =
  let finish outcome =
    task.state <- Finished;
    match outcome with
    | `Completed -> t.completed <- t.completed + 1
    | `Cancelled -> t.cancelled <- t.cancelled + 1
    | `Failed e -> t.failed <- (task.name, e) :: t.failed
  in
  {
    retc = (fun () -> finish `Completed);
    exnc =
      (fun e ->
        match e with
        | End_of_stream -> finish `Completed
        | Terminated -> finish `Cancelled
        | e -> finish (`Failed e));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Park_eff register ->
          Some
            (fun (k : (a, unit) continuation) ->
              task.gen <- task.gen + 1;
              task.state <- Parked k;
              t.n_parked <- t.n_parked + 1;
              Obs.Flight.note Obs.Flight.Park task.name;
              if !Obs.Trace.on then begin
                Obs.Trace.instant ~track:task.name ~cat:"sched" "park";
                Obs.Trace.incr_metric "sched.parks"
              end;
              register { w_task = task; w_gen = task.gen; w_sched = t })
        | Yield_eff ->
          Some
            (fun (k : (a, unit) continuation) ->
              task.state <- Ready k;
              Queue.push task t.ready)
        | _ -> None);
  }

let run_slice (t : t) (task : task) =
  let resume () =
    match task.state with
    | Initial fn ->
      task.state <- Running;
      match_with fn () (fiber_handler t task)
    | Ready k ->
      task.state <- Running;
      continue k ()
    | Running | Parked _ | Finished ->
      (* A task can be enqueued at most once per ready transition; other
         states mean a stale queue entry (e.g. woken then cancelled). *)
      ()
  in
  let slot = current () in
  let saved = !slot in
  slot := Some (t, task);
  let t0 = now_ns () in
  resume ();
  let t1 = now_ns () in
  t.kernel_ns <- t.kernel_ns +. (t1 -. t0);
  t.slices <- t.slices + 1;
  t.last_ran <- Some task.name;
  Obs.Flight.note_at ~ts:t1 Obs.Flight.Slice ~arg:(t1 -. t0) task.name;
  if !Obs.Trace.on then begin
    (* The span duration is exactly what was added to kernel_ns, so the
       exported trace and Sched.stats stay mutually consistent. *)
    Obs.Trace.span ~track:task.name ~cat:"sched" ~name:"slice" ~ts_ns:t0 ~dur_ns:(t1 -. t0) ();
    Obs.Trace.observe_ns "sched.slice_ns" (t1 -. t0);
    (* Per-kernel self time: the same slice duration keyed by kernel, so
       Obs.Profile can render a sorted profile and collapsed stacks. *)
    Obs.Trace.observe_ns task.prof_key (t1 -. t0)
  end;
  slot := saved

let cancel_parked t =
  (* End-of-run cleanup (Section 3.8): terminate fibers that can no longer
     make progress so their cleanup code runs.  Cancellation may ready new
     work (e.g. a cancelled producer closing a stream wakes a consumer), so
     the caller loops back into the main schedule afterwards. *)
  List.iter
    (fun task ->
      match task.state with
      | Parked k ->
        task.state <- Running;
        t.n_parked <- t.n_parked - 1;
        let slot = current () in
        let saved = !slot in
        slot := Some (t, task);
        (* discontinue runs under the handler captured at fiber start *)
        (try discontinue k Terminated with Terminated -> ());
        slot := saved;
        (match task.state with
         | Running -> task.state <- Finished
         | Initial _ | Parked _ | Ready _ | Finished -> ())
      | Initial _ | Running | Ready _ | Finished -> ())
    (parked_tasks t)

(* Forced teardown after a stop: discontinue every live fiber with
   {!Terminated} so cleanup code runs.  Because park/yield raise once the
   stop token is set, no fiber can re-suspend, so each pass strictly
   shrinks the live set and the loop terminates. *)
let terminate_all (t : t) =
  let discontinue_ready task =
    match task.state with
    | Ready k ->
      task.state <- Running;
      let slot = current () in
      let saved = !slot in
      slot := Some (t, task);
      (try discontinue k Terminated with Terminated -> ());
      slot := saved;
      (match task.state with
       | Running -> task.state <- Finished
       | Initial _ | Parked _ | Ready _ | Finished -> ())
    | Initial _ ->
      (* Never started: no cleanup to run, just account for it. *)
      task.state <- Finished;
      t.cancelled <- t.cancelled + 1
    | Running | Parked _ | Finished -> ()
  in
  let rec pass () =
    match Queue.take_opt t.ready with
    | Some task ->
      discontinue_ready task;
      pass ()
    | None ->
      List.iter discontinue_ready
        (List.filter
           (fun task -> match task.state with Ready _ | Initial _ -> true | _ -> false)
           t.tasks);
      if parked_count t > 0 then begin
        cancel_parked t;
        pass ()
      end
      else if not (Queue.is_empty t.ready) then pass ()
  in
  pass ()

let run ?deadline_ns ?max_steps (t : t) =
  if t.in_run then invalid_arg "cgsim: Sched.run is not reentrant";
  t.in_run <- true;
  let t0 = now_ns () in
  let deadline_abs = Option.map (fun d -> t0 +. d) deadline_ns in
  (* Budget checks run between slices — the park/wake boundary of whichever
     fiber is about to be scheduled — so a stop is detected after at most
     one further slice of execution. *)
  let check_budget () =
    if t.stop = None then begin
      (match deadline_abs with
       | Some d when now_ns () > d -> set_stop t Deadline
       | Some _ | None -> ());
      match max_steps with
      | Some m when t.stop = None && t.slices >= m -> set_stop t Out_of_fuel
      | Some _ | None -> ()
    end
  in
  let rec drive () =
    check_budget ();
    if t.stop = None then begin
      match Queue.take_opt t.ready with
      | Some task ->
        run_slice t task;
        drive ()
      | None ->
        if parked_count t > 0 then begin
          cancel_parked t;
          if not (Queue.is_empty t.ready) then drive ()
        end
    end
  in
  drive ();
  if t.stop <> None then terminate_all t;
  t.in_run <- false;
  let total_ns = now_ns () -. t0 in
  if !Obs.Trace.on then
    Obs.Trace.span ~track:"<scheduler>" ~cat:"sched" ~name:"run" ~ts_ns:t0 ~dur_ns:total_ns ();
  {
    spawned = t.spawned;
    completed = t.completed;
    cancelled = t.cancelled;
    failed = List.rev t.failed;
    slices = t.slices;
    kernel_ns = t.kernel_ns;
    total_ns;
    stopped = t.stop_info;
  }

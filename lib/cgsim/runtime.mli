(** Runtime graph instantiation and execution.

    The deserializer and [RuntimeContext] of Sections 3.6–3.8: it takes
    the flattened {!Serialized.t} produced at construction time and
    reconstructs a live graph — one {!Bqueue} per net, one fiber per
    kernel instance (resolved through {!Registry}), plus source and sink
    fibers on the global I/O nets — then drives the cooperative scheduler
    until no fiber can continue.

    Each instantiation is one execution instance; contexts are
    single-shot (build a fresh one per run, as cgsim does). *)

type t

exception Runtime_error of string

(** Pre-flight lint behaviour of {!run}: [`Off] skips the analysis,
    [`Warn] (the default) prints warning/error findings to stderr and
    proceeds, [`Error] refuses to run a graph with error-level findings
    (raising {!Runtime_error} before any kernel body executes). *)
type lint_level =
  [ `Off
  | `Warn
  | `Error
  ]

(** Install the static analyzer used by {!run}'s pre-flight.  The
    [analysis] library installs {!Analysis.Lint.run} here when it is
    linked; without a hook the pre-flight is a no-op.  (Dependency
    injection: cgsim cannot depend on the analyzer directly.) *)
val set_lint_hook : (Serialized.t -> Diagnostic.t list) -> unit

(** Run the installed lint hook on a graph at the given level without
    instantiating it — the entry {!run} uses for its pre-flight, exposed
    for components (e.g. {!Pool}) that execute one graph many times and
    want to lint it once. *)
val preflight : lint:lint_level -> Serialized.t -> unit

(** Hooks letting a simulator intercept every kernel-port access without
    changing kernel code — the mechanism aiesim uses to count stream
    traffic and attribute cycle costs per endpoint. *)
type wrap_hooks = {
  wrap_reader : Serialized.kernel_inst -> int -> Port.reader -> Port.reader;
      (** [wrap_reader inst port_idx r]; [port_idx] indexes [inst.ports]. *)
  wrap_writer : Serialized.kernel_inst -> int -> Port.writer -> Port.writer;
  around_body : Serialized.kernel_inst -> (unit -> unit) -> unit -> unit;
      (** Wraps the whole kernel body invocation. *)
}

val no_hooks : wrap_hooks

(** [compose_hooks outer inner] nests hook layers: readers/writers are
    wrapped by [inner] first, then [outer]; bodies likewise. *)
val compose_hooks : wrap_hooks -> wrap_hooks -> wrap_hooks

(** The observability hooks (per-port element counters, kernel body
    lifecycle instants into the active {!Obs.Trace} session).  They are
    installed automatically by {!instantiate} whenever a trace session
    is active; exposed for simulators that build bindings themselves. *)
val obs_hooks : unit -> wrap_hooks

(** [instantiate g] reconstructs the graph.  Queue capacities derive from
    each net's resolved settings unless [queue_capacity] overrides them
    all.  [block_io] (default [true]) selects the block-transfer fast
    path for kernel ports and I/O fibers; with [~block_io:false] every
    block access degrades to a per-element loop — semantically identical,
    useful as an equivalence baseline.  [spsc] (default [true]) lets
    edges with exactly one producer and one consumer take {!Bqueue}'s
    SPSC fast path once wiring completes; [~spsc:false] keeps every edge
    on the broadcast MPMC path (the equivalence baseline for the fast
    path).  Raises {!Runtime_error} when a kernel key is missing from
    the registry or the serialized form is invalid. *)
val instantiate :
  ?hooks:wrap_hooks -> ?queue_capacity:int -> ?block_io:bool -> ?spsc:bool -> Serialized.t -> t

(** [run t ~sources ~sinks] attaches positional sources to the graph's
    global inputs and sinks to its global outputs (counts must match;
    {!Runtime_error} otherwise), verifies that every net ends up with at
    least one producer and one consumer (raising {!Runtime_error} naming
    the offending net and its kernel ports — a miswired edge used to
    hang silently at run time), then executes.  Returns scheduler
    statistics.  If any kernel fiber failed with an unexpected exception,
    the first failure is re-raised after the run completes.

    [lint] (default [`Warn]) runs the installed static-analysis hook
    before execution; see {!lint_level}. *)
val run : ?lint:lint_level -> t -> sources:Io.source list -> sinks:Io.sink list -> Sched.stats

(** Convenience: instantiate + run in one step. *)
val execute :
  ?hooks:wrap_hooks ->
  ?queue_capacity:int ->
  ?block_io:bool ->
  ?spsc:bool ->
  ?lint:lint_level ->
  Serialized.t ->
  sources:Io.source list ->
  sinks:Io.sink list ->
  Sched.stats

val graph : t -> Serialized.t

(** Total elements that crossed each net during the last run, indexed by
    net id (diagnostics and bench reporting). *)
val net_traffic : t -> int array

(** Runtime graph instantiation and execution.

    The deserializer and [RuntimeContext] of Sections 3.6–3.8: it takes
    the flattened {!Serialized.t} produced at construction time and
    reconstructs a live graph — one {!Bqueue} per net, one fiber per
    kernel instance (resolved through {!Registry}), plus source and sink
    fibers on the global I/O nets — then drives the cooperative scheduler
    until no fiber can continue, the configured deadline or step budget
    expires, a kernel fails, or the run is cancelled.

    Execution knobs are carried by a {!Run_config.t}; {!run} returns a
    structured {!outcome} instead of raising on failure.  Use
    {!run_exn}/{!execute_exn} for the raising convenience.

    The lifecycle is split between an immutable {!compiled} graph
    (validation, registry resolution, queue capacities, profiler keys,
    purity, lint verdict — everything derivable from the
    {!Serialized.t} + {!Run_config.t} pair alone) and cheap per-request
    instances: {!new_instance} builds one, a run uses it, and {!reset}
    restores it to pristine without reallocation so warm serving reuses
    queues, endpoints and the sealed SPSC plan.  {!instantiate} remains
    the one-shot convenience (compile + new instance). *)

type t

(** An immutable compiled graph: share freely, build instances from it. *)
type compiled

exception Runtime_error of string

(** Pre-flight lint behaviour, re-exported from {!Run_config}: [`Off]
    skips the analysis, [`Warn] (the default) prints warning/error
    findings to stderr and proceeds, [`Error] refuses to run a graph
    with error-level findings (raising {!Runtime_error} before any
    kernel body executes). *)
type lint_level = Run_config.lint_level

(** Install the static analyzer used by {!run}'s pre-flight.  The
    [analysis] library installs [Analysis.Lint.run] here when it is
    linked; without a hook the pre-flight is a no-op.  (Dependency
    injection: cgsim cannot depend on the analyzer directly.) *)
val set_lint_hook : (Serialized.t -> Diagnostic.t list) -> unit

(** Run the installed lint hook on a graph at the given level without
    instantiating it — the entry {!run} uses for its pre-flight, exposed
    for components (e.g. {!Pool}) that execute one graph many times and
    want to lint it once. *)
val preflight : lint:lint_level -> Serialized.t -> unit

(** Install the operator-fusion analysis used by {!compile} when
    [Run_config.fuse] is on.  The hook proposes chains of kernel indices
    (upstream first) that are rate-matched and connected by exclusive
    SPSC nets; the runtime re-validates each proposal structurally —
    consecutive members joined by exactly one non-global
    single-writer/single-reader net, non-tail members with that edge as
    their only output, non-head members with it as their only input —
    and silently drops chains that fail, falling back to queued
    execution.  Accepted chains run as one fiber with direct hand-off
    edges ({!Fused}) in place of queues.  Installed by the [analysis]
    library at link time ([Analysis.Fusion.chains]); without a hook
    nothing fuses. *)
val set_fusion_hook : (Serialized.t -> int list list) -> unit

(** Install the capacity-synthesis analysis used by {!compile} when
    [Run_config.auto_capacity] is on.  The hook maps a graph to
    [(net_id, minimal deadlock-free depth)] suggestions; the runtime
    raises each suggested net's queue capacity to the suggested depth
    (never lowers one, so deliberately over-sized queues are left
    alone).  Installed by the [analysis] library at link time
    ([Analysis.Capacity.suggest]); without a hook, [auto_capacity] is a
    no-op. *)
val set_capacity_hook : (Serialized.t -> (int * int) list) -> unit

(** Hooks letting a simulator intercept every kernel-port access without
    changing kernel code — the mechanism aiesim uses to count stream
    traffic and attribute cycle costs per endpoint.  The type is an
    equation over {!Hooks.t}, so record construction through either
    path is interchangeable. *)
type wrap_hooks = Hooks.t = {
  wrap_reader : Serialized.kernel_inst -> int -> Port.reader -> Port.reader;
      (** [wrap_reader inst port_idx r]; [port_idx] indexes [inst.ports]. *)
  wrap_writer : Serialized.kernel_inst -> int -> Port.writer -> Port.writer;
  around_body : Serialized.kernel_inst -> (unit -> unit) -> unit -> unit;
      (** Wraps the whole kernel body invocation. *)
}

val no_hooks : wrap_hooks

(** [compose_hooks outer inner] nests hook layers: readers/writers are
    wrapped by [inner] first, then [outer]; bodies likewise. *)
val compose_hooks : wrap_hooks -> wrap_hooks -> wrap_hooks

(** The observability hooks (per-port element counters, kernel body
    lifecycle instants into the active {!Obs.Trace} session).  They are
    installed automatically by {!instantiate} whenever a trace session
    is active; exposed for simulators that build bindings themselves. *)
val obs_hooks : unit -> wrap_hooks

(** {1 Structured outcomes} *)

(** A kernel body raised: who, what, where. *)
type failure = {
  f_graph : string;  (** Graph name. *)
  f_kernel : string;  (** Fiber name (kernel instance, source or sink). *)
  f_exn : exn;
  f_backtrace : string;  (** Empty when backtrace recording is off. *)
  f_src : Srcspan.t option;  (** Construction-site span, when known. *)
  f_flight : Obs.Flight.entry list;
      (** Flight-recorder window from the failing domain (oldest first):
          the last {!Obs.Flight.capacity} scheduler/pool events leading
          up to the failure.  Captured whether or not tracing is on. *)
}

(** Post-mortem snapshot of a run stopped by deadline or fuel: which
    fibers were parked (blocked on queue I/O), how many unretired
    elements each net held, and the last fiber that advanced — enough to
    tell a stalled pipeline from a busy-divergent kernel. *)
type progress = {
  p_graph : string;
  p_reason : [ `Wall_clock | `Max_steps ];
  p_parked : string list;
  p_occupancy : (string * int) list;  (** (net name, unretired elements) *)
  p_last_kernel : string option;
  p_stats : Sched.stats;
  p_flight : Obs.Flight.entry list;  (** As {!failure.f_flight}. *)
}

type outcome =
  | Completed of Sched.stats
  | Deadline_exceeded of progress
  | Cancelled  (** {!cancel} (or [Sched.cancel]) was called mid-run. *)
  | Kernel_failed of failure

(** Stable one-word label: ["completed"], ["deadline"], ["max-steps"],
    ["cancelled"], ["failed"] — used as metric/JSON keys. *)
val outcome_label : outcome -> string

val failure_message : failure -> string
val progress_message : progress -> string
val pp_outcome : Format.formatter -> outcome -> unit

(** [Completed stats] returns [stats]; every other outcome raises
    {!Runtime_error} with the corresponding message. *)
val stats_exn : outcome -> Sched.stats

(** [instantiate g] reconstructs the graph under [config] (default
    {!Run_config.default}).  Queue capacities derive from each net's
    resolved settings unless [config.queue_capacity] overrides them all;
    [config.block_io]/[config.spsc] select the block-transfer and SPSC
    fast paths (with [false], semantically identical slow paths — the
    equivalence baselines).  [config.hooks] are installed around every
    kernel port and body; [config.faults] wraps innermost.  Raises
    {!Runtime_error} when a kernel key is missing from the registry or
    the serialized form is invalid. *)
val instantiate : ?config:Run_config.t -> Serialized.t -> t

(** {1 Compile-once serving}

    [compile g] does the per-graph work once: validation, registry
    resolution, per-net queue-capacity resolution, profiler-key
    precomputation, the purity check that gates request batching, and
    the pre-flight lint at [config.lint] — the verdict is part of the
    artifact, so instances built from it (and their resets) never
    re-lint.  Raises exactly as {!instantiate} would on an invalid
    graph, and as {!run}'s pre-flight would at [`Error]. *)
val compile : ?config:Run_config.t -> Serialized.t -> compiled

val compiled_graph : compiled -> Serialized.t

val compiled_config : compiled -> Run_config.t

(** Whether every kernel body is declared [Pure] ({!Kernel.define}'s
    [?pure:true]) — the property concurrent {!Pool} serving relies on. *)
val compiled_pure : compiled -> bool

(** Whether every kernel is additionally declared [stateless]
    (concatenation-safe: no memory across inputs within a run) — the
    gate for pumping several requests through one warm run.  Implies
    {!compiled_pure}. *)
val compiled_batchable : compiled -> bool

(** The fusion chains this artifact will execute, as kernel indices into
    the graph's kernel array, upstream first — empty when fusion is off
    ([Run_config.fuse = false]), no fusion hook is linked, or no chain
    qualified.  Exposed for tests and bench reporting. *)
val compiled_chains : compiled -> int array array

(** [new_instance c] builds the per-request state: queues at the
    compiled capacities, all kernel and global-I/O endpoints registered
    (so endpoint counts are static and the SPSC seal survives resets),
    wiring verified and queues sealed.  The instance is ready for one
    {!run}; {!reset} readies it for the next. *)
val new_instance : compiled -> t

(** [reset t] restores a used instance to its just-built state without
    reallocating: ring cursors and sequence numbers return to zero,
    producers reopen, the scheduler empties and the failure slot clears,
    while the endpoint set, sealed SPSC plan and lint verdict are
    preserved.  Works after any outcome, including [Kernel_failed] and
    [Deadline_exceeded] (every run drives remaining fibers to
    termination first).  Must not be called while {!run} is in progress
    (raises [Invalid_argument]). *)
val reset : t -> unit

(** [run t ~sources ~sinks] attaches positional sources to the graph's
    global inputs and sinks to its global outputs (counts must match;
    {!Runtime_error} otherwise), verifies that every net ends up with at
    least one producer and one consumer (raising {!Runtime_error} naming
    the offending net and its kernel ports — a miswired edge used to
    hang silently at run time), then executes under the context's
    {!Run_config.t}: the configured wall-clock deadline and step budget
    are enforced at every scheduling boundary, and a kernel failure is
    captured with its backtrace and source span rather than escaping.

    Wiring errors (wrong source/sink counts, miswired nets, failed
    [`Error]-level pre-flight) still raise — those are caller bugs, not
    run outcomes. *)
val run : t -> sources:Io.source list -> sinks:Io.sink list -> outcome

(** {!run} then {!stats_exn}: raises {!Runtime_error} on any outcome
    other than [Completed]. *)
val run_exn : t -> sources:Io.source list -> sinks:Io.sink list -> Sched.stats

(** Convenience: instantiate + run in one step. *)
val execute :
  ?config:Run_config.t -> Serialized.t -> sources:Io.source list -> sinks:Io.sink list -> outcome

val execute_exn :
  ?config:Run_config.t ->
  Serialized.t ->
  sources:Io.source list ->
  sinks:Io.sink list ->
  Sched.stats

(** Request cooperative cancellation of a run in progress (thread-safe;
    callable from another domain or from inside a hook).  The run winds
    down at the next scheduling boundary and {!run} returns [Cancelled]. *)
val cancel : t -> unit

val graph : t -> Serialized.t

val config : t -> Run_config.t

(** Total elements that crossed each net during the last run, indexed by
    net id (diagnostics and bench reporting). *)
val net_traffic : t -> int array

(** Parallel request serving over independent graph instances, with
    per-request supervision.

    One serialized graph, N requests, D OCaml domains: each request gets
    its own {!Runtime} instance (instances share no mutable state), so
    whole-graph simulations can run in parallel even though each
    individual instance is cooperatively scheduled on a single domain.
    This is the "many independent simulations" serving model — parameter
    sweeps, regression batteries, request services — rather than
    intra-graph parallelism.

    {b Warm serving} (default, [config.warm]): the graph is
    {!Runtime.compile}d once — validation, registry resolution and the
    pre-flight lint verdict live in a bounded process-wide cache keyed
    by graph identity + config compatibility (LRU-evicted; see
    {!clear_warm_cache}) — and served requests draw {!Runtime.reset}
    instances from the entry's idle pool instead of rebuilding queues
    and wiring per attempt.  An instance whose reset fails is dropped.
    [config.warm = false] forces the cold path: a fresh instance per
    attempt (still compiled once per {!run}).

    {b Batching} ([config.batch] > 1): when the compiled graph is
    provably batchable (every kernel declared [~pure:true] {e and}
    [~stateless:true] — purity alone admits local delay lines, which
    concatenation would corrupt), the run is closed-loop and no
    fault plan is installed, a domain pops up to [batch] of its own
    requests at once, concatenates their per-slot inputs
    ({!Io.concat}), pumps them through one warm run and demultiplexes
    the outputs by even split.  Requests with unknown or mismatched
    input lengths, non-[Completed] batch outcomes or outputs not
    divisible by the batch size fall back to individual execution —
    batching is a fast path, never a semantic change.  Stolen requests
    are never batched.

    Requests are distributed round-robin across per-domain work deques;
    a domain that drains its own deque steals from the others (owner
    pops one end, thieves take the other), so skewed request costs still
    balance.  With [~domains:1] execution order is exactly the seeded
    order, making single-domain runs deterministic and comparable to a
    sequential loop.

    Supervision, per request, driven by the {!Run_config.t}:

    - a kernel failure or deadline hit is retried up to
      [config.retries] times, sleeping a decorrelated-jitter backoff
      (seeded by [config.seed] and the request id — deterministic)
      between attempts;
    - after [config.breaker_threshold] consecutive requests whose final
      outcome was still a failure/deadline, the circuit opens and every
      not-yet-started request is shed without executing (the classic
      load-shedding breaker); successes reset the count;
    - the per-attempt deadline, fault plan, hooks and queue knobs come
      from the same config, passed to {!Runtime.instantiate} verbatim.

    Observability is two-tier.  Always on (tracing or not): request
    latencies are recorded into per-domain {!Obs.Hdr} histograms and
    merged into [stats.metrics] at join, alongside outcome counters —
    {!metrics_exposition} renders them as Prometheus text; the flight
    recorder window of the domain that opens the circuit breaker is
    kept in [stats.breaker_flight].  Additionally, when an {!Obs.Trace}
    session is active, each attempt is a span on a per-domain track
    (pid 3), and the pool emits [pool.request] timings plus
    [pool.retry], [pool.deadline], [pool.shed] and
    [pool.outcome.<label>] counters into the session. *)

type request_result = {
  req_id : int;
  domain : int;  (** Domain that executed (or shed) the request. *)
  stolen : bool;  (** Executed by a thief rather than its seeded owner. *)
  outcome : Runtime.outcome;  (** Final outcome, after retries. *)
  attempts : int;  (** Executions performed; 0 when shed. *)
  shed : bool;  (** Refused by the open circuit breaker. *)
  req_wall_ns : float;  (** Wall time across all attempts and backoffs. *)
  req_latency_ns : float;
      (** Closed loop: service time (= [req_wall_ns]).  Open loop ([run]
          with [~arrivals]): completion minus scheduled arrival, i.e.
          queue wait included — the latency a client would see. *)
}

type outcome_counts = {
  n_completed : int;
  n_deadline : int;
  n_cancelled : int;
  n_failed : int;
  n_shed : int;
  n_retried_ok : int;  (** Completed, but only on a retry attempt. *)
}

type stats = {
  domains : int;
  requests : int;
  results : request_result array;  (** Indexed by request id. *)
  steals : int;  (** Requests executed by a non-owner domain. *)
  retries : int;  (** Retry attempts across all requests. *)
  warm_hits : int;  (** Attempts served by a reused (reset) instance. *)
  cold_builds : int;  (** Attempts that built a fresh instance. *)
  batched : int;  (** Requests served through a multiplexed batch run. *)
  breaker_tripped : bool;  (** The circuit opened at least once. *)
  counts : outcome_counts;
  wall_ns : float;  (** Whole-pool wall time, spawn to last join. *)
  metrics : Obs.Metrics.snapshot;
      (** Always-on pool metrics: the ["pool.request"] latency HDR
          histogram (per-domain recorders merged at join), outcome
          counters ([pool.outcome.<label>], [pool.shed]), retry/steal
          totals and a [pool.domains] gauge.  Populated with tracing
          off. *)
  breaker_flight : Obs.Flight.entry list;
      (** Flight-recorder window (oldest first) from the domain that
          opened the circuit breaker; [[]] when it never tripped. *)
}

val count_outcomes : request_result array -> outcome_counts

(** [run ~domains ~requests ~io g] executes [requests] independent
    instances of [g] on [domains] parallel domains under [config]
    (default {!Run_config.default}).  [io r] is called on the executing
    domain, once per attempt, to build the sources and sinks for request
    [r] (it must be safe to call concurrently for distinct [r], and
    sources must be re-buildable if [config.retries > 0]).

    Per-request failures — including {!Runtime.Runtime_error} raised
    during instantiation or wiring — are captured in the corresponding
    {!request_result}, never raised; the pool always produces a result
    for every request.  The graph is linted once up front at
    [config.lint], not per request.

    [?arrivals] switches the pool from closed-loop (execute as fast as
    the domains allow) to open-loop: [arrivals.(r)] is request [r]'s
    scheduled arrival as a ns offset from pool start, the executing
    domain waits out the arrival before starting, and
    [req_latency_ns] counts from the scheduled arrival — so when the
    pool cannot keep up, the backlog shows up as latency, exactly as a
    client would measure it.  Offsets should be non-decreasing in
    request id.  Raises [Invalid_argument] if the array length differs
    from [requests], or if [domains]/[requests] is not positive. *)
val run :
  ?config:Run_config.t ->
  ?arrivals:float array ->
  domains:int ->
  requests:int ->
  io:(int -> Io.source list * Io.sink list) ->
  Serialized.t ->
  stats

(** Prometheus text exposition (format 0.0.4) of [stats.metrics]:
    [cgsim_pool_request] histogram series plus the outcome counters.
    See {!Obs.Prom}. *)
val metrics_exposition : stats -> string

(** Drop every cached compiled graph and idle warm instance.  Mainly for
    tests and benchmarks that compare warm against genuinely cold
    serving; production callers never need it (the cache is bounded). *)
val clear_warm_cache : unit -> unit

(** Parallel request serving over independent graph instances, with
    per-request supervision.

    One serialized graph, N requests, D OCaml domains: each request gets
    its own {!Runtime} instantiation (contexts are single-shot and share
    no mutable state), so whole-graph simulations can run in parallel
    even though each individual instance is cooperatively scheduled on a
    single domain.  This is the "many independent simulations" serving
    model — parameter sweeps, regression batteries, request services —
    rather than intra-graph parallelism.

    Requests are distributed round-robin across per-domain work deques;
    a domain that drains its own deque steals from the others (owner
    pops one end, thieves take the other), so skewed request costs still
    balance.  With [~domains:1] execution order is exactly the seeded
    order, making single-domain runs deterministic and comparable to a
    sequential loop.

    Supervision, per request, driven by the {!Run_config.t}:

    - a kernel failure or deadline hit is retried up to
      [config.retries] times, sleeping a decorrelated-jitter backoff
      (seeded by [config.seed] and the request id — deterministic)
      between attempts;
    - after [config.breaker_threshold] consecutive requests whose final
      outcome was still a failure/deadline, the circuit opens and every
      not-yet-started request is shed without executing (the classic
      load-shedding breaker); successes reset the count;
    - the per-attempt deadline, fault plan, hooks and queue knobs come
      from the same config, passed to {!Runtime.instantiate} verbatim.

    When an {!Obs.Trace} session is active, each attempt is a span on a
    per-domain track (pid 3), and the pool emits [pool.request] timings
    plus [pool.retry], [pool.deadline], [pool.shed] and
    [pool.outcome.<label>] counters. *)

type request_result = {
  req_id : int;
  domain : int;  (** Domain that executed (or shed) the request. *)
  stolen : bool;  (** Executed by a thief rather than its seeded owner. *)
  outcome : Runtime.outcome;  (** Final outcome, after retries. *)
  attempts : int;  (** Executions performed; 0 when shed. *)
  shed : bool;  (** Refused by the open circuit breaker. *)
  req_wall_ns : float;  (** Wall time across all attempts and backoffs. *)
}

type outcome_counts = {
  n_completed : int;
  n_deadline : int;
  n_cancelled : int;
  n_failed : int;
  n_shed : int;
  n_retried_ok : int;  (** Completed, but only on a retry attempt. *)
}

type stats = {
  domains : int;
  requests : int;
  results : request_result array;  (** Indexed by request id. *)
  steals : int;  (** Requests executed by a non-owner domain. *)
  retries : int;  (** Retry attempts across all requests. *)
  breaker_tripped : bool;  (** The circuit opened at least once. *)
  counts : outcome_counts;
  wall_ns : float;  (** Whole-pool wall time, spawn to last join. *)
}

val count_outcomes : request_result array -> outcome_counts

(** [run ~domains ~requests ~io g] executes [requests] independent
    instances of [g] on [domains] parallel domains under [config]
    (default {!Run_config.default}).  [io r] is called on the executing
    domain, once per attempt, to build the sources and sinks for request
    [r] (it must be safe to call concurrently for distinct [r], and
    sources must be re-buildable if [config.retries > 0]).

    Per-request failures — including {!Runtime.Runtime_error} raised
    during instantiation or wiring — are captured in the corresponding
    {!request_result}, never raised; the pool always produces a result
    for every request.  The graph is linted once up front at
    [config.lint], not per request.  Raises [Invalid_argument] if
    [domains] or [requests] is not positive. *)
val run :
  ?config:Run_config.t ->
  domains:int ->
  requests:int ->
  io:(int -> Io.source list * Io.sink list) ->
  Serialized.t ->
  stats

(** Deprecated optional-argument bridge; equivalent to building a
    {!Run_config.t} with the same knobs (no retries, no breaker). *)
val run_opts :
  ?queue_capacity:int ->
  ?block_io:bool ->
  ?spsc:bool ->
  domains:int ->
  requests:int ->
  io:(int -> Io.source list * Io.sink list) ->
  Serialized.t ->
  stats
[@@ocaml.deprecated "use run ?config with Run_config"]

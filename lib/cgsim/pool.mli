(** Parallel request serving over independent graph instances.

    One serialized graph, N requests, D OCaml domains: each request gets
    its own {!Runtime} instantiation (contexts are single-shot and share
    no mutable state), so whole-graph simulations can run in parallel
    even though each individual instance is cooperatively scheduled on a
    single domain.  This is the "many independent simulations" serving
    model — parameter sweeps, regression batteries, request services —
    rather than intra-graph parallelism.

    Requests are distributed round-robin across per-domain work deques;
    a domain that drains its own deque steals from the others (owner
    pops one end, thieves take the other), so skewed request costs still
    balance.  With [~domains:1] execution order is exactly the seeded
    order, making single-domain runs deterministic and comparable to a
    sequential loop.

    When a {!Obs.Trace} session is active, each request is emitted as a
    span on a per-domain track (pid 3, alongside cgsim's fiber lanes and
    aiesim's tile lanes), so Chrome-trace shows the pool's occupancy and
    steal behaviour directly. *)

type request_result = {
  req_id : int;
  domain : int;  (** Domain that executed the request. *)
  stolen : bool;  (** Executed by a thief rather than its seeded owner. *)
  outcome : (Sched.stats, string) result;
      (** Scheduler stats of the instance, or the printed exception. *)
  req_wall_ns : float;
}

type stats = {
  domains : int;
  requests : int;
  results : request_result array;  (** Indexed by request id. *)
  steals : int;  (** Requests executed by a non-owner domain. *)
  wall_ns : float;  (** Whole-pool wall time, spawn to last join. *)
}

(** [run ~domains ~requests ~io g] executes [requests] independent
    instances of [g] on [domains] parallel domains.  [io r] is called on
    the executing domain to build the sources and sinks for request [r]
    (it must be safe to call concurrently for distinct [r]).
    [queue_capacity], [block_io] and [spsc] are passed through to
    {!Runtime.instantiate} for every instance.

    Per-request failures (including {!Runtime.Runtime_error}) are
    captured in the corresponding {!request_result}, not raised; the
    pool always runs every request to completion.  Raises
    [Invalid_argument] if [domains] or [requests] is not positive. *)
val run :
  ?queue_capacity:int ->
  ?block_io:bool ->
  ?spsc:bool ->
  domains:int ->
  requests:int ->
  io:(int -> Io.source list * Io.sink list) ->
  Serialized.t ->
  stats

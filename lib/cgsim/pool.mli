(** Parallel request serving over independent graph instances, with
    per-request supervision.

    One serialized graph, N requests, D OCaml domains: each request gets
    its own {!Runtime} instance (instances share no mutable state), so
    whole-graph simulations can run in parallel even though each
    individual instance is cooperatively scheduled on a single domain.
    This is the "many independent simulations" serving model — parameter
    sweeps, regression batteries, request services — rather than
    intra-graph parallelism.

    The pool itself is a long-lived object: {!create} spawns the worker
    domains once, {!submit} hands them a request and returns a
    {!handle} (request id + awaitable result + cooperative
    cancellation), and {!shutdown} drains queued and in-flight work and
    joins the workers.  The batch entry point {!run} — one graph, a
    fixed request population, stats at the end — is a thin wrapper:
    create, submit everything, await everything, shutdown.  Network
    front ends ({!Serve.Server}) drive {!submit}/{!await} directly.

    {b Warm serving} (default, [config.warm]): the graph is
    {!Runtime.compile}d once — validation, registry resolution and the
    pre-flight lint verdict live in a bounded process-wide cache keyed
    by graph identity + config compatibility (LRU-evicted; see
    {!clear_warm_cache}) — and served requests draw {!Runtime.reset}
    instances from the entry's idle pool instead of rebuilding queues
    and wiring per attempt.  An instance whose reset fails is dropped.
    [config.warm = false] forces the cold path: a fresh instance per
    attempt (the compiled artifact is still cached, instances are not).

    {b Batching} ([config.batch] > 1): when a request's compiled graph
    is provably batchable (every kernel declared [~pure:true] {e and}
    [~stateless:true] — purity alone admits local delay lines, which
    concatenation would corrupt), it has no scheduled arrival and no
    fault plan is installed, a domain pops up to [batch] consecutive
    same-graph/same-config requests of its own queue at once,
    concatenates their per-slot inputs ({!Io.concat}), pumps them
    through one warm run and demultiplexes the outputs by even split.
    Requests with unknown or mismatched input lengths, non-[Completed]
    batch outcomes or outputs not divisible by the batch size fall back
    to individual execution — batching is a fast path, never a semantic
    change.  Stolen requests are never batched.

    Requests are distributed round-robin across per-domain work queues;
    a domain that drains its own queue steals the oldest queued request
    of another, so skewed request costs still balance.  Each queue is
    FIFO, so with [~domains:1] execution order is exactly the submit
    order, making single-domain runs deterministic and comparable to a
    sequential loop.

    Supervision, per request, driven by the {!Run_config.t}:

    - a kernel failure or deadline hit is retried up to
      [config.retries] times, sleeping a decorrelated-jitter backoff
      (seeded by [config.seed] and the request id — deterministic)
      between attempts;
    - after [config.breaker_threshold] consecutive requests whose final
      outcome was still a failure/deadline, the circuit opens and every
      not-yet-started request is shed without executing (the classic
      load-shedding breaker); successes reset the count.  {!breaker_open}
      exposes the live state so a front end can refuse admission at the
      door;
    - the per-attempt deadline, fault plan, hooks and queue knobs come
      from the same config, passed to {!Runtime.instantiate} verbatim.

    Observability is two-tier.  Always on (tracing or not): request
    latencies are recorded into per-domain {!Obs.Hdr} histograms and
    merged into [stats.metrics] (and the live {!metrics} snapshot),
    alongside outcome counters — {!metrics_exposition} renders them as
    Prometheus text under the ["family.parts:instance"] key convention
    ([pool.request] histogram, [pool.outcome:<label>] counters); the
    flight recorder window of the domain that opens the circuit breaker
    is kept in [stats.breaker_flight].  Additionally, when an
    {!Obs.Trace} session is active, each attempt is a span on a
    per-domain track (pid 3), and the pool emits [pool.request] timings
    plus [pool.retry], [pool.deadline], [pool.shed] and
    [pool.outcome:<label>] counters into the session. *)

type request_result = {
  req_id : int;
  domain : int;  (** Domain that executed (or shed) the request. *)
  stolen : bool;  (** Executed by a thief rather than its seeded owner. *)
  outcome : Runtime.outcome;  (** Final outcome, after retries. *)
  attempts : int;  (** Executions performed; 0 when shed. *)
  shed : bool;  (** Refused by the open circuit breaker. *)
  req_wall_ns : float;  (** Wall time across all attempts and backoffs. *)
  req_latency_ns : float;
      (** Without a scheduled arrival: service time (= [req_wall_ns]).
          With one ([submit ~not_before_ns], or [run ~arrivals]):
          completion minus scheduled arrival, i.e. queue wait included —
          the latency a client would see. *)
}

type outcome_counts = {
  n_completed : int;
  n_deadline : int;
  n_cancelled : int;
  n_failed : int;
  n_shed : int;
  n_retried_ok : int;  (** Completed, but only on a retry attempt. *)
}

val count_outcomes : request_result array -> outcome_counts

(** {1 The persistent pool} *)

(** A running pool of worker domains. *)
type t

(** One submitted request: its id, its awaitable result, its
    cancellation hook. *)
type handle

(** [create ~domains ()] spawns [domains] worker domains that serve
    submitted requests until {!shutdown}.  [config] (default
    {!Run_config.default}) is the default execution config for every
    request; {!submit} can override it per request.  Raises
    [Invalid_argument] unless [domains] is positive. *)
val create : ?config:Run_config.t -> domains:int -> unit -> t

(** [submit pool ~io g] enqueues one request for graph [g] and returns
    immediately.  [io id] is called on the executing domain, once per
    attempt, to build the sources and sinks for this request (it must be
    safe to call concurrently with other requests' [io], and sources
    must be re-buildable if the config enables retries).

    [?config] overrides the pool default for this request (e.g. a
    per-request deadline or seed); graph compilation is cached per
    (graph, config-compatibility) pair, so a handful of distinct configs
    serve warm.  [?not_before_ns] is an absolute {!Obs.Clock.now_ns}
    instant: the executing domain waits it out before starting, and
    [req_latency_ns] counts from it (open-loop latency semantics).
    [?on_complete] runs on the executing domain right after the result
    is published — network front ends use it to write the response
    without a dedicated waiter; exceptions it raises are swallowed.

    Per-request failures — including {!Runtime.Runtime_error} raised
    during wiring — are captured in the {!request_result}, never raised;
    the pool always produces a result for every submitted request.
    Compilation errors (invalid graph, failed [`Error]-level lint)
    raise out of [submit], before the request is queued.  Raises
    [Invalid_argument] after {!shutdown}. *)
val submit :
  t ->
  ?config:Run_config.t ->
  ?not_before_ns:float ->
  ?on_complete:(request_result -> unit) ->
  io:(int -> Io.source list * Io.sink list) ->
  Serialized.t ->
  handle

(** Pool-unique request id (dense, starting at 0). *)
val handle_id : handle -> int

(** Block until the request's final result (after retries) is
    published.  Every handle eventually completes: shed, cancelled and
    captured-failure requests all produce results. *)
val await : handle -> request_result

(** The result, if already published. *)
val poll : handle -> request_result option

(** Request cooperative cancellation: a queued request completes as
    [Cancelled] without executing ([attempts = 0]); a running request
    has {!Runtime.cancel} invoked on its instance and winds down at the
    next scheduling boundary; a finished request is unaffected. *)
val cancel : handle -> unit

(** Whether the circuit breaker is currently open (new requests would be
    shed) — the admission-control signal for network front ends. *)
val breaker_open : t -> bool

(** Queued + executing requests (drain/backlog probe). *)
val pending : t -> int

(** Requests whose results have been published since {!create}. *)
val served : t -> int

(** Live always-on pool metrics: the ["pool.request"] latency HDR
    histogram (per-domain recorders merged at snapshot time),
    [pool.outcome:<label>] and [pool.shed] counters, retry/steal/warm/
    cold/batch totals and a [pool.domains] gauge.  Populated with
    tracing off; safe to call while requests are in flight. *)
val metrics : t -> Obs.Metrics.snapshot

(** Stop accepting new submissions, finish every queued and in-flight
    request, join the worker domains.  Idempotent.  Handles submitted
    before the call remain awaitable afterwards. *)
val shutdown : t -> unit

(** {1 Batch runs} *)

type stats = {
  domains : int;
  requests : int;
  results : request_result array;  (** Indexed by request id. *)
  steals : int;  (** Requests executed by a non-owner domain. *)
  retries : int;  (** Retry attempts across all requests. *)
  warm_hits : int;  (** Attempts served by a reused (reset) instance. *)
  cold_builds : int;  (** Attempts that built a fresh instance. *)
  batched : int;  (** Requests served through a multiplexed batch run. *)
  breaker_tripped : bool;  (** The circuit opened at least once. *)
  counts : outcome_counts;
  wall_ns : float;  (** Whole-pool wall time, create to shutdown. *)
  metrics : Obs.Metrics.snapshot;
      (** Always-on pool metrics (see {!metrics}), snapshotted after the
          joins. *)
  breaker_flight : Obs.Flight.entry list;
      (** Flight-recorder window (oldest first) from the domain that
          opened the circuit breaker; [[]] when it never tripped. *)
}

(** [run ~domains ~requests ~io g] executes [requests] independent
    instances of [g] on [domains] parallel domains under [config]
    (default {!Run_config.default}): a {!create}/{!submit}/{!await}/
    {!shutdown} round in one call.  [io r] is called on the executing
    domain, once per attempt, to build the sources and sinks for request
    [r].  The graph is compiled (and linted) once up front, not per
    request.

    [?arrivals] switches the pool from closed-loop (execute as fast as
    the domains allow) to open-loop: [arrivals.(r)] is request [r]'s
    scheduled arrival as a ns offset from pool start (see
    [submit ?not_before_ns]).  Offsets should be non-decreasing in
    request id.  Raises [Invalid_argument] if the array length differs
    from [requests], or if [domains]/[requests] is not positive. *)
val run :
  ?config:Run_config.t ->
  ?arrivals:float array ->
  domains:int ->
  requests:int ->
  io:(int -> Io.source list * Io.sink list) ->
  Serialized.t ->
  stats

(** Prometheus text exposition (format 0.0.4) of [stats.metrics]:
    [cgsim_pool_request] histogram series plus the outcome counters
    ([cgsim_pool_outcome_total{id="completed"}], ...).  See
    {!Obs.Prom}. *)
val metrics_exposition : stats -> string

(** Drop every cached compiled graph and idle warm instance.  Mainly for
    tests and benchmarks that compare warm against genuinely cold
    serving; production callers never need it (the cache is bounded). *)
val clear_warm_cache : unit -> unit

(* Port/body interception hooks, factored out of Runtime so that lower
   layers (fault injection, Run_config) can talk about hooks without a
   dependency cycle on the runtime itself. *)

type t = {
  wrap_reader : Serialized.kernel_inst -> int -> Port.reader -> Port.reader;
  wrap_writer : Serialized.kernel_inst -> int -> Port.writer -> Port.writer;
  around_body : Serialized.kernel_inst -> (unit -> unit) -> unit -> unit;
}

let none =
  {
    wrap_reader = (fun _ _ r -> r);
    wrap_writer = (fun _ _ w -> w);
    around_body = (fun _ body () -> body ());
  }

let compose outer inner =
  {
    wrap_reader = (fun inst idx r -> outer.wrap_reader inst idx (inner.wrap_reader inst idx r));
    wrap_writer = (fun inst idx w -> outer.wrap_writer inst idx (inner.wrap_writer inst idx w));
    around_body = (fun inst body -> outer.around_body inst (inner.around_body inst body));
  }

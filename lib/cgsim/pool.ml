type request_result = {
  req_id : int;
  domain : int;
  stolen : bool;
  outcome : Runtime.outcome;
  attempts : int;
  shed : bool;
  req_wall_ns : float;
  req_latency_ns : float;
      (* closed loop: service time (= req_wall_ns); open loop (run with
         ~arrivals): completion minus scheduled arrival, so time spent
         waiting for a free domain counts — the latency a client sees *)
}

type outcome_counts = {
  n_completed : int;
  n_deadline : int;
  n_cancelled : int;
  n_failed : int;
  n_shed : int;
  n_retried_ok : int;  (* completed on a retry attempt *)
}

type stats = {
  domains : int;
  requests : int;
  results : request_result array;
  steals : int;
  retries : int;
  breaker_tripped : bool;
  counts : outcome_counts;
  wall_ns : float;
  metrics : Obs.Metrics.snapshot;
      (* always-on pool metrics: request-latency HDR histogram
         ("pool.request", per-domain recorders merged at join), outcome
         counters, steal/retry totals — populated with tracing off *)
  breaker_flight : Obs.Flight.entry list;
      (* flight-recorder window from the domain that opened the circuit
         breaker, oldest first; [] when the breaker never tripped *)
}

let count_outcomes results =
  Array.fold_left
    (fun c r ->
      if r.shed then { c with n_shed = c.n_shed + 1 }
      else
        match r.outcome with
        | Runtime.Completed _ ->
          {
            c with
            n_completed = c.n_completed + 1;
            n_retried_ok = (c.n_retried_ok + if r.attempts > 1 then 1 else 0);
          }
        | Runtime.Deadline_exceeded _ -> { c with n_deadline = c.n_deadline + 1 }
        | Runtime.Cancelled -> { c with n_cancelled = c.n_cancelled + 1 }
        | Runtime.Kernel_failed _ -> { c with n_failed = c.n_failed + 1 })
    { n_completed = 0; n_deadline = 0; n_cancelled = 0; n_failed = 0; n_shed = 0; n_retried_ok = 0 }
    results

(* Splitmix-style seeded stream for backoff jitter: deterministic per
   (pool seed, request id), no global Random state. *)
let jitter_state ~seed ~req =
  ref (Int64.logxor (Int64.of_int ((seed * 0x9e3779b9) + 1)) (Int64.of_int ((req + 1) * 0x85ebca6b)))

let next_unit_float st =
  let x = !st in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  st := x;
  let bits = Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 11) in
  float_of_int (bits land 0xFFFFF) /. float_of_int 0x100000

(* Per-domain work deque over a fixed population of request ids.  All
   items are seeded before any domain starts and nothing is ever pushed
   back, so the structure only shrinks: a mutex per deque is plenty, and
   "every deque observed empty" is a sound termination condition.  The
   owner pops the bottom (LIFO over its own seed order keeps it on the
   requests it was dealt last), thieves take the top — the classic
   work-stealing discipline, minus the lock-free heroics that a
   requests-scale workload (each item is a whole graph simulation)
   cannot measure. *)
type deque = {
  items : int array;
  mutable top : int;  (* next index thieves take *)
  mutable bot : int;  (* one past the owner's end *)
  lock : Mutex.t;
}

let deque_of_list ids =
  let items = Array.of_list ids in
  { items; top = 0; bot = Array.length items; lock = Mutex.create () }

let with_lock d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let pop_bottom d =
  with_lock d (fun () ->
      if d.top < d.bot then begin
        d.bot <- d.bot - 1;
        Some d.items.(d.bot)
      end
      else None)

let steal_top d =
  with_lock d (fun () ->
      if d.top < d.bot then begin
        let r = d.items.(d.top) in
        d.top <- d.top + 1;
        Some r
      end
      else None)

let run ?(config = Run_config.default) ?arrivals ~domains ~requests ~io (g : Serialized.t) =
  if domains <= 0 then invalid_arg "cgsim: Pool.run needs a positive domain count";
  if requests <= 0 then invalid_arg "cgsim: Pool.run needs a positive request count";
  (match arrivals with
   | Some a when Array.length a <> requests ->
     invalid_arg "cgsim: Pool.run ~arrivals must have one offset per request"
   | Some _ | None -> ());
  (* Lint once up front — the pool-safety pass flags kernels whose bodies
     share mutable state across the instances the domains run. *)
  Runtime.preflight ~lint:config.Run_config.lint g;
  (* The graph is linted once when the pool is built, not once per
     request (or attempt) on every serving domain. *)
  let request_config = Run_config.with_lint `Off config in
  (* Seed round-robin: request r belongs to domain [r mod domains].  The
     per-domain lists are built back-to-front so the owner's LIFO pop
     replays its seeds in ascending request order — with one domain the
     pool degenerates to the sequential loop [for r = 0 to requests-1]. *)
  let seeds = Array.make domains [] in
  for r = requests - 1 downto 0 do
    let d = r mod domains in
    seeds.(d) <- r :: seeds.(d)
  done;
  let deques = Array.map (fun ids -> deque_of_list (List.rev ids)) seeds in
  let dummy =
    {
      req_id = -1;
      domain = -1;
      stolen = false;
      outcome = Runtime.Cancelled;
      attempts = 0;
      shed = false;
      req_wall_ns = 0.;
      req_latency_ns = 0.;
    }
  in
  (* Each slot is written exactly once, by whichever domain executed the
     request, and read only after the joins — no lock needed. *)
  let results = Array.make requests dummy in
  let steals = Atomic.make 0 in
  let retries_total = Atomic.make 0 in
  (* Open-loop arrivals are offsets from this instant (set just before
     the workers spawn). *)
  let pool_t0 = ref 0.0 in
  (* One latency recorder per domain, merged into the pool metrics after
     the joins: recording stays lock-free on the serving path, and the
     merge is the cross-domain HDR aggregation story in practice. *)
  let lat_hdrs = Array.init domains (fun _ -> Obs.Hdr.create ()) in
  let breaker_flight = ref [] in
  (* Circuit breaker: consecutive requests whose FINAL outcome was a
     failure or deadline (retries exhausted).  Once the count reaches the
     threshold the circuit opens and every not-yet-started request is
     shed without executing — load shedding under systemic failure. *)
  let consec_failures = Atomic.make 0 in
  let breaker_tripped = Atomic.make false in
  let breaker_open () =
    match config.Run_config.breaker_threshold with
    | None -> false
    | Some th -> Atomic.get consec_failures >= th
  in
  let execute ~domain ~stolen r =
    if breaker_open () then begin
      if not (Atomic.exchange breaker_tripped true) then begin
        (* First domain to observe the open circuit dumps its flight
           window: the events leading up to the failure streak. *)
        Obs.Flight.note Obs.Flight.Breaker g.Serialized.gname;
        breaker_flight := Obs.Flight.snapshot ();
        if !Obs.Trace.on then
          Obs.Trace.instant ~track:"pool" ~cat:"pool" "breaker-open"
      end;
      if !Obs.Trace.on then Obs.Trace.incr_metric "pool.shed";
      results.(r) <-
        { req_id = r; domain; stolen; outcome = Runtime.Cancelled; attempts = 0; shed = true;
          req_wall_ns = 0.; req_latency_ns = 0. }
    end
    else begin
      (* Open loop: wait out this request's scheduled arrival, then count
         latency from the arrival instant, so any backlog the pool built
         up is charged to the requests that queued behind it. *)
      let arrival_abs =
        match arrivals with
        | Some a ->
          let target = !pool_t0 +. a.(r) in
          let wait = target -. Obs.Clock.now_ns () in
          if wait > 0.0 then Unix.sleepf (wait /. 1e9);
          target
        | None -> 0.0
      in
      let t0 = Obs.Clock.now_ns () in
      Obs.Flight.note Obs.Flight.Request ~arg:(float_of_int r) g.Serialized.gname;
      let jitter = jitter_state ~seed:config.Run_config.seed ~req:r in
      let prev_backoff = ref config.Run_config.retry_base_ns in
      let backoff () =
        let base = config.Run_config.retry_base_ns in
        if base > 0. then begin
          (* Decorrelated jitter: sleep in [base, min(cap, 3*prev)],
             uniformly — retries from concurrent domains desynchronise
             instead of hammering in lockstep. *)
          let hi = Float.min config.Run_config.retry_cap_ns (Float.max base (!prev_backoff *. 3.)) in
          let sleep = base +. (next_unit_float jitter *. (hi -. base)) in
          prev_backoff := sleep;
          Unix.sleepf (sleep /. 1e9)
        end
      in
      let run_once attempt =
        let a0 = Obs.Clock.now_ns () in
        let outcome =
          try
            let t = Runtime.instantiate ~config:request_config g in
            let sources, sinks = io r in
            Runtime.run t ~sources ~sinks
          with exn ->
            (* Wiring/instantiation raises (caller bugs) are captured so
               the pool still runs every request to completion. *)
            Runtime.Kernel_failed
              {
                Runtime.f_graph = g.Serialized.gname;
                f_kernel = "<harness>";
                f_exn = exn;
                f_backtrace = "";
                f_src = None;
                f_flight = Obs.Flight.snapshot ();
              }
        in
        let dt = Obs.Clock.now_ns () -. a0 in
        if !Obs.Trace.on then begin
          let track = Printf.sprintf "serve-domain-%d" domain in
          Obs.Trace.span ~track ~cat:"pool" ~pid:3
            ~name:
              (Printf.sprintf "req-%d%s%s" r
                 (if attempt > 1 then Printf.sprintf " try-%d" attempt else "")
                 (if stolen then " (stolen)" else ""))
            ~ts_ns:a0 ~dur_ns:dt ();
          Obs.Trace.observe_ns "pool.request" dt;
          Obs.Trace.incr_metric ("pool.outcome." ^ Runtime.outcome_label outcome);
          (match outcome with
           | Runtime.Deadline_exceeded _ -> Obs.Trace.incr_metric "pool.deadline"
           | _ -> ())
        end;
        outcome
      in
      let rec supervise attempt =
        let outcome = run_once attempt in
        match outcome with
        | Runtime.Completed _ | Runtime.Cancelled -> outcome, attempt
        | Runtime.Deadline_exceeded _ | Runtime.Kernel_failed _ ->
          if attempt <= config.Run_config.retries then begin
            Atomic.incr retries_total;
            Obs.Flight.note Obs.Flight.Retry ~arg:(float_of_int attempt) g.Serialized.gname;
            if !Obs.Trace.on then Obs.Trace.incr_metric "pool.retry";
            backoff ();
            supervise (attempt + 1)
          end
          else outcome, attempt
      in
      let outcome, attempts = supervise 1 in
      (match outcome with
       | Runtime.Completed _ -> Atomic.set consec_failures 0
       | Runtime.Cancelled -> ()
       | Runtime.Deadline_exceeded _ | Runtime.Kernel_failed _ -> Atomic.incr consec_failures);
      let finished = Obs.Clock.now_ns () in
      let dt = finished -. t0 in
      let latency =
        match arrivals with Some _ -> Float.max 0.0 (finished -. arrival_abs) | None -> dt
      in
      Obs.Hdr.record lat_hdrs.(domain) latency;
      results.(r) <-
        { req_id = r; domain; stolen; outcome; attempts; shed = false; req_wall_ns = dt;
          req_latency_ns = latency }
    end
  in
  let worker domain () =
    Obs.Trace.set_thread_label (Printf.sprintf "serve-domain-%d" domain);
    let own = deques.(domain) in
    let rec try_steal k =
      if k >= domains then None
      else
        match steal_top deques.((domain + k) mod domains) with
        | Some _ as hit -> hit
        | None -> try_steal (k + 1)
    in
    let rec loop () =
      match pop_bottom own with
      | Some r ->
        execute ~domain ~stolen:false r;
        loop ()
      | None -> (
        match try_steal 1 with
        | Some r ->
          Atomic.incr steals;
          execute ~domain ~stolen:true r;
          loop ()
        | None -> ())
    in
    loop ()
  in
  (* OCaml 5 minor collections stop every domain; the same larger minor
     heap x86sim uses keeps the parallel instances off each other's
     backs.  Restored after the joins. *)
  let gc = Gc.get () in
  Gc.set { gc with Gc.minor_heap_size = max gc.Gc.minor_heap_size (8 * 1024 * 1024) };
  pool_t0 := Obs.Clock.now_ns ();
  let t0 = !pool_t0 in
  let spawned = Array.init domains (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join spawned;
  let wall_ns = Obs.Clock.now_ns () -. t0 in
  Gc.set gc;
  (* Fold the per-domain recorders and the outcome tallies into one
     metrics registry; this (not a trace session) is what
     [metrics_exposition] serves, so it is populated unconditionally. *)
  let metrics = Obs.Metrics.create () in
  Array.iter (fun hdr -> Obs.Metrics.merge_hdr metrics "pool.request" hdr) lat_hdrs;
  Array.iter
    (fun r ->
      if r.shed then Obs.Metrics.incr metrics "pool.shed"
      else Obs.Metrics.incr metrics ("pool.outcome." ^ Runtime.outcome_label r.outcome))
    results;
  let retries_n = Atomic.get retries_total in
  let steals_n = Atomic.get steals in
  if retries_n > 0 then Obs.Metrics.add metrics "pool.retries" (float_of_int retries_n);
  if steals_n > 0 then Obs.Metrics.add metrics "pool.steals" (float_of_int steals_n);
  Obs.Metrics.high_water metrics "pool.domains" (float_of_int domains);
  {
    domains;
    requests;
    results;
    steals = steals_n;
    retries = retries_n;
    breaker_tripped = Atomic.get breaker_tripped;
    counts = count_outcomes results;
    wall_ns;
    metrics = Obs.Metrics.snapshot metrics;
    breaker_flight = !breaker_flight;
  }

let metrics_exposition s = Obs.Prom.of_snapshot s.metrics

let run_opts ?queue_capacity ?block_io ?spsc ~domains ~requests ~io g =
  run ~config:(Run_config.make ?queue_capacity ?block_io ?spsc ()) ~domains ~requests ~io g

type request_result = {
  req_id : int;
  domain : int;
  stolen : bool;
  outcome : Runtime.outcome;
  attempts : int;
  shed : bool;
  req_wall_ns : float;
  req_latency_ns : float;
      (* without a scheduled arrival: service time (= req_wall_ns); with
         one (submit ~not_before_ns / run ~arrivals): completion minus
         scheduled arrival, so time spent waiting for a free domain
         counts — the latency a client sees *)
}

type outcome_counts = {
  n_completed : int;
  n_deadline : int;
  n_cancelled : int;
  n_failed : int;
  n_shed : int;
  n_retried_ok : int;  (* completed on a retry attempt *)
}

let count_outcomes results =
  Array.fold_left
    (fun c r ->
      if r.shed then { c with n_shed = c.n_shed + 1 }
      else
        match r.outcome with
        | Runtime.Completed _ ->
          {
            c with
            n_completed = c.n_completed + 1;
            n_retried_ok = (c.n_retried_ok + if r.attempts > 1 then 1 else 0);
          }
        | Runtime.Deadline_exceeded _ -> { c with n_deadline = c.n_deadline + 1 }
        | Runtime.Cancelled -> { c with n_cancelled = c.n_cancelled + 1 }
        | Runtime.Kernel_failed _ -> { c with n_failed = c.n_failed + 1 })
    { n_completed = 0; n_deadline = 0; n_cancelled = 0; n_failed = 0; n_shed = 0; n_retried_ok = 0 }
    results

(* Splitmix-style seeded stream for backoff jitter: deterministic per
   (pool seed, request id), no global Random state. *)
let jitter_state ~seed ~req =
  ref (Int64.logxor (Int64.of_int ((seed * 0x9e3779b9) + 1)) (Int64.of_int ((req + 1) * 0x85ebca6b)))

let next_unit_float st =
  let x = !st in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  st := x;
  let bits = Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 11) in
  float_of_int (bits land 0xFFFFF) /. float_of_int 0x100000

(* ------------------------------------------------------------------ *)
(* Warm-instance cache                                                 *)
(* ------------------------------------------------------------------ *)

(* Compiled graphs and their reusable instances, keyed by graph identity
   (physical — recompiling a structurally equal Serialized.t is exactly
   what the cache exists to avoid, so callers are expected to hold on to
   one) plus configuration compatibility.  Bounded two ways: at most
   [cache_entries] distinct (graph, config) pairs, least-recently-used
   evicted, and at most [instances_per_entry] idle instances parked per
   entry — a poisoned instance (reset failed) is simply dropped, which
   is the eviction path for broken state.  Compilation caching serves
   the cold path too (a cold config still resolves here); only the idle
   instance list is warm-only. *)

(* Run_config compatibility for cache keying.  Scalar knobs compare
   structurally; hooks and fault plans compare physically (closures have
   no structural equality — and two distinct plans genuinely are
   different keys, since their shared fire budgets are entry state). *)
let config_key_equal (a : Run_config.t) (b : Run_config.t) =
  a.Run_config.hooks == b.Run_config.hooks
  && a.Run_config.queue_capacity = b.Run_config.queue_capacity
  && a.Run_config.block_io = b.Run_config.block_io
  && a.Run_config.spsc = b.Run_config.spsc
  && a.Run_config.lint = b.Run_config.lint
  && a.Run_config.deadline_ns = b.Run_config.deadline_ns
  && a.Run_config.max_steps = b.Run_config.max_steps
  && a.Run_config.fuse = b.Run_config.fuse
  && a.Run_config.unboxed = b.Run_config.unboxed
  && (match a.Run_config.faults, b.Run_config.faults with
      | None, None -> true
      | Some x, Some y -> x == y
      | _ -> false)

type cache_entry = {
  e_graph : Serialized.t;
  e_config : Run_config.t;
  e_compiled : Runtime.compiled;
  e_lock : Mutex.t;
  mutable e_free : Runtime.t list;  (* idle reset instances, under e_lock *)
  mutable e_stamp : int;  (* LRU clock value of the last use *)
}

let cache_entries = 8

let instances_per_entry = 8

let cache : cache_entry list ref = ref []

let cache_lock = Mutex.create ()

let cache_clock = ref 0

let clear_warm_cache () =
  Mutex.lock cache_lock;
  cache := [];
  Mutex.unlock cache_lock

(* Find-or-compile under the cache lock.  Compilation (validation +
   registry resolution + the one pre-flight lint whose verdict the entry
   carries) happens at most once per entry; warm hits and retries never
   re-lint.  May raise exactly as [Runtime.compile] does — the lock is
   released first. *)
let acquire_entry g config =
  Mutex.lock cache_lock;
  incr cache_clock;
  let stamp = !cache_clock in
  match
    List.find_opt (fun e -> e.e_graph == g && config_key_equal e.e_config config) !cache
  with
  | Some e ->
    e.e_stamp <- stamp;
    Mutex.unlock cache_lock;
    e
  | None ->
    Mutex.unlock cache_lock;
    let compiled = Runtime.compile ~config g in
    let entry =
      {
        e_graph = g;
        e_config = config;
        e_compiled = compiled;
        e_lock = Mutex.create ();
        e_free = [];
        e_stamp = stamp;
      }
    in
    Mutex.lock cache_lock;
    let entries = entry :: !cache in
    let entries =
      if List.length entries <= cache_entries then entries
      else begin
        (* Evict the least recently used entry (and its idle instances). *)
        let oldest =
          List.fold_left (fun acc e -> if e.e_stamp < acc.e_stamp then e else acc)
            (List.hd entries) entries
        in
        List.filter (fun e -> e != oldest) entries
      end
    in
    cache := entries;
    Mutex.unlock cache_lock;
    entry

(* ------------------------------------------------------------------ *)
(* The persistent pool                                                 *)
(* ------------------------------------------------------------------ *)

type handle = {
  h_id : int;
  h_lock : Mutex.t;
  h_cond : Condition.t;
  mutable h_result : request_result option;
  mutable h_cancelled : bool;  (* cooperative cancel requested *)
  mutable h_running : Runtime.t option;  (* instance executing this request *)
}

type pending = {
  pr_handle : handle;
  pr_graph : Serialized.t;
  pr_config : Run_config.t;
  pr_compiled : Runtime.compiled;
  pr_entry : cache_entry option;  (* Some = warm instance reuse *)
  pr_batchable : bool;  (* eligible for multiplexed batch runs *)
  pr_arrival : float option;  (* absolute Clock.now_ns instant *)
  pr_io : int -> Io.source list * Io.sink list;
  pr_on_complete : (request_result -> unit) option;
}

type t = {
  p_config : Run_config.t;
  p_domains : int;
  p_lock : Mutex.t;
  p_cond : Condition.t;
  p_queues : pending Queue.t array;  (* per-domain FIFO, under p_lock *)
  mutable p_stop : bool;  (* no new submits; workers drain then exit *)
  mutable p_next_id : int;
  mutable p_queued : int;
  mutable p_joined : bool;
  mutable p_workers : unit Domain.t array;
  p_t0 : float;
  p_gc : Gc.control;
  p_executing : int Atomic.t;
  p_served : int Atomic.t;
  p_steals : int Atomic.t;
  p_retries : int Atomic.t;
  p_warm_hits : int Atomic.t;
  p_cold_builds : int Atomic.t;
  p_batched : int Atomic.t;
  (* final-outcome tallies, keyed like Runtime.outcome_label *)
  p_completed : int Atomic.t;
  p_deadline : int Atomic.t;  (* wall-clock deadline *)
  p_max_steps : int Atomic.t;  (* fuel exhausted *)
  p_cancelled : int Atomic.t;
  p_failed : int Atomic.t;
  p_shed : int Atomic.t;
  p_retried_ok : int Atomic.t;
  p_consec_failures : int Atomic.t;
  p_breaker_tripped : bool Atomic.t;
  p_breaker_flight : Obs.Flight.entry list ref;
  (* one latency recorder per domain: recording stays lock-free on the
     serving path, merging is the cross-domain HDR aggregation story *)
  p_lat_hdrs : Obs.Hdr.t array;
}

let handle_id h = h.h_id

let breaker_open pool =
  match pool.p_config.Run_config.breaker_threshold with
  | None -> false
  | Some th -> Atomic.get pool.p_consec_failures >= th

let pending pool =
  Mutex.lock pool.p_lock;
  let queued = pool.p_queued in
  Mutex.unlock pool.p_lock;
  queued + Atomic.get pool.p_executing

let served pool = Atomic.get pool.p_served

(* Publish a request's final result: wake awaiters, bump the tallies,
   run the completion callback (on this worker domain). *)
let record_result pool (p : pending) (res : request_result) =
  let h = p.pr_handle in
  Mutex.lock h.h_lock;
  h.h_result <- Some res;
  h.h_running <- None;
  Condition.broadcast h.h_cond;
  Mutex.unlock h.h_lock;
  (if res.shed then Atomic.incr pool.p_shed
   else
     match res.outcome with
     | Runtime.Completed _ ->
       Atomic.incr pool.p_completed;
       if res.attempts > 1 then Atomic.incr pool.p_retried_ok
     | Runtime.Deadline_exceeded pr ->
       (match pr.Runtime.p_reason with
        | `Wall_clock -> Atomic.incr pool.p_deadline
        | `Max_steps -> Atomic.incr pool.p_max_steps)
     | Runtime.Cancelled -> Atomic.incr pool.p_cancelled
     | Runtime.Kernel_failed _ -> Atomic.incr pool.p_failed);
  Atomic.incr pool.p_served;
  Atomic.decr pool.p_executing;
  match p.pr_on_complete with
  | None -> ()
  | Some f -> ( try f res with _ -> ())

(* Instance acquisition: pop a reset instance from the warm entry, or
   build a fresh one (the cold path — also the warm pool's fill path).
   Release resets and parks the instance for the next request; an
   instance whose reset fails is dropped, never reused. *)
let acquire pool (p : pending) =
  match p.pr_entry with
  | Some e ->
    Mutex.lock e.e_lock;
    (match e.e_free with
     | inst :: rest ->
       e.e_free <- rest;
       Mutex.unlock e.e_lock;
       Atomic.incr pool.p_warm_hits;
       if !Obs.Trace.on then Obs.Trace.incr_metric "pool.warm_hit";
       inst
     | [] ->
       Mutex.unlock e.e_lock;
       Atomic.incr pool.p_cold_builds;
       Runtime.new_instance p.pr_compiled)
  | None ->
    Atomic.incr pool.p_cold_builds;
    Runtime.new_instance p.pr_compiled

let release (p : pending) inst =
  match p.pr_entry with
  | None -> ()
  | Some e ->
    (match Runtime.reset inst with
     | () ->
       Mutex.lock e.e_lock;
       if List.length e.e_free < instances_per_entry then e.e_free <- inst :: e.e_free;
       Mutex.unlock e.e_lock
     | exception _ -> () (* poisoned: evict by dropping *))

(* First domain to observe the open circuit dumps its flight window:
   the events leading up to the failure streak. *)
let note_breaker_trip pool gname =
  if not (Atomic.exchange pool.p_breaker_tripped true) then begin
    Obs.Flight.note Obs.Flight.Breaker gname;
    pool.p_breaker_flight := Obs.Flight.snapshot ();
    if !Obs.Trace.on then Obs.Trace.instant ~track:"pool" ~cat:"pool" "breaker-open"
  end

let shed_result ~domain ~stolen (p : pending) =
  {
    req_id = p.pr_handle.h_id;
    domain;
    stolen;
    outcome = Runtime.Cancelled;
    attempts = 0;
    shed = true;
    req_wall_ns = 0.;
    req_latency_ns = 0.;
  }

let execute pool ~domain ~stolen (p : pending) =
  let r = p.pr_handle.h_id in
  let config = p.pr_config in
  let gname = p.pr_graph.Serialized.gname in
  if p.pr_handle.h_cancelled then
    (* Cancelled while queued: never executes, zero attempts. *)
    record_result pool p
      { req_id = r; domain; stolen; outcome = Runtime.Cancelled; attempts = 0; shed = false;
        req_wall_ns = 0.; req_latency_ns = 0. }
  else if breaker_open pool then begin
    note_breaker_trip pool gname;
    if !Obs.Trace.on then Obs.Trace.incr_metric "pool.shed";
    record_result pool p (shed_result ~domain ~stolen p)
  end
  else begin
    (* Open loop: wait out this request's scheduled arrival, then count
       latency from the arrival instant, so any backlog the pool built
       up is charged to the requests that queued behind it. *)
    let arrival_abs =
      match p.pr_arrival with
      | Some target ->
        let wait = target -. Obs.Clock.now_ns () in
        if wait > 0.0 then Unix.sleepf (wait /. 1e9);
        target
      | None -> 0.0
    in
    let t0 = Obs.Clock.now_ns () in
    Obs.Flight.note Obs.Flight.Request ~arg:(float_of_int r) gname;
    let jitter = jitter_state ~seed:config.Run_config.seed ~req:r in
    let prev_backoff = ref config.Run_config.retry_base_ns in
    let backoff () =
      let base = config.Run_config.retry_base_ns in
      if base > 0. then begin
        (* Decorrelated jitter: sleep in [base, min(cap, 3*prev)],
           uniformly — retries from concurrent domains desynchronise
           instead of hammering in lockstep. *)
        let hi = Float.min config.Run_config.retry_cap_ns (Float.max base (!prev_backoff *. 3.)) in
        let sleep = base +. (next_unit_float jitter *. (hi -. base)) in
        prev_backoff := sleep;
        Unix.sleepf (sleep /. 1e9)
      end
    in
    let run_once attempt =
      let a0 = Obs.Clock.now_ns () in
      let outcome =
        try
          let t = acquire pool p in
          (* Expose the instance to [cancel] for exactly the run window;
             cleared before release so a late cancel can never reach an
             instance parked for (or serving) another request. *)
          let h = p.pr_handle in
          Mutex.lock h.h_lock;
          h.h_running <- Some t;
          let cancelled = h.h_cancelled in
          Mutex.unlock h.h_lock;
          if cancelled then Runtime.cancel t;
          let outcome =
            Fun.protect
              ~finally:(fun () ->
                Mutex.lock h.h_lock;
                h.h_running <- None;
                Mutex.unlock h.h_lock)
              (fun () ->
                let sources, sinks = p.pr_io r in
                Runtime.run t ~sources ~sinks)
          in
          (* Reset and park the instance for the next request; a raise
             above leaves it un-released (dropped), never reused. *)
          release p t;
          outcome
        with exn ->
          (* Wiring/instantiation raises (caller bugs) are captured so
             the pool still runs every request to completion. *)
          Runtime.Kernel_failed
            {
              Runtime.f_graph = gname;
              f_kernel = "<harness>";
              f_exn = exn;
              f_backtrace = "";
              f_src = None;
              f_flight = Obs.Flight.snapshot ();
            }
      in
      let dt = Obs.Clock.now_ns () -. a0 in
      if !Obs.Trace.on then begin
        let track = Printf.sprintf "serve-domain-%d" domain in
        Obs.Trace.span ~track ~cat:"pool" ~pid:3
          ~name:
            (Printf.sprintf "req-%d%s%s" r
               (if attempt > 1 then Printf.sprintf " try-%d" attempt else "")
               (if stolen then " (stolen)" else ""))
          ~ts_ns:a0 ~dur_ns:dt ();
        Obs.Trace.observe_ns "pool.request" dt;
        Obs.Trace.incr_metric ("pool.outcome:" ^ Runtime.outcome_label outcome);
        (match outcome with
         | Runtime.Deadline_exceeded _ -> Obs.Trace.incr_metric "pool.deadline"
         | _ -> ())
      end;
      outcome
    in
    let rec supervise attempt =
      let outcome = run_once attempt in
      match outcome with
      | Runtime.Completed _ | Runtime.Cancelled -> outcome, attempt
      | Runtime.Deadline_exceeded _ | Runtime.Kernel_failed _ ->
        if p.pr_handle.h_cancelled then Runtime.Cancelled, attempt
        else if attempt <= config.Run_config.retries then begin
          Atomic.incr pool.p_retries;
          Obs.Flight.note Obs.Flight.Retry ~arg:(float_of_int attempt) gname;
          if !Obs.Trace.on then Obs.Trace.incr_metric "pool.retry";
          backoff ();
          supervise (attempt + 1)
        end
        else outcome, attempt
    in
    let outcome, attempts = supervise 1 in
    (match outcome with
     | Runtime.Completed _ -> Atomic.set pool.p_consec_failures 0
     | Runtime.Cancelled -> ()
     | Runtime.Deadline_exceeded _ | Runtime.Kernel_failed _ ->
       Atomic.incr pool.p_consec_failures);
    let finished = Obs.Clock.now_ns () in
    let dt = finished -. t0 in
    let latency =
      match p.pr_arrival with
      | Some _ -> Float.max 0.0 (finished -. arrival_abs)
      | None -> dt
    in
    Obs.Hdr.record pool.p_lat_hdrs.(domain) latency;
    record_result pool p
      { req_id = r; domain; stolen; outcome; attempts; shed = false; req_wall_ns = dt;
        req_latency_ns = latency }
  end

(* Batched execution: pump the requests' inputs through ONE warm run via
   per-slot source concatenation, then demultiplex the outputs by even
   split.  Only attempted when every request supplies length-known
   sources of identical per-slot length (so the split point is defined);
   any other shape, a non-Completed outcome or an output count not
   divisible by the batch size falls back to individual execution —
   correctness never depends on batching.  Returns [true] when the whole
   batch was served. *)
let execute_batch pool ~domain (ps : pending list) =
  let p0 = List.hd ps in
  let n = List.length ps in
  let cg = Runtime.compiled_graph p0.pr_compiled in
  let n_in = Array.length cg.Serialized.input_order in
  let n_out = Array.length cg.Serialized.output_order in
  let t0 = Obs.Clock.now_ns () in
  let ios = List.map (fun p -> p, p.pr_io p.pr_handle.h_id) ps in
  let shapes_ok =
    List.for_all
      (fun (_, (srcs, snks)) -> List.length srcs = n_in && List.length snks = n_out)
      ios
  in
  let slot_sources i = List.map (fun (_, (srcs, _)) -> List.nth srcs i) ios in
  let lengths_ok =
    shapes_ok
    && List.for_all
         (fun i ->
           match List.map Io.source_length (slot_sources i) with
           | Some l0 :: rest -> List.for_all (fun l -> l = Some l0) rest
           | _ -> false)
         (List.init n_in Fun.id)
  in
  if not lengths_ok then false
  else begin
    let sources = List.map (fun i -> Io.concat (slot_sources i)) (List.init n_in Fun.id) in
    let collectors = List.init n_out (fun _ -> Io.buffer ()) in
    let t = acquire pool p0 in
    match Runtime.run t ~sources ~sinks:(List.map fst collectors) with
    | Runtime.Completed _ as outcome ->
      release p0 t;
      let outputs =
        List.map (fun (_, contents) -> Array.of_list (contents ())) collectors
      in
      if not (List.for_all (fun arr -> Array.length arr mod n = 0) outputs) then false
      else begin
        let finished = Obs.Clock.now_ns () in
        let dt = (finished -. t0) /. float_of_int n in
        List.iteri
          (fun k (p, (_, snks)) ->
            List.iteri
              (fun j snk ->
                let arr = List.nth outputs j in
                let per = Array.length arr / n in
                Io.sink_push_block snk (Array.sub arr (k * per) per))
              snks;
            Obs.Hdr.record pool.p_lat_hdrs.(domain) dt;
            record_result pool p
              { req_id = p.pr_handle.h_id; domain; stolen = false; outcome; attempts = 1;
                shed = false; req_wall_ns = dt; req_latency_ns = dt })
          ios;
        Atomic.set pool.p_consec_failures 0;
        Atomic.fetch_and_add pool.p_batched n |> ignore;
        if !Obs.Trace.on then begin
          Obs.Trace.span
            ~track:(Printf.sprintf "serve-domain-%d" domain)
            ~cat:"pool" ~pid:3
            ~name:(Printf.sprintf "batch-%d" n)
            ~ts_ns:t0 ~dur_ns:(finished -. t0) ();
          Obs.Trace.add_metric "pool.batched" (float_of_int n)
        end;
        true
      end
    | _other ->
      release p0 t;
      false
    | exception _ -> false (* instance dropped; individual path decides *)
  end

(* Work selection, under p_lock.  Owner takes the oldest of its own FIFO
   (batch-popping consecutive compatible requests when batching is on);
   a drained owner steals the oldest queued request of another domain.
   Stolen requests are never batched. *)
type work =
  | Single of pending * bool  (* pending, stolen *)
  | Batch of pending list

let pop_work pool domain =
  let own = pool.p_queues.(domain) in
  match Queue.take_opt own with
  | Some p ->
    pool.p_queued <- pool.p_queued - 1;
    let batch_n = p.pr_config.Run_config.batch in
    if p.pr_batchable && batch_n > 1 then begin
      let rec collect acc k =
        if k >= batch_n then List.rev acc
        else
          match Queue.peek_opt own with
          | Some q
            when q.pr_batchable
                 && q.pr_compiled == p.pr_compiled
                 && q.pr_config == p.pr_config
                 && not q.pr_handle.h_cancelled ->
            ignore (Queue.take own);
            pool.p_queued <- pool.p_queued - 1;
            collect (q :: acc) (k + 1)
          | _ -> List.rev acc
      in
      match collect [ p ] 1 with
      | [ only ] -> Some (Single (only, false))
      | ps -> Some (Batch ps)
    end
    else Some (Single (p, false))
  | None ->
    let rec try_steal k =
      if k >= pool.p_domains then None
      else
        match Queue.take_opt pool.p_queues.((domain + k) mod pool.p_domains) with
        | Some p ->
          pool.p_queued <- pool.p_queued - 1;
          Atomic.incr pool.p_steals;
          Some (Single (p, true))
        | None -> try_steal (k + 1)
    in
    try_steal 1

let worker pool domain () =
  Obs.Trace.set_thread_label (Printf.sprintf "serve-domain-%d" domain);
  let rec loop () =
    Mutex.lock pool.p_lock;
    let rec take () =
      match pop_work pool domain with
      | Some w ->
        Atomic.incr pool.p_executing;
        Mutex.unlock pool.p_lock;
        Some w
      | None ->
        if pool.p_stop then begin
          Mutex.unlock pool.p_lock;
          None
        end
        else begin
          Condition.wait pool.p_cond pool.p_lock;
          take ()
        end
    in
    match take () with
    | None -> ()
    | Some (Single (p, stolen)) ->
      execute pool ~domain ~stolen p;
      loop ()
    | Some (Batch ps) ->
      (* p_executing counts the batch as one unit of in-flight work. *)
      if breaker_open pool || not (execute_batch pool ~domain ps) then begin
        (* Individual fallback executes (or sheds) every member; the
           batch's single p_executing slot stays held throughout, and
           record_result decrements once per member — rebalance. *)
        Atomic.fetch_and_add pool.p_executing (List.length ps - 1) |> ignore;
        List.iter (execute pool ~domain ~stolen:false) ps
      end
      else Atomic.fetch_and_add pool.p_executing (List.length ps - 1) |> ignore;
      loop ()
  in
  loop ()

let create ?(config = Run_config.default) ~domains () =
  if domains <= 0 then invalid_arg "cgsim: Pool.create needs a positive domain count";
  (* OCaml 5 minor collections stop every domain; the same larger minor
     heap x86sim uses keeps the parallel instances off each other's
     backs.  Restored at shutdown. *)
  let gc = Gc.get () in
  Gc.set { gc with Gc.minor_heap_size = max gc.Gc.minor_heap_size (8 * 1024 * 1024) };
  let pool =
    {
      p_config = config;
      p_domains = domains;
      p_lock = Mutex.create ();
      p_cond = Condition.create ();
      p_queues = Array.init domains (fun _ -> Queue.create ());
      p_stop = false;
      p_next_id = 0;
      p_queued = 0;
      p_joined = false;
      p_workers = [||];
      p_t0 = Obs.Clock.now_ns ();
      p_gc = gc;
      p_executing = Atomic.make 0;
      p_served = Atomic.make 0;
      p_steals = Atomic.make 0;
      p_retries = Atomic.make 0;
      p_warm_hits = Atomic.make 0;
      p_cold_builds = Atomic.make 0;
      p_batched = Atomic.make 0;
      p_completed = Atomic.make 0;
      p_deadline = Atomic.make 0;
      p_max_steps = Atomic.make 0;
      p_cancelled = Atomic.make 0;
      p_failed = Atomic.make 0;
      p_shed = Atomic.make 0;
      p_retried_ok = Atomic.make 0;
      p_consec_failures = Atomic.make 0;
      p_breaker_tripped = Atomic.make false;
      p_breaker_flight = ref [];
      p_lat_hdrs = Array.init domains (fun _ -> Obs.Hdr.create ());
    }
  in
  pool.p_workers <- Array.init domains (fun d -> Domain.spawn (worker pool d));
  pool

let submit pool ?config ?not_before_ns ?on_complete ~io (g : Serialized.t) =
  let config = Option.value config ~default:pool.p_config in
  (* Compile (or fetch the cached artifact) before queueing: compile
     errors are caller bugs and raise here, never from a worker. *)
  let entry = acquire_entry g config in
  let pr_entry = if config.Run_config.warm then Some entry else None in
  let pr_batchable =
    config.Run_config.batch > 1
    && Runtime.compiled_batchable entry.e_compiled
    && pr_entry <> None
    && not_before_ns = None
    && config.Run_config.faults = None
  in
  Mutex.lock pool.p_lock;
  if pool.p_stop then begin
    Mutex.unlock pool.p_lock;
    invalid_arg "cgsim: Pool.submit after shutdown"
  end;
  let id = pool.p_next_id in
  pool.p_next_id <- id + 1;
  let h =
    {
      h_id = id;
      h_lock = Mutex.create ();
      h_cond = Condition.create ();
      h_result = None;
      h_cancelled = false;
      h_running = None;
    }
  in
  let p =
    {
      pr_handle = h;
      pr_graph = g;
      pr_config = config;
      pr_compiled = entry.e_compiled;
      pr_entry;
      pr_batchable;
      pr_arrival = not_before_ns;
      pr_io = io;
      pr_on_complete = on_complete;
    }
  in
  (* Seed round-robin: request [id] belongs to domain [id mod domains];
     per-domain queues are FIFO, so one domain replays submit order. *)
  Queue.push p pool.p_queues.(id mod pool.p_domains);
  pool.p_queued <- pool.p_queued + 1;
  Condition.broadcast pool.p_cond;
  Mutex.unlock pool.p_lock;
  h

let await h =
  Mutex.lock h.h_lock;
  let rec wait () =
    match h.h_result with
    | Some r ->
      Mutex.unlock h.h_lock;
      r
    | None ->
      Condition.wait h.h_cond h.h_lock;
      wait ()
  in
  wait ()

let poll h =
  Mutex.lock h.h_lock;
  let r = h.h_result in
  Mutex.unlock h.h_lock;
  r

let cancel h =
  Mutex.lock h.h_lock;
  h.h_cancelled <- true;
  (match h.h_running with Some inst -> Runtime.cancel inst | None -> ());
  Mutex.unlock h.h_lock

let metrics pool =
  (* Fold the per-domain recorders and the outcome tallies into one
     metrics registry, under the "family.parts:instance" key convention
     Obs.Prom renders from.  Safe while requests are in flight (the HDR
     merge reads live buckets; counts may trail by a request). *)
  let m = Obs.Metrics.create () in
  Array.iter (fun hdr -> Obs.Metrics.merge_hdr m "pool.request" hdr) pool.p_lat_hdrs;
  let addc name v = if v > 0 then Obs.Metrics.add m name (float_of_int v) in
  addc "pool.outcome:completed" (Atomic.get pool.p_completed);
  addc "pool.outcome:deadline" (Atomic.get pool.p_deadline);
  addc "pool.outcome:max-steps" (Atomic.get pool.p_max_steps);
  addc "pool.outcome:cancelled" (Atomic.get pool.p_cancelled);
  addc "pool.outcome:failed" (Atomic.get pool.p_failed);
  addc "pool.shed" (Atomic.get pool.p_shed);
  addc "pool.retries" (Atomic.get pool.p_retries);
  addc "pool.steals" (Atomic.get pool.p_steals);
  addc "pool.warm_hit" (Atomic.get pool.p_warm_hits);
  addc "pool.cold" (Atomic.get pool.p_cold_builds);
  addc "pool.batched" (Atomic.get pool.p_batched);
  Obs.Metrics.high_water m "pool.domains" (float_of_int pool.p_domains);
  Obs.Metrics.snapshot m

let shutdown pool =
  Mutex.lock pool.p_lock;
  if pool.p_joined then Mutex.unlock pool.p_lock
  else begin
    pool.p_stop <- true;
    pool.p_joined <- true;
    Condition.broadcast pool.p_cond;
    Mutex.unlock pool.p_lock;
    Array.iter Domain.join pool.p_workers;
    Gc.set pool.p_gc
  end

(* ------------------------------------------------------------------ *)
(* Batch runs                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  domains : int;
  requests : int;
  results : request_result array;
  steals : int;
  retries : int;
  warm_hits : int;
  cold_builds : int;
  batched : int;
  breaker_tripped : bool;
  counts : outcome_counts;
  wall_ns : float;
  metrics : Obs.Metrics.snapshot;
  breaker_flight : Obs.Flight.entry list;
}

let run ?(config = Run_config.default) ?arrivals ~domains ~requests ~io (g : Serialized.t) =
  if domains <= 0 then invalid_arg "cgsim: Pool.run needs a positive domain count";
  if requests <= 0 then invalid_arg "cgsim: Pool.run needs a positive request count";
  (match arrivals with
   | Some a when Array.length a <> requests ->
     invalid_arg "cgsim: Pool.run ~arrivals must have one offset per request"
   | Some _ | None -> ());
  let pool = create ~config ~domains () in
  let t0 = pool.p_t0 in
  let handles =
    Array.init requests (fun r ->
        let not_before_ns = Option.map (fun a -> t0 +. a.(r)) arrivals in
        submit pool ?not_before_ns ~io g)
  in
  let results = Array.map await handles in
  shutdown pool;
  let wall_ns = Obs.Clock.now_ns () -. t0 in
  {
    domains;
    requests;
    results;
    steals = Atomic.get pool.p_steals;
    retries = Atomic.get pool.p_retries;
    warm_hits = Atomic.get pool.p_warm_hits;
    cold_builds = Atomic.get pool.p_cold_builds;
    batched = Atomic.get pool.p_batched;
    breaker_tripped = Atomic.get pool.p_breaker_tripped;
    counts = count_outcomes results;
    wall_ns;
    metrics = metrics pool;
    breaker_flight = !(pool.p_breaker_flight);
  }

let metrics_exposition s = Obs.Prom.of_snapshot s.metrics

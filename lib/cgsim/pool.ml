type request_result = {
  req_id : int;
  domain : int;
  stolen : bool;
  outcome : (Sched.stats, string) result;
  req_wall_ns : float;
}

type stats = {
  domains : int;
  requests : int;
  results : request_result array;
  steals : int;
  wall_ns : float;
}

(* Per-domain work deque over a fixed population of request ids.  All
   items are seeded before any domain starts and nothing is ever pushed
   back, so the structure only shrinks: a mutex per deque is plenty, and
   "every deque observed empty" is a sound termination condition.  The
   owner pops the bottom (LIFO over its own seed order keeps it on the
   requests it was dealt last), thieves take the top — the classic
   work-stealing discipline, minus the lock-free heroics that a
   requests-scale workload (each item is a whole graph simulation)
   cannot measure. *)
type deque = {
  items : int array;
  mutable top : int;  (* next index thieves take *)
  mutable bot : int;  (* one past the owner's end *)
  lock : Mutex.t;
}

let deque_of_list ids =
  let items = Array.of_list ids in
  { items; top = 0; bot = Array.length items; lock = Mutex.create () }

let with_lock d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let pop_bottom d =
  with_lock d (fun () ->
      if d.top < d.bot then begin
        d.bot <- d.bot - 1;
        Some d.items.(d.bot)
      end
      else None)

let steal_top d =
  with_lock d (fun () ->
      if d.top < d.bot then begin
        let r = d.items.(d.top) in
        d.top <- d.top + 1;
        Some r
      end
      else None)

let run ?queue_capacity ?block_io ?spsc ~domains ~requests ~io (g : Serialized.t) =
  if domains <= 0 then invalid_arg "cgsim: Pool.run needs a positive domain count";
  if requests <= 0 then invalid_arg "cgsim: Pool.run needs a positive request count";
  (* Lint once up front — the pool-safety pass flags kernels whose bodies
     share mutable state across the instances the domains run. *)
  Runtime.preflight ~lint:`Warn g;
  (* Seed round-robin: request r belongs to domain [r mod domains].  The
     per-domain lists are built back-to-front so the owner's LIFO pop
     replays its seeds in ascending request order — with one domain the
     pool degenerates to the sequential loop [for r = 0 to requests-1]. *)
  let seeds = Array.make domains [] in
  for r = requests - 1 downto 0 do
    let d = r mod domains in
    seeds.(d) <- r :: seeds.(d)
  done;
  let deques = Array.map (fun ids -> deque_of_list (List.rev ids)) seeds in
  let dummy =
    { req_id = -1; domain = -1; stolen = false; outcome = Error "not executed"; req_wall_ns = 0. }
  in
  (* Each slot is written exactly once, by whichever domain executed the
     request, and read only after the joins — no lock needed. *)
  let results = Array.make requests dummy in
  let steals = Atomic.make 0 in
  let execute ~domain ~stolen r =
    let t0 = Obs.Clock.now_ns () in
    let outcome =
      try
        let t = Runtime.instantiate ?queue_capacity ?block_io ?spsc g in
        let sources, sinks = io r in
        (* The graph is linted once when the pool is built, not once per
           request on every serving domain. *)
        Ok (Runtime.run ~lint:`Off t ~sources ~sinks)
      with exn -> Error (Printexc.to_string exn)
    in
    let dt = Obs.Clock.now_ns () -. t0 in
    if !Obs.Trace.on then begin
      let track = Printf.sprintf "serve-domain-%d" domain in
      Obs.Trace.span ~track ~cat:"pool" ~pid:3
        ~name:(Printf.sprintf "req-%d%s" r (if stolen then " (stolen)" else ""))
        ~ts_ns:t0 ~dur_ns:dt ();
      Obs.Trace.observe_ns "pool.request" dt;
      if stolen then Obs.Trace.incr_metric "pool.steals"
    end;
    results.(r) <- { req_id = r; domain; stolen; outcome; req_wall_ns = dt }
  in
  let worker domain () =
    Obs.Trace.set_thread_label (Printf.sprintf "serve-domain-%d" domain);
    let own = deques.(domain) in
    let rec try_steal k =
      if k >= domains then None
      else
        match steal_top deques.((domain + k) mod domains) with
        | Some _ as hit -> hit
        | None -> try_steal (k + 1)
    in
    let rec loop () =
      match pop_bottom own with
      | Some r ->
        execute ~domain ~stolen:false r;
        loop ()
      | None -> (
        match try_steal 1 with
        | Some r ->
          Atomic.incr steals;
          execute ~domain ~stolen:true r;
          loop ()
        | None -> ())
    in
    loop ()
  in
  (* OCaml 5 minor collections stop every domain; the same larger minor
     heap x86sim uses keeps the parallel instances off each other's
     backs.  Restored after the joins. *)
  let gc = Gc.get () in
  Gc.set { gc with Gc.minor_heap_size = max gc.Gc.minor_heap_size (8 * 1024 * 1024) };
  let t0 = Obs.Clock.now_ns () in
  let spawned = Array.init domains (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join spawned;
  let wall_ns = Obs.Clock.now_ns () -. t0 in
  Gc.set gc;
  { domains; requests; results; steals = Atomic.get steals; wall_ns }

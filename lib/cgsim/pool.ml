type request_result = {
  req_id : int;
  domain : int;
  stolen : bool;
  outcome : Runtime.outcome;
  attempts : int;
  shed : bool;
  req_wall_ns : float;
  req_latency_ns : float;
      (* closed loop: service time (= req_wall_ns); open loop (run with
         ~arrivals): completion minus scheduled arrival, so time spent
         waiting for a free domain counts — the latency a client sees *)
}

type outcome_counts = {
  n_completed : int;
  n_deadline : int;
  n_cancelled : int;
  n_failed : int;
  n_shed : int;
  n_retried_ok : int;  (* completed on a retry attempt *)
}

type stats = {
  domains : int;
  requests : int;
  results : request_result array;
  steals : int;
  retries : int;
  warm_hits : int;
  cold_builds : int;
  batched : int;
  breaker_tripped : bool;
  counts : outcome_counts;
  wall_ns : float;
  metrics : Obs.Metrics.snapshot;
      (* always-on pool metrics: request-latency HDR histogram
         ("pool.request", per-domain recorders merged at join), outcome
         counters, steal/retry/warm/batch totals — populated with
         tracing off *)
  breaker_flight : Obs.Flight.entry list;
      (* flight-recorder window from the domain that opened the circuit
         breaker, oldest first; [] when the breaker never tripped *)
}

let count_outcomes results =
  Array.fold_left
    (fun c r ->
      if r.shed then { c with n_shed = c.n_shed + 1 }
      else
        match r.outcome with
        | Runtime.Completed _ ->
          {
            c with
            n_completed = c.n_completed + 1;
            n_retried_ok = (c.n_retried_ok + if r.attempts > 1 then 1 else 0);
          }
        | Runtime.Deadline_exceeded _ -> { c with n_deadline = c.n_deadline + 1 }
        | Runtime.Cancelled -> { c with n_cancelled = c.n_cancelled + 1 }
        | Runtime.Kernel_failed _ -> { c with n_failed = c.n_failed + 1 })
    { n_completed = 0; n_deadline = 0; n_cancelled = 0; n_failed = 0; n_shed = 0; n_retried_ok = 0 }
    results

(* Splitmix-style seeded stream for backoff jitter: deterministic per
   (pool seed, request id), no global Random state. *)
let jitter_state ~seed ~req =
  ref (Int64.logxor (Int64.of_int ((seed * 0x9e3779b9) + 1)) (Int64.of_int ((req + 1) * 0x85ebca6b)))

let next_unit_float st =
  let x = !st in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  st := x;
  let bits = Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 11) in
  float_of_int (bits land 0xFFFFF) /. float_of_int 0x100000

(* ------------------------------------------------------------------ *)
(* Warm-instance cache                                                 *)
(* ------------------------------------------------------------------ *)

(* Compiled graphs and their reusable instances, keyed by graph identity
   (physical — recompiling a structurally equal Serialized.t is exactly
   what the cache exists to avoid, so callers are expected to hold on to
   one) plus configuration compatibility.  Bounded two ways: at most
   [cache_entries] distinct (graph, config) pairs, least-recently-used
   evicted, and at most [instances_per_entry] idle instances parked per
   entry — a poisoned instance (reset failed) is simply dropped, which
   is the eviction path for broken state. *)

(* Run_config compatibility for cache keying.  Scalar knobs compare
   structurally; hooks and fault plans compare physically (closures have
   no structural equality — and two distinct plans genuinely are
   different keys, since their shared fire budgets are entry state). *)
let config_key_equal (a : Run_config.t) (b : Run_config.t) =
  a.Run_config.hooks == b.Run_config.hooks
  && a.Run_config.queue_capacity = b.Run_config.queue_capacity
  && a.Run_config.block_io = b.Run_config.block_io
  && a.Run_config.spsc = b.Run_config.spsc
  && a.Run_config.lint = b.Run_config.lint
  && a.Run_config.deadline_ns = b.Run_config.deadline_ns
  && a.Run_config.max_steps = b.Run_config.max_steps
  && a.Run_config.fuse = b.Run_config.fuse
  && a.Run_config.unboxed = b.Run_config.unboxed
  && (match a.Run_config.faults, b.Run_config.faults with
      | None, None -> true
      | Some x, Some y -> x == y
      | _ -> false)

type cache_entry = {
  e_graph : Serialized.t;
  e_config : Run_config.t;
  e_compiled : Runtime.compiled;
  e_lock : Mutex.t;
  mutable e_free : Runtime.t list;  (* idle reset instances, under e_lock *)
  mutable e_stamp : int;  (* LRU clock value of the last use *)
}

let cache_entries = 8

let instances_per_entry = 8

let cache : cache_entry list ref = ref []

let cache_lock = Mutex.create ()

let cache_clock = ref 0

let clear_warm_cache () =
  Mutex.lock cache_lock;
  cache := [];
  Mutex.unlock cache_lock

(* Find-or-compile under the cache lock.  Compilation (validation +
   registry resolution + the one pre-flight lint whose verdict the entry
   carries) happens at most once per entry; warm hits and retries never
   re-lint.  May raise exactly as [Runtime.compile] does — the lock is
   released first. *)
let acquire_entry g config =
  Mutex.lock cache_lock;
  incr cache_clock;
  let stamp = !cache_clock in
  match
    List.find_opt (fun e -> e.e_graph == g && config_key_equal e.e_config config) !cache
  with
  | Some e ->
    e.e_stamp <- stamp;
    Mutex.unlock cache_lock;
    e
  | None ->
    Mutex.unlock cache_lock;
    let compiled = Runtime.compile ~config g in
    let entry =
      {
        e_graph = g;
        e_config = config;
        e_compiled = compiled;
        e_lock = Mutex.create ();
        e_free = [];
        e_stamp = stamp;
      }
    in
    Mutex.lock cache_lock;
    let entries = entry :: !cache in
    let entries =
      if List.length entries <= cache_entries then entries
      else begin
        (* Evict the least recently used entry (and its idle instances). *)
        let oldest =
          List.fold_left (fun acc e -> if e.e_stamp < acc.e_stamp then e else acc)
            (List.hd entries) entries
        in
        List.filter (fun e -> e != oldest) entries
      end
    in
    cache := entries;
    Mutex.unlock cache_lock;
    entry

(* ------------------------------------------------------------------ *)
(* Work deques                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-domain work deque over a fixed population of request ids.  All
   items are seeded before any domain starts and nothing is ever pushed
   back, so the structure only shrinks: a mutex per deque is plenty, and
   "every deque observed empty" is a sound termination condition.  The
   owner pops the bottom (LIFO over its own seed order keeps it on the
   requests it was dealt last), thieves take the top — the classic
   work-stealing discipline, minus the lock-free heroics that a
   requests-scale workload (each item is a whole graph simulation)
   cannot measure. *)
type deque = {
  items : int array;
  mutable top : int;  (* next index thieves take *)
  mutable bot : int;  (* one past the owner's end *)
  lock : Mutex.t;
}

let deque_of_list ids =
  let items = Array.of_list ids in
  { items; top = 0; bot = Array.length items; lock = Mutex.create () }

let with_lock d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let pop_bottom d =
  with_lock d (fun () ->
      if d.top < d.bot then begin
        d.bot <- d.bot - 1;
        Some d.items.(d.bot)
      end
      else None)

(* Owner-side bulk pop for batching: up to [n] requests in one lock
   acquisition, returned in ascending request order (the order the
   one-at-a-time pops would have replayed). *)
let pop_bottom_many d n =
  with_lock d (fun () ->
      let take = min n (d.bot - d.top) in
      if take <= 0 then []
      else begin
        let out = ref [] in
        for _ = 1 to take do
          d.bot <- d.bot - 1;
          out := d.items.(d.bot) :: !out
        done;
        List.rev !out
      end)

let steal_top d =
  with_lock d (fun () ->
      if d.top < d.bot then begin
        let r = d.items.(d.top) in
        d.top <- d.top + 1;
        Some r
      end
      else None)

let run ?(config = Run_config.default) ?arrivals ~domains ~requests ~io (g : Serialized.t) =
  if domains <= 0 then invalid_arg "cgsim: Pool.run needs a positive domain count";
  if requests <= 0 then invalid_arg "cgsim: Pool.run needs a positive request count";
  (match arrivals with
   | Some a when Array.length a <> requests ->
     invalid_arg "cgsim: Pool.run ~arrivals must have one offset per request"
   | Some _ | None -> ());
  (* Compile once: validation, registry resolution and the pool-safety
     lint (which flags kernels whose bodies share mutable state across
     the instances the domains run) all happen here, never per request
     or per retry attempt.  On the warm path the compiled artifact —
     lint verdict included — comes from the cache. *)
  let warm_entry = if config.Run_config.warm then Some (acquire_entry g config) else None in
  let compiled =
    match warm_entry with
    | Some e -> e.e_compiled
    | None -> Runtime.compile ~config g
  in
  (* Batching gate: only closed-loop runs of a provably batchable graph
     (every kernel declared [~pure:true] AND [~stateless:true] — a merely
     pure kernel may still carry a delay line across the concatenation
     boundary) are multiplexed, and only on the warm path; fault plans
     stay unbatched so per-request injection accounting keeps its
     meaning. *)
  let batch_n =
    if
      config.Run_config.batch > 1
      && Runtime.compiled_batchable compiled
      && warm_entry <> None
      && arrivals = None
      && config.Run_config.faults = None
    then config.Run_config.batch
    else 1
  in
  (* Seed round-robin: request r belongs to domain [r mod domains].  The
     per-domain lists are built back-to-front so the owner's LIFO pop
     replays its seeds in ascending request order — with one domain the
     pool degenerates to the sequential loop [for r = 0 to requests-1]. *)
  let seeds = Array.make domains [] in
  for r = requests - 1 downto 0 do
    let d = r mod domains in
    seeds.(d) <- r :: seeds.(d)
  done;
  let deques = Array.map (fun ids -> deque_of_list (List.rev ids)) seeds in
  let dummy =
    {
      req_id = -1;
      domain = -1;
      stolen = false;
      outcome = Runtime.Cancelled;
      attempts = 0;
      shed = false;
      req_wall_ns = 0.;
      req_latency_ns = 0.;
    }
  in
  (* Each slot is written exactly once, by whichever domain executed the
     request, and read only after the joins — no lock needed. *)
  let results = Array.make requests dummy in
  let steals = Atomic.make 0 in
  let retries_total = Atomic.make 0 in
  let warm_hits = Atomic.make 0 in
  let cold_builds = Atomic.make 0 in
  let batched_total = Atomic.make 0 in
  (* Open-loop arrivals are offsets from this instant (set just before
     the workers spawn). *)
  let pool_t0 = ref 0.0 in
  (* One latency recorder per domain, merged into the pool metrics after
     the joins: recording stays lock-free on the serving path, and the
     merge is the cross-domain HDR aggregation story in practice. *)
  let lat_hdrs = Array.init domains (fun _ -> Obs.Hdr.create ()) in
  let breaker_flight = ref [] in
  (* Instance acquisition: pop a reset instance from the warm entry, or
     build a fresh one (the cold path — also the warm pool's fill
     path).  Release resets and parks the instance for the next request;
     an instance whose reset fails is dropped, never reused. *)
  let acquire () =
    match warm_entry with
    | Some e ->
      Mutex.lock e.e_lock;
      (match e.e_free with
       | inst :: rest ->
         e.e_free <- rest;
         Mutex.unlock e.e_lock;
         Atomic.incr warm_hits;
         if !Obs.Trace.on then Obs.Trace.incr_metric "pool.warm_hit";
         inst
       | [] ->
         Mutex.unlock e.e_lock;
         Atomic.incr cold_builds;
         Runtime.new_instance compiled)
    | None ->
      Atomic.incr cold_builds;
      Runtime.new_instance compiled
  in
  let release inst =
    match warm_entry with
    | None -> ()
    | Some e ->
      (match Runtime.reset inst with
       | () ->
         Mutex.lock e.e_lock;
         if List.length e.e_free < instances_per_entry then e.e_free <- inst :: e.e_free;
         Mutex.unlock e.e_lock
       | exception _ -> () (* poisoned: evict by dropping *))
  in
  (* Circuit breaker: consecutive requests whose FINAL outcome was a
     failure or deadline (retries exhausted).  Once the count reaches the
     threshold the circuit opens and every not-yet-started request is
     shed without executing — load shedding under systemic failure. *)
  let consec_failures = Atomic.make 0 in
  let breaker_tripped = Atomic.make false in
  let breaker_open () =
    match config.Run_config.breaker_threshold with
    | None -> false
    | Some th -> Atomic.get consec_failures >= th
  in
  let execute ~domain ~stolen r =
    if breaker_open () then begin
      if not (Atomic.exchange breaker_tripped true) then begin
        (* First domain to observe the open circuit dumps its flight
           window: the events leading up to the failure streak. *)
        Obs.Flight.note Obs.Flight.Breaker g.Serialized.gname;
        breaker_flight := Obs.Flight.snapshot ();
        if !Obs.Trace.on then
          Obs.Trace.instant ~track:"pool" ~cat:"pool" "breaker-open"
      end;
      if !Obs.Trace.on then Obs.Trace.incr_metric "pool.shed";
      results.(r) <-
        { req_id = r; domain; stolen; outcome = Runtime.Cancelled; attempts = 0; shed = true;
          req_wall_ns = 0.; req_latency_ns = 0. }
    end
    else begin
      (* Open loop: wait out this request's scheduled arrival, then count
         latency from the arrival instant, so any backlog the pool built
         up is charged to the requests that queued behind it. *)
      let arrival_abs =
        match arrivals with
        | Some a ->
          let target = !pool_t0 +. a.(r) in
          let wait = target -. Obs.Clock.now_ns () in
          if wait > 0.0 then Unix.sleepf (wait /. 1e9);
          target
        | None -> 0.0
      in
      let t0 = Obs.Clock.now_ns () in
      Obs.Flight.note Obs.Flight.Request ~arg:(float_of_int r) g.Serialized.gname;
      let jitter = jitter_state ~seed:config.Run_config.seed ~req:r in
      let prev_backoff = ref config.Run_config.retry_base_ns in
      let backoff () =
        let base = config.Run_config.retry_base_ns in
        if base > 0. then begin
          (* Decorrelated jitter: sleep in [base, min(cap, 3*prev)],
             uniformly — retries from concurrent domains desynchronise
             instead of hammering in lockstep. *)
          let hi = Float.min config.Run_config.retry_cap_ns (Float.max base (!prev_backoff *. 3.)) in
          let sleep = base +. (next_unit_float jitter *. (hi -. base)) in
          prev_backoff := sleep;
          Unix.sleepf (sleep /. 1e9)
        end
      in
      let run_once attempt =
        let a0 = Obs.Clock.now_ns () in
        let outcome =
          try
            let t = acquire () in
            let sources, sinks = io r in
            let outcome = Runtime.run t ~sources ~sinks in
            (* Reset and park the instance for the next request; a raise
               above leaves it un-released (dropped), never reused. *)
            release t;
            outcome
          with exn ->
            (* Wiring/instantiation raises (caller bugs) are captured so
               the pool still runs every request to completion. *)
            Runtime.Kernel_failed
              {
                Runtime.f_graph = g.Serialized.gname;
                f_kernel = "<harness>";
                f_exn = exn;
                f_backtrace = "";
                f_src = None;
                f_flight = Obs.Flight.snapshot ();
              }
        in
        let dt = Obs.Clock.now_ns () -. a0 in
        if !Obs.Trace.on then begin
          let track = Printf.sprintf "serve-domain-%d" domain in
          Obs.Trace.span ~track ~cat:"pool" ~pid:3
            ~name:
              (Printf.sprintf "req-%d%s%s" r
                 (if attempt > 1 then Printf.sprintf " try-%d" attempt else "")
                 (if stolen then " (stolen)" else ""))
            ~ts_ns:a0 ~dur_ns:dt ();
          Obs.Trace.observe_ns "pool.request" dt;
          Obs.Trace.incr_metric ("pool.outcome." ^ Runtime.outcome_label outcome);
          (match outcome with
           | Runtime.Deadline_exceeded _ -> Obs.Trace.incr_metric "pool.deadline"
           | _ -> ())
        end;
        outcome
      in
      let rec supervise attempt =
        let outcome = run_once attempt in
        match outcome with
        | Runtime.Completed _ | Runtime.Cancelled -> outcome, attempt
        | Runtime.Deadline_exceeded _ | Runtime.Kernel_failed _ ->
          if attempt <= config.Run_config.retries then begin
            Atomic.incr retries_total;
            Obs.Flight.note Obs.Flight.Retry ~arg:(float_of_int attempt) g.Serialized.gname;
            if !Obs.Trace.on then Obs.Trace.incr_metric "pool.retry";
            backoff ();
            supervise (attempt + 1)
          end
          else outcome, attempt
      in
      let outcome, attempts = supervise 1 in
      (match outcome with
       | Runtime.Completed _ -> Atomic.set consec_failures 0
       | Runtime.Cancelled -> ()
       | Runtime.Deadline_exceeded _ | Runtime.Kernel_failed _ -> Atomic.incr consec_failures);
      let finished = Obs.Clock.now_ns () in
      let dt = finished -. t0 in
      let latency =
        match arrivals with Some _ -> Float.max 0.0 (finished -. arrival_abs) | None -> dt
      in
      Obs.Hdr.record lat_hdrs.(domain) latency;
      results.(r) <-
        { req_id = r; domain; stolen; outcome; attempts; shed = false; req_wall_ns = dt;
          req_latency_ns = latency }
    end
  in
  (* Batched execution: pump [rs]'s inputs through ONE warm run via
     per-slot source concatenation, then demultiplex the outputs by even
     split.  Only attempted when every request supplies length-known
     sources of identical per-slot length (so the split point is
     defined); any other shape, a non-Completed outcome or an output
     count not divisible by the batch size falls back to individual
     execution — correctness never depends on batching.  Returns [true]
     when the whole batch was served. *)
  let execute_batch ~domain rs =
    let n = List.length rs in
    let cg = Runtime.compiled_graph compiled in
    let n_in = Array.length cg.Serialized.input_order in
    let n_out = Array.length cg.Serialized.output_order in
    let t0 = Obs.Clock.now_ns () in
    let ios = List.map (fun r -> r, io r) rs in
    let shapes_ok =
      List.for_all
        (fun (_, (srcs, snks)) -> List.length srcs = n_in && List.length snks = n_out)
        ios
    in
    let slot_sources i = List.map (fun (_, (srcs, _)) -> List.nth srcs i) ios in
    let lengths_ok =
      shapes_ok
      && List.for_all
           (fun i ->
             match List.map Io.source_length (slot_sources i) with
             | Some l0 :: rest -> List.for_all (fun l -> l = Some l0) rest
             | _ -> false)
           (List.init n_in Fun.id)
    in
    if not lengths_ok then false
    else begin
      let sources = List.map (fun i -> Io.concat (slot_sources i)) (List.init n_in Fun.id) in
      let collectors = List.init n_out (fun _ -> Io.buffer ()) in
      let t = acquire () in
      match Runtime.run t ~sources ~sinks:(List.map fst collectors) with
      | Runtime.Completed _ as outcome ->
        release t;
        let outputs =
          List.map (fun (_, contents) -> Array.of_list (contents ())) collectors
        in
        if not (List.for_all (fun arr -> Array.length arr mod n = 0) outputs) then false
        else begin
          let finished = Obs.Clock.now_ns () in
          let dt = (finished -. t0) /. float_of_int n in
          List.iteri
            (fun k (r, (_, snks)) ->
              List.iteri
                (fun j snk ->
                  let arr = List.nth outputs j in
                  let per = Array.length arr / n in
                  Io.sink_push_block snk (Array.sub arr (k * per) per))
                snks;
              Obs.Hdr.record lat_hdrs.(domain) dt;
              results.(r) <-
                { req_id = r; domain; stolen = false; outcome; attempts = 1; shed = false;
                  req_wall_ns = dt; req_latency_ns = dt })
            ios;
          Atomic.set consec_failures 0;
          Atomic.fetch_and_add batched_total n |> ignore;
          if !Obs.Trace.on then begin
            Obs.Trace.span
              ~track:(Printf.sprintf "serve-domain-%d" domain)
              ~cat:"pool" ~pid:3
              ~name:(Printf.sprintf "batch-%d" n)
              ~ts_ns:t0 ~dur_ns:(finished -. t0) ();
            Obs.Trace.add_metric "pool.batched" (float_of_int n)
          end;
          true
        end
      | _other ->
        release t;
        false
      | exception _ -> false (* instance dropped; individual path decides *)
    end
  in
  let worker domain () =
    Obs.Trace.set_thread_label (Printf.sprintf "serve-domain-%d" domain);
    let own = deques.(domain) in
    let rec try_steal k =
      if k >= domains then None
      else
        match steal_top deques.((domain + k) mod domains) with
        | Some _ as hit -> hit
        | None -> try_steal (k + 1)
    in
    let steal_or_stop loop =
      match try_steal 1 with
      | Some r ->
        Atomic.incr steals;
        execute ~domain ~stolen:true r;
        loop ()
      | None -> ()
    in
    let rec loop () =
      if batch_n > 1 then begin
        match pop_bottom_many own batch_n with
        | [] -> steal_or_stop loop
        | [ r ] ->
          execute ~domain ~stolen:false r;
          loop ()
        | rs ->
          if breaker_open () || not (execute_batch ~domain rs) then
            List.iter (execute ~domain ~stolen:false) rs;
          loop ()
      end
      else begin
        match pop_bottom own with
        | Some r ->
          execute ~domain ~stolen:false r;
          loop ()
        | None -> steal_or_stop loop
      end
    in
    loop ()
  in
  (* OCaml 5 minor collections stop every domain; the same larger minor
     heap x86sim uses keeps the parallel instances off each other's
     backs.  Restored after the joins. *)
  let gc = Gc.get () in
  Gc.set { gc with Gc.minor_heap_size = max gc.Gc.minor_heap_size (8 * 1024 * 1024) };
  pool_t0 := Obs.Clock.now_ns ();
  let t0 = !pool_t0 in
  (* Worker 0 runs inline on the calling domain: spawning a child domain
     for it costs real throughput on small hosts (every minor collection
     is a stop-the-world handshake with the otherwise-idle joining
     domain), and with [~domains:1] the pool must degenerate to a plain
     sequential loop. *)
  let spawned = Array.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
  worker 0 ();
  Array.iter Domain.join spawned;
  let wall_ns = Obs.Clock.now_ns () -. t0 in
  Gc.set gc;
  (* Fold the per-domain recorders and the outcome tallies into one
     metrics registry; this (not a trace session) is what
     [metrics_exposition] serves, so it is populated unconditionally. *)
  let metrics = Obs.Metrics.create () in
  Array.iter (fun hdr -> Obs.Metrics.merge_hdr metrics "pool.request" hdr) lat_hdrs;
  Array.iter
    (fun r ->
      if r.shed then Obs.Metrics.incr metrics "pool.shed"
      else Obs.Metrics.incr metrics ("pool.outcome." ^ Runtime.outcome_label r.outcome))
    results;
  let retries_n = Atomic.get retries_total in
  let steals_n = Atomic.get steals in
  let warm_n = Atomic.get warm_hits in
  let cold_n = Atomic.get cold_builds in
  let batched_n = Atomic.get batched_total in
  if retries_n > 0 then Obs.Metrics.add metrics "pool.retries" (float_of_int retries_n);
  if steals_n > 0 then Obs.Metrics.add metrics "pool.steals" (float_of_int steals_n);
  if warm_n > 0 then Obs.Metrics.add metrics "pool.warm_hit" (float_of_int warm_n);
  if cold_n > 0 then Obs.Metrics.add metrics "pool.cold" (float_of_int cold_n);
  if batched_n > 0 then Obs.Metrics.add metrics "pool.batched" (float_of_int batched_n);
  Obs.Metrics.high_water metrics "pool.domains" (float_of_int domains);
  {
    domains;
    requests;
    results;
    steals = steals_n;
    retries = retries_n;
    warm_hits = warm_n;
    cold_builds = cold_n;
    batched = batched_n;
    breaker_tripped = Atomic.get breaker_tripped;
    counts = count_outcomes results;
    wall_ns;
    metrics = Obs.Metrics.snapshot metrics;
    breaker_flight = !breaker_flight;
  }

let metrics_exposition s = Obs.Prom.of_snapshot s.metrics

/* Memcpy-class primitives for the unboxed data plane.

   Two things live here, both chosen because the pure-OCaml spelling
   allocates or refuses to vectorize:

   - f32 rounding: OCaml has no float32, so rounding through
     Int32.bits_of_float boxes an Int32 per element.  The C cast
     double->float->double is the same IEEE operation with no
     allocation, and the [@unboxed] external keeps the argument and
     result in FP registers.

   - segment copies between OCaml native arrays and bigarray rings:
     the monomorphic OCaml loops are already inline loads/stores, but
     the C versions compile to memcpy (f64) or a vectorized convert
     loop (f32, int), which is what pushes a block hop under the
     2 ns/element budget.

   Argument order mirrors the OCaml helpers in bqueue.ml: stores into
   the ring are (ba, src, soff, idx, len), loads out of it are
   (ba, dst, idx, doff, len), so the dispatchers can partially apply
   (ba, payload) and hand the chunk loop a (soff/idx/len) closure.

   Layout assumptions, all guaranteed by the runtime this builds
   against: float arrays are flat (FLAT_FLOAT_ARRAY is the default),
   int array fields are tagged longs, bigarrays expose their payload
   via Caml_ba_data_val.  No stub allocates, raises, or triggers the
   GC, hence the [@@noalloc] on every external. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <string.h>

double cgsim_round_f32(double x) { return (double)(float)x; }

value cgsim_round_f32_byte(value x)
{
  return caml_copy_double((double)(float)Double_val(x));
}

/* float array segment -> float32 ring */
value cgsim_floats_to_f32(value vba, value vsrc, value vsoff, value vidx, value vlen)
{
  float *ba = (float *)Caml_ba_data_val(vba) + Long_val(vidx);
  const double *src = (const double *)vsrc + Long_val(vsoff);
  intnat len = Long_val(vlen);
  for (intnat i = 0; i < len; i++) ba[i] = (float)src[i];
  return Val_unit;
}

/* float32 ring -> float array segment */
value cgsim_f32_to_floats(value vba, value vdst, value vidx, value vdoff, value vlen)
{
  const float *ba = (const float *)Caml_ba_data_val(vba) + Long_val(vidx);
  double *dst = (double *)vdst + Long_val(vdoff);
  intnat len = Long_val(vlen);
  for (intnat i = 0; i < len; i++) dst[i] = (double)ba[i];
  return Val_unit;
}

/* float array segment -> float64 ring (straight memcpy) */
value cgsim_floats_to_f64(value vba, value vsrc, value vsoff, value vidx, value vlen)
{
  double *ba = (double *)Caml_ba_data_val(vba) + Long_val(vidx);
  const double *src = (const double *)vsrc + Long_val(vsoff);
  memcpy(ba, src, (size_t)Long_val(vlen) * sizeof(double));
  return Val_unit;
}

/* float64 ring -> float array segment (straight memcpy) */
value cgsim_f64_to_floats(value vba, value vdst, value vidx, value vdoff, value vlen)
{
  const double *ba = (const double *)Caml_ba_data_val(vba) + Long_val(vidx);
  double *dst = (double *)vdst + Long_val(vdoff);
  memcpy(dst, ba, (size_t)Long_val(vlen) * sizeof(double));
  return Val_unit;
}

/* int array segment -> int ring (untag per element) */
value cgsim_ints_to_iba(value vba, value vsrc, value vsoff, value vidx, value vlen)
{
  intnat *ba = (intnat *)Caml_ba_data_val(vba) + Long_val(vidx);
  const value *src = (const value *)vsrc + Long_val(vsoff);
  intnat len = Long_val(vlen);
  for (intnat i = 0; i < len; i++) ba[i] = Long_val(src[i]);
  return Val_unit;
}

/* int ring -> int array segment (retag per element) */
value cgsim_iba_to_ints(value vba, value vdst, value vidx, value vdoff, value vlen)
{
  const intnat *ba = (const intnat *)Caml_ba_data_val(vba) + Long_val(vidx);
  value *dst = (value *)vdst + Long_val(vdoff);
  intnat len = Long_val(vlen);
  for (intnat i = 0; i < len; i++) dst[i] = Val_long(ba[i]);
  return Val_unit;
}

/* int array segment -> int ring with an inclusive range check; returns
   the first offending source offset, or -1 if the whole segment
   landed.  The check rides the copy loop so a clean segment still runs
   at memcpy-class speed, and a violation is reported before the caller
   publishes the segment. */
value cgsim_ints_to_iba_checked(value vba, value vsrc, value vsoff, value vidx,
                                value vlen, value vlo, value vhi)
{
  intnat *ba = (intnat *)Caml_ba_data_val(vba) + Long_val(vidx);
  const value *src = (const value *)vsrc + Long_val(vsoff);
  intnat len = Long_val(vlen);
  intnat lo = Long_val(vlo), hi = Long_val(vhi);
  for (intnat i = 0; i < len; i++) {
    intnat v = Long_val(src[i]);
    if (v < lo || v > hi) return Val_long(Long_val(vsoff) + i);
    ba[i] = v;
  }
  return Val_long(-1);
}

value cgsim_ints_to_iba_checked_byte(value *argv, int argn)
{
  (void)argn;
  return cgsim_ints_to_iba_checked(argv[0], argv[1], argv[2], argv[3],
                                   argv[4], argv[5], argv[6]);
}

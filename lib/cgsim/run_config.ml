(* The single knob record for every execution path.

   Before this existed, Runtime/Pool/X86sim each grew their own sprawl of
   optional arguments (?hooks ?queue_capacity ?block_io ?spsc ?lint) and
   every new capability (deadlines, retries, faults) would have tripled
   the sprawl.  A Run_config is built once — [default |> with_*] — and
   threaded through instantiate/execute/Pool.run/X86sim.Sim.run. *)

type lint_level =
  [ `Off
  | `Warn
  | `Error
  ]

type t = {
  hooks : Hooks.t;
  queue_capacity : int option;
  block_io : bool;
  spsc : bool;
  lint : lint_level;
  deadline_ns : float option;
  max_steps : int option;
  retries : int;
  retry_base_ns : float;
  retry_cap_ns : float;
  breaker_threshold : int option;
  faults : Faults.t option;
  seed : int;
  warm : bool;
  batch : int;
  fuse : bool;
  unboxed : bool;
  auto_capacity : bool;
}

let default =
  {
    hooks = Hooks.none;
    queue_capacity = None;
    block_io = true;
    spsc = true;
    lint = `Warn;
    deadline_ns = None;
    max_steps = None;
    retries = 0;
    retry_base_ns = 1e6 (* 1 ms *);
    retry_cap_ns = 1e8 (* 100 ms *);
    breaker_threshold = None;
    faults = None;
    seed = 1;
    warm = true;
    batch = 1;
    fuse = true;
    unboxed = true;
    auto_capacity = false;
  }

let with_hooks hooks t = { t with hooks }
let with_queue_capacity c t = { t with queue_capacity = Some c }
let with_block_io block_io t = { t with block_io }
let with_spsc spsc t = { t with spsc }
let with_lint lint t = { t with lint }
let with_deadline_ns d t = { t with deadline_ns = Some d }
let with_deadline_ms d t = { t with deadline_ns = Some (d *. 1e6) }
let with_max_steps n t = { t with max_steps = Some n }
let with_retries n t = { t with retries = n }

let with_backoff ?base_ns ?cap_ns t =
  {
    t with
    retry_base_ns = Option.value base_ns ~default:t.retry_base_ns;
    retry_cap_ns = Option.value cap_ns ~default:t.retry_cap_ns;
  }

let with_breaker threshold t = { t with breaker_threshold = Some threshold }
let with_faults faults t = { t with faults = Some faults }
let with_seed seed t = { t with seed }
let with_warm warm t = { t with warm }

let with_batch batch t =
  if batch < 1 then invalid_arg "cgsim: Run_config.with_batch needs a positive batch size";
  { t with batch }

let with_fuse fuse t = { t with fuse }
let with_unboxed unboxed t = { t with unboxed }
let with_auto_capacity auto_capacity t = { t with auto_capacity }

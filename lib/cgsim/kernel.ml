type realm =
  | Aie
  | Noextract
  | Pl

let realm_to_string = function
  | Aie -> "aie"
  | Noextract -> "noextract"
  | Pl -> "pl"

let realm_of_string = function
  | "aie" -> Some Aie
  | "noextract" -> Some Noextract
  | "pl" | "hls" -> Some Pl
  | _ -> None

let equal_realm a b =
  match a, b with
  | Aie, Aie | Noextract, Noextract | Pl, Pl -> true
  | (Aie | Noextract | Pl), _ -> false

type dir =
  | In
  | Out

type port_spec = {
  pname : string;
  dir : dir;
  dtype : Dtype.t;
  settings : Settings.t;
}

type binding = {
  readers : Port.reader array;
  writers : Port.writer array;
}

type body = binding -> unit

type purity =
  | Pure
  | Stateful
  | Unknown

let purity_to_string = function
  | Pure -> "pure"
  | Stateful -> "stateful"
  | Unknown -> "unknown"

type t = {
  name : string;
  realm : realm;
  ports : port_spec array;
  body : body;
  rates : int array option;
  purity : purity;
  stateless : bool;
}

let define ?rates ?pure ?(stateless = false) ~realm ~name ports body =
  if name = "" then invalid_arg "cgsim: kernel name must be non-empty";
  if ports = [] then invalid_arg ("cgsim: kernel " ^ name ^ " must declare at least one port");
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if p.pname = "" then invalid_arg ("cgsim: kernel " ^ name ^ " has an unnamed port");
      if Hashtbl.mem seen p.pname then
        invalid_arg (Printf.sprintf "cgsim: kernel %s declares port %s twice" name p.pname);
      Hashtbl.add seen p.pname ())
    ports;
  let ports_arr = Array.of_list ports in
  let rates =
    match rates with
    | None -> None
    | Some declared ->
      List.iter
        (fun (pname, r) ->
          if not (Hashtbl.mem seen pname) then
            invalid_arg
              (Printf.sprintf "cgsim: kernel %s declares a rate for unknown port %s" name pname);
          if r < 0 then
            invalid_arg
              (Printf.sprintf "cgsim: kernel %s declares a negative rate for port %s" name pname))
        declared;
      Some
        (Array.map
           (fun spec ->
             match List.assoc_opt spec.pname declared with
             | Some r -> r
             | None ->
               invalid_arg
                 (Printf.sprintf "cgsim: kernel %s declares rates but omits port %s" name
                    spec.pname))
           ports_arr)
  in
  let purity = match pure with None -> Unknown | Some true -> Pure | Some false -> Stateful in
  if stateless && purity <> Pure then
    invalid_arg
      (Printf.sprintf "cgsim: kernel %s declares ~stateless but not ~pure:true" name);
  { name; realm; ports = ports_arr; body; rates; purity; stateless }

let rate k idx =
  match k.rates with
  | None -> None
  | Some rs -> if idx >= 0 && idx < Array.length rs then Some rs.(idx) else None

let in_port ?(settings = Settings.default) pname dtype = { pname; dir = In; dtype; settings }

let out_port ?(settings = Settings.default) pname dtype = { pname; dir = Out; dtype; settings }

let rd b i = b.readers.(i)

let wr b i = b.writers.(i)

let in_ports k = List.filter (fun p -> p.dir = In) (Array.to_list k.ports)

let out_ports k = List.filter (fun p -> p.dir = Out) (Array.to_list k.ports)

let directional_index k pname =
  let rec scan i n_in n_out =
    if i >= Array.length k.ports then None
    else begin
      let p = k.ports.(i) in
      match p.dir with
      | In -> if String.equal p.pname pname then Some (In, n_in) else scan (i + 1) (n_in + 1) n_out
      | Out ->
        if String.equal p.pname pname then Some (Out, n_out) else scan (i + 1) n_in (n_out + 1)
    end
  in
  scan 0 0 0

let pp ppf k =
  let pp_port ppf p =
    Format.fprintf ppf "%s %s:%a"
      (match p.dir with In -> "in" | Out -> "out")
      p.pname Dtype.pp p.dtype
  in
  Format.fprintf ppf "@[<h>kernel %s [%s] (%a)@]" k.name (realm_to_string k.realm)
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_port)
    (Array.to_seq k.ports)

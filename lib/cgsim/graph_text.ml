let dtype_to_string t =
  (* Dtype.pp prints "{a:f32; b:i32}"; the codec removes blanks so a
     dtype is always a single token. *)
  String.concat "" (String.split_on_char ' ' (Dtype.to_string t))

(* ------------------------------------------------------------------ *)
(* Dtype parsing                                                      *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Recursive-descent over the compact spelling. *)
let dtype_of_string_exn s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect ch =
    match peek () with
    | Some c when c = ch -> advance ()
    | _ -> fail "expected '%c' at %d in dtype %s" ch !pos s
  in
  let read_while p =
    let start = !pos in
    while !pos < len && p s.[!pos] do
      advance ()
    done;
    String.sub s start (!pos - start)
  in
  let is_digit c = c >= '0' && c <= '9' in
  let is_word c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_' in
  let scalar_of = function
    | "f32" -> Dtype.F32
    | "f64" -> Dtype.F64
    | "i8" -> Dtype.I8
    | "i16" -> Dtype.I16
    | "i32" -> Dtype.I32
    | "i64" -> Dtype.I64
    | "u8" -> Dtype.U8
    | "u16" -> Dtype.U16
    | "u32" -> Dtype.U32
    | other -> fail "unknown scalar dtype %s" other
  in
  let rec parse_one () =
    match peek () with
    | Some '{' ->
      advance ();
      let fields = ref [] in
      let rec fields_loop () =
        let name = read_while (fun c -> is_word c) in
        if name = "" then fail "empty field name in struct dtype %s" s;
        expect ':';
        let t = parse_one () in
        fields := (name, t) :: !fields;
        match peek () with
        | Some ';' ->
          advance ();
          fields_loop ()
        | Some '}' -> advance ()
        | _ -> fail "expected ';' or '}' in struct dtype %s" s
      in
      fields_loop ();
      Dtype.Struct (List.rev !fields)
    | Some 'v' when !pos + 1 < len && is_digit s.[!pos + 1] ->
      advance ();
      let lanes = int_of_string (read_while is_digit) in
      let elem = parse_one () in
      Dtype.Vector (elem, lanes)
    | Some c when is_word c -> scalar_of (read_while is_word)
    | _ -> fail "cannot parse dtype at %d in %s" !pos s
  in
  let t = parse_one () in
  if !pos <> len then fail "trailing characters in dtype %s" s;
  t

let dtype_of_string s =
  match dtype_of_string_exn s with
  | t -> Ok t
  | exception Parse_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Settings and attrs                                                 *)
(* ------------------------------------------------------------------ *)

let settings_tokens (st : Settings.t) =
  let transport =
    match st.Settings.transport with
    | None -> []
    | Some Settings.Stream -> [ "transport=stream" ]
    | Some (Settings.Window b) -> [ Printf.sprintf "transport=window:%d" b ]
    | Some Settings.Rtp -> [ "transport=rtp" ]
    | Some Settings.Gmio -> [ "transport=gmio" ]
  in
  transport
  @ (match st.Settings.beat_bytes with Some b -> [ Printf.sprintf "beat=%d" b ] | None -> [])
  @ (match st.Settings.depth with Some d -> [ Printf.sprintf "depth=%d" d ] | None -> [])

let settings_of_tokens tokens =
  List.fold_left
    (fun st tok ->
      match String.index_opt tok '=' with
      | None -> fail "malformed settings token %s" tok
      | Some i -> begin
        let key = String.sub tok 0 i in
        let v = String.sub tok (i + 1) (String.length tok - i - 1) in
        match key with
        | "transport" -> begin
          match String.split_on_char ':' v with
          | [ "stream" ] -> { st with Settings.transport = Some Settings.Stream }
          | [ "rtp" ] -> { st with Settings.transport = Some Settings.Rtp }
          | [ "gmio" ] -> { st with Settings.transport = Some Settings.Gmio }
          | [ "window"; b ] -> { st with Settings.transport = Some (Settings.Window (int_of_string b)) }
          | _ -> fail "malformed transport %s" v
        end
        | "beat" -> { st with Settings.beat_bytes = Some (int_of_string v) }
        | "depth" -> { st with Settings.depth = Some (int_of_string v) }
        | _ -> fail "unknown settings key %s" key
      end)
    Settings.default tokens

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

let to_string (g : Serialized.t) =
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "cgsim-graph 1\n";
  addf "graph %s\n" g.gname;
  Array.iter
    (fun (ki : Serialized.kernel_inst) ->
      addf "kernel %s %s %s\n" ki.inst_name ki.key (Kernel.realm_to_string ki.realm);
      (match ki.src with
       | Some span -> addf "  src %s\n" (Srcspan.to_compact span)
       | None -> ());
      Array.iter
        (fun (spec : Kernel.port_spec) ->
          let dir = match spec.Kernel.dir with Kernel.In -> "in" | Kernel.Out -> "out" in
          let settings = settings_tokens spec.Kernel.settings in
          addf "  port %s %s %s%s\n" spec.Kernel.pname dir
            (dtype_to_string spec.Kernel.dtype)
            (if settings = [] then "" else " " ^ String.concat " " settings))
        ki.ports;
      addf "  nets %s\n"
        (String.concat " " (Array.to_list (Array.map string_of_int ki.port_nets))))
    g.kernels;
  Array.iter
    (fun (n : Serialized.net) ->
      let settings = settings_tokens n.settings in
      addf "net %d %s%s\n" n.net_id (dtype_to_string n.dtype)
        (if settings = [] then "" else " " ^ String.concat " " settings);
      (match n.src with
       | Some span -> addf "  src %s\n" (Srcspan.to_compact span)
       | None -> ());
      List.iter (fun (ep : Serialized.endpoint) -> addf "  writer %d.%d\n" ep.kernel_idx ep.port_idx) n.writers;
      List.iter (fun (ep : Serialized.endpoint) -> addf "  reader %d.%d\n" ep.kernel_idx ep.port_idx) n.readers;
      (match n.global_input with Some name -> addf "  input %s\n" name | None -> ());
      (match n.global_output with Some name -> addf "  output %s\n" name | None -> ());
      List.iter
        (fun (a : Attr.t) ->
          match a.Attr.value with
          | Attr.S v -> addf "  attr %s str %s\n" a.Attr.key v
          | Attr.I v -> addf "  attr %s int %d\n" a.Attr.key v)
        n.attrs)
    g.nets;
  addf "inputs%s\n"
    (String.concat "" (Array.to_list (Array.map (Printf.sprintf " %d") g.input_order)));
  addf "outputs%s\n"
    (String.concat "" (Array.to_list (Array.map (Printf.sprintf " %d") g.output_order)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader                                                             *)
(* ------------------------------------------------------------------ *)

type pending_kernel = {
  pk_inst : string;
  pk_key : string;
  pk_realm : Kernel.realm;
  mutable pk_ports : Kernel.port_spec list;  (* reverse *)
  mutable pk_nets : int list;
  mutable pk_src : Srcspan.t option;
}

type pending_net = {
  pn_id : int;
  pn_dtype : Dtype.t;
  pn_settings : Settings.t;
  mutable pn_writers : Serialized.endpoint list;  (* reverse *)
  mutable pn_readers : Serialized.endpoint list;  (* reverse *)
  mutable pn_input : string option;
  mutable pn_output : string option;
  mutable pn_attrs : Attr.t list;  (* reverse *)
  mutable pn_src : Srcspan.t option;
}

let of_string text =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  let parse () =
    let gname = ref "" in
    let kernels = ref [] in
    let nets = ref [] in
    let inputs = ref [||] in
    let outputs = ref [||] in
    let current = ref `None in
    let words l = List.filter (fun w -> w <> "") (String.split_on_char ' ' l) in
    let endpoint_of w =
      match String.split_on_char '.' w with
      | [ k; p ] -> { Serialized.kernel_idx = int_of_string k; port_idx = int_of_string p }
      | _ -> fail "malformed endpoint %s" w
    in
    let header = ref true in
    List.iter
      (fun raw ->
        let line = String.trim raw in
        match words line with
        | [ "cgsim-graph"; version ] when !header ->
          if version <> "1" then fail "unsupported graph-text version %s" version;
          header := false
        | [ "graph"; name ] -> gname := name
        | "kernel" :: inst :: key :: realm :: [] -> begin
          match Kernel.realm_of_string realm with
          | None -> fail "unknown realm %s" realm
          | Some r ->
            let pk =
              {
                pk_inst = inst;
                pk_key = key;
                pk_realm = r;
                pk_ports = [];
                pk_nets = [];
                pk_src = None;
              }
            in
            kernels := pk :: !kernels;
            current := `Kernel pk
        end
        | "port" :: pname :: dir :: dtype :: settings -> begin
          match !current with
          | `Kernel pk ->
            let dir =
              match dir with
              | "in" -> Kernel.In
              | "out" -> Kernel.Out
              | d -> fail "bad port direction %s" d
            in
            let spec =
              {
                Kernel.pname;
                dir;
                dtype = dtype_of_string_exn dtype;
                settings = settings_of_tokens settings;
              }
            in
            pk.pk_ports <- spec :: pk.pk_ports
          | _ -> fail "port line outside a kernel"
        end
        | "nets" :: ids -> begin
          match !current with
          | `Kernel pk -> pk.pk_nets <- List.map int_of_string ids
          | _ -> fail "nets line outside a kernel"
        end
        | "net" :: id :: dtype :: settings ->
          let pn =
            {
              pn_id = int_of_string id;
              pn_dtype = dtype_of_string_exn dtype;
              pn_settings = settings_of_tokens settings;
              pn_writers = [];
              pn_readers = [];
              pn_input = None;
              pn_output = None;
              pn_attrs = [];
              pn_src = None;
            }
          in
          nets := pn :: !nets;
          current := `Net pn
        | [ "src"; compact ] -> begin
          let span =
            match Srcspan.of_compact compact with
            | Some s -> s
            | None -> fail "malformed src span %s" compact
          in
          match !current with
          | `Kernel pk -> pk.pk_src <- Some span
          | `Net pn -> pn.pn_src <- Some span
          | _ -> fail "src line outside a kernel or net"
        end
        | [ "writer"; ep ] -> begin
          match !current with
          | `Net pn -> pn.pn_writers <- endpoint_of ep :: pn.pn_writers
          | _ -> fail "writer line outside a net"
        end
        | [ "reader"; ep ] -> begin
          match !current with
          | `Net pn -> pn.pn_readers <- endpoint_of ep :: pn.pn_readers
          | _ -> fail "reader line outside a net"
        end
        | [ "input"; name ] -> begin
          match !current with
          | `Net pn -> pn.pn_input <- Some name
          | _ -> fail "input line outside a net"
        end
        | [ "output"; name ] -> begin
          match !current with
          | `Net pn -> pn.pn_output <- Some name
          | _ -> fail "output line outside a net"
        end
        | "attr" :: key :: "str" :: rest -> begin
          match !current with
          | `Net pn -> pn.pn_attrs <- Attr.s key (String.concat " " rest) :: pn.pn_attrs
          | _ -> fail "attr line outside a net"
        end
        | [ "attr"; key; "int"; v ] -> begin
          match !current with
          | `Net pn -> pn.pn_attrs <- Attr.i key (int_of_string v) :: pn.pn_attrs
          | _ -> fail "attr line outside a net"
        end
        | "inputs" :: ids -> inputs := Array.of_list (List.map int_of_string ids)
        | "outputs" :: ids -> outputs := Array.of_list (List.map int_of_string ids)
        | w :: _ -> fail "unrecognized line starting with %s" w
        | [] -> ())
      lines;
    let kernels =
      Array.of_list
        (List.rev_map
           (fun pk ->
             {
               Serialized.inst_name = pk.pk_inst;
               key = pk.pk_key;
               realm = pk.pk_realm;
               ports = Array.of_list (List.rev pk.pk_ports);
               port_nets = Array.of_list pk.pk_nets;
               src = pk.pk_src;
             })
           !kernels)
    in
    let nets_list = List.rev !nets in
    let nets =
      Array.of_list
        (List.map
           (fun pn ->
             {
               Serialized.net_id = pn.pn_id;
               dtype = pn.pn_dtype;
               settings = pn.pn_settings;
               attrs = List.rev pn.pn_attrs;
               writers = List.rev pn.pn_writers;
               readers = List.rev pn.pn_readers;
               global_input = pn.pn_input;
               global_output = pn.pn_output;
               src = pn.pn_src;
             })
           nets_list)
    in
    let g =
      {
        Serialized.gname = !gname;
        kernels;
        nets;
        input_order = !inputs;
        output_order = !outputs;
      }
    in
    match Serialized.validate_diags g with
    | [] -> g
    | diags ->
      fail "invalid graph: %s" (String.concat "; " (List.map Diagnostic.render diags))
  in
  match parse () with
  | g -> Ok g
  | exception Parse_error e -> Error e
  | exception Failure e -> Error e (* int_of_string *)

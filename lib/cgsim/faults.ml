(* Deterministic fault injection for chaos testing the serving stack.

   A fault plan wraps kernel ports through ordinary {!Hooks}: on the Nth
   access through a matching kernel's port the configured action fires —
   raise, busy-stall, delay, or sustained backpressure.  Everything is
   derived from an explicit seed, so the same plan on the same graph
   under a single-domain schedule reproduces the same outcome; a plan
   carries atomic fire budgets shared across instantiations, which is
   what makes "transient" faults expressible (fail once, then recover on
   retry). *)

exception Injected of string

type action =
  | Raise  (* raise [Injected] out of the kernel body *)
  | Stall  (* spin on [Sched.yield] forever: progress stops, schedule doesn't *)
  | Delay of int  (* insert N cooperative yields, then proceed *)
  | Backpressure of int  (* from the Nth access on: w_space=0, N yields per put *)

let action_to_string = function
  | Raise -> "raise"
  | Stall -> "stall"
  | Delay n -> Printf.sprintf "delay(%d)" n
  | Backpressure n -> Printf.sprintf "backpressure(%d)" n

type spec = {
  fs_kernel : string;  (* kernel instance name, or "*" for any kernel *)
  fs_action : action;
  fs_after : int;  (* fire on the Nth port access (1-based); <= 0: seed-derived *)
  fs_fires : int;  (* total fire budget across instantiations; -1 = unlimited *)
}

let raise_on ~kernel ?(after = 0) ?(fires = 1) () =
  { fs_kernel = kernel; fs_action = Raise; fs_after = after; fs_fires = fires }

let stall_on ~kernel ?(after = 0) ?(fires = 1) () =
  { fs_kernel = kernel; fs_action = Stall; fs_after = after; fs_fires = fires }

let delay_on ~kernel ?(after = 0) ?(yields = 16) ?(fires = 1) () =
  { fs_kernel = kernel; fs_action = Delay yields; fs_after = after; fs_fires = fires }

let backpressure_on ~kernel ?(after = 0) ?(yields = 4) ?(fires = 1) () =
  { fs_kernel = kernel; fs_action = Backpressure yields; fs_after = after; fs_fires = fires }

type armed = {
  a_spec : spec;
  a_after : int;  (* resolved activation count, >= 1 *)
  a_fires : int Atomic.t;  (* remaining budget; -1 = unlimited *)
}

type t = {
  t_seed : int;
  t_armed : armed list;
  t_injected : int Atomic.t;
}

(* xorshift64* — same generator family the workloads use; re-implemented
   here because cgsim sits below lib/workloads. *)
let mix seed =
  let x = ref (if seed = 0 then 0x9E3779B97F4A7C1 else seed) in
  fun () ->
    let v = !x in
    let v = v lxor (v lsl 13) in
    let v = v lxor (v lsr 7) in
    let v = v lxor (v lsl 17) in
    x := v;
    v land max_int

let plan ?(seed = 1) specs =
  let next = mix seed in
  let armed =
    List.map
      (fun sp ->
        let after =
          if sp.fs_after > 0 then sp.fs_after
          else 1 + ((next () + Hashtbl.hash sp.fs_kernel) mod 32)
        in
        { a_spec = sp; a_after = after; a_fires = Atomic.make sp.fs_fires })
      specs
  in
  { t_seed = seed; t_armed = armed; t_injected = Atomic.make 0 }

let seed t = t.t_seed

let injected t = Atomic.get t.t_injected

let describe t =
  List.map
    (fun a ->
      Printf.sprintf "%s on %s after %d access(es), fires=%d"
        (action_to_string a.a_spec.fs_action)
        a.a_spec.fs_kernel a.a_after a.a_spec.fs_fires)
    t.t_armed

let matches a inst_name = a.a_spec.fs_kernel = "*" || String.equal a.a_spec.fs_kernel inst_name

(* Claim one unit of the fire budget; the atomic CAS makes the budget
   exact even when parallel pool domains race to the same plan. *)
let rec take_fire a =
  let n = Atomic.get a.a_fires in
  if n = -1 then true
  else if n <= 0 then false
  else if Atomic.compare_and_set a.a_fires n (n - 1) then true
  else take_fire a

let fired t a port =
  Atomic.incr t.t_injected;
  Obs.Flight.note Obs.Flight.Fault port;
  if !Obs.Trace.on then begin
    Obs.Trace.instant ~track:port ~cat:"faults"
      (Printf.sprintf "inject:%s" (action_to_string a.a_spec.fs_action));
    Obs.Trace.incr_metric "faults.injected"
  end

let inject t a ~port =
  fired t a port;
  match a.a_spec.fs_action with
  | Raise -> raise (Injected (Printf.sprintf "%s: injected fault" port))
  | Stall ->
    (* Busy-stall: the fiber keeps getting scheduled but never advances
       the graph — exactly the divergence the deadline machinery exists
       for.  [Sched.yield] raises [Terminated] once the scheduler's stop
       token is set, so teardown still drains this fiber. *)
    while true do
      Sched.yield ()
    done
  | Delay n ->
    for _ = 1 to n do
      Sched.yield ()
    done
  | Backpressure _ -> ()  (* handled by the writer wrapper's state *)

(* One counter per wrapped port: "the Nth activation" counts accesses
   through that port of the matching kernel instance.  The fire budget
   bounds how many ports (across instantiations) actually trigger. *)
let hooks t =
  let specs_for inst_name = List.filter (fun a -> matches a inst_name) t.t_armed in
  let wrap_reader (inst : Serialized.kernel_inst) _idx (r : Port.reader) =
    match specs_for inst.Serialized.inst_name with
    | [] -> r
    | armed ->
      let count = ref 0 in
      let check () =
        incr count;
        List.iter
          (fun a ->
            match a.a_spec.fs_action with
            | Backpressure _ -> ()  (* reader side unaffected *)
            | Raise | Stall | Delay _ ->
              if !count = a.a_after && take_fire a then inject t a ~port:r.Port.r_name)
          armed
      in
      {
        r with
        Port.r_get =
          (fun () ->
            check ();
            r.Port.r_get ());
        Port.r_get_block =
          (fun n ->
            check ();
            r.Port.r_get_block n);
        Port.r_get_floats =
          (fun n ->
            check ();
            r.Port.r_get_floats n);
        Port.r_get_ints =
          (fun n ->
            check ();
            r.Port.r_get_ints n);
      }
  in
  let wrap_writer (inst : Serialized.kernel_inst) _idx (w : Port.writer) =
    match specs_for inst.Serialized.inst_name with
    | [] -> w
    | armed ->
      let count = ref 0 in
      (* Backpressure is sustained: once triggered it applies to every
         subsequent put on this port, and the advisory space probe
         reports a full queue so block writers degrade to per-beat. *)
      let pressure = ref 0 in
      let check () =
        incr count;
        List.iter
          (fun a ->
            if !count = a.a_after && take_fire a then begin
              match a.a_spec.fs_action with
              | Backpressure yields ->
                fired t a w.Port.w_name;
                pressure := max !pressure yields
              | Raise | Stall | Delay _ -> inject t a ~port:w.Port.w_name
            end)
          armed
      in
      let throttle () =
        for _ = 1 to !pressure do
          Sched.yield ()
        done
      in
      {
        w with
        Port.w_put =
          (fun v ->
            check ();
            throttle ();
            w.Port.w_put v);
        Port.w_put_block =
          (fun vs ->
            check ();
            throttle ();
            w.Port.w_put_block vs);
        Port.w_put_floats =
          (fun fs ->
            check ();
            throttle ();
            w.Port.w_put_floats fs);
        Port.w_put_ints =
          (fun is ->
            check ();
            throttle ();
            w.Port.w_put_ints is);
        Port.w_space = (fun () -> if !pressure > 0 then 0 else w.Port.w_space ());
      }
  in
  { Hooks.wrap_reader; wrap_writer; around_body = (fun _ body () -> body ()) }

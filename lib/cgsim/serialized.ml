type endpoint = {
  kernel_idx : int;
  port_idx : int;
}

type net = {
  net_id : int;
  dtype : Dtype.t;
  settings : Settings.t;
  attrs : Attr.t list;
  writers : endpoint list;
  readers : endpoint list;
  global_input : string option;
  global_output : string option;
  src : Srcspan.t option;
}

type kernel_inst = {
  inst_name : string;
  key : string;
  realm : Kernel.realm;
  ports : Kernel.port_spec array;
  port_nets : int array;
  src : Srcspan.t option;
}

type t = {
  gname : string;
  kernels : kernel_inst array;
  nets : net array;
  input_order : int array;
  output_order : int array;
}

let net t id = t.nets.(id)

let kernel t idx = t.kernels.(idx)

let inputs t = Array.to_list (Array.map (net t) t.input_order)

let outputs t = Array.to_list (Array.map (net t) t.output_order)

(* ------------------------------------------------------------------ *)
(* Display names — diagnostics name kernels and nets, never indices.  *)
(* ------------------------------------------------------------------ *)

let endpoint_display t (ep : endpoint) =
  if ep.kernel_idx < 0 || ep.kernel_idx >= Array.length t.kernels then
    Printf.sprintf "kernel#%d.port#%d" ep.kernel_idx ep.port_idx
  else begin
    let ki = t.kernels.(ep.kernel_idx) in
    if ep.port_idx < 0 || ep.port_idx >= Array.length ki.ports then
      Printf.sprintf "%s.port#%d" ki.inst_name ep.port_idx
    else Printf.sprintf "%s.%s" ki.inst_name ki.ports.(ep.port_idx).Kernel.pname
  end

let net_display t id =
  if id < 0 || id >= Array.length t.nets then Printf.sprintf "net%d" id
  else begin
    let n = t.nets.(id) in
    match n.global_input, n.global_output with
    | Some name, _ -> Printf.sprintf "input \"%s\" (net%d)" name id
    | _, Some name -> Printf.sprintf "output \"%s\" (net%d)" name id
    | None, None ->
      let eps = List.map (endpoint_display t) (n.writers @ n.readers) in
      if eps = [] then Printf.sprintf "net%d (unconnected)" id
      else Printf.sprintf "net%d (%s)" id (String.concat ", " eps)
  end

let net_src t id =
  if id < 0 || id >= Array.length t.nets then None
  else begin
    let n = t.nets.(id) in
    match n.src with
    | Some _ as s -> s
    | None ->
      List.find_map
        (fun ep ->
          if ep.kernel_idx >= 0 && ep.kernel_idx < Array.length t.kernels then
            t.kernels.(ep.kernel_idx).src
          else None)
        (n.writers @ n.readers)
  end

let validate_diags t =
  let diags = ref [] in
  let problem ?kernels ?nets ?loc code fmt =
    Format.kasprintf
      (fun message ->
        let nets = Option.value nets ~default:[] in
        let loc =
          match loc with
          | Some _ as l -> l
          | None -> List.find_map (net_src t) nets
        in
        diags :=
          Diagnostic.make ~severity:Diagnostic.Error ~code ~graph:t.gname
            ?kernels ~nets:(List.map (net_display t) nets) ~net_ids:nets ?loc message
          :: !diags)
      fmt
  in
  let nk = Array.length t.kernels in
  let nn = Array.length t.nets in
  Array.iteri
    (fun _i (ki : kernel_inst) ->
      if Array.length ki.port_nets <> Array.length ki.ports then
        problem "CG-E001" ~kernels:[ ki.inst_name ] ?loc:ki.src
          "kernel %s: bound to %d nets but declares %d ports" ki.inst_name
          (Array.length ki.port_nets) (Array.length ki.ports);
      Array.iteri
        (fun p net_id ->
          if net_id < 0 || net_id >= nn then
            problem "CG-E001" ~kernels:[ ki.inst_name ] ?loc:ki.src
              "kernel %s port %s: net id %d out of range" ki.inst_name
              (if p < Array.length ki.ports then ki.ports.(p).Kernel.pname
               else Printf.sprintf "#%d" p)
              net_id
          else begin
            let n = t.nets.(net_id) in
            if p < Array.length ki.ports then begin
              let spec = ki.ports.(p) in
              if not (Dtype.equal spec.Kernel.dtype n.dtype) then
                problem "CG-E002" ~kernels:[ ki.inst_name ] ~nets:[ net_id ]
                  ?loc:(match ki.src with Some _ as s -> s | None -> net_src t net_id)
                  "kernel %s port %s carries %s but %s carries %s" ki.inst_name
                  spec.Kernel.pname
                  (Dtype.to_string spec.Kernel.dtype)
                  (net_display t net_id) (Dtype.to_string n.dtype)
            end
          end)
        ki.port_nets)
    t.kernels;
  Array.iteri
    (fun id n ->
      if n.net_id <> id then
        problem "CG-E001" ~nets:[ id ] "%s: stored net id %d differs from its position"
          (net_display t id) n.net_id;
      let check_ep role ep =
        if ep.kernel_idx < 0 || ep.kernel_idx >= nk then
          problem "CG-E001" ~nets:[ id ] "%s: %s endpoint kernel index %d out of range"
            (net_display t id) role ep.kernel_idx
        else begin
          let ki = t.kernels.(ep.kernel_idx) in
          if ep.port_idx < 0 || ep.port_idx >= Array.length ki.ports then
            problem "CG-E001" ~kernels:[ ki.inst_name ] ~nets:[ id ]
              "%s: %s endpoint port index %d out of range for kernel %s" (net_display t id)
              role ep.port_idx ki.inst_name
          else begin
            let spec = ki.ports.(ep.port_idx) in
            let expected = if role = "writer" then Kernel.Out else Kernel.In in
            if spec.Kernel.dir <> expected then
              problem "CG-E003" ~kernels:[ ki.inst_name ] ~nets:[ id ] ?loc:ki.src
                "%s: %s endpoint %s has the wrong direction" (net_display t id) role
                (endpoint_display t ep);
            if ki.port_nets.(ep.port_idx) <> id then
              problem "CG-E003" ~kernels:[ ki.inst_name ] ~nets:[ id ] ?loc:ki.src
                "%s: endpoint %s is bound to net %d instead" (net_display t id)
                (endpoint_display t ep)
                ki.port_nets.(ep.port_idx)
          end
        end
      in
      List.iter (check_ep "writer") n.writers;
      List.iter (check_ep "reader") n.readers;
      (match Settings.validate ~elem_bytes:(Dtype.size_bytes n.dtype) n.settings with
       | Ok () -> ()
       | Error e -> problem "CG-E004" ~nets:[ id ] "%s: %s" (net_display t id) e);
      if n.writers = [] && n.global_input = None && n.readers <> [] then
        problem "CG-E005" ~nets:[ id ]
          ~kernels:(List.map (fun ep -> endpoint_display t ep) n.readers)
          "%s has readers but no data source" (net_display t id);
      if n.global_input <> None && n.writers <> [] then
        problem "CG-E005" ~nets:[ id ]
          ~kernels:(List.map (fun ep -> endpoint_display t ep) n.writers)
          "%s is both a global input and kernel-driven" (net_display t id))
    t.nets;
  let check_order role order flag =
    Array.iter
      (fun id ->
        if id < 0 || id >= nn then
          problem "CG-E006" "%s order references net %d, which is out of range" role id
        else if not (flag t.nets.(id)) then
          problem "CG-E006" ~nets:[ id ] "%s order references %s, which is not flagged as such"
            role (net_display t id))
      order
  in
  check_order "input" t.input_order (fun n -> n.global_input <> None);
  check_order "output" t.output_order (fun n -> n.global_output <> None);
  Array.iter
    (fun n ->
      if n.global_input <> None && not (Array.exists (Int.equal n.net_id) t.input_order) then
        problem "CG-E006" ~nets:[ n.net_id ] "%s flagged as input but missing from input order"
          (net_display t n.net_id);
      if n.global_output <> None && not (Array.exists (Int.equal n.net_id) t.output_order) then
        problem "CG-E006" ~nets:[ n.net_id ]
          "%s flagged as output but missing from output order" (net_display t n.net_id))
    t.nets;
  List.rev !diags

let endpoint_equal a b = a.kernel_idx = b.kernel_idx && a.port_idx = b.port_idx

let port_spec_equal (a : Kernel.port_spec) (b : Kernel.port_spec) =
  String.equal a.Kernel.pname b.Kernel.pname
  && a.Kernel.dir = b.Kernel.dir
  && Dtype.equal a.Kernel.dtype b.Kernel.dtype
  && Settings.equal a.Kernel.settings b.Kernel.settings

let net_equal a b =
  Dtype.equal a.dtype b.dtype
  && Settings.equal a.settings b.settings
  && List.length a.attrs = List.length b.attrs
  && List.for_all2 Attr.equal a.attrs b.attrs
  && List.length a.writers = List.length b.writers
  && List.for_all2 endpoint_equal a.writers b.writers
  && List.length a.readers = List.length b.readers
  && List.for_all2 endpoint_equal a.readers b.readers
  && Option.equal String.equal a.global_input b.global_input
  && Option.equal String.equal a.global_output b.global_output

let kernel_inst_equal a b =
  String.equal a.key b.key
  && Kernel.equal_realm a.realm b.realm
  && Array.length a.ports = Array.length b.ports
  && Array.for_all2 port_spec_equal a.ports b.ports
  && Array.length a.port_nets = Array.length b.port_nets
  && Array.for_all2 Int.equal a.port_nets b.port_nets

let equal_topology a b =
  Array.length a.kernels = Array.length b.kernels
  && Array.length a.nets = Array.length b.nets
  && Array.for_all2 kernel_inst_equal a.kernels b.kernels
  && Array.for_all2 net_equal a.nets b.nets
  && Array.length a.input_order = Array.length b.input_order
  && Array.for_all2 Int.equal a.input_order b.input_order
  && Array.length a.output_order = Array.length b.output_order
  && Array.for_all2 Int.equal a.output_order b.output_order

let with_net_depths t depths =
  match depths with
  | [] -> t
  | _ ->
    let nets =
      Array.map
        (fun n ->
          match List.assoc_opt n.net_id depths with
          | Some d when d > 0 -> { n with settings = Settings.with_depth d n.settings }
          | _ -> n)
        t.nets
    in
    { t with nets }

let pp ppf t =
  Format.fprintf ppf "@[<v>graph %s (%d kernels, %d nets)@," t.gname (Array.length t.kernels)
    (Array.length t.nets);
  Array.iteri
    (fun i ki ->
      Format.fprintf ppf "  k%d %s : %s [%s] nets=%s@," i ki.inst_name ki.key
        (Kernel.realm_to_string ki.realm)
        (String.concat ","
           (Array.to_list (Array.map string_of_int ki.port_nets))))
    t.kernels;
  Array.iter
    (fun n ->
      let ep e = Printf.sprintf "k%d.%d" e.kernel_idx e.port_idx in
      Format.fprintf ppf "  n%d %a %s -> %s%s%s@," n.net_id Dtype.pp n.dtype
        (String.concat "+" (List.map ep n.writers))
        (String.concat "+" (List.map ep n.readers))
        (match n.global_input with Some s -> " <in:" ^ s ^ ">" | None -> "")
        (match n.global_output with Some s -> " <out:" ^ s ^ ">" | None -> ""))
    t.nets;
  Format.fprintf ppf "@]"

let stats t =
  let bytes =
    Array.fold_left (fun acc n -> acc + Dtype.size_bytes n.dtype) 0 t.nets
  in
  Printf.sprintf "graph %s: %d kernels, %d nets, %d inputs, %d outputs, %d element bytes total"
    t.gname (Array.length t.kernels) (Array.length t.nets) (Array.length t.input_order)
    (Array.length t.output_order) bytes

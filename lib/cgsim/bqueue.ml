type t = {
  q_name : string;
  q_dtype : Dtype.t;
  q_cap : int;
  buf : Value.t array;
  check : Value.t -> bool;  (* validator compiled once from q_dtype *)
  mutable head : int;  (* sequence number of the next write *)
  mutable retired : int;  (* cached min consumer cursor; see [min_cursor] *)
  mutable consumers : consumer list;
  mutable producer_records : producer list;  (* for [reset] to reopen *)
  mutable producers_open : int;
  mutable producers_total : int;
  mutable closed : bool;
  (* SPSC fast path: set by [seal] when the wired queue has exactly one
     producer and one consumer.  On this path [retired] is maintained
     directly from the lone consumer's cursor — no cached-minimum refold,
     no broadcast bookkeeping.  Registering any further endpoint drops
     the flag, falling back to the MPMC path transparently. *)
  mutable spsc : bool;
  mutable put_waiters : Sched.waker list;
  mutable get_waiters : Sched.waker list;
  mutable total_put : int;
  (* Observability: keys are precomputed so the traced hot path does no
     string building; occ_hw gates counter emission to new high-waters. *)
  mutable occ_hw : int;
  k_occ : string;
  k_retire : string;
  k_bput : string;
  k_bget : string;
}

and consumer = {
  c_queue : t;
  mutable cursor : int;  (* sequence number of this consumer's next read *)
}

and producer = {
  p_queue : t;
  mutable open_ : bool;
}

let create ~name ~dtype ~capacity () =
  if capacity <= 0 then invalid_arg ("cgsim: queue capacity must be positive: " ^ name);
  {
    q_name = name;
    q_dtype = dtype;
    q_cap = capacity;
    buf = Array.make capacity (Value.Int 0);
    check = Value.compile_check dtype;
    head = 0;
    retired = 0;
    consumers = [];
    producer_records = [];
    producers_open = 0;
    producers_total = 0;
    closed = false;
    spsc = false;
    put_waiters = [];
    get_waiters = [];
    total_put = 0;
    occ_hw = 0;
    k_occ = "queue.occupancy_hw:" ^ name;
    k_retire = "queue.retire_lag_hw:" ^ name;
    k_bput = "queue.blocked_put:" ^ name;
    k_bget = "queue.blocked_get:" ^ name;
  }

let name q = q.q_name
let dtype q = q.q_dtype
let capacity q = q.q_cap
let is_closed q = q.closed
let total_put q = q.total_put
let producers q = q.producers_total
let consumers q = List.length q.consumers
let is_spsc q = q.spsc

let add_consumer q =
  (* A consumer attached mid-stream starts at the current head: broadcast
     completeness is defined from attachment onward.  The runtime attaches
     all consumers before execution, so in practice cursor = 0. *)
  let c = { c_queue = q; cursor = q.head } in
  (match q.consumers with
   | [] -> q.retired <- q.head  (* first consumer pins the retirement point *)
   | _ :: _ -> ()  (* cursor = head >= retired: the cached minimum stands *));
  q.consumers <- c :: q.consumers;
  q.spsc <- false;  (* a second consumer needs the broadcast machinery *)
  c

let add_producer q =
  if q.closed then invalid_arg ("cgsim: adding producer to closed queue " ^ q.q_name);
  let p = { p_queue = q; open_ = true } in
  q.producer_records <- p :: q.producer_records;
  q.producers_open <- q.producers_open + 1;
  q.producers_total <- q.producers_total + 1;
  q.spsc <- false;  (* interleaving producers share the MPMC append point *)
  p

(* Restore the queue to its just-created-and-wired state: cursors back to
   zero, every registered producer reopened, contents discarded.  The
   endpoint set is untouched, so a sealed SPSC plan survives the reset —
   warm runtime instances reuse queue, endpoints and validator without
   reallocation. *)
let reset q =
  q.head <- 0;
  q.retired <- 0;
  List.iter (fun c -> c.cursor <- 0) q.consumers;
  List.iter (fun p -> p.open_ <- true) q.producer_records;
  q.producers_open <- q.producers_total;
  q.closed <- false;
  q.put_waiters <- [];
  q.get_waiters <- [];
  q.total_put <- 0;
  q.occ_hw <- 0

let seal ?(spsc = true) q =
  q.spsc <- spsc && q.producers_total = 1 && (match q.consumers with [ _ ] -> true | _ -> false)

(* Retirement point: the slowest consumer's cursor.  With no consumers the
   queue acts as a sink and retires immediately (broadcast to zero
   endpoints), mirroring cgsim's behaviour for dangling nets.

   Invariant: with consumers attached, [q.retired] equals the minimum
   cursor at all times.  It is re-folded only when the consumer that sat
   at the retirement point advances ([note_retire]); every other get
   leaves the minimum — and therefore the cache — untouched, so the
   common put/get/blocked-spin paths read one field instead of folding
   the consumer list. *)
let min_cursor q =
  match q.consumers with
  | [] -> q.head
  | _ :: _ -> q.retired

(* Free slots from the producer side (elements the slowest consumer has
   not yet retired bound the occupancy). *)
let space q = q.q_cap - (q.head - min_cursor q)

(* Unretired elements: what the slowest consumer has not yet read.  Used
   by the runtime's stuck-graph post-mortems (per-net occupancy). *)
let occupancy q = q.head - min_cursor q

let fold_min_cursor q =
  match q.consumers with
  | [] -> q.head
  | c :: rest -> List.fold_left (fun acc c -> min acc c.cursor) c.cursor rest

let wake_all_put q =
  match q.put_waiters with
  | [] -> ()
  | ws ->
    q.put_waiters <- [];
    Sched.wake_batch ws

let wake_all_get q =
  match q.get_waiters with
  | [] -> ()
  | ws ->
    q.get_waiters <- [];
    Sched.wake_batch ws

(* A consumer advanced from [old_cursor].  Only when it held the
   retirement point can the minimum move; and only when space was
   actually freed — and producers are waiting for it — are they woken. *)
let note_retire q old_cursor =
  if old_cursor = q.retired && q.consumers <> [] then begin
    let m = fold_min_cursor q in
    if m > q.retired then begin
      q.retired <- m;
      wake_all_put q
    end
  end

let close q =
  if not q.closed then begin
    q.closed <- true;
    wake_all_get q;
    wake_all_put q
  end

(* Occupancy == head - min_cursor: elements the slowest consumer has not
   yet retired (for a broadcast queue that is also the retire lag that
   holds buffer space).  Counter events are emitted only on a new
   high-water mark, so the trace shows the staircase without one event
   per element. *)
let note_put q =
  let occ = q.head - min_cursor q in
  if occ > q.occ_hw then begin
    q.occ_hw <- occ;
    Obs.Trace.high_water q.k_occ (float_of_int occ);
    Obs.Trace.counter ~track:q.q_name ~cat:"queue" ~name:"occupancy" (float_of_int occ)
  end

(* Spread between the fastest and slowest consumer cursor: how far the
   laggard of a broadcast trails (0 with a single consumer). *)
let note_get q =
  match q.consumers with
  | [] | [ _ ] -> ()
  | c :: rest ->
    let mn, mx =
      List.fold_left
        (fun (mn, mx) c -> min mn c.cursor, max mx c.cursor)
        (c.cursor, c.cursor) rest
    in
    Obs.Trace.high_water q.k_retire (float_of_int (mx - mn))

(* Park until the queue has space, attributing the blocked time to the
   queue and the calling fiber when a trace session is active. *)
let wait_for_space q =
  let spin () =
    while q.head - min_cursor q >= q.q_cap do
      Sched.park (fun w -> q.put_waiters <- w :: q.put_waiters)
    done
  in
  if !Obs.Trace.on then begin
    let track = Sched.current_name () in
    let t0 = Obs.Trace.now_ns () in
    spin ();
    let dt = Obs.Trace.now_ns () -. t0 in
    Obs.Trace.span ~track ~cat:"queue" ~name:q.k_bput ~ts_ns:t0 ~dur_ns:dt ();
    Obs.Trace.observe_ns q.k_bput dt
  end
  else spin ()

(* Park until data is available for [c] (or the queue closes). *)
let wait_for_data c =
  let q = c.c_queue in
  let spin () =
    while c.cursor >= q.head && not q.closed do
      Sched.park (fun w -> q.get_waiters <- w :: q.get_waiters)
    done
  in
  if !Obs.Trace.on then begin
    let track = Sched.current_name () in
    let t0 = Obs.Trace.now_ns () in
    spin ();
    let dt = Obs.Trace.now_ns () -. t0 in
    Obs.Trace.span ~track ~cat:"queue" ~name:q.k_bget ~ts_ns:t0 ~dur_ns:dt ();
    Obs.Trace.observe_ns q.k_bget dt
  end
  else spin ()

let store q v =
  q.buf.(q.head mod q.q_cap) <- v;
  q.head <- q.head + 1;
  q.total_put <- q.total_put + 1;
  if !Obs.Trace.on then note_put q;
  wake_all_get q

let put p v =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("cgsim: put on finished producer of " ^ q.q_name);
  if not (q.check v) then Value.check ~net:q.q_name q.q_dtype v;
  if q.spsc then begin
    (* SPSC: [retired] IS the lone consumer's cursor, one field read. *)
    if q.head - q.retired >= q.q_cap then wait_for_space q
  end
  else if q.head - min_cursor q >= q.q_cap then wait_for_space q;
  store q v

let get c =
  let q = c.c_queue in
  if c.cursor >= q.head then begin
    if q.closed then raise Sched.End_of_stream;
    wait_for_data c;
    if c.cursor >= q.head then raise Sched.End_of_stream (* closed while parked *)
  end;
  let v = q.buf.(c.cursor mod q.q_cap) in
  let old = c.cursor in
  c.cursor <- old + 1;
  if !Obs.Trace.on then note_get q;
  if q.spsc then begin
    (* SPSC: this consumer is the retirement point by definition — no
       minimum refold, every get frees exactly one slot. *)
    q.retired <- old + 1;
    wake_all_put q
  end
  else
    (* Advancing the slowest consumer may free space for producers. *)
    note_retire q old;
  v

(* ------------------------------------------------------------------ *)
(* Block transfers                                                     *)
(* ------------------------------------------------------------------ *)

(* The block fast path moves contiguous ring slices: each chunk is at
   most two [Array.blit]s (the slice up to the ring wrap point plus the
   remainder), the dtype is validated by the precompiled [q.check], and
   waiters are woken once per stored/retired chunk instead of once per
   element.  Blocks larger than the queue capacity stream through in
   capacity-sized chunks, interleaving with the consumers/producers. *)

let blit_in q src off len =
  let idx = q.head mod q.q_cap in
  let first = min len (q.q_cap - idx) in
  Array.blit src off q.buf idx first;
  if len > first then Array.blit src (off + first) q.buf 0 (len - first);
  q.head <- q.head + len;
  q.total_put <- q.total_put + len

let blit_out c dst off len =
  let q = c.c_queue in
  let idx = c.cursor mod q.q_cap in
  let first = min len (q.q_cap - idx) in
  Array.blit q.buf idx dst off first;
  if len > first then Array.blit q.buf 0 dst (off + first) (len - first)

let put_block p vs =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("cgsim: put on finished producer of " ^ q.q_name);
  let n = Array.length vs in
  for i = 0 to n - 1 do
    if not (q.check vs.(i)) then Value.check ~net:q.q_name q.q_dtype vs.(i)
  done;
  let off = ref 0 in
  while !off < n do
    let free = if q.spsc then q.q_cap - (q.head - q.retired) else space q in
    if free > 0 then begin
      let len = min free (n - !off) in
      blit_in q vs !off len;
      off := !off + len;
      if !Obs.Trace.on then note_put q;
      wake_all_get q
    end
    else wait_for_space q
  done

let get_block c n =
  if n < 0 then invalid_arg "cgsim: get_block with negative count";
  let q = c.c_queue in
  let out = Array.make n (Value.Int 0) in
  let filled = ref 0 in
  while !filled < n do
    let avail = q.head - c.cursor in
    if avail > 0 then begin
      let len = min avail (n - !filled) in
      blit_out c out !filled len;
      let old = c.cursor in
      c.cursor <- old + len;
      filled := !filled + len;
      if !Obs.Trace.on then note_get q;
      if q.spsc then begin
        q.retired <- old + len;
        wake_all_put q
      end
      else note_retire q old
    end
    else if q.closed then raise Sched.End_of_stream
    else wait_for_data c
  done;
  out

let get_some c ~max =
  if max <= 0 then invalid_arg "cgsim: get_some needs a positive bound";
  let q = c.c_queue in
  let rec avail () =
    let a = q.head - c.cursor in
    if a > 0 then a
    else if q.closed then raise Sched.End_of_stream
    else begin
      wait_for_data c;
      avail ()
    end
  in
  let len = min (avail ()) max in
  let out = Array.make len (Value.Int 0) in
  blit_out c out 0 len;
  let old = c.cursor in
  c.cursor <- old + len;
  if !Obs.Trace.on then note_get q;
  if q.spsc then begin
    q.retired <- old + len;
    wake_all_put q
  end
  else note_retire q old;
  out

let peek c =
  let q = c.c_queue in
  if c.cursor < q.head then Some q.buf.(c.cursor mod q.q_cap)
  else if q.closed then raise Sched.End_of_stream
  else None

let available c =
  let q = c.c_queue in
  q.head - c.cursor

let producer_done p =
  if p.open_ then begin
    p.open_ <- false;
    let q = p.p_queue in
    q.producers_open <- q.producers_open - 1;
    if q.producers_open <= 0 then close q
  end

type t = {
  q_name : string;
  q_dtype : Dtype.t;
  q_cap : int;
  buf : Value.t array;
  mutable head : int;  (* sequence number of the next write *)
  mutable consumers : consumer list;
  mutable producers_open : int;
  mutable producers_total : int;
  mutable closed : bool;
  mutable put_waiters : Sched.waker list;
  mutable get_waiters : Sched.waker list;
  mutable total_put : int;
  (* Observability: keys are precomputed so the traced hot path does no
     string building; occ_hw gates counter emission to new high-waters. *)
  mutable occ_hw : int;
  k_occ : string;
  k_retire : string;
  k_bput : string;
  k_bget : string;
}

and consumer = {
  c_queue : t;
  mutable cursor : int;  (* sequence number of this consumer's next read *)
}

and producer = {
  p_queue : t;
  mutable open_ : bool;
}

let create ~name ~dtype ~capacity () =
  if capacity <= 0 then invalid_arg ("cgsim: queue capacity must be positive: " ^ name);
  {
    q_name = name;
    q_dtype = dtype;
    q_cap = capacity;
    buf = Array.make capacity (Value.Int 0);
    head = 0;
    consumers = [];
    producers_open = 0;
    producers_total = 0;
    closed = false;
    put_waiters = [];
    get_waiters = [];
    total_put = 0;
    occ_hw = 0;
    k_occ = "queue.occupancy_hw:" ^ name;
    k_retire = "queue.retire_lag_hw:" ^ name;
    k_bput = "queue.blocked_put:" ^ name;
    k_bget = "queue.blocked_get:" ^ name;
  }

let name q = q.q_name
let dtype q = q.q_dtype
let capacity q = q.q_cap
let is_closed q = q.closed
let total_put q = q.total_put

let add_consumer q =
  (* A consumer attached mid-stream starts at the current head: broadcast
     completeness is defined from attachment onward.  The runtime attaches
     all consumers before execution, so in practice cursor = 0. *)
  let c = { c_queue = q; cursor = q.head } in
  q.consumers <- c :: q.consumers;
  c

let add_producer q =
  if q.closed then invalid_arg ("cgsim: adding producer to closed queue " ^ q.q_name);
  let p = { p_queue = q; open_ = true } in
  q.producers_open <- q.producers_open + 1;
  q.producers_total <- q.producers_total + 1;
  p

(* Retirement point: the slowest consumer's cursor.  With no consumers the
   queue acts as a sink and retires immediately (broadcast to zero
   endpoints), mirroring cgsim's behaviour for dangling nets. *)
let min_cursor q =
  match q.consumers with
  | [] -> q.head
  | c :: rest -> List.fold_left (fun acc c -> min acc c.cursor) c.cursor rest

let wake_all_put q =
  let ws = q.put_waiters in
  q.put_waiters <- [];
  List.iter Sched.wake ws

let wake_all_get q =
  let ws = q.get_waiters in
  q.get_waiters <- [];
  List.iter Sched.wake ws

let close q =
  if not q.closed then begin
    q.closed <- true;
    wake_all_get q;
    wake_all_put q
  end

(* Occupancy == head - min_cursor: elements the slowest consumer has not
   yet retired (for a broadcast queue that is also the retire lag that
   holds buffer space).  Counter events are emitted only on a new
   high-water mark, so the trace shows the staircase without one event
   per element. *)
let note_put q =
  let occ = q.head - min_cursor q in
  if occ > q.occ_hw then begin
    q.occ_hw <- occ;
    Obs.Trace.high_water q.k_occ (float_of_int occ);
    Obs.Trace.counter ~track:q.q_name ~cat:"queue" ~name:"occupancy" (float_of_int occ)
  end

(* Spread between the fastest and slowest consumer cursor: how far the
   laggard of a broadcast trails (0 with a single consumer). *)
let note_get q =
  match q.consumers with
  | [] | [ _ ] -> ()
  | c :: rest ->
    let mn, mx =
      List.fold_left
        (fun (mn, mx) c -> min mn c.cursor, max mx c.cursor)
        (c.cursor, c.cursor) rest
    in
    Obs.Trace.high_water q.k_retire (float_of_int (mx - mn))

let store q v =
  q.buf.(q.head mod q.q_cap) <- v;
  q.head <- q.head + 1;
  q.total_put <- q.total_put + 1;
  if !Obs.Trace.on then note_put q;
  wake_all_get q

let rec put p v =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("cgsim: put on finished producer of " ^ q.q_name);
  Value.check ~net:q.q_name q.q_dtype v;
  if q.head - min_cursor q >= q.q_cap then
    if !Obs.Trace.on then blocked_put p v
    else begin
      Sched.park (fun w -> q.put_waiters <- w :: q.put_waiters);
      put p v
    end
  else store q v

and blocked_put p v =
  let q = p.p_queue in
  let track = Sched.current_name () in
  let t0 = Obs.Trace.now_ns () in
  while q.head - min_cursor q >= q.q_cap do
    Sched.park (fun w -> q.put_waiters <- w :: q.put_waiters)
  done;
  let dt = Obs.Trace.now_ns () -. t0 in
  Obs.Trace.span ~track ~cat:"queue" ~name:q.k_bput ~ts_ns:t0 ~dur_ns:dt ();
  Obs.Trace.observe_ns q.k_bput dt;
  store q v

let rec get c =
  let q = c.c_queue in
  if c.cursor < q.head then begin
    let v = q.buf.(c.cursor mod q.q_cap) in
    c.cursor <- c.cursor + 1;
    if !Obs.Trace.on then note_get q;
    (* Advancing the slowest consumer may free space for producers. *)
    wake_all_put q;
    v
  end
  else if q.closed then raise Sched.End_of_stream
  else if !Obs.Trace.on then blocked_get c
  else begin
    Sched.park (fun w -> q.get_waiters <- w :: q.get_waiters);
    get c
  end

and blocked_get c =
  let q = c.c_queue in
  let track = Sched.current_name () in
  let t0 = Obs.Trace.now_ns () in
  while c.cursor >= q.head && not q.closed do
    Sched.park (fun w -> q.get_waiters <- w :: q.get_waiters)
  done;
  let dt = Obs.Trace.now_ns () -. t0 in
  Obs.Trace.span ~track ~cat:"queue" ~name:q.k_bget ~ts_ns:t0 ~dur_ns:dt ();
  Obs.Trace.observe_ns q.k_bget dt;
  (* Either data is available or the queue closed while parked; the
     non-blocking path of [get] resolves both. *)
  get c

let get_block c n =
  if n < 0 then invalid_arg "cgsim: get_block with negative count";
  Array.init n (fun _ -> get c)

let put_block p vs = Array.iter (put p) vs

let peek c =
  let q = c.c_queue in
  if c.cursor < q.head then Some q.buf.(c.cursor mod q.q_cap)
  else if q.closed then raise Sched.End_of_stream
  else None

let available c =
  let q = c.c_queue in
  q.head - c.cursor

let producer_done p =
  if p.open_ then begin
    p.open_ <- false;
    let q = p.p_queue in
    q.producers_open <- q.producers_open - 1;
    if q.producers_open <= 0 then close q
  end

(* Ring storage.  Scalar-dtype queues default to Bigarray backing so
   block transfers move flat memory (no per-element Value boxing); the
   boxed array remains both the aggregate-dtype path and the [?unboxed:
   false] equivalence baseline.  Integer dtypes share one native-int
   bigarray: U32 (max 4294967295) and I64 payloads exceed int32, and
   native [int_elt] keeps every in-range integer dtype exact while the
   copy loops stay branch-free. *)
type storage =
  | Boxed of Value.t array
  | F32 of (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
  | F64 of (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  | Ints of (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  q_name : string;
  q_dtype : Dtype.t;
  q_cap : int;
  buf : storage;
  check : Value.t -> bool;  (* validator compiled once from q_dtype *)
  mutable head : int;  (* sequence number of the next write *)
  mutable retired : int;  (* cached min consumer cursor; see [min_cursor] *)
  mutable consumers : consumer list;
  mutable producer_records : producer list;  (* for [reset] to reopen *)
  mutable producers_open : int;
  mutable producers_total : int;
  mutable closed : bool;
  (* SPSC fast path: set by [seal] when the wired queue has exactly one
     producer and one consumer.  On this path [retired] is maintained
     directly from the lone consumer's cursor — no cached-minimum refold,
     no broadcast bookkeeping.  Registering any further endpoint drops
     the flag, falling back to the MPMC path transparently. *)
  mutable spsc : bool;
  mutable put_waiters : Sched.waker list;
  mutable get_waiters : Sched.waker list;
  mutable total_put : int;
  (* Observability: keys are precomputed so the traced hot path does no
     string building; occ_hw gates counter emission to new high-waters. *)
  mutable occ_hw : int;
  k_occ : string;
  k_retire : string;
  k_bput : string;
  k_bget : string;
}

and consumer = {
  c_queue : t;
  mutable cursor : int;  (* sequence number of this consumer's next read *)
}

and producer = {
  p_queue : t;
  mutable open_ : bool;
}

let make_storage ~unboxed dtype capacity =
  if not unboxed then Boxed (Array.make capacity (Value.Int 0))
  else
    match dtype with
    | Dtype.F32 -> F32 (Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout capacity)
    | Dtype.F64 -> F64 (Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout capacity)
    | Dtype.I8 | Dtype.I16 | Dtype.I32 | Dtype.I64 | Dtype.U8 | Dtype.U16 | Dtype.U32 ->
      Ints (Bigarray.Array1.create Bigarray.int Bigarray.c_layout capacity)
    | Dtype.Vector _ | Dtype.Struct _ -> Boxed (Array.make capacity (Value.Int 0))

let create ?(unboxed = true) ~name ~dtype ~capacity () =
  if capacity <= 0 then invalid_arg ("cgsim: queue capacity must be positive: " ^ name);
  {
    q_name = name;
    q_dtype = dtype;
    q_cap = capacity;
    buf = make_storage ~unboxed dtype capacity;
    check = Value.compile_check dtype;
    head = 0;
    retired = 0;
    consumers = [];
    producer_records = [];
    producers_open = 0;
    producers_total = 0;
    closed = false;
    spsc = false;
    put_waiters = [];
    get_waiters = [];
    total_put = 0;
    occ_hw = 0;
    k_occ = "queue.occupancy_hw:" ^ name;
    k_retire = "queue.retire_lag_hw:" ^ name;
    k_bput = "queue.blocked_put:" ^ name;
    k_bget = "queue.blocked_get:" ^ name;
  }

let name q = q.q_name
let dtype q = q.q_dtype
let capacity q = q.q_cap
let is_closed q = q.closed
let total_put q = q.total_put
let producers q = q.producers_total
let consumers q = List.length q.consumers
let is_spsc q = q.spsc
let is_unboxed q = match q.buf with Boxed _ -> false | F32 _ | F64 _ | Ints _ -> true

let add_consumer q =
  (* A consumer attached mid-stream starts at the current head: broadcast
     completeness is defined from attachment onward.  The runtime attaches
     all consumers before execution, so in practice cursor = 0. *)
  let c = { c_queue = q; cursor = q.head } in
  (match q.consumers with
   | [] -> q.retired <- q.head  (* first consumer pins the retirement point *)
   | _ :: _ -> ()  (* cursor = head >= retired: the cached minimum stands *));
  q.consumers <- c :: q.consumers;
  q.spsc <- false;  (* a second consumer needs the broadcast machinery *)
  c

let add_producer q =
  if q.closed then invalid_arg ("cgsim: adding producer to closed queue " ^ q.q_name);
  let p = { p_queue = q; open_ = true } in
  q.producer_records <- p :: q.producer_records;
  q.producers_open <- q.producers_open + 1;
  q.producers_total <- q.producers_total + 1;
  q.spsc <- false;  (* interleaving producers share the MPMC append point *)
  p

(* Restore the queue to its just-created-and-wired state: cursors back to
   zero, every registered producer reopened, contents discarded.  The
   endpoint set is untouched, so a sealed SPSC plan survives the reset —
   warm runtime instances reuse queue, endpoints and validator without
   reallocation. *)
let reset q =
  q.head <- 0;
  q.retired <- 0;
  List.iter (fun c -> c.cursor <- 0) q.consumers;
  List.iter (fun p -> p.open_ <- true) q.producer_records;
  q.producers_open <- q.producers_total;
  q.closed <- false;
  q.put_waiters <- [];
  q.get_waiters <- [];
  q.total_put <- 0;
  q.occ_hw <- 0

let seal ?(spsc = true) q =
  q.spsc <- spsc && q.producers_total = 1 && (match q.consumers with [ _ ] -> true | _ -> false)

(* Retirement point: the slowest consumer's cursor.  With no consumers the
   queue acts as a sink and retires immediately (broadcast to zero
   endpoints), mirroring cgsim's behaviour for dangling nets.

   Invariant: with consumers attached, [q.retired] equals the minimum
   cursor at all times.  It is re-folded only when the consumer that sat
   at the retirement point advances ([note_retire]); every other get
   leaves the minimum — and therefore the cache — untouched, so the
   common put/get/blocked-spin paths read one field instead of folding
   the consumer list. *)
let min_cursor q =
  match q.consumers with
  | [] -> q.head
  | _ :: _ -> q.retired

(* Free slots from the producer side (elements the slowest consumer has
   not yet retired bound the occupancy). *)
let space q = q.q_cap - (q.head - min_cursor q)

(* Unretired elements: what the slowest consumer has not yet read.  Used
   by the runtime's stuck-graph post-mortems (per-net occupancy). *)
let occupancy q = q.head - min_cursor q

let fold_min_cursor q =
  match q.consumers with
  | [] -> q.head
  | c :: rest -> List.fold_left (fun acc c -> min acc c.cursor) c.cursor rest

let wake_all_put q =
  match q.put_waiters with
  | [] -> ()
  | ws ->
    q.put_waiters <- [];
    Sched.wake_batch ws

let wake_all_get q =
  match q.get_waiters with
  | [] -> ()
  | ws ->
    q.get_waiters <- [];
    Sched.wake_batch ws

(* A consumer advanced from [old_cursor].  Only when it held the
   retirement point can the minimum move; and only when space was
   actually freed — and producers are waiting for it — are they woken. *)
let note_retire q old_cursor =
  if old_cursor = q.retired && q.consumers <> [] then begin
    let m = fold_min_cursor q in
    if m > q.retired then begin
      q.retired <- m;
      wake_all_put q
    end
  end

let close q =
  if not q.closed then begin
    q.closed <- true;
    wake_all_get q;
    wake_all_put q
  end

(* Occupancy == head - min_cursor: elements the slowest consumer has not
   yet retired (for a broadcast queue that is also the retire lag that
   holds buffer space).  Counter events are emitted only on a new
   high-water mark, so the trace shows the staircase without one event
   per element. *)
let note_put q =
  let occ = q.head - min_cursor q in
  if occ > q.occ_hw then begin
    q.occ_hw <- occ;
    Obs.Trace.high_water q.k_occ (float_of_int occ);
    Obs.Trace.counter ~track:q.q_name ~cat:"queue" ~name:"occupancy" (float_of_int occ)
  end

(* Spread between the fastest and slowest consumer cursor: how far the
   laggard of a broadcast trails (0 with a single consumer). *)
let note_get q =
  match q.consumers with
  | [] | [ _ ] -> ()
  | c :: rest ->
    let mn, mx =
      List.fold_left
        (fun (mn, mx) c -> min mn c.cursor, max mx c.cursor)
        (c.cursor, c.cursor) rest
    in
    Obs.Trace.high_water q.k_retire (float_of_int (mx - mn))

(* Park until the queue has space, attributing the blocked time to the
   queue and the calling fiber when a trace session is active. *)
let wait_for_space q =
  let spin () =
    while q.head - min_cursor q >= q.q_cap do
      Sched.park (fun w -> q.put_waiters <- w :: q.put_waiters)
    done
  in
  if !Obs.Trace.on then begin
    let track = Sched.current_name () in
    let t0 = Obs.Trace.now_ns () in
    spin ();
    let dt = Obs.Trace.now_ns () -. t0 in
    Obs.Trace.span ~track ~cat:"queue" ~name:q.k_bput ~ts_ns:t0 ~dur_ns:dt ();
    Obs.Trace.observe_ns q.k_bput dt
  end
  else spin ()

(* Park until data is available for [c] (or the queue closes). *)
let wait_for_data c =
  let q = c.c_queue in
  let spin () =
    while c.cursor >= q.head && not q.closed do
      Sched.park (fun w -> q.get_waiters <- w :: q.get_waiters)
    done
  in
  if !Obs.Trace.on then begin
    let track = Sched.current_name () in
    let t0 = Obs.Trace.now_ns () in
    spin ();
    let dt = Obs.Trace.now_ns () -. t0 in
    Obs.Trace.span ~track ~cat:"queue" ~name:q.k_bget ~ts_ns:t0 ~dur_ns:dt ();
    Obs.Trace.observe_ns q.k_bget dt
  end
  else spin ()

(* Single-slot access.  Bigarray-backed slots box/unbox at the boundary;
   the scalar path is the slow path by design, blocks go through the
   segment copies below. *)

let write_slot q i v =
  match q.buf with
  | Boxed buf -> buf.(i) <- v
  | F32 ba -> Bigarray.Array1.set ba i (Value.to_float v)
  | F64 ba -> Bigarray.Array1.set ba i (Value.to_float v)
  | Ints ba -> Bigarray.Array1.set ba i (Value.to_int v)

let read_slot q i =
  match q.buf with
  | Boxed buf -> buf.(i)
  | F32 ba -> Value.Float (Bigarray.Array1.get ba i)
  | F64 ba -> Value.Float (Bigarray.Array1.get ba i)
  | Ints ba -> Value.Int (Bigarray.Array1.get ba i)

let store q v =
  write_slot q (q.head mod q.q_cap) v;
  q.head <- q.head + 1;
  q.total_put <- q.total_put + 1;
  if !Obs.Trace.on then note_put q;
  wake_all_get q

let put p v =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("cgsim: put on finished producer of " ^ q.q_name);
  if not (q.check v) then Value.check ~net:q.q_name q.q_dtype v;
  if q.spsc then begin
    (* SPSC: [retired] IS the lone consumer's cursor, one field read. *)
    if q.head - q.retired >= q.q_cap then wait_for_space q
  end
  else if q.head - min_cursor q >= q.q_cap then wait_for_space q;
  store q v

let get c =
  let q = c.c_queue in
  if c.cursor >= q.head then begin
    if q.closed then raise Sched.End_of_stream;
    wait_for_data c;
    if c.cursor >= q.head then raise Sched.End_of_stream (* closed while parked *)
  end;
  let v = read_slot q (c.cursor mod q.q_cap) in
  let old = c.cursor in
  c.cursor <- old + 1;
  if !Obs.Trace.on then note_get q;
  if q.spsc then begin
    (* SPSC: this consumer is the retirement point by definition — no
       minimum refold, every get frees exactly one slot. *)
    q.retired <- old + 1;
    wake_all_put q
  end
  else
    (* Advancing the slowest consumer may free space for producers. *)
    note_retire q old;
  v

(* ------------------------------------------------------------------ *)
(* Block transfers                                                     *)
(* ------------------------------------------------------------------ *)

(* The block fast path moves contiguous ring slices: each chunk is at
   most two segment copies (the slice up to the ring wrap point plus the
   remainder) — an [Array.blit] on boxed storage, a tight unsafe
   index loop on bigarray storage — dtype validation uses the queue's
   precompiled checker ({!Value.compile_check}), and waiters are woken
   once per chunk rather than once per element.  Blocks larger than the
   queue capacity stream through in capacity-sized chunks, interleaving
   with the consumers/producers.

   Each entry point builds one segment-copy closure for its (storage,
   payload) pair, then runs the shared chunk loop; [seg soff idx len]
   copies [len] elements between payload offset [soff] and ring index
   [idx] with no wrap inside the segment. *)

(* Bigarray segment copies.  Each helper is monomorphic in the bigarray
   kind and layout: with the element type statically known the compiler
   emits inline loads/stores, whereas a kind-polymorphic loop would fall
   back to the generic C accessors and cost an external call per
   element — the difference between a memcpy-class blit and a 10x
   slowdown on exactly the path this storage exists to speed up.
   Indices are in range by construction (the chunk loop splits at the
   wrap point), hence the unsafe accessors. *)

type f32ba = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type f64ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type intba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let values_to_f32 (ba : f32ba) (src : Value.t array) soff idx len =
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set ba (idx + i) (Value.to_float (Array.unsafe_get src (soff + i)))
  done

let f32_to_values (ba : f32ba) (dst : Value.t array) idx doff len =
  for i = 0 to len - 1 do
    Array.unsafe_set dst (doff + i) (Value.Float (Bigarray.Array1.unsafe_get ba (idx + i)))
  done

let values_to_f64 (ba : f64ba) (src : Value.t array) soff idx len =
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set ba (idx + i) (Value.to_float (Array.unsafe_get src (soff + i)))
  done

let f64_to_values (ba : f64ba) (dst : Value.t array) idx doff len =
  for i = 0 to len - 1 do
    Array.unsafe_set dst (doff + i) (Value.Float (Bigarray.Array1.unsafe_get ba (idx + i)))
  done

(* Native-array <-> bigarray segments go through C stubs: the f64 and
   int legs are memcpy-class, the f32 legs a vectorized convert loop.
   All are [@@noalloc] — no GC interaction, no boxing, one call per
   segment rather than per element. *)
external floats_to_f32 : f32ba -> float array -> int -> int -> int -> unit
  = "cgsim_floats_to_f32"
  [@@noalloc]

external f32_to_floats : f32ba -> float array -> int -> int -> int -> unit
  = "cgsim_f32_to_floats"
  [@@noalloc]

external floats_to_f64 : f64ba -> float array -> int -> int -> int -> unit
  = "cgsim_floats_to_f64"
  [@@noalloc]

external f64_to_floats : f64ba -> float array -> int -> int -> int -> unit
  = "cgsim_f64_to_floats"
  [@@noalloc]

let values_to_iba (ba : intba) (src : Value.t array) soff idx len =
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set ba (idx + i) (Value.to_int (Array.unsafe_get src (soff + i)))
  done

let iba_to_values (ba : intba) (dst : Value.t array) idx doff len =
  for i = 0 to len - 1 do
    Array.unsafe_set dst (doff + i) (Value.Int (Bigarray.Array1.unsafe_get ba (idx + i)))
  done

external ints_to_iba : intba -> int array -> int -> int -> int -> unit
  = "cgsim_ints_to_iba"
  [@@noalloc]

external iba_to_ints : intba -> int array -> int -> int -> int -> unit
  = "cgsim_iba_to_ints"
  [@@noalloc]

(* Range-checked int store: returns the first offending source offset,
   -1 when the whole segment landed. *)
external ints_to_iba_checked :
  intba -> int array -> int -> int -> int -> int -> int -> int
  = "cgsim_ints_to_iba_checked_byte" "cgsim_ints_to_iba_checked"
  [@@noalloc]

(* Shared producer chunk loop: wait for free slots, copy a wrap-split
   chunk at [head], advance the cursors, wake once per chunk. *)
let put_loop q n seg =
  let off = ref 0 in
  while !off < n do
    let free = if q.spsc then q.q_cap - (q.head - q.retired) else space q in
    if free > 0 then begin
      let len = min free (n - !off) in
      let idx = q.head mod q.q_cap in
      let first = min len (q.q_cap - idx) in
      seg !off idx first;
      if len > first then seg (!off + first) 0 (len - first);
      q.head <- q.head + len;
      q.total_put <- q.total_put + len;
      off := !off + len;
      if !Obs.Trace.on then note_put q;
      wake_all_get q
    end
    else wait_for_space q
  done

(* Wrap-split copy of [len] available elements at [c.cursor]. *)
let get_ring c seg dst_off len =
  let q = c.c_queue in
  let idx = c.cursor mod q.q_cap in
  let first = min len (q.q_cap - idx) in
  seg idx dst_off first;
  if len > first then seg 0 (dst_off + first) (len - first)

let advance c len =
  let q = c.c_queue in
  let old = c.cursor in
  c.cursor <- old + len;
  if !Obs.Trace.on then note_get q;
  if q.spsc then begin
    q.retired <- old + len;
    wake_all_put q
  end
  else note_retire q old

(* Shared consumer chunk loop for exactly-[n] window reads. *)
let get_loop c n seg =
  if n < 0 then invalid_arg "cgsim: get_block with negative count";
  let q = c.c_queue in
  let filled = ref 0 in
  while !filled < n do
    let avail = q.head - c.cursor in
    if avail > 0 then begin
      let len = min avail (n - !filled) in
      get_ring c seg !filled len;
      advance c len;
      filled := !filled + len
    end
    else if q.closed then raise Sched.End_of_stream
    else wait_for_data c
  done

(* Blocking available-length probe shared by the [get_*_some] drains. *)
let some_len c ~max =
  if max <= 0 then invalid_arg "cgsim: get_some needs a positive bound";
  let q = c.c_queue in
  let rec avail () =
    let a = q.head - c.cursor in
    if a > 0 then a
    else if q.closed then raise Sched.End_of_stream
    else begin
      wait_for_data c;
      avail ()
    end
  in
  min (avail ()) max

let seg_in_values q (src : Value.t array) =
  match q.buf with
  | Boxed buf -> fun soff idx len -> Array.blit src soff buf idx len
  | F32 ba -> values_to_f32 ba src
  | F64 ba -> values_to_f64 ba src
  | Ints ba -> values_to_iba ba src

let seg_out_values q (dst : Value.t array) =
  match q.buf with
  | Boxed buf -> fun idx doff len -> Array.blit buf idx dst doff len
  | F32 ba -> f32_to_values ba dst
  | F64 ba -> f64_to_values ba dst
  | Ints ba -> iba_to_values ba dst

let put_block p vs =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("cgsim: put on finished producer of " ^ q.q_name);
  let n = Array.length vs in
  for i = 0 to n - 1 do
    if not (q.check vs.(i)) then Value.check ~net:q.q_name q.q_dtype vs.(i)
  done;
  put_loop q n (seg_in_values q vs)

let get_block c n =
  if n < 0 then invalid_arg "cgsim: get_block with negative count";
  let out = Array.make n (Value.Int 0) in
  get_loop c n (seg_out_values c.c_queue out);
  out

let get_some c ~max =
  let len = some_len c ~max in
  let out = Array.make len (Value.Int 0) in
  get_ring c (seg_out_values c.c_queue out) 0 len;
  advance c len;
  out

(* ------------------------------------------------------------------ *)
(* Unboxed block transfers                                             *)
(* ------------------------------------------------------------------ *)

(* Flat-payload variants of the block operations: same blocking and
   End_of_stream discipline, no [Value.t] in the interface.  On bigarray
   storage both sides of the copy are unboxed — memcpy-class; on boxed
   storage they box/unbox per element, preserving semantics (the
   [?unboxed:false] baseline).  Dtype discipline: float transfers
   require a float net, integer transfers an integer net, checked once
   per block.  F32 nets store single precision: payloads round on store
   exactly as {!Value.round_f32} (bigarray [float32] storage rounds
   natively; the boxed fallback rounds explicitly). *)

let require_float q what =
  match q.q_dtype with
  | Dtype.F32 | Dtype.F64 -> ()
  | d ->
    invalid_arg
      (Printf.sprintf "cgsim: %s on net %s of dtype %s" what q.q_name (Dtype.to_string d))

let require_int q what =
  match q.q_dtype with
  | Dtype.I8 | Dtype.I16 | Dtype.I32 | Dtype.I64 | Dtype.U8 | Dtype.U16 | Dtype.U32 -> ()
  | d ->
    invalid_arg
      (Printf.sprintf "cgsim: %s on net %s of dtype %s" what q.q_name (Dtype.to_string d))

let seg_in_floats q (src : float array) =
  require_float q "float block write";
  match q.buf with
  | F32 ba -> floats_to_f32 ba src
  | F64 ba -> floats_to_f64 ba src
  | Boxed buf ->
    if q.q_dtype = Dtype.F32 then
      fun soff idx len ->
        for i = 0 to len - 1 do
          buf.(idx + i) <- Value.Float (Value.round_f32 src.(soff + i))
        done
    else
      fun soff idx len ->
        for i = 0 to len - 1 do
          buf.(idx + i) <- Value.Float src.(soff + i)
        done
  | Ints _ -> assert false (* integer storage implies integer dtype *)

let seg_out_floats q (dst : float array) =
  require_float q "float block read";
  match q.buf with
  | F32 ba -> f32_to_floats ba dst
  | F64 ba -> f64_to_floats ba dst
  | Boxed buf ->
    fun idx doff len ->
      for i = 0 to len - 1 do
        dst.(doff + i) <- Value.to_float buf.(idx + i)
      done
  | Ints _ -> assert false

let int_out_of_range q v =
  invalid_arg
    (Printf.sprintf "cgsim: value %d does not conform to dtype %s on net %s" v
       (Dtype.to_string q.q_dtype) q.q_name)

(* The dtype conformance check is fused into the copy loop: one pass
   over the payload instead of a check pass plus a copy pass.  A
   violation raises before [put_loop] advances [head], so no offending
   element is ever published (slots beyond [head] may hold partial
   writes, which the ring treats as free space). *)
let seg_in_ints q (src : int array) =
  require_int q "int block write";
  match q.buf, Value.int_range q.q_dtype with
  | Ints ba, None -> ints_to_iba ba src
  | Ints ba, Some (lo, hi) ->
    fun soff idx len ->
      let bad = ints_to_iba_checked ba src soff idx len lo hi in
      if bad >= 0 then int_out_of_range q src.(bad)
  | Boxed buf, range ->
    let check =
      match range with
      | None -> fun _ -> ()
      | Some (lo, hi) -> fun v -> if v < lo || v > hi then int_out_of_range q v
    in
    fun soff idx len ->
      for i = 0 to len - 1 do
        let v = src.(soff + i) in
        check v;
        buf.(idx + i) <- Value.Int v
      done
  | (F32 _ | F64 _), _ -> assert false (* float storage implies float dtype *)

let seg_out_ints q (dst : int array) =
  require_int q "int block read";
  match q.buf with
  | Ints ba -> iba_to_ints ba dst
  | Boxed buf ->
    fun idx doff len ->
      for i = 0 to len - 1 do
        dst.(doff + i) <- Value.to_int buf.(idx + i)
      done
  | F32 _ | F64 _ -> assert false

let put_floats p fs =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("cgsim: put on finished producer of " ^ q.q_name);
  put_loop q (Array.length fs) (seg_in_floats q fs)

let get_floats c n =
  if n < 0 then invalid_arg "cgsim: get_block with negative count";
  let out = Array.create_float n in
  get_loop c n (seg_out_floats c.c_queue out);
  out

let get_floats_some c ~max =
  let len = some_len c ~max in
  let out = Array.create_float len in
  get_ring c (seg_out_floats c.c_queue out) 0 len;
  advance c len;
  out

let put_ints p is =
  let q = p.p_queue in
  if not p.open_ then invalid_arg ("cgsim: put on finished producer of " ^ q.q_name);
  put_loop q (Array.length is) (seg_in_ints q is)

let get_ints c n =
  if n < 0 then invalid_arg "cgsim: get_block with negative count";
  let out = Array.make n 0 in
  get_loop c n (seg_out_ints c.c_queue out);
  out

let get_ints_some c ~max =
  let len = some_len c ~max in
  let out = Array.make len 0 in
  get_ring c (seg_out_ints c.c_queue out) 0 len;
  advance c len;
  out

(* Allocation-free drains: fill a caller-owned buffer and return the
   element count.  Steady-state consumers (IO pumps, benches) reuse one
   buffer instead of allocating a fresh array per chunk. *)

let get_floats_into c dst =
  let len = some_len c ~max:(Array.length dst) in
  get_ring c (seg_out_floats c.c_queue dst) 0 len;
  advance c len;
  len

let get_ints_into c dst =
  let len = some_len c ~max:(Array.length dst) in
  get_ring c (seg_out_ints c.c_queue dst) 0 len;
  advance c len;
  len

let peek c =
  let q = c.c_queue in
  if c.cursor < q.head then Some (read_slot q (c.cursor mod q.q_cap))
  else if q.closed then raise Sched.End_of_stream
  else None

let available c =
  let q = c.c_queue in
  q.head - c.cursor

let producer_done p =
  if p.open_ then begin
    p.open_ <- false;
    let q = p.p_queue in
    q.producers_open <- q.producers_open - 1;
    if q.producers_open <= 0 then close q
  end

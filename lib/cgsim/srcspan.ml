type t = {
  file : string;
  line : int;
  col : int;
  end_line : int;
  end_col : int;
}

let make ~file ~line ~col ?end_line ?end_col () =
  {
    file;
    line;
    col;
    end_line = Option.value end_line ~default:line;
    end_col = Option.value end_col ~default:col;
  }

let equal a b =
  String.equal a.file b.file
  && a.line = b.line
  && a.col = b.col
  && a.end_line = b.end_line
  && a.end_col = b.end_col

let to_string t = Printf.sprintf "%s:%d:%d" t.file t.line t.col

let pp ppf t = Format.pp_print_string ppf (to_string t)

let to_compact t = Printf.sprintf "%s:%d:%d:%d:%d" t.file t.line t.col t.end_line t.end_col

let of_compact s =
  (* The file name may itself contain ':'; the last four fields are the
     numbers. *)
  match List.rev (String.split_on_char ':' s) with
  | ec :: el :: c :: l :: (_ :: _ as file_rev) -> begin
    match
      int_of_string_opt ec, int_of_string_opt el, int_of_string_opt c, int_of_string_opt l
    with
    | Some end_col, Some end_line, Some col, Some line ->
      Some { file = String.concat ":" (List.rev file_rev); line; col; end_line; end_col }
    | _ -> None
  end
  | _ -> None

(* Fused-chain edges: the direct hand-off replacing a Bqueue between two
   kernels that the fusion pass collapsed into one fiber.

   Within a fused chain only one kernel body executes at a time, so the
   edge needs no waiters, no broadcast bookkeeping and no capacity
   blocking — it is a growable ring plus a coroutine: the downstream
   reader states its demand and *pulls*, resuming the upstream body (the
   edge's pump) until enough elements arrived or the upstream finished.
   The upstream body runs under a deep effect handler and suspends
   itself (a private [Suspend] effect) as soon as the stated demand is
   met, so production stays demand-driven and buffering is bounded by
   the window sizes the bodies actually use.  Scheduler effects
   ([Sched.park]/[yield]) performed inside the pump are not handled
   here — they propagate through to the chain fiber's handler, so a
   chain head blocking on a real input queue parks the whole chain
   fiber exactly like an unfused kernel.

   Storage is unboxed per dtype (OCaml float/int arrays — flat memory,
   like the bigarray-backed queues); aggregates stay boxed.  F32 edges
   round on store exactly as {!Value.round_f32}, matching unboxed queue
   storage. *)

type _ Effect.t += Suspend : unit Effect.t

type store =
  | SBox of Value.t array
  | SFloat of float array
  | SInt of int array

type pump =
  | No_pump  (* not armed: reader demand just observes [closed] *)
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Done

type edge = {
  e_name : string;
  e_dtype : Dtype.t;
  e_check : Value.t -> bool;
  e_round : bool;  (* F32: round floats on store *)
  e_bounds : (int * int) option;  (* integer payload range check *)
  mutable e_store : store;
  mutable e_cap : int;  (* power of two; ring index = seq land (cap-1) *)
  mutable e_head : int;  (* total elements written *)
  mutable e_tail : int;  (* total elements read *)
  mutable e_demand : int;  (* absolute head the reader currently wants *)
  mutable e_closed : bool;
  mutable e_pump : pump;
}

let initial_cap = 64

let make_store dtype cap =
  match dtype with
  | Dtype.F32 | Dtype.F64 -> SFloat (Array.make cap 0.)
  | Dtype.I8 | Dtype.I16 | Dtype.I32 | Dtype.I64 | Dtype.U8 | Dtype.U16 | Dtype.U32 ->
    SInt (Array.make cap 0)
  | Dtype.Vector _ | Dtype.Struct _ -> SBox (Array.make cap (Value.Int 0))

let create ~name ~dtype =
  {
    e_name = name;
    e_dtype = dtype;
    e_check = Value.compile_check dtype;
    e_round = dtype = Dtype.F32;
    e_bounds = Value.int_range dtype;
    e_store = make_store dtype initial_cap;
    e_cap = initial_cap;
    e_head = 0;
    e_tail = 0;
    e_demand = 0;
    e_closed = false;
    e_pump = No_pump;
  }

let name e = e.e_name
let dtype e = e.e_dtype
let total_put e = e.e_head
let occupancy e = e.e_head - e.e_tail
let is_closed e = e.e_closed
let close e = e.e_closed <- true
let install_pump e f = e.e_pump <- Not_started f

(* Grow the ring so [needed] elements fit.  Live elements keep their
   sequence numbers; only their ring slots move. *)
let grow e needed =
  let nc = ref e.e_cap in
  while !nc < needed do
    nc := !nc * 2
  done;
  let nc = !nc in
  let om = e.e_cap - 1 and nm = nc - 1 in
  (match e.e_store with
   | SBox a ->
     let b = Array.make nc (Value.Int 0) in
     for seq = e.e_tail to e.e_head - 1 do
       b.(seq land nm) <- a.(seq land om)
     done;
     e.e_store <- SBox b
   | SFloat a ->
     let b = Array.make nc 0. in
     for seq = e.e_tail to e.e_head - 1 do
       b.(seq land nm) <- a.(seq land om)
     done;
     e.e_store <- SFloat b
   | SInt a ->
     let b = Array.make nc 0 in
     for seq = e.e_tail to e.e_head - 1 do
       b.(seq land nm) <- a.(seq land om)
     done;
     e.e_store <- SInt b);
  e.e_cap <- nc

let reserve e n =
  let needed = e.e_head - e.e_tail + n in
  if needed > e.e_cap then grow e needed

(* ------------------------------------------------------------------ *)
(* Writer side (the upstream member's output port)                     *)
(* ------------------------------------------------------------------ *)

(* Once the reader's stated demand is met, hand control back to the
   ensure-loop that resumed us.  Performed, not called: the matching
   handler is installed by [run_pump] below. *)
let maybe_suspend e = if e.e_head >= e.e_demand then Effect.perform Suspend

let wrong_payload e what =
  invalid_arg
    (Printf.sprintf "cgsim: %s on fused edge %s of dtype %s" what e.e_name
       (Dtype.to_string e.e_dtype))

let put e v =
  if not (e.e_check v) then Value.check ~net:e.e_name e.e_dtype v;
  reserve e 1;
  let mask = e.e_cap - 1 in
  (match e.e_store with
   | SBox a -> a.(e.e_head land mask) <- v
   | SFloat a ->
     let f = Value.to_float v in
     a.(e.e_head land mask) <- (if e.e_round then Value.round_f32 f else f)
   | SInt a -> a.(e.e_head land mask) <- Value.to_int v);
  e.e_head <- e.e_head + 1;
  maybe_suspend e

let put_block e vs =
  let n = Array.length vs in
  for i = 0 to n - 1 do
    if not (e.e_check vs.(i)) then Value.check ~net:e.e_name e.e_dtype vs.(i)
  done;
  reserve e n;
  let mask = e.e_cap - 1 in
  (match e.e_store with
   | SBox a ->
     for i = 0 to n - 1 do
       Array.unsafe_set a ((e.e_head + i) land mask) (Array.unsafe_get vs i)
     done
   | SFloat a ->
     if e.e_round then
       for i = 0 to n - 1 do
         Array.unsafe_set a ((e.e_head + i) land mask)
           (Value.round_f32 (Value.to_float (Array.unsafe_get vs i)))
       done
     else
       for i = 0 to n - 1 do
         Array.unsafe_set a ((e.e_head + i) land mask) (Value.to_float (Array.unsafe_get vs i))
       done
   | SInt a ->
     for i = 0 to n - 1 do
       Array.unsafe_set a ((e.e_head + i) land mask) (Value.to_int (Array.unsafe_get vs i))
     done);
  e.e_head <- e.e_head + n;
  maybe_suspend e

let put_floats e fs =
  let n = Array.length fs in
  (match e.e_store with SFloat _ -> () | SBox _ | SInt _ -> wrong_payload e "float block write");
  reserve e n;
  let mask = e.e_cap - 1 in
  (match e.e_store with
   | SFloat a ->
     if e.e_round then
       for i = 0 to n - 1 do
         Array.unsafe_set a ((e.e_head + i) land mask) (Value.round_f32 (Array.unsafe_get fs i))
       done
     else
       for i = 0 to n - 1 do
         Array.unsafe_set a ((e.e_head + i) land mask) (Array.unsafe_get fs i)
       done
   | SBox _ | SInt _ -> assert false);
  e.e_head <- e.e_head + n;
  maybe_suspend e

let put_ints e is =
  let n = Array.length is in
  (match e.e_store with SInt _ -> () | SBox _ | SFloat _ -> wrong_payload e "int block write");
  (match e.e_bounds with
   | None -> ()
   | Some (lo, hi) ->
     for i = 0 to n - 1 do
       let v = Array.unsafe_get is i in
       if v < lo || v > hi then
         invalid_arg
           (Printf.sprintf "cgsim: value %d does not conform to dtype %s on net %s" v
              (Dtype.to_string e.e_dtype) e.e_name)
     done);
  reserve e n;
  let mask = e.e_cap - 1 in
  (match e.e_store with
   | SInt a ->
     for i = 0 to n - 1 do
       Array.unsafe_set a ((e.e_head + i) land mask) (Array.unsafe_get is i)
     done
   | SBox _ | SFloat _ -> assert false);
  e.e_head <- e.e_head + n;
  maybe_suspend e

(* Advisory: how many more elements the reader currently wants.  The
   interleave-aware writers use free space to size chunks; on a fused
   edge outstanding demand plays that role. *)
let w_space e = max 0 (e.e_demand - e.e_head)

(* ------------------------------------------------------------------ *)
(* The pump: running the upstream body on demand                       *)
(* ------------------------------------------------------------------ *)

(* Drive the upstream coroutine one step: start it under the deep
   handler, or resume its suspended continuation (the handler installed
   at start stays in force across resumes).  Normal return and
   End_of_stream close the edge quietly — the downstream reader
   observes end of stream from the drained edge, exactly as with a
   closed queue.  Any other exception (including Terminated) closes the
   edge and propagates to the caller, i.e. into the downstream body and
   from there to the chain fiber's supervision. *)
let run_pump e =
  match e.e_pump with
  | No_pump | Done -> close e (* no upstream left; demand is unsatisfiable *)
  | Suspended k ->
    e.e_pump <- Done;
    (* placeholder: one-shot continuation, never resume twice *)
    Effect.Deep.continue k ()
  | Not_started f ->
    e.e_pump <- Done;
    Effect.Deep.match_with f ()
      {
        retc =
          (fun () ->
            e.e_pump <- Done;
            close e);
        exnc =
          (fun ex ->
            e.e_pump <- Done;
            close e;
            match ex with
            | Sched.End_of_stream -> ()
            | ex -> raise ex);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) -> e.e_pump <- Suspended k)
            | _ -> None);
      }

(* Reader-side demand loop: state how far the head must advance, then
   pump until it did or the upstream finished.

   Demand carries slack: a suspend/resume round-trip through the effect
   handler costs a continuation capture, and charging it per window
   makes the fused edge slower than the queue hop it replaced.  Asking
   the pump to run ahead by [slack] elements amortises one capture over
   many windows.  Running ahead is safe exactly where fusion is legal —
   chain members own their sole intermediate edge, so extra production
   only buffers data the reader is guaranteed to want, and a shorter
   final batch ends with the upstream closing the edge as usual. *)
let slack = 4096

let ensure e n =
  if e.e_head - e.e_tail < n && not e.e_closed then begin
    e.e_demand <- e.e_tail + (if n > slack then n else slack);
    while e.e_head < e.e_demand && not e.e_closed do
      run_pump e
    done
  end

(* ------------------------------------------------------------------ *)
(* Reader side (the downstream member's input port)                    *)
(* ------------------------------------------------------------------ *)

let read_slot e seq =
  let mask = e.e_cap - 1 in
  match e.e_store with
  | SBox a -> a.(seq land mask)
  | SFloat a -> Value.Float a.(seq land mask)
  | SInt a -> Value.Int a.(seq land mask)

let get e =
  ensure e 1;
  if e.e_head > e.e_tail then begin
    let v = read_slot e e.e_tail in
    e.e_tail <- e.e_tail + 1;
    v
  end
  else raise Sched.End_of_stream

(* Pulls (and may therefore run the upstream body, park, or observe end
   of stream) — a fused edge has no meaningful "nothing available yet"
   state to report, because availability is demand-driven. *)
let peek e =
  ensure e 1;
  if e.e_head > e.e_tail then Some (read_slot e e.e_tail) else raise Sched.End_of_stream

let available e = e.e_head - e.e_tail

(* Exact-n block read with queue-matching End_of_stream semantics: if
   the upstream closes short of [n], whatever arrived is consumed and
   End_of_stream raised — as a loop of scalar gets would behave. *)
let take e n avail =
  e.e_tail <- e.e_tail + avail;
  if avail < n then raise Sched.End_of_stream

let get_block e n =
  if n < 0 then invalid_arg "cgsim: get_block with negative count";
  ensure e n;
  let avail = min n (e.e_head - e.e_tail) in
  let out = Array.make avail (Value.Int 0) in
  let mask = e.e_cap - 1 in
  (match e.e_store with
   | SBox a ->
     for i = 0 to avail - 1 do
       Array.unsafe_set out i (Array.unsafe_get a ((e.e_tail + i) land mask))
     done
   | SFloat a ->
     for i = 0 to avail - 1 do
       Array.unsafe_set out i (Value.Float (Array.unsafe_get a ((e.e_tail + i) land mask)))
     done
   | SInt a ->
     for i = 0 to avail - 1 do
       Array.unsafe_set out i (Value.Int (Array.unsafe_get a ((e.e_tail + i) land mask)))
     done);
  take e n avail;
  out

let get_floats e n =
  if n < 0 then invalid_arg "cgsim: get_block with negative count";
  (match e.e_store with SFloat _ -> () | SBox _ | SInt _ -> wrong_payload e "float block read");
  ensure e n;
  let avail = min n (e.e_head - e.e_tail) in
  let out = Array.create_float avail in
  let mask = e.e_cap - 1 in
  (match e.e_store with
   | SFloat a ->
     for i = 0 to avail - 1 do
       Array.unsafe_set out i (Array.unsafe_get a ((e.e_tail + i) land mask))
     done
   | SBox _ | SInt _ -> assert false);
  take e n avail;
  out

let get_ints e n =
  if n < 0 then invalid_arg "cgsim: get_block with negative count";
  (match e.e_store with SInt _ -> () | SBox _ | SFloat _ -> wrong_payload e "int block read");
  ensure e n;
  let avail = min n (e.e_head - e.e_tail) in
  let out = Array.make avail 0 in
  let mask = e.e_cap - 1 in
  (match e.e_store with
   | SInt a ->
     for i = 0 to avail - 1 do
       Array.unsafe_set out i (Array.unsafe_get a ((e.e_tail + i) land mask))
     done
   | SBox _ | SFloat _ -> assert false);
  take e n avail;
  out

(* ------------------------------------------------------------------ *)
(* Teardown and reuse                                                  *)
(* ------------------------------------------------------------------ *)

(* End-of-run cleanup from the chain fiber's finally: a pump left
   suspended (the downstream body finished without draining it) is
   discontinued with Terminated so its own protect/finally code runs —
   the fused analogue of the scheduler cancelling parked fibers. *)
let kill e =
  (match e.e_pump with
   | Suspended k -> (
     e.e_pump <- Done;
     try Effect.Deep.discontinue k Sched.Terminated with Sched.Terminated -> ())
   | No_pump | Not_started _ | Done -> ());
  e.e_pump <- Done;
  close e

(* Back to pristine for the next run; [arm] installs a fresh pump.  The
   grown ring is kept — warm serving reuses the high-water capacity. *)
let reset e =
  (match e.e_pump with
   | Suspended _ -> kill e
   | No_pump | Not_started _ | Done -> ());
  e.e_head <- 0;
  e.e_tail <- 0;
  e.e_demand <- 0;
  e.e_closed <- false;
  e.e_pump <- No_pump

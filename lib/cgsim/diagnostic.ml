type severity =
  | Info
  | Warning
  | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function
  | Info -> 0
  | Warning -> 1
  | Error -> 2

let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)

type t = {
  severity : severity;
  code : string;
  message : string;
  graph : string;
  kernels : string list;
  nets : string list;
  net_ids : int list;
  loc : Srcspan.t option;
}

let make ~severity ~code ?(graph = "") ?(kernels = []) ?(nets = []) ?(net_ids = []) ?loc message
    =
  { severity; code; message; graph; kernels; nets; net_ids; loc }

let max_severity = function
  | [] -> None
  | d :: ds ->
    Some
      (List.fold_left
         (fun acc d -> if compare_severity d.severity acc > 0 then d.severity else acc)
         d.severity ds)

let exit_status diags =
  match max_severity diags with
  | None | Some Info -> 0
  | Some Warning -> 1
  | Some Error -> 2

let sort diags =
  List.stable_sort
    (fun a b ->
      match compare_severity b.severity a.severity with
      | 0 -> String.compare a.code b.code
      | c -> c)
    diags

let render d =
  let buf = Buffer.create 128 in
  (match d.loc with
   | Some span ->
     Buffer.add_string buf (Srcspan.to_string span);
     Buffer.add_string buf ": "
   | None ->
     if d.graph <> "" then begin
       Buffer.add_string buf "graph ";
       Buffer.add_string buf d.graph;
       Buffer.add_string buf ": "
     end);
  Buffer.add_string buf (severity_to_string d.severity);
  if d.code <> "" then begin
    Buffer.add_char buf '[';
    Buffer.add_string buf d.code;
    Buffer.add_char buf ']'
  end;
  Buffer.add_string buf ": ";
  Buffer.add_string buf d.message;
  let context =
    (if d.kernels = [] then [] else [ "kernels: " ^ String.concat ", " d.kernels ])
    @ if d.nets = [] then [] else [ "nets: " ^ String.concat ", " d.nets ]
  in
  if context <> [] then begin
    Buffer.add_string buf " [";
    Buffer.add_string buf (String.concat "; " context);
    Buffer.add_char buf ']'
  end;
  Buffer.contents buf

let pp ppf d = Format.pp_print_string ppf (render d)

let to_json d =
  let open Obs.Json in
  Obj
    ([
       "severity", Str (severity_to_string d.severity);
       "code", Str d.code;
       "message", Str d.message;
       "graph", Str d.graph;
       "kernels", Arr (List.map (fun k -> Str k) d.kernels);
       "nets", Arr (List.map (fun n -> Str n) d.nets);
       "net_ids", Arr (List.map (fun i -> Num (float_of_int i)) d.net_ids);
     ]
    @
    match d.loc with
    | None -> []
    | Some span ->
      [
        ( "loc",
          Obj
            [
              "file", Str span.Srcspan.file;
              "line", Num (float_of_int span.Srcspan.line);
              "col", Num (float_of_int span.Srcspan.col);
              "end_line", Num (float_of_int span.Srcspan.end_line);
              "end_col", Num (float_of_int span.Srcspan.end_col);
            ] );
      ])
